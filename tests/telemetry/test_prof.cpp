/**
 * @file
 * CPU profiling plane suite: the perf_event -> rusage fallback under
 * forced open failures (ENOSYS, EACCES) still yields well-formed span
 * tables marked `source: "rusage"`; span counters accumulate exactly
 * across threads; the sampling profiler produces parseable folded
 * stacks; and the profile diff ranks a pessimized kernel first and
 * gates on call-count/cost drift.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"

namespace kodan::telemetry::prof {
namespace {

namespace report = kodan::telemetry::report;

/** Clears the counter plane, the profiler, and the test hook on exit. */
class ProfGuard
{
  public:
    ProfGuard()
    {
        setCountersEnabled(false);
        setPerfForceErrnoForTest(0);
        resetSpanTable();
        resetProfile();
    }

    ~ProfGuard()
    {
        stopSampler();
        setCountersEnabled(false);
        setPerfForceErrnoForTest(0);
        resetSpanTable();
        resetProfile();
    }
};

/** Burn CPU long enough for the thread clock to advance. */
double
burn()
{
    double x = 0.0;
    for (int k = 0; k < 400000; ++k) {
        x += static_cast<double>(k % 17) * 0.5;
    }
    return x;
}

const SpanCounterRow *
findRow(const SpanTableSnapshot &table, const std::string &name)
{
    for (const SpanCounterRow &row : table.rows) {
        if (row.name == name) {
            return &row;
        }
    }
    return nullptr;
}

TEST(ProfCounters, ForcedOpenFailureFallsBackToRusage)
{
    ProfGuard guard;
    for (int err : {ENOSYS, EACCES}) {
        SCOPED_TRACE("forced errno " + std::to_string(err));
        resetSpanTable();
        setPerfForceErrnoForTest(err);
        setCountersEnabled(true);
        double sink = 0.0;
        // A fresh thread has not opened its counters yet, so it takes
        // the forced-failure path instead of inheriting a verdict.
        std::thread worker([&sink] {
            SpanSite &site = spanSite("test.prof.fallback");
            for (int i = 0; i < 8; ++i) {
                ScopedSpanCounters scope(&site);
                sink += burn();
            }
        });
        worker.join();
        setCountersEnabled(false);
        EXPECT_NE(sink, 0.0);

        EXPECT_EQ(perfOpenErrno(), err);
        EXPECT_EQ(counterSource(), CounterSource::Rusage);
        const SpanTableSnapshot table = spanTableSnapshot();
        EXPECT_EQ(table.source, "rusage");
        const SpanCounterRow *row = findRow(table, "test.prof.fallback");
        ASSERT_NE(row, nullptr);
        EXPECT_EQ(row->calls, 8);
        EXPECT_GT(row->task_clock_ns, 0u);
        // The software fallback reads no hardware counters.
        EXPECT_EQ(row->cycles, 0u);
        EXPECT_EQ(row->instructions, 0u);
        setPerfForceErrnoForTest(0);
    }
}

TEST(ProfCounters, FallbackSpanTableRoundTripsThroughProfileJson)
{
    ProfGuard guard;
    setPerfForceErrnoForTest(ENOSYS);
    setCountersEnabled(true);
    std::thread worker([] {
        SpanSite &site = spanSite("test.prof.roundtrip");
        for (int i = 0; i < 5; ++i) {
            ScopedSpanCounters scope(&site);
            burn();
        }
    });
    worker.join();
    setCountersEnabled(false);

    std::ostringstream os;
    writeProfileJson(snapshotProfile(), os);
    report::ProfileDoc doc;
    std::string error;
    ASSERT_TRUE(report::parseProfile(os.str(), doc, &error)) << error;
    EXPECT_EQ(doc.span_source, "rusage");
    const report::ProfileSpanRow *row =
        doc.findSpan("test.prof.roundtrip");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls, 5u);
    EXPECT_GT(row->task_clock_ns, 0u);
}

TEST(ProfCounters, SpanCallsAccumulateExactlyAcrossThreads)
{
    ProfGuard guard;
    setCountersEnabled(true);
    SpanSite &site = spanSite("test.prof.parallel");
    constexpr int kThreads = 4;
    constexpr int kScopesPerThread = 64;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&site] {
            for (int i = 0; i < kScopesPerThread; ++i) {
                ScopedSpanCounters scope(&site);
                burn();
            }
        });
    }
    for (std::thread &worker : workers) {
        worker.join();
    }
    setCountersEnabled(false);
    const SpanTableSnapshot table = spanTableSnapshot();
    const SpanCounterRow *row = findRow(table, "test.prof.parallel");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls, kThreads * kScopesPerThread);
    EXPECT_GT(row->task_clock_ns, 0u);
}

TEST(ProfSampler, SmokeProducesParseableFoldedStacks)
{
    if (!samplerSupported()) {
        GTEST_SKIP() << "sampler unsupported on this platform/build";
    }
    ProfGuard guard;
    SamplerOptions options;
    options.hz = 997;
    ASSERT_TRUE(startSampler(options));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
    double sink = 0.0;
    while (std::chrono::steady_clock::now() < deadline) {
        sink += burn();
    }
    stopSampler();
    EXPECT_NE(sink, 0.0);

    const ProfileSnapshot snapshot = snapshotProfile();
    EXPECT_GT(snapshot.samples, 10u);
    ASSERT_FALSE(snapshot.stacks.empty());
    ASSERT_FALSE(snapshot.frames.empty());
    EXPECT_EQ(snapshot.period_us, 1000000 / 997);

    // Folded format: `frame;frame;leaf count` per line, count numeric —
    // what flamegraph.pl and speedscope ingest.
    std::ostringstream os;
    writeFolded(snapshot, os);
    std::istringstream lines(os.str());
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        ASSERT_LT(space + 1, line.size()) << line;
        for (std::size_t i = space + 1; i < line.size(); ++i) {
            EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i])))
                << line;
        }
        // Frame names never embed ';' (the exporter rewrites them), so
        // the stack splits unambiguously.
        EXPECT_EQ(line.substr(0, space).find(";;"), std::string::npos);
        ++parsed;
    }
    EXPECT_EQ(parsed, snapshot.stacks.size());
}

/** Minimal span row for the synthetic diff tests. */
report::ProfileSpanRow
spanRow(const std::string &name, std::uint64_t calls,
        std::uint64_t task_clock_ns)
{
    report::ProfileSpanRow row;
    row.name = name;
    row.calls = calls;
    row.task_clock_ns = task_clock_ns;
    return row;
}

report::ProfileDoc
syntheticProfile(std::uint64_t gemm_ns)
{
    report::ProfileDoc doc;
    doc.period_us = 1003;
    doc.samples = 100;
    doc.threads = 1;
    doc.span_source = "rusage";
    doc.spans.push_back(spanRow("ml.kernels.gemm", 60, gemm_ns));
    doc.spans.push_back(
        spanRow("runtime.frame.process", 384, 150000000));
    return doc;
}

TEST(ProfDiff, RanksPessimizedKernelFirstAndFlagsIt)
{
    const report::ProfileDoc base = syntheticProfile(140000000);
    const report::ProfileDoc cur = syntheticProfile(290000000);
    const report::ProfileDiffResult diff =
        report::diffProfiles(base, cur, report::ProfileTolerances{});
    ASSERT_FALSE(diff.spans.empty());
    EXPECT_EQ(diff.spans.front().name, "ml.kernels.gemm");
    EXPECT_FALSE(diff.spans_use_cycles); // rusage runs rank by task-clock
    ASSERT_TRUE(diff.findings.hasRegression());
    EXPECT_EQ(diff.findings.findings.front().subject, "ml.kernels.gemm");
}

TEST(ProfDiff, ExactCallCountsGateDeterminism)
{
    const report::ProfileDoc base = syntheticProfile(140000000);
    report::ProfileDoc cur = syntheticProfile(140000000);
    cur.spans[0].calls = 61; // one extra kernel invocation
    const report::ProfileDiffResult diff =
        report::diffProfiles(base, cur, report::ProfileTolerances{});
    ASSERT_TRUE(diff.findings.hasRegression());
    EXPECT_NE(diff.findings.findings.front().message.find("calls"),
              std::string::npos);
}

TEST(ProfDiff, MissingSpanRowIsARegressionNewRowIsNot)
{
    const report::ProfileDoc base = syntheticProfile(140000000);
    report::ProfileDoc cur = syntheticProfile(140000000);
    cur.spans.erase(cur.spans.begin()); // ml.kernels.gemm vanished
    cur.spans.push_back(spanRow("ml.kernels.gemv", 10, 1000000));
    std::sort(cur.spans.begin(), cur.spans.end(),
              [](const report::ProfileSpanRow &a,
                 const report::ProfileSpanRow &b) {
                  return a.name < b.name;
              });
    const report::ProfileDiffResult diff =
        report::diffProfiles(base, cur, report::ProfileTolerances{});
    EXPECT_EQ(diff.findings.regressionCount(), 1u);
    bool saw_missing = false;
    bool saw_new_info = false;
    for (const report::Finding &finding : diff.findings.findings) {
        if (finding.subject == "ml.kernels.gemm" &&
            finding.severity == report::Severity::Regression) {
            saw_missing = true;
        }
        if (finding.subject == "ml.kernels.gemv" &&
            finding.severity == report::Severity::Info) {
            saw_new_info = true;
        }
    }
    EXPECT_TRUE(saw_missing);
    EXPECT_TRUE(saw_new_info);
}

TEST(ProfDiff, WideCostToleranceAbsorbsMachineDrift)
{
    const report::ProfileDoc base = syntheticProfile(140000000);
    const report::ProfileDoc cur = syntheticProfile(290000000);
    report::ProfileTolerances tol;
    tol.cost_rel = 100.0; // the cross-machine baseline setting
    const report::ProfileDiffResult diff =
        report::diffProfiles(base, cur, tol);
    EXPECT_FALSE(diff.findings.hasRegression());
    // Ranking still surfaces the slowdown even when tolerated.
    ASSERT_FALSE(diff.spans.empty());
    EXPECT_EQ(diff.spans.front().name, "ml.kernels.gemm");
}

} // namespace
} // namespace kodan::telemetry::prof
