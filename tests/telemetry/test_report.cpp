/**
 * @file
 * kodan-report engine suite: snapshot/journal parsing, tolerance-driven
 * diffing (identical runs pass, a 2x timer regression and a flipped
 * elision verdict fail and are named in the markdown), and trajectory
 * file round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/report.hpp"

namespace kodan::telemetry::report {
namespace {

const char *kBaseSnapshot = R"({
  "metrics": [
    {"name": "runtime.frames.processed", "type": "counter", "value": 120},
    {"name": "runtime.frame.process", "type": "timer", "count": 120,
     "total_s": 0.064, "max_s": 0.001},
    {"name": "ground.downlink.bits_queued", "type": "gauge",
     "value": 123456.0},
    {"name": "runtime.frame.compute_time_s", "type": "histogram",
     "count": 120, "sum": 2209.34, "edges": [1.0, 10.0],
     "buckets": [0, 60, 60], "p50": 10.0, "p95": 10.0, "p99": 10.0}
  ]
})";

Snapshot
snapshotFromText(const std::string &text)
{
    Snapshot snapshot;
    std::string error;
    EXPECT_TRUE(parseSnapshot(text, snapshot, &error)) << error;
    return snapshot;
}

const char *kBaseJournal =
    "{\"kodan_journal\": 1, \"events\": 2, \"dropped\": 0}\n"
    "{\"seq\": 0, \"region\": 1, \"slot\": 0, \"ord\": 0, "
    "\"type\": \"runtime.batch.begin\", \"fields\": {}}\n"
    "{\"seq\": 1, \"region\": 1, \"slot\": 1, \"ord\": 0, "
    "\"type\": \"runtime.frame.elision\", \"fields\": "
    "{\"verdict\": \"partial\", \"tiles_elided\": 66}}\n";

JournalDoc
journalFromText(const std::string &text)
{
    JournalDoc doc;
    std::string error;
    EXPECT_TRUE(parseJournal(text, doc, &error)) << error;
    return doc;
}

TEST(Report, ParsesSnapshotReadings)
{
    const Snapshot snapshot = snapshotFromText(kBaseSnapshot);
    ASSERT_EQ(snapshot.metrics.size(), 4u);
    const MetricReading *counter =
        snapshot.find("runtime.frames.processed");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->type, "counter");
    EXPECT_EQ(counter->count, 120);
    const MetricReading *timer = snapshot.find("runtime.frame.process");
    ASSERT_NE(timer, nullptr);
    EXPECT_EQ(timer->sum, 0.064);
    EXPECT_EQ(timer->max, 0.001);
    EXPECT_EQ(snapshot.find("no.such.metric"), nullptr);
}

TEST(Report, IdenticalSnapshotsProduceNoFindings)
{
    const Snapshot base = snapshotFromText(kBaseSnapshot);
    const DiffResult diff = diffSnapshots(base, base, Tolerances{});
    EXPECT_FALSE(diff.hasRegression());
    EXPECT_TRUE(diff.findings.empty());
}

TEST(Report, DoubledTimerIsARegressionNamingTheMetric)
{
    const Snapshot base = snapshotFromText(kBaseSnapshot);
    Snapshot slow = base;
    for (MetricReading &m : slow.metrics) {
        if (m.type == "timer") {
            m.sum *= 2.0;
        }
    }
    const DiffResult diff = diffSnapshots(base, slow, Tolerances{});
    ASSERT_TRUE(diff.hasRegression());
    ASSERT_EQ(diff.regressionCount(), 1u);
    EXPECT_EQ(diff.findings[0].subject, "runtime.frame.process");
    EXPECT_NE(diff.findings[0].message.find("slowed"), std::string::npos);
}

TEST(Report, TimerWithinToleranceOrBelowFloorPasses)
{
    const Snapshot base = snapshotFromText(kBaseSnapshot);
    Snapshot slightly_slow = base;
    for (MetricReading &m : slightly_slow.metrics) {
        if (m.type == "timer") {
            m.sum *= 1.4; // default tolerance is +50%
        }
    }
    EXPECT_FALSE(
        diffSnapshots(base, slightly_slow, Tolerances{}).hasRegression());

    // Sub-floor timers never regress, even at 10x.
    Tolerances floor_tol;
    floor_tol.timer_floor_s = 1.0;
    Snapshot ten_x = base;
    for (MetricReading &m : ten_x.metrics) {
        if (m.type == "timer") {
            m.sum *= 10.0;
        }
    }
    EXPECT_FALSE(diffSnapshots(base, ten_x, floor_tol).hasRegression());
}

TEST(Report, CounterDriftIsARegressionUnlessTolerated)
{
    const Snapshot base = snapshotFromText(kBaseSnapshot);
    Snapshot drifted = base;
    for (MetricReading &m : drifted.metrics) {
        if (m.name == "runtime.frames.processed") {
            m.count += 1;
        }
    }
    // Default value tolerance is exact.
    EXPECT_TRUE(diffSnapshots(base, drifted, Tolerances{}).hasRegression());

    Tolerances loose;
    loose.overrides.emplace_back("runtime.frames.processed", 0.1);
    EXPECT_FALSE(diffSnapshots(base, drifted, loose).hasRegression());

    Tolerances ignoring;
    ignoring.ignore_prefixes.push_back("runtime.");
    EXPECT_FALSE(
        diffSnapshots(base, drifted, ignoring).hasRegression());
}

TEST(Report, MissingMetricIsARegressionNewMetricIsInfo)
{
    const Snapshot base = snapshotFromText(kBaseSnapshot);
    Snapshot cur = base;
    cur.metrics.erase(cur.metrics.begin()); // drop (sorted) first metric
    const DiffResult diff = diffSnapshots(base, cur, Tolerances{});
    ASSERT_EQ(diff.regressionCount(), 1u);
    EXPECT_NE(diff.findings[0].message.find("missing"),
              std::string::npos);

    const DiffResult reverse = diffSnapshots(cur, base, Tolerances{});
    EXPECT_FALSE(reverse.hasRegression());
    ASSERT_EQ(reverse.findings.size(), 1u);
    EXPECT_NE(reverse.findings[0].message.find("new metric"),
              std::string::npos);
}

TEST(Report, FlippedElisionVerdictFailsTheJournalDiff)
{
    const JournalDoc base = journalFromText(kBaseJournal);
    EXPECT_EQ(base.declared_events, 2u);
    ASSERT_EQ(base.events.size(), 2u);

    std::string flipped_text = kBaseJournal;
    const std::size_t at = flipped_text.find("partial");
    ASSERT_NE(at, std::string::npos);
    flipped_text.replace(at, 7, "full");
    const JournalDoc flipped = journalFromText(flipped_text);

    EXPECT_FALSE(diffJournals(base, base).hasRegression());
    const DiffResult diff = diffJournals(base, flipped);
    ASSERT_TRUE(diff.hasRegression());
    // The finding names the offending event and shows both verdicts.
    EXPECT_NE(diff.findings[0].subject.find("runtime.frame.elision"),
              std::string::npos);
    EXPECT_NE(diff.findings[0].message.find("partial"),
              std::string::npos);
    EXPECT_NE(diff.findings[0].message.find("full"), std::string::npos);
}

TEST(Report, JournalEventCountMismatchIsARegression)
{
    const JournalDoc base = journalFromText(kBaseJournal);
    JournalDoc truncated = base;
    truncated.events.pop_back();
    const DiffResult diff = diffJournals(base, truncated);
    ASSERT_TRUE(diff.hasRegression());
    EXPECT_NE(diff.findings[0].message.find("event count"),
              std::string::npos);
}

TEST(Report, MarkdownNamesVerdictAndOffenders)
{
    const Snapshot base = snapshotFromText(kBaseSnapshot);
    Snapshot slow = base;
    for (MetricReading &m : slow.metrics) {
        if (m.type == "timer") {
            m.sum *= 2.0;
        }
    }
    std::ostringstream regressed;
    writeMarkdown(diffSnapshots(base, slow, Tolerances{}), "a", "b",
                  regressed);
    EXPECT_NE(regressed.str().find("REGRESSION"), std::string::npos);
    EXPECT_NE(regressed.str().find("runtime.frame.process"),
              std::string::npos);

    std::ostringstream clean;
    writeMarkdown(diffSnapshots(base, base, Tolerances{}), "a", "b",
                  clean);
    EXPECT_NE(clean.str().find("Verdict: OK"), std::string::npos);
}

TEST(Report, TrajectoryRoundTripsAndReplacesSameLabel)
{
    Trajectory trajectory;
    trajectory.name = "unit";
    TrajectoryEntry entry;
    entry.label = "run1";
    entry.snapshot = snapshotFromText(kBaseSnapshot);
    trajectory.entries.push_back(entry);

    std::ostringstream out;
    writeTrajectory(trajectory, out);
    Trajectory parsed;
    std::string error;
    ASSERT_TRUE(parseTrajectory(out.str(), parsed, &error)) << error;
    EXPECT_EQ(parsed.name, "unit");
    ASSERT_EQ(parsed.entries.size(), 1u);
    EXPECT_EQ(parsed.entries[0].label, "run1");
    ASSERT_EQ(parsed.entries[0].snapshot.metrics.size(),
              entry.snapshot.metrics.size());
    const MetricReading *timer =
        parsed.entries[0].snapshot.find("runtime.frame.process");
    ASSERT_NE(timer, nullptr);
    EXPECT_EQ(timer->sum, 0.064);

    // appendTrajectory: create, append a second label, replace run1.
    const std::string path =
        ::testing::TempDir() + "/kodan_report_trajectory.json";
    std::remove(path.c_str());
    ASSERT_TRUE(appendTrajectory(path, "unit", entry, &error)) << error;
    TrajectoryEntry second = entry;
    second.label = "run2";
    ASSERT_TRUE(appendTrajectory(path, "unit", second, &error)) << error;
    TrajectoryEntry replacement = entry; // same label as run1
    replacement.snapshot.metrics[0].count = 999;
    ASSERT_TRUE(appendTrajectory(path, "unit", replacement, &error))
        << error;

    Trajectory on_disk;
    std::ifstream file(path);
    std::stringstream text;
    text << file.rdbuf();
    ASSERT_TRUE(parseTrajectory(text.str(), on_disk, &error)) << error;
    ASSERT_EQ(on_disk.entries.size(), 2u);
    EXPECT_EQ(on_disk.entries[0].label, "run1");
    EXPECT_EQ(on_disk.entries[1].label, "run2");
    EXPECT_EQ(on_disk.entries[0].snapshot.metrics[0].count, 999);
    std::remove(path.c_str());
}

TEST(Report, MalformedInputsReportErrors)
{
    Snapshot snapshot;
    std::string error;
    EXPECT_FALSE(parseSnapshot("{}", snapshot, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseSnapshot("not json", snapshot, &error));

    JournalDoc doc;
    EXPECT_FALSE(parseJournal("", doc, &error));
    EXPECT_FALSE(parseJournal("{\"not_a_header\": 1}\n", doc, &error));

    EXPECT_FALSE(loadSnapshot("/no/such/file.json", snapshot, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace kodan::telemetry::report
