/**
 * @file
 * Unit tests for the metrics registry: primitive semantics, histogram
 * bucket-edge behavior, and the determinism contract — every
 * integer-valued reading must be invariant to thread count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry {
namespace {

/** Enables recording for one test and restores a clean slate after. */
class TelemetryGuard
{
  public:
    TelemetryGuard()
        : was_enabled_(enabled())
    {
        resetAll();
        setEnabled(true);
    }

    ~TelemetryGuard()
    {
        setEnabled(was_enabled_);
        resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool was_enabled_;
};

TEST(Metrics, CounterAccumulatesAndResets)
{
    TelemetryGuard guard;
    Counter counter;
    counter.add(3);
    counter.add(4);
    EXPECT_EQ(counter.value(), 7);
    counter.reset();
    EXPECT_EQ(counter.value(), 0);
}

TEST(Metrics, GaugeSetAndAdd)
{
    TelemetryGuard guard;
    Gauge gauge;
    gauge.set(2.5);
    EXPECT_EQ(gauge.value(), 2.5);
    gauge.add(1.25);
    EXPECT_EQ(gauge.value(), 3.75);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Metrics, HistogramBucketEdgeSemantics)
{
    TelemetryGuard guard;
    // Bucket i counts edges[i-1] <= v < edges[i]; last is overflow.
    Histogram hist({1.0, 2.0, 4.0});
    hist.record(0.5);  // bucket 0: v < 1
    hist.record(1.0);  // bucket 1: a value AT an edge lands above it
    hist.record(1.99); // bucket 1
    hist.record(2.0);  // bucket 2
    hist.record(4.0);  // bucket 3 (overflow)
    hist.record(100.0); // bucket 3
    const auto buckets = hist.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 1);
    EXPECT_EQ(buckets[1], 2);
    EXPECT_EQ(buckets[2], 1);
    EXPECT_EQ(buckets[3], 2);
    EXPECT_EQ(hist.count(), 6);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.99 + 2.0 + 4.0 + 100.0);
}

TEST(Metrics, TimerTracksCountTotalAndMax)
{
    TelemetryGuard guard;
    Timer timer;
    timer.record(0.25);
    timer.record(1.5);
    timer.record(0.5);
    EXPECT_EQ(timer.count(), 3);
    EXPECT_DOUBLE_EQ(timer.totalSeconds(), 2.25);
    EXPECT_DOUBLE_EQ(timer.maxSeconds(), 1.5);
}

TEST(Metrics, RegistrationIsIdempotentByName)
{
    TelemetryGuard guard;
    Counter &a = registry().counter("test.registry.counter");
    Counter &b = registry().counter("test.registry.counter");
    EXPECT_EQ(&a, &b);
    Histogram &h1 =
        registry().histogram("test.registry.hist", {1.0, 2.0});
    // Edges of a later registration are ignored; same object comes back.
    Histogram &h2 =
        registry().histogram("test.registry.hist", {9.0});
    EXPECT_EQ(&h1, &h2);
    ASSERT_EQ(h2.edges().size(), 2u);
}

TEST(Metrics, SnapshotIsSortedAndFindable)
{
    TelemetryGuard guard;
    registry().counter("test.snap.zebra").add(1);
    registry().counter("test.snap.alpha").add(2);
    registry().gauge("test.snap.gauge").set(7.0);
    const RegistrySnapshot snap = registry().snapshot();
    for (std::size_t i = 1; i < snap.metrics.size(); ++i) {
        EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
    }
    const MetricSample *alpha = snap.find("test.snap.alpha");
    ASSERT_NE(alpha, nullptr);
    EXPECT_EQ(alpha->kind, MetricSample::Kind::Counter);
    EXPECT_EQ(alpha->count, 2);
    const MetricSample *gauge = snap.find("test.snap.gauge");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->sum, 7.0);
    EXPECT_EQ(snap.find("test.snap.missing"), nullptr);
}

// Macro-driven tests only exist when instrumentation is compiled in
// (they are vacuous under -DKODAN_TELEMETRY=OFF).
#ifndef KODAN_TELEMETRY_DISABLED

TEST(Metrics, MacrosAreInertWhileDisabled)
{
    TelemetryGuard guard;
    setEnabled(false);
    KODAN_COUNT("test.macro.disabled");
    setEnabled(true);
    const RegistrySnapshot snap = registry().snapshot();
    // The disabled macro never even registers the metric.
    EXPECT_EQ(snap.find("test.macro.disabled"), nullptr);
}

TEST(Metrics, MacrosRecordWhileEnabled)
{
    TelemetryGuard guard;
    KODAN_COUNT("test.macro.count");
    KODAN_COUNT_ADD("test.macro.count", 4);
    KODAN_GAUGE_ADD("test.macro.gauge", 2.5);
    KODAN_HISTOGRAM("test.macro.hist", 1.5, 1.0, 2.0);
    KODAN_TIMER_RECORD("test.macro.timer", 0.125);
    const RegistrySnapshot snap = registry().snapshot();
    EXPECT_EQ(snap.find("test.macro.count")->count, 5);
    EXPECT_EQ(snap.find("test.macro.gauge")->sum, 2.5);
    EXPECT_EQ(snap.find("test.macro.hist")->buckets[1], 1);
    EXPECT_EQ(snap.find("test.macro.timer")->count, 1);
    EXPECT_DOUBLE_EQ(snap.find("test.macro.timer")->sum, 0.125);
}

/**
 * The determinism contract: integer readings (counter values, histogram
 * bucket counts, timer call counts) must merge to exactly the same
 * totals no matter how many threads recorded them.
 */
TEST(Metrics, IntegerReadingsAreThreadCountInvariant)
{
    TelemetryGuard guard;
    constexpr int kItems = 5000;
    std::int64_t baseline_count = 0;
    std::vector<std::int64_t> baseline_buckets;
    std::int64_t baseline_timer_calls = 0;

    for (int threads : {1, 8}) {
        util::setGlobalThreads(threads);
        registry().reset();
        util::parallelFor(kItems, [](std::size_t i) {
            KODAN_COUNT_ADD("test.det.items", 2);
            KODAN_HISTOGRAM("test.det.sizes",
                            static_cast<double>(i % 10), 2.0, 5.0, 8.0);
            KODAN_TIMER_RECORD("test.det.step", 1.0e-6);
        });
        const RegistrySnapshot snap = registry().snapshot();
        const MetricSample *items = snap.find("test.det.items");
        const MetricSample *sizes = snap.find("test.det.sizes");
        const MetricSample *step = snap.find("test.det.step");
        ASSERT_NE(items, nullptr);
        ASSERT_NE(sizes, nullptr);
        ASSERT_NE(step, nullptr);
        if (threads == 1) {
            baseline_count = items->count;
            baseline_buckets = sizes->buckets;
            baseline_timer_calls = step->count;
            EXPECT_EQ(baseline_count, 2 * kItems);
            continue;
        }
        SCOPED_TRACE(std::to_string(threads) + " threads");
        EXPECT_EQ(items->count, baseline_count);
        EXPECT_EQ(sizes->buckets, baseline_buckets);
        EXPECT_EQ(sizes->count, kItems);
        EXPECT_EQ(step->count, baseline_timer_calls);
    }
}

#endif // KODAN_TELEMETRY_DISABLED

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations)
{
    TelemetryGuard guard;
    Counter &counter = registry().counter("test.reset.counter");
    counter.add(41);
    registry().reset();
    const RegistrySnapshot snap = registry().snapshot();
    const MetricSample *sample = snap.find("test.reset.counter");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->count, 0);
    // The old reference is still the live metric.
    counter.add(1);
    EXPECT_EQ(registry().counter("test.reset.counter").value(), 1);
}

/* ------------------------------------------------------------------ */
/* histogramQuantile edge cases                                        */
/* ------------------------------------------------------------------ */

TEST(HistogramQuantile, EmptyInputsReturnZero)
{
    EXPECT_EQ(histogramQuantile({}, {}, 0.5), 0.0);
    // Edges without any counted observations.
    EXPECT_EQ(histogramQuantile({1.0, 2.0}, {0, 0, 0}, 0.5), 0.0);
    // Counts without edges.
    EXPECT_EQ(histogramQuantile({}, {5}, 0.5), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesWithinEdge)
{
    // All 10 observations in [0, 4): p50 interpolates to the middle,
    // p0 to the lower bound, p100 to the upper edge.
    const std::vector<double> edges = {4.0};
    const std::vector<std::int64_t> buckets = {10, 0};
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, 1.0), 4.0);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastEdge)
{
    // Every observation beyond the last edge: no upper bound is known,
    // so the estimate clamps to the last edge rather than extrapolate.
    const std::vector<double> edges = {1.0, 2.0};
    const std::vector<std::int64_t> buckets = {0, 0, 7};
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, 0.99), 2.0);
}

TEST(HistogramQuantile, OutOfRangeQuantilesClampToValidRange)
{
    const std::vector<double> edges = {10.0};
    const std::vector<std::int64_t> buckets = {4, 0};
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, -0.5),
                     histogramQuantile(edges, buckets, 0.0));
    EXPECT_DOUBLE_EQ(histogramQuantile(edges, buckets, 2.0),
                     histogramQuantile(edges, buckets, 1.0));
}

TEST(HistogramQuantile, MonotoneInProbability)
{
    const std::vector<double> edges = {1.0, 2.0, 4.0, 8.0};
    const std::vector<std::int64_t> buckets = {5, 3, 9, 2, 1};
    double previous = histogramQuantile(edges, buckets, 0.0);
    for (int step = 1; step <= 100; ++step) {
        const double q = static_cast<double>(step) / 100.0;
        const double value = histogramQuantile(edges, buckets, q);
        EXPECT_GE(value, previous) << "q=" << q;
        previous = value;
    }
}

} // namespace
} // namespace kodan::telemetry
