/**
 * @file
 * Fleet health plane suite: detector step semantics (quantized inputs,
 * warmup, windows), the rules engine's firing→resolved hysteresis and
 * evidence bounds, top-K rollup cardinality control, the alert JSONL
 * byte format, and the end-to-end determinism contract — byte-identical
 * alert exports from the degraded constellation scenario across
 * KODAN_THREADS {1,4,16} × shard_size {1,7,64}.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "sim/constellation.hpp"
#include "telemetry/detector.hpp"
#include "telemetry/health.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry::health {
namespace {

/* ------------------------------------------------------------------ */
/* Detectors                                                           */
/* ------------------------------------------------------------------ */

TEST(DetectorQuantize, IdempotentAndNanSafe)
{
    const double v = detectorQuantize(3.14159);
    EXPECT_EQ(detectorQuantize(v), v);
    EXPECT_EQ(detectorQuantize(std::numeric_limits<double>::quiet_NaN()),
              0.0);
    EXPECT_EQ(detectorQuantize(0.0), 0.0);
}

TEST(EwmaLevelShift, SteadyStreamNeverFires)
{
    EwmaLevelShift detector;
    for (int i = 0; i < 200; ++i) {
        const Verdict verdict = detector.step(10.0 + 0.001 * (i % 3));
        EXPECT_FALSE(verdict.anomalous) << "observation " << i;
    }
}

TEST(EwmaLevelShift, WarmupSuppressesVerdicts)
{
    EwmaConfig config;
    config.warmup = 8;
    EwmaLevelShift detector(config);
    // Even a wild stream stays quiet until `warmup` observations are in.
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(detector.step(i % 2 == 0 ? 1e6 : -1e6).anomalous)
            << "observation " << i;
    }
}

TEST(EwmaLevelShift, LevelShiftFires)
{
    EwmaLevelShift detector;
    for (int i = 0; i < 64; ++i) {
        detector.step(100.0 + (i % 2 == 0 ? 0.5 : -0.5));
    }
    const Verdict verdict = detector.step(1e4);
    EXPECT_TRUE(verdict.anomalous);
    EXPECT_GE(verdict.score, 1.0);
}

TEST(EwmaLevelShift, ResetForgetsHistory)
{
    EwmaLevelShift detector;
    for (int i = 0; i < 64; ++i) {
        detector.step(100.0);
    }
    detector.reset();
    // Fresh warmup: the first observation after reset cannot fire.
    EXPECT_FALSE(detector.step(1e9).anomalous);
}

TEST(RobustZScore, OutlierFiresNeighborsDoNot)
{
    RobustZScore detector;
    for (int i = 0; i < 32; ++i) {
        const Verdict verdict = detector.step(50.0 + (i % 3) * 0.5);
        EXPECT_FALSE(verdict.anomalous) << "observation " << i;
    }
    EXPECT_TRUE(detector.step(5000.0).anomalous);
    // The window median/MAD are not dragged by the single outlier.
    EXPECT_FALSE(detector.step(50.5).anomalous);
}

TEST(RobustZScore, MinPointsSuppressesVerdicts)
{
    RobustZConfig config;
    config.min_points = 8;
    RobustZScore detector(config);
    for (int i = 0; i < 7; ++i) {
        detector.step(1.0);
    }
    // Only 7 points in the window: no verdict even for a huge spike.
    EXPECT_FALSE(detector.step(1e9).anomalous);
}

TEST(Flatline, StuckRunFiresAtWindow)
{
    FlatlineConfig config;
    config.window = 4;
    Flatline detector(config);
    EXPECT_FALSE(detector.step(7.0).anomalous); // run = 1
    EXPECT_FALSE(detector.step(7.0).anomalous); // run = 2
    EXPECT_FALSE(detector.step(7.0).anomalous); // run = 3
    EXPECT_TRUE(detector.step(7.0).anomalous);  // run = 4 = window
    // A changed value breaks the run.
    EXPECT_FALSE(detector.step(8.0).anomalous);
}

TEST(Flatline, ZeroRunsIgnoredByDefault)
{
    FlatlineConfig config;
    config.window = 3;
    Flatline detector(config);
    for (int i = 0; i < 16; ++i) {
        EXPECT_FALSE(detector.step(0.0).anomalous)
            << "idle signal must not read as stuck";
    }
}

TEST(Flatline, EqualityIsExactFixedPoint)
{
    FlatlineConfig config;
    config.window = 2;
    Flatline detector(config);
    detector.step(1.0);
    // A one-ulp different value must break the run — quantization only
    // collapses differences below the fixed-point step — and then a
    // repeat of that value completes a fresh window-2 run exactly.
    const double next =
        std::nextafter(1.0, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(detector.step(next).anomalous); // run restarts at 1
    EXPECT_TRUE(detector.step(next).anomalous);  // run = 2 = window
}

/* ------------------------------------------------------------------ */
/* Rules engine                                                        */
/* ------------------------------------------------------------------ */

/** A plane with no stock rules and a small config, for direct feeding. */
HealthConfig
bareConfig()
{
    HealthConfig config;
    config.default_rules = false;
    config.top_k = 8;
    config.max_evidence = 8;
    return config;
}

TEST(RulesEngine, ThresholdHysteresisFiresAndResolves)
{
    HealthPlane plane;
    HealthConfig config = bareConfig();
    plane.configure(config);
    AlertRule rule;
    rule.name = "queue.high";
    rule.signal = "queue.depth";
    rule.kind = AlertRule::Kind::Threshold;
    rule.op = AlertRule::Op::Gt;
    rule.threshold = 100.0;
    rule.fire_after = 2;
    rule.clear_after = 2;
    plane.addRule(rule);

    const auto feed = [&](std::int64_t bin, double value) {
        plane.observe(EntityKind::Satellite, 7, "queue.depth", bin,
                      static_cast<double>(bin) * 60.0, value);
    };

    feed(0, 50.0);  // clear
    feed(1, 150.0); // breach 1 of 2 — not firing yet
    EXPECT_EQ(plane.snapshot().alerts_firing, 0);
    feed(2, 200.0); // breach 2 of 2 — fires
    {
        const HealthSnapshot snapshot = plane.snapshot();
        ASSERT_EQ(snapshot.alerts.size(), 1u);
        const Alert &alert = snapshot.alerts.front();
        EXPECT_TRUE(alert.firing);
        EXPECT_EQ(alert.rule, "queue.high");
        EXPECT_EQ(alert.entity_kind, EntityKind::Satellite);
        EXPECT_EQ(alert.entity, 7);
        EXPECT_EQ(alert.first_bin, 1); // breach streak started at bin 1
        EXPECT_EQ(alert.last_bin, 2);
        EXPECT_EQ(alert.peak_value, 200.0);
    }
    feed(3, 50.0); // clear 1 of 2 — still firing
    EXPECT_EQ(plane.snapshot().alerts_firing, 1);
    feed(4, 50.0); // clear 2 of 2 — resolves
    {
        const HealthSnapshot snapshot = plane.snapshot();
        EXPECT_EQ(snapshot.alerts_firing, 0);
        ASSERT_EQ(snapshot.alerts.size(), 1u);
        EXPECT_FALSE(snapshot.alerts.front().firing);
    }
    // A fresh breach streak opens a *new* alert.
    feed(5, 300.0);
    feed(6, 300.0);
    EXPECT_EQ(plane.snapshot().alerts.size(), 2u);
}

TEST(RulesEngine, EvidenceIsBoundedByConfig)
{
    HealthPlane plane;
    HealthConfig config = bareConfig();
    config.max_evidence = 3;
    plane.configure(config);
    AlertRule rule;
    rule.name = "hot";
    rule.signal = "temp";
    rule.threshold = 0.0;
    plane.addRule(rule);

    for (std::int64_t bin = 0; bin < 20; ++bin) {
        plane.observe(EntityKind::Stage, 0, "temp", bin,
                      static_cast<double>(bin), 1.0 + bin);
    }
    const HealthSnapshot snapshot = plane.snapshot();
    ASSERT_EQ(snapshot.alerts.size(), 1u);
    const Alert &alert = snapshot.alerts.front();
    EXPECT_LE(alert.evidence.size(), 3u);
    EXPECT_FALSE(alert.evidence.empty());
    // The alert's span and peak still cover the whole streak.
    EXPECT_EQ(alert.last_bin, 19);
    EXPECT_EQ(alert.peak_value, 20.0);
}

TEST(RulesEngine, AbsenceFiresAfterGapAndCarriesLastSighting)
{
    HealthPlane plane;
    plane.configure(bareConfig());
    AlertRule rule;
    rule.name = "silent";
    rule.signal = "beacon";
    rule.kind = AlertRule::Kind::Absence;
    rule.gap_bins = 4;
    rule.fire_after = 1;
    plane.addRule(rule);

    plane.observe(EntityKind::Satellite, 2, "beacon", 10, 100.0, 1.0);
    plane.advance(12, 120.0); // gap 2 <= 4: quiet
    EXPECT_EQ(plane.snapshot().alerts_firing, 0);
    plane.advance(15, 150.0); // gap 5 > 4: fires
    const HealthSnapshot snapshot = plane.snapshot();
    ASSERT_EQ(snapshot.alerts.size(), 1u);
    EXPECT_TRUE(snapshot.alerts.front().firing);
    EXPECT_EQ(snapshot.alerts.front().rule, "silent");
    EXPECT_EQ(snapshot.alerts.front().entity, 2);
}

TEST(RulesEngine, TopKRollupFoldsOverflowIntoOther)
{
    HealthPlane plane;
    HealthConfig config = bareConfig();
    config.top_k = 2;
    plane.configure(config);
    AlertRule rule;
    rule.name = "hot";
    rule.signal = "temp";
    rule.threshold = 100.0;
    plane.addRule(rule);

    // Five entities; entity e breaches e times (entity 4 worst).
    for (std::int64_t entity = 0; entity < 5; ++entity) {
        for (std::int64_t bin = 0; bin < 8; ++bin) {
            const double value = bin < entity ? 200.0 : 0.0;
            plane.observe(EntityKind::Satellite, entity, "temp", bin,
                          static_cast<double>(bin), value);
        }
    }
    const HealthSnapshot snapshot = plane.snapshot();
    EXPECT_EQ(snapshot.entities, 5);
    ASSERT_EQ(snapshot.top.size(), 2u);
    // Worst offenders first; the remaining three fold into `other`.
    EXPECT_EQ(snapshot.top[0].entity, 4);
    EXPECT_EQ(snapshot.top[1].entity, 3);
    EXPECT_EQ(snapshot.other.members, 3);
    EXPECT_EQ(snapshot.other.observations, 3 * 8);
    const std::int64_t named =
        snapshot.top[0].observations + snapshot.top[1].observations;
    EXPECT_EQ(named + snapshot.other.observations, snapshot.observations);
}

TEST(RulesEngine, AlertsJsonlHeaderAndFieldOrder)
{
    HealthPlane plane;
    plane.configure(bareConfig());
    AlertRule rule;
    rule.name = "hot";
    rule.signal = "temp";
    rule.threshold = 0.0;
    plane.addRule(rule);
    plane.observe(EntityKind::Station, 1, "temp", 3, 30.0, 2.5);

    std::ostringstream oss;
    writeAlertsJsonl(plane.snapshot().alerts, oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("\"kodan_alerts\":1"), std::string::npos);
    EXPECT_NE(text.find("\"alerts\":1"), std::string::npos);
    EXPECT_NE(text.find("\"rule\":\"hot\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\":\"station\""), std::string::npos);
    EXPECT_NE(text.find("\"state\":\"firing\""), std::string::npos);
    EXPECT_NE(text.find("\"evidence\":[{\"bin\":3"), std::string::npos);
}

/* ------------------------------------------------------------------ */
/* End-to-end determinism over the constellation engine                */
/* ------------------------------------------------------------------ */

/** Arms the global plane with recording off; restores everything. */
class HealthGuard
{
  public:
    HealthGuard()
        : metrics_were_enabled_(telemetry::enabled()),
          journal_was_enabled_(telemetry::journalEnabled()),
          health_was_enabled_(healthEnabled())
    {
        telemetry::resetAll();
        telemetry::setEnabled(false);
        telemetry::setJournalEnabled(false);
        setHealthEnabled(true);
        plane().reset();
    }

    ~HealthGuard()
    {
        plane().reset();
        setHealthEnabled(health_was_enabled_);
        telemetry::setEnabled(metrics_were_enabled_);
        telemetry::setJournalEnabled(journal_was_enabled_);
        telemetry::resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool metrics_were_enabled_;
    bool journal_was_enabled_;
    bool health_was_enabled_;
};

constexpr long long kDegradedSat = 3;

/** The bench_health scenario at test scale: a provisioned fleet whose
 *  product volume drains fully every pass, with one satellite's
 *  contacts zeroed from 12 h on so only it backs up and goes silent. */
sim::ConstellationConfig
degradedScenario(std::size_t shard_size)
{
    sim::ConstellationConfig config;
    config.mission = sim::MissionConfig::makeConstellation(8, 2, 1);
    config.mission.duration = 2.0 * 86400.0;
    config.mission.scheduler_step = 30.0;
    config.mission.contact_scan_step = 60.0;
    config.mission.telemetry_bin_s = 1800.0;
    config.mission.telemetry_prefix = "health";
    config.shard_size = shard_size;
    config.chunk_s = 6.0 * 3600.0;
    config.storage_bits = 60.0e9;
    config.degrade.satellite = kDegradedSat;
    config.degrade.after_s = 12.0 * 3600.0;
    return config;
}

sim::FilterBehavior
provisionedFilter()
{
    sim::FilterBehavior filter;
    filter.frame_time = 200.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.05;
    filter.product_fraction = 0.1;
    filter.send_unprocessed = false;
    return filter;
}

/** Run the scenario on a fresh global plane; return the alert bytes. */
std::string
alertBytes(const sim::ConstellationConfig &config, int threads)
{
    plane().reset();
    util::setGlobalThreads(threads);
    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);
    engine.run(config, provisionedFilter());
    util::setGlobalThreads(0);
    std::ostringstream oss;
    writeAlertsJsonl(plane().snapshot().alerts, oss);
    return oss.str();
}

// The headline contract (ctest -L health): the alert JSONL is a pure
// function of the mission, bit-identical across thread counts and
// shard sizes.
TEST(HealthDeterminism, AlertBytesInvariantAcrossThreadsAndShards)
{
    HealthGuard guard;
    const int thread_counts[] = {1, 4, 16};
    const std::size_t shard_sizes[] = {1, 7, 64};

    const std::string reference = alertBytes(degradedScenario(1), 1);
    ASSERT_FALSE(reference.empty());
    ASSERT_NE(reference.find("\"state\":\"firing\""), std::string::npos)
        << "degraded scenario produced no firing alert";

    for (const int threads : thread_counts) {
        for (const std::size_t shard : shard_sizes) {
            if (threads == 1 && shard == 1) {
                continue;
            }
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " shard=" + std::to_string(shard));
            EXPECT_EQ(alertBytes(degradedScenario(shard), threads),
                      reference);
        }
    }
}

// The degraded fixture detects exactly the injected fault: the dead
// satellite backs up (storage.drop) and goes silent (downlink.absence);
// healthy satellites fire nothing.
TEST(HealthDeterminism, DegradedSatelliteFiresExpectedAlerts)
{
    HealthGuard guard;
    alertBytes(degradedScenario(4), 1);
    // alertBytes resets before running, so the global plane still holds
    // this run's state.
    const HealthSnapshot snapshot = plane().snapshot();
    bool storage_drop = false;
    bool downlink_absence = false;
    for (const Alert &alert : snapshot.alerts) {
        if (alert.entity_kind != EntityKind::Satellite) {
            continue;
        }
        EXPECT_EQ(alert.entity, kDegradedSat)
            << "rule " << alert.rule << " fired for a healthy satellite";
        EXPECT_FALSE(alert.evidence.empty()) << "rule " << alert.rule;
        storage_drop |= alert.rule == "storage.drop";
        downlink_absence |= alert.rule == "downlink.absence";
    }
    EXPECT_TRUE(storage_drop);
    EXPECT_TRUE(downlink_absence);
    // The degraded satellite tops the offender rollup.
    ASSERT_FALSE(snapshot.top.empty());
    EXPECT_EQ(snapshot.top.front().entity, kDegradedSat);
    EXPECT_GT(snapshot.top.front().alerts_fired, 0);
}

// Disabled plane: the engine must skip the fold entirely.
TEST(HealthDeterminism, DisabledPlaneObservesNothing)
{
    HealthGuard guard;
    setHealthEnabled(false);
    plane().reset();
    util::setGlobalThreads(1);
    const sim::ConstellationEngine engine(nullptr, 1.0 / 3.0);
    engine.run(degradedScenario(4), provisionedFilter());
    util::setGlobalThreads(0);
    const HealthSnapshot snapshot = plane().snapshot();
    EXPECT_EQ(snapshot.observations, 0);
    EXPECT_EQ(snapshot.alerts.size(), 0u);
}

} // namespace
} // namespace kodan::telemetry::health
