/**
 * @file
 * Flight-recorder suite: the journal's (region, slot, ord) ordering
 * contract, byte-identical JSONL export across thread counts for the
 * mission sim and the batch runtime, ring-mode bounded memory, and
 * round-trip parsing of the JSONL / Chrome-trace exports with the
 * in-tree JSON reader.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../core/fixture.hpp"
#include "core/kodan.hpp"
#include "sim/mission.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry {
namespace {

namespace json = kodan::util::json;

/** Restores journal/metrics state and the thread default on exit. */
class JournalGuard
{
  public:
    JournalGuard()
        : metrics_were_enabled_(enabled()),
          journal_was_enabled_(journalEnabled()),
          saved_ring_(journalRingCapacity())
    {
        resetAll();
        setJournalRingCapacity(0);
    }

    ~JournalGuard()
    {
        setEnabled(metrics_were_enabled_);
        setJournalEnabled(journal_was_enabled_);
        setJournalRingCapacity(saved_ring_);
        resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool metrics_were_enabled_;
    bool journal_was_enabled_;
    std::size_t saved_ring_;
};

/** Serialize the whole collected journal to a string. */
std::string
exportJournal()
{
    std::ostringstream out;
    writeJournalJsonl(collectJournal(), journalDroppedEvents(), out);
    return out.str();
}

sim::MissionConfig
smallMission()
{
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(3);
    config.duration = 2.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    return config;
}

TEST(Journal, OrderingKeyFollowsRegionsAndScopes)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    {
        JournalRegion region("unit.work");
        EXPECT_GT(region.id(), 0u);
        JournalEventBuilder("unit.step").i64("k", 1);
        {
            JournalScope scope(region.id(), 3);
            JournalEventBuilder("unit.item").i64("k", 2);
            JournalEventBuilder("unit.item").i64("k", 3);
        }
        // Cursor restored to the region's own lane after the scope.
        JournalEventBuilder("unit.step").i64("k", 4);
    }
    const auto events = collectJournal();
    ASSERT_EQ(events.size(), 5u);
    // Slot 0 lane: begin, then the two region-level steps in ord order.
    EXPECT_EQ(events[0].type, "unit.work.begin");
    EXPECT_EQ(events[0].slot, 0u);
    EXPECT_EQ(events[0].ord, 0u);
    EXPECT_EQ(events[1].type, "unit.step");
    EXPECT_EQ(events[1].ord, 1u);
    EXPECT_EQ(events[2].type, "unit.step");
    EXPECT_EQ(events[2].ord, 2u);
    // Work item 3 sorts after the whole slot-0 lane, into slot 4.
    EXPECT_EQ(events[3].type, "unit.item");
    EXPECT_EQ(events[3].slot, 4u);
    EXPECT_EQ(events[3].ord, 0u);
    EXPECT_EQ(events[4].slot, 4u);
    EXPECT_EQ(events[4].ord, 1u);
    // All events share the region id.
    for (const auto &event : events) {
        EXPECT_EQ(event.region, events[0].region);
    }
#endif
}

TEST(Journal, DisabledJournalRecordsNothing)
{
#ifndef KODAN_TELEMETRY_DISABLED
    JournalGuard guard;
    setJournalEnabled(false);
    JournalRegion region("unit.off");
    EXPECT_EQ(region.id(), 0u);
    JournalEventBuilder("unit.never").i64("k", 1);
    EXPECT_TRUE(collectJournal().empty());
#endif
}

TEST(Journal, MissionJournalBytesInvariantToThreadCount)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    const sim::MissionConfig config = smallMission();
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.2;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    util::setGlobalThreads(1);
    sim.run(config, filter);
    const std::string serial = exportJournal();
    EXPECT_NE(serial.find("sim.mission.begin"), std::string::npos);
    EXPECT_NE(serial.find("sim.satellite.queue"), std::string::npos);
    EXPECT_NE(serial.find("ground.contact.begin"), std::string::npos);
    clearJournal();

    util::setGlobalThreads(7);
    sim.run(config, filter);
    const std::string parallel = exportJournal();
    EXPECT_EQ(serial, parallel);
#endif
}

TEST(Journal, RuntimeBatchJournalBytesInvariantToThreadCount)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    core::SelectionLogic logic;
    logic.tiles_per_side = 6;
    logic.per_context.assign(
        pipeline.shared.partition.context_count,
        {core::ActionKind::RunModel, pipeline.app4.zoo.reference});
    const core::Runtime runtime(logic, pipeline.shared.engine.get(),
                                &pipeline.app4.zoo, hw::Target::Orin15W);

    util::setGlobalThreads(1);
    runtime.processFrames(pipeline.shared.val);
    const std::string serial = exportJournal();
    EXPECT_NE(serial.find("runtime.batch.begin"), std::string::npos);
    EXPECT_NE(serial.find("runtime.frame.decision"), std::string::npos);
    EXPECT_NE(serial.find("runtime.frame.elision"), std::string::npos);
    clearJournal();

    util::setGlobalThreads(7);
    runtime.processFrames(pipeline.shared.val);
    const std::string parallel = exportJournal();
    EXPECT_EQ(serial, parallel);
#endif
}

TEST(Journal, RingModeBoundsMemoryAndCountsDrops)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    setJournalRingCapacity(4);
    for (int i = 0; i < 10; ++i) {
        JournalEventBuilder("unit.ring").i64("i", i);
    }
    const auto events = collectJournal();
    EXPECT_EQ(events.size(), 4u);
    EXPECT_EQ(journalDroppedEvents(), 6u);
    // Drop-oldest: the newest events survive.
    ASSERT_FALSE(events.empty());
    ASSERT_EQ(events.back().fields.size(), 1u);
    EXPECT_EQ(events.back().fields[0].i, 9);
#endif
}

TEST(Journal, RingModeExportStaysWellFormed)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    setJournalRingCapacity(8);
    for (int i = 0; i < 100; ++i) {
        JournalEventBuilder("unit.ring").i64("i", i);
    }
    const std::string text = exportJournal();

    std::vector<json::Value> lines;
    std::string error;
    ASSERT_TRUE(json::parseLines(text, lines, &error)) << error;
    ASSERT_EQ(lines.size(), 9u); // header + the 8 retained events
    // Header reports both the surviving count and the overflow.
    const json::Value &header = lines.front();
    EXPECT_EQ(header.numberOr("events", -1.0), 8.0);
    EXPECT_EQ(header.numberOr("dropped", -1.0), 92.0);
    // The retained window is the newest events, still in order.
    for (std::size_t i = 1; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].numberOr("seq", -1.0),
                  static_cast<double>(i - 1));
        const json::Value *fields = lines[i].find("fields");
        ASSERT_NE(fields, nullptr);
        EXPECT_EQ(fields->numberOr("i", -1.0),
                  static_cast<double>(92 + i - 1));
    }
#endif
}

TEST(Journal, RingModeBoundsEveryThreadBuffer)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    setJournalRingCapacity(16);
    constexpr std::size_t kEvents = 4096;
    util::setGlobalThreads(7);
    util::parallelFor(kEvents, [](std::size_t i) {
        JournalEventBuilder("unit.flood").i64("i",
                                              static_cast<std::int64_t>(i));
    });
    const auto events = collectJournal();
    // The bound is per recording thread: with a 7-thread pool (+ the
    // caller) at most 8 buffers of 16 survive, never the full flood.
    EXPECT_LE(events.size(), 8u * 16u);
    EXPECT_EQ(events.size() + journalDroppedEvents(), kEvents);
#endif
}

TEST(Journal, JsonlExportRoundTripsThroughJsonReader)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setJournalEnabled(true);
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    sim.run(smallMission(), filter);
    const std::string text = exportJournal();

    std::vector<json::Value> lines;
    std::string error;
    ASSERT_TRUE(json::parseLines(text, lines, &error)) << error;
    ASSERT_GT(lines.size(), 1u);
    // Header declares the exact event count.
    const json::Value &header = lines.front();
    ASSERT_NE(header.find("kodan_journal"), nullptr);
    EXPECT_EQ(header.numberOr("events", -1.0),
              static_cast<double>(lines.size() - 1));
    // Every event line is well-formed; seq counts up from 0 and the
    // (region, slot, ord) key is non-decreasing (the sort invariant).
    std::uint64_t prev_key[3] = {0, 0, 0};
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const json::Value &event = lines[i];
        ASSERT_TRUE(event.isObject());
        EXPECT_EQ(event.numberOr("seq", -1.0),
                  static_cast<double>(i - 1));
        ASSERT_FALSE(event.stringOr("type", "").empty());
        ASSERT_NE(event.find("fields"), nullptr);
        const std::uint64_t key[3] = {
            static_cast<std::uint64_t>(event.numberOr("region", 0.0)),
            static_cast<std::uint64_t>(event.numberOr("slot", 0.0)),
            static_cast<std::uint64_t>(event.numberOr("ord", 0.0)),
        };
        const bool non_decreasing =
            key[0] != prev_key[0]
                ? key[0] > prev_key[0]
                : key[1] != prev_key[1] ? key[1] > prev_key[1]
                                        : key[2] >= prev_key[2];
        EXPECT_TRUE(non_decreasing) << "line " << i + 1;
        prev_key[0] = key[0];
        prev_key[1] = key[1];
        prev_key[2] = key[2];
    }
#endif
}

TEST(Journal, ChromeTraceExportRoundTripsThroughJsonReader)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    JournalGuard guard;
    setEnabled(true);
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    sim.run(smallMission(), filter);
    setEnabled(false);

    Tracer &tracer = Tracer::instance();
    std::ostringstream out;
    writeChromeTrace(tracer.collect(), tracer.droppedEvents(), out);

    json::Value doc;
    std::string error;
    ASSERT_TRUE(json::parse(out.str(), doc, &error)) << error;
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->array().empty());
    // Well-formed events in monotone (sorted-by-start) timestamp order.
    double prev_ts = -1.0;
    for (const json::Value &event : events->array()) {
        ASSERT_TRUE(event.isObject());
        EXPECT_FALSE(event.stringOr("name", "").empty());
        const double ts = event.numberOr("ts", -1.0);
        EXPECT_GE(ts, prev_ts);
        prev_ts = ts;
        const std::string ph = event.stringOr("ph", "");
        EXPECT_TRUE(ph == "X" || ph == "i");
        if (ph == "X") {
            EXPECT_GE(event.numberOr("dur", -1.0), 0.0);
        }
    }
#endif
}

} // namespace
} // namespace kodan::telemetry
