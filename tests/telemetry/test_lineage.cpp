/**
 * @file
 * Lineage suite: the frame-id packing, chain assembly and per-stage
 * attribution math, the mission-driven fixture (spans reconstruct
 * end-to-end latency with compute / contact-wait / queue-wait
 * attribution), JSONL round-trip through the report loader, and
 * byte-identical export at any KODAN_THREADS.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/mission.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry {
namespace {

/** Restores lineage state and the thread default on exit. */
class LineageGuard
{
  public:
    LineageGuard() : was_enabled_(lineageEnabled())
    {
        resetAll();
        setLineageEnabled(true);
    }

    ~LineageGuard()
    {
        setLineageEnabled(was_enabled_);
        resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool was_enabled_;
};

std::string
exportJsonl()
{
    std::ostringstream out;
    writeLineageJsonl(collectLineage(), out);
    return out.str();
}

TEST(Lineage, FrameIdPacksSatelliteAndOrdinal)
{
    const std::uint64_t id = lineageFrameId(5, 1234567);
    EXPECT_EQ(lineageSatellite(id), 5u);
    EXPECT_EQ(lineageOrdinal(id), 1234567u);
    EXPECT_EQ(lineageFrameId(0, 0), 0u);
    // Ids order by (satellite, ordinal).
    EXPECT_LT(lineageFrameId(0, 99), lineageFrameId(1, 0));
}

TEST(Lineage, AssemblyAndAttributionMath)
{
    // One frame through the full pipeline, stamps given out of order:
    // captured t=100, decided t=118 (18 s compute), enqueued t=118,
    // first contact t=400, downlinked t=460, received t=460.
    const std::uint64_t id = lineageFrameId(2, 7);
    std::vector<LineageSpan> spans = {
        {id, LineageStage::Downlinked, 460.0},
        {id, LineageStage::Captured, 100.0},
        {id, LineageStage::Received, 460.0},
        {id, LineageStage::Decided, 118.0},
        {id, LineageStage::Contact, 400.0},
        {id, LineageStage::Enqueued, 118.0},
    };
    const auto frames = assembleLineage(spans);
    ASSERT_EQ(frames.size(), 1u);
    const FrameLineage &frame = frames[0];
    EXPECT_TRUE(frame.complete());
    EXPECT_DOUBLE_EQ(frame.endToEndS(), 360.0);
    EXPECT_DOUBLE_EQ(frame.dataAgeAtDownlinkS(), 360.0);
    EXPECT_DOUBLE_EQ(frame.computeS(), 18.0);
    // Waiting for a granted pass: contact − enqueued.
    EXPECT_DOUBLE_EQ(frame.contactWaitS(), 282.0);
    // Behind other traffic once contact existed.
    EXPECT_DOUBLE_EQ(frame.queueWaitS(), 60.0);

    const auto stats = summarizeLineage(frames);
    EXPECT_EQ(stats.frames, 1);
    EXPECT_EQ(stats.downlinked, 1);
    EXPECT_DOUBLE_EQ(stats.mean_end_to_end_s, 360.0);
    EXPECT_DOUBLE_EQ(stats.max_end_to_end_s, 360.0);
    EXPECT_EQ(stats.dominantStage(), "contact-wait");
}

TEST(Lineage, IncompleteChainsStopAtTheirLastStage)
{
    const std::uint64_t discarded = lineageFrameId(0, 1);
    const std::uint64_t stranded = lineageFrameId(0, 2);
    const std::vector<LineageSpan> spans = {
        // Discarded on orbit: stops at `decided`.
        {discarded, LineageStage::Captured, 10.0},
        {discarded, LineageStage::Decided, 28.0},
        // Never got downlink budget: stops at `enqueued`.
        {stranded, LineageStage::Captured, 40.0},
        {stranded, LineageStage::Decided, 58.0},
        {stranded, LineageStage::Enqueued, 58.0},
    };
    const auto frames = assembleLineage(spans);
    ASSERT_EQ(frames.size(), 2u);
    for (const auto &frame : frames) {
        EXPECT_FALSE(frame.complete());
        EXPECT_DOUBLE_EQ(frame.endToEndS(), 0.0);
        EXPECT_DOUBLE_EQ(frame.dataAgeAtDownlinkS(), 0.0);
        EXPECT_DOUBLE_EQ(frame.computeS(), 18.0);
    }
    const auto stats = summarizeLineage(frames);
    EXPECT_EQ(stats.frames, 2);
    EXPECT_EQ(stats.downlinked, 0);
    EXPECT_EQ(stats.dominantStage(), "none");
}

TEST(Lineage, MissionSpansReconstructLatencyWithAttribution)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    LineageGuard guard;
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(3);
    config.duration = 6.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    sim::FilterBehavior filter;
    filter.frame_time = 18.0;
    filter.keep_high = 0.95;
    filter.keep_low = 0.05;
    filter.send_unprocessed = false;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);
    sim.run(config, filter);

    const auto frames = assembleLineage(collectLineage());
    ASSERT_FALSE(frames.empty());
    const auto stats = summarizeLineage(frames);
    EXPECT_GT(stats.frames, 0);
    EXPECT_GT(stats.downlinked, 0);
    // Downlinked chains reconstruct a positive end-to-end latency whose
    // attribution buckets are consistent: e2e = compute + contact-wait
    // + queue-wait for every complete chain (received == downlinked in
    // the current model).
    for (const auto &frame : frames) {
        if (!frame.complete()) {
            continue;
        }
        const double parts = frame.computeS() + frame.contactWaitS() +
                             frame.queueWaitS();
        EXPECT_NEAR(frame.endToEndS(), parts, 1e-6)
            << "frame " << frame.frame_id;
        EXPECT_GT(frame.endToEndS(), 0.0);
        // Stage stamps are monotone in pipeline order.
        EXPECT_LE(frame.at(LineageStage::Captured),
                  frame.at(LineageStage::Decided));
        EXPECT_LE(frame.at(LineageStage::Decided),
                  frame.at(LineageStage::Enqueued));
        EXPECT_LE(frame.at(LineageStage::Enqueued),
                  frame.at(LineageStage::Downlinked));
    }
    EXPECT_GT(stats.mean_end_to_end_s, 0.0);
    EXPECT_GE(stats.max_end_to_end_s, stats.mean_end_to_end_s);
    // On-board compute (18 s/frame) is dwarfed by the orbital-mechanics
    // waits — the attribution must say so.
    EXPECT_LT(stats.mean_compute_s, stats.mean_contact_wait_s);
    EXPECT_NE(stats.dominantStage(), "compute");
#endif
}

TEST(Lineage, ExportBytesInvariantToThreadCount)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(3);
    config.duration = 2.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    const auto runOnce = [&](int threads) {
        LineageGuard guard;
        util::setGlobalThreads(threads);
        sim.run(config, filter);
        return exportJsonl();
    };

    const std::string serial = runOnce(1);
    EXPECT_NE(serial.find("\"kodan_lineage\": 1"), std::string::npos);
    EXPECT_EQ(serial, runOnce(7));
#endif
}

TEST(Lineage, JsonlRoundTripsThroughReportLoader)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    LineageGuard guard;
    recordLineageSpan(lineageFrameId(1, 0), LineageStage::Captured, 5.0);
    recordLineageSpan(lineageFrameId(1, 0), LineageStage::Decided, 23.0);
    recordLineageSpan(lineageFrameId(0, 3), LineageStage::Captured, 1.5);
    const auto spans = collectLineage();
    ASSERT_EQ(spans.size(), 3u);
    // Collection sorts by (frame_id, stage).
    EXPECT_EQ(spans[0].frame_id, lineageFrameId(0, 3));
    EXPECT_EQ(spans[1].stage, LineageStage::Captured);
    EXPECT_EQ(spans[2].stage, LineageStage::Decided);

    const std::string path =
        ::testing::TempDir() + "/kodan_lineage_roundtrip.jsonl";
    {
        std::ofstream out(path);
        writeLineageJsonl(spans, out);
    }
    std::vector<LineageSpan> loaded;
    std::string error;
    ASSERT_TRUE(report::loadLineage(path, loaded, &error)) << error;
    std::remove(path.c_str());
    ASSERT_EQ(loaded.size(), spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(loaded[i].frame_id, spans[i].frame_id);
        EXPECT_EQ(loaded[i].stage, spans[i].stage);
        EXPECT_DOUBLE_EQ(loaded[i].t_s, spans[i].t_s);
    }
#endif
}

} // namespace
} // namespace kodan::telemetry
