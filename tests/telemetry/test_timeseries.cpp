/**
 * @file
 * Time-series suite: binning semantics, idempotent registration,
 * capacity bounds, order-invariant sums, and — the acceptance bar —
 * byte-identical JSON export for the mission simulator's sim-time
 * series at any KODAN_THREADS.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "sim/mission.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry {
namespace {

/** Restores telemetry state and the thread default on exit. */
class TimeSeriesGuard
{
  public:
    TimeSeriesGuard() : was_enabled_(enabled())
    {
        resetAll();
        setEnabled(true);
    }

    ~TimeSeriesGuard()
    {
        setEnabled(was_enabled_);
        resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool was_enabled_;
};

std::string
exportJson()
{
    std::ostringstream out;
    writeTimeSeriesJson(timeSeriesSnapshot(), out);
    return out.str();
}

TEST(TimeSeries, ObservationsLandInFloorBins)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    TimeSeriesGuard guard;
    const SeriesId id = timeSeries("unit.bins", 10.0);
    timeSeriesRecord(id, 0.0, 1.0);
    timeSeriesRecord(id, 9.999, 3.0);
    timeSeriesRecord(id, 10.0, 5.0);
    timeSeriesRecord(id, 25.0, -2.0);
    // Negative sim time bins below zero (floor, not truncation).
    timeSeriesRecord(id, -0.5, 7.0);

    const auto snapshot = timeSeriesSnapshot();
    const SeriesSample *series = snapshot.find("unit.bins");
    ASSERT_NE(series, nullptr);
    EXPECT_DOUBLE_EQ(series->bin_width_s, 10.0);
    ASSERT_EQ(series->bins.size(), 4u);
    EXPECT_EQ(series->bins[0].index, -1);
    EXPECT_DOUBLE_EQ(series->bins[0].sum, 7.0);
    EXPECT_EQ(series->bins[1].index, 0);
    EXPECT_EQ(series->bins[1].count, 2);
    EXPECT_DOUBLE_EQ(series->bins[1].sum, 4.0);
    EXPECT_DOUBLE_EQ(series->bins[1].min, 1.0);
    EXPECT_DOUBLE_EQ(series->bins[1].max, 3.0);
    EXPECT_EQ(series->bins[2].index, 1);
    EXPECT_DOUBLE_EQ(series->bins[2].sum, 5.0);
    EXPECT_EQ(series->bins[3].index, 2);
    EXPECT_DOUBLE_EQ(series->bins[3].sum, -2.0);
#endif
}

TEST(TimeSeries, RegistrationIsIdempotentByName)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    TimeSeriesGuard guard;
    const SeriesId first = timeSeries("unit.idem", 30.0);
    // Second registration keeps the first bin width.
    const SeriesId second = timeSeries("unit.idem", 999.0);
    EXPECT_EQ(first, second);
    EXPECT_DOUBLE_EQ(timeSeriesBinWidth(first), 30.0);
#endif
}

TEST(TimeSeries, NonFiniteObservationsAreIgnored)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    TimeSeriesGuard guard;
    const SeriesId id = timeSeries("unit.finite", 1.0);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    timeSeriesRecord(id, nan, 1.0);
    timeSeriesRecord(id, 0.0, nan);
    timeSeriesRecord(id, inf, 1.0);
    timeSeriesRecord(id, 0.0, inf);
    timeSeriesRecord(id, 0.0, 2.0);
    const auto snapshot = timeSeriesSnapshot();
    const SeriesSample *series = snapshot.find("unit.finite");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->bins.size(), 1u);
    EXPECT_EQ(series->bins[0].count, 1);
    EXPECT_DOUBLE_EQ(series->bins[0].sum, 2.0);
#endif
}

TEST(TimeSeries, CapacityBoundDropsOldestBins)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    TimeSeriesGuard guard;
    util::setGlobalThreads(1); // one recording thread: exact drop count
    const SeriesId id = timeSeries("unit.ring", 1.0, 4);
    for (int bin = 0; bin < 10; ++bin) {
        timeSeriesRecord(id, static_cast<double>(bin), 1.0);
    }
    const auto snapshot = timeSeriesSnapshot();
    const SeriesSample *series = snapshot.find("unit.ring");
    ASSERT_NE(series, nullptr);
    EXPECT_EQ(series->dropped_bins, 6u);
    ASSERT_EQ(series->bins.size(), 4u);
    // Drop-oldest: the newest bins survive.
    EXPECT_EQ(series->bins.front().index, 6);
    EXPECT_EQ(series->bins.back().index, 9);
#endif
}

TEST(TimeSeries, SumsAreOrderInvariant)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    // The classic parallel-sum hazard: values of wildly mixed magnitude
    // whose naive float sum depends on accumulation order. Recorded in
    // shuffled order across threads, the merged bin must be bit-equal to
    // the serial forward pass.
    std::vector<double> values;
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> mag(-12.0, 12.0);
    std::uniform_real_distribution<double> sign(-1.0, 1.0);
    for (int i = 0; i < 4096; ++i) {
        values.push_back(sign(rng) * std::pow(10.0, mag(rng)));
    }

    const auto runOnce = [&](int threads, std::uint64_t seed) {
        TimeSeriesGuard guard;
        util::setGlobalThreads(threads);
        std::vector<double> order = values;
        std::shuffle(order.begin(), order.end(), std::mt19937_64(seed));
        const SeriesId id = timeSeries("unit.exact", 1.0);
        util::parallelFor(order.size(), [&](std::size_t i) {
            timeSeriesRecord(id, 0.5, order[i]);
        });
        return exportJson();
    };

    const std::string serial = runOnce(1, 1);
    EXPECT_EQ(serial, runOnce(4, 2));
    EXPECT_EQ(serial, runOnce(16, 3));
#endif
}

TEST(TimeSeries, MissionSeriesBytesInvariantToThreadCount)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    // The acceptance bar: the mission simulator's sim-time-binned series
    // (frames, downlink, DVD, queue depth, contact utilization, latency)
    // export byte-identically at any KODAN_THREADS.
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(3);
    config.duration = 6.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    config.telemetry_bin_s = 900.0;
    sim::FilterBehavior filter;
    filter.frame_time = 18.0;
    filter.keep_high = 0.95;
    filter.keep_low = 0.05;
    filter.send_unprocessed = false;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    const auto runOnce = [&](int threads) {
        TimeSeriesGuard guard;
        util::setGlobalThreads(threads);
        sim.run(config, filter);
        return exportJson();
    };

    const std::string serial = runOnce(1);
    EXPECT_NE(serial.find("\"kodan_timeseries\": 1"), std::string::npos);
    EXPECT_NE(serial.find("sim.dvd"), std::string::npos);
    EXPECT_NE(serial.find("sim.frames.observed"), std::string::npos);
    EXPECT_NE(serial.find("sim.queue.depth_bits"), std::string::npos);
    EXPECT_NE(serial.find("sim.contact.utilization"), std::string::npos);
    EXPECT_NE(serial.find("sim.latency.e2e_s"), std::string::npos);
    EXPECT_EQ(serial, runOnce(4));
    EXPECT_EQ(serial, runOnce(16));
#endif
}

TEST(TimeSeries, CsvExportMatchesSnapshot)
{
#ifdef KODAN_TELEMETRY_DISABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    TimeSeriesGuard guard;
    const SeriesId id = timeSeries("unit.csv", 2.0);
    timeSeriesRecord(id, 0.0, 1.5);
    timeSeriesRecord(id, 3.0, 2.5);
    std::ostringstream out;
    writeTimeSeriesCsv(timeSeriesSnapshot(), out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find("series,bin,t_s,count,sum,min,max"),
              std::string::npos);
    EXPECT_NE(csv.find("unit.csv,0,0,1,1.5,1.5,1.5"), std::string::npos);
    EXPECT_NE(csv.find("unit.csv,1,2,1,2.5,2.5,2.5"), std::string::npos);
#endif
}

TEST(TimeSeries, DisabledRegistryRecordsNothing)
{
#ifndef KODAN_TELEMETRY_DISABLED
    TimeSeriesGuard guard;
    setEnabled(false);
    // The macro site is the gate: with metrics disabled nothing lands.
    KODAN_TS_RECORD("unit.gated", 0.0, 1.0, 1.0);
    setEnabled(true);
    const auto snapshot = timeSeriesSnapshot();
    EXPECT_EQ(snapshot.find("unit.gated"), nullptr);
#endif
}

} // namespace
} // namespace kodan::telemetry
