/**
 * @file
 * Tests for the scoped-span tracer, its ring buffers, the JSON/Chrome
 * exporters, and the util::log -> telemetry bridge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace kodan::telemetry {
namespace {

/** Enables recording for one test and restores a clean slate after. */
class TelemetryGuard
{
  public:
    TelemetryGuard()
        : was_enabled_(enabled())
    {
        resetAll();
        setEnabled(true);
    }

    ~TelemetryGuard()
    {
        setEnabled(was_enabled_);
        resetAll();
    }

  private:
    bool was_enabled_;
};

const TraceEvent *
findEvent(const std::vector<TraceEvent> &events, const std::string &name)
{
    const auto it =
        std::find_if(events.begin(), events.end(),
                     [&](const TraceEvent &e) { return e.name == name; });
    return it == events.end() ? nullptr : &*it;
}

// Span-macro tests only exist when instrumentation is compiled in.
#ifndef KODAN_TELEMETRY_DISABLED

TEST(Trace, NestedSpansAreContained)
{
    TelemetryGuard guard;
    {
        KODAN_TRACE_SPAN("test.span.outer");
        {
            KODAN_TRACE_SPAN("test.span.inner");
        }
    }
    const auto events = Tracer::instance().collect();
    const TraceEvent *outer = findEvent(events, "test.span.outer");
    const TraceEvent *inner = findEvent(events, "test.span.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_GE(outer->dur_us, 0.0);
    EXPECT_GE(inner->dur_us, 0.0);
    // The inner span starts and ends inside the outer one.
    EXPECT_GE(inner->start_us, outer->start_us);
    EXPECT_LE(inner->start_us + inner->dur_us,
              outer->start_us + outer->dur_us);
    EXPECT_EQ(inner->tid, outer->tid);
}

TEST(Trace, SpansAreSkippedWhileDisabled)
{
    TelemetryGuard guard;
    setEnabled(false);
    {
        KODAN_TRACE_SPAN("test.span.dark");
    }
    setEnabled(true);
    const auto events = Tracer::instance().collect();
    EXPECT_EQ(findEvent(events, "test.span.dark"), nullptr);
}

TEST(Trace, CollectIsSortedByStartTime)
{
    TelemetryGuard guard;
    for (int i = 0; i < 5; ++i) {
        KODAN_TRACE_SPAN("test.span.seq");
    }
    const auto events = Tracer::instance().collect();
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].start_us, events[i].start_us);
    }
}

#endif // KODAN_TELEMETRY_DISABLED

TEST(Trace, RingOverwritesOldestAndCountsDrops)
{
    TraceRing ring(1, 4);
    for (int i = 0; i < 6; ++i) {
        ring.push({"e" + std::to_string(i), static_cast<double>(i), 1.0,
                   1});
    }
    const auto events = ring.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(ring.dropped(), 2u);
    // Oldest-first order, with the two oldest events overwritten.
    EXPECT_EQ(events.front().name, "e2");
    EXPECT_EQ(events.back().name, "e5");
    ring.clear();
    EXPECT_TRUE(ring.events().empty());
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Trace, InstantEventsHaveNegativeDuration)
{
    TelemetryGuard guard;
    Tracer::instance().recordInstant("test.instant.mark");
    const auto events = Tracer::instance().collect();
    const TraceEvent *mark = findEvent(events, "test.instant.mark");
    ASSERT_NE(mark, nullptr);
    EXPECT_LT(mark->dur_us, 0.0);
}

TEST(Export, ChromeTraceContainsSpansAndInstants)
{
    std::vector<TraceEvent> events;
    events.push_back({"span.one", 10.0, 25.0, 1});
    events.push_back({"mark.one", 20.0, -1.0, 2});
    std::ostringstream os;
    writeChromeTrace(events, 3, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"span.one\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
}

TEST(Export, MetricsJsonRoundsTripNamesAndValues)
{
    TelemetryGuard guard;
    registry().counter("test.json.counter").add(11);
    registry().timer("test.json.timer").record(0.5);
    std::ostringstream os;
    writeMetricsJson(registry().snapshot(), os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"counter\""), std::string::npos);
    EXPECT_NE(json.find("11"), std::string::npos);
    EXPECT_NE(json.find("\"test.json.timer\""), std::string::npos);
}

TEST(Export, MetricsTableListsEveryMetric)
{
    TelemetryGuard guard;
    registry().counter("test.table.counter").add(5);
    registry().gauge("test.table.gauge").set(1.5);
    std::ostringstream os;
    writeMetricsTable(registry().snapshot(), os);
    const std::string text = os.str();
    EXPECT_NE(text.find("test.table.counter"), std::string::npos);
    EXPECT_NE(text.find("test.table.gauge"), std::string::npos);
}

TEST(Export, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
}

#ifndef KODAN_TELEMETRY_DISABLED

TEST(LogBridge, WarningsFeedCounterAndEventStream)
{
    TelemetryGuard guard;
    const util::LogLevel previous = util::logLevel();
    util::setLogLevel(util::LogLevel::Warn);
    // Silence stderr for the duration; the tap still observes.
    util::setLogSink([](util::LogLevel, const std::string &) {});

    util::logMessage(util::LogLevel::Warn, "bridge check");
    util::logMessage(util::LogLevel::Error, "bridge error");
    util::logMessage(util::LogLevel::Info, "filtered out");

    util::setLogSink(nullptr);
    util::setLogLevel(previous);

    const RegistrySnapshot snap = registry().snapshot();
    const MetricSample *warns = snap.find("util.log.warnings.emitted");
    const MetricSample *errors = snap.find("util.log.errors.emitted");
    ASSERT_NE(warns, nullptr);
    ASSERT_NE(errors, nullptr);
    EXPECT_EQ(warns->count, 1);
    EXPECT_EQ(errors->count, 1);

    const auto events = Tracer::instance().collect();
    EXPECT_NE(findEvent(events, "log: bridge check"), nullptr);
    EXPECT_NE(findEvent(events, "log: bridge error"), nullptr);
    EXPECT_EQ(findEvent(events, "log: filtered out"), nullptr);
}

#endif // KODAN_TELEMETRY_DISABLED

} // namespace
} // namespace kodan::telemetry
