/**
 * @file
 * Telemetry non-interference suite: enabling metrics and tracing must
 * not change a single bit of any simulation output, at any thread
 * count. Instrumentation only observes — it never advances an RNG
 * stream or feeds back into computation — and these tests enforce that
 * with exact comparisons.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../core/fixture.hpp"
#include "core/kodan.hpp"
#include "sim/mission.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry {
namespace {

/** Restores telemetry state and the global thread default on exit. */
class StateGuard
{
  public:
    StateGuard()
        : was_enabled_(enabled())
    {
        resetAll();
    }

    ~StateGuard()
    {
        setEnabled(was_enabled_);
        resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool was_enabled_;
};

void
expectSameReport(const core::FrameReport &a, const core::FrameReport &b)
{
    EXPECT_EQ(a.compute_time, b.compute_time);
    EXPECT_EQ(a.product_fraction, b.product_fraction);
    EXPECT_EQ(a.product_high_fraction, b.product_high_fraction);
    EXPECT_EQ(a.tiles_discarded, b.tiles_discarded);
    EXPECT_EQ(a.tiles_downlinked, b.tiles_downlinked);
    EXPECT_EQ(a.tiles_modeled, b.tiles_modeled);
    EXPECT_EQ(a.cells.tp(), b.cells.tp());
    EXPECT_EQ(a.cells.fp(), b.cells.fp());
    EXPECT_EQ(a.cells.tn(), b.cells.tn());
    EXPECT_EQ(a.cells.fn(), b.cells.fn());
}

TEST(TelemetryEquivalence, RuntimeReportsAreBitIdenticalOnOrOff)
{
    StateGuard guard;
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    core::SelectionLogic logic;
    logic.tiles_per_side = 6;
    logic.per_context.assign(
        pipeline.shared.partition.context_count,
        {core::ActionKind::RunModel, pipeline.app4.zoo.reference});
    const core::Runtime runtime(logic, pipeline.shared.engine.get(),
                                &pipeline.app4.zoo, hw::Target::Orin15W);

    setEnabled(false);
    util::setGlobalThreads(1);
    const core::FrameReport baseline =
        runtime.processFrames(pipeline.shared.val);

    for (int threads : {1, 7}) {
        util::setGlobalThreads(threads);
        setEnabled(true);
        const core::FrameReport instrumented =
            runtime.processFrames(pipeline.shared.val);
        setEnabled(false);
        SCOPED_TRACE("telemetry on, " + std::to_string(threads) +
                     " threads");
        expectSameReport(instrumented, baseline);
#ifndef KODAN_TELEMETRY_DISABLED
        // And recording actually happened — this is not a vacuous pass.
        const RegistrySnapshot snap = registry().snapshot();
        const MetricSample *frames =
            snap.find("runtime.frames.processed");
        ASSERT_NE(frames, nullptr);
        EXPECT_GT(frames->count, 0);
#endif
        resetAll();
    }
}

TEST(TelemetryEquivalence, MissionSimIsBitIdenticalOnOrOff)
{
    StateGuard guard;
    sim::MissionConfig config =
        sim::MissionConfig::landsatConstellation(3);
    config.duration = 2.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.2;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    setEnabled(false);
    util::setGlobalThreads(1);
    const auto baseline = sim.run(config, filter);

    for (int threads : {1, 7}) {
        util::setGlobalThreads(threads);
        setEnabled(true);
        const auto result = sim.run(config, filter);
        setEnabled(false);
        ASSERT_EQ(result.per_satellite.size(),
                  baseline.per_satellite.size());
        for (std::size_t s = 0; s < result.per_satellite.size(); ++s) {
            const auto &a = result.per_satellite[s];
            const auto &b = baseline.per_satellite[s];
            SCOPED_TRACE("sat " + std::to_string(s) + ", telemetry on, " +
                         std::to_string(threads) + " threads");
            EXPECT_EQ(a.frames_observed, b.frames_observed);
            EXPECT_EQ(a.frames_processed, b.frames_processed);
            EXPECT_EQ(a.frames_downlinked, b.frames_downlinked);
            EXPECT_EQ(a.bits_observed, b.bits_observed);
            EXPECT_EQ(a.high_bits_observed, b.high_bits_observed);
            EXPECT_EQ(a.bits_downlinked, b.bits_downlinked);
            EXPECT_EQ(a.high_bits_downlinked, b.high_bits_downlinked);
            EXPECT_EQ(a.contact_seconds, b.contact_seconds);
        }
        EXPECT_EQ(result.idle_station_seconds,
                  baseline.idle_station_seconds);
        EXPECT_EQ(result.busy_station_seconds,
                  baseline.busy_station_seconds);
#ifndef KODAN_TELEMETRY_DISABLED
        // The instrumented run recorded mission metrics.
        const RegistrySnapshot snap = registry().snapshot();
        const MetricSample *observed = snap.find("sim.frames.observed");
        ASSERT_NE(observed, nullptr);
        EXPECT_GT(observed->count, 0);
#endif
        resetAll();
    }
}

TEST(TelemetryEquivalence, SelectionSweepIsBitIdenticalOnOrOff)
{
    StateGuard guard;
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    const auto profile = core::SystemProfile::landsat8(
        hw::Target::Orin15W, pipeline.shared.prevalence);

    setEnabled(false);
    const core::SweepResult baseline =
        pipeline.transformer.select(pipeline.app4, profile);

    setEnabled(true);
    const core::SweepResult instrumented =
        pipeline.transformer.select(pipeline.app4, profile);
    setEnabled(false);

    EXPECT_EQ(instrumented.logic.tiles_per_side,
              baseline.logic.tiles_per_side);
    ASSERT_EQ(instrumented.logic.per_context.size(),
              baseline.logic.per_context.size());
    for (std::size_t c = 0; c < instrumented.logic.per_context.size();
         ++c) {
        EXPECT_TRUE(instrumented.logic.per_context[c] ==
                    baseline.logic.per_context[c]);
    }
    EXPECT_EQ(instrumented.outcome.dvd, baseline.outcome.dvd);
    EXPECT_EQ(instrumented.outcome.frame_time,
              baseline.outcome.frame_time);
    EXPECT_EQ(instrumented.outcome.bits_sent, baseline.outcome.bits_sent);
    EXPECT_EQ(instrumented.outcome.high_bits_sent,
              baseline.outcome.high_bits_sent);

#ifndef KODAN_TELEMETRY_DISABLED
    const RegistrySnapshot snap = registry().snapshot();
    const MetricSample *evaluated =
        snap.find("selection.candidates.evaluated");
    ASSERT_NE(evaluated, nullptr);
    EXPECT_GT(evaluated->count, 0);
#endif
}

} // namespace
} // namespace kodan::telemetry
