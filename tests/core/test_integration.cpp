/** @file End-to-end integration tests of the Kodan pipeline. */

#include <gtest/gtest.h>

#include "core/kodan.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

TEST(Integration, TablesMeasuredAtAllPaperTilings)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    ASSERT_EQ(artifacts.tables.size(), 4U);
    std::set<int> tile_counts;
    for (const auto &table : artifacts.tables) {
        tile_counts.insert(table.tiles_per_side * table.tiles_per_side);
    }
    EXPECT_TRUE(tile_counts.count(121));
    EXPECT_TRUE(tile_counts.count(36));
    EXPECT_TRUE(tile_counts.count(16));
    EXPECT_TRUE(tile_counts.count(9));
}

TEST(Integration, ContextSharesSumToOnePerTable)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    for (const auto &table : artifacts.tables) {
        double total = 0.0;
        for (const auto &info : table.contexts) {
            total += info.tile_share;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Integration, KodanBeatsBentPipeOnAllTargets)
{
    const auto &pipeline = SharedPipeline::instance();
    for (hw::Target target : hw::allTargets()) {
        const auto profile =
            SystemProfile::landsat8(target, pipeline.shared.prevalence);
        const auto result =
            pipeline.transformer.select(pipeline.app4, profile);
        const auto bent = bentPipeOutcome(profile);
        EXPECT_GT(result.outcome.dvd, 1.5 * bent.dvd)
            << hw::targetName(target);
    }
}

TEST(Integration, KodanBeatsDirectDeployOnConstrainedTargets)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto profile = SystemProfile::landsat8(
        hw::Target::Orin15W, pipeline.shared.prevalence);
    const auto kodan = pipeline.transformer.select(pipeline.app4, profile);
    const auto direct =
        Transformer::directDeploy(pipeline.app4, profile);
    EXPECT_GT(kodan.outcome.dvd, direct.dvd);
    EXPECT_GT(kodan.outcome.high_bits_sent, direct.high_bits_sent);
}

TEST(Integration, KodanMeetsDeadlineDirectDoesNot)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto profile = SystemProfile::landsat8(
        hw::Target::Orin15W, pipeline.shared.prevalence);
    const auto kodan = pipeline.transformer.select(pipeline.app4, profile);
    const auto direct = Transformer::directDeploy(pipeline.app4, profile);
    // Paper Fig. 9: Kodan stays at the soft frame deadline (the sweep
    // may slightly exceed it when the marginal value is positive), while
    // App 4 direct on the Orin runs several times over it.
    EXPECT_LE(kodan.outcome.frame_time, profile.frame_deadline * 1.3);
    EXPECT_GT(direct.frame_time, profile.frame_deadline);
    EXPECT_LT(direct.processed_fraction, 1.0);
    EXPECT_LT(kodan.outcome.frame_time, direct.frame_time);
}

TEST(Integration, SelectionLogicIsDeployable)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto profile = SystemProfile::landsat8(
        hw::Target::Orin15W, pipeline.shared.prevalence);
    const auto result = pipeline.transformer.select(pipeline.app4, profile);
    ASSERT_EQ(static_cast<int>(result.logic.per_context.size()),
              pipeline.shared.partition.context_count);
    const Runtime runtime(result.logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    std::vector<FrameReport> reports;
    for (const auto &frame : pipeline.shared.val) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto measured = Runtime::aggregate(reports);
    // The deployed runtime's average frame time matches the projection
    // the logic was selected with.
    EXPECT_NEAR(measured.compute_time, result.outcome.frame_time,
                0.05 * result.outcome.frame_time + 0.2);
}

TEST(Integration, LessCapableHardwareNeverHelps)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto orin = pipeline.transformer.select(
        pipeline.app4, SystemProfile::landsat8(
                           hw::Target::Orin15W,
                           pipeline.shared.prevalence));
    const auto gpu = pipeline.transformer.select(
        pipeline.app4, SystemProfile::landsat8(
                           hw::Target::Gtx1070Ti,
                           pipeline.shared.prevalence));
    EXPECT_GE(gpu.outcome.high_bits_sent,
              orin.outcome.high_bits_sent * 0.999);
}

TEST(Integration, ExpertContextPipelineAlsoWorks)
{
    // Run a small expert-context transform end-to-end.
    const data::GeoModel geo;
    auto options = kodan::testing::smallOptions();
    options.expert_contexts = true;
    options.train_frames = 20;
    options.val_frames = 8;
    const Transformer transformer(options);
    auto [train, val] = kodan::testing::smallFrames(geo, 20, 8);
    const auto shared =
        transformer.prepareData(std::move(train), std::move(val));
    EXPECT_TRUE(shared.partition.expert);
    EXPECT_EQ(shared.partition.context_count, data::kTerrainCount);
    const auto artifacts =
        transformer.transformApp(Application{2}, shared);
    const auto profile = SystemProfile::landsat8(
        hw::Target::Orin15W, shared.prevalence);
    const auto result = transformer.select(artifacts, profile);
    const auto bent = bentPipeOutcome(profile);
    EXPECT_GT(result.outcome.dvd, bent.dvd);
}

TEST(Integration, PrevalenceNearDatasetCalibration)
{
    const auto &pipeline = SharedPipeline::instance();
    EXPECT_NEAR(pipeline.shared.prevalence, 0.48, 0.1);
}

TEST(Integration, ApplicationListMatchesTable1)
{
    const auto apps = Application::all();
    ASSERT_EQ(apps.size(), 7U);
    EXPECT_STREQ(apps[0].name(), "mobilenetv2dilated-c1-deepsup");
    EXPECT_STREQ(apps[6].name(), "resnet101dilated-ppm-deepsup");
}

} // namespace
} // namespace kodan::core
