/** @file Round-trip tests for the uplinkable deployment package. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/kodan.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

/** Build a deployment package from the shared fixture. */
DeploymentPackage
makePackage()
{
    const auto &pipeline = SharedPipeline::instance();
    const auto profile = SystemProfile::landsat8(
        hw::Target::Orin15W, pipeline.shared.prevalence);
    return pipeline.transformer.makeDeployment(pipeline.shared,
                                               pipeline.app4, profile);
}

TEST(DeploymentPackage, ContainsSelectedLogic)
{
    const auto package = makePackage();
    EXPECT_EQ(package.target, hw::Target::Orin15W);
    EXPECT_EQ(static_cast<int>(package.logic.per_context.size()),
              package.engine.contextCount());
    EXPECT_FALSE(package.zoo.entries.empty());
}

TEST(DeploymentPackage, SaveLoadRoundTrip)
{
    const auto package = makePackage();
    std::stringstream stream;
    package.save(stream);
    const auto loaded = DeploymentPackage::load(stream);

    EXPECT_EQ(loaded.target, package.target);
    EXPECT_EQ(loaded.logic.tiles_per_side, package.logic.tiles_per_side);
    ASSERT_EQ(loaded.logic.per_context.size(),
              package.logic.per_context.size());
    EXPECT_EQ(loaded.zoo.entries.size(), package.zoo.entries.size());
    EXPECT_EQ(loaded.zoo.reference, package.zoo.reference);
    EXPECT_EQ(loaded.engine.contextCount(),
              package.engine.contextCount());
}

TEST(DeploymentPackage, LoadedRuntimeMatchesOriginal)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto package = makePackage();
    std::stringstream stream;
    package.save(stream);
    const auto loaded = DeploymentPackage::load(stream);

    const Runtime original(package.logic, &package.engine, &package.zoo,
                           package.target);
    const Runtime restored(loaded.logic, &loaded.engine, &loaded.zoo,
                           loaded.target);
    for (int i = 0; i < 4; ++i) {
        const auto &frame = pipeline.shared.val[i];
        const auto a = original.processFrame(frame);
        const auto b = restored.processFrame(frame);
        EXPECT_DOUBLE_EQ(a.compute_time, b.compute_time);
        EXPECT_NEAR(a.product_fraction, b.product_fraction, 1e-12);
        EXPECT_EQ(a.tiles_discarded, b.tiles_discarded);
        EXPECT_EQ(a.tiles_downlinked, b.tiles_downlinked);
        EXPECT_EQ(a.tiles_modeled, b.tiles_modeled);
        EXPECT_EQ(a.cells.tp(), b.cells.tp());
        EXPECT_EQ(a.cells.fp(), b.cells.fp());
    }
}

TEST(DeploymentPackage, LoadedEngineClassifiesIdentically)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto package = makePackage();
    std::stringstream stream;
    package.engine.save(stream);
    const auto loaded_engine = ContextEngine::load(stream);

    const data::Tiler tiler(6);
    const auto tiles = tiler.tile(pipeline.shared.val.front());
    for (const auto &tile : tiles) {
        EXPECT_EQ(loaded_engine.classify(tile),
                  package.engine.classify(tile));
    }
}

TEST(DeploymentPackage, LoadedZooPredictsIdentically)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto package = makePackage();
    std::stringstream stream;
    saveZoo(stream, package.zoo);
    const auto loaded_zoo = loadZoo(stream);

    const data::Tiler tiler(6);
    const auto tiles = tiler.tile(pipeline.shared.val[1]);
    for (std::size_t e = 0; e < package.zoo.entries.size(); ++e) {
        for (int b = 0; b < data::kBlocksPerTile; b += 9) {
            EXPECT_NEAR(loaded_zoo.predictBlock(static_cast<int>(e),
                                                tiles[0], b),
                        package.zoo.predictBlock(static_cast<int>(e),
                                                 tiles[0], b),
                        1e-12);
        }
    }
}

} // namespace
} // namespace kodan::core
