/** @file Failure-injection tests: malformed artifacts must die loudly. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/io.hpp"
#include "ml/mlp.hpp"

namespace kodan::core {
namespace {

TEST(FailureInjection, LoadTableRejectsGarbage)
{
    std::stringstream stream("not-a-table 6 2");
    EXPECT_EXIT(loadTable(stream), ::testing::ExitedWithCode(1),
                "expected 'table'");
}

TEST(FailureInjection, LoadBundleRejectsWrongMagic)
{
    std::stringstream stream("kodan-pickle 1\n0.5 0\n");
    EXPECT_EXIT(loadBundle(stream), ::testing::ExitedWithCode(1),
                "expected 'kodan-bundle'");
}

TEST(FailureInjection, LoadBundleRejectsFutureVersion)
{
    std::stringstream stream("kodan-bundle 999\n0.5 0\n");
    EXPECT_EXIT(loadBundle(stream), ::testing::ExitedWithCode(1),
                "version mismatch");
}

TEST(FailureInjection, LoadTruncatedTableDies)
{
    // Second context missing entirely: fails the tag check.
    std::stringstream stream("table 6 2\ncontext 0 0.5 0.5 ocean 1\n"
                             "2 0 0.5 0.4 0.9 100\n");
    EXPECT_EXIT(loadTable(stream), ::testing::ExitedWithCode(1),
                "expected 'context'");
}

TEST(FailureInjection, LoadLogicRejectsGarbage)
{
    std::stringstream stream("selection-magic 6 1\n");
    EXPECT_EXIT(loadLogic(stream), ::testing::ExitedWithCode(1),
                "expected 'selection-logic'");
}

TEST(FailureInjection, MlpLoadRejectsBadHeader)
{
    std::stringstream stream("not-an-mlp 1\n");
    EXPECT_EXIT(ml::Mlp::load(stream), ::testing::ExitedWithCode(1),
                "bad header");
}

TEST(FailureInjection, MlpLoadRejectsTruncatedWeights)
{
    std::stringstream stream("mlp 1\n2 1 0 1 3\n0.5 0.25\n");
    EXPECT_EXIT(ml::Mlp::load(stream), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(FailureInjection, DeploymentLoadRejectsWrongMagic)
{
    std::stringstream stream("kodan-spacecraft 1 2\n");
    EXPECT_EXIT(DeploymentPackage::load(stream),
                ::testing::ExitedWithCode(1),
                "expected 'kodan-deployment'");
}

} // namespace
} // namespace kodan::core
