/** @file Invariants of measured action tables (DeploymentEvaluator). */

#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

TEST(MeasuredTables, SharesSumToOneAtEveryTiling)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    for (const auto &table : artifacts.tables) {
        double total = 0.0;
        for (const auto &info : table.contexts) {
            EXPECT_GE(info.tile_share, 0.0);
            total += info.tile_share;
        }
        EXPECT_NEAR(total, 1.0, 1e-9)
            << "tiling " << table.tiles_per_side;
    }
}

TEST(MeasuredTables, EveryContextOffersElisionActions)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    for (const auto &table : artifacts.tables) {
        for (int c = 0; c < table.contextCount(); ++c) {
            EXPECT_GE(table.findAction(c, {ActionKind::Discard, -1}), 0);
            EXPECT_GE(table.findAction(c, {ActionKind::Downlink, -1}), 0);
        }
    }
}

TEST(MeasuredTables, StatsAreWellFormed)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    for (const auto &table : artifacts.tables) {
        for (int c = 0; c < table.contextCount(); ++c) {
            if (table.contexts[c].tile_share <= 0.0) {
                continue;
            }
            for (std::size_t a = 0; a < table.stats[c].size(); ++a) {
                const auto &stats = table.stats[c][a];
                EXPECT_GE(stats.bits_fraction, 0.0);
                EXPECT_LE(stats.bits_fraction, 1.0 + 1e-9);
                EXPECT_GE(stats.high_fraction, 0.0);
                EXPECT_LE(stats.high_fraction,
                          stats.bits_fraction + 1e-9);
                EXPECT_GE(stats.cell_accuracy, 0.0);
                EXPECT_LE(stats.cell_accuracy, 1.0 + 1e-9);
                EXPECT_LE(stats.density(), 1.0 + 1e-9);
            }
        }
    }
}

TEST(MeasuredTables, DiscardKeepsNothingDownlinkKeepsEverything)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    for (const auto &table : artifacts.tables) {
        for (int c = 0; c < table.contextCount(); ++c) {
            if (table.contexts[c].tile_share <= 0.0) {
                continue;
            }
            const int discard =
                table.findAction(c, {ActionKind::Discard, -1});
            const int downlink =
                table.findAction(c, {ActionKind::Downlink, -1});
            EXPECT_DOUBLE_EQ(table.stats[c][discard].bits_fraction, 0.0);
            EXPECT_NEAR(table.stats[c][downlink].bits_fraction, 1.0,
                        1e-9);
            // Downlinking raw yields the context's prevalence as its
            // high-value fraction.
            EXPECT_NEAR(table.stats[c][downlink].high_fraction,
                        table.contexts[c].prevalence, 1e-9);
            // Discard accuracy + downlink accuracy = 1 (complementary
            // all-negative / all-positive labelings).
            EXPECT_NEAR(table.stats[c][discard].cell_accuracy +
                            table.stats[c][downlink].cell_accuracy,
                        1.0, 1e-9);
        }
    }
}

TEST(MeasuredTables, ModelParamsMatchZooTier)
{
    const auto &artifacts = SharedPipeline::instance().app4;
    for (const auto &table : artifacts.tables) {
        for (int c = 0; c < table.contextCount(); ++c) {
            for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
                const auto &action = table.actions[c][a];
                if (action.kind != ActionKind::RunModel) {
                    EXPECT_EQ(table.stats[c][a].model_params, 0U);
                    continue;
                }
                EXPECT_EQ(table.stats[c][a].model_params,
                          hw::CostModel::tierParamCount(
                              artifacts.zoo.entries[action.model].tier));
            }
        }
    }
}

TEST(MeasuredTables, MeasureModelOnTilesMatchesTableForWholeContext)
{
    // Measuring the reference model over all validation tiles by hand
    // must agree with the direct table at the same tiling.
    const auto &pipeline = SharedPipeline::instance();
    const auto &artifacts = pipeline.app4;
    const DeploymentEvaluator evaluator(&artifacts.zoo,
                                        pipeline.shared.engine.get());
    const data::Tiler tiler(4);
    std::vector<std::vector<data::TileData>> frame_tiles;
    std::vector<const data::TileData *> all;
    for (const auto &frame : pipeline.shared.val) {
        frame_tiles.push_back(tiler.tile(frame));
        for (const auto &tile : frame_tiles.back()) {
            all.push_back(&tile);
        }
    }
    const auto stats =
        evaluator.measureModelOnTiles(artifacts.zoo.reference, all);
    const auto table =
        evaluator.measureDirectTable(pipeline.shared.val, 4);
    EXPECT_NEAR(stats.bits_fraction, table.stats[0][0].bits_fraction,
                1e-9);
    EXPECT_NEAR(stats.cell_accuracy, table.stats[0][0].cell_accuracy,
                1e-9);
}

TEST(MeasuredTables, FinerTilingRaisesReferenceAccuracy)
{
    // With the decimation data path, the reference model's accuracy at
    // 121 tiles/frame is at least its accuracy at 9 tiles/frame.
    const auto &artifacts = SharedPipeline::instance().app4;
    double acc_121 = -1.0;
    double acc_9 = -1.0;
    for (const auto &table : artifacts.direct_tables) {
        const int tiles = table.tiles_per_side * table.tiles_per_side;
        if (tiles == 121) {
            acc_121 = table.stats[0][0].cell_accuracy;
        }
        if (tiles == 9) {
            acc_9 = table.stats[0][0].cell_accuracy;
        }
    }
    ASSERT_GE(acc_121, 0.0);
    ASSERT_GE(acc_9, 0.0);
    EXPECT_GT(acc_121, acc_9);
}

} // namespace
} // namespace kodan::core
