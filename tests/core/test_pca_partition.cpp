/** @file Tests for the PCA-projected context clustering option. */

#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "data/generator.hpp"
#include "data/tiler.hpp"

namespace kodan::core {
namespace {

struct TileSet
{
    std::vector<data::FrameSample> frames;
    std::vector<data::TileData> tiles;
};

TileSet
sampleTiles(int frame_count = 16)
{
    data::DatasetParams params;
    params.grid = 44;
    params.seed = 321;
    data::DatasetGenerator gen(data::GeoModel{}, params);
    const data::Tiler tiler(4);
    TileSet set;
    set.frames = gen.generateGlobal(frame_count);
    for (const auto &frame : set.frames) {
        auto frame_tiles = tiler.tile(frame);
        set.tiles.insert(set.tiles.end(),
                         std::make_move_iterator(frame_tiles.begin()),
                         std::make_move_iterator(frame_tiles.end()));
    }
    return set;
}

TEST(PcaPartition, SweepConsidersProjectedSpace)
{
    const auto set = sampleTiles();
    util::Rng rng(1);
    PartitionOptions options;
    options.sweep_pca = true;
    options.pca_components = 3;
    const Partition partition =
        ContextPartitioner(options).fitAuto(set.tiles, rng);
    // Whatever space wins, the partition stays well-formed.
    EXPECT_GE(partition.context_count, 3);
    EXPECT_GT(partition.silhouette, 0.0);
    for (int c : partition.assignment) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, partition.context_count);
    }
}

TEST(PcaPartition, AssignTileConsistentWhenPcaWins)
{
    // Force the PCA space to win by offering only the projected space a
    // favourable k and requiring it through an aggressive projection.
    const auto set = sampleTiles();
    util::Rng rng(2);
    PartitionOptions options;
    options.sweep_pca = true;
    options.pca_components = 2;
    const Partition partition =
        ContextPartitioner(options).fitAuto(set.tiles, rng);
    // Assignments must round-trip through assignTile regardless of
    // which space was chosen.
    for (std::size_t i = 0; i < set.tiles.size(); ++i) {
        EXPECT_EQ(partition.assignTile(set.tiles[i]),
                  partition.assignment[i]);
    }
}

TEST(PcaPartition, PcaNeverLowersChosenSilhouette)
{
    const auto set = sampleTiles();
    util::Rng rng_a(3);
    util::Rng rng_b(3);
    PartitionOptions base;
    base.sweep_pca = false;
    PartitionOptions with_pca = base;
    with_pca.sweep_pca = true;
    const Partition plain =
        ContextPartitioner(base).fitAuto(set.tiles, rng_a);
    const Partition swept =
        ContextPartitioner(with_pca).fitAuto(set.tiles, rng_b);
    // The sweep keeps the PCA candidate only when it scores at least as
    // well, so the chosen silhouette can only improve.
    EXPECT_GE(swept.silhouette, plain.silhouette - 1e-9);
}

TEST(PcaPartition, DefaultsOff)
{
    PartitionOptions options;
    EXPECT_FALSE(options.sweep_pca);
}

} // namespace
} // namespace kodan::core
