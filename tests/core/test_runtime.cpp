/** @file Unit tests for the deployed runtime. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

SelectionLogic
allModelLogic(const SharedPipeline &pipeline, int tiles_per_side = 6)
{
    SelectionLogic logic;
    logic.tiles_per_side = tiles_per_side;
    logic.per_context.assign(pipeline.shared.partition.context_count,
                             {ActionKind::RunModel,
                              pipeline.app4.zoo.reference});
    return logic;
}

TEST(Runtime, ComputeTimeMatchesCostModel)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    const auto report =
        runtime.processFrame(pipeline.shared.val.front());
    const double expected =
        36.0 * (hw::CostModel::contextEngineTime(hw::Target::Orin15W) +
                hw::CostModel::tileTime(4, hw::Target::Orin15W));
    EXPECT_NEAR(report.compute_time, expected, 1e-9);
    EXPECT_EQ(report.tiles_modeled, 36);
    EXPECT_EQ(report.tiles_discarded, 0);
}

TEST(Runtime, DiscardEverythingEmitsNothing)
{
    const auto &pipeline = SharedPipeline::instance();
    SelectionLogic logic;
    logic.tiles_per_side = 4;
    logic.per_context.assign(pipeline.shared.partition.context_count,
                             {ActionKind::Discard, -1});
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    const auto report = runtime.processFrame(pipeline.shared.val[1]);
    EXPECT_DOUBLE_EQ(report.product_fraction, 0.0);
    EXPECT_EQ(report.tiles_discarded, 16);
    // Engine still runs on every tile.
    EXPECT_NEAR(report.compute_time,
                16.0 *
                    hw::CostModel::contextEngineTime(hw::Target::Orin15W),
                1e-9);
}

TEST(Runtime, DownlinkEverythingEmitsWholeFrame)
{
    const auto &pipeline = SharedPipeline::instance();
    SelectionLogic logic;
    logic.tiles_per_side = 4;
    logic.per_context.assign(pipeline.shared.partition.context_count,
                             {ActionKind::Downlink, -1});
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::I7_7800);
    const auto &frame = pipeline.shared.val[2];
    const auto report = runtime.processFrame(frame);
    EXPECT_NEAR(report.product_fraction, 1.0, 1e-9);
    EXPECT_NEAR(report.product_high_fraction, frame.highValueFraction(),
                1e-9);
}

TEST(Runtime, ProductFractionsConsistentWithConfusion)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Gtx1070Ti);
    const auto &frame = pipeline.shared.val[3];
    const auto report = runtime.processFrame(frame);
    const double cells = static_cast<double>(frame.cellCount());
    EXPECT_NEAR(report.product_fraction,
                (report.cells.tp() + report.cells.fp()) / cells, 1e-9);
    EXPECT_NEAR(report.product_high_fraction, report.cells.tp() / cells,
                1e-9);
}

TEST(Runtime, ModelDecisionsBeatChance)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Gtx1070Ti);
    std::vector<FrameReport> reports;
    for (const auto &frame : pipeline.shared.val) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto total = Runtime::aggregate(reports);
    EXPECT_GT(total.cells.accuracy(), 0.7);
    EXPECT_GT(total.cells.precision(), total.cells.prevalence());
}

TEST(Runtime, AggregateAveragesTime)
{
    FrameReport a;
    a.compute_time = 2.0;
    a.product_fraction = 0.5;
    a.tiles_modeled = 3;
    FrameReport b;
    b.compute_time = 4.0;
    b.product_fraction = 0.1;
    b.tiles_modeled = 5;
    const auto total = Runtime::aggregate({a, b});
    EXPECT_DOUBLE_EQ(total.compute_time, 3.0);
    EXPECT_DOUBLE_EQ(total.product_fraction, 0.3);
    EXPECT_EQ(total.tiles_modeled, 8);
}

TEST(Runtime, AgreesWithAnalyticProjection)
{
    // The analytic evaluateLogic() projection and the concrete runtime
    // must agree on frame time and product volumes (same tiles, same
    // models, same engine).
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    std::vector<FrameReport> reports;
    for (const auto &frame : pipeline.shared.val) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto measured = Runtime::aggregate(reports);

    // Find the matching table (36 tiles/frame).
    const ContextActionTable *table = nullptr;
    for (const auto &candidate : pipeline.app4.tables) {
        if (candidate.tiles_per_side == 6) {
            table = &candidate;
        }
    }
    ASSERT_NE(table, nullptr);
    SystemProfile profile;
    profile.target = hw::Target::Orin15W;
    profile.frame_deadline = 1.0e9; // irrelevant here
    profile.frames_per_day = 1.0;
    profile.frame_bits = 1.0;
    profile.downlink_bits_per_day = 1.0e12;
    const auto projected =
        evaluateLogic(profile, *table, logic.per_context, true, false);

    EXPECT_NEAR(projected.frame_time, measured.compute_time, 1e-6);
    EXPECT_NEAR(projected.bits_sent, measured.product_fraction, 0.01);
    EXPECT_NEAR(projected.high_bits_sent, measured.product_high_fraction,
                0.01);
    EXPECT_NEAR(projected.cell_accuracy, measured.cells.accuracy(), 0.01);
}

} // namespace
} // namespace kodan::core
