/** @file Unit tests for the deployed runtime. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/runtime.hpp"
#include "fixture.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

SelectionLogic
allModelLogic(const SharedPipeline &pipeline, int tiles_per_side = 6)
{
    SelectionLogic logic;
    logic.tiles_per_side = tiles_per_side;
    logic.per_context.assign(pipeline.shared.partition.context_count,
                             {ActionKind::RunModel,
                              pipeline.app4.zoo.reference});
    return logic;
}

TEST(Runtime, ComputeTimeMatchesCostModel)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    const auto report =
        runtime.processFrame(pipeline.shared.val.front());
    const double expected =
        36.0 * (hw::CostModel::contextEngineTime(hw::Target::Orin15W) +
                hw::CostModel::tileTime(4, hw::Target::Orin15W));
    EXPECT_NEAR(report.compute_time, expected, 1e-9);
    EXPECT_EQ(report.tiles_modeled, 36);
    EXPECT_EQ(report.tiles_discarded, 0);
}

TEST(Runtime, DiscardEverythingEmitsNothing)
{
    const auto &pipeline = SharedPipeline::instance();
    SelectionLogic logic;
    logic.tiles_per_side = 4;
    logic.per_context.assign(pipeline.shared.partition.context_count,
                             {ActionKind::Discard, -1});
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    const auto report = runtime.processFrame(pipeline.shared.val[1]);
    EXPECT_DOUBLE_EQ(report.product_fraction, 0.0);
    EXPECT_EQ(report.tiles_discarded, 16);
    // Engine still runs on every tile.
    EXPECT_NEAR(report.compute_time,
                16.0 *
                    hw::CostModel::contextEngineTime(hw::Target::Orin15W),
                1e-9);
}

TEST(Runtime, DownlinkEverythingEmitsWholeFrame)
{
    const auto &pipeline = SharedPipeline::instance();
    SelectionLogic logic;
    logic.tiles_per_side = 4;
    logic.per_context.assign(pipeline.shared.partition.context_count,
                             {ActionKind::Downlink, -1});
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::I7_7800);
    const auto &frame = pipeline.shared.val[2];
    const auto report = runtime.processFrame(frame);
    EXPECT_NEAR(report.product_fraction, 1.0, 1e-9);
    EXPECT_NEAR(report.product_high_fraction, frame.highValueFraction(),
                1e-9);
}

TEST(Runtime, ProductFractionsConsistentWithConfusion)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Gtx1070Ti);
    const auto &frame = pipeline.shared.val[3];
    const auto report = runtime.processFrame(frame);
    const double cells = static_cast<double>(frame.cellCount());
    EXPECT_NEAR(report.product_fraction,
                (report.cells.tp() + report.cells.fp()) / cells, 1e-9);
    EXPECT_NEAR(report.product_high_fraction, report.cells.tp() / cells,
                1e-9);
}

TEST(Runtime, ModelDecisionsBeatChance)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Gtx1070Ti);
    std::vector<FrameReport> reports;
    for (const auto &frame : pipeline.shared.val) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto total = Runtime::aggregate(reports);
    EXPECT_GT(total.cells.accuracy(), 0.7);
    EXPECT_GT(total.cells.precision(), total.cells.prevalence());
}

TEST(Runtime, AggregateAveragesTime)
{
    FrameReport a;
    a.compute_time = 2.0;
    a.product_fraction = 0.5;
    a.tiles_modeled = 3;
    FrameReport b;
    b.compute_time = 4.0;
    b.product_fraction = 0.1;
    b.tiles_modeled = 5;
    const auto total = Runtime::aggregate({a, b});
    EXPECT_DOUBLE_EQ(total.compute_time, 3.0);
    EXPECT_DOUBLE_EQ(total.product_fraction, 0.3);
    EXPECT_EQ(total.tiles_modeled, 8);
}

TEST(Runtime, AgreesWithAnalyticProjection)
{
    // The analytic evaluateLogic() projection and the concrete runtime
    // must agree on frame time and product volumes (same tiles, same
    // models, same engine).
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);
    std::vector<FrameReport> reports;
    for (const auto &frame : pipeline.shared.val) {
        reports.push_back(runtime.processFrame(frame));
    }
    const auto measured = Runtime::aggregate(reports);

    // Find the matching table (36 tiles/frame).
    const ContextActionTable *table = nullptr;
    for (const auto &candidate : pipeline.app4.tables) {
        if (candidate.tiles_per_side == 6) {
            table = &candidate;
        }
    }
    ASSERT_NE(table, nullptr);
    SystemProfile profile;
    profile.target = hw::Target::Orin15W;
    profile.frame_deadline = 1.0e9; // irrelevant here
    profile.frames_per_day = 1.0;
    profile.frame_bits = 1.0;
    profile.downlink_bits_per_day = 1.0e12;
    const auto projected =
        evaluateLogic(profile, *table, logic.per_context, true, false);

    EXPECT_NEAR(projected.frame_time, measured.compute_time, 1e-6);
    EXPECT_NEAR(projected.bits_sent, measured.product_fraction, 0.01);
    EXPECT_NEAR(projected.high_bits_sent, measured.product_high_fraction,
                0.01);
    EXPECT_NEAR(projected.cell_accuracy, measured.cells.accuracy(), 0.01);
}

TEST(Runtime, EmptyBatchEmitsNoTelemetry)
{
    // An empty batch must be a true no-op: no `runtime.batch` journal
    // region, no zero-frame aggregate event, no batched-frames count —
    // idle pollers must not pollute the flight recorder.
    const auto &pipeline = SharedPipeline::instance();
    const auto logic = allModelLogic(pipeline);
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);

    telemetry::setEnabled(true);
    telemetry::setJournalEnabled(true);
    telemetry::resetAll();
    const FrameReport report = runtime.processFrames({});
    EXPECT_EQ(report.compute_time, 0.0);
    EXPECT_EQ(report.tiles_modeled, 0);
    EXPECT_TRUE(telemetry::collectJournal().empty());
    const auto snapshot = telemetry::registry().snapshot();
    if (const auto *batched = snapshot.find("runtime.frames.batched")) {
        EXPECT_EQ(batched->count, 0);
    }
    if (const auto *timer = snapshot.find("runtime.batch.process")) {
        EXPECT_EQ(timer->count, 0);
    }
    telemetry::resetAll();
    telemetry::setEnabled(false);
    telemetry::setJournalEnabled(false);
}

// ---------------------------------------------------------------------
// Property: aggregate() then chunk-merge via mergeAggregates() equals
// flat aggregate() for ANY split of the batch — count-weighted
// associativity. Random splits, including empty chunks on either side,
// probe the space the hand-picked partitions above cannot.

FrameReport
randomReport(util::Rng &rng)
{
    FrameReport report;
    report.compute_time = rng.uniform(0.1, 50.0);
    report.product_fraction = rng.uniform();
    report.product_high_fraction =
        report.product_fraction * rng.uniform();
    report.tiles_discarded = rng.uniformInt(0, 121);
    report.tiles_downlinked = rng.uniformInt(0, 121);
    report.tiles_modeled = rng.uniformInt(0, 121);
    report.cells.addWeighted(true, true, rng.uniformInt(0, 4000));
    report.cells.addWeighted(true, false, rng.uniformInt(0, 4000));
    report.cells.addWeighted(false, true, rng.uniformInt(0, 4000));
    report.cells.addWeighted(false, false, rng.uniformInt(0, 4000));
    return report;
}

TEST(Runtime, MergeAggregatesIsCountWeightedAssociativeUnderRandomSplits)
{
    util::Rng rng(20260809);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(1, 40));
        std::vector<FrameReport> reports;
        reports.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            reports.push_back(randomReport(rng));
        }
        const FrameReport flat = Runtime::aggregate(reports);

        // Random partition into chunks, deliberately allowing empty
        // chunks: a zero-frame side must pass through the other side's
        // aggregate EXACTLY (mergeAggregates short-circuits, so not
        // even FP rounding may change).
        FrameReport merged;
        std::size_t merged_frames = 0;
        std::size_t offset = 0;
        while (offset < reports.size() || merged_frames == 0) {
            const std::size_t remaining = reports.size() - offset;
            const std::size_t size = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(remaining)));
            const std::vector<FrameReport> chunk(
                reports.begin() + static_cast<std::ptrdiff_t>(offset),
                reports.begin() +
                    static_cast<std::ptrdiff_t>(offset + size));
            const FrameReport chunk_total = Runtime::aggregate(chunk);
            const FrameReport next = Runtime::mergeAggregates(
                merged, merged_frames, chunk_total, size);
            if (size == 0) {
                // Zero-frame side: bit-exact passthrough.
                EXPECT_EQ(next.compute_time, merged.compute_time);
                EXPECT_EQ(next.product_fraction,
                          merged.product_fraction);
                EXPECT_EQ(next.tiles_modeled, merged.tiles_modeled);
            }
            if (merged_frames == 0) {
                EXPECT_EQ(next.compute_time, chunk_total.compute_time);
            }
            merged = next;
            merged_frames += size;
            offset += size;
            if (offset >= reports.size() && merged_frames > 0) {
                break;
            }
        }
        ASSERT_EQ(merged_frames, reports.size());

        // Counts are integer-exact; means re-associate FP addition, so
        // they get a tight relative tolerance.
        EXPECT_EQ(merged.tiles_discarded, flat.tiles_discarded);
        EXPECT_EQ(merged.tiles_downlinked, flat.tiles_downlinked);
        EXPECT_EQ(merged.tiles_modeled, flat.tiles_modeled);
        EXPECT_EQ(merged.cells.tp(), flat.cells.tp());
        EXPECT_EQ(merged.cells.fp(), flat.cells.fp());
        EXPECT_EQ(merged.cells.tn(), flat.cells.tn());
        EXPECT_EQ(merged.cells.fn(), flat.cells.fn());
        EXPECT_NEAR(merged.compute_time, flat.compute_time,
                    1e-11 * std::max(1.0, flat.compute_time));
        EXPECT_NEAR(merged.product_fraction, flat.product_fraction,
                    1e-11);
        EXPECT_NEAR(merged.product_high_fraction,
                    flat.product_high_fraction, 1e-11);
    }
}

} // namespace
} // namespace kodan::core
