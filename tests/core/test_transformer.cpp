/** @file Unit tests for the Transformer's options and staging. */

#include <gtest/gtest.h>

#include "core/transformer.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

TEST(Transformer, LegacyCorpusGeneratedByDefault)
{
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    EXPECT_FALSE(pipeline.shared.legacy.empty());
    EXPECT_FALSE(pipeline.shared.legacy_tiles.empty());
    // Legacy frames use the same grid as the representative frames.
    EXPECT_EQ(pipeline.shared.legacy.front().grid,
              pipeline.shared.train.front().grid);
}

TEST(Transformer, LegacyCorpusDisabledOnRequest)
{
    const data::GeoModel geo;
    auto options = kodan::testing::smallOptions();
    options.legacy_reference = false;
    options.train_frames = 8;
    options.val_frames = 4;
    const Transformer transformer(options);
    auto [train, val] = kodan::testing::smallFrames(geo, 8, 4);
    const auto shared =
        transformer.prepareData(std::move(train), std::move(val));
    EXPECT_TRUE(shared.legacy.empty());
    EXPECT_TRUE(shared.legacy_tiles.empty());
}

TEST(Transformer, ReferenceTilingControlsTrainingTiles)
{
    const data::GeoModel geo;
    auto options = kodan::testing::smallOptions();
    options.reference_tiling = 4;
    options.train_frames = 6;
    options.val_frames = 3;
    options.legacy_reference = false;
    const Transformer transformer(options);
    auto [train, val] = kodan::testing::smallFrames(geo, 6, 3);
    const auto shared =
        transformer.prepareData(std::move(train), std::move(val));
    EXPECT_EQ(shared.train_tiles.size(), 6U * 16U);
    EXPECT_EQ(shared.train_tiles.front().tiles_per_side, 4);
}

TEST(Transformer, SweepTileCountsControlTables)
{
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    const data::GeoModel geo;
    auto options = kodan::testing::smallOptions();
    options.sweep.tile_counts = {16, 9};
    options.train_frames = 8;
    options.val_frames = 4;
    const Transformer transformer(options);
    auto [train, val] = kodan::testing::smallFrames(geo, 8, 4);
    const auto shared =
        transformer.prepareData(std::move(train), std::move(val));
    const auto artifacts =
        transformer.transformApp(Application{2}, shared);
    ASSERT_EQ(artifacts.tables.size(), 2U);
    EXPECT_EQ(artifacts.tables[0].tiles_per_side, 4);
    EXPECT_EQ(artifacts.tables[1].tiles_per_side, 3);
    (void)pipeline;
}

TEST(Transformer, DirectTableMatchesChosenTiling)
{
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    const auto &artifacts = pipeline.app4;
    const auto &table = artifacts.directTable();
    EXPECT_EQ(table.tiles_per_side * table.tiles_per_side,
              artifacts.direct_tiles_per_frame);
    // The direct table has exactly one context with one model action.
    ASSERT_EQ(table.contextCount(), 1);
    ASSERT_EQ(table.actions[0].size(), 1U);
    EXPECT_EQ(table.actions[0][0].kind, ActionKind::RunModel);
}

TEST(Transformer, SelectReportsEverySweptTiling)
{
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    const auto profile = SystemProfile::landsat8(
        hw::Target::I7_7800, pipeline.shared.prevalence);
    const auto result =
        pipeline.transformer.select(pipeline.app4, profile);
    EXPECT_EQ(result.per_tiling.size(), pipeline.app4.tables.size());
    // The winning tiling's outcome equals the reported best outcome.
    bool found = false;
    for (const auto &[tiles, outcome] : result.per_tiling) {
        if (tiles == result.logic.tiles_per_side *
                         result.logic.tiles_per_side) {
            EXPECT_DOUBLE_EQ(outcome.dvd, result.outcome.dvd);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Transformer, AugmentationOffStillTrains)
{
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    SpecializeOptions options;
    options.augment_noise = 0.0;
    options.max_train_blocks = 3000;
    options.train.epochs = 2;
    const ModelSpecializer specializer(Application{1}, options);
    util::Rng rng(3);
    const auto zoo = specializer.trainZoo(
        pipeline.shared.train_tiles, pipeline.shared.train_contexts,
        pipeline.shared.partition.context_count, rng);
    EXPECT_GE(zoo.entries.size(), 2U);
    const DeploymentEvaluator evaluator(&zoo,
                                        pipeline.shared.engine.get());
    const auto table = evaluator.measureDirectTable(pipeline.shared.val, 4);
    EXPECT_GT(table.stats[0][0].cell_accuracy, 0.6);
}

TEST(Transformer, LegacyReferenceIsWorseInDomain)
{
    // The domain-shifted reference must measurably underperform a
    // reference trained in-domain (that gap powers Fig. 12).
    const auto &pipeline = kodan::testing::SharedPipeline::instance();

    SpecializeOptions options;
    options.max_train_blocks = 8000;
    options.train.epochs = 3;
    const ModelSpecializer specializer(Application{4}, options);
    util::Rng rng_a(9);
    const auto legacy_zoo = specializer.trainZoo(
        pipeline.shared.train_tiles, pipeline.shared.train_contexts,
        pipeline.shared.partition.context_count, rng_a,
        &pipeline.shared.legacy_tiles);
    util::Rng rng_b(9);
    const auto in_domain_zoo = specializer.trainZoo(
        pipeline.shared.train_tiles, pipeline.shared.train_contexts,
        pipeline.shared.partition.context_count, rng_b, nullptr);

    const DeploymentEvaluator legacy_eval(&legacy_zoo,
                                          pipeline.shared.engine.get());
    const DeploymentEvaluator domain_eval(&in_domain_zoo,
                                          pipeline.shared.engine.get());
    const auto legacy_table =
        legacy_eval.measureDirectTable(pipeline.shared.val, 6);
    const auto domain_table =
        domain_eval.measureDirectTable(pipeline.shared.val, 6);
    EXPECT_LT(legacy_table.stats[0][0].cell_accuracy,
              domain_table.stats[0][0].cell_accuracy + 0.02);
}

} // namespace
} // namespace kodan::core
