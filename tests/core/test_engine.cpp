/** @file Unit tests for the context engine. */

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

TEST(ContextEngine, MatchesPartitionContextCount)
{
    const auto &pipeline = SharedPipeline::instance();
    EXPECT_EQ(pipeline.shared.engine->contextCount(),
              pipeline.shared.partition.context_count);
}

TEST(ContextEngine, HighAgreementWithPartition)
{
    const auto &pipeline = SharedPipeline::instance();
    // The engine imitates the truth-label clustering from features; the
    // paper relies on this being accurate and fast.
    EXPECT_GT(pipeline.shared.engine_agreement, 0.75);
}

TEST(ContextEngine, ClassifiesIntoValidRange)
{
    const auto &pipeline = SharedPipeline::instance();
    const data::Tiler tiler(4);
    for (const auto &frame : pipeline.shared.val) {
        for (const auto &tile : tiler.tile(frame)) {
            const int c = pipeline.shared.engine->classify(tile);
            ASSERT_GE(c, 0);
            ASSERT_LT(c, pipeline.shared.engine->contextCount());
        }
    }
}

TEST(ContextEngine, DeterministicClassification)
{
    const auto &pipeline = SharedPipeline::instance();
    const data::Tiler tiler(4);
    const auto tiles = tiler.tile(pipeline.shared.val.front());
    for (const auto &tile : tiles) {
        EXPECT_EQ(pipeline.shared.engine->classify(tile),
                  pipeline.shared.engine->classify(tile));
    }
}

TEST(ContextEngine, AllContextsReachable)
{
    // Over the validation frames, every context should receive at least
    // one tile at the reference tiling (no dead contexts).
    const auto &pipeline = SharedPipeline::instance();
    std::vector<int> counts(pipeline.shared.engine->contextCount(), 0);
    const data::Tiler tiler(6);
    for (const auto &frame : pipeline.shared.val) {
        for (const auto &tile : tiler.tile(frame)) {
            ++counts[pipeline.shared.engine->classify(tile)];
        }
    }
    int live = 0;
    for (int count : counts) {
        if (count > 0) {
            ++live;
        }
    }
    EXPECT_GE(live, pipeline.shared.engine->contextCount() - 1);
}

} // namespace
} // namespace kodan::core
