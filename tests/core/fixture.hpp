/**
 * @file
 * Shared fixture for core-pipeline tests: a small synthetic dataset and
 * transformed artifacts, built once per test binary.
 */

#ifndef KODAN_TESTS_CORE_FIXTURE_HPP
#define KODAN_TESTS_CORE_FIXTURE_HPP

#include "core/kodan.hpp"
#include "data/generator.hpp"

namespace kodan::testing {

/** Small-transform options shared by the core tests. */
inline core::TransformOptions
smallOptions()
{
    core::TransformOptions options;
    options.train_frames = 30;
    options.val_frames = 12;
    options.specialize.max_train_blocks = 12000;
    return options;
}

/** Generate a small train/val frame set (grid 44 to keep tests quick). */
inline std::pair<std::vector<data::FrameSample>,
                 std::vector<data::FrameSample>>
smallFrames(const data::GeoModel &geo, int train = 30, int val = 12)
{
    data::DatasetParams params;
    params.grid = 44;
    params.seed = 1234;
    data::DatasetGenerator generator(geo, params);
    auto frames = generator.generateGlobal(train + val);
    std::vector<data::FrameSample> train_frames(
        std::make_move_iterator(frames.begin()),
        std::make_move_iterator(frames.begin() + train));
    std::vector<data::FrameSample> val_frames(
        std::make_move_iterator(frames.begin() + train),
        std::make_move_iterator(frames.end()));
    return {std::move(train_frames), std::move(val_frames)};
}

/** Lazily-built shared artifacts (one dataset + one transformed app). */
struct SharedPipeline
{
    data::GeoModel geo;
    core::Transformer transformer;
    core::DataArtifacts shared;
    core::AppArtifacts app4;

    SharedPipeline()
        : transformer(smallOptions())
    {
        auto [train, val] = smallFrames(geo);
        shared = transformer.prepareData(std::move(train), std::move(val));
        app4 = transformer.transformApp(core::Application{4}, shared);
    }

    /** Singleton accessor; built on first use. */
    static const SharedPipeline &instance()
    {
        static const SharedPipeline pipeline;
        return pipeline;
    }
};

} // namespace kodan::testing

#endif // KODAN_TESTS_CORE_FIXTURE_HPP
