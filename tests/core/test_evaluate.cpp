/** @file Unit tests for deployment evaluation (DVD accounting algebra). */

#include <gtest/gtest.h>

#include "core/evaluate.hpp"

namespace kodan::core {
namespace {

/** Hand-built single-context table with one model candidate. */
ContextActionTable
simpleTable(double bits_fraction, double high_fraction,
            std::size_t model_params, int tiles_per_side = 6)
{
    ContextActionTable table;
    table.tiles_per_side = tiles_per_side;
    table.contexts.resize(1);
    table.contexts[0].id = 0;
    table.contexts[0].tile_share = 1.0;
    table.contexts[0].prevalence = 0.48;
    table.actions.resize(1);
    table.stats.resize(1);
    table.actions[0] = {{ActionKind::Discard, -1},
                        {ActionKind::Downlink, -1},
                        {ActionKind::RunModel, 0}};
    ActionStats discard;
    discard.cell_accuracy = 0.52;
    ActionStats downlink;
    downlink.bits_fraction = 1.0;
    downlink.high_fraction = 0.48;
    downlink.cell_accuracy = 0.48;
    ActionStats model;
    model.bits_fraction = bits_fraction;
    model.high_fraction = high_fraction;
    model.cell_accuracy = 0.9;
    model.model_params = model_params;
    table.stats[0] = {discard, downlink, model};
    return table;
}

SystemProfile
testProfile(hw::Target target = hw::Target::Orin15W)
{
    SystemProfile profile;
    profile.target = target;
    profile.frame_deadline = 22.0;
    profile.frames_per_day = 1000.0;
    profile.frame_bits = 1.0e9;
    profile.downlink_bits_per_day = 2.0e11;
    profile.prevalence = 0.48;
    return profile;
}

TEST(SystemProfile, Landsat8DerivedQuantities)
{
    const auto profile = SystemProfile::landsat8(hw::Target::Orin15W);
    EXPECT_NEAR(profile.frame_deadline, 22.2, 0.3);
    EXPECT_NEAR(profile.frames_per_day, 3890.0, 50.0);
    EXPECT_DOUBLE_EQ(profile.frame_bits, 4.4e9);
    EXPECT_EQ(profile.target, hw::Target::Orin15W);
}

TEST(BentPipe, DvdEqualsPrevalence)
{
    const auto outcome = bentPipeOutcome(testProfile());
    EXPECT_DOUBLE_EQ(outcome.dvd, 0.48);
    // 1000 frames * 1e9 bits = 1e12 observed > 2e11 budget: saturated.
    EXPECT_DOUBLE_EQ(outcome.bits_sent, 2.0e11);
    EXPECT_DOUBLE_EQ(outcome.high_bits_sent, 0.48 * 2.0e11);
    EXPECT_NEAR(outcome.high_value_yield, 0.2, 1e-9);
}

TEST(BentPipe, UndersaturatedSendsEverything)
{
    auto profile = testProfile();
    profile.downlink_bits_per_day = 1.0e13;
    const auto outcome = bentPipeOutcome(profile);
    EXPECT_DOUBLE_EQ(outcome.bits_sent, 1.0e12);
    EXPECT_NEAR(outcome.high_value_yield, 1.0, 1e-9);
}

TEST(EvaluateLogic, DownlinkEverythingEqualsBentPipeDensity)
{
    const auto table = simpleTable(0.45, 0.42, 1000);
    const auto outcome =
        evaluateLogic(testProfile(), table, {{ActionKind::Downlink, -1}},
                      /*use_context_engine=*/false);
    EXPECT_NEAR(outcome.dvd, 0.48, 1e-9);
    EXPECT_DOUBLE_EQ(outcome.frame_time, 0.0);
    EXPECT_DOUBLE_EQ(outcome.processed_fraction, 1.0);
}

TEST(EvaluateLogic, DiscardEverythingSendsNothingWithoutRawFill)
{
    const auto table = simpleTable(0.45, 0.42, 1000);
    const auto outcome = evaluateLogic(
        testProfile(), table, {{ActionKind::Discard, -1}}, false, false);
    EXPECT_DOUBLE_EQ(outcome.bits_sent, 0.0);
    EXPECT_DOUBLE_EQ(outcome.dvd, 0.0);
}

TEST(EvaluateLogic, ModelProductsHaveMeasuredDensity)
{
    // Products: 45% of bits kept at density 0.42/0.45 = 0.933...
    // (50-parameter model: cheap enough to meet the deadline easily).
    const auto table = simpleTable(0.45, 0.42, 50);
    auto profile = testProfile();
    // Large budget: everything fits, no raw fill needed beyond products.
    profile.downlink_bits_per_day = 1.0e13;
    const auto outcome = evaluateLogic(
        profile, table, {{ActionKind::RunModel, 0}}, false, false);
    EXPECT_NEAR(outcome.product_precision, 0.42 / 0.45, 1e-9);
    EXPECT_NEAR(outcome.dvd, 0.42 / 0.45, 1e-9);
    // All products sent: 1000 frames * 1e9 * 0.45.
    EXPECT_NEAR(outcome.bits_sent, 4.5e11, 1.0);
}

TEST(EvaluateLogic, FrameTimeFromCostModel)
{
    const std::size_t params = hw::CostModel::tierParamCount(3);
    const auto table = simpleTable(0.45, 0.42, params);
    const auto outcome =
        evaluateLogic(testProfile(), table, {{ActionKind::RunModel, 0}},
                      /*use_context_engine=*/false, false);
    const double expected =
        36.0 * hw::CostModel::tileTime(3, hw::Target::Orin15W);
    EXPECT_NEAR(outcome.frame_time, expected, 1e-9);
}

TEST(EvaluateLogic, ContextEngineTimeCharged)
{
    const auto table = simpleTable(0.45, 0.42, 0);
    const auto with_engine = evaluateLogic(
        testProfile(), table, {{ActionKind::Downlink, -1}}, true, false);
    const double expected =
        36.0 * hw::CostModel::contextEngineTime(hw::Target::Orin15W);
    EXPECT_NEAR(with_engine.frame_time, expected, 1e-9);
}

TEST(EvaluateLogic, DeadlineKneeLimitsProcessing)
{
    // Tier 7 on Orin at 36 tiles/frame: 36 * 2.04 = 73.4 s >> 22 s.
    const std::size_t params = hw::CostModel::tierParamCount(7);
    const auto table = simpleTable(0.45, 0.42, params);
    const auto outcome =
        evaluateLogic(testProfile(), table, {{ActionKind::RunModel, 0}},
                      false, false);
    EXPECT_LT(outcome.processed_fraction, 1.0);
    EXPECT_NEAR(outcome.processed_fraction, 22.0 / (36.0 * 2.04), 1e-6);
}

TEST(EvaluateLogic, RawFillRaisesVolumeLowersDensity)
{
    const std::size_t params = hw::CostModel::tierParamCount(7);
    const auto table = simpleTable(0.45, 0.42, params);
    auto profile = testProfile();
    profile.downlink_bits_per_day = 5.0e11; // big enough to need filling
    const auto without = evaluateLogic(
        profile, table, {{ActionKind::RunModel, 0}}, false, false);
    const auto with_fill = evaluateLogic(
        profile, table, {{ActionKind::RunModel, 0}}, false, true);
    EXPECT_GT(with_fill.bits_sent, without.bits_sent);
    EXPECT_GT(with_fill.high_bits_sent, without.high_bits_sent);
    EXPECT_LT(with_fill.dvd, without.dvd);
}

TEST(EvaluateLogic, BestPoolsDrainFirst)
{
    // Two contexts: one pure (density 1), one poor (density 0.2); the
    // budget only fits one pool - the pure one must win.
    ContextActionTable table;
    table.tiles_per_side = 1;
    table.contexts.resize(2);
    table.contexts[0] = {0, 0.5, 1.0, "pure"};
    table.contexts[1] = {1, 0.5, 0.2, "poor"};
    table.actions.resize(2);
    table.stats.resize(2);
    for (int c = 0; c < 2; ++c) {
        table.actions[c] = {{ActionKind::Downlink, -1}};
        ActionStats stats;
        stats.bits_fraction = 1.0;
        stats.high_fraction = table.contexts[c].prevalence;
        stats.cell_accuracy = 1.0;
        table.stats[c] = {stats};
    }
    auto profile = testProfile();
    profile.downlink_bits_per_day = 0.5e12; // half of observed volume
    const auto outcome = evaluateLogic(
        profile, table,
        {{ActionKind::Downlink, -1}, {ActionKind::Downlink, -1}}, false,
        false);
    // Pure pool (0.5e12 bits at density 1.0) fills the whole budget.
    EXPECT_NEAR(outcome.dvd, 1.0, 1e-9);
}

TEST(EvaluateLogic, AccuracyIsShareWeighted)
{
    ContextActionTable table;
    table.tiles_per_side = 2;
    table.contexts.resize(2);
    table.contexts[0] = {0, 0.75, 0.5, "a"};
    table.contexts[1] = {1, 0.25, 0.5, "b"};
    table.actions.resize(2);
    table.stats.resize(2);
    for (int c = 0; c < 2; ++c) {
        table.actions[c] = {{ActionKind::Discard, -1}};
        ActionStats stats;
        stats.cell_accuracy = c == 0 ? 0.8 : 0.4;
        table.stats[c] = {stats};
    }
    const auto outcome = evaluateLogic(
        testProfile(), table,
        {{ActionKind::Discard, -1}, {ActionKind::Discard, -1}}, false,
        false);
    EXPECT_NEAR(outcome.cell_accuracy, 0.75 * 0.8 + 0.25 * 0.4, 1e-9);
}

TEST(ActionStats, DensityDefinition)
{
    ActionStats stats;
    stats.bits_fraction = 0.5;
    stats.high_fraction = 0.4;
    EXPECT_DOUBLE_EQ(stats.density(), 0.8);
    ActionStats empty;
    EXPECT_DOUBLE_EQ(empty.density(), 1.0);
}

TEST(ContextActionTable, FindAction)
{
    const auto table = simpleTable(0.5, 0.4, 10);
    EXPECT_EQ(table.findAction(0, {ActionKind::Discard, -1}), 0);
    EXPECT_EQ(table.findAction(0, {ActionKind::Downlink, -1}), 1);
    EXPECT_EQ(table.findAction(0, {ActionKind::RunModel, 0}), 2);
    EXPECT_EQ(table.findAction(0, {ActionKind::RunModel, 9}), -1);
}

} // namespace
} // namespace kodan::core
