/** @file Unit tests for the selection-logic sweep. */

#include <gtest/gtest.h>

#include "core/selection.hpp"

namespace kodan::core {
namespace {

/**
 * Two-context synthetic table:
 *  - context 0 ("clear", share 0.6, prevalence 0.9)
 *  - context 1 ("cloudy", share 0.4, prevalence 0.1)
 * Candidates everywhere: Discard, Downlink, cheap model (entry 0,
 * reference) and, in context 0, a better specialized model (entry 1).
 */
ContextActionTable
twoContextTable()
{
    ContextActionTable table;
    table.tiles_per_side = 6;
    table.contexts.resize(2);
    table.contexts[0] = {0, 0.6, 0.9, "clear"};
    table.contexts[1] = {1, 0.4, 0.1, "cloudy"};
    table.actions.resize(2);
    table.stats.resize(2);

    for (int c = 0; c < 2; ++c) {
        const double prevalence = table.contexts[c].prevalence;
        ActionStats discard;
        discard.cell_accuracy = 1.0 - prevalence;
        ActionStats downlink;
        downlink.bits_fraction = 1.0;
        downlink.high_fraction = prevalence;
        downlink.cell_accuracy = prevalence;
        ActionStats reference;
        reference.bits_fraction = prevalence;
        reference.high_fraction = prevalence * 0.92;
        reference.cell_accuracy = 0.9;
        reference.model_params = hw::CostModel::tierParamCount(4);
        table.actions[c] = {{ActionKind::Discard, -1},
                            {ActionKind::Downlink, -1},
                            {ActionKind::RunModel, 0}};
        table.stats[c] = {discard, downlink, reference};
    }
    // Specialized candidate in context 0: cheaper and more precise.
    ActionStats specialized;
    specialized.bits_fraction = 0.88;
    specialized.high_fraction = 0.87;
    specialized.cell_accuracy = 0.95;
    specialized.model_params = hw::CostModel::tierParamCount(1);
    table.actions[0].push_back({ActionKind::RunModel, 1});
    table.stats[0].push_back(specialized);
    return table;
}

SystemProfile
orinProfile()
{
    SystemProfile profile;
    profile.target = hw::Target::Orin15W;
    profile.frame_deadline = 22.0;
    profile.frames_per_day = 3900.0;
    profile.frame_bits = 4.4e9;
    profile.downlink_bits_per_day = 3.3e12;
    profile.prevalence = 0.58; // 0.6*0.9 + 0.4*0.1
    return profile;
}

TEST(SelectionOptimizer, DiscardsLowValueContextUnderPressure)
{
    const auto table = twoContextTable();
    const SelectionOptimizer optimizer;
    const auto [actions, outcome] =
        optimizer.optimizeAtTiling(orinProfile(), table);
    // Context 1 is 90% clouds; running the big model everywhere blows
    // the deadline, so the sweep must elide it (discard) or filter it
    // with something cheap - never downlink it raw ahead of better data.
    EXPECT_NE(actions[1].kind, ActionKind::Downlink);
    EXPECT_GT(outcome.dvd, 0.8);
}

TEST(SelectionOptimizer, PrefersSpecializedModelInClearContext)
{
    const auto table = twoContextTable();
    const SelectionOptimizer optimizer;
    const auto [actions, outcome] =
        optimizer.optimizeAtTiling(orinProfile(), table);
    // The tier-1 specialized model dominates the tier-4 reference in
    // both time and precision for context 0.
    if (actions[0].kind == ActionKind::RunModel) {
        EXPECT_EQ(actions[0].model, 1);
    }
    EXPECT_LE(outcome.frame_time, 22.0 + 1e-9);
}

TEST(SelectionOptimizer, ElisionFlagRestrictsActions)
{
    const auto table = twoContextTable();
    SweepOptions options;
    options.allow_elision = false;
    const SelectionOptimizer optimizer(options);
    const auto [actions, outcome] =
        optimizer.optimizeAtTiling(orinProfile(), table);
    for (const auto &action : actions) {
        EXPECT_EQ(action.kind, ActionKind::RunModel);
    }
}

TEST(SelectionOptimizer, SpecializationFlagRestrictsToReference)
{
    const auto table = twoContextTable();
    SweepOptions options;
    options.allow_specialization = false;
    const SelectionOptimizer optimizer(options);
    const auto [actions, outcome] =
        optimizer.optimizeAtTiling(orinProfile(), table);
    for (const auto &action : actions) {
        if (action.kind == ActionKind::RunModel) {
            EXPECT_EQ(action.model, 0);
        }
    }
}

TEST(SelectionOptimizer, SweepPicksBestTiling)
{
    // Same candidates at two tilings; the table with 36 tiles/frame has
    // better stats than the 121 one, so it must win.
    auto good = twoContextTable();
    auto bad = twoContextTable();
    bad.tiles_per_side = 11;
    for (auto &context_stats : bad.stats) {
        for (auto &stats : context_stats) {
            stats.high_fraction *= 0.7;
            stats.cell_accuracy *= 0.8;
        }
    }
    SweepOptions options;
    options.tile_counts = {36, 121};
    const SelectionOptimizer optimizer(options);
    const auto result = optimizer.optimize(orinProfile(), {good, bad});
    EXPECT_EQ(result.logic.tiles_per_side, 6);
    EXPECT_EQ(result.per_tiling.size(), 2U);
}

TEST(SelectionOptimizer, OutcomeBeatsAllSingleActions)
{
    // The optimized mixture is at least as good as any uniform policy.
    const auto table = twoContextTable();
    const SelectionOptimizer optimizer;
    const auto profile = orinProfile();
    const auto [actions, best] = optimizer.optimizeAtTiling(profile, table);
    for (const Action &uniform :
         {Action{ActionKind::Discard, -1}, Action{ActionKind::Downlink, -1},
          Action{ActionKind::RunModel, 0}}) {
        const auto outcome =
            evaluateLogic(profile, table, {uniform, uniform}, true, true);
        EXPECT_GE(best.high_bits_sent, outcome.high_bits_sent - 1.0);
    }
}

TEST(SelectionOptimizer, CoordinateAscentFallbackWorks)
{
    const auto table = twoContextTable();
    SweepOptions options;
    options.max_enumeration = 1; // force the fallback path
    const SelectionOptimizer optimizer(options);
    const auto [actions, outcome] =
        optimizer.optimizeAtTiling(orinProfile(), table);
    EXPECT_GT(outcome.dvd, 0.7);
    EXPECT_EQ(actions.size(), 2U);
}

} // namespace
} // namespace kodan::core
