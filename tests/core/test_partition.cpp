/** @file Unit tests for context partitioning. */

#include <gtest/gtest.h>

#include "core/partition.hpp"
#include "data/generator.hpp"
#include "data/tiler.hpp"

namespace kodan::core {
namespace {

/** Frames plus the tiles referencing them (tiles hold frame pointers). */
struct TileSet
{
    std::vector<data::FrameSample> frames;
    std::vector<data::TileData> tiles;
};

TileSet
sampleTiles(int frame_count = 20)
{
    data::DatasetParams params;
    params.grid = 44;
    params.seed = 77;
    data::DatasetGenerator gen(data::GeoModel{}, params);
    const data::Tiler tiler(4);
    TileSet set;
    set.frames = gen.generateGlobal(frame_count);
    for (const auto &frame : set.frames) {
        auto frame_tiles = tiler.tile(frame);
        set.tiles.insert(set.tiles.end(),
                         std::make_move_iterator(frame_tiles.begin()),
                         std::make_move_iterator(frame_tiles.end()));
    }
    return set;
}

TEST(ContextPartitioner, AutoAssignsEveryTile)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    util::Rng rng(1);
    const ContextPartitioner partitioner;
    const Partition partition = partitioner.fitAuto(tiles, rng);
    EXPECT_EQ(partition.assignment.size(), tiles.size());
    EXPECT_GE(partition.context_count, 3);
    EXPECT_LE(partition.context_count, 6);
    for (int c : partition.assignment) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, partition.context_count);
    }
}

TEST(ContextPartitioner, AutoSilhouetteIsPositive)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    util::Rng rng(2);
    const Partition partition = ContextPartitioner().fitAuto(tiles, rng);
    EXPECT_GT(partition.silhouette, 0.1);
}

TEST(ContextPartitioner, AssignTileMatchesFitAssignment)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    util::Rng rng(3);
    const Partition partition = ContextPartitioner().fitAuto(tiles, rng);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (partition.assignTile(tiles[i]) == partition.assignment[i]) {
            ++agree;
        }
    }
    EXPECT_EQ(agree, tiles.size());
}

TEST(ContextPartitioner, ClusersSeparateByCloudiness)
{
    // The cloud-fraction dimension should differentiate at least two
    // contexts markedly.
    const auto set = sampleTiles(30);
    const auto &tiles = set.tiles;
    util::Rng rng(4);
    const Partition partition = ContextPartitioner().fitAuto(tiles, rng);
    const auto infos = summarizeContexts(tiles, partition.assignment,
                                         partition.context_count);
    double min_prev = 1.0;
    double max_prev = 0.0;
    for (const auto &info : infos) {
        if (info.tile_share <= 0.0) {
            continue;
        }
        min_prev = std::min(min_prev, info.prevalence);
        max_prev = std::max(max_prev, info.prevalence);
    }
    EXPECT_GT(max_prev - min_prev, 0.12);
}

TEST(ContextPartitioner, ExpertUsesTerrainClasses)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    const Partition partition = ContextPartitioner().fitExpert(tiles);
    EXPECT_TRUE(partition.expert);
    EXPECT_EQ(partition.context_count, data::kTerrainCount);
    // The dominant terrain of each tile is its context.
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        int dominant = 0;
        for (int k = 1; k < data::kTerrainCount; ++k) {
            if (tiles[i].label_vector[k] >
                tiles[i].label_vector[dominant]) {
                dominant = k;
            }
        }
        EXPECT_EQ(partition.assignment[i], dominant);
    }
}

TEST(SummarizeContexts, SharesSumToOne)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    const Partition partition = ContextPartitioner().fitExpert(tiles);
    const auto infos = summarizeContexts(tiles, partition.assignment,
                                         partition.context_count);
    double total = 0.0;
    for (const auto &info : infos) {
        EXPECT_GE(info.tile_share, 0.0);
        EXPECT_GE(info.prevalence, 0.0);
        EXPECT_LE(info.prevalence, 1.0);
        total += info.tile_share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SummarizeContexts, DescriptionsNamed)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    const Partition partition = ContextPartitioner().fitExpert(tiles);
    const auto infos = summarizeContexts(tiles, partition.assignment,
                                         partition.context_count);
    for (const auto &info : infos) {
        EXPECT_FALSE(info.description.empty());
    }
}

TEST(ContextPartitioner, MetricSweepRespectsOptions)
{
    const auto set = sampleTiles();
    const auto &tiles = set.tiles;
    util::Rng rng(5);
    PartitionOptions options;
    options.k_candidates = {4};
    options.metrics = {ml::Distance::Euclidean};
    const Partition partition =
        ContextPartitioner(options).fitAuto(tiles, rng);
    EXPECT_EQ(partition.context_count, 4);
    EXPECT_EQ(partition.metric, ml::Distance::Euclidean);
}

} // namespace
} // namespace kodan::core
