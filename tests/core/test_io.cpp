/** @file Unit tests for artifact serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/io.hpp"

namespace kodan::core {
namespace {

ContextActionTable
makeTable()
{
    ContextActionTable table;
    table.tiles_per_side = 6;
    table.contexts.resize(2);
    table.contexts[0] = {0, 0.7, 0.65, "ocean"};
    table.contexts[1] = {1, 0.3, 0.21, "ocean+cloudy"};
    table.actions.resize(2);
    table.stats.resize(2);
    for (int c = 0; c < 2; ++c) {
        table.actions[c] = {{ActionKind::Discard, -1},
                            {ActionKind::RunModel, c}};
        ActionStats discard;
        discard.cell_accuracy = 0.4 + 0.1 * c;
        ActionStats model;
        model.bits_fraction = 0.5 + 0.01 * c;
        model.high_fraction = 0.45;
        model.cell_accuracy = 0.9;
        model.model_params = 1234 + c;
        table.stats[c] = {discard, model};
    }
    return table;
}

TEST(Io, TableRoundTrip)
{
    const ContextActionTable table = makeTable();
    std::stringstream stream;
    saveTable(stream, table);
    const ContextActionTable loaded = loadTable(stream);

    EXPECT_EQ(loaded.tiles_per_side, table.tiles_per_side);
    ASSERT_EQ(loaded.contextCount(), table.contextCount());
    for (int c = 0; c < table.contextCount(); ++c) {
        EXPECT_DOUBLE_EQ(loaded.contexts[c].tile_share,
                         table.contexts[c].tile_share);
        EXPECT_DOUBLE_EQ(loaded.contexts[c].prevalence,
                         table.contexts[c].prevalence);
        EXPECT_EQ(loaded.contexts[c].description,
                  table.contexts[c].description);
        ASSERT_EQ(loaded.actions[c].size(), table.actions[c].size());
        for (std::size_t a = 0; a < table.actions[c].size(); ++a) {
            EXPECT_EQ(loaded.actions[c][a], table.actions[c][a]);
            EXPECT_DOUBLE_EQ(loaded.stats[c][a].bits_fraction,
                             table.stats[c][a].bits_fraction);
            EXPECT_DOUBLE_EQ(loaded.stats[c][a].high_fraction,
                             table.stats[c][a].high_fraction);
            EXPECT_DOUBLE_EQ(loaded.stats[c][a].cell_accuracy,
                             table.stats[c][a].cell_accuracy);
            EXPECT_EQ(loaded.stats[c][a].model_params,
                      table.stats[c][a].model_params);
        }
    }
}

TEST(Io, BundleRoundTrip)
{
    MeasuredBundle bundle;
    bundle.prevalence = 0.477;
    MeasuredApp app;
    app.tier = 4;
    app.direct_tiles_per_frame = 121;
    app.tables.push_back(makeTable());
    app.direct_tables.push_back(makeTable());
    bundle.apps.push_back(app);
    MeasuredApp app2;
    app2.tier = 7;
    bundle.apps.push_back(app2);

    std::stringstream stream;
    saveBundle(stream, bundle);
    const MeasuredBundle loaded = loadBundle(stream);
    EXPECT_DOUBLE_EQ(loaded.prevalence, 0.477);
    ASSERT_EQ(loaded.apps.size(), 2U);
    EXPECT_EQ(loaded.apps[0].tier, 4);
    EXPECT_EQ(loaded.apps[0].direct_tiles_per_frame, 121);
    EXPECT_EQ(loaded.apps[0].tables.size(), 1U);
    EXPECT_EQ(loaded.apps[1].tier, 7);
    EXPECT_TRUE(loaded.apps[1].tables.empty());
}

TEST(Io, RoundTripPreservesEvaluation)
{
    // A loaded table must give bit-identical evaluateLogic outcomes.
    const ContextActionTable table = makeTable();
    std::stringstream stream;
    saveTable(stream, table);
    const ContextActionTable loaded = loadTable(stream);

    SystemProfile profile;
    profile.frame_deadline = 22.0;
    profile.frames_per_day = 1000.0;
    profile.frame_bits = 1e9;
    profile.downlink_bits_per_day = 1e11;
    profile.prevalence = 0.5;
    const std::vector<Action> actions = {{ActionKind::RunModel, 0},
                                         {ActionKind::Discard, -1}};
    const auto a = evaluateLogic(profile, table, actions);
    const auto b = evaluateLogic(profile, loaded, actions);
    EXPECT_DOUBLE_EQ(a.dvd, b.dvd);
    EXPECT_DOUBLE_EQ(a.frame_time, b.frame_time);
    EXPECT_DOUBLE_EQ(a.high_bits_sent, b.high_bits_sent);
}

TEST(Io, LogicRoundTrip)
{
    SelectionLogic logic;
    logic.tiles_per_side = 11;
    logic.per_context = {{ActionKind::Discard, -1},
                         {ActionKind::RunModel, 3},
                         {ActionKind::Downlink, -1}};
    std::stringstream stream;
    saveLogic(stream, logic);
    const SelectionLogic loaded = loadLogic(stream);
    EXPECT_EQ(loaded.tiles_per_side, 11);
    ASSERT_EQ(loaded.per_context.size(), 3U);
    EXPECT_EQ(loaded.per_context[0], logic.per_context[0]);
    EXPECT_EQ(loaded.per_context[1], logic.per_context[1]);
    EXPECT_EQ(loaded.per_context[2], logic.per_context[2]);
}

TEST(Io, MissingFileReturnsFalse)
{
    MeasuredBundle bundle;
    EXPECT_FALSE(tryLoadBundle("/nonexistent/path/bundle.txt", bundle));
}

TEST(Io, FileRoundTripViaStoreAndTryLoad)
{
    MeasuredBundle bundle;
    bundle.prevalence = 0.321;
    const std::string path = "/tmp/kodan_test_bundle.txt";
    storeBundle(path, bundle);
    MeasuredBundle loaded;
    ASSERT_TRUE(tryLoadBundle(path, loaded));
    EXPECT_DOUBLE_EQ(loaded.prevalence, 0.321);
    std::remove(path.c_str());
}

} // namespace
} // namespace kodan::core
