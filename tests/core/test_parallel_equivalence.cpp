/**
 * @file
 * Equivalence suite for the deterministic parallel execution layer: the
 * transformer sweep, the batch runtime, the mission simulator, and the
 * coverage analysis must produce BIT-IDENTICAL results at any thread
 * count. Doubles are compared with exact equality on purpose — the
 * facade's ordered reduction makes that a hard guarantee, and anything
 * weaker would let nondeterminism silently invalidate regenerated
 * figures.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/io.hpp"
#include "core/kodan.hpp"
#include "fixture.hpp"
#include "sim/coverage.hpp"
#include "sim/mission.hpp"
#include "util/thread_pool.hpp"

namespace kodan::core {
namespace {

using kodan::testing::smallFrames;
using kodan::testing::smallOptions;

/** Thread counts exercised against the serial (1-thread) baseline. */
const std::vector<int> kThreadCounts = {1, 2, 7};

/** Restores the global thread default when a test exits. */
class ThreadGuard
{
  public:
    ~ThreadGuard() { util::setGlobalThreads(0); }
};

std::string
serializeTables(const AppArtifacts &artifacts)
{
    std::ostringstream os;
    for (const auto &table : artifacts.tables) {
        saveTable(os, table);
    }
    for (const auto &table : artifacts.direct_tables) {
        saveTable(os, table);
    }
    os << artifacts.direct_tiles_per_frame << "\n";
    return os.str();
}

void
expectSameReport(const FrameReport &a, const FrameReport &b)
{
    EXPECT_EQ(a.compute_time, b.compute_time);
    EXPECT_EQ(a.product_fraction, b.product_fraction);
    EXPECT_EQ(a.product_high_fraction, b.product_high_fraction);
    EXPECT_EQ(a.tiles_discarded, b.tiles_discarded);
    EXPECT_EQ(a.tiles_downlinked, b.tiles_downlinked);
    EXPECT_EQ(a.tiles_modeled, b.tiles_modeled);
    EXPECT_EQ(a.cells.tp(), b.cells.tp());
    EXPECT_EQ(a.cells.fp(), b.cells.fp());
    EXPECT_EQ(a.cells.tn(), b.cells.tn());
    EXPECT_EQ(a.cells.fn(), b.cells.fn());
}

TEST(ParallelEquivalence, TransformerSweepIsBitIdenticalAcrossThreads)
{
    ThreadGuard guard;
    const data::GeoModel geo;
    const Transformer transformer(smallOptions());
    auto [train, val] = smallFrames(geo);
    const auto shared =
        transformer.prepareData(std::move(train), std::move(val));
    const auto profile =
        SystemProfile::landsat8(hw::Target::Orin15W, shared.prevalence);

    std::string baseline_tables;
    SweepResult baseline;
    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        const auto artifacts =
            transformer.transformApp(Application{4}, shared);
        const std::string tables = serializeTables(artifacts);
        const SweepResult result = transformer.select(artifacts, profile);
        if (threads == 1) {
            baseline_tables = tables;
            baseline = result;
            continue;
        }
        // Measured tables (precision-17 text round-trips doubles
        // exactly, so string equality is bit equality).
        EXPECT_EQ(tables, baseline_tables) << threads << " threads";
        // Selected logic.
        EXPECT_EQ(result.logic.tiles_per_side,
                  baseline.logic.tiles_per_side);
        ASSERT_EQ(result.logic.per_context.size(),
                  baseline.logic.per_context.size());
        for (std::size_t c = 0; c < result.logic.per_context.size();
             ++c) {
            EXPECT_TRUE(result.logic.per_context[c] ==
                        baseline.logic.per_context[c])
                << "context " << c << " at " << threads << " threads";
        }
        // Projected outcome, bitwise.
        EXPECT_EQ(result.outcome.dvd, baseline.outcome.dvd);
        EXPECT_EQ(result.outcome.frame_time, baseline.outcome.frame_time);
        EXPECT_EQ(result.outcome.bits_sent, baseline.outcome.bits_sent);
        EXPECT_EQ(result.outcome.high_bits_sent,
                  baseline.outcome.high_bits_sent);
        ASSERT_EQ(result.per_tiling.size(), baseline.per_tiling.size());
        for (std::size_t i = 0; i < result.per_tiling.size(); ++i) {
            EXPECT_EQ(result.per_tiling[i].first,
                      baseline.per_tiling[i].first);
            EXPECT_EQ(result.per_tiling[i].second.dvd,
                      baseline.per_tiling[i].second.dvd);
        }
    }
}

TEST(ParallelEquivalence, BatchRuntimeMatchesSerialLoop)
{
    ThreadGuard guard;
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    SelectionLogic logic;
    logic.tiles_per_side = 6;
    logic.per_context.assign(
        pipeline.shared.partition.context_count,
        {ActionKind::RunModel, pipeline.app4.zoo.reference});
    const Runtime runtime(logic, pipeline.shared.engine.get(),
                          &pipeline.app4.zoo, hw::Target::Orin15W);

    // Serial reference: per-frame loop + ordered aggregate.
    util::setGlobalThreads(1);
    std::vector<FrameReport> reports;
    for (const auto &frame : pipeline.shared.val) {
        reports.push_back(runtime.processFrame(frame));
    }
    const FrameReport serial = Runtime::aggregate(reports);

    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        const FrameReport batch =
            runtime.processFrames(pipeline.shared.val);
        SCOPED_TRACE(std::to_string(threads) + " threads");
        expectSameReport(batch, serial);
    }
}

TEST(ParallelEquivalence, MissionSimIsThreadCountInvariant)
{
    ThreadGuard guard;
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(5);
    config.duration = 4.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    sim::FilterBehavior filter;
    filter.frame_time = 40.0;
    filter.keep_high = 0.9;
    filter.keep_low = 0.2;
    const sim::MissionSim sim(nullptr, 1.0 / 3.0);

    util::setGlobalThreads(1);
    const auto baseline = sim.run(config, filter);
    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        const auto result = sim.run(config, filter);
        ASSERT_EQ(result.per_satellite.size(),
                  baseline.per_satellite.size());
        for (std::size_t s = 0; s < result.per_satellite.size(); ++s) {
            const auto &a = result.per_satellite[s];
            const auto &b = baseline.per_satellite[s];
            SCOPED_TRACE("sat " + std::to_string(s) + " at " +
                         std::to_string(threads) + " threads");
            EXPECT_EQ(a.frames_observed, b.frames_observed);
            EXPECT_EQ(a.frames_processed, b.frames_processed);
            EXPECT_EQ(a.frames_downlinked, b.frames_downlinked);
            EXPECT_EQ(a.bits_observed, b.bits_observed);
            EXPECT_EQ(a.high_bits_observed, b.high_bits_observed);
            EXPECT_EQ(a.bits_downlinked, b.bits_downlinked);
            EXPECT_EQ(a.high_bits_downlinked, b.high_bits_downlinked);
            EXPECT_EQ(a.contact_seconds, b.contact_seconds);
        }
    }
}

TEST(ParallelEquivalence, CoverageIsThreadCountInvariant)
{
    ThreadGuard guard;
    const auto config = sim::MissionConfig::landsatConstellation(4);
    const sense::WrsGrid grid;

    util::setGlobalThreads(1);
    const auto baseline = sim::uniqueSceneCoverage(
        config.satellites, config.camera, grid, 6.0 * 3600.0);
    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        const auto result = sim::uniqueSceneCoverage(
            config.satellites, config.camera, grid, 6.0 * 3600.0);
        EXPECT_EQ(result.total_frames, baseline.total_frames);
        EXPECT_EQ(result.unique_scenes, baseline.unique_scenes);
        EXPECT_EQ(result.grid_scenes, baseline.grid_scenes);
    }
}

// ---------------------------------------------------------------------
// Aggregation bug class: chunked merging must not average means over
// unequal chunks, and tile counters must survive mission-scale totals.

TEST(ParallelEquivalence, ChunkedAggregationMatchesFlatAggregation)
{
    // Synthesize per-frame reports with distinguishable values.
    std::vector<FrameReport> reports;
    for (int i = 0; i < 23; ++i) {
        FrameReport report;
        report.compute_time = 1.0 + 0.37 * i;
        report.product_fraction = 0.01 * i;
        report.product_high_fraction = 0.005 * i;
        report.tiles_discarded = i;
        report.tiles_downlinked = 2 * i;
        report.tiles_modeled = 3 * i + 1;
        report.cells.addWeighted(true, true, 10 + i);
        report.cells.addWeighted(true, false, 5 + i);
        report.cells.addWeighted(false, false, 100 - i);
        reports.push_back(report);
    }
    const FrameReport flat = Runtime::aggregate(reports);

    // Adversarial partitions: singleton, lopsided, prime-sized chunks.
    for (const std::vector<std::size_t> &sizes :
         {std::vector<std::size_t>{1, 22},
          std::vector<std::size_t>{22, 1},
          std::vector<std::size_t>{7, 7, 7, 2},
          std::vector<std::size_t>{3, 5, 11, 4},
          std::vector<std::size_t>{23}}) {
        FrameReport merged;
        std::size_t merged_frames = 0;
        std::size_t offset = 0;
        for (std::size_t size : sizes) {
            const std::vector<FrameReport> chunk(
                reports.begin() + static_cast<std::ptrdiff_t>(offset),
                reports.begin() +
                    static_cast<std::ptrdiff_t>(offset + size));
            merged = Runtime::mergeAggregates(merged, merged_frames,
                                              Runtime::aggregate(chunk),
                                              size);
            merged_frames += size;
            offset += size;
        }
        ASSERT_EQ(merged_frames, reports.size());
        // Weighted merging is algebraically exact; floating point gets
        // a tight relative tolerance because addition re-associates.
        EXPECT_NEAR(merged.compute_time, flat.compute_time,
                    1e-12 * flat.compute_time);
        EXPECT_NEAR(merged.product_fraction, flat.product_fraction,
                    1e-12);
        EXPECT_NEAR(merged.product_high_fraction,
                    flat.product_high_fraction, 1e-12);
        EXPECT_EQ(merged.tiles_discarded, flat.tiles_discarded);
        EXPECT_EQ(merged.tiles_downlinked, flat.tiles_downlinked);
        EXPECT_EQ(merged.tiles_modeled, flat.tiles_modeled);
        EXPECT_EQ(merged.cells.tp(), flat.cells.tp());
        EXPECT_EQ(merged.cells.fp(), flat.cells.fp());
        EXPECT_EQ(merged.cells.tn(), flat.cells.tn());
        EXPECT_EQ(merged.cells.fn(), flat.cells.fn());
    }
}

TEST(ParallelEquivalence, MeanOfMeansWouldHaveBeenWrong)
{
    // Documents the bug class mergeAggregates() exists to avoid: naive
    // (a + b) / 2 on unequal chunks is measurably wrong.
    FrameReport a;
    a.compute_time = 10.0; // aggregate of 1 frame
    FrameReport b;
    b.compute_time = 2.0; // aggregate of 9 frames
    const FrameReport merged = Runtime::mergeAggregates(a, 1, b, 9);
    EXPECT_DOUBLE_EQ(merged.compute_time, (10.0 + 9 * 2.0) / 10.0);
    EXPECT_NE(merged.compute_time, (10.0 + 2.0) / 2.0);
}

TEST(ParallelEquivalence, TileCountersSurviveMissionScaleTotals)
{
    // 121 tiles/frame over ~18M frames overflows 32-bit counters; the
    // aggregate must hold mission-scale sums exactly.
    FrameReport a;
    a.tiles_modeled = std::int64_t{2} * 1000 * 1000 * 1000;
    FrameReport b = a;
    const FrameReport total = Runtime::aggregate({a, b});
    EXPECT_EQ(total.tiles_modeled,
              std::int64_t{4} * 1000 * 1000 * 1000);
    const FrameReport merged = Runtime::mergeAggregates(a, 1, b, 1);
    EXPECT_EQ(merged.tiles_modeled,
              std::int64_t{4} * 1000 * 1000 * 1000);
}

} // namespace
} // namespace kodan::core
