/** @file Unit tests for model specialization. */

#include <gtest/gtest.h>

#include "core/specialize.hpp"
#include "fixture.hpp"

namespace kodan::core {
namespace {

using kodan::testing::SharedPipeline;

TEST(SpecializedZoo, ReferenceIsGlobalAndTopTier)
{
    const auto &zoo = SharedPipeline::instance().app4.zoo;
    ASSERT_FALSE(zoo.entries.empty());
    const auto &ref = zoo.entries[zoo.reference];
    EXPECT_EQ(ref.context, -1);
    EXPECT_EQ(ref.tier, 4);
}

TEST(SpecializedZoo, SpecializedTiersNeverExceedApplication)
{
    const auto &zoo = SharedPipeline::instance().app4.zoo;
    for (const auto &entry : zoo.entries) {
        EXPECT_GE(entry.tier, 1);
        EXPECT_LE(entry.tier, 4);
    }
}

TEST(SpecializedZoo, EveryLiveContextHasCandidates)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto &zoo = pipeline.app4.zoo;
    int contexts_with_models = 0;
    for (int c = 0; c < pipeline.shared.partition.context_count; ++c) {
        const auto candidates = zoo.candidatesFor(c);
        // Always at least the reference.
        EXPECT_GE(candidates.size(), 1U);
        if (candidates.size() > 1) {
            ++contexts_with_models;
        }
    }
    EXPECT_GE(contexts_with_models, 2);
}

TEST(SpecializedZoo, CandidatesForIncludesReference)
{
    const auto &zoo = SharedPipeline::instance().app4.zoo;
    for (int c = 0; c < 4; ++c) {
        const auto candidates = zoo.candidatesFor(c);
        bool has_reference = false;
        for (int entry : candidates) {
            if (zoo.entries[entry].context == -1) {
                has_reference = true;
            }
            // Candidates must be global or for this context.
            EXPECT_TRUE(zoo.entries[entry].context == -1 ||
                        zoo.entries[entry].context == c);
        }
        EXPECT_TRUE(has_reference);
    }
}

TEST(SpecializedZoo, PredictBlockIsProbability)
{
    const auto &pipeline = SharedPipeline::instance();
    const auto &zoo = pipeline.app4.zoo;
    const data::Tiler tiler(4);
    const auto tiles = tiler.tile(pipeline.shared.val.front());
    for (std::size_t e = 0; e < zoo.entries.size(); ++e) {
        for (int b = 0; b < data::kBlocksPerTile; b += 7) {
            const double p =
                zoo.predictBlock(static_cast<int>(e), tiles[0], b);
            ASSERT_GE(p, 0.0);
            ASSERT_LE(p, 1.0);
        }
    }
}

TEST(SpecializedZoo, ReferenceModelBeatsChance)
{
    // The reference model's block predictions must correlate with truth:
    // measure cell accuracy through the evaluator on validation tiles.
    const auto &pipeline = SharedPipeline::instance();
    const DeploymentEvaluator evaluator(&pipeline.app4.zoo,
                                        pipeline.shared.engine.get());
    const auto table = evaluator.measureDirectTable(pipeline.shared.val, 4);
    EXPECT_GT(table.stats[0][0].cell_accuracy, 0.7);
}

TEST(ModelSpecializer, TruthLabelAblationTrains)
{
    const auto &pipeline = SharedPipeline::instance();
    SpecializeOptions options;
    options.labels_from_reference = false;
    options.max_train_blocks = 4000;
    options.train.epochs = 2;
    const ModelSpecializer specializer(Application{2}, options);
    util::Rng rng(5);
    const auto zoo = specializer.trainZoo(
        pipeline.shared.train_tiles, pipeline.shared.train_contexts,
        pipeline.shared.partition.context_count, rng);
    EXPECT_GE(zoo.entries.size(), 3U);
    EXPECT_EQ(zoo.entries[zoo.reference].tier, 2);
}

TEST(ModelSpecializer, SmallerAppHasFewerCandidateTiers)
{
    const auto &pipeline = SharedPipeline::instance();
    SpecializeOptions options;
    options.max_train_blocks = 4000;
    options.train.epochs = 2;
    const ModelSpecializer specializer(Application{1}, options);
    util::Rng rng(6);
    const auto zoo = specializer.trainZoo(
        pipeline.shared.train_tiles, pipeline.shared.train_contexts,
        pipeline.shared.partition.context_count, rng);
    // App 1 candidates collapse to tier {1}: one per live context + ref.
    for (const auto &entry : zoo.entries) {
        EXPECT_EQ(entry.tier, 1);
    }
}

} // namespace
} // namespace kodan::core
