/**
 * @file
 * Constellation-engine suite: bit-identical results — MissionResult,
 * journal bytes, time-series bytes — across thread counts and shard
 * sizes, physical sanity of the fluid downlink model, the bounded
 * storage cap, multi-plane constellation coverage, and the global
 * ground segment preset.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/constellation.hpp"
#include "sim/coverage.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::sim {
namespace {

/** Enables metrics + journal, restores everything on exit. */
class TelemetryGuard
{
  public:
    TelemetryGuard()
        : metrics_were_enabled_(telemetry::enabled()),
          journal_was_enabled_(telemetry::journalEnabled()),
          saved_ring_(telemetry::journalRingCapacity())
    {
        telemetry::resetAll();
        telemetry::setEnabled(true);
        telemetry::setJournalEnabled(true);
        telemetry::setJournalRingCapacity(0);
    }

    ~TelemetryGuard()
    {
        telemetry::setEnabled(metrics_were_enabled_);
        telemetry::setJournalEnabled(journal_was_enabled_);
        telemetry::setJournalRingCapacity(saved_ring_);
        telemetry::resetAll();
        util::setGlobalThreads(0);
    }

  private:
    bool metrics_were_enabled_;
    bool journal_was_enabled_;
    std::size_t saved_ring_;
};

ConstellationConfig
smallScenario()
{
    ConstellationConfig config;
    config.mission = MissionConfig::makeConstellation(10, 2, 1);
    config.mission.duration = 12.0 * 3600.0;
    config.mission.scheduler_step = 30.0;
    config.mission.contact_scan_step = 60.0;
    config.mission.telemetry_bin_s = 1800.0;
    config.mission.telemetry_prefix = "constellation";
    config.chunk_s = 4.0 * 3600.0; // three chunks
    return config;
}

/** Everything a run produces, captured for bitwise comparison. */
struct CapturedRun
{
    MissionResult result;
    std::string journal;
    std::string series;
};

CapturedRun
runCaptured(const ConstellationConfig &config,
            const FilterBehavior &filter, int threads)
{
    telemetry::resetAll();
    util::setGlobalThreads(threads);
    const ConstellationEngine engine(nullptr, 1.0 / 3.0);
    CapturedRun run;
    run.result = engine.run(config, filter);
    util::setGlobalThreads(0);
    std::ostringstream journal_out;
    telemetry::writeJournalJsonl(telemetry::collectJournal(),
                                 telemetry::journalDroppedEvents(),
                                 journal_out);
    run.journal = journal_out.str();
    std::ostringstream series_out;
    telemetry::writeTimeSeriesJson(telemetry::timeSeriesSnapshot(),
                                   series_out);
    run.series = series_out.str();
    return run;
}

void
expectResultsIdentical(const MissionResult &a, const MissionResult &b)
{
    ASSERT_EQ(a.per_satellite.size(), b.per_satellite.size());
    for (std::size_t s = 0; s < a.per_satellite.size(); ++s) {
        const SatelliteResult &x = a.per_satellite[s];
        const SatelliteResult &y = b.per_satellite[s];
        EXPECT_EQ(x.frames_observed, y.frames_observed) << "sat " << s;
        EXPECT_EQ(x.frames_processed, y.frames_processed) << "sat " << s;
        EXPECT_EQ(x.frames_downlinked, y.frames_downlinked) << "sat " << s;
        EXPECT_EQ(x.bits_observed, y.bits_observed) << "sat " << s;
        EXPECT_EQ(x.high_bits_observed, y.high_bits_observed)
            << "sat " << s;
        EXPECT_EQ(x.bits_downlinked, y.bits_downlinked) << "sat " << s;
        EXPECT_EQ(x.high_bits_downlinked, y.high_bits_downlinked)
            << "sat " << s;
        EXPECT_EQ(x.contact_seconds, y.contact_seconds) << "sat " << s;
        EXPECT_EQ(x.frame_deadline, y.frame_deadline) << "sat " << s;
    }
    EXPECT_EQ(a.idle_station_seconds, b.idle_station_seconds);
    EXPECT_EQ(a.busy_station_seconds, b.busy_station_seconds);
}

// The determinism contract: MissionResult, journal bytes, and
// time-series bytes are bit-identical for every (threads, shard_size)
// combination — parallelism and shard granularity are pure scheduling
// detail.
TEST(ConstellationEngine, ThreadAndShardInvariance)
{
    TelemetryGuard guard;
    const FilterBehavior filter = FilterBehavior::idealFilter();
    const int thread_counts[] = {1, 4, 16};
    const std::size_t shard_sizes[] = {1, 7, 64};

    ConstellationConfig reference_config = smallScenario();
    reference_config.shard_size = 1;
    const CapturedRun reference =
        runCaptured(reference_config, filter, 1);
    ASSERT_GT(reference.result.totals().frames_observed, 0);
    ASSERT_FALSE(reference.journal.empty());
    ASSERT_FALSE(reference.series.empty());

    for (const int threads : thread_counts) {
        for (const std::size_t shard : shard_sizes) {
            if (threads == 1 && shard == 1) {
                continue;
            }
            ConstellationConfig config = smallScenario();
            config.shard_size = shard;
            const CapturedRun run = runCaptured(config, filter, threads);
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " shard=" + std::to_string(shard));
            expectResultsIdentical(reference.result, run.result);
            EXPECT_EQ(reference.journal, run.journal);
            EXPECT_EQ(reference.series, run.series);
        }
    }
}

TEST(ConstellationEngine, BentPipeDvdEqualsPrevalence)
{
    const ConstellationEngine engine(nullptr, 1.0 / 3.0);
    const auto totals =
        engine.run(smallScenario(), FilterBehavior::bentPipe()).totals();
    ASSERT_GT(totals.bits_downlinked, 0.0);
    EXPECT_NEAR(totals.dvd(), 1.0 / 3.0, 0.08);
    EXPECT_EQ(totals.frames_processed, 0);
}

TEST(ConstellationEngine, IdealFilterDownlinksOnlyHighValue)
{
    const ConstellationEngine engine(nullptr, 1.0 / 3.0);
    const ConstellationConfig config = smallScenario();
    const auto bent =
        engine.run(config, FilterBehavior::bentPipe()).totals();
    const auto ideal =
        engine.run(config, FilterBehavior::idealFilter()).totals();
    ASSERT_GT(ideal.bits_downlinked, 0.0);
    EXPECT_NEAR(ideal.dvd(), 1.0, 1e-9);
    EXPECT_GT(ideal.high_bits_downlinked, bent.high_bits_downlinked);
}

TEST(ConstellationEngine, DownlinkBoundedByContactCapacity)
{
    const ConstellationEngine engine(nullptr, 0.5);
    const ConstellationConfig config = smallScenario();
    const auto result = engine.run(config, FilterBehavior::bentPipe());
    for (const auto &sat : result.per_satellite) {
        EXPECT_LE(sat.bits_downlinked,
                  config.mission.radio.datarate_bps * sat.contact_seconds +
                      1.0);
    }
}

// The bounded recorder: a zero-capacity store sheds the entire backlog
// before every drain, so nothing ever reaches the ground; observation
// accounting is unaffected.
TEST(ConstellationEngine, StorageCapShedsBacklog)
{
    const ConstellationEngine engine(nullptr, 1.0 / 3.0);
    ConstellationConfig uncapped = smallScenario();
    uncapped.storage_bits = 1.0e18;
    ConstellationConfig capped = smallScenario();
    capped.storage_bits = 0.0;
    const auto big =
        engine.run(uncapped, FilterBehavior::bentPipe()).totals();
    const auto none =
        engine.run(capped, FilterBehavior::bentPipe()).totals();
    EXPECT_GT(big.bits_downlinked, 0.0);
    EXPECT_EQ(none.bits_downlinked, 0.0);
    EXPECT_EQ(none.frames_observed, big.frames_observed);
}

// Multi-plane Walker layouts must buy coverage: the staggered planes
// observe far more distinct WRS scenes per day than the same satellite
// count flying clustered at one point of one plane, and the builder
// must actually stagger the planes (distinct RAANs, phased anomalies).
TEST(ConstellationConfig, MultiPlaneCoverageBeatsClusteredPlane)
{
    const sense::WrsGrid grid;
    const MissionConfig four_planes =
        MissionConfig::makeConstellation(8, 4, 1);
    std::set<double> raans;
    for (const auto &sat : four_planes.satellites) {
        raans.insert(sat.raan);
    }
    EXPECT_EQ(raans.size(), 4u);

    const std::vector<orbit::OrbitalElements> cluster(
        8, orbit::OrbitalElements::landsat8());
    const auto clustered =
        uniqueSceneCoverage(cluster, four_planes.camera, grid);
    const auto spread = uniqueSceneCoverage(
        four_planes.satellites, four_planes.camera, grid);
    EXPECT_EQ(clustered.total_frames, spread.total_frames);
    EXPECT_GT(spread.unique_scenes, 3 * clustered.unique_scenes);
    EXPECT_GT(spread.coverageFraction(), 0.02);
}

TEST(ConstellationConfig, SinglePlaneMatchesLandsatPreset)
{
    const MissionConfig a = MissionConfig::landsatConstellation(6);
    const MissionConfig b = MissionConfig::makeConstellation(6, 1, 0);
    ASSERT_EQ(a.satellites.size(), b.satellites.size());
    for (std::size_t s = 0; s < a.satellites.size(); ++s) {
        EXPECT_EQ(a.satellites[s].semi_major_axis,
                  b.satellites[s].semi_major_axis);
        EXPECT_EQ(a.satellites[s].inclination, b.satellites[s].inclination);
        EXPECT_EQ(a.satellites[s].raan, b.satellites[s].raan);
        EXPECT_EQ(a.satellites[s].mean_anomaly,
                  b.satellites[s].mean_anomaly);
    }
}

TEST(GlobalGroundSegment, HasDistinctGlobalSites)
{
    const auto stations = ground::globalGroundSegment();
    EXPECT_GE(stations.size(), 24u);
    std::set<std::string> names;
    bool has_northern = false;
    bool has_southern = false;
    for (const auto &station : stations) {
        names.insert(station.name);
        has_northern |= station.location.latitude > 1.0;
        has_southern |= station.location.latitude < -0.5;
        EXPECT_GT(station.min_elevation, 0.0);
    }
    EXPECT_EQ(names.size(), stations.size());
    EXPECT_TRUE(has_northern);
    EXPECT_TRUE(has_southern);
}

TEST(GlobalGroundSegment, GrantsMoreContactThanLandsatSegment)
{
    const ConstellationEngine engine(nullptr, 1.0 / 3.0);
    const ConstellationConfig base = smallScenario();
    ConstellationConfig global = smallScenario();
    global.mission.stations = ground::globalGroundSegment();
    const auto narrow =
        engine.run(base, FilterBehavior::bentPipe()).totals();
    const auto wide =
        engine.run(global, FilterBehavior::bentPipe()).totals();
    EXPECT_GT(wide.contact_seconds, narrow.contact_seconds);
    EXPECT_GE(wide.bits_downlinked, narrow.bits_downlinked);
}

} // namespace
} // namespace kodan::sim
