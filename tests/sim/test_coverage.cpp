/** @file Unit tests for coverage analyses. */

#include <gtest/gtest.h>

#include "sim/coverage.hpp"

namespace kodan::sim {
namespace {

std::vector<orbit::OrbitalElements>
constellation(int count)
{
    std::vector<orbit::OrbitalElements> sats;
    for (int k = 0; k < count; ++k) {
        sats.push_back(orbit::OrbitalElements::landsat8(
            0.0, util::kTwoPi * k / count));
    }
    return sats;
}

TEST(Coverage, SingleSatelliteDailyFrames)
{
    const auto result = uniqueSceneCoverage(
        constellation(1), sense::CameraModel::landsat8Multispectral(),
        sense::WrsGrid());
    // ~3890 captures/day, nearly all distinct scenes.
    EXPECT_NEAR(static_cast<double>(result.total_frames), 3890.0, 60.0);
    EXPECT_GT(result.unique_scenes, 3000U);
    EXPECT_LE(result.unique_scenes, result.total_frames);
}

TEST(Coverage, UniqueScenesGrowWithConstellation)
{
    const auto camera = sense::CameraModel::landsat8Multispectral();
    const sense::WrsGrid grid;
    const auto one = uniqueSceneCoverage(constellation(1), camera, grid);
    const auto eight = uniqueSceneCoverage(constellation(8), camera, grid);
    EXPECT_GT(eight.unique_scenes, 4 * one.unique_scenes);
}

TEST(Coverage, FractionIsBounded)
{
    const auto result = uniqueSceneCoverage(
        constellation(4), sense::CameraModel::landsat8Multispectral(),
        sense::WrsGrid());
    EXPECT_GT(result.coverageFraction(), 0.0);
    EXPECT_LE(result.coverageFraction(), 1.0);
}

TEST(Coverage, ShortWindowSeesFewScenes)
{
    const auto result = uniqueSceneCoverage(
        constellation(1), sense::CameraModel::landsat8Multispectral(),
        sense::WrsGrid(), 3600.0);
    EXPECT_LT(result.total_frames, 200U);
}

TEST(PipelineCoverage, FastAppNeedsOneSatellite)
{
    EXPECT_EQ(satellitesForFullCoverage(10.0, 22.0), 1);
    EXPECT_EQ(satellitesForFullCoverage(0.0, 22.0), 1);
}

TEST(PipelineCoverage, SlowAppNeedsPipeline)
{
    // The paper's 98 s filter against a 22 s deadline needs 5 satellites.
    EXPECT_EQ(satellitesForFullCoverage(98.0, 22.0), 5);
}

TEST(PipelineCoverage, ExactMultiple)
{
    EXPECT_EQ(satellitesForFullCoverage(44.0, 22.0), 2);
    EXPECT_EQ(satellitesForFullCoverage(44.1, 22.0), 3);
}

} // namespace
} // namespace kodan::sim
