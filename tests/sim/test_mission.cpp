/** @file Unit tests for the mission simulator. */

#include <gtest/gtest.h>

#include "sim/mission.hpp"

namespace kodan::sim {
namespace {

MissionConfig
shortConfig(int sats, double hours = 6.0)
{
    MissionConfig config = MissionConfig::landsatConstellation(sats);
    config.duration = hours * 3600.0;
    config.scheduler_step = 20.0;
    config.contact_scan_step = 60.0;
    return config;
}

TEST(MissionSim, BentPipeDvdEqualsPrevalence)
{
    const MissionSim sim(nullptr, 1.0 / 3.0);
    const auto result = sim.run(shortConfig(1), FilterBehavior::bentPipe());
    const auto totals = result.totals();
    ASSERT_GT(totals.bits_downlinked, 0.0);
    EXPECT_NEAR(totals.high_bits_downlinked / totals.bits_downlinked,
                1.0 / 3.0, 0.08);
    EXPECT_EQ(totals.frames_processed, 0);
}

TEST(MissionSim, IdealFilterBeatsBentPipe)
{
    const MissionSim sim(nullptr, 1.0 / 3.0);
    const auto config = shortConfig(1);
    const auto bent = sim.run(config, FilterBehavior::bentPipe()).totals();
    const auto ideal =
        sim.run(config, FilterBehavior::idealFilter()).totals();
    EXPECT_GT(ideal.high_bits_downlinked, 1.5 * bent.high_bits_downlinked);
    // Ideal filter downlinks only high-value data.
    EXPECT_NEAR(ideal.high_bits_downlinked / ideal.bits_downlinked, 1.0,
                1e-9);
}

TEST(MissionSim, DownlinkBoundedByContactCapacity)
{
    const MissionSim sim(nullptr, 0.5);
    const auto config = shortConfig(1);
    const auto result = sim.run(config, FilterBehavior::bentPipe());
    for (const auto &sat : result.per_satellite) {
        EXPECT_LE(sat.bits_downlinked,
                  config.radio.datarate_bps * sat.contact_seconds + 1.0);
    }
}

TEST(MissionSim, ObservationScalesWithConstellation)
{
    const MissionSim sim(nullptr, 0.5);
    const auto one = sim.run(shortConfig(1), FilterBehavior::bentPipe());
    const auto four = sim.run(shortConfig(4), FilterBehavior::bentPipe());
    EXPECT_NEAR(static_cast<double>(four.totals().frames_observed),
                4.0 * one.totals().frames_observed, 8.0);
}

TEST(MissionSim, DownlinkSaturatesWithConstellation)
{
    // Frames downlinked grow sublinearly once stations saturate.
    const MissionSim sim(nullptr, 0.5);
    const auto one = sim.run(shortConfig(1), FilterBehavior::bentPipe());
    const auto many = sim.run(shortConfig(12), FilterBehavior::bentPipe());
    const double growth = many.totals().frames_downlinked /
                          one.totals().frames_downlinked;
    EXPECT_LT(growth, 12.0);
    EXPECT_GT(growth, 1.0);
}

TEST(MissionSim, IdleStationTimeShrinksWithMoreSatellites)
{
    const MissionSim sim(nullptr, 0.5);
    const auto one = sim.run(shortConfig(1), FilterBehavior::bentPipe());
    const auto many = sim.run(shortConfig(8), FilterBehavior::bentPipe());
    EXPECT_LT(many.idle_station_seconds, one.idle_station_seconds);
}

TEST(MissionSim, SlowFilterProcessesFractionOfFrames)
{
    const MissionSim sim(nullptr, 1.0 / 3.0);
    FilterBehavior slow;
    slow.frame_time = 98.0; // paper's direct-deploy example
    slow.keep_high = 1.0;
    slow.keep_low = 0.0;
    const auto result = sim.run(shortConfig(1), slow).totals();
    const double deadline = result.frame_deadline;
    const double expected_fraction = deadline / 98.0;
    const double actual_fraction =
        static_cast<double>(result.frames_processed) /
        result.frames_observed;
    EXPECT_NEAR(actual_fraction, expected_fraction, 0.05);
}

TEST(MissionSim, FastFilterProcessesEverything)
{
    const MissionSim sim(nullptr, 1.0 / 3.0);
    FilterBehavior fast;
    fast.frame_time = 1.0;
    const auto result = sim.run(shortConfig(1), fast).totals();
    EXPECT_EQ(result.frames_processed, result.frames_observed);
}

TEST(MissionSim, WorldBackedValuesAreFractional)
{
    const data::GeoModel world;
    const MissionSim sim(&world);
    const auto result =
        sim.run(shortConfig(1, 3.0), FilterBehavior::bentPipe()).totals();
    // High-value fraction should be strictly between 0 and 1.
    ASSERT_GT(result.bits_observed, 0.0);
    const double prevalence =
        result.high_bits_observed / result.bits_observed;
    EXPECT_GT(prevalence, 0.2);
    EXPECT_LT(prevalence, 0.8);
}

TEST(MissionSim, FrameDeadlineMatchesCamera)
{
    const MissionSim sim(nullptr, 0.5);
    const auto result =
        sim.run(shortConfig(1, 2.0), FilterBehavior::bentPipe());
    EXPECT_NEAR(result.per_satellite[0].frame_deadline, 22.2, 0.3);
}

TEST(MissionSim, ProductPrioritizationBeatsFifo)
{
    // A slow, perfect filter: with product prioritization the few
    // filtered (all-high) frames jump the queue; in FIFO order they mix
    // with the raw backlog, lowering the downlinked value.
    const MissionSim sim(nullptr, 1.0 / 3.0);
    FilterBehavior priority;
    priority.frame_time = 98.0;
    priority.keep_high = 1.0;
    priority.keep_low = 0.0;
    priority.prioritize_products = true;
    FilterBehavior fifo = priority;
    fifo.prioritize_products = false;

    const auto config = shortConfig(1);
    const auto with_priority = sim.run(config, priority).totals();
    const auto with_fifo = sim.run(config, fifo).totals();
    EXPECT_GT(with_priority.high_bits_downlinked,
              with_fifo.high_bits_downlinked);
}

TEST(MissionSim, FifoStillConservesBits)
{
    const MissionSim sim(nullptr, 0.5);
    FilterBehavior fifo;
    fifo.frame_time = 50.0;
    fifo.keep_high = 0.9;
    fifo.keep_low = 0.3;
    fifo.prioritize_products = false;
    const auto result = sim.run(shortConfig(2), fifo);
    for (const auto &sat : result.per_satellite) {
        EXPECT_LE(sat.high_bits_downlinked, sat.bits_downlinked + 1e-3);
        EXPECT_LE(sat.bits_downlinked,
                  result.per_satellite[0].contact_seconds == 0.0
                      ? 1e18
                      : 210.0e6 * sat.contact_seconds + 1.0);
    }
}

TEST(MissionSim, HighValueYieldIsAFraction)
{
    const MissionSim sim(nullptr, 1.0 / 3.0);
    const auto result =
        sim.run(shortConfig(2), FilterBehavior::idealFilter());
    for (const auto &sat : result.per_satellite) {
        EXPECT_GE(sat.highValueYield(), 0.0);
        EXPECT_LE(sat.highValueYield(), 1.0 + 1e-9);
    }
}

} // namespace
} // namespace kodan::sim
