/** @file Unit tests for the hardware cost model (Table 1). */

#include <gtest/gtest.h>

#include "hw/target.hpp"

namespace kodan::hw {
namespace {

TEST(CostModel, Table1AnchorsExact)
{
    // Spot-check Table 1 values (converted to seconds).
    EXPECT_DOUBLE_EQ(CostModel::tileTime(1, Target::Gtx1070Ti), 0.1782);
    EXPECT_DOUBLE_EQ(CostModel::tileTime(1, Target::I7_7800), 0.4406);
    EXPECT_DOUBLE_EQ(CostModel::tileTime(1, Target::Orin15W), 0.6188);
    EXPECT_DOUBLE_EQ(CostModel::tileTime(7, Target::Gtx1070Ti), 0.4752);
    EXPECT_DOUBLE_EQ(CostModel::tileTime(7, Target::I7_7800), 2.545);
    EXPECT_DOUBLE_EQ(CostModel::tileTime(7, Target::Orin15W), 2.040);
    EXPECT_DOUBLE_EQ(CostModel::tileTime(4, Target::Orin15W), 1.594);
}

TEST(CostModel, TimesIncreaseWithTier)
{
    for (Target target : allTargets()) {
        for (int tier = 2; tier <= kAppCount; ++tier) {
            EXPECT_GT(CostModel::tileTime(tier, target),
                      CostModel::tileTime(tier - 1, target))
                << targetName(target) << " tier " << tier;
        }
    }
}

TEST(CostModel, GpuIsFastestTarget)
{
    for (int tier = 1; tier <= kAppCount; ++tier) {
        EXPECT_LT(CostModel::tileTime(tier, Target::Gtx1070Ti),
                  CostModel::tileTime(tier, Target::I7_7800));
        EXPECT_LT(CostModel::tileTime(tier, Target::Gtx1070Ti),
                  CostModel::tileTime(tier, Target::Orin15W));
    }
}

TEST(CostModel, ParamCountsMonotonic)
{
    for (int tier = 2; tier <= kAppCount; ++tier) {
        EXPECT_GT(CostModel::tierParamCount(tier),
                  CostModel::tierParamCount(tier - 1));
    }
}

TEST(CostModel, ModelTimePassesThroughAnchors)
{
    for (Target target : allTargets()) {
        for (int tier = 1; tier <= kAppCount; ++tier) {
            EXPECT_NEAR(
                CostModel::modelTime(CostModel::tierParamCount(tier),
                                     target),
                CostModel::tileTime(tier, target), 1e-12);
        }
    }
}

TEST(CostModel, ModelTimeInterpolatesBetweenAnchors)
{
    const std::size_t p_lo = CostModel::tierParamCount(2);
    const std::size_t p_hi = CostModel::tierParamCount(3);
    const std::size_t mid = (p_lo + p_hi) / 2;
    const double t = CostModel::modelTime(mid, Target::Orin15W);
    EXPECT_GT(t, CostModel::tileTime(2, Target::Orin15W));
    EXPECT_LT(t, CostModel::tileTime(3, Target::Orin15W));
}

TEST(CostModel, TinyModelsFlooredAtEngineCost)
{
    for (Target target : allTargets()) {
        EXPECT_GE(CostModel::modelTime(1, target),
                  CostModel::contextEngineTime(target));
    }
}

TEST(CostModel, ExtrapolatesAboveLargestTier)
{
    const std::size_t big = 4 * CostModel::tierParamCount(kAppCount);
    EXPECT_NEAR(CostModel::modelTime(big, Target::Gtx1070Ti),
                4.0 * CostModel::tileTime(kAppCount, Target::Gtx1070Ti),
                1e-9);
}

TEST(CostModel, ContextEngineIsMuchCheaperThanModels)
{
    for (Target target : allTargets()) {
        EXPECT_LT(CostModel::contextEngineTime(target),
                  0.05 * CostModel::tileTime(1, target));
    }
}

TEST(CostModel, TierNamesMatchPaper)
{
    EXPECT_STREQ(CostModel::tierName(1), "mobilenetv2dilated-c1-deepsup");
    EXPECT_STREQ(CostModel::tierName(7),
                 "resnet101dilated-ppm-deepsup");
}

TEST(CostModel, HiddenWidthsConsistentWithParamCounts)
{
    for (int tier = 1; tier <= kAppCount; ++tier) {
        const auto &hidden = CostModel::tierHidden(tier);
        std::size_t params = 0;
        int prev = CostModel::kSurrogateInputDim;
        for (int h : hidden) {
            params += static_cast<std::size_t>(prev) * h + h;
            prev = h;
        }
        params += static_cast<std::size_t>(prev) + 1;
        EXPECT_EQ(params, CostModel::tierParamCount(tier));
    }
}

TEST(Targets, NamesAndCount)
{
    EXPECT_EQ(allTargets().size(), 3U);
    EXPECT_STREQ(targetName(Target::Orin15W), "Orin15W");
    EXPECT_STREQ(targetName(Target::Gtx1070Ti), "1070Ti");
    EXPECT_STREQ(targetName(Target::I7_7800), "i7-7800");
}

} // namespace
} // namespace kodan::hw
