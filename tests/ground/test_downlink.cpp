/** @file Unit tests for the downlink model and ground-segment scheduler. */

#include <gtest/gtest.h>

#include "ground/downlink.hpp"

namespace kodan::ground {
namespace {

TEST(DownlinkModel, RateTimesTime)
{
    DownlinkModel radio;
    radio.datarate_bps = 100.0e6;
    radio.pass_overhead_s = 0.0;
    EXPECT_DOUBLE_EQ(radio.bitsForContact(10.0), 1.0e9);
}

TEST(DownlinkModel, OverheadDeductedPerPass)
{
    DownlinkModel radio;
    radio.datarate_bps = 1.0e6;
    radio.pass_overhead_s = 15.0;
    EXPECT_DOUBLE_EQ(radio.bitsForContact(100.0, 1), 85.0e6);
    EXPECT_DOUBLE_EQ(radio.bitsForContact(100.0, 2), 70.0e6);
}

TEST(DownlinkModel, NeverNegative)
{
    DownlinkModel radio;
    radio.pass_overhead_s = 60.0;
    EXPECT_DOUBLE_EQ(radio.bitsForContact(30.0, 1), 0.0);
}

TEST(Scheduler, SingleSatelliteGetsAllWindowTime)
{
    // One window, one satellite: every in-window second is granted.
    std::vector<ContactWindow> windows = {{0, 0, 100.0, 400.0}};
    const GroundSegmentScheduler scheduler(10.0);
    const auto alloc = scheduler.allocate(windows, 1, 1, 0.0, 1000.0);
    EXPECT_NEAR(alloc.seconds_per_satellite[0], 300.0, 10.0);
    EXPECT_EQ(alloc.passes_per_satellite[0], 1U);
    EXPECT_NEAR(alloc.idle_station_seconds +
                    alloc.busy_station_seconds,
                1000.0, 1.0);
}

TEST(Scheduler, ContendingSatellitesShareFairly)
{
    // Two satellites visible at the same station simultaneously; with
    // zero hysteresis slack the split is exactly fair.
    std::vector<ContactWindow> windows = {{0, 0, 0.0, 600.0},
                                          {0, 1, 0.0, 600.0}};
    const GroundSegmentScheduler scheduler(10.0, 0.0);
    const auto alloc = scheduler.allocate(windows, 2, 1, 0.0, 600.0);
    EXPECT_NEAR(alloc.seconds_per_satellite[0],
                alloc.seconds_per_satellite[1], 20.0);
    EXPECT_NEAR(alloc.seconds_per_satellite[0] +
                    alloc.seconds_per_satellite[1],
                600.0, 10.0);
}

TEST(Scheduler, HysteresisKeepsGrantsContiguous)
{
    // With the default slack, a contended pass is served in long
    // contiguous grants instead of per-step ping-pong, bounding the
    // per-pass overhead count.
    std::vector<ContactWindow> windows = {{0, 0, 0.0, 600.0},
                                          {0, 1, 0.0, 600.0}};
    const GroundSegmentScheduler scheduler(10.0, 240.0);
    const auto alloc = scheduler.allocate(windows, 2, 1, 0.0, 600.0);
    EXPECT_LE(alloc.passes_per_satellite[0] +
                  alloc.passes_per_satellite[1],
              4U);
    // Both satellites are still served within one slack of each other.
    EXPECT_NEAR(alloc.seconds_per_satellite[0],
                alloc.seconds_per_satellite[1], 250.0);
}

TEST(Scheduler, SecondStationRemovesContention)
{
    std::vector<ContactWindow> windows = {{0, 0, 0.0, 600.0},
                                          {1, 1, 0.0, 600.0}};
    const GroundSegmentScheduler scheduler(10.0);
    const auto alloc = scheduler.allocate(windows, 2, 2, 0.0, 600.0);
    EXPECT_NEAR(alloc.seconds_per_satellite[0], 600.0, 10.0);
    EXPECT_NEAR(alloc.seconds_per_satellite[1], 600.0, 10.0);
}

TEST(Scheduler, GrantConservation)
{
    // Total granted time can never exceed station-busy time.
    std::vector<ContactWindow> windows = {
        {0, 0, 0.0, 500.0}, {0, 1, 100.0, 400.0}, {0, 2, 200.0, 300.0}};
    const GroundSegmentScheduler scheduler(5.0);
    const auto alloc = scheduler.allocate(windows, 3, 1, 0.0, 500.0);
    double granted = 0.0;
    for (double s : alloc.seconds_per_satellite) {
        granted += s;
    }
    EXPECT_NEAR(granted, alloc.busy_station_seconds, 1e-6);
    EXPECT_LE(granted, 500.0 + 1e-6);
}

TEST(Scheduler, IdleTimeWhenNothingVisible)
{
    std::vector<ContactWindow> windows = {{0, 0, 900.0, 1000.0}};
    const GroundSegmentScheduler scheduler(10.0);
    const auto alloc = scheduler.allocate(windows, 1, 1, 0.0, 1000.0);
    EXPECT_NEAR(alloc.idle_station_seconds, 900.0, 20.0);
}

TEST(Scheduler, LeastServedWinsTie)
{
    // Satellite 1 already has a private window; during the shared window
    // the scheduler should favor satellite 0.
    std::vector<ContactWindow> windows = {{0, 1, 0.0, 300.0},
                                          {0, 0, 300.0, 600.0},
                                          {0, 1, 300.0, 600.0}};
    const GroundSegmentScheduler scheduler(10.0);
    const auto alloc = scheduler.allocate(windows, 2, 1, 0.0, 600.0);
    // Satellite 0 should win the whole contested second half.
    EXPECT_NEAR(alloc.seconds_per_satellite[0], 300.0, 20.0);
}

TEST(Scheduler, PassCountsTrackGrantChanges)
{
    std::vector<ContactWindow> windows = {{0, 0, 0.0, 100.0},
                                          {0, 0, 500.0, 600.0}};
    const GroundSegmentScheduler scheduler(10.0);
    const auto alloc = scheduler.allocate(windows, 1, 1, 0.0, 600.0);
    EXPECT_EQ(alloc.passes_per_satellite[0], 2U);
}

} // namespace
} // namespace kodan::ground
