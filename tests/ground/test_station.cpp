/** @file Unit tests for ground stations. */

#include <gtest/gtest.h>

#include "ground/station.hpp"
#include "util/units.hpp"

namespace kodan::ground {
namespace {

TEST(GroundSegment, LandsatHasFiveStations)
{
    const auto stations = landsatGroundSegment();
    ASSERT_EQ(stations.size(), 5U);
    for (const auto &station : stations) {
        EXPECT_FALSE(station.name.empty());
        EXPECT_NEAR(util::radToDeg(station.min_elevation), 10.0, 1e-9);
    }
}

TEST(GroundSegment, SvalbardIsPolar)
{
    const auto stations = landsatGroundSegment();
    bool found = false;
    for (const auto &station : stations) {
        if (station.name == "Svalbard") {
            found = true;
            EXPECT_GT(util::radToDeg(station.location.latitude), 70.0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(GroundSegment, SparseIsSubset)
{
    const auto sparse = sparseGroundSegment();
    EXPECT_EQ(sparse.size(), 2U);
}

TEST(GroundStation, EcefOnSurface)
{
    const auto stations = landsatGroundSegment();
    for (const auto &station : stations) {
        const double r = station.ecef().norm();
        EXPECT_GT(r, 6.35e6);
        EXPECT_LT(r, 6.38e6);
    }
}

} // namespace
} // namespace kodan::ground
