/** @file Unit tests for contact-window finding. */

#include <gtest/gtest.h>

#include "ground/contact.hpp"
#include "orbit/elements.hpp"
#include "util/units.hpp"

namespace kodan::ground {
namespace {

using util::degToRad;
using util::kSecondsPerDay;

GroundStation
station(double lat_deg, double lon_deg, double mask_deg = 10.0)
{
    GroundStation s;
    s.name = "test";
    s.location = {degToRad(lat_deg), degToRad(lon_deg), 0.0};
    s.min_elevation = degToRad(mask_deg);
    return s;
}

TEST(ContactFinder, PolarStationSeesPolarOrbitEveryRevolution)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const auto windows =
        finder.find(sat, station(89.0, 0.0), 0.0, kSecondsPerDay);
    // ~14.5 revolutions per day; a near-pole station sees nearly all.
    EXPECT_GE(windows.size(), 12U);
    EXPECT_LE(windows.size(), 16U);
}

TEST(ContactFinder, PassDurationsAreMinutes)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const auto windows =
        finder.find(sat, station(89.0, 0.0), 0.0, kSecondsPerDay);
    for (const auto &w : windows) {
        EXPECT_GT(w.duration(), 30.0);
        EXPECT_LT(w.duration(), 16.0 * 60.0);
    }
}

TEST(ContactFinder, WindowsAreOrderedAndDisjoint)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const auto windows =
        finder.find(sat, station(60.0, 20.0), 0.0, kSecondsPerDay);
    for (std::size_t i = 1; i < windows.size(); ++i) {
        EXPECT_GT(windows[i].start, windows[i - 1].end);
    }
}

TEST(ContactFinder, ElevationAtBoundariesEqualsMask)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const GroundStation s = station(45.0, 10.0);
    const auto windows = finder.find(sat, s, 0.0, kSecondsPerDay);
    ASSERT_FALSE(windows.empty());
    for (const auto &w : windows) {
        const double elev_start = orbit::elevationAngle(
            s.ecef(), sat.positionEcef(w.start));
        EXPECT_NEAR(util::radToDeg(elev_start), 10.0, 0.05);
    }
}

TEST(ContactFinder, TighterMaskShortensWindows)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const auto loose =
        finder.find(sat, station(70.0, 0.0, 5.0), 0.0, kSecondsPerDay);
    const auto tight =
        finder.find(sat, station(70.0, 0.0, 30.0), 0.0, kSecondsPerDay);
    EXPECT_GT(totalContactSeconds(loose), totalContactSeconds(tight));
}

TEST(ContactFinder, EquatorialStationSeesFewPasses)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const auto equatorial =
        finder.find(sat, station(0.0, 0.0), 0.0, kSecondsPerDay);
    const auto polar =
        finder.find(sat, station(89.0, 0.0), 0.0, kSecondsPerDay);
    EXPECT_LT(equatorial.size(), polar.size());
}

TEST(ContactFinder, FindAllTagsIndices)
{
    std::vector<orbit::J2Propagator> sats = {
        orbit::J2Propagator(orbit::OrbitalElements::landsat8(0.0, 0.0)),
        orbit::J2Propagator(
            orbit::OrbitalElements::landsat8(0.0, util::kPi))};
    std::vector<GroundStation> stations = {station(89.0, 0.0),
                                           station(45.0, 100.0)};
    const ContactFinder finder;
    const auto windows = finder.findAll(sats, stations, 0.0, 20000.0);
    ASSERT_FALSE(windows.empty());
    for (const auto &w : windows) {
        EXPECT_LT(w.satellite, 2U);
        EXPECT_LT(w.station, 2U);
    }
    for (std::size_t i = 1; i < windows.size(); ++i) {
        EXPECT_GE(windows[i].start, windows[i - 1].start);
    }
}

TEST(ContactFinder, EmptyIntervalYieldsNoWindows)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const ContactFinder finder;
    const auto windows = finder.find(sat, station(45.0, 0.0), 100.0, 100.0);
    EXPECT_TRUE(windows.empty());
}

} // namespace
} // namespace kodan::ground
