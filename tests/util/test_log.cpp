/** @file Unit tests for the logging facility. */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace kodan::util {
namespace {

/** RAII capture of stderr. */
class CaptureStderr
{
  public:
    CaptureStderr()
        : old_(std::cerr.rdbuf(buffer_.rdbuf()))
    {
    }

    ~CaptureStderr() { std::cerr.rdbuf(old_); }

    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

class LogTest : public ::testing::Test
{
  protected:
    void SetUp() override { previous_ = logLevel(); }
    void TearDown() override { setLogLevel(previous_); }

  private:
    LogLevel previous_;
};

TEST_F(LogTest, MessagesBelowLevelAreSuppressed)
{
    setLogLevel(LogLevel::Warn);
    CaptureStderr capture;
    logMessage(LogLevel::Info, "quiet please");
    EXPECT_EQ(capture.text(), "");
}

TEST_F(LogTest, MessagesAtLevelAreEmitted)
{
    setLogLevel(LogLevel::Warn);
    CaptureStderr capture;
    logMessage(LogLevel::Warn, "heads up");
    EXPECT_NE(capture.text().find("heads up"), std::string::npos);
    EXPECT_NE(capture.text().find("WARN"), std::string::npos);
}

TEST_F(LogTest, MacroRespectsLevel)
{
    setLogLevel(LogLevel::Error);
    CaptureStderr capture;
    KODAN_LOG(LogLevel::Debug, "invisible " << 42);
    EXPECT_EQ(capture.text(), "");
    KODAN_LOG(LogLevel::Error, "visible " << 42);
    EXPECT_NE(capture.text().find("visible 42"), std::string::npos);
}

TEST_F(LogTest, LevelRoundTrips)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
}

TEST_F(LogTest, SinkCapturesInsteadOfStderr)
{
    setLogLevel(LogLevel::Info);
    std::vector<std::pair<LogLevel, std::string>> captured;
    setLogSink([&](LogLevel level, const std::string &message) {
        captured.emplace_back(level, message);
    });
    CaptureStderr capture;
    logMessage(LogLevel::Warn, "to the sink");
    setLogSink(nullptr);
    EXPECT_EQ(capture.text(), "");
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "to the sink");
}

TEST_F(LogTest, SinkStillLevelFiltered)
{
    setLogLevel(LogLevel::Error);
    int calls = 0;
    setLogSink([&](LogLevel, const std::string &) { ++calls; });
    logMessage(LogLevel::Debug, "filtered");
    logMessage(LogLevel::Error, "passed");
    setLogSink(nullptr);
    EXPECT_EQ(calls, 1);
}

TEST_F(LogTest, NullSinkRestoresDefaultStderr)
{
    setLogLevel(LogLevel::Warn);
    setLogSink([](LogLevel, const std::string &) {});
    setLogSink(nullptr);
    CaptureStderr capture;
    logMessage(LogLevel::Warn, "back to stderr");
    EXPECT_NE(capture.text().find("back to stderr"), std::string::npos);
}

namespace {
std::vector<std::string> tap_messages;
void
recordTap(LogLevel, const std::string &message)
{
    tap_messages.push_back(message);
}
} // namespace

TEST_F(LogTest, TapObservesAlongsideSink)
{
    setLogLevel(LogLevel::Warn);
    tap_messages.clear();
    setLogTap(&recordTap);
    int sink_calls = 0;
    setLogSink([&](LogLevel, const std::string &) { ++sink_calls; });
    logMessage(LogLevel::Warn, "seen by both");
    setLogTap(nullptr);
    setLogSink(nullptr);
    EXPECT_EQ(sink_calls, 1);
    ASSERT_EQ(tap_messages.size(), 1u);
    EXPECT_EQ(tap_messages[0], "seen by both");
}

namespace {
void
secondTap(LogLevel, const std::string &)
{
}
} // namespace

TEST_F(LogTest, SinkDoubleInstallIsRejected)
{
    EXPECT_TRUE(setLogSink([](LogLevel, const std::string &) {}));
    // A second non-null sink over the installed one must be refused —
    // silently replacing it would disconnect the first consumer.
    EXPECT_FALSE(setLogSink([](LogLevel, const std::string &) {}));
    EXPECT_TRUE(setLogSink(nullptr)); // uninstall always succeeds
    EXPECT_TRUE(setLogSink([](LogLevel, const std::string &) {}));
    EXPECT_TRUE(setLogSink(nullptr));
}

TEST_F(LogTest, TapReinstallIsIdempotentButReplacementIsRejected)
{
    EXPECT_TRUE(setLogTap(&recordTap));
    // Re-arming the same tap (telemetry bridge pattern) is fine...
    EXPECT_TRUE(setLogTap(&recordTap));
    // ...but a different tap over an installed one is refused.
    EXPECT_FALSE(setLogTap(&secondTap));
    EXPECT_TRUE(setLogTap(nullptr));
    EXPECT_TRUE(setLogTap(&secondTap));
    EXPECT_TRUE(setLogTap(nullptr));
}

/** Restores the default rate limit and drains drop counters. */
class RateLimitGuard
{
  public:
    RateLimitGuard() { flushLogSuppressed(); }

    ~RateLimitGuard()
    {
        setLogSink(nullptr);
        // Drain this test's drops so later flushes stay silent, then
        // restore the stock limit.
        setLogSink([](LogLevel, const std::string &) {});
        flushLogSuppressed();
        setLogSink(nullptr);
        const LogRateLimit defaults;
        setLogRateLimit(defaults.tokens_per_s, defaults.burst);
    }
};

TEST_F(LogTest, RateLimitAdmitsExactlyBurstMessagesPerSite)
{
    setLogLevel(LogLevel::Info);
    RateLimitGuard guard;
    // Zero refill + burst 5: deterministically exactly 5 admits from
    // this one call site, however fast the loop runs.
    setLogRateLimit(0.0, 5.0);
    std::vector<std::string> lines;
    setLogSink([&](LogLevel, const std::string &message) {
        lines.push_back(message);
    });
    for (int i = 0; i < 12; ++i) {
        KODAN_LOG(LogLevel::Warn, "burst " << i);
    }
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines.front(), "burst 0");
    EXPECT_EQ(lines.back(), "burst 4");
    EXPECT_EQ(logSuppressedCount(), 7u);
}

TEST_F(LogTest, FlushReportsAndResetsSuppressedCounts)
{
    setLogLevel(LogLevel::Info);
    RateLimitGuard guard;
    setLogRateLimit(0.0, 2.0);
    std::vector<std::string> lines;
    setLogSink([&](LogLevel, const std::string &message) {
        lines.push_back(message);
    });
    for (int i = 0; i < 6; ++i) {
        KODAN_LOG(LogLevel::Warn, "drop " << i);
    }
    ASSERT_EQ(lines.size(), 2u);
    flushLogSuppressed();
    // One extra Warn naming this site and the 4 suppressed messages.
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines.back().find("suppressed 4 message(s)"),
              std::string::npos);
    EXPECT_NE(lines.back().find("test_log.cpp"), std::string::npos);
    EXPECT_EQ(logSuppressedCount(), 0u);
    // A second flush with nothing new suppressed emits nothing.
    flushLogSuppressed();
    EXPECT_EQ(lines.size(), 3u);
}

TEST_F(LogTest, ZeroBurstDisablesRateLimiting)
{
    setLogLevel(LogLevel::Info);
    RateLimitGuard guard;
    setLogRateLimit(0.0, 0.0); // burst <= 0: limiter off
    int emitted = 0;
    setLogSink([&](LogLevel, const std::string &) { ++emitted; });
    for (int i = 0; i < 100; ++i) {
        KODAN_LOG(LogLevel::Warn, "unlimited " << i);
    }
    EXPECT_EQ(emitted, 100);
    EXPECT_EQ(logSuppressedCount(), 0u);
}

TEST_F(LogTest, RateLimitRoundTrips)
{
    RateLimitGuard guard;
    setLogRateLimit(17.0, 42.0);
    const LogRateLimit limit = logRateLimit();
    EXPECT_EQ(limit.tokens_per_s, 17.0);
    EXPECT_EQ(limit.burst, 42.0);
}

TEST_F(LogTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST_F(LogTest, PanicAborts)
{
    EXPECT_DEATH(panic("broken invariant"), "broken invariant");
}

} // namespace
} // namespace kodan::util
