/** @file Unit tests for the logging facility. */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "util/log.hpp"

namespace kodan::util {
namespace {

/** RAII capture of stderr. */
class CaptureStderr
{
  public:
    CaptureStderr()
        : old_(std::cerr.rdbuf(buffer_.rdbuf()))
    {
    }

    ~CaptureStderr() { std::cerr.rdbuf(old_); }

    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

class LogTest : public ::testing::Test
{
  protected:
    void SetUp() override { previous_ = logLevel(); }
    void TearDown() override { setLogLevel(previous_); }

  private:
    LogLevel previous_;
};

TEST_F(LogTest, MessagesBelowLevelAreSuppressed)
{
    setLogLevel(LogLevel::Warn);
    CaptureStderr capture;
    logMessage(LogLevel::Info, "quiet please");
    EXPECT_EQ(capture.text(), "");
}

TEST_F(LogTest, MessagesAtLevelAreEmitted)
{
    setLogLevel(LogLevel::Warn);
    CaptureStderr capture;
    logMessage(LogLevel::Warn, "heads up");
    EXPECT_NE(capture.text().find("heads up"), std::string::npos);
    EXPECT_NE(capture.text().find("WARN"), std::string::npos);
}

TEST_F(LogTest, MacroRespectsLevel)
{
    setLogLevel(LogLevel::Error);
    CaptureStderr capture;
    KODAN_LOG(LogLevel::Debug, "invisible " << 42);
    EXPECT_EQ(capture.text(), "");
    KODAN_LOG(LogLevel::Error, "visible " << 42);
    EXPECT_NE(capture.text().find("visible 42"), std::string::npos);
}

TEST_F(LogTest, LevelRoundTrips)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
}

TEST_F(LogTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST_F(LogTest, PanicAborts)
{
    EXPECT_DEATH(panic("broken invariant"), "broken invariant");
}

} // namespace
} // namespace kodan::util
