/** @file Unit tests for the thread pool and the parallel facade. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace kodan::util {
namespace {

TEST(ThreadPool, StartupShutdown)
{
    for (int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
    }
    // Degenerate requests clamp to one worker.
    ThreadPool clamped(0);
    EXPECT_EQ(clamped.threadCount(), 1);
    ThreadPool negative(-3);
    EXPECT_EQ(negative.threadCount(), 1);
}

TEST(ThreadPool, RunBatchVisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 1000;
    std::vector<std::atomic<int>> visits(kTasks);
    pool.runBatch(kTasks,
                  [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kTasks; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, RunBatchZeroTasksIsANoop)
{
    ThreadPool pool(3);
    pool.runBatch(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ExceptionPropagatesAndRemainingTasksStillRun)
{
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 64;
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(pool.runBatch(kTasks,
                               [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 13) {
                                       throw std::runtime_error("boom");
                                   }
                               }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), kTasks);
    // The pool survives a throwing batch.
    std::atomic<std::size_t> again{0};
    pool.runBatch(8, [&](std::size_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 8U);
}

TEST(ThreadPool, DestructionWhileBusyDrainsWithoutDeadlock)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) {
            pool.enqueue([&completed] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                completed.fetch_add(1);
            });
        }
        // Destructor runs here while tasks are still queued/busy.
    }
    EXPECT_EQ(completed.load(), 16);
}

TEST(ParallelFor, ChunkingEdgeCases)
{
    for (int threads : {1, 2, 8}) {
        const ParallelOptions opts{threads, 1};
        // 0 items: no calls.
        parallelFor(
            0, [](std::size_t) { FAIL() << "must not run"; }, opts);
        // 1 item.
        std::vector<int> one(1, 0);
        parallelFor(1, [&](std::size_t i) { one[i] = 1; }, opts);
        EXPECT_EQ(one[0], 1);
        // Fewer items than threads.
        std::vector<int> few(3, 0);
        parallelFor(3, [&](std::size_t i) { few[i] = 1; }, opts);
        EXPECT_EQ(std::accumulate(few.begin(), few.end(), 0), 3);
    }
}

TEST(ParallelFor, ChunksPartitionTheIndexSpace)
{
    for (int threads : {1, 2, 5, 16}) {
        for (std::size_t n : {1U, 2U, 7U, 64U, 1000U}) {
            std::vector<std::atomic<int>> visits(n);
            parallelForChunks(
                n,
                [&](std::size_t begin, std::size_t end) {
                    ASSERT_LE(begin, end);
                    ASSERT_LE(end, n);
                    for (std::size_t i = begin; i < end; ++i) {
                        visits[i].fetch_add(1);
                    }
                },
                {threads, 1});
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(visits[i].load(), 1)
                    << "n=" << n << " threads=" << threads << " i=" << i;
            }
        }
    }
}

TEST(ParallelFor, GrainCoarsensButStillCoversEverything)
{
    std::vector<std::atomic<int>> visits(100);
    parallelFor(
        100, [&](std::size_t i) { visits[i].fetch_add(1); }, {8, 40});
    for (std::size_t i = 0; i < 100; ++i) {
        ASSERT_EQ(visits[i].load(), 1);
    }
}

TEST(ParallelMapReduce, OrderedReductionIsThreadCountInvariant)
{
    // String concatenation is non-commutative and non-associative-ish
    // enough to expose any reduction-order dependence.
    auto digits = [](std::size_t n, int threads) {
        return parallelMapReduce<std::string>(
            n, std::string(),
            [](std::size_t i) { return std::to_string(i) + ","; },
            [](std::string &acc, std::string &&part) { acc += part; },
            {threads, 1});
    };
    const std::string serial = digits(37, 1);
    for (int threads : {2, 3, 7, 16}) {
        EXPECT_EQ(digits(37, threads), serial) << threads << " threads";
    }
}

TEST(ParallelMapReduce, FloatingPointSumIsBitIdentical)
{
    // Summation order is fixed by the ordered reduction, so the result
    // is bit-identical across thread counts even though floating-point
    // addition is not associative.
    auto sum = [](int threads) {
        return parallelMapReduce<double>(
            10000, 0.0,
            [](std::size_t i) {
                return 1.0 / (1.0 + static_cast<double>(i) * 0.37);
            },
            [](double &acc, double part) { acc += part; }, {threads, 1});
    };
    const double serial = sum(1);
    for (int threads : {2, 7}) {
        const double parallel = sum(threads);
        EXPECT_EQ(parallel, serial) << "bitwise mismatch at " << threads
                                    << " threads";
    }
}

TEST(GlobalThreads, OverrideAndRestore)
{
    const int before = globalThreadCount();
    setGlobalThreads(5);
    EXPECT_EQ(globalThreadCount(), 5);
    setGlobalThreads(0);
    EXPECT_EQ(globalThreadCount(), before);
}

TEST(ParallelFor, NestedBatchesDoNotDeadlock)
{
    std::atomic<int> inner_runs{0};
    parallelFor(
        4,
        [&](std::size_t) {
            parallelFor(
                8, [&](std::size_t) { inner_runs.fetch_add(1); },
                {4, 1});
        },
        {4, 1});
    EXPECT_EQ(inner_runs.load(), 32);
}

} // namespace
} // namespace kodan::util
