/** @file Unit tests for summary statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace kodan::util {
namespace {

TEST(SummaryStats, EmptyDefaults)
{
    SummaryStats stats;
    EXPECT_EQ(stats.count(), 0U);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_TRUE(std::isinf(stats.min()));
    EXPECT_TRUE(std::isinf(stats.max()));
}

TEST(SummaryStats, SingleValue)
{
    SummaryStats stats;
    stats.add(4.5);
    EXPECT_EQ(stats.count(), 1U);
    EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 4.5);
    EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(SummaryStats, KnownMoments)
{
    SummaryStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(x);
    }
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(SummaryStats, MergeEqualsSequential)
{
    SummaryStats all;
    SummaryStats left;
    SummaryStats right;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.3 * i * i - 2.0 * i;
        all.add(x);
        (i < 25 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty)
{
    SummaryStats a;
    a.add(1.0);
    a.add(3.0);
    SummaryStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2U);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    SummaryStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2U);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Endpoints)
{
    std::vector<double> v = {5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, SingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 37.0), 42.0);
}

TEST(RelativeImprovement, Basics)
{
    EXPECT_DOUBLE_EQ(relativeImprovement(1.5, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(relativeImprovement(0.5, 1.0), -0.5);
}

TEST(Clamp, Basics)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.25, 0.0, 1.0), 0.25);
}

} // namespace
} // namespace kodan::util
