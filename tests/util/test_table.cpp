/** @file Unit tests for table/CSV output. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace kodan::util {
namespace {

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "2"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2U);
}

TEST(TablePrinter, FormatsDoubles)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmt(1.0, 0), "1");
    EXPECT_EQ(TablePrinter::fmt(static_cast<long long>(42)), "42");
}

TEST(CsvWriter, PlainRow)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow({"a", "b", "c"});
    EXPECT_EQ(oss.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow({"has,comma", "has\"quote", "plain"});
    EXPECT_EQ(oss.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvWriter, QuotesNewline)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow({"line1\nline2"});
    EXPECT_EQ(oss.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, EmptyCells)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow({"", "x", ""});
    EXPECT_EQ(oss.str(), ",x,\n");
}

} // namespace
} // namespace kodan::util
