/** @file Unit tests for the noise fields. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/noise.hpp"
#include "util/units.hpp"

namespace kodan::util {
namespace {

TEST(ValueNoise, Deterministic)
{
    ValueNoise a(99);
    ValueNoise b(99);
    EXPECT_DOUBLE_EQ(a.at(1.5, 2.5, 0.5), b.at(1.5, 2.5, 0.5));
}

TEST(ValueNoise, SeedChangesField)
{
    ValueNoise a(1);
    ValueNoise b(2);
    EXPECT_NE(a.at(1.5, 2.5), b.at(1.5, 2.5));
}

TEST(ValueNoise, StaysInUnitInterval)
{
    ValueNoise noise(3);
    for (double x = -5.0; x < 5.0; x += 0.37) {
        for (double y = -5.0; y < 5.0; y += 0.41) {
            const double v = noise.at(x, y, 0.1 * x);
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
        }
    }
}

TEST(ValueNoise, IsContinuous)
{
    ValueNoise noise(4);
    const double eps = 1.0e-4;
    for (double x = 0.0; x < 3.0; x += 0.21) {
        const double v0 = noise.at(x, 1.3);
        const double v1 = noise.at(x + eps, 1.3);
        ASSERT_NEAR(v0, v1, 1.0e-2);
    }
}

TEST(ValueNoise, InterpolatesLatticeValues)
{
    ValueNoise noise(5);
    // At integer lattice points the value equals the cell hash.
    EXPECT_NEAR(noise.at(2.0, 3.0, 4.0), noise.cellValue(2, 3, 4), 1e-12);
}

TEST(ValueNoise, VariesAcrossSpace)
{
    ValueNoise noise(6);
    double min_v = 1.0;
    double max_v = 0.0;
    for (double x = 0.0; x < 20.0; x += 0.5) {
        const double v = noise.at(x, 0.7 * x);
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    EXPECT_GT(max_v - min_v, 0.3);
}

TEST(FbmNoise, StaysInUnitInterval)
{
    FbmNoise fbm(7, 5);
    for (double x = -3.0; x < 3.0; x += 0.29) {
        const double v = fbm.at(x, -x, 0.0);
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1.0);
    }
}

TEST(FbmNoise, MoreOctavesAddDetail)
{
    FbmNoise coarse(8, 1);
    FbmNoise fine(8, 6);
    // Fine field must differ from the single-octave base field.
    double diff = 0.0;
    for (double x = 0.0; x < 5.0; x += 0.11) {
        diff += std::fabs(coarse.at(x, 1.0) - fine.at(x, 1.0));
    }
    EXPECT_GT(diff, 0.1);
}

TEST(SphericalFbm, ContinuousAcrossAntimeridian)
{
    SphericalFbm field(9, 4, 10.0);
    const double lat = degToRad(25.0);
    const double west = field.at(lat, degToRad(179.999));
    const double east = field.at(lat, degToRad(-179.999));
    EXPECT_NEAR(west, east, 1.0e-3);
}

TEST(SphericalFbm, WellDefinedAtPoles)
{
    SphericalFbm field(10, 4, 10.0);
    const double north1 = field.at(degToRad(89.9999), 0.0);
    const double north2 = field.at(degToRad(89.9999), degToRad(120.0));
    EXPECT_NEAR(north1, north2, 1.0e-2);
}

TEST(SphericalFbm, TimeEvolvesField)
{
    SphericalFbm field(11, 4, 10.0);
    const double now = field.at(0.3, 0.4, 0.0);
    const double later = field.at(0.3, 0.4, 5.0);
    EXPECT_NE(now, later);
}

TEST(SphericalFbm, FrequencyControlsFeatureScale)
{
    // Higher frequency -> nearby points decorrelate faster.
    SphericalFbm low(12, 4, 2.0);
    SphericalFbm high(12, 4, 200.0);
    const double d = 0.01;
    const double low_delta = std::fabs(low.at(0.5, 0.5) - low.at(0.5 + d, 0.5));
    double high_delta = 0.0;
    for (int i = 0; i < 20; ++i) {
        high_delta = std::max(
            high_delta, std::fabs(high.at(0.5 + i * d, 0.5) -
                                  high.at(0.5 + (i + 1) * d, 0.5)));
    }
    EXPECT_GT(high_delta, low_delta);
}

} // namespace
} // namespace kodan::util
