/** @file Unit tests for the minimal in-tree JSON reader. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/json.hpp"

namespace kodan::util::json {
namespace {

TEST(Json, ParsesScalars)
{
    Value v;
    ASSERT_TRUE(parse("42", v));
    EXPECT_TRUE(v.isNumber());
    EXPECT_EQ(v.asNumber(), 42.0);

    ASSERT_TRUE(parse("-1.5e3", v));
    EXPECT_EQ(v.asNumber(), -1500.0);

    ASSERT_TRUE(parse("true", v));
    EXPECT_TRUE(v.isBool());
    EXPECT_TRUE(v.asBool());

    ASSERT_TRUE(parse("false", v));
    EXPECT_FALSE(v.asBool());

    ASSERT_TRUE(parse("null", v));
    EXPECT_TRUE(v.isNull());

    ASSERT_TRUE(parse("\"hi\"", v));
    EXPECT_TRUE(v.isString());
    EXPECT_EQ(v.asString(), "hi");
}

TEST(Json, ParsesStringEscapes)
{
    Value v;
    ASSERT_TRUE(parse(R"("a\"b\\c\nd\teA")", v));
    EXPECT_EQ(v.asString(), "a\"b\\c\nd\teA");
}

TEST(Json, ParsesNestedStructures)
{
    Value v;
    const std::string text =
        R"({"name": "x", "vals": [1, 2, 3], "nested": {"ok": true}})";
    ASSERT_TRUE(parse(text, v));
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.stringOr("name", ""), "x");
    const Value *vals = v.find("vals");
    ASSERT_NE(vals, nullptr);
    ASSERT_TRUE(vals->isArray());
    ASSERT_EQ(vals->array().size(), 3u);
    EXPECT_EQ(vals->array()[1].asNumber(), 2.0);
    const Value *nested = v.find("nested");
    ASSERT_NE(nested, nullptr);
    EXPECT_TRUE(nested->find("ok")->asBool());
    EXPECT_EQ(v.find("absent"), nullptr);
    EXPECT_EQ(v.numberOr("absent", -1.0), -1.0);
}

TEST(Json, MembersPreserveDocumentOrder)
{
    Value v;
    ASSERT_TRUE(parse(R"({"z": 1, "a": 2, "m": 3})", v));
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, RejectsMalformedInput)
{
    Value v;
    std::string error;
    EXPECT_FALSE(parse("", v, &error));
    EXPECT_FALSE(parse("{", v, &error));
    EXPECT_FALSE(parse("[1, 2", v, &error));
    EXPECT_FALSE(parse("{\"a\" 1}", v, &error));
    EXPECT_FALSE(parse("\"unterminated", v, &error));
    EXPECT_FALSE(parse("nul", v, &error));
    EXPECT_FALSE(parse("1 2", v, &error)); // trailing garbage
    EXPECT_FALSE(error.empty());
}

TEST(Json, RoundTripsSeventeenDigitDoubles)
{
    Value v;
    ASSERT_TRUE(parse("0.29522497704316658", v));
    EXPECT_EQ(v.asNumber(), 0.29522497704316658);
}

TEST(Json, ParseLinesSkipsBlanksAndReportsBadLine)
{
    std::vector<Value> lines;
    std::string error;
    ASSERT_TRUE(parseLines("{\"a\": 1}\n\n{\"b\": 2}\n", lines, &error));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].numberOr("a", 0.0), 1.0);
    EXPECT_EQ(lines[1].numberOr("b", 0.0), 2.0);

    lines.clear();
    EXPECT_FALSE(parseLines("{\"a\": 1}\nnot json\n", lines, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

} // namespace
} // namespace kodan::util::json
