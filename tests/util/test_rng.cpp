/** @file Unit tests for kodan::util::Rng. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace kodan::util {
namespace {

TEST(SplitMix64, IsDeterministic)
{
    EXPECT_EQ(splitMix64(42), splitMix64(42));
    EXPECT_NE(splitMix64(42), splitMix64(43));
}

TEST(SplitMix64, MixesNearbyInputs)
{
    // Adjacent inputs should differ in roughly half their bits.
    const std::uint64_t a = splitMix64(1000);
    const std::uint64_t b = splitMix64(1001);
    const int popcount = __builtin_popcountll(a ^ b);
    EXPECT_GT(popcount, 16);
    EXPECT_LT(popcount, 48);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.nextU64(), b.nextU64());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7);
    Rng b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64()) {
            ++equal;
        }
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng rng(0);
    std::set<std::uint64_t> values;
    for (int i = 0; i < 32; ++i) {
        values.insert(rng.nextU64());
    }
    EXPECT_GT(values.size(), 30U);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4U);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(4);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rng.uniformInt(9, 9), 9);
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(5);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(6);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += rng.normal(10.0, 2.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(7);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(9);
    std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.weightedIndex(weights)];
    }
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(10);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100U);
    EXPECT_EQ(*seen.begin(), 0U);
    EXPECT_EQ(*seen.rbegin(), 99U);
}

TEST(Rng, PermutationOfZeroAndOne)
{
    Rng rng(11);
    EXPECT_TRUE(rng.permutation(0).empty());
    const auto one = rng.permutation(1);
    ASSERT_EQ(one.size(), 1U);
    EXPECT_EQ(one[0], 0U);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(12);
    const auto perm = rng.permutation(50);
    std::size_t fixed = 0;
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] == i) {
            ++fixed;
        }
    }
    EXPECT_LT(fixed, 10U); // identity would have 50 fixed points
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng parent(13);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64()) {
            ++equal;
        }
    }
    EXPECT_EQ(equal, 0);
}

} // namespace
} // namespace kodan::util
