/**
 * @file
 * Equivalence suite for the ML kernel layer: every Blocked kernel must
 * produce BIT-IDENTICAL results to the Naive oracle it replaced, at any
 * KODAN_THREADS and for any batch composition. Doubles are compared
 * with exact equality on purpose — the kernels' fixed summation order
 * makes that a hard guarantee, and anything weaker would let a silent
 * reassociation invalidate the committed telemetry baselines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/kmeans.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/transforms.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace kodan::ml {
namespace {

/** Thread counts exercised for every backend comparison (satellite 3). */
const std::vector<int> kThreadCounts = {1, 4, 16};

/** Restores the global thread default when a test exits. */
class ThreadGuard
{
  public:
    ~ThreadGuard() { util::setGlobalThreads(0); }
};

/** Forces a backend for a scope and restores the previous one. */
class BackendGuard
{
  public:
    explicit BackendGuard(kernels::Backend b) : saved_(kernels::backend())
    {
        kernels::setBackend(b);
    }
    ~BackendGuard() { kernels::setBackend(saved_); }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;

  private:
    kernels::Backend saved_;
};

Matrix
randomMatrix(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    Matrix m(rows, cols);
    for (double &v : m.data()) {
        v = rng.uniform(-2.0, 2.0);
    }
    return m;
}

void
expectSameMatrix(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
    }
}

// ---------------------------------------------------------------------
// Scratch arena semantics.

TEST(Scratch, FrameRestoresPosition)
{
    kernels::Scratch arena;
    double *first = nullptr;
    {
        kernels::Scratch::Frame frame(arena);
        first = arena.alloc(100);
        first[0] = 1.0;
        first[99] = 2.0;
    }
    // After the frame unwinds, the same storage is handed out again.
    kernels::Scratch::Frame frame(arena);
    double *second = arena.alloc(100);
    EXPECT_EQ(first, second);
}

TEST(Scratch, FramesNest)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame outer(arena);
    double *a = arena.alloc(10);
    {
        kernels::Scratch::Frame inner(arena);
        double *b = arena.alloc(10);
        EXPECT_NE(a, b);
        b[0] = 7.0;
    }
    double *c = arena.alloc(10);
    // The inner frame's allocation was released; the outer one was not.
    EXPECT_NE(a, c);
    kernels::Scratch::Frame probe(arena);
    (void)probe;
}

TEST(Scratch, GrowsBeyondOneChunkAndZeroes)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame frame(arena);
    // Larger than the minimum chunk (1 << 14 doubles) forces growth.
    const std::size_t big = (std::size_t{1} << 15) + 3;
    double *buf = arena.allocZeroed(big);
    for (std::size_t i = 0; i < big; ++i) {
        ASSERT_EQ(buf[i], 0.0);
    }
    double *more = arena.alloc(std::size_t{1} << 14);
    EXPECT_NE(buf, more);
    EXPECT_GE(arena.chunkCount(), 1U);
}

TEST(Scratch, ZeroCountAllocationIsSafe)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame frame(arena);
    (void)arena.alloc(0);
    (void)arena.allocZeroed(0);
}

// ---------------------------------------------------------------------
// Raw kernels vs scalar reference loops.

TEST(Kernels, GemmMatchesScalarReference)
{
    util::Rng rng(41);
    // Shapes straddle the blocking factors (kBlockK = 64, kBlockJ = 512)
    // and the 4x unroll remainder.
    const struct
    {
        std::size_t m, k, n;
    } shapes[] = {{1, 1, 1},   {3, 5, 7},    {4, 64, 12},
                  {5, 65, 9},  {2, 130, 70}, {7, 67, 513},
                  {16, 96, 33}};
    for (const auto &s : shapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        std::vector<double> bias(s.n);
        for (double &v : bias) {
            v = rng.uniform(-1.0, 1.0);
        }
        for (int with_bias = 0; with_bias < 2; ++with_bias) {
            Matrix c(s.m, s.n);
            kernels::gemm(s.m, s.k, s.n, a.data().data(), b.data().data(),
                          c.data().data(),
                          with_bias ? bias.data() : nullptr);
            for (std::size_t i = 0; i < s.m; ++i) {
                for (std::size_t j = 0; j < s.n; ++j) {
                    double z = with_bias ? bias[j] : 0.0;
                    for (std::size_t p = 0; p < s.k; ++p) {
                        z += a.at(i, p) * b.at(p, j);
                    }
                    ASSERT_EQ(c.at(i, j), z)
                        << s.m << "x" << s.k << "x" << s.n << " at ("
                        << i << "," << j << ") bias=" << with_bias;
                }
            }
        }
    }
}

TEST(Kernels, GemmReluEpilogueMatchesSeparatePass)
{
    util::Rng rng(47);
    // k values cover the fused path (k % 4 == 0, incl. k == 4 where the
    // seed step is also the last), the unfused fallback (k % 4 != 0),
    // the scalar p-remainder seeding (k < 4), and the degenerate k == 0
    // bias-broadcast; odd m exercises the single-row remainder.
    const struct
    {
        std::size_t m, k, n;
    } shapes[] = {{6, 0, 5},  {5, 1, 9},   {4, 3, 7},  {3, 4, 6},
                  {7, 20, 64}, {5, 65, 33}, {2, 128, 8}};
    for (const auto &s : shapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        std::vector<double> bias(s.n);
        for (double &v : bias) {
            v = rng.uniform(-1.0, 1.0);
        }
        for (int with_bias = 0; with_bias < 2; ++with_bias) {
            const double *bias_ptr = with_bias ? bias.data() : nullptr;
            Matrix plain(s.m, s.n);
            kernels::gemm(s.m, s.k, s.n, a.data().data(),
                          b.data().data(), plain.data().data(), bias_ptr);
            for (double &v : plain.data()) {
                v = std::max(0.0, v);
            }
            Matrix fused(s.m, s.n);
            kernels::gemm(s.m, s.k, s.n, a.data().data(),
                          b.data().data(), fused.data().data(), bias_ptr,
                          kernels::Epilogue::Relu);
            expectSameMatrix(plain, fused);
        }
    }
}

TEST(Kernels, GemvMatchesScalarReference)
{
    util::Rng rng(42);
    for (std::size_t cols : {1U, 3U, 4U, 5U, 64U, 67U, 130U}) {
        const std::size_t rows = 9;
        const Matrix w = randomMatrix(rows, cols, rng);
        std::vector<double> x(cols), bias(rows), y(rows);
        for (double &v : x) {
            v = rng.uniform(-1.0, 1.0);
        }
        for (double &v : bias) {
            v = rng.uniform(-1.0, 1.0);
        }
        kernels::gemv(rows, cols, w.data().data(), x.data(), bias.data(),
                      y.data());
        for (std::size_t i = 0; i < rows; ++i) {
            double z = bias[i];
            for (std::size_t p = 0; p < cols; ++p) {
                z += w.at(i, p) * x[p];
            }
            ASSERT_EQ(y[i], z) << "cols=" << cols << " row " << i;
        }
    }
}

TEST(Kernels, TransposeRoundTrips)
{
    util::Rng rng(43);
    const Matrix a = randomMatrix(5, 9, rng);
    std::vector<double> t(9 * 5), back(5 * 9);
    kernels::transpose(5, 9, a.data().data(), t.data());
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 9; ++j) {
            EXPECT_EQ(t[j * 5 + i], a.at(i, j));
        }
    }
    kernels::transpose(9, 5, t.data(), back.data());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i], a.data()[i]);
    }
}

TEST(Kernels, RowSquaredNormsMatchesScalarReference)
{
    util::Rng rng(44);
    const Matrix x = randomMatrix(7, 13, rng);
    std::vector<double> norms(7);
    kernels::rowSquaredNorms(7, 13, x.data().data(), norms.data());
    for (std::size_t i = 0; i < 7; ++i) {
        double z = 0.0;
        for (std::size_t d = 0; d < 13; ++d) {
            z += x.at(i, d) * x.at(i, d);
        }
        EXPECT_EQ(norms[i], z);
    }
}

// ---------------------------------------------------------------------
// Matrix::multiply: Blocked vs Naive, including degenerate shapes
// (satellite: edge shapes around the inner-dimension contract).

TEST(Kernels, MatrixMultiplyBackendsAgree)
{
    util::Rng rng(45);
    const struct
    {
        std::size_t m, k, n;
    } shapes[] = {{1, 1, 1}, {6, 70, 5}, {3, 64, 512}, {10, 3, 130}};
    for (const auto &s : shapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        Matrix naive, blocked;
        {
            BackendGuard guard(kernels::Backend::Naive);
            naive = Matrix::multiply(a, b);
        }
        {
            BackendGuard guard(kernels::Backend::Blocked);
            blocked = Matrix::multiply(a, b);
        }
        expectSameMatrix(naive, blocked);
    }
}

TEST(Kernels, MatrixMultiplyZeroSkipIsBitNeutral)
{
    // The Naive loop skips a[i][k] == 0.0 terms; the Blocked GEMM adds
    // them. Adding 0.0 * b = +/-0.0 to a finite accumulator is a bitwise
    // no-op (an accumulator seeded +0.0 can never become -0.0), so a
    // zero-heavy matrix must still agree exactly.
    util::Rng rng(46);
    Matrix a = randomMatrix(8, 40, rng);
    for (std::size_t i = 0; i < a.data().size(); i += 3) {
        a.data()[i] = 0.0;
    }
    const Matrix b = randomMatrix(40, 17, rng);
    Matrix naive, blocked;
    {
        BackendGuard guard(kernels::Backend::Naive);
        naive = Matrix::multiply(a, b);
    }
    {
        BackendGuard guard(kernels::Backend::Blocked);
        blocked = Matrix::multiply(a, b);
    }
    expectSameMatrix(naive, blocked);
}

TEST(Kernels, MatrixMultiplyDegenerateShapes)
{
    util::Rng rng(47);
    for (auto backend :
         {kernels::Backend::Naive, kernels::Backend::Blocked}) {
        BackendGuard guard(backend);
        {
            // 0-row left operand: empty result with the right shape.
            const Matrix a(0, 4);
            const Matrix b = randomMatrix(4, 3, rng);
            const Matrix c = Matrix::multiply(a, b);
            EXPECT_EQ(c.rows(), 0U);
            EXPECT_EQ(c.cols(), 3U);
        }
        {
            // 0-col right operand: rows of zero width.
            const Matrix a = randomMatrix(3, 4, rng);
            const Matrix b(4, 0);
            const Matrix c = Matrix::multiply(a, b);
            EXPECT_EQ(c.rows(), 3U);
            EXPECT_EQ(c.cols(), 0U);
        }
        {
            // 0-length inner dimension: all-zero result.
            const Matrix a(3, 0);
            const Matrix b(0, 5);
            const Matrix c = Matrix::multiply(a, b);
            ASSERT_EQ(c.rows(), 3U);
            ASSERT_EQ(c.cols(), 5U);
            for (double v : c.data()) {
                EXPECT_EQ(v, 0.0);
            }
        }
    }
}

#ifndef NDEBUG
TEST(KernelsDeathTest, MatrixMultiplyInnerDimensionMismatchAsserts)
{
    const Matrix a(2, 3);
    const Matrix b(4, 2);
    EXPECT_DEATH((void)Matrix::multiply(a, b),
                 "inner dimensions must match");
}
#endif

// ---------------------------------------------------------------------
// MLP inference: batched forward vs the per-sample oracle.

MlpConfig
sigmoidConfig()
{
    MlpConfig config;
    config.input_dim = 12;
    config.hidden = {16, 8};
    config.output_dim = 1;
    config.output = OutputKind::Sigmoid;
    return config;
}

MlpConfig
softmaxConfig()
{
    MlpConfig config;
    config.input_dim = 10;
    config.hidden = {14};
    config.output_dim = 5;
    config.output = OutputKind::Softmax;
    return config;
}

void
expectForwardBatchMatchesOracle(const MlpConfig &config)
{
    util::Rng init_rng(48);
    const Mlp net(config, init_rng);
    util::Rng data_rng(49);
    const Matrix x = randomMatrix(
        37, static_cast<std::size_t>(config.input_dim), data_rng);

    // Oracle: per-sample Naive forward.
    Matrix expected(x.rows(),
                    static_cast<std::size_t>(config.output_dim));
    {
        BackendGuard guard(kernels::Backend::Naive);
        for (std::size_t i = 0; i < x.rows(); ++i) {
            net.forward(x.row(i), expected.row(i));
        }
    }

    ThreadGuard thread_guard;
    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        for (auto backend :
             {kernels::Backend::Naive, kernels::Backend::Blocked}) {
            BackendGuard guard(backend);
            // Single-sample forward agrees.
            std::vector<double> out(
                static_cast<std::size_t>(config.output_dim));
            for (std::size_t i = 0; i < x.rows(); ++i) {
                net.forward(x.row(i), out.data());
                for (std::size_t j = 0; j < out.size(); ++j) {
                    ASSERT_EQ(out[j], expected.at(i, j))
                        << "forward sample " << i << " threads="
                        << threads;
                }
            }
            // Whole-batch forward agrees.
            Matrix batched;
            net.forwardBatch(x, batched);
            expectSameMatrix(expected, batched);
            // Batch composition is irrelevant: splitting the batch at an
            // arbitrary point yields the same bits (invariance demanded
            // by the acceptance criteria).
            for (std::size_t split : {std::size_t{1}, std::size_t{13}}) {
                Matrix pieces(x.rows(), batched.cols());
                net.forwardBatch(x.row(0), split, pieces.row(0));
                net.forwardBatch(x.row(split), x.rows() - split,
                                 pieces.row(split));
                expectSameMatrix(expected, pieces);
            }
        }
    }
}

TEST(MlpKernels, ForwardBatchSigmoidMatchesOracle)
{
    expectForwardBatchMatchesOracle(sigmoidConfig());
}

TEST(MlpKernels, ForwardBatchSoftmaxMatchesOracle)
{
    expectForwardBatchMatchesOracle(softmaxConfig());
}

TEST(MlpKernels, PredictHelpersAgreeAcrossBackends)
{
    util::Rng init_rng(50);
    const Mlp binary(sigmoidConfig(), init_rng);
    const Mlp multi(softmaxConfig(), init_rng);
    util::Rng data_rng(51);
    const Matrix xb = randomMatrix(11, 12, data_rng);
    const Matrix xm = randomMatrix(11, 10, data_rng);
    for (std::size_t i = 0; i < xb.rows(); ++i) {
        double p_naive = 0.0, p_blocked = 0.0;
        int c_naive = 0, c_blocked = 0;
        {
            BackendGuard guard(kernels::Backend::Naive);
            p_naive = binary.predictProb(xb.row(i));
            c_naive = multi.predictClass(xm.row(i));
        }
        {
            BackendGuard guard(kernels::Backend::Blocked);
            p_blocked = binary.predictProb(xb.row(i));
            c_blocked = multi.predictClass(xm.row(i));
        }
        EXPECT_EQ(p_naive, p_blocked) << "sample " << i;
        EXPECT_EQ(c_naive, c_blocked) << "sample " << i;
    }
}

TEST(MlpKernels, ForwardBatchZeroSamplesIsSafe)
{
    util::Rng rng(52);
    const Mlp net(sigmoidConfig(), rng);
    for (auto backend :
         {kernels::Backend::Naive, kernels::Backend::Blocked}) {
        BackendGuard guard(backend);
        net.forwardBatch(nullptr, 0, nullptr);
        const Matrix empty(0, 12);
        Matrix out;
        net.forwardBatch(empty, out);
        EXPECT_EQ(out.rows(), 0U);
        EXPECT_EQ(out.cols(), 1U);
    }
}

// ---------------------------------------------------------------------
// MLP training: GEMM-batched backprop vs the per-sample oracle. The
// serialized network (all weights, biases, Adam state excluded) must be
// byte-identical after identical training runs.

std::string
serialize(const Mlp &net)
{
    std::ostringstream os;
    net.save(os);
    return os.str();
}

void
expectTrainingMatchesOracle(const MlpConfig &config, bool soft_targets)
{
    util::Rng data_rng(53);
    const Matrix x = randomMatrix(
        150, static_cast<std::size_t>(config.input_dim), data_rng);
    std::vector<double> y(x.rows());
    for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] = soft_targets
                   ? data_rng.uniform()
                   : static_cast<double>(data_rng.uniformInt(
                         0, config.output_dim - 1));
    }
    TrainOptions options;
    options.epochs = 3;
    options.batch_size = 32; // 150 % 32 != 0: exercises the tail batch

    double loss_naive = 0.0;
    std::string bits_naive;
    {
        BackendGuard guard(kernels::Backend::Naive);
        util::Rng init_rng(54), train_rng(55);
        Mlp net(config, init_rng);
        loss_naive = net.train(x, y, options, train_rng);
        bits_naive = serialize(net);
    }

    ThreadGuard thread_guard;
    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        BackendGuard guard(kernels::Backend::Blocked);
        util::Rng init_rng(54), train_rng(55);
        Mlp net(config, init_rng);
        const double loss_blocked = net.train(x, y, options, train_rng);
        EXPECT_EQ(loss_naive, loss_blocked) << "threads=" << threads;
        EXPECT_EQ(bits_naive, serialize(net)) << "threads=" << threads;
    }
}

TEST(MlpKernels, TrainSigmoidMatchesOracle)
{
    expectTrainingMatchesOracle(sigmoidConfig(), true);
}

TEST(MlpKernels, TrainSoftmaxMatchesOracle)
{
    expectTrainingMatchesOracle(softmaxConfig(), false);
}

TEST(MlpKernels, SaveLoadRoundTripsAcrossBackends)
{
    util::Rng init_rng(56), data_rng(57);
    Mlp net(sigmoidConfig(), init_rng);
    const Matrix x = randomMatrix(40, 12, data_rng);
    std::vector<double> y(x.rows(), 0.5);
    util::Rng train_rng(58);
    net.train(x, y, TrainOptions{}, train_rng);

    std::istringstream is(serialize(net));
    const Mlp loaded = Mlp::load(is);
    // The loaded network must serve the Blocked path (weights_t rebuilt
    // on load) with the same bits as the original.
    const Matrix probe = randomMatrix(9, 12, data_rng);
    Matrix a, b;
    net.forwardBatch(probe, a);
    loaded.forwardBatch(probe, b);
    expectSameMatrix(a, b);
}

// ---------------------------------------------------------------------
// K-means: norm-expansion Lloyd vs the per-point oracle, all metrics.

Matrix
clusteredData(util::Rng &rng, std::size_t per_cluster = 40,
              std::size_t dim = 16)
{
    // Three loose blobs plus uniform noise — enough structure for k-means
    // to be meaningful, enough overlap to exercise tie-ish distances.
    Matrix x(3 * per_cluster, dim);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const double center = static_cast<double>(i / per_cluster) - 1.0;
        for (std::size_t d = 0; d < dim; ++d) {
            x.at(i, d) = center + rng.normal(0.0, 0.45);
        }
    }
    return x;
}

void
expectKMeansMatchesOracle(Distance metric)
{
    util::Rng data_rng(59);
    const Matrix x = clusteredData(data_rng);
    const KMeans km(3, metric, 32, 2);

    KMeansResult naive;
    {
        BackendGuard guard(kernels::Backend::Naive);
        util::Rng rng(60);
        naive = km.fit(x, rng);
    }

    ThreadGuard thread_guard;
    for (int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        BackendGuard guard(kernels::Backend::Blocked);
        util::Rng rng(60);
        const KMeansResult blocked = km.fit(x, rng);
        EXPECT_EQ(naive.assignment, blocked.assignment)
            << distanceName(metric) << " threads=" << threads;
        EXPECT_EQ(naive.inertia, blocked.inertia)
            << distanceName(metric) << " threads=" << threads;
        expectSameMatrix(naive.centroids, blocked.centroids);
        // nearest() agrees with the fit's own assignment of every point.
        for (std::size_t i = 0; i < x.rows(); ++i) {
            ASSERT_EQ(blocked.nearest(x.row(i)), naive.assignment[i])
                << distanceName(metric) << " point " << i;
        }
    }
}

TEST(KMeansKernels, EuclideanMatchesOracle)
{
    expectKMeansMatchesOracle(Distance::Euclidean);
}

TEST(KMeansKernels, HammingMatchesOracle)
{
    expectKMeansMatchesOracle(Distance::Hamming);
}

TEST(KMeansKernels, CosineMatchesOracle)
{
    expectKMeansMatchesOracle(Distance::Cosine);
}

TEST(KMeansKernels, NearestSquaredDistanceSkipsSqrt)
{
    // satellite 1: the squared-distance argmin must pick the same
    // centroid (first-of-ties) as the sqrt'd distance comparison.
    util::Rng rng(61);
    KMeansResult result;
    result.k = 4;
    result.metric = Distance::Euclidean;
    result.centroids = randomMatrix(4, 8, rng);
    for (int probe = 0; probe < 200; ++probe) {
        std::vector<double> x(8);
        for (double &v : x) {
            v = rng.uniform(-2.0, 2.0);
        }
        int best = 0;
        double best_d = 0.0;
        for (int c = 0; c < 4; ++c) {
            const double d =
                KMeans::distance(x.data(), result.centroids.row(c), 8,
                                 Distance::Euclidean);
            if (c == 0 || d < best_d) {
                best_d = d;
                best = c;
            }
        }
        ASSERT_EQ(result.nearest(x.data()), best) << "probe " << probe;
    }
}

// ---------------------------------------------------------------------
// Transforms: batched standardize/project vs per-row oracle loops.

TEST(TransformKernels, StandardizerBackendsAgree)
{
    util::Rng rng(62);
    const Matrix train = randomMatrix(60, 14, rng);
    Standardizer scaler;
    scaler.fit(train);
    const Matrix probe = randomMatrix(25, 14, rng);
    Matrix naive, blocked;
    {
        BackendGuard guard(kernels::Backend::Naive);
        naive = scaler.transform(probe);
    }
    {
        BackendGuard guard(kernels::Backend::Blocked);
        blocked = scaler.transform(probe);
    }
    expectSameMatrix(naive, blocked);
    // Both agree with the in-place row transform.
    for (std::size_t i = 0; i < probe.rows(); ++i) {
        std::vector<double> row(probe.row(i), probe.row(i) + 14);
        scaler.transformRow(row.data());
        for (std::size_t d = 0; d < 14; ++d) {
            EXPECT_EQ(row[d], naive.at(i, d));
        }
    }
}

TEST(TransformKernels, PcaBackendsAgree)
{
    util::Rng rng(63);
    const Matrix train = randomMatrix(80, 12, rng);
    Pca pca;
    pca.fit(train, 5);
    const Matrix probe = randomMatrix(30, 12, rng);
    Matrix naive, blocked;
    {
        BackendGuard guard(kernels::Backend::Naive);
        naive = pca.transform(probe);
    }
    {
        BackendGuard guard(kernels::Backend::Blocked);
        blocked = pca.transform(probe);
    }
    expectSameMatrix(naive, blocked);
}

} // namespace
} // namespace kodan::ml
