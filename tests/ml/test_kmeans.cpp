/** @file Unit tests for k-means clustering. */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "ml/kmeans.hpp"

namespace kodan::ml {
namespace {

/** Three well-separated 2-D blobs, 60 points each. */
Matrix
blobs(util::Rng &rng)
{
    const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    Matrix x(180, 2);
    for (int i = 0; i < 180; ++i) {
        const int cls = i / 60;
        x.at(i, 0) = centers[cls][0] + rng.normal(0.0, 0.5);
        x.at(i, 1) = centers[cls][1] + rng.normal(0.0, 0.5);
    }
    return x;
}

TEST(KMeans, RecoversSeparatedBlobs)
{
    util::Rng rng(1);
    const Matrix x = blobs(rng);
    const KMeans kmeans(3);
    const KMeansResult result = kmeans.fit(x, rng);

    // All points of one blob share an assignment, and the three blobs
    // get three distinct clusters.
    std::set<int> blob_clusters;
    for (int blob = 0; blob < 3; ++blob) {
        const int expected = result.assignment[blob * 60];
        for (int i = 0; i < 60; ++i) {
            ASSERT_EQ(result.assignment[blob * 60 + i], expected);
        }
        blob_clusters.insert(expected);
    }
    EXPECT_EQ(blob_clusters.size(), 3U);
}

TEST(KMeans, CentroidsNearBlobCenters)
{
    util::Rng rng(2);
    const Matrix x = blobs(rng);
    const KMeans kmeans(3);
    const KMeansResult result = kmeans.fit(x, rng);
    int matched = 0;
    const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
    for (int c = 0; c < 3; ++c) {
        for (const auto &center : centers) {
            const double dx = result.centroids.at(c, 0) - center[0];
            const double dy = result.centroids.at(c, 1) - center[1];
            if (std::sqrt(dx * dx + dy * dy) < 0.5) {
                ++matched;
            }
        }
    }
    EXPECT_EQ(matched, 3);
}

TEST(KMeans, NearestIsConsistentWithAssignment)
{
    util::Rng rng(3);
    const Matrix x = blobs(rng);
    const KMeans kmeans(3);
    const KMeansResult result = kmeans.fit(x, rng);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        EXPECT_EQ(result.nearest(x.row(i)), result.assignment[i]);
    }
}

TEST(KMeans, SingleClusterCentroidIsMean)
{
    util::Rng rng(4);
    Matrix x(10, 1);
    double sum = 0.0;
    for (int i = 0; i < 10; ++i) {
        x.at(i, 0) = i;
        sum += i;
    }
    const KMeans kmeans(1);
    const KMeansResult result = kmeans.fit(x, rng);
    EXPECT_NEAR(result.centroids.at(0, 0), sum / 10.0, 1e-9);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters)
{
    util::Rng rng(5);
    const Matrix x = blobs(rng);
    const KMeansResult k2 = KMeans(2).fit(x, rng);
    const KMeansResult k3 = KMeans(3).fit(x, rng);
    EXPECT_LT(k3.inertia, k2.inertia);
}

TEST(Distance, Euclidean)
{
    const double a[2] = {0.0, 0.0};
    const double b[2] = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(KMeans::distance(a, b, 2, Distance::Euclidean), 5.0);
}

TEST(Distance, HammingBinarizes)
{
    const double a[4] = {0.9, 0.1, 0.8, 0.2};
    const double b[4] = {0.7, 0.9, 0.1, 0.1};
    // Binarized: a = 1,0,1,0; b = 1,1,0,0 -> 2 disagreements.
    EXPECT_DOUBLE_EQ(KMeans::distance(a, b, 4, Distance::Hamming), 2.0);
}

TEST(Distance, CosineOfParallelAndOrthogonal)
{
    const double a[2] = {1.0, 0.0};
    const double b[2] = {2.0, 0.0};
    const double c[2] = {0.0, 1.0};
    EXPECT_NEAR(KMeans::distance(a, b, 2, Distance::Cosine), 0.0, 1e-12);
    EXPECT_NEAR(KMeans::distance(a, c, 2, Distance::Cosine), 1.0, 1e-12);
}

TEST(Distance, CosineZeroVectorIsMaximal)
{
    const double a[2] = {0.0, 0.0};
    const double b[2] = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(KMeans::distance(a, b, 2, Distance::Cosine), 1.0);
}

TEST(Silhouette, HighForSeparatedBlobs)
{
    util::Rng rng(6);
    const Matrix x = blobs(rng);
    const KMeansResult result = KMeans(3).fit(x, rng);
    EXPECT_GT(silhouetteScore(x, result), 0.8);
}

TEST(Silhouette, LowerForWrongK)
{
    util::Rng rng(7);
    const Matrix x = blobs(rng);
    const KMeansResult right = KMeans(3).fit(x, rng);
    const KMeansResult wrong = KMeans(6).fit(x, rng);
    EXPECT_GT(silhouetteScore(x, right), silhouetteScore(x, wrong));
}

TEST(Silhouette, DegenerateInputs)
{
    util::Rng rng(8);
    Matrix x(5, 2);
    const KMeansResult one = KMeans(1).fit(x, rng);
    EXPECT_DOUBLE_EQ(silhouetteScore(x, one), 0.0);
}

TEST(KMeans, WorksWithHammingMetric)
{
    util::Rng rng(9);
    // Binary-ish data: two clusters of bit patterns.
    Matrix x(40, 3);
    for (int i = 0; i < 40; ++i) {
        const bool second = i >= 20;
        x.at(i, 0) = second ? 1.0 : 0.0;
        x.at(i, 1) = second ? 1.0 : 0.0;
        x.at(i, 2) = rng.uniform();
    }
    const KMeansResult result = KMeans(2, Distance::Hamming).fit(x, rng);
    EXPECT_NE(result.assignment[0], result.assignment[39]);
    EXPECT_EQ(result.assignment[0], result.assignment[19]);
}

TEST(KMeans, DeterministicGivenRngState)
{
    util::Rng rng_a(10);
    util::Rng rng_b(10);
    const Matrix xa = blobs(rng_a);
    const Matrix xb = blobs(rng_b);
    const KMeansResult ra = KMeans(3).fit(xa, rng_a);
    const KMeansResult rb = KMeans(3).fit(xb, rng_b);
    EXPECT_EQ(ra.assignment, rb.assignment);
}

} // namespace
} // namespace kodan::ml
