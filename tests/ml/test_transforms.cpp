/** @file Unit tests for feature transforms (standardizer, Jacobi, PCA). */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/transforms.hpp"
#include "util/rng.hpp"

namespace kodan::ml {
namespace {

TEST(Standardizer, ZeroMeanUnitVariance)
{
    util::Rng rng(1);
    Matrix x(500, 3);
    for (std::size_t i = 0; i < 500; ++i) {
        x.at(i, 0) = rng.normal(5.0, 2.0);
        x.at(i, 1) = rng.normal(-3.0, 0.5);
        x.at(i, 2) = rng.normal(0.0, 10.0);
    }
    Standardizer scaler;
    scaler.fit(x);
    const Matrix z = scaler.transform(x);
    for (std::size_t d = 0; d < 3; ++d) {
        double mean = 0.0;
        double var = 0.0;
        for (std::size_t i = 0; i < 500; ++i) {
            mean += z.at(i, d);
        }
        mean /= 500.0;
        for (std::size_t i = 0; i < 500; ++i) {
            var += (z.at(i, d) - mean) * (z.at(i, d) - mean);
        }
        var /= 500.0;
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(var, 1.0, 1e-6);
    }
}

TEST(Standardizer, ConstantDimensionDoesNotBlowUp)
{
    Matrix x(10, 2);
    for (std::size_t i = 0; i < 10; ++i) {
        x.at(i, 0) = 7.0;
        x.at(i, 1) = static_cast<double>(i);
    }
    Standardizer scaler;
    scaler.fit(x);
    const Matrix z = scaler.transform(x);
    for (std::size_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(std::isfinite(z.at(i, 0)));
    }
}

TEST(Standardizer, TransformRowMatchesMatrix)
{
    util::Rng rng(2);
    Matrix x(50, 4);
    for (auto &v : x.data()) {
        v = rng.uniform(-3.0, 9.0);
    }
    Standardizer scaler;
    scaler.fit(x);
    const Matrix z = scaler.transform(x);
    double row[4];
    std::copy(x.row(7), x.row(7) + 4, row);
    scaler.transformRow(row);
    for (int d = 0; d < 4; ++d) {
        EXPECT_DOUBLE_EQ(row[d], z.at(7, d));
    }
}

TEST(JacobiEigen, DiagonalMatrix)
{
    Matrix m(3, 3);
    m.at(0, 0) = 3.0;
    m.at(1, 1) = 1.0;
    m.at(2, 2) = 2.0;
    std::vector<double> values;
    Matrix vectors;
    jacobiEigen(m, values, vectors);
    ASSERT_EQ(values.size(), 3U);
    EXPECT_NEAR(values[0], 3.0, 1e-10);
    EXPECT_NEAR(values[1], 2.0, 1e-10);
    EXPECT_NEAR(values[2], 1.0, 1e-10);
}

TEST(JacobiEigen, KnownSymmetricMatrix)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix m(2, 2);
    m.at(0, 0) = 2.0;
    m.at(0, 1) = 1.0;
    m.at(1, 0) = 1.0;
    m.at(1, 1) = 2.0;
    std::vector<double> values;
    Matrix vectors;
    jacobiEigen(m, values, vectors);
    EXPECT_NEAR(values[0], 3.0, 1e-10);
    EXPECT_NEAR(values[1], 1.0, 1e-10);
    // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(vectors.at(0, 0)), std::sqrt(0.5), 1e-8);
    EXPECT_NEAR(std::fabs(vectors.at(0, 1)), std::sqrt(0.5), 1e-8);
}

TEST(JacobiEigen, EigenvectorsAreOrthonormal)
{
    // Random symmetric matrix.
    util::Rng rng(3);
    Matrix m(5, 5);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = i; j < 5; ++j) {
            const double v = rng.uniform(-1.0, 1.0);
            m.at(i, j) = v;
            m.at(j, i) = v;
        }
    }
    std::vector<double> values;
    Matrix vectors;
    jacobiEigen(m, values, vectors);
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            double dot = 0.0;
            for (std::size_t d = 0; d < 5; ++d) {
                dot += vectors.at(i, d) * vectors.at(j, d);
            }
            EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
        }
    }
}

TEST(JacobiEigen, ReconstructsMatrix)
{
    util::Rng rng(4);
    Matrix m(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = i; j < 4; ++j) {
            const double v = rng.uniform(-2.0, 2.0);
            m.at(i, j) = v;
            m.at(j, i) = v;
        }
    }
    std::vector<double> values;
    Matrix vectors;
    jacobiEigen(m, values, vectors);
    // m == sum_k lambda_k v_k v_k^T.
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            double sum = 0.0;
            for (std::size_t k = 0; k < 4; ++k) {
                sum += values[k] * vectors.at(k, i) * vectors.at(k, j);
            }
            EXPECT_NEAR(sum, m.at(i, j), 1e-8);
        }
    }
}

TEST(Pca, RecoversDominantAxis)
{
    util::Rng rng(5);
    // Data stretched along (1, 1)/sqrt(2).
    Matrix x(400, 2);
    for (std::size_t i = 0; i < 400; ++i) {
        const double major = rng.normal(0.0, 5.0);
        const double minor = rng.normal(0.0, 0.3);
        x.at(i, 0) = (major + minor) / std::sqrt(2.0);
        x.at(i, 1) = (major - minor) / std::sqrt(2.0);
    }
    Pca pca;
    pca.fit(x, 1);
    EXPECT_GT(pca.explainedVariance(), 0.98);
    const Matrix projected = pca.transform(x);
    EXPECT_EQ(projected.cols(), 1U);
    // Projected variance ~ major variance (25).
    double var = 0.0;
    for (std::size_t i = 0; i < 400; ++i) {
        var += projected.at(i, 0) * projected.at(i, 0);
    }
    var /= 400.0;
    EXPECT_NEAR(var, 25.0, 4.0);
}

TEST(Pca, FullRankKeepsAllVariance)
{
    util::Rng rng(6);
    Matrix x(100, 3);
    for (auto &v : x.data()) {
        v = rng.normal(0.0, 1.0);
    }
    Pca pca;
    pca.fit(x, 3);
    EXPECT_NEAR(pca.explainedVariance(), 1.0, 1e-9);
    EXPECT_EQ(pca.components(), 3U);
}

} // namespace
} // namespace kodan::ml
