/**
 * @file
 * Property suite for the int8 quantized inference path: the Scratch
 * byte allocator it builds on, the fixed-point requantization scheme
 * (rounding, ties, saturation, degenerate shifts), the int8 GEMM /
 * GEMV kernels' Blocked-vs-Naive bit identity — including the fused
 * requantizing epilogue in both its ReLU and plain clamp modes, odd
 * shapes that exercise packing padding and scalar tails, and channels
 * whose shift falls outside the SIMD fast path — and the QuantizedMlp
 * determinism contract: identical bytes at any thread count, any batch
 * split, and either backend. Integer results are compared with exact
 * equality; that is the contract, not a tolerance choice.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace kodan::ml {
namespace {

/** Thread counts exercised for the bit-identity grid. */
const std::vector<int> kThreadCounts = {1, 4, 16};

/** Restores the global thread default when a test exits. */
class ThreadGuard
{
  public:
    ~ThreadGuard() { util::setGlobalThreads(0); }
};

/** Forces a backend for a scope and restores the previous one. */
class BackendGuard
{
  public:
    explicit BackendGuard(kernels::Backend b) : saved_(kernels::backend())
    {
        kernels::setBackend(b);
    }
    ~BackendGuard() { kernels::setBackend(saved_); }
    BackendGuard(const BackendGuard &) = delete;
    BackendGuard &operator=(const BackendGuard &) = delete;

  private:
    kernels::Backend saved_;
};

std::vector<std::int8_t>
randomI8(std::size_t count, util::Rng &rng)
{
    std::vector<std::int8_t> v(count);
    for (auto &x : v) {
        x = static_cast<std::int8_t>(
            std::lround(rng.uniform(-127.0, 127.0)));
    }
    return v;
}

std::vector<std::int32_t>
randomBias(std::size_t count, util::Rng &rng)
{
    std::vector<std::int32_t> v(count);
    for (auto &x : v) {
        x = static_cast<std::int32_t>(
            std::lround(rng.uniform(-50000.0, 50000.0)));
    }
    return v;
}

std::vector<kernels::Requant>
randomRequant(std::size_t count, util::Rng &rng)
{
    std::vector<kernels::Requant> v(count);
    for (auto &x : v) {
        x = kernels::requantScale(rng.uniform(1.0 / 4096.0, 1.0 / 4.0));
    }
    return v;
}

Matrix
randomMatrix(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    Matrix m(rows, cols);
    for (double &v : m.data()) {
        v = rng.uniform(-2.0, 2.0);
    }
    return m;
}

/** Exact byte comparison of two equally-sized buffers. */
template <typename T>
void
expectSameBytes(const std::vector<T> &a, const std::vector<T> &b,
                const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)))
        << what;
}

// ---------------------------------------------------------------------
// Scratch::allocBytes — the raw allocator under the int8 workspaces.

TEST(ScratchBytes, RespectsAlignment)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame frame(arena);
    for (std::size_t align : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8},
                              std::size_t{16}, std::size_t{32},
                              std::size_t{64}}) {
        // Odd sizes knock the cursor off alignment between calls.
        for (std::size_t bytes : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{129}}) {
            void *p = arena.allocBytes(bytes, align);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
                << "align " << align << " bytes " << bytes;
            // The region is writable end to end.
            std::memset(p, 0xAB, bytes);
        }
    }
}

TEST(ScratchBytes, FrameRestoresBytePosition)
{
    kernels::Scratch arena;
    void *first = nullptr;
    {
        kernels::Scratch::Frame frame(arena);
        first = arena.allocBytes(1000, 32);
    }
    kernels::Scratch::Frame frame(arena);
    void *second = arena.allocBytes(1000, 32);
    EXPECT_EQ(first, second);
}

TEST(ScratchBytes, SharesArenaWithDoubleAlloc)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame frame(arena);
    double *d = arena.alloc(16);
    auto *b = arena.allocArray<std::int8_t>(33);
    double *d2 = arena.alloc(16);
    // Distinct, non-overlapping regions from the same arena.
    ASSERT_NE(reinterpret_cast<void *>(d), reinterpret_cast<void *>(b));
    ASSERT_NE(reinterpret_cast<void *>(d2), reinterpret_cast<void *>(b));
    d[15] = 1.0;
    b[32] = 42;
    d2[0] = 2.0;
    EXPECT_EQ(b[32], 42);
    EXPECT_EQ(d[15], 1.0);
}

TEST(ScratchBytes, GrowsBeyondOneChunk)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame frame(arena);
    // Larger than the minimum chunk (1 << 14 doubles = 128 KiB).
    const std::size_t big = (std::size_t{1} << 18) + 13;
    auto *p = arena.allocArray<std::int8_t>(big, 64);
    ASSERT_NE(p, nullptr);
    p[0] = 1;
    p[big - 1] = 2;
    EXPECT_EQ(p[0], 1);
    EXPECT_EQ(p[big - 1], 2);
    EXPECT_GE(arena.chunkCount(), 1u);
}

TEST(ScratchBytes, AllocArrayCountsElements)
{
    kernels::Scratch arena;
    kernels::Scratch::Frame frame(arena);
    auto *acc = arena.allocArray<std::int32_t>(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(acc) %
                  alignof(std::int32_t),
              0u);
    for (int i = 0; i < 100; ++i) {
        acc[i] = i;
    }
    auto *next = arena.allocArray<std::int32_t>(1);
    // 100 int32s were actually reserved: the next allocation lands at
    // or after their end.
    EXPECT_GE(next, acc + 100);
}

// ---------------------------------------------------------------------
// requantScale / requantize — the fixed-point scheme itself.

TEST(RequantScale, EncodesMantissaTimesPowerOfTwo)
{
    util::Rng rng(2024);
    for (int i = 0; i < 2000; ++i) {
        const double scale = std::exp(rng.uniform(-20.0, 4.0));
        const kernels::Requant rq = kernels::requantScale(scale);
        ASSERT_GE(rq.multiplier, std::int32_t{1} << 30);
        ASSERT_LT(static_cast<std::int64_t>(rq.multiplier),
                  std::int64_t{1} << 31);
        const double decoded =
            static_cast<double>(rq.multiplier) *
            std::ldexp(1.0, -rq.shift);
        // frexp is exact up to the Q31 truncation of the mantissa.
        EXPECT_NEAR(decoded / scale, 1.0, 1e-9) << "scale " << scale;
    }
}

TEST(Requantize, MatchesRoundHalfAwayReference)
{
    util::Rng rng(77);
    for (int i = 0; i < 20000; ++i) {
        const auto acc = static_cast<std::int32_t>(std::lround(
            rng.uniform(-2.147e9, 2.147e9)));
        const kernels::Requant rq =
            kernels::requantScale(std::exp(rng.uniform(-12.0, 0.0)));
        // Independent reference: exact integer magnitude arithmetic.
        const std::int64_t prod =
            static_cast<std::int64_t>(acc) * rq.multiplier;
        ASSERT_GT(rq.shift, 0);
        ASSERT_LE(rq.shift, 62);
        const std::uint64_t mag =
            prod < 0 ? static_cast<std::uint64_t>(-prod)
                     : static_cast<std::uint64_t>(prod);
        const std::uint64_t half = std::uint64_t{1} << (rq.shift - 1);
        const auto rounded =
            static_cast<std::int64_t>((mag + half) >> rq.shift);
        const std::int64_t expected = prod < 0 ? -rounded : rounded;
        ASSERT_LE(expected, std::numeric_limits<std::int32_t>::max());
        ASSERT_GE(expected, std::numeric_limits<std::int32_t>::min());
        EXPECT_EQ(kernels::requantize(acc, rq),
                  static_cast<std::int32_t>(expected))
            << "acc " << acc << " mult " << rq.multiplier << " shift "
            << rq.shift;
    }
}

TEST(Requantize, TiesRoundAwayFromZero)
{
    // multiplier 2^30, shift 31 encodes scale 0.5 exactly: the product
    // acc * 2^30 lands exactly on a half step for every odd acc.
    const kernels::Requant rq{std::int32_t{1} << 30, 31};
    EXPECT_EQ(kernels::requantize(0, rq), 0);
    EXPECT_EQ(kernels::requantize(1, rq), 1);   // 0.5 -> 1, not 0
    EXPECT_EQ(kernels::requantize(-1, rq), -1); // -0.5 -> -1, not 0
    EXPECT_EQ(kernels::requantize(2, rq), 1);
    EXPECT_EQ(kernels::requantize(-2, rq), -1);
    EXPECT_EQ(kernels::requantize(3, rq), 2);   // 1.5 -> 2
    EXPECT_EQ(kernels::requantize(-3, rq), -2); // -1.5 -> -2
    EXPECT_EQ(kernels::requantize(101, rq), 51);
    EXPECT_EQ(kernels::requantize(-101, rq), -51);
}

TEST(Requantize, DegenerateShiftsSaturateOrVanish)
{
    // Shift beyond 62: any product rounds to zero.
    const kernels::Requant tiny{std::int32_t{1} << 30, 70};
    EXPECT_EQ(kernels::requantize(std::numeric_limits<std::int32_t>::max(),
                                  tiny),
              0);
    EXPECT_EQ(kernels::requantize(std::numeric_limits<std::int32_t>::min(),
                                  tiny),
              0);
    // Non-positive shift: left shift with int32 saturation.
    const kernels::Requant huge{std::int32_t{1} << 30, -4};
    EXPECT_EQ(kernels::requantize(1 << 10, huge),
              std::numeric_limits<std::int32_t>::max());
    EXPECT_EQ(kernels::requantize(-(1 << 10), huge),
              std::numeric_limits<std::int32_t>::min());
    // Small accumulators still fit: 2 * 2^30 * 2^4 = 2^35 saturates,
    // but 1 * 2^30 << 0 with shift 0 is 2^30, in range.
    const kernels::Requant unit{std::int32_t{1} << 30, 0};
    EXPECT_EQ(kernels::requantize(1, unit), std::int32_t{1} << 30);
    EXPECT_EQ(kernels::requantize(-1, unit), -(std::int32_t{1} << 30));
    EXPECT_EQ(kernels::requantize(4, unit),
              std::numeric_limits<std::int32_t>::max());
}

TEST(SaturateI8, ClampEdges)
{
    EXPECT_EQ(kernels::saturateI8(0, -127), 0);
    EXPECT_EQ(kernels::saturateI8(127, -127), 127);
    EXPECT_EQ(kernels::saturateI8(128, -127), 127);
    EXPECT_EQ(kernels::saturateI8(std::numeric_limits<std::int32_t>::max(),
                                  -127),
              127);
    EXPECT_EQ(kernels::saturateI8(-127, -127), -127);
    // -128 is never produced: the range stays symmetric.
    EXPECT_EQ(kernels::saturateI8(-128, -127), -127);
    EXPECT_EQ(kernels::saturateI8(std::numeric_limits<std::int32_t>::min(),
                                  -127),
              -127);
    // The fused-ReLU clamp zeroes every negative value.
    EXPECT_EQ(kernels::saturateI8(-1, 0), 0);
    EXPECT_EQ(kernels::saturateI8(std::numeric_limits<std::int32_t>::min(),
                                  0),
              0);
    EXPECT_EQ(kernels::saturateI8(5, 0), 5);
    EXPECT_EQ(kernels::saturateI8(200, 0), 127);
}

// ---------------------------------------------------------------------
// Quantization round trip: symmetric per-channel int8.

TEST(QuantRoundTrip, ErrorBoundedByHalfStep)
{
    util::Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 64;
        std::vector<double> w(n);
        double absmax = 0.0;
        for (double &v : w) {
            v = rng.uniform(-3.0, 3.0);
            absmax = std::max(absmax, std::fabs(v));
        }
        ASSERT_GT(absmax, 0.0);
        const double scale = absmax / 127.0;
        for (const double v : w) {
            const auto q = static_cast<std::int32_t>(
                std::lround(v / scale));
            ASSERT_GE(q, -127);
            ASSERT_LE(q, 127);
            // Round-half-away quantization: the reconstruction error
            // never exceeds half a quantization step.
            EXPECT_LE(std::fabs(v - static_cast<double>(q) * scale),
                      scale * 0.5 + 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// Int8 GEMM / GEMV: Blocked vs Naive bit identity, including the
// epilogue modes and shapes the benches never touch.

struct I8Shape
{
    std::size_t m;
    std::size_t k;
    std::size_t n;
};

/** Odd/even k (packing pairs), n off the channel-tile grid (tails). */
const std::vector<I8Shape> kShapes = {
    {1, 1, 1},   {3, 5, 7},    {17, 18, 64}, {33, 64, 32},
    {64, 7, 16}, {13, 31, 33}, {129, 19, 1}, {40, 64, 100},
};

void
runGemmI8Grid(bool relu, bool degenerate_channels)
{
    util::Rng rng(relu ? 9001 : 9002);
    for (const I8Shape &s : kShapes) {
        const auto a = randomI8(s.m * s.k, rng);
        const auto w = randomI8(s.n * s.k, rng);
        const auto bias = randomBias(s.n, rng);
        auto rq = randomRequant(s.n, rng);
        if (degenerate_channels) {
            // Push some channels outside the SIMD fast path's [1, 62]
            // shift window: the whole call must fall back to the
            // scalar reference without changing any in-range channel.
            rq[0] = kernels::Requant{std::int32_t{1} << 30, 70};
            if (s.n > 2) {
                rq[s.n / 2] = kernels::Requant{std::int32_t{1} << 30, -2};
            }
        }

        std::vector<std::int8_t> naive(s.m * s.n);
        std::vector<std::int8_t> blocked(s.m * s.n);
        std::vector<std::int8_t> packed(s.m * s.n);
        {
            const BackendGuard guard(kernels::Backend::Naive);
            kernels::gemmI8Requant(s.m, s.k, s.n, a.data(), w.data(),
                                   bias.data(), rq.data(), relu,
                                   naive.data());
        }
        {
            const BackendGuard guard(kernels::Backend::Blocked);
            kernels::gemmI8Requant(s.m, s.k, s.n, a.data(), w.data(),
                                   bias.data(), rq.data(), relu,
                                   blocked.data());
        }
        const kernels::PackedI8 pw(s.n, s.k, w.data(), bias.data());
        kernels::gemmI8Requant(s.m, pw, a.data(), rq.data(), relu,
                               packed.data());
        expectSameBytes(naive, blocked, "raw blocked vs naive");
        expectSameBytes(naive, packed, "packed vs naive");

        // Independent scalar oracle over the raw operands.
        const std::int32_t lo = relu ? 0 : -127;
        for (std::size_t i = 0; i < s.m; ++i) {
            for (std::size_t j = 0; j < s.n; ++j) {
                std::int32_t acc = bias[j];
                for (std::size_t p = 0; p < s.k; ++p) {
                    acc += static_cast<std::int32_t>(a[i * s.k + p]) *
                           static_cast<std::int32_t>(w[j * s.k + p]);
                }
                const std::int8_t expected = kernels::saturateI8(
                    kernels::requantize(acc, rq[j]), lo);
                ASSERT_EQ(naive[i * s.n + j], expected)
                    << "m=" << s.m << " k=" << s.k << " n=" << s.n
                    << " i=" << i << " j=" << j;
            }
        }
    }
}

TEST(GemmI8Requant, ReluGridMatchesOracle) { runGemmI8Grid(true, false); }

TEST(GemmI8Requant, PlainClampGridMatchesOracle)
{
    runGemmI8Grid(false, false);
}

TEST(GemmI8Requant, DegenerateShiftFallback)
{
    runGemmI8Grid(true, true);
    runGemmI8Grid(false, true);
}

TEST(GemmI8, AccumulatorGridMatchesOracle)
{
    util::Rng rng(4242);
    for (const I8Shape &s : kShapes) {
        const auto a = randomI8(s.m * s.k, rng);
        const auto w = randomI8(s.n * s.k, rng);
        const auto bias = randomBias(s.n, rng);
        std::vector<std::int32_t> naive(s.m * s.n);
        std::vector<std::int32_t> blocked(s.m * s.n);
        std::vector<std::int32_t> packed(s.m * s.n);
        std::vector<std::int32_t> no_bias(s.m * s.n);
        {
            const BackendGuard guard(kernels::Backend::Naive);
            kernels::gemmI8(s.m, s.k, s.n, a.data(), w.data(),
                            bias.data(), naive.data());
        }
        {
            const BackendGuard guard(kernels::Backend::Blocked);
            kernels::gemmI8(s.m, s.k, s.n, a.data(), w.data(),
                            bias.data(), blocked.data());
            kernels::gemmI8(s.m, s.k, s.n, a.data(), w.data(), nullptr,
                            no_bias.data());
        }
        const kernels::PackedI8 pw(s.n, s.k, w.data(), bias.data());
        kernels::gemmI8(s.m, pw, a.data(), packed.data());
        expectSameBytes(naive, blocked, "gemmI8 blocked vs naive");
        expectSameBytes(naive, packed, "gemmI8 packed vs naive");
        for (std::size_t i = 0; i < s.m; ++i) {
            for (std::size_t j = 0; j < s.n; ++j) {
                std::int32_t acc = bias[j];
                for (std::size_t p = 0; p < s.k; ++p) {
                    acc += static_cast<std::int32_t>(a[i * s.k + p]) *
                           static_cast<std::int32_t>(w[j * s.k + p]);
                }
                ASSERT_EQ(naive[i * s.n + j], acc);
                ASSERT_EQ(no_bias[i * s.n + j], acc - bias[j]);
            }
        }
    }
}

TEST(GemmI8, WorstCaseOperandsStayInHeadroom)
{
    // The documented precondition: 127*127*k + 2^30 < 2^31 for every
    // shape in the codebase (k <= 64). Drive the extreme corner — all
    // operands at +/-127, bias at the 2^30 headroom limit — and check
    // the exact accumulator on both backends.
    const std::size_t m = 4;
    const std::size_t k = 64;
    const std::size_t n = 8;
    std::vector<std::int8_t> a(m * k, 127);
    std::vector<std::int8_t> w(n * k);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t p = 0; p < k; ++p) {
            w[j * k + p] = (j % 2 == 0) ? std::int8_t{127}
                                        : std::int8_t{-127};
        }
    }
    std::vector<std::int32_t> bias(n);
    const std::int32_t headroom = std::int32_t{1} << 30;
    for (std::size_t j = 0; j < n; ++j) {
        bias[j] = (j % 2 == 0) ? headroom : -headroom;
    }
    const auto magnitude =
        static_cast<std::int32_t>(127 * 127 * static_cast<int>(k));
    std::vector<std::int32_t> naive(m * n);
    std::vector<std::int32_t> blocked(m * n);
    {
        const BackendGuard guard(kernels::Backend::Naive);
        kernels::gemmI8(m, k, n, a.data(), w.data(), bias.data(),
                        naive.data());
    }
    {
        const BackendGuard guard(kernels::Backend::Blocked);
        kernels::gemmI8(m, k, n, a.data(), w.data(), bias.data(),
                        blocked.data());
    }
    expectSameBytes(naive, blocked, "worst case blocked vs naive");
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const std::int32_t expected =
                (j % 2 == 0) ? headroom + magnitude
                             : -headroom - magnitude;
            ASSERT_EQ(naive[i * n + j], expected) << i << "," << j;
        }
    }
}

TEST(GemvI8, MatchesOneRowGemm)
{
    util::Rng rng(555);
    for (const I8Shape &s : kShapes) {
        const auto x = randomI8(s.k, rng);
        const auto w = randomI8(s.n * s.k, rng);
        const auto bias = randomBias(s.n, rng);
        std::vector<std::int32_t> gemm_row(s.n);
        std::vector<std::int32_t> raw(s.n);
        std::vector<std::int32_t> packed(s.n);
        {
            const BackendGuard guard(kernels::Backend::Blocked);
            kernels::gemmI8(1, s.k, s.n, x.data(), w.data(), bias.data(),
                            gemm_row.data());
            kernels::gemvI8(s.n, s.k, w.data(), x.data(), bias.data(),
                            raw.data());
        }
        const kernels::PackedI8 pw(s.n, s.k, w.data(), bias.data());
        kernels::gemvI8(pw, x.data(), packed.data());
        expectSameBytes(gemm_row, raw, "gemv vs one-row gemm");
        expectSameBytes(gemm_row, packed, "packed gemv vs one-row gemm");
    }
}

// ---------------------------------------------------------------------
// QuantizedMlp: the determinism contract end to end.

Mlp
makeTrainedNet(const MlpConfig &config, util::Rng &rng)
{
    // He initialization alone gives realistic weight magnitudes; no
    // training needed for bit-identity properties.
    return Mlp(config, rng);
}

TEST(QuantizedMlp, ThreadAndBlockingBitIdentityGrid)
{
    const ThreadGuard cleanup;
    MlpConfig config;
    config.input_dim = 18;
    config.hidden = {64, 32, 16};
    config.output_dim = 1;
    util::Rng rng(7001);
    const Mlp net = makeTrainedNet(config, rng);
    const std::size_t rows = 700; // spans two 512-row strips
    const Matrix x = randomMatrix(rows, 18, rng);
    const QuantizedMlp qnet =
        QuantizedMlp::fromCalibration(net, x.data().data(), rows);

    // Reference: single-threaded Naive, whole batch at once.
    std::vector<double> reference(rows);
    {
        const BackendGuard guard(kernels::Backend::Naive);
        qnet.forwardBatch(x.data().data(), rows, reference.data());
    }

    for (const int threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        for (const auto backend :
             {kernels::Backend::Naive, kernels::Backend::Blocked}) {
            const BackendGuard guard(backend);
            // Shard the batch across the pool the way the runtime
            // shards frames; every shard split must reproduce the
            // reference bytes exactly.
            for (const std::size_t shard : {std::size_t{1},
                                            std::size_t{64},
                                            std::size_t{257}}) {
                std::vector<double> out(rows);
                const std::size_t shards = (rows + shard - 1) / shard;
                util::parallelFor(shards, [&](std::size_t sidx) {
                    const std::size_t r0 = sidx * shard;
                    const std::size_t count =
                        std::min(shard, rows - r0);
                    qnet.forwardBatch(x.data().data() + r0 * 18, count,
                                      out.data() + r0);
                });
                expectSameBytes(reference, out,
                                "thread/backend/shard grid");
            }
        }
    }
}

TEST(QuantizedMlp, ForwardMatchesForwardBatch)
{
    MlpConfig config;
    config.input_dim = 11;
    config.hidden = {24, 12};
    config.output_dim = 1;
    util::Rng rng(7002);
    const Mlp net = makeTrainedNet(config, rng);
    const std::size_t rows = 37;
    const Matrix x = randomMatrix(rows, 11, rng);
    const QuantizedMlp qnet =
        QuantizedMlp::fromCalibration(net, x.data().data(), rows);

    std::vector<double> batch(rows);
    qnet.forwardBatch(x.data().data(), rows, batch.data());
    for (std::size_t r = 0; r < rows; ++r) {
        double one = 0.0;
        qnet.forward(x.data().data() + r * 11, &one);
        EXPECT_EQ(one, batch[r]) << "row " << r;
        EXPECT_EQ(qnet.predictProb(x.data().data() + r * 11), batch[r]);
    }

    Matrix out;
    qnet.forwardBatch(x, out);
    ASSERT_EQ(out.rows(), rows);
    ASSERT_EQ(out.cols(), 1u);
    for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(out.data()[r], batch[r]);
    }
}

TEST(QuantizedMlp, SoftmaxHeadBatchSplitInvariance)
{
    MlpConfig config;
    config.input_dim = 9;
    config.hidden = {16};
    config.output_dim = 5;
    config.output = OutputKind::Softmax;
    util::Rng rng(7003);
    const Mlp net = makeTrainedNet(config, rng);
    const std::size_t rows = 53;
    const Matrix x = randomMatrix(rows, 9, rng);
    const QuantizedMlp qnet =
        QuantizedMlp::fromCalibration(net, x.data().data(), rows);

    std::vector<double> whole(rows * 5);
    qnet.forwardBatch(x.data().data(), rows, whole.data());
    std::vector<double> split(rows * 5);
    for (std::size_t r0 = 0; r0 < rows; r0 += 7) {
        const std::size_t count = std::min<std::size_t>(7, rows - r0);
        qnet.forwardBatch(x.data().data() + r0 * 9, count,
                          split.data() + r0 * 5);
    }
    expectSameBytes(whole, split, "softmax batch split");
    for (std::size_t r = 0; r < rows; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 5; ++c) {
            sum += whole[r * 5 + c];
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(QuantizedMlp, ScaleReconstructionRoundTrips)
{
    // The serialization contract: the on-disk payload is the fp64 net
    // plus the activation scales; the int8 weights are rebuilt from
    // them. A sibling constructed that way must be bit-identical to
    // the original fromCalibration sibling.
    MlpConfig config;
    config.input_dim = 18;
    config.hidden = {40, 20};
    config.output_dim = 1;
    util::Rng rng(7004);
    const Mlp net = makeTrainedNet(config, rng);
    const std::size_t rows = 300;
    const Matrix x = randomMatrix(rows, 18, rng);
    const QuantizedMlp original =
        QuantizedMlp::fromCalibration(net, x.data().data(), rows);

    const QuantizedMlp rebuilt(net, original.actScales());
    ASSERT_EQ(rebuilt.actScales().size(), original.actScales().size());
    for (std::size_t i = 0; i < original.actScales().size(); ++i) {
        EXPECT_EQ(rebuilt.actScales()[i], original.actScales()[i]);
    }

    const Matrix probe = randomMatrix(97, 18, rng);
    std::vector<double> a(97);
    std::vector<double> b(97);
    original.forwardBatch(probe.data().data(), 97, a.data());
    rebuilt.forwardBatch(probe.data().data(), 97, b.data());
    expectSameBytes(a, b, "reconstructed sibling");
}

TEST(QuantizedMlp, CalibrationIsDeterministic)
{
    MlpConfig config;
    config.input_dim = 6;
    config.hidden = {10, 6};
    config.output_dim = 1;
    util::Rng rng(7005);
    const Mlp net = makeTrainedNet(config, rng);
    const Matrix x = randomMatrix(640, 6, rng);
    const auto s1 = QuantizedMlp::calibrate(net, x.data().data(), 640);
    const auto s2 = QuantizedMlp::calibrate(net, x.data().data(), 640);
    ASSERT_EQ(s1.size(), s2.size());
    // One scale per linear layer (hidden layers + head).
    EXPECT_EQ(s1.size(), config.hidden.size() + 1);
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1[i], s2[i]);
        EXPECT_GT(s1[i], 0.0);
    }
}

TEST(QuantizedMlp, TracksFp64WithinQuantizationTolerance)
{
    // Accuracy property (the sweep's tolerance gate enforces this on
    // real models): on in-calibration-range inputs the int8 sigmoid
    // output stays close to the fp64 one. Loose bound on purpose —
    // this guards against sign/scale bugs, not rounding noise.
    MlpConfig config;
    config.input_dim = 18;
    config.hidden = {64, 32, 16};
    config.output_dim = 1;
    util::Rng rng(7006);
    const Mlp net = makeTrainedNet(config, rng);
    const std::size_t rows = 512;
    const Matrix x = randomMatrix(rows, 18, rng);
    const QuantizedMlp qnet =
        QuantizedMlp::fromCalibration(net, x.data().data(), rows);

    Matrix fp;
    net.forwardBatch(x, fp);
    std::vector<double> q(rows);
    qnet.forwardBatch(x.data().data(), rows, q.data());
    double worst = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
        worst = std::max(worst, std::fabs(fp.data()[r] - q[r]));
    }
    EXPECT_LT(worst, 0.15);
}

// ---------------------------------------------------------------------
// The precision knob.

TEST(PrecisionKnob, GuardSavesAndRestores)
{
    const Precision before = precision();
    {
        const PrecisionGuard guard(Precision::Int8);
        EXPECT_EQ(precision(), Precision::Int8);
        {
            const PrecisionGuard inner(Precision::Fp64);
            EXPECT_EQ(precision(), Precision::Fp64);
        }
        EXPECT_EQ(precision(), Precision::Int8);
    }
    EXPECT_EQ(precision(), before);
}

} // namespace
} // namespace kodan::ml
