/** @file Unit tests for Matrix. */

#include <gtest/gtest.h>

#include "ml/matrix.hpp"

namespace kodan::ml {
namespace {

TEST(Matrix, ZeroInitialized)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3U);
    EXPECT_EQ(m.cols(), 4U);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_DOUBLE_EQ(m.at(r, c), 0.0);
        }
    }
}

TEST(Matrix, RowMajorLayout)
{
    Matrix m(2, 3);
    m.at(1, 2) = 7.0;
    EXPECT_DOUBLE_EQ(m.data()[5], 7.0);
    EXPECT_DOUBLE_EQ(m.row(1)[2], 7.0);
}

TEST(Matrix, FillAndScale)
{
    Matrix m(2, 2);
    m.fill(3.0);
    m.scale(2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 6.0);
}

TEST(Matrix, Add)
{
    Matrix a(2, 2);
    Matrix b(2, 2);
    a.fill(1.0);
    b.fill(2.5);
    a.add(b);
    EXPECT_DOUBLE_EQ(a.at(0, 1), 3.5);
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a(2, 3);
    Matrix b(3, 2);
    // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]]
    double av[] = {1, 2, 3, 4, 5, 6};
    double bv[] = {7, 8, 9, 10, 11, 12};
    a.data().assign(av, av + 6);
    b.data().assign(bv, bv + 6);
    const Matrix c = Matrix::multiply(a, b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, MultiplyByIdentity)
{
    Matrix a(3, 3);
    for (std::size_t i = 0; i < 9; ++i) {
        a.data()[i] = static_cast<double>(i);
    }
    Matrix eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i) {
        eye.at(i, i) = 1.0;
    }
    const Matrix c = Matrix::multiply(a, eye);
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_DOUBLE_EQ(c.data()[i], a.data()[i]);
    }
}

TEST(Matrix, Transposed)
{
    Matrix a(2, 3);
    a.at(0, 2) = 5.0;
    a.at(1, 0) = -2.0;
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3U);
    EXPECT_EQ(t.cols(), 2U);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
    EXPECT_DOUBLE_EQ(t.at(0, 1), -2.0);
}

} // namespace
} // namespace kodan::ml
