/** @file Unit tests for the confusion-matrix accumulator. */

#include <gtest/gtest.h>

#include "ml/confusion.hpp"

namespace kodan::ml {
namespace {

TEST(ConfusionStats, CountsQuadrants)
{
    ConfusionStats stats;
    stats.add(true, true);   // TP
    stats.add(true, false);  // FP
    stats.add(false, false); // TN
    stats.add(false, true);  // FN
    EXPECT_EQ(stats.tp(), 1);
    EXPECT_EQ(stats.fp(), 1);
    EXPECT_EQ(stats.tn(), 1);
    EXPECT_EQ(stats.fn(), 1);
    EXPECT_EQ(stats.total(), 4);
}

TEST(ConfusionStats, Metrics)
{
    ConfusionStats stats;
    stats.addWeighted(true, true, 8);
    stats.addWeighted(true, false, 2);
    stats.addWeighted(false, false, 6);
    stats.addWeighted(false, true, 4);
    EXPECT_DOUBLE_EQ(stats.accuracy(), 14.0 / 20.0);
    EXPECT_DOUBLE_EQ(stats.precision(), 0.8);
    EXPECT_DOUBLE_EQ(stats.recall(), 8.0 / 12.0);
    EXPECT_DOUBLE_EQ(stats.positiveRate(), 0.5);
    EXPECT_DOUBLE_EQ(stats.prevalence(), 0.6);
    const double p = 0.8;
    const double r = 8.0 / 12.0;
    EXPECT_DOUBLE_EQ(stats.f1(), 2.0 * p * r / (p + r));
}

TEST(ConfusionStats, EmptyDefaults)
{
    ConfusionStats stats;
    EXPECT_DOUBLE_EQ(stats.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
    EXPECT_DOUBLE_EQ(stats.recall(), 1.0);
}

TEST(ConfusionStats, NoPositivePredictions)
{
    ConfusionStats stats;
    stats.add(false, true);
    EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
    EXPECT_DOUBLE_EQ(stats.recall(), 0.0);
}

TEST(ConfusionStats, Merge)
{
    ConfusionStats a;
    a.add(true, true);
    ConfusionStats b;
    b.add(false, false);
    b.add(true, false);
    a.merge(b);
    EXPECT_EQ(a.total(), 3);
    EXPECT_EQ(a.tp(), 1);
    EXPECT_EQ(a.fp(), 1);
    EXPECT_EQ(a.tn(), 1);
}

TEST(ConfusionStats, PerfectClassifier)
{
    ConfusionStats stats;
    stats.addWeighted(true, true, 10);
    stats.addWeighted(false, false, 10);
    EXPECT_DOUBLE_EQ(stats.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(stats.precision(), 1.0);
    EXPECT_DOUBLE_EQ(stats.recall(), 1.0);
    EXPECT_DOUBLE_EQ(stats.f1(), 1.0);
}

} // namespace
} // namespace kodan::ml
