/** @file Unit tests for the MLP and its trainer. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/mlp.hpp"

namespace kodan::ml {
namespace {

MlpConfig
binaryConfig(std::vector<int> hidden, int input_dim = 2)
{
    MlpConfig config;
    config.input_dim = input_dim;
    config.hidden = std::move(hidden);
    config.output_dim = 1;
    config.output = OutputKind::Sigmoid;
    return config;
}

TEST(Mlp, ParameterCountMatchesArchitecture)
{
    util::Rng rng(1);
    const Mlp net(binaryConfig({4, 3}), rng);
    // (2*4+4) + (4*3+3) + (3*1+1) = 12 + 15 + 4 = 31.
    EXPECT_EQ(net.parameterCount(), 31U);
}

TEST(Mlp, OutputIsProbability)
{
    util::Rng rng(2);
    const Mlp net(binaryConfig({8}), rng);
    for (double x = -3.0; x < 3.0; x += 0.5) {
        const double input[2] = {x, -x};
        const double p = net.predictProb(input);
        ASSERT_GE(p, 0.0);
        ASSERT_LE(p, 1.0);
    }
}

TEST(Mlp, LearnsLinearlySeparableProblem)
{
    util::Rng rng(3);
    Mlp net(binaryConfig({8}), rng);
    const int n = 400;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        x.at(i, 0) = rng.uniform(-1.0, 1.0);
        x.at(i, 1) = rng.uniform(-1.0, 1.0);
        y[i] = (x.at(i, 0) + x.at(i, 1) > 0.0) ? 1.0 : 0.0;
    }
    TrainOptions options;
    options.epochs = 40;
    const double loss = net.train(x, y, options, rng);
    EXPECT_LT(loss, 0.25);

    int correct = 0;
    for (int i = 0; i < n; ++i) {
        const double p = net.predictProb(x.row(i));
        if ((p > 0.5) == (y[i] > 0.5)) {
            ++correct;
        }
    }
    EXPECT_GT(correct, 360);
}

TEST(Mlp, LearnsXorWithHiddenLayer)
{
    util::Rng rng(4);
    Mlp net(binaryConfig({16, 8}), rng);
    const int n = 600;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        x.at(i, 0) = rng.uniform(-1.0, 1.0);
        x.at(i, 1) = rng.uniform(-1.0, 1.0);
        y[i] = (x.at(i, 0) * x.at(i, 1) > 0.0) ? 1.0 : 0.0;
    }
    TrainOptions options;
    options.epochs = 120;
    options.learning_rate = 5e-3;
    net.train(x, y, options, rng);
    int correct = 0;
    for (int i = 0; i < n; ++i) {
        if ((net.predictProb(x.row(i)) > 0.5) == (y[i] > 0.5)) {
            ++correct;
        }
    }
    EXPECT_GT(correct, 540); // 90%
}

TEST(Mlp, SoftLabelsSupported)
{
    util::Rng rng(5);
    Mlp net(binaryConfig({4}, 1), rng);
    const int n = 300;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        x.at(i, 0) = rng.uniform(0.0, 1.0);
        y[i] = x.at(i, 0); // soft target = input
    }
    TrainOptions options;
    options.epochs = 80;
    net.train(x, y, options, rng);
    const double lo_in[1] = {0.1};
    const double hi_in[1] = {0.9};
    EXPECT_LT(net.predictProb(lo_in), net.predictProb(hi_in));
}

TEST(Mlp, SoftmaxLearnsBlobs)
{
    util::Rng rng(6);
    MlpConfig config;
    config.input_dim = 2;
    config.hidden = {16};
    config.output_dim = 3;
    config.output = OutputKind::Softmax;
    Mlp net(config, rng);

    const double centers[3][2] = {{-2.0, 0.0}, {2.0, 0.0}, {0.0, 2.5}};
    const int n = 600;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
        const int cls = i % 3;
        x.at(i, 0) = centers[cls][0] + rng.normal(0.0, 0.4);
        x.at(i, 1) = centers[cls][1] + rng.normal(0.0, 0.4);
        y[i] = cls;
    }
    TrainOptions options;
    options.epochs = 60;
    net.train(x, y, options, rng);

    int correct = 0;
    for (int i = 0; i < n; ++i) {
        if (net.predictClass(x.row(i)) == static_cast<int>(y[i])) {
            ++correct;
        }
    }
    EXPECT_GT(correct, 570); // 95%
}

TEST(Mlp, SoftmaxOutputsSumToOne)
{
    util::Rng rng(7);
    MlpConfig config;
    config.input_dim = 3;
    config.hidden = {5};
    config.output_dim = 4;
    config.output = OutputKind::Softmax;
    const Mlp net(config, rng);
    const double input[3] = {0.2, -1.0, 0.5};
    double out[4];
    net.forward(input, out);
    double sum = 0.0;
    for (double p : out) {
        ASSERT_GE(p, 0.0);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, SaveLoadRoundTrip)
{
    util::Rng rng(8);
    Mlp net(binaryConfig({6, 4}), rng);
    std::stringstream stream;
    net.save(stream);
    const Mlp loaded = Mlp::load(stream);
    EXPECT_EQ(loaded.parameterCount(), net.parameterCount());
    for (double x = -2.0; x < 2.0; x += 0.3) {
        const double input[2] = {x, x * 0.5};
        EXPECT_NEAR(loaded.predictProb(input), net.predictProb(input),
                    1e-12);
    }
}

TEST(Mlp, TrainingIsDeterministic)
{
    auto make_trained = [] {
        util::Rng rng(9);
        Mlp net(binaryConfig({6}), rng);
        Matrix x(50, 2);
        std::vector<double> y(50);
        util::Rng data_rng(10);
        for (int i = 0; i < 50; ++i) {
            x.at(i, 0) = data_rng.uniform(-1.0, 1.0);
            x.at(i, 1) = data_rng.uniform(-1.0, 1.0);
            y[i] = x.at(i, 0) > 0.0 ? 1.0 : 0.0;
        }
        TrainOptions options;
        options.epochs = 5;
        net.train(x, y, options, rng);
        return net;
    };
    const Mlp a = make_trained();
    const Mlp b = make_trained();
    const double input[2] = {0.3, -0.8};
    EXPECT_DOUBLE_EQ(a.predictProb(input), b.predictProb(input));
}

TEST(Mlp, DeeperModelsHaveMoreParameters)
{
    util::Rng rng(11);
    std::size_t prev = 0;
    for (const auto &hidden :
         {std::vector<int>{8}, std::vector<int>{16, 8},
          std::vector<int>{64, 32, 16}}) {
        const Mlp net(binaryConfig(hidden, 30), rng);
        EXPECT_GT(net.parameterCount(), prev);
        prev = net.parameterCount();
    }
}

} // namespace
} // namespace kodan::ml
