/** @file Tests for daylight-gated frame capture. */

#include <gtest/gtest.h>

#include "orbit/sun.hpp"
#include "sense/capture.hpp"
#include "util/units.hpp"

namespace kodan::sense {
namespace {

TEST(DaylitCapture, SubsetOfAllFrames)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto all = capture.capture(sat, 0, 0.0, util::kSecondsPerDay);
    const auto daylit =
        capture.capture(sat, 0, 0.0, util::kSecondsPerDay, true);
    EXPECT_LT(daylit.size(), all.size());
    EXPECT_GT(daylit.size(), all.size() / 4);
}

TEST(DaylitCapture, RoughlyHalfTheOrbitIsLit)
{
    // A sun-synchronous orbit spends roughly half its revolution over
    // lit ground (the day-side pass).
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto all = capture.capture(sat, 0, 0.0, util::kSecondsPerDay);
    const auto daylit =
        capture.capture(sat, 0, 0.0, util::kSecondsPerDay, true);
    const double fraction =
        static_cast<double>(daylit.size()) / all.size();
    EXPECT_GT(fraction, 0.35);
    EXPECT_LT(fraction, 0.75);
}

TEST(DaylitCapture, EveryKeptFrameIsLit)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto daylit = capture.capture(sat, 0, 0.0, 20000.0, true);
    for (const auto &frame : daylit) {
        EXPECT_TRUE(orbit::isDaylit(frame.center, frame.time));
    }
}

} // namespace
} // namespace kodan::sense
