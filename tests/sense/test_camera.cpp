/** @file Unit tests for the camera model. */

#include <gtest/gtest.h>

#include "sense/camera.hpp"

namespace kodan::sense {
namespace {

TEST(CameraModel, Landsat8Geometry)
{
    const auto camera = CameraModel::landsat8Multispectral();
    EXPECT_DOUBLE_EQ(camera.alongTrackLength(), 150.0e3);
    EXPECT_DOUBLE_EQ(camera.swathWidth(), 150.0e3);
    EXPECT_DOUBLE_EQ(camera.framePixels(), 1.0e8);
}

TEST(CameraModel, Landsat8DataVolume)
{
    const auto camera = CameraModel::landsat8Multispectral();
    // 1e8 px * 4 bands * 11 bits = 4.4e9 bits.
    EXPECT_DOUBLE_EQ(camera.frameBits(), 4.4e9);
}

TEST(CameraModel, HyperspectralIsMuchLarger)
{
    const auto multi = CameraModel::landsat8Multispectral();
    const auto hyper = CameraModel::landsat8Hyperspectral();
    EXPECT_GT(hyper.frameBits(), 15.0 * multi.frameBits());
}

TEST(CameraModel, FramePeriodMatchesGroundSpeed)
{
    const auto camera = CameraModel::landsat8Multispectral();
    // 150 km at ~6.76 km/s -> ~22 s (the paper's frame deadline).
    EXPECT_NEAR(camera.framePeriod(6760.0), 22.2, 0.3);
}

TEST(CameraModel, PeriodScalesInverselyWithSpeed)
{
    const auto camera = CameraModel::landsat8Multispectral();
    EXPECT_DOUBLE_EQ(camera.framePeriod(1000.0),
                     2.0 * camera.framePeriod(2000.0));
}

} // namespace
} // namespace kodan::sense
