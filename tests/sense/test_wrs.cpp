/** @file Unit tests for the WRS scene grid. */

#include <gtest/gtest.h>

#include <set>

#include "orbit/propagator.hpp"
#include "sense/wrs.hpp"
#include "util/units.hpp"

namespace kodan::sense {
namespace {

TEST(WrsGrid, DefaultDimensionsMatchWrs2)
{
    const WrsGrid grid;
    EXPECT_EQ(grid.paths(), 233);
    EXPECT_EQ(grid.rows(), 248);
    EXPECT_EQ(grid.sceneCount(), 57784U);
}

TEST(WrsGrid, SceneIdsWithinRange)
{
    const WrsGrid grid;
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    for (double t = 0.0; t < 20000.0; t += 111.0) {
        const SceneId scene = grid.sceneAt(sat, t);
        EXPECT_GE(scene.path, 0);
        EXPECT_LT(scene.path, 233);
        EXPECT_GE(scene.row, 0);
        EXPECT_LT(scene.row, 248);
    }
}

TEST(WrsGrid, RowAdvancesAlongOrbit)
{
    const WrsGrid grid;
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const double period = sat.nodalPeriod();
    const double row_time = period / 248.0;
    const SceneId a = grid.sceneAt(sat, 10.0);
    const SceneId b = grid.sceneAt(sat, 10.0 + 3.0 * row_time);
    EXPECT_EQ((a.row + 3) % 248, b.row);
}

TEST(WrsGrid, PathStableWithinRevolution)
{
    const WrsGrid grid;
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    // Sample well inside one revolution (avoid the node crossing).
    const SceneId a = grid.sceneAt(sat, 100.0);
    const SceneId b = grid.sceneAt(sat, 1500.0);
    EXPECT_EQ(a.path, b.path);
}

TEST(WrsGrid, PathChangesBetweenRevolutions)
{
    const WrsGrid grid;
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const double period = sat.nodalPeriod();
    const SceneId rev0 = grid.sceneAt(sat, 100.0);
    const SceneId rev1 = grid.sceneAt(sat, 100.0 + period);
    EXPECT_NE(rev0.path, rev1.path);
}

TEST(WrsGrid, OneDayCoversAboutFifteenPaths)
{
    const WrsGrid grid;
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    std::set<int> paths;
    for (double t = 0.0; t < util::kSecondsPerDay; t += 60.0) {
        paths.insert(grid.sceneAt(sat, t).path);
    }
    // ~14.5 revolutions per day; node-crossing samples may add one more.
    EXPECT_GE(paths.size(), 14U);
    EXPECT_LE(paths.size(), 16U);
}

TEST(WrsGrid, FlatIndexIsBijective)
{
    const WrsGrid grid(7, 11);
    std::set<std::size_t> seen;
    for (int p = 0; p < 7; ++p) {
        for (int r = 0; r < 11; ++r) {
            seen.insert(grid.flatIndex({p, r}));
        }
    }
    EXPECT_EQ(seen.size(), 77U);
    EXPECT_EQ(*seen.rbegin(), 76U);
}

TEST(WrsGrid, CustomDimensions)
{
    const WrsGrid grid(10, 20);
    EXPECT_EQ(grid.sceneCount(), 200U);
}

} // namespace
} // namespace kodan::sense
