/** @file Unit tests for frame capture scheduling. */

#include <gtest/gtest.h>

#include "sense/capture.hpp"
#include "util/units.hpp"

namespace kodan::sense {
namespace {

TEST(FrameCapture, DeadlineMatchesPaper)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    // The paper quotes a ~22 s frame deadline for the Landsat-8 case.
    EXPECT_NEAR(capture.frameDeadline(sat), 22.2, 0.3);
}

TEST(FrameCapture, FramesPerDayNearPaperValue)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    // Paper Fig. 4: ~3600 observable frames per satellite per day.
    EXPECT_NEAR(capture.framesPerDay(sat), 3890.0, 100.0);
}

TEST(FrameCapture, EventCountMatchesCadence)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const double deadline = capture.frameDeadline(sat);
    const auto frames = capture.capture(sat, 3, 0.0, 100.0 * deadline);
    EXPECT_EQ(frames.size(), 100U);
    for (const auto &frame : frames) {
        EXPECT_EQ(frame.satellite, 3U);
    }
}

TEST(FrameCapture, EventsAreEquallySpaced)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto frames = capture.capture(sat, 0, 0.0, 500.0);
    ASSERT_GE(frames.size(), 3U);
    const double gap = frames[1].time - frames[0].time;
    for (std::size_t i = 2; i < frames.size(); ++i) {
        EXPECT_NEAR(frames[i].time - frames[i - 1].time, gap, 1e-9);
    }
}

TEST(FrameCapture, CentersMoveAlongTrack)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto frames = capture.capture(sat, 0, 0.0, 200.0);
    ASSERT_GE(frames.size(), 2U);
    const double moved = orbit::greatCircleAngle(frames[0].center,
                                                 frames[1].center) *
                         util::kEarthRadius;
    // One frame length apart (~150 km).
    EXPECT_NEAR(moved, 150.0e3, 15.0e3);
}

TEST(FrameCapture, EmptyWindow)
{
    const FrameCapture capture(CameraModel::landsat8Multispectral(),
                               WrsGrid());
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    EXPECT_TRUE(capture.capture(sat, 0, 50.0, 50.0).empty());
}

} // namespace
} // namespace kodan::sense
