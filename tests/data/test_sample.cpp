/** @file Unit tests for frame samples and the dataset generator. */

#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "util/units.hpp"

namespace kodan::data {
namespace {

DatasetGenerator
smallGenerator()
{
    DatasetParams params;
    params.grid = 24;
    params.seed = 99;
    return DatasetGenerator(GeoModel(), params);
}

TEST(FrameSample, ShapesMatchGrid)
{
    auto gen = smallGenerator();
    const FrameSample frame = gen.makeFrame(0.3, 0.5, 0.0);
    EXPECT_EQ(frame.grid, 24);
    EXPECT_EQ(frame.features.size(), 24U * 24U * kFeatureDim);
    EXPECT_EQ(frame.cloudy.size(), 576U);
    EXPECT_EQ(frame.terrain.size(), 576U);
    EXPECT_EQ(frame.cellCount(), 576U);
}

TEST(FrameSample, HighValueFractionConsistent)
{
    auto gen = smallGenerator();
    const FrameSample frame = gen.makeFrame(0.1, -0.7, 0.0);
    std::size_t clear = 0;
    for (int r = 0; r < frame.grid; ++r) {
        for (int c = 0; c < frame.grid; ++c) {
            if (!frame.cloudyAt(r, c)) {
                ++clear;
            }
        }
    }
    EXPECT_DOUBLE_EQ(frame.highValueFraction(),
                     static_cast<double>(clear) / 576.0);
}

TEST(FrameSample, EmptyFrameHasZeroValue)
{
    FrameSample frame;
    EXPECT_DOUBLE_EQ(frame.highValueFraction(), 0.0);
}

TEST(FrameSample, AccessorsMatchStorage)
{
    auto gen = smallGenerator();
    const FrameSample frame = gen.makeFrame(0.0, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(frame.featureAt(3, 5, 2),
                     frame.features[(3 * 24 + 5) * kFeatureDim + 2]);
}

TEST(DatasetGenerator, GlobalSamplingProducesRequestedCount)
{
    auto gen = smallGenerator();
    const auto frames = gen.generateGlobal(10);
    EXPECT_EQ(frames.size(), 10U);
    // Times advance by the configured interval.
    EXPECT_DOUBLE_EQ(frames[1].time - frames[0].time, 22.0);
}

TEST(DatasetGenerator, GlobalSamplingCoversBothHemispheres)
{
    auto gen = smallGenerator();
    const auto frames = gen.generateGlobal(40);
    int north = 0;
    for (const auto &frame : frames) {
        if (frame.center_lat > 0.0) {
            ++north;
        }
    }
    EXPECT_GT(north, 5);
    EXPECT_LT(north, 35);
}

TEST(DatasetGenerator, PrevalenceNearCalibration)
{
    auto gen = smallGenerator();
    const auto frames = gen.generateGlobal(60);
    double high = 0.0;
    for (const auto &frame : frames) {
        high += frame.highValueFraction();
    }
    // Global cloud fraction 0.52 -> prevalence ~0.48.
    EXPECT_NEAR(high / 60.0, 0.48, 0.08);
}

TEST(DatasetGenerator, AlongTrackFollowsOrbit)
{
    auto gen = smallGenerator();
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    const auto frames = gen.generateAlongTrack(sat, 22.0, 5, 0.0);
    ASSERT_EQ(frames.size(), 5U);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const auto point = sat.subsatellitePoint(i * 22.0);
        EXPECT_NEAR(frames[i].center_lat, point.latitude, 1e-9);
        EXPECT_NEAR(frames[i].center_lon, point.longitude, 1e-9);
    }
}

TEST(DatasetGenerator, DeterministicForSameSeed)
{
    auto gen_a = smallGenerator();
    auto gen_b = smallGenerator();
    const auto fa = gen_a.generateGlobal(3);
    const auto fb = gen_b.generateGlobal(3);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(fa[i].features, fb[i].features);
        EXPECT_EQ(fa[i].cloudy, fb[i].cloudy);
    }
}

TEST(DatasetGenerator, PolarFrameIsWellDefined)
{
    auto gen = smallGenerator();
    const FrameSample frame =
        gen.makeFrame(util::degToRad(89.0), 0.0, 0.0);
    EXPECT_EQ(frame.cellCount(), 576U);
    // Polar frames are ice.
    int ice = 0;
    for (auto t : frame.terrain) {
        if (static_cast<Terrain>(t) == Terrain::Ice) {
            ++ice;
        }
    }
    EXPECT_GT(ice, 500);
}

} // namespace
} // namespace kodan::data
