/** @file Unit tests for frame tiling and decimation. */

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.hpp"
#include "data/tiler.hpp"

namespace kodan::data {
namespace {

FrameSample
testFrame(int grid = 44)
{
    DatasetParams params;
    params.grid = grid;
    params.seed = 5;
    DatasetGenerator gen(GeoModel{}, params);
    return gen.makeFrame(0.4, 1.2, 0.0);
}

TEST(Tiler, ProducesTilesPerFrame)
{
    const FrameSample frame = testFrame();
    for (int t : {1, 2, 3, 4, 6, 11}) {
        const Tiler tiler(t);
        EXPECT_EQ(tiler.tile(frame).size(),
                  static_cast<std::size_t>(t) * t);
        EXPECT_EQ(tiler.tilesPerFrame(), t * t);
    }
}

TEST(Tiler, TilesPartitionTheFrameExactly)
{
    const FrameSample frame = testFrame(44);
    const Tiler tiler(3); // 44 not divisible by 3: uneven tiles
    const auto tiles = tiler.tile(frame);
    int covered = 0;
    for (const auto &tile : tiles) {
        covered += tile.cellCount();
        EXPECT_GE(tile.cell_rows, 14);
        EXPECT_LE(tile.cell_rows, 15);
    }
    EXPECT_EQ(covered, 44 * 44);
}

TEST(Tiler, TileStatsMatchDirectComputation)
{
    const FrameSample frame = testFrame(24);
    const Tiler tiler(2);
    const auto tiles = tiler.tile(frame);
    const auto &tile = tiles[0];
    double sum = 0.0;
    for (int r = 0; r < tile.cell_rows; ++r) {
        for (int c = 0; c < tile.cell_cols; ++c) {
            sum += frame.featureAt(tile.cell_row0 + r, tile.cell_col0 + c,
                                   0);
        }
    }
    EXPECT_NEAR(tile.feature_mean[0], sum / tile.cellCount(), 1e-9);
}

TEST(Tiler, HighValueFractionMatchesTruth)
{
    const FrameSample frame = testFrame(24);
    const Tiler tiler(2);
    const auto tiles = tiler.tile(frame);
    double weighted = 0.0;
    for (const auto &tile : tiles) {
        weighted += tile.high_value_fraction * tile.cellCount();
    }
    EXPECT_NEAR(weighted / frame.cellCount(), frame.highValueFraction(),
                1e-9);
}

TEST(Tiler, LabelVectorIsNormalized)
{
    const FrameSample frame = testFrame();
    const Tiler tiler(4);
    for (const auto &tile : tiler.tile(frame)) {
        double terrain_sum = 0.0;
        for (int k = 0; k < kTerrainCount; ++k) {
            ASSERT_GE(tile.label_vector[k], 0.0);
            terrain_sum += tile.label_vector[k];
        }
        EXPECT_NEAR(terrain_sum, 1.0, 1e-9);
        EXPECT_NEAR(tile.label_vector[kTerrainCount],
                    1.0 - tile.high_value_fraction, 1e-9);
    }
}

TEST(Tiler, BlockCloudFractionAveragesTruth)
{
    const FrameSample frame = testFrame(32);
    const Tiler tiler(2); // 16 cells per tile side -> 2x2 cells per block
    const auto tiles = tiler.tile(frame);
    const auto &tile = tiles[0];
    // Recompute block 0's cloud fraction by hand.
    double cloudy = 0.0;
    int count = 0;
    for (int r = 0; r < tile.cell_rows; ++r) {
        for (int c = 0; c < tile.cell_cols; ++c) {
            if (tile.blockOfCell(r, c) == 0) {
                cloudy += tile.cloudyLocal(r, c) ? 1.0 : 0.0;
                ++count;
            }
        }
    }
    ASSERT_GT(count, 0);
    EXPECT_NEAR(tile.block_cloud_fraction[0], cloudy / count, 1e-6);
}

TEST(Tiler, DecimationAveragesFeatures)
{
    const FrameSample frame = testFrame(32);
    const Tiler tiler(2);
    const auto tiles = tiler.tile(frame);
    const auto &tile = tiles[0];
    double sum = 0.0;
    int count = 0;
    for (int r = 0; r < tile.cell_rows; ++r) {
        for (int c = 0; c < tile.cell_cols; ++c) {
            if (tile.blockOfCell(r, c) == 0) {
                sum += frame.featureAt(tile.cell_row0 + r,
                                       tile.cell_col0 + c, 3);
                ++count;
            }
        }
    }
    EXPECT_NEAR(tile.block_features[3], sum / count, 1e-4);
}

TEST(Tiler, LazyStatsAndDecimateMatchEagerTilingBitExactly)
{
    const FrameSample frame = testFrame(44);
    const Tiler tiler(3); // uneven tiles exercise the geometry paths
    const auto eager = tiler.tile(frame);

    // Warm the lazy vector with an eager pass first so statsInto must
    // overwrite recycled state (populated block arrays, truth fields),
    // as arena slots do in the pipeline.
    std::vector<TileData> lazy;
    tiler.tileInto(frame, lazy);
    tiler.statsInto(frame, lazy);

    ASSERT_EQ(lazy.size(), eager.size());
    for (std::size_t i = 0; i < lazy.size(); ++i) {
        TileData &tile = lazy[i];
        // Stats are bit-identical; block arrays are the
        // not-yet-decimated sentinel; truth fields are zeroed.
        for (int ch = 0; ch < kFeatureDim; ++ch) {
            EXPECT_EQ(tile.feature_mean[ch], eager[i].feature_mean[ch]);
            EXPECT_EQ(tile.feature_std[ch], eager[i].feature_std[ch]);
        }
        EXPECT_TRUE(tile.block_features.empty());
        EXPECT_TRUE(tile.block_cloud_fraction.empty());
        EXPECT_EQ(tile.high_value_fraction, 0.0);
        for (double v : tile.label_vector) {
            EXPECT_EQ(v, 0.0);
        }
        // On-demand decimation reproduces the eager block arrays
        // bit-exactly, and is idempotent.
        for (int pass = 0; pass < 2; ++pass) {
            Tiler::decimate(tile);
            ASSERT_EQ(tile.block_features.size(),
                      eager[i].block_features.size());
            for (std::size_t b = 0; b < tile.block_features.size(); ++b) {
                EXPECT_EQ(tile.block_features[b],
                          eager[i].block_features[b]);
            }
            ASSERT_EQ(tile.block_cloud_fraction.size(),
                      eager[i].block_cloud_fraction.size());
            for (std::size_t b = 0; b < tile.block_cloud_fraction.size();
                 ++b) {
                EXPECT_EQ(tile.block_cloud_fraction[b],
                          eager[i].block_cloud_fraction[b]);
            }
        }
    }
}

TEST(Tiler, UpsamplingWhenTileSmallerThanBlockGrid)
{
    // 16-cell frame at T=4 -> 4 cells per tile side < 8 blocks per side.
    const FrameSample frame = testFrame(16);
    const Tiler tiler(4);
    const auto tiles = tiler.tile(frame);
    for (const auto &tile : tiles) {
        EXPECT_EQ(tile.cell_rows, 4);
        for (int b = 0; b < kBlocksPerTile; ++b) {
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                ASSERT_TRUE(std::isfinite(
                    tile.block_features[b * kFeatureDim + ch]));
            }
            ASSERT_GE(tile.block_cloud_fraction[b], 0.0);
            ASSERT_LE(tile.block_cloud_fraction[b], 1.0);
        }
    }
}

TEST(Tiler, BlockInputLayout)
{
    const FrameSample frame = testFrame(32);
    const Tiler tiler(2);
    const auto tiles = tiler.tile(frame);
    const auto &tile = tiles[1];
    double input[kBlockInputDim];
    tile.blockInput(5, input);
    // Visual channels 0-6, then the edge channel 9, then tile means.
    for (int ch = 0; ch < 7; ++ch) {
        EXPECT_DOUBLE_EQ(input[ch],
                         tile.block_features[5 * kFeatureDim + ch]);
    }
    EXPECT_DOUBLE_EQ(input[7], tile.block_features[5 * kFeatureDim + 9]);
    for (int ch = 0; ch < kFeatureDim; ++ch) {
        EXPECT_DOUBLE_EQ(input[kVisualDim + ch], tile.feature_mean[ch]);
    }
}

TEST(Tiler, PaperTileCounts)
{
    const auto &counts = Tiler::paperTileCounts();
    EXPECT_EQ(counts.size(), 4U);
    EXPECT_EQ(counts[0], 121);
    EXPECT_EQ(counts[3], 9);
    for (int count : counts) {
        const int side = static_cast<int>(std::lround(std::sqrt(count)));
        EXPECT_EQ(side * side, count) << "paper counts are squares";
    }
}

/** Property sweep: every tiling covers every cell exactly once. */
class TilerPartition : public ::testing::TestWithParam<int>
{
};

TEST_P(TilerPartition, EveryCellInExactlyOneTile)
{
    const FrameSample frame = testFrame(44);
    const Tiler tiler(GetParam());
    std::vector<int> covered(frame.cellCount(), 0);
    for (const auto &tile : tiler.tile(frame)) {
        for (int r = 0; r < tile.cell_rows; ++r) {
            for (int c = 0; c < tile.cell_cols; ++c) {
                ++covered[(tile.cell_row0 + r) * frame.grid +
                          (tile.cell_col0 + c)];
            }
        }
    }
    for (int count : covered) {
        ASSERT_EQ(count, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Tilings, TilerPartition,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 11));

} // namespace
} // namespace kodan::data
