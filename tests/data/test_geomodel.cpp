/** @file Unit tests for the procedural geospatial world. */

#include <gtest/gtest.h>

#include <cmath>

#include "data/geomodel.hpp"
#include "util/units.hpp"

namespace kodan::data {
namespace {

using util::degToRad;

double
measuredCloudFraction(const GeoModel &geo, double time = 0.0)
{
    util::Rng rng(123);
    int cloudy = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const double lat = std::asin(2.0 * rng.uniform() - 1.0);
        const double lon = rng.uniform(-util::kPi, util::kPi);
        if (geo.cloudyAt(lat, lon, time)) {
            ++cloudy;
        }
    }
    return static_cast<double>(cloudy) / n;
}

TEST(GeoModel, CloudFractionCalibrated)
{
    GeoModel geo;
    EXPECT_NEAR(measuredCloudFraction(geo), 0.52, 0.04);
}

TEST(GeoModel, CloudFractionParameterized)
{
    GeoModelParams params;
    params.cloud_fraction = 0.67; // MODIS global average
    GeoModel geo(params);
    EXPECT_NEAR(measuredCloudFraction(geo), 0.67, 0.04);
}

TEST(GeoModel, CloudCalibrationHoldsAtLaterTimes)
{
    GeoModel geo;
    EXPECT_NEAR(measuredCloudFraction(geo, 43200.0), 0.52, 0.06);
}

TEST(GeoModel, TerrainIsDeterministic)
{
    GeoModel a;
    GeoModel b;
    for (double lat = -1.4; lat < 1.4; lat += 0.17) {
        for (double lon = -3.0; lon < 3.0; lon += 0.37) {
            EXPECT_EQ(a.terrainAt(lat, lon), b.terrainAt(lat, lon));
        }
    }
}

TEST(GeoModel, PolesAreIce)
{
    GeoModel geo;
    EXPECT_EQ(geo.terrainAt(degToRad(85.0), 0.3), Terrain::Ice);
    EXPECT_EQ(geo.terrainAt(degToRad(-85.0), 2.1), Terrain::Ice);
}

TEST(GeoModel, OceanDominatesSurface)
{
    GeoModel geo;
    util::Rng rng(7);
    int ocean = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const double lat = std::asin(2.0 * rng.uniform() - 1.0);
        const double lon = rng.uniform(-util::kPi, util::kPi);
        if (geo.terrainAt(lat, lon) == Terrain::Ocean) {
            ++ocean;
        }
    }
    const double fraction = static_cast<double>(ocean) / n;
    EXPECT_GT(fraction, 0.40);
    EXPECT_LT(fraction, 0.70);
}

TEST(GeoModel, AllTerrainClassesOccur)
{
    GeoModel geo;
    util::Rng rng(8);
    std::array<int, kTerrainCount> counts{};
    for (int i = 0; i < 20000; ++i) {
        const double lat = std::asin(2.0 * rng.uniform() - 1.0);
        const double lon = rng.uniform(-util::kPi, util::kPi);
        ++counts[static_cast<int>(geo.terrainAt(lat, lon))];
    }
    for (int k = 0; k < kTerrainCount; ++k) {
        EXPECT_GT(counts[k], 0) << terrainName(static_cast<Terrain>(k));
    }
}

TEST(GeoModel, CloudFieldEvolvesOverTime)
{
    GeoModel geo;
    int changed = 0;
    util::Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        const double lat = rng.uniform(-1.0, 1.0);
        const double lon = rng.uniform(-3.0, 3.0);
        if (geo.cloudyAt(lat, lon, 0.0) !=
            geo.cloudyAt(lat, lon, 24.0 * 3600.0)) {
            ++changed;
        }
    }
    EXPECT_GT(changed, 50);
}

TEST(GeoModel, OpacityBoundsRespected)
{
    GeoModel geo;
    util::Rng rng(10);
    for (int i = 0; i < 1000; ++i) {
        const double lat = rng.uniform(-1.5, 1.5);
        const double lon = rng.uniform(-3.1, 3.1);
        const double op = geo.cloudOpacityAt(lat, lon, 0.0);
        ASSERT_GE(op, 0.0);
        ASSERT_LE(op, 1.0);
    }
}

TEST(GeoModel, CloudBrightensDarkTerrain)
{
    GeoModel geo;
    util::Rng noise_free(11);
    GeoModelParams quiet;
    quiet.sensor_noise = 0.0;
    GeoModel geo_quiet(quiet);
    // Find an ocean point that is cloudy and one that is clear; the
    // cloudy one must be brighter in band 0.
    double clear_b0 = -1.0;
    double cloudy_b0 = -1.0;
    util::Rng rng(12);
    for (int i = 0; i < 20000 && (clear_b0 < 0.0 || cloudy_b0 < 0.0);
         ++i) {
        const double lat = rng.uniform(-0.9, 0.9);
        const double lon = rng.uniform(-util::kPi, util::kPi);
        if (geo_quiet.terrainAt(lat, lon) != Terrain::Ocean) {
            continue;
        }
        const double op = geo_quiet.cloudOpacityAt(lat, lon, 0.0);
        const auto f = geo_quiet.featuresAt(lat, lon, 0.0, noise_free);
        if (op <= 0.0 && clear_b0 < 0.0) {
            clear_b0 = f[0];
        } else if (op >= 1.0 && cloudy_b0 < 0.0) {
            cloudy_b0 = f[0];
        }
    }
    ASSERT_GE(clear_b0, 0.0);
    ASSERT_GE(cloudy_b0, 0.0);
    EXPECT_GT(cloudy_b0, clear_b0 + 0.3);
}

TEST(GeoModel, SignaturesDiffer)
{
    const auto ocean = GeoModel::terrainSignature(Terrain::Ocean);
    const auto ice = GeoModel::terrainSignature(Terrain::Ice);
    const auto cloud = GeoModel::cloudSignature(Terrain::Ocean);
    EXPECT_GT(ice[0], ocean[0] + 0.5);
    EXPECT_GT(cloud[0], 0.7);
    // Ice and cloud-over-ice are both bright but differ in texture and
    // thermal channels (the hard snow/cloud confusion).
    const auto cloud_ice = GeoModel::cloudSignature(Terrain::Ice);
    EXPECT_LT(std::fabs(cloud_ice[0] - ice[0]), 0.15);
    EXPECT_NE(cloud_ice[6], ice[6]);
}

TEST(GeoModel, LegacyDomainIsDifferentWorld)
{
    const GeoModelParams legacy = GeoModelParams::legacyDomain();
    const GeoModelParams standard;
    EXPECT_NE(legacy.seed, standard.seed);
    EXPECT_GT(legacy.cloud_fraction, standard.cloud_fraction);
    EXPECT_NE(legacy.band_gain, standard.band_gain);

    // Different terrain layout and calibrated cloud climate.
    const GeoModel legacy_world(legacy);
    EXPECT_NEAR(measuredCloudFraction(legacy_world),
                legacy.cloud_fraction, 0.05);
}

TEST(GeoModel, BandGainShiftsVisualChannelsOnly)
{
    GeoModelParams shifted;
    shifted.sensor_noise = 0.0;
    shifted.band_gain = 1.2;
    shifted.band_offset = 0.1;
    GeoModelParams plain = shifted;
    plain.band_gain = 1.0;
    plain.band_offset = 0.0;

    const GeoModel a(shifted);
    const GeoModel b(plain);
    util::Rng rng_a(1);
    util::Rng rng_b(1);
    const auto fa = a.featuresAt(0.4, 0.8, 0.0, rng_a);
    const auto fb = b.featuresAt(0.4, 0.8, 0.0, rng_b);
    for (int c = 0; c < 7; ++c) {
        EXPECT_NEAR(fa[c], 1.2 * fb[c] + 0.1, 1e-12) << "channel " << c;
    }
    // Ancillary priors (7, 8) are calibration-independent.
    EXPECT_NEAR(fa[7], fb[7], 1e-12);
    EXPECT_NEAR(fa[8], fb[8], 1e-12);
}

TEST(GeoModel, SensorNoiseAppliedPerChannel)
{
    GeoModel geo;
    util::Rng rng_a(13);
    util::Rng rng_b(14);
    const auto fa = geo.featuresAt(0.3, 0.4, 0.0, rng_a);
    const auto fb = geo.featuresAt(0.3, 0.4, 0.0, rng_b);
    int differing = 0;
    for (int c = 0; c < kFeatureDim; ++c) {
        if (fa[c] != fb[c]) {
            ++differing;
        }
    }
    EXPECT_EQ(differing, kFeatureDim);
}

} // namespace
} // namespace kodan::data
