/**
 * @file
 * The staged data plane's output contract: for the same frames,
 * pipeline::PipelineRuntime must produce BIT-IDENTICAL FrameReports,
 * byte-identical journal exports, and identical deterministic metrics
 * to core::Runtime::processFrames — at 1, 4, and 16 workers, across
 * burst sizes, under slot-recycling pressure, and across repeated
 * runs of one (warmed) pipeline instance. Doubles are compared
 * exactly on purpose: the stage entry points are shared code and the
 * burst regrouping is designed to be bit-transparent, so anything
 * weaker would let nondeterminism hide.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../core/fixture.hpp"
#include "core/kodan.hpp"
#include "pipeline/loadgen.hpp"
#include "pipeline/pipeline_runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace kodan::pipeline {
namespace {

using core::FrameReport;
using core::Runtime;

/** Restores thread default and turns recording off when a test exits. */
class RecordingGuard
{
  public:
    RecordingGuard()
    {
        telemetry::setEnabled(true);
        telemetry::setJournalEnabled(true);
        telemetry::resetAll();
    }
    ~RecordingGuard()
    {
        telemetry::resetAll();
        telemetry::setEnabled(false);
        telemetry::setJournalEnabled(false);
        util::setGlobalThreads(0);
    }
};

/**
 * A runtime whose logic exercises every action kind and several zoo
 * models, so burst inference has real cross-frame, cross-model
 * batches to regroup.
 */
Runtime
mixedRuntime()
{
    const auto &pipeline = kodan::testing::SharedPipeline::instance();
    const int contexts = pipeline.shared.partition.context_count;
    const int models =
        static_cast<int>(pipeline.app4.zoo.entries.size());
    core::SelectionLogic logic;
    logic.tiles_per_side = 6;
    logic.per_context.reserve(static_cast<std::size_t>(contexts));
    for (int c = 0; c < contexts; ++c) {
        core::Action action;
        switch (c % 4) {
          case 0:
            action.kind = core::ActionKind::Discard;
            break;
          case 1:
            action.kind = core::ActionKind::Downlink;
            break;
          default:
            action.kind = core::ActionKind::RunModel;
            action.model = c % models;
            break;
        }
        logic.per_context.push_back(action);
    }
    return Runtime(logic, pipeline.shared.engine.get(),
                   &pipeline.app4.zoo, hw::Target::Orin15W);
}

/** Everything one instrumented run produces. */
struct RunOutputs
{
    FrameReport report;
    std::string journal;
    telemetry::RegistrySnapshot metrics;
    telemetry::TimeSeriesSnapshot timeseries;
};

std::string
journalBytes()
{
    std::ostringstream os;
    telemetry::writeJournalJsonl(telemetry::collectJournal(),
                                 telemetry::journalDroppedEvents(), os);
    return os.str();
}

RunOutputs
captureOutputs(const FrameReport &report)
{
    RunOutputs out;
    out.report = report;
    out.journal = journalBytes();
    out.metrics = telemetry::registry().snapshot();
    out.timeseries = telemetry::timeSeriesSnapshot();
    return out;
}

RunOutputs
runBatch(const Runtime &runtime,
         const std::vector<data::FrameSample> &frames, int threads)
{
    telemetry::resetAll();
    util::setGlobalThreads(threads);
    return captureOutputs(runtime.processFrames(frames));
}

RunOutputs
runPipeline(const Runtime &runtime,
            const std::vector<data::FrameSample> &frames,
            const PipelineRuntime::Options &options)
{
    telemetry::resetAll();
    PipelineRuntime pipeline(runtime, options);
    return captureOutputs(pipeline.processFrames(frames));
}

void
expectSameReport(const FrameReport &a, const FrameReport &b)
{
    EXPECT_EQ(a.compute_time, b.compute_time);
    EXPECT_EQ(a.product_fraction, b.product_fraction);
    EXPECT_EQ(a.product_high_fraction, b.product_high_fraction);
    EXPECT_EQ(a.tiles_discarded, b.tiles_discarded);
    EXPECT_EQ(a.tiles_downlinked, b.tiles_downlinked);
    EXPECT_EQ(a.tiles_modeled, b.tiles_modeled);
    EXPECT_EQ(a.cells.tp(), b.cells.tp());
    EXPECT_EQ(a.cells.fp(), b.cells.fp());
    EXPECT_EQ(a.cells.tn(), b.cells.tn());
    EXPECT_EQ(a.cells.fn(), b.cells.fn());
}

/**
 * Metric equality modulo wall clocks and call batching: every
 * non-timer sample must be bit-identical (name set included) — that
 * covers all the semantic counters, gauges, histograms, and notably
 * `ml.mlp.forward_batch.rows` (the total rows pushed through the
 * network, which burst regrouping must not change). Timers must agree
 * on name; `runtime.*` timers also on call count (one per frame/one
 * per batch in both paths). Kernel-layer timers (`ml.*`) count calls,
 * and fewer-but-larger forwardBatch calls are the very point of burst
 * batching, so their counts are exempt along with every timer's
 * measured seconds.
 */
void
expectSameMetrics(const telemetry::RegistrySnapshot &a,
                  const telemetry::RegistrySnapshot &b)
{
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (std::size_t i = 0; i < a.metrics.size(); ++i) {
        const auto &ma = a.metrics[i];
        const auto &mb = b.metrics[i];
        SCOPED_TRACE(ma.name);
        EXPECT_EQ(ma.name, mb.name);
        EXPECT_EQ(static_cast<int>(ma.kind), static_cast<int>(mb.kind));
        if (ma.kind == telemetry::MetricSample::Kind::Timer) {
            if (ma.name.rfind("runtime.", 0) == 0) {
                EXPECT_EQ(ma.count, mb.count);
            }
            continue; // durations are wall clock
        }
        EXPECT_EQ(ma.count, mb.count);
        EXPECT_EQ(ma.sum, mb.sum);
        EXPECT_EQ(ma.max, mb.max);
        EXPECT_EQ(ma.edges, mb.edges);
        EXPECT_EQ(ma.buckets, mb.buckets);
    }
}

void
expectSameTimeSeries(const telemetry::TimeSeriesSnapshot &a,
                     const telemetry::TimeSeriesSnapshot &b)
{
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t i = 0; i < a.series.size(); ++i) {
        const auto &sa = a.series[i];
        const auto &sb = b.series[i];
        SCOPED_TRACE(sa.name);
        EXPECT_EQ(sa.name, sb.name);
        EXPECT_EQ(sa.dropped_bins, sb.dropped_bins);
        ASSERT_EQ(sa.bins.size(), sb.bins.size());
        for (std::size_t j = 0; j < sa.bins.size(); ++j) {
            EXPECT_EQ(sa.bins[j].index, sb.bins[j].index);
            EXPECT_EQ(sa.bins[j].count, sb.bins[j].count);
            EXPECT_EQ(sa.bins[j].sum, sb.bins[j].sum);
            EXPECT_EQ(sa.bins[j].min, sb.bins[j].min);
            EXPECT_EQ(sa.bins[j].max, sb.bins[j].max);
        }
    }
}

void
expectSameOutputs(const RunOutputs &a, const RunOutputs &b)
{
    expectSameReport(a.report, b.report);
    EXPECT_EQ(a.journal, b.journal);
    expectSameMetrics(a.metrics, b.metrics);
    expectSameTimeSeries(a.timeseries, b.timeseries);
}

TEST(DataPlane, BitIdenticalToBatchPathAcrossWorkerCounts)
{
    RecordingGuard guard;
    const Runtime runtime = mixedRuntime();
    const auto &frames =
        kodan::testing::SharedPipeline::instance().shared.val;

    const RunOutputs batch = runBatch(runtime, frames, 1);
    ASSERT_FALSE(batch.journal.empty());
    ASSERT_GT(batch.report.tiles_modeled, 0);
    ASSERT_GT(batch.report.tiles_discarded, 0);
    ASSERT_GT(batch.report.tiles_downlinked, 0);

    for (int workers : {1, 4, 16}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        PipelineRuntime::Options options;
        options.workers = workers;
        const RunOutputs staged =
            runPipeline(runtime, frames, options);
        expectSameOutputs(staged, batch);
    }
}

TEST(DataPlane, BurstSizeAndSlotPressureDoNotChangeBits)
{
    RecordingGuard guard;
    const Runtime runtime = mixedRuntime();
    const auto &frames =
        kodan::testing::SharedPipeline::instance().shared.val;
    const RunOutputs batch = runBatch(runtime, frames, 1);

    for (const auto &[burst, slots] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 2}, {3, 4}, {64, 64}}) {
        SCOPED_TRACE("burst " + std::to_string(burst) + ", slots " +
                     std::to_string(slots));
        PipelineRuntime::Options options;
        options.workers = 4;
        options.burst = burst;
        // Fewer slots than frames forces freelist backpressure and
        // slot recycling mid-run.
        options.slots_per_lane = slots;
        options.ring_capacity = slots;
        const RunOutputs staged =
            runPipeline(runtime, frames, options);
        expectSameOutputs(staged, batch);
    }
}

TEST(DataPlane, WarmedPipelineStaysBitIdenticalAcrossRuns)
{
    RecordingGuard guard;
    const Runtime runtime = mixedRuntime();
    const auto &frames =
        kodan::testing::SharedPipeline::instance().shared.val;
    const RunOutputs batch = runBatch(runtime, frames, 1);

    PipelineRuntime::Options options;
    options.workers = 2;
    options.slots_per_lane = 4;
    PipelineRuntime pipeline(runtime, options);
    for (int run = 0; run < 3; ++run) {
        SCOPED_TRACE("run " + std::to_string(run));
        telemetry::resetAll();
        const RunOutputs staged =
            captureOutputs(pipeline.processFrames(frames));
        expectSameOutputs(staged, batch);
    }
}

TEST(DataPlane, EmptyBatchEmitsNothing)
{
    RecordingGuard guard;
    const Runtime runtime = mixedRuntime();
    PipelineRuntime pipeline(runtime);
    telemetry::resetAll();
    const std::vector<data::FrameSample> none;
    const FrameReport report = pipeline.processFrames(none);
    expectSameReport(report, FrameReport{});
    EXPECT_TRUE(telemetry::collectJournal().empty());
    const auto snapshot = telemetry::registry().snapshot();
    if (const auto *batched =
            snapshot.find("runtime.frames.batched")) {
        EXPECT_EQ(batched->count, 0);
    }
}

TEST(DataPlane, LoadGeneratorMatchesMaterializedCycledBatch)
{
    RecordingGuard guard;
    const Runtime runtime = mixedRuntime();
    const auto &pool =
        kodan::testing::SharedPipeline::instance().shared.val;
    const std::size_t total = pool.size() * 2 + 5;

    // Reference: the batch path over the explicitly materialized
    // cycled frame sequence.
    std::vector<data::FrameSample> cycled;
    cycled.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        cycled.push_back(pool[i % pool.size()]);
    }
    const RunOutputs batch = runBatch(runtime, cycled, 1);

    telemetry::resetAll();
    PipelineRuntime::Options options;
    options.workers = 4;
    PipelineRuntime pipeline(runtime, options);
    const LoadGenerator loadgen(pool);
    const LoadResult result = loadgen.run(pipeline, total);
    EXPECT_EQ(result.frames, total);
    EXPECT_GE(result.seconds, 0.0);
    const RunOutputs staged = captureOutputs(result.report);
    expectSameOutputs(staged, batch);
}

TEST(DataPlane, StatsModeAddsPipelineMetricsWithoutChangingResults)
{
    RecordingGuard guard;
    const Runtime runtime = mixedRuntime();
    const auto &frames =
        kodan::testing::SharedPipeline::instance().shared.val;
    const RunOutputs batch = runBatch(runtime, frames, 1);

    PipelineRuntime::Options options;
    options.workers = 4;
    options.stats = true;
    const RunOutputs staged = runPipeline(runtime, frames, options);
    // The result and the per-frame journal lanes are still identical;
    // only the telemetry surface grows.
    expectSameReport(staged.report, batch.report);
    // Registration happens at the first stats-gated emission, so the
    // names existing at all proves the stats path ran.
    EXPECT_NE(staged.metrics.find("pipeline.ring.infer.depth"), nullptr);
    const auto *stage_timer =
        staged.metrics.find("pipeline.stage.infer_s");
    ASSERT_NE(stage_timer, nullptr);
    EXPECT_GT(stage_timer->count, 0);
    bool saw_depth_event = false;
    for (const auto &event : telemetry::collectJournal()) {
        if (event.type == "pipeline.ring.depth") {
            saw_depth_event = true;
            break;
        }
    }
    EXPECT_TRUE(saw_depth_event);
}

TEST(DataPlane, PlanCoversEveryStageExactlyOncePerLane)
{
    for (int workers = 1; workers <= 23; ++workers) {
        const StagePlan plan = StagePlan::build(workers);
        SCOPED_TRACE(std::to_string(workers) + " workers");
        EXPECT_EQ(plan.workers.size(),
                  static_cast<std::size_t>(workers));
        std::vector<std::vector<int>> covered(
            static_cast<std::size_t>(plan.lanes),
            std::vector<int>(kStageCount, 0));
        for (const WorkerSpan &span : plan.workers) {
            ASSERT_GE(span.lane, 0);
            ASSERT_LT(span.lane, plan.lanes);
            ASSERT_LE(span.first_stage, span.last_stage);
            for (int s = span.first_stage; s <= span.last_stage; ++s) {
                ++covered[static_cast<std::size_t>(span.lane)]
                         [static_cast<std::size_t>(s)];
            }
        }
        for (const auto &lane : covered) {
            for (int s = 0; s < kStageCount; ++s) {
                EXPECT_EQ(lane[static_cast<std::size_t>(s)], 1)
                    << "stage " << s;
            }
        }
    }
}

} // namespace
} // namespace kodan::pipeline
