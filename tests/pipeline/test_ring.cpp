/**
 * @file
 * Unit + concurrency suite for the SPSC stage ring: FIFO order,
 * capacity behavior, burst semantics, index wraparound, and a
 * producer/consumer stress run (the test to exercise under
 * KODAN_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "pipeline/ring.hpp"

namespace kodan::pipeline {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2U);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2U);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4U);
    EXPECT_EQ(SpscRing<int>(64).capacity(), 64U);
    EXPECT_EQ(SpscRing<int>(65).capacity(), 128U);
}

TEST(SpscRing, FifoOrderAndFullEmptyEdges)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.size(), 0U);
    int out = -1;
    EXPECT_FALSE(ring.pop(out));

    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(ring.push(i));
    }
    EXPECT_EQ(ring.size(), 4U);
    EXPECT_FALSE(ring.push(99));

    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, BurstTransfersArePartialAtTheEdges)
{
    SpscRing<int> ring(8);
    std::vector<int> items(12);
    std::iota(items.begin(), items.end(), 0);

    // Push 12 into capacity 8: the leading prefix fits.
    EXPECT_EQ(ring.pushBurst(items.data(), items.size()), 8U);
    int out[16];
    EXPECT_EQ(ring.popBurst(out, 3), 3U);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[2], 2);
    // Remainder retry: 4 more fit now.
    EXPECT_EQ(ring.pushBurst(items.data() + 8, 4), 3U);
    // Drain everything; order is the enqueue order.
    std::size_t total = 3;
    int expect = 3;
    std::size_t n = 0;
    while ((n = ring.popBurst(out, 16)) > 0) {
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i], expect++);
        }
        total += n;
    }
    EXPECT_EQ(total, 11U);
}

TEST(SpscRing, IndicesWrapAcrossManyLaps)
{
    // Free-running indices: push/pop far more items than the capacity
    // and confirm FIFO survives the wraps.
    SpscRing<std::uint32_t> ring(4);
    std::uint32_t next_in = 0;
    std::uint32_t next_out = 0;
    for (int lap = 0; lap < 1000; ++lap) {
        while (ring.push(next_in)) {
            ++next_in;
        }
        std::uint32_t v = 0;
        while (ring.pop(v)) {
            EXPECT_EQ(v, next_out++);
        }
    }
    EXPECT_EQ(next_in, next_out);
    EXPECT_GT(next_in, 3000U);
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesSequence)
{
    // Tiny capacity forces constant full/empty transitions — the
    // worst case for the cached-index fast paths.
    SpscRing<std::uint64_t> ring(8);
    constexpr std::uint64_t kItems = 200000;

    std::thread producer([&ring] {
        std::uint64_t next = 0;
        while (next < kItems) {
            if (ring.push(next)) {
                ++next;
            } else {
                std::this_thread::yield();
            }
        }
    });

    std::uint64_t expect = 0;
    std::uint64_t sum = 0;
    std::uint64_t burst[16];
    while (expect < kItems) {
        const std::size_t n = ring.popBurst(burst, 16);
        if (n == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(burst[i], expect++);
            sum += burst[i];
        }
    }
    producer.join();
    EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
    EXPECT_EQ(ring.size(), 0U);
}

} // namespace
} // namespace kodan::pipeline
