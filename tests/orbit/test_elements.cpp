/** @file Unit tests for orbital elements and the Kepler solver. */

#include <gtest/gtest.h>

#include <cmath>

#include "orbit/elements.hpp"
#include "util/units.hpp"

namespace kodan::orbit {
namespace {

using util::degToRad;
using util::kTwoPi;

TEST(OrbitalElements, Landsat8PeriodIsAbout99Minutes)
{
    const auto elems = OrbitalElements::landsat8();
    EXPECT_NEAR(elems.period() / 60.0, 98.8, 0.5);
}

TEST(OrbitalElements, CircularLeoAltitude)
{
    const auto elems = OrbitalElements::circularLeo(500.0e3, degToRad(51.6));
    EXPECT_NEAR(elems.semi_major_axis, util::kEarthRadius + 500.0e3, 1.0);
    EXPECT_DOUBLE_EQ(elems.eccentricity, 0.0);
}

TEST(OrbitalElements, HigherOrbitsAreSlower)
{
    const auto low = OrbitalElements::circularLeo(400.0e3, 0.9);
    const auto high = OrbitalElements::circularLeo(800.0e3, 0.9);
    EXPECT_GT(low.meanMotion(), high.meanMotion());
    EXPECT_LT(low.period(), high.period());
}

TEST(SunSynchronous, InclinationIsRetrogradeNearPolar)
{
    const double incl = sunSynchronousInclination(705.0e3);
    // Landsat 8 flies at ~98.2 degrees.
    EXPECT_NEAR(util::radToDeg(incl), 98.2, 0.5);
}

TEST(SunSynchronous, InclinationGrowsWithAltitude)
{
    EXPECT_LT(sunSynchronousInclination(500.0e3),
              sunSynchronousInclination(900.0e3));
}

TEST(SolveKepler, CircularOrbitIdentity)
{
    for (double m = 0.0; m < kTwoPi; m += 0.3) {
        EXPECT_NEAR(solveKepler(m, 0.0), m, 1e-12);
    }
}

TEST(SolveKepler, SatisfiesKeplersEquation)
{
    for (double ecc : {0.01, 0.1, 0.3, 0.7, 0.85}) {
        for (double m = 0.05; m < kTwoPi; m += 0.37) {
            const double e_anom = solveKepler(m, ecc);
            const double m_back = e_anom - ecc * std::sin(e_anom);
            EXPECT_NEAR(util::wrapTwoPi(m_back), util::wrapTwoPi(m), 1e-9)
                << "ecc=" << ecc << " M=" << m;
        }
    }
}

TEST(SolveKepler, WrapsLargeMeanAnomaly)
{
    const double e1 = solveKepler(0.5, 0.2);
    const double e2 = solveKepler(0.5 + 4.0 * kTwoPi, 0.2);
    EXPECT_NEAR(e1, e2, 1e-9);
}

/** Parameterized residual sweep across eccentricities. */
class KeplerResidual : public ::testing::TestWithParam<double>
{
};

TEST_P(KeplerResidual, ResidualBelowTolerance)
{
    const double ecc = GetParam();
    for (double m = 0.0; m < kTwoPi; m += 0.05) {
        const double e_anom = solveKepler(m, ecc);
        const double residual =
            e_anom - ecc * std::sin(e_anom) - util::wrapTwoPi(m);
        EXPECT_LT(std::fabs(residual), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Eccentricities, KeplerResidual,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5, 0.8, 0.9));

} // namespace
} // namespace kodan::orbit
