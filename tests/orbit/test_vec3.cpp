/** @file Unit tests for Vec3. */

#include <gtest/gtest.h>

#include "orbit/vec3.hpp"

namespace kodan::orbit {
namespace {

TEST(Vec3, Arithmetic)
{
    const Vec3 a{1.0, 2.0, 3.0};
    const Vec3 b{4.0, -5.0, 6.0};
    const Vec3 sum = a + b;
    EXPECT_DOUBLE_EQ(sum.x, 5.0);
    EXPECT_DOUBLE_EQ(sum.y, -3.0);
    EXPECT_DOUBLE_EQ(sum.z, 9.0);
    const Vec3 diff = a - b;
    EXPECT_DOUBLE_EQ(diff.x, -3.0);
    const Vec3 scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled.z, 6.0);
    const Vec3 left_scaled = 2.0 * a;
    EXPECT_DOUBLE_EQ(left_scaled.z, 6.0);
    const Vec3 neg = -a;
    EXPECT_DOUBLE_EQ(neg.x, -1.0);
    const Vec3 div = a / 2.0;
    EXPECT_DOUBLE_EQ(div.y, 1.0);
}

TEST(Vec3, DotAndCross)
{
    const Vec3 x{1.0, 0.0, 0.0};
    const Vec3 y{0.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
    const Vec3 z = x.cross(y);
    EXPECT_DOUBLE_EQ(z.x, 0.0);
    EXPECT_DOUBLE_EQ(z.y, 0.0);
    EXPECT_DOUBLE_EQ(z.z, 1.0);
    // Anticommutative.
    const Vec3 nz = y.cross(x);
    EXPECT_DOUBLE_EQ(nz.z, -1.0);
}

TEST(Vec3, NormAndNormalize)
{
    const Vec3 v{3.0, 4.0, 0.0};
    EXPECT_DOUBLE_EQ(v.normSq(), 25.0);
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    const Vec3 unit = v.normalized();
    EXPECT_NEAR(unit.norm(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(unit.x, 0.6);
}

TEST(Vec3, CrossIsOrthogonal)
{
    const Vec3 a{1.3, -2.7, 0.4};
    const Vec3 b{-0.2, 5.5, 1.9};
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

} // namespace
} // namespace kodan::orbit
