/** @file Unit tests for Walker-delta constellations. */

#include <gtest/gtest.h>

#include <set>

#include "orbit/elements.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace kodan::orbit {
namespace {

using util::degToRad;

TEST(Walker, CountAndStructure)
{
    const auto sats =
        walkerConstellation(24, 6, 1, 550.0e3, degToRad(53.0));
    ASSERT_EQ(sats.size(), 24U);
    std::set<double> raans;
    for (const auto &elems : sats) {
        raans.insert(elems.raan);
        EXPECT_NEAR(elems.semi_major_axis, util::kEarthRadius + 550.0e3,
                    1.0);
        EXPECT_NEAR(elems.inclination, degToRad(53.0), 1e-12);
    }
    EXPECT_EQ(raans.size(), 6U);
}

TEST(Walker, PlanesEquallySpaced)
{
    const auto sats =
        walkerConstellation(12, 4, 0, 700.0e3, degToRad(98.0));
    std::set<double> raans;
    for (const auto &elems : sats) {
        raans.insert(elems.raan);
    }
    std::vector<double> sorted(raans.begin(), raans.end());
    ASSERT_EQ(sorted.size(), 4U);
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        EXPECT_NEAR(sorted[i] - sorted[i - 1], util::kTwoPi / 4.0, 1e-9);
    }
}

TEST(Walker, InPlanePhasingEven)
{
    const auto sats =
        walkerConstellation(9, 3, 0, 600.0e3, degToRad(97.8));
    // First plane: satellites 0..2 with mean anomalies 0, 120, 240 deg.
    EXPECT_NEAR(sats[0].mean_anomaly, 0.0, 1e-9);
    EXPECT_NEAR(sats[1].mean_anomaly, util::kTwoPi / 3.0, 1e-9);
    EXPECT_NEAR(sats[2].mean_anomaly, 2.0 * util::kTwoPi / 3.0, 1e-9);
}

TEST(Walker, PhasingParameterOffsetsPlanes)
{
    const auto f0 = walkerConstellation(8, 4, 0, 600.0e3, 1.7);
    const auto f1 = walkerConstellation(8, 4, 1, 600.0e3, 1.7);
    // Plane 0 identical; later planes offset by f * 2pi / total.
    EXPECT_NEAR(f0[2].mean_anomaly + util::kTwoPi / 8.0,
                f1[2].mean_anomaly, 1e-9);
}

TEST(Walker, SatellitesAreDistinctInSpace)
{
    const auto sats =
        walkerConstellation(12, 3, 1, 550.0e3, degToRad(53.0));
    std::vector<J2Propagator> props;
    for (const auto &elems : sats) {
        props.emplace_back(elems);
    }
    for (std::size_t i = 0; i < props.size(); ++i) {
        for (std::size_t j = i + 1; j < props.size(); ++j) {
            const double separation =
                (props[i].stateAt(0.0).position -
                 props[j].stateAt(0.0).position)
                    .norm();
            EXPECT_GT(separation, 100.0e3)
                << "sats " << i << " and " << j << " overlap";
        }
    }
}

TEST(Walker, SinglePlaneDegeneratesToPhasedRing)
{
    const auto sats = walkerConstellation(4, 1, 0, 705.0e3, 1.7);
    for (const auto &elems : sats) {
        EXPECT_DOUBLE_EQ(elems.raan, 0.0);
    }
    EXPECT_NEAR(sats[1].mean_anomaly, util::kPi / 2.0, 1e-9);
}

} // namespace
} // namespace kodan::orbit
