/** @file Unit tests for the sun/illumination model. */

#include <gtest/gtest.h>

#include <cmath>

#include "orbit/propagator.hpp"
#include "orbit/sun.hpp"
#include "util/units.hpp"

namespace kodan::orbit {
namespace {

using util::degToRad;
using util::kSecondsPerDay;

TEST(Sun, UnitDirection)
{
    for (double t : {0.0, 1.0e6, 1.0e7, 2.0e7}) {
        EXPECT_NEAR(sunDirectionEci(t).norm(), 1.0, 1e-12);
    }
}

TEST(Sun, StartsAtVernalEquinox)
{
    const Vec3 sun = sunDirectionEci(0.0);
    EXPECT_NEAR(sun.x, 1.0, 1e-12);
    EXPECT_NEAR(sun.y, 0.0, 1e-12);
}

TEST(Sun, ReturnsAfterOneYear)
{
    const double year = 365.2422 * kSecondsPerDay;
    const Vec3 sun = sunDirectionEci(year);
    EXPECT_NEAR(sun.x, 1.0, 1e-6);
}

TEST(Sun, SummerSolsticeTiltsNorth)
{
    const double quarter_year = 0.25 * 365.2422 * kSecondsPerDay;
    const Vec3 sun = sunDirectionEci(quarter_year);
    // Declination = obliquity (~23.4 deg): z component positive.
    EXPECT_NEAR(std::asin(sun.z), kObliquity, 1e-3);
}

TEST(Sun, DayNightCycleAtEquator)
{
    // Over one day, an equatorial point must see both day and night.
    const Geodetic point{0.0, 0.0, 0.0};
    bool saw_day = false;
    bool saw_night = false;
    for (double t = 0.0; t < kSecondsPerDay; t += 600.0) {
        (isDaylit(point, t) ? saw_day : saw_night) = true;
    }
    EXPECT_TRUE(saw_day);
    EXPECT_TRUE(saw_night);
}

TEST(Sun, PolarSummerIsAllDay)
{
    // At t ~ northern summer solstice, a high-Arctic point never sets.
    const double solstice = 0.25 * 365.2422 * kSecondsPerDay;
    const Geodetic point{degToRad(85.0), degToRad(40.0), 0.0};
    for (double t = solstice; t < solstice + kSecondsPerDay; t += 900.0) {
        EXPECT_TRUE(isDaylit(point, t));
    }
}

TEST(Sun, SolarElevationBounded)
{
    const Geodetic point{degToRad(45.0), degToRad(-120.0), 0.0};
    for (double t = 0.0; t < kSecondsPerDay; t += 777.0) {
        const double elev = solarElevation(point, t);
        EXPECT_GE(elev, -util::kPi / 2.0);
        EXPECT_LE(elev, util::kPi / 2.0);
    }
}

TEST(Sun, NoonHasMaxElevation)
{
    // Local solar time of the daily elevation maximum should be ~12h.
    const Geodetic point{degToRad(30.0), degToRad(25.0), 0.0};
    double best_elev = -10.0;
    double best_time = 0.0;
    for (double t = 0.0; t < kSecondsPerDay; t += 120.0) {
        const double elev = solarElevation(point, t);
        if (elev > best_elev) {
            best_elev = elev;
            best_time = t;
        }
    }
    EXPECT_NEAR(localSolarTime(point, best_time), 12.0, 0.4);
}

TEST(Sun, EclipseOnNightSideOnly)
{
    const double r = util::kEarthRadius + 705.0e3;
    // Directly behind Earth from the Sun: eclipsed.
    const Vec3 behind = sunDirectionEci(0.0) * -r;
    EXPECT_TRUE(inEclipse(behind, 0.0));
    // Sun side: never eclipsed.
    const Vec3 front = sunDirectionEci(0.0) * r;
    EXPECT_FALSE(inEclipse(front, 0.0));
    // Perpendicular: outside the shadow cylinder.
    const Vec3 side{0.0, 0.0, r};
    EXPECT_FALSE(inEclipse(side, 0.0));
}

TEST(Sun, LeoSatelliteCyclesThroughEclipse)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    int eclipsed = 0;
    int total = 0;
    const double period = sat.nodalPeriod();
    for (double t = 0.0; t < period; t += 60.0) {
        if (inEclipse(sat.stateAt(t).position, t)) {
            ++eclipsed;
        }
        ++total;
    }
    // A LEO spends roughly a third of its orbit in shadow.
    const double fraction = static_cast<double>(eclipsed) / total;
    EXPECT_GT(fraction, 0.15);
    EXPECT_LT(fraction, 0.55);
}

TEST(Sun, LocalSolarTimeWrapsCorrectly)
{
    const Geodetic greenwich{0.0, 0.0, 0.0};
    for (double t = 0.0; t < 3.0 * kSecondsPerDay; t += 1111.0) {
        const double lst = localSolarTime(greenwich, t);
        EXPECT_GE(lst, 0.0);
        EXPECT_LT(lst, 24.0);
    }
}

TEST(Sun, LongitudeShiftsLocalTime)
{
    // 90 degrees east = +6 hours of local solar time.
    const double t = 4321.0;
    const Geodetic west{0.0, 0.0, 0.0};
    const Geodetic east{0.0, degToRad(90.0), 0.0};
    const double delta =
        localSolarTime(east, t) - localSolarTime(west, t);
    const double wrapped = std::fmod(delta + 24.0, 24.0);
    EXPECT_NEAR(wrapped, 6.0, 0.01);
}

} // namespace
} // namespace kodan::orbit
