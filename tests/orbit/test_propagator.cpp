/** @file Unit tests for the J2 propagator. */

#include <gtest/gtest.h>

#include <cmath>

#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace kodan::orbit {
namespace {

using util::degToRad;
using util::kEarthMu;
using util::kEarthRadius;

TEST(J2Propagator, CircularOrbitKeepsRadius)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    const double expected = kEarthRadius + 705.0e3;
    for (double t = 0.0; t < 6000.0; t += 500.0) {
        EXPECT_NEAR(sat.stateAt(t).position.norm(), expected, 1.0);
    }
}

TEST(J2Propagator, VelocityMatchesVisViva)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    const auto state = sat.stateAt(1000.0);
    const double r = state.position.norm();
    const double v_expected = std::sqrt(kEarthMu / r);
    EXPECT_NEAR(state.velocity.norm(), v_expected, v_expected * 0.01);
}

TEST(J2Propagator, VelocityIsTangential)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    const auto state = sat.stateAt(2500.0);
    const double radial =
        state.position.normalized().dot(state.velocity);
    EXPECT_NEAR(radial, 0.0, 1.0); // m/s, tiny for a circular orbit
}

TEST(J2Propagator, ReturnsNearStartAfterOnePeriod)
{
    const auto elems = OrbitalElements::circularLeo(705.0e3, degToRad(98.2));
    const J2Propagator sat(elems);
    const double period = util::kTwoPi / sat.meanMotion();
    const auto p0 = sat.stateAt(0.0).position;
    const auto p1 = sat.stateAt(period).position;
    // J2 precession moves the plane slightly; tolerance is a few km.
    EXPECT_NEAR((p1 - p0).norm(), 0.0, 50.0e3);
}

TEST(J2Propagator, SunSyncRaanRateIsOneDegreePerDay)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    const double deg_per_day =
        util::radToDeg(sat.raanRate()) * util::kSecondsPerDay;
    EXPECT_NEAR(deg_per_day, 0.9856, 0.02);
}

TEST(J2Propagator, ProgradeOrbitRegresses)
{
    // A 51.6-degree ISS-like orbit must have westward (negative) RAAN
    // drift.
    const J2Propagator sat(
        OrbitalElements::circularLeo(420.0e3, degToRad(51.6)));
    EXPECT_LT(sat.raanRate(), 0.0);
}

TEST(J2Propagator, GroundTrackSpeedNearSevenKmPerSecond)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    EXPECT_NEAR(sat.groundTrackSpeed(), 6760.0, 100.0);
}

TEST(J2Propagator, SubsatellitePointReachesHighLatitudes)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    double max_lat = 0.0;
    for (double t = 0.0; t < 6000.0; t += 30.0) {
        max_lat = std::max(max_lat,
                           std::fabs(sat.subsatellitePoint(t).latitude));
    }
    // Near-polar orbit: |lat| reaches ~81.8 deg (180 - 98.2).
    EXPECT_GT(util::radToDeg(max_lat), 80.0);
    EXPECT_LT(util::radToDeg(max_lat), 83.0);
}

TEST(J2Propagator, PhasedSatellitesAreSeparated)
{
    const J2Propagator a(OrbitalElements::landsat8(0.0, 0.0));
    const J2Propagator b(OrbitalElements::landsat8(0.0, util::kPi));
    const auto pa = a.stateAt(0.0).position;
    const auto pb = b.stateAt(0.0).position;
    // Opposite sides of the orbit: separation ~ 2 * (Re + h).
    EXPECT_NEAR((pa - pb).norm(), 2.0 * (kEarthRadius + 705.0e3), 50.0e3);
}

TEST(J2Propagator, NodalPeriodCloseToKeplerian)
{
    const J2Propagator sat(OrbitalElements::landsat8());
    const double keplerian = OrbitalElements::landsat8().period();
    EXPECT_NEAR(sat.nodalPeriod(), keplerian, keplerian * 0.01);
}

TEST(J2Propagator, EccentricOrbitRadiusVaries)
{
    OrbitalElements elems =
        OrbitalElements::circularLeo(705.0e3, degToRad(98.2));
    elems.eccentricity = 0.01;
    const J2Propagator sat(elems);
    const double a = elems.semi_major_axis;
    double min_r = 1e12;
    double max_r = 0.0;
    const double period = util::kTwoPi / sat.meanMotion();
    for (double t = 0.0; t < period; t += period / 64.0) {
        const double r = sat.stateAt(t).position.norm();
        min_r = std::min(min_r, r);
        max_r = std::max(max_r, r);
    }
    EXPECT_NEAR(min_r, a * 0.99, a * 1e-3);
    EXPECT_NEAR(max_r, a * 1.01, a * 1e-3);
}

} // namespace
} // namespace kodan::orbit
