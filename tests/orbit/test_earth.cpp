/** @file Unit tests for Earth rotation and frame conversions. */

#include <gtest/gtest.h>

#include <cmath>

#include "orbit/earth.hpp"
#include "util/units.hpp"

namespace kodan::orbit {
namespace {

using util::degToRad;
using util::kEarthRadius;

TEST(Gmst, ZeroAtEpoch)
{
    EXPECT_DOUBLE_EQ(gmst(0.0), 0.0);
}

TEST(Gmst, FullTurnPerSiderealDay)
{
    // One sidereal day later the rotation angle is back near 0 (mod 2pi).
    EXPECT_NEAR(util::wrapPi(gmst(util::kSiderealDay)), 0.0, 1e-4);
    EXPECT_NEAR(gmst(util::kSiderealDay / 2.0), util::kPi, 1e-4);
}

TEST(Frames, EciEcefRoundTrip)
{
    const Vec3 eci{7.0e6, -1.0e6, 2.0e6};
    for (double t : {0.0, 1234.5, 86400.0}) {
        const Vec3 back = ecefToEci(eciToEcef(eci, t), t);
        EXPECT_NEAR(back.x, eci.x, 1e-3);
        EXPECT_NEAR(back.y, eci.y, 1e-3);
        EXPECT_NEAR(back.z, eci.z, 1e-3);
    }
}

TEST(Frames, RotationPreservesNorm)
{
    const Vec3 eci{6.8e6, 1.2e6, -0.4e6};
    const Vec3 ecef = eciToEcef(eci, 5000.0);
    EXPECT_NEAR(ecef.norm(), eci.norm(), 1e-6);
}

TEST(Frames, ZAxisInvariant)
{
    const Vec3 pole{0.0, 0.0, 7.0e6};
    const Vec3 rotated = eciToEcef(pole, 12345.0);
    EXPECT_DOUBLE_EQ(rotated.z, pole.z);
    EXPECT_DOUBLE_EQ(rotated.x, 0.0);
}

TEST(Geodetic, RoundTripAtVariousLatitudes)
{
    for (double lat_deg : {-80.0, -45.0, 0.0, 30.0, 60.0, 89.0}) {
        for (double alt : {0.0, 500.0e3, 705.0e3}) {
            const Geodetic geo{degToRad(lat_deg), degToRad(17.0), alt};
            const Geodetic back = ecefToGeodetic(geodeticToEcef(geo));
            EXPECT_NEAR(back.latitude, geo.latitude, 1e-9);
            EXPECT_NEAR(back.longitude, geo.longitude, 1e-9);
            EXPECT_NEAR(back.altitude, geo.altitude, 1e-3);
        }
    }
}

TEST(Geodetic, EquatorialPointOnXAxis)
{
    const Vec3 ecef = geodeticToEcef({0.0, 0.0, 0.0});
    EXPECT_NEAR(ecef.x, kEarthRadius, 1.0);
    EXPECT_NEAR(ecef.y, 0.0, 1e-6);
    EXPECT_NEAR(ecef.z, 0.0, 1e-6);
}

TEST(Geodetic, PolarRadiusIsSmaller)
{
    const Vec3 pole = geodeticToEcef({degToRad(90.0), 0.0, 0.0});
    // WGS-84 polar radius ~6356.75 km.
    EXPECT_NEAR(pole.norm() / 1.0e3, 6356.75, 1.0);
}

TEST(GreatCircle, KnownAngles)
{
    const Geodetic a{0.0, 0.0, 0.0};
    const Geodetic b{0.0, degToRad(90.0), 0.0};
    EXPECT_NEAR(greatCircleAngle(a, b), util::kPi / 2.0, 1e-12);
    EXPECT_NEAR(greatCircleAngle(a, a), 0.0, 1e-6);
    const Geodetic antipode{0.0, degToRad(180.0), 0.0};
    EXPECT_NEAR(greatCircleAngle(a, antipode), util::kPi, 1e-6);
}

TEST(Elevation, ZenithIsNinetyDegrees)
{
    const Vec3 site = geodeticToEcef({degToRad(40.0), degToRad(-100.0), 0.0});
    const Vec3 overhead = site * ((site.norm() + 500.0e3) / site.norm());
    EXPECT_NEAR(util::radToDeg(elevationAngle(site, overhead)), 90.0, 0.5);
}

TEST(Elevation, OppositeSideIsBelowHorizon)
{
    const Vec3 site = geodeticToEcef({0.0, 0.0, 0.0});
    const Vec3 opposite =
        geodeticToEcef({0.0, degToRad(180.0), 705.0e3});
    EXPECT_LT(elevationAngle(site, opposite), 0.0);
}

TEST(Elevation, HorizonGeometry)
{
    // A satellite at 705 km is above the 10-degree mask only within
    // ~2000 km ground distance; check the sign flips with distance.
    const Vec3 site = geodeticToEcef({0.0, 0.0, 0.0});
    const Vec3 near_sat = geodeticToEcef({0.0, degToRad(5.0), 705.0e3});
    const Vec3 far_sat = geodeticToEcef({0.0, degToRad(40.0), 705.0e3});
    EXPECT_GT(elevationAngle(site, near_sat), degToRad(10.0));
    EXPECT_LT(elevationAngle(site, far_sat), 0.0);
}

} // namespace
} // namespace kodan::orbit
