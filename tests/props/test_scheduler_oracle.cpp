/**
 * @file
 * Property tests for the constellation-scale ground segment: the
 * incremental event-queue scheduler against the brute-force rescan
 * oracle over randomized contact patterns, chunked (streaming) span
 * allocation against the one-shot path, and the adaptive-stride contact
 * sweep against the fixed-grid scan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ground/contact.hpp"
#include "ground/downlink.hpp"
#include "ground/station.hpp"
#include "orbit/elements.hpp"
#include "orbit/propagator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace kodan::ground {
namespace {

/**
 * Random overlapping contact pattern: bursts of visibility with varied
 * durations and frequent multi-satellite contention at each station.
 */
std::vector<ContactWindow>
randomWindows(util::Rng &rng, std::size_t sats, std::size_t stations,
              double horizon)
{
    std::vector<ContactWindow> windows;
    for (std::size_t s = 0; s < sats; ++s) {
        for (std::size_t g = 0; g < stations; ++g) {
            double t = rng.uniform(0.0, 900.0);
            while (t < horizon) {
                const double duration = rng.uniform(30.0, 900.0);
                windows.push_back(
                    {g, s, t, std::min(t + duration, horizon)});
                t += duration + rng.uniform(60.0, 2400.0);
            }
        }
    }
    // Feed the scheduler in a scrambled order: results must not depend
    // on the window list order beyond the documented scan-order
    // tie-break, which both implementations share.
    const auto perm = rng.permutation(windows.size());
    std::vector<ContactWindow> shuffled(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
        shuffled[i] = windows[perm[i]];
    }
    return shuffled;
}

void
expectAllocationsIdentical(const GroundSegmentScheduler::Allocation &a,
                           const GroundSegmentScheduler::Allocation &b)
{
    ASSERT_EQ(a.seconds_per_satellite.size(),
              b.seconds_per_satellite.size());
    for (std::size_t s = 0; s < a.seconds_per_satellite.size(); ++s) {
        EXPECT_EQ(a.seconds_per_satellite[s], b.seconds_per_satellite[s])
            << "seconds diverge for satellite " << s;
        EXPECT_EQ(a.passes_per_satellite[s], b.passes_per_satellite[s])
            << "passes diverge for satellite " << s;
        ASSERT_EQ(a.intervals_per_satellite[s].size(),
                  b.intervals_per_satellite[s].size())
            << "interval count diverges for satellite " << s;
        for (std::size_t i = 0; i < a.intervals_per_satellite[s].size();
             ++i) {
            const auto &ia = a.intervals_per_satellite[s][i];
            const auto &ib = b.intervals_per_satellite[s][i];
            EXPECT_EQ(ia.station, ib.station);
            EXPECT_EQ(ia.start, ib.start);
            EXPECT_EQ(ia.end, ib.end);
        }
    }
    EXPECT_EQ(a.busy_station_seconds, b.busy_station_seconds);
    EXPECT_EQ(a.idle_station_seconds, b.idle_station_seconds);
}

class SchedulerOracleProps : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerOracleProps, IncrementalMatchesRescan)
{
    util::Rng rng(0xC0117AC7ULL + GetParam());
    const std::size_t sats = 1 + rng.uniformInt(0, 11);
    const std::size_t stations = 1 + rng.uniformInt(0, 4);
    const double horizon = rng.uniform(6.0, 48.0) * 3600.0;
    const auto windows = randomWindows(rng, sats, stations, horizon);
    const GroundSegmentScheduler scheduler(10.0,
                                           rng.uniform(0.0, 480.0));
    const auto fast =
        scheduler.allocate(windows, sats, stations, 0.0, horizon);
    const auto oracle =
        scheduler.allocateRescan(windows, sats, stations, 0.0, horizon);
    expectAllocationsIdentical(fast, oracle);
}

TEST_P(SchedulerOracleProps, ChunkedSpansMatchOneShot)
{
    util::Rng seeded(0x5EA7ULL * 131 + GetParam());
    const std::size_t sats = 1 + seeded.uniformInt(0, 7);
    const std::size_t stations = 1 + seeded.uniformInt(0, 3);
    const double horizon = 24.0 * 3600.0;
    const auto windows = randomWindows(seeded, sats, stations, horizon);
    const GroundSegmentScheduler scheduler(10.0, 240.0);
    const auto one_shot =
        scheduler.allocate(windows, sats, stations, 0.0, horizon);

    // Stream the same windows through span chunks on the step grid,
    // passing each chunk only the windows overlapping it (the streaming
    // driver's contract).
    const double chunk = 3600.0;
    auto state = scheduler.beginAllocation(sats, stations, 0.0);
    for (double t = 0.0; t < horizon; t += chunk) {
        const double t_end = std::min(t + chunk, horizon);
        std::vector<ContactWindow> overlap;
        for (const auto &w : windows) {
            if (w.end > t && w.start < t_end) {
                overlap.push_back(w);
            }
        }
        scheduler.allocateSpan(overlap, t_end, state);
    }
    const auto chunked = scheduler.finishAllocation(std::move(state));
    expectAllocationsIdentical(chunked, one_shot);
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, SchedulerOracleProps,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Adaptive-stride contact sweep vs the fixed-grid scan.

void
expectWindowsIdentical(const std::vector<ContactWindow> &a,
                       const std::vector<ContactWindow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].satellite, b[i].satellite);
        EXPECT_EQ(a[i].station, b[i].station);
        EXPECT_EQ(a[i].start, b[i].start);
        EXPECT_EQ(a[i].end, b[i].end);
    }
}

TEST(ContactSweepProps, AdaptiveMatchesFixedGridPerPair)
{
    const auto stations = landsatGroundSegment();
    const auto elements = orbit::walkerConstellation(
        6, 3, 1, 705.0e3, orbit::sunSynchronousInclination(705.0e3));
    const ContactFinder finder(30.0);
    const double horizon = 2.0 * 86400.0;
    for (const auto &elems : elements) {
        const orbit::J2Propagator sat(elems);
        for (const auto &station : stations) {
            const auto oracle = finder.find(sat, station, 0.0, horizon);
            const auto fast =
                finder.findAdaptive(sat, station, 0.0, horizon);
            expectWindowsIdentical(fast, oracle);
        }
    }
}

TEST(ContactSweepProps, ParallelSweepMatchesSerialAtAnyThreadCount)
{
    const auto stations = sparseGroundSegment();
    std::vector<orbit::J2Propagator> sats;
    for (const auto &elems : orbit::walkerConstellation(
             8, 2, 1, 705.0e3,
             orbit::sunSynchronousInclination(705.0e3))) {
        sats.emplace_back(elems);
    }
    const ContactFinder finder(30.0);
    const auto serial = finder.findAll(sats, stations, 0.0, 86400.0);
    for (const int threads : {1, 4, 16}) {
        util::setGlobalThreads(threads);
        const auto parallel =
            finder.findAllParallel(sats, stations, 0.0, 86400.0);
        expectWindowsIdentical(parallel, serial);
    }
    util::setGlobalThreads(0);
}

} // namespace
} // namespace kodan::ground
