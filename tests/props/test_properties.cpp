/**
 * @file
 * Cross-module property tests: invariants that must hold for any seed,
 * any budget, and any policy — not just the happy-path examples.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/evaluate.hpp"
#include "ml/kmeans.hpp"
#include "ml/mlp.hpp"
#include "orbit/propagator.hpp"
#include "orbit/sun.hpp"
#include "sim/mission.hpp"
#include "util/noise.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace kodan {
namespace {

// ---------------------------------------------------------------------
// evaluateLogic invariants over randomized tables.

core::ContextActionTable
randomTable(util::Rng &rng)
{
    core::ContextActionTable table;
    table.tiles_per_side =
        static_cast<int>(rng.uniformInt(1, 12));
    const int contexts = static_cast<int>(rng.uniformInt(1, 6));
    table.contexts.resize(contexts);
    table.actions.resize(contexts);
    table.stats.resize(contexts);
    double share_left = 1.0;
    for (int c = 0; c < contexts; ++c) {
        const double share =
            c + 1 == contexts ? share_left
                              : rng.uniform(0.0, share_left);
        share_left -= share;
        table.contexts[c] = {c, share, rng.uniform(), "random"};
        const int candidates = static_cast<int>(rng.uniformInt(1, 4));
        for (int a = 0; a < candidates; ++a) {
            core::Action action;
            core::ActionStats stats;
            const int kind = static_cast<int>(rng.uniformInt(0, 2));
            action.kind = static_cast<core::ActionKind>(kind);
            action.model =
                action.kind == core::ActionKind::RunModel
                    ? static_cast<int>(rng.uniformInt(0, 5))
                    : -1;
            if (action.kind != core::ActionKind::Discard) {
                stats.bits_fraction = rng.uniform();
                stats.high_fraction =
                    rng.uniform() * stats.bits_fraction;
            }
            stats.cell_accuracy = rng.uniform();
            stats.model_params =
                action.kind == core::ActionKind::RunModel
                    ? static_cast<std::size_t>(
                          rng.uniformInt(10, 5000))
                    : 0;
            table.actions[c].push_back(action);
            table.stats[c].push_back(stats);
        }
    }
    return table;
}

class EvaluateLogicProps : public ::testing::TestWithParam<int>
{
};

TEST_P(EvaluateLogicProps, OutcomeInvariants)
{
    util::Rng rng(GetParam());
    const auto table = randomTable(rng);
    core::SystemProfile profile;
    profile.target = hw::Target::Orin15W;
    profile.frame_deadline = rng.uniform(5.0, 60.0);
    profile.frames_per_day = rng.uniform(100.0, 5000.0);
    profile.frame_bits = rng.uniform(1e8, 1e10);
    profile.downlink_bits_per_day = rng.uniform(1e10, 1e13);
    profile.prevalence = rng.uniform(0.1, 0.9);

    std::vector<core::Action> actions;
    for (int c = 0; c < table.contextCount(); ++c) {
        const auto idx = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(table.actions[c].size()) - 1));
        actions.push_back(table.actions[c][idx]);
    }
    const bool raw_fill = rng.bernoulli(0.5);
    const auto outcome = core::evaluateLogic(profile, table, actions,
                                             true, raw_fill);

    EXPECT_GE(outcome.dvd, 0.0);
    EXPECT_LE(outcome.dvd, 1.0 + 1e-9);
    EXPECT_GE(outcome.frame_time, 0.0);
    EXPECT_GE(outcome.processed_fraction, 0.0);
    EXPECT_LE(outcome.processed_fraction, 1.0);
    EXPECT_GE(outcome.bits_sent, 0.0);
    EXPECT_LE(outcome.bits_sent,
              profile.downlink_bits_per_day + 1e-3);
    EXPECT_LE(outcome.high_bits_sent, outcome.bits_sent + 1e-3);
    EXPECT_GE(outcome.cell_accuracy, 0.0);
    EXPECT_LE(outcome.cell_accuracy, 1.0 + 1e-9);
    EXPECT_GE(outcome.high_value_yield, 0.0);
    EXPECT_LE(outcome.high_value_yield, 1.0 + 1e-9);
}

TEST_P(EvaluateLogicProps, MoreBudgetNeverHurts)
{
    util::Rng rng(GetParam() + 1000);
    const auto table = randomTable(rng);
    core::SystemProfile profile;
    profile.frame_deadline = 22.0;
    profile.frames_per_day = 1000.0;
    profile.frame_bits = 1e9;
    profile.prevalence = 0.4;

    std::vector<core::Action> actions;
    for (int c = 0; c < table.contextCount(); ++c) {
        actions.push_back(table.actions[c][0]);
    }
    double prev_high = -1.0;
    for (double budget : {1e10, 5e10, 2e11, 1e12, 5e12}) {
        profile.downlink_bits_per_day = budget;
        const auto outcome =
            core::evaluateLogic(profile, table, actions, true, true);
        EXPECT_GE(outcome.high_bits_sent, prev_high - 1e-3);
        prev_high = outcome.high_bits_sent;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluateLogicProps,
                         ::testing::Range(0, 24));

// ---------------------------------------------------------------------
// Mission-simulation conservation laws over seeds.

class MissionProps : public ::testing::TestWithParam<int>
{
};

TEST_P(MissionProps, ConservationLaws)
{
    util::Rng rng(GetParam());
    sim::MissionConfig config = sim::MissionConfig::landsatConstellation(
        static_cast<int>(rng.uniformInt(1, 4)));
    config.duration = 3.0 * 3600.0;
    config.scheduler_step = 30.0;
    config.contact_scan_step = 60.0;
    config.seed = GetParam();

    sim::FilterBehavior filter;
    filter.frame_time = rng.uniform(0.0, 200.0);
    filter.keep_high = rng.uniform();
    filter.keep_low = rng.uniform();
    filter.send_unprocessed = rng.bernoulli(0.5);
    filter.prioritize_products = rng.bernoulli(0.5);

    const sim::MissionSim sim(nullptr, rng.uniform(0.1, 0.9));
    const auto result = sim.run(config, filter);
    for (const auto &sat : result.per_satellite) {
        EXPECT_LE(sat.frames_processed, sat.frames_observed);
        EXPECT_LE(sat.bits_downlinked,
                  config.radio.datarate_bps * sat.contact_seconds + 1.0);
        EXPECT_LE(sat.high_bits_downlinked, sat.bits_downlinked + 1e-3);
        EXPECT_LE(sat.high_bits_observed, sat.bits_observed + 1e-3);
        EXPECT_GE(sat.dvd(), 0.0);
        EXPECT_LE(sat.dvd(), 1.0 + 1e-9);
        EXPECT_LE(sat.highValueYield(), 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MissionProps, ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// K-means sanity over seeds, cluster counts, and metrics.

class KMeansProps
    : public ::testing::TestWithParam<std::tuple<int, int, ml::Distance>>
{
};

TEST_P(KMeansProps, FitInvariants)
{
    const auto [seed, k, metric] = GetParam();
    util::Rng rng(seed);
    ml::Matrix x(80, 4);
    for (auto &v : x.data()) {
        v = rng.uniform(-2.0, 2.0);
    }
    const ml::KMeans kmeans(k, metric, 32, 2);
    const auto result = kmeans.fit(x, rng);
    EXPECT_EQ(result.k, k);
    EXPECT_EQ(result.assignment.size(), 80U);
    EXPECT_GE(result.inertia, 0.0);
    for (int c : result.assignment) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, k);
    }
    // Assignments are nearest-centroid consistent.
    for (std::size_t i = 0; i < 80; i += 17) {
        EXPECT_EQ(result.nearest(x.row(i)), result.assignment[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KMeansProps,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(1, 2, 5, 9),
                       ::testing::Values(ml::Distance::Euclidean,
                                         ml::Distance::Cosine,
                                         ml::Distance::Hamming)));

// ---------------------------------------------------------------------
// Training makes progress: the loss decreases across epochs.

TEST(MlpProps, LossDecreasesWithTraining)
{
    util::Rng rng(5);
    ml::MlpConfig config;
    config.input_dim = 4;
    config.hidden = {12};
    ml::Mlp net(config, rng);

    ml::Matrix x(300, 4);
    std::vector<double> y(300);
    for (int i = 0; i < 300; ++i) {
        for (int d = 0; d < 4; ++d) {
            x.at(i, d) = rng.uniform(-1.0, 1.0);
        }
        y[i] = (x.at(i, 0) - 0.5 * x.at(i, 2) > 0.0) ? 1.0 : 0.0;
    }
    ml::TrainOptions options;
    options.epochs = 1;
    const double first = net.train(x, y, options, rng);
    double last = first;
    for (int e = 0; e < 15; ++e) {
        last = net.train(x, y, options, rng);
    }
    EXPECT_LT(last, first * 0.8);
}

// ---------------------------------------------------------------------
// Sun-synchronous geometry: the descending node keeps a constant local
// solar time across the day (the reason Landsat uses this orbit).

TEST(SunSyncProps, DescendingNodeLocalTimeIsStable)
{
    const orbit::J2Propagator sat(orbit::OrbitalElements::landsat8());
    std::vector<double> node_times;
    // Find descending equator crossings by sign change of latitude.
    double prev_lat = sat.subsatellitePoint(0.0).latitude;
    for (double t = 30.0; t < util::kSecondsPerDay; t += 30.0) {
        const double lat = sat.subsatellitePoint(t).latitude;
        if (prev_lat > 0.0 && lat <= 0.0) {
            node_times.push_back(t);
        }
        prev_lat = lat;
    }
    ASSERT_GE(node_times.size(), 10U);
    std::vector<double> lst;
    for (double t : node_times) {
        lst.push_back(orbit::localSolarTime(sat.subsatellitePoint(t), t));
    }
    // All crossings within a few minutes of each other.
    const double first = lst.front();
    for (double value : lst) {
        EXPECT_NEAR(value, first, 0.25) << "local solar time drifted";
    }
}

// ---------------------------------------------------------------------
// SummaryStats merging must be order-independent: the accumulators back
// every parallel reduction in the codebase, so merge(a, b) and
// merge(b, a) must agree, and ANY chunked partition of a sample stream
// must reproduce the single-pass statistics. Counts/extrema are exact;
// mean and variance are algebraically identical and allowed only a few
// ulps of floating-point slack from re-association.

class StatsMergeProps : public ::testing::TestWithParam<int>
{
  protected:
    /** Relative tolerance of a few ulps around @p reference. */
    static double ulps(double reference, double count = 8.0)
    {
        return count * std::abs(reference) *
               std::numeric_limits<double>::epsilon();
    }
};

TEST_P(StatsMergeProps, MergeIsCommutative)
{
    util::Rng rng(GetParam() * 7919 + 17);
    util::SummaryStats a;
    util::SummaryStats b;
    const auto n_a = rng.uniformInt(0, 400);
    const auto n_b = rng.uniformInt(1, 400);
    for (std::int64_t i = 0; i < n_a; ++i) {
        a.add(rng.normal(rng.uniform(-5.0, 5.0), rng.uniform(0.1, 3.0)));
    }
    for (std::int64_t i = 0; i < n_b; ++i) {
        b.add(rng.normal(0.0, 10.0));
    }
    util::SummaryStats ab = a;
    ab.merge(b);
    util::SummaryStats ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.count(), ba.count());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
    EXPECT_NEAR(ab.sum(), ba.sum(), ulps(ab.sum()));
    EXPECT_NEAR(ab.mean(), ba.mean(), ulps(ab.mean()) + 1e-15);
    EXPECT_NEAR(ab.variance(), ba.variance(),
                ulps(ab.variance(), 64.0) + 1e-15);
}

TEST_P(StatsMergeProps, AnyChunkedPartitionMatchesSinglePass)
{
    util::Rng rng(GetParam() * 104729 + 3);
    const auto n = rng.uniformInt(1, 600);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(n));
    util::SummaryStats single;
    for (std::int64_t i = 0; i < n; ++i) {
        const double x = rng.uniform(-100.0, 100.0);
        samples.push_back(x);
        single.add(x);
    }
    // Random partition into chunks (including size-1 chunks).
    util::SummaryStats merged;
    std::size_t offset = 0;
    while (offset < samples.size()) {
        const auto remaining =
            static_cast<std::int64_t>(samples.size() - offset);
        const auto size = rng.uniformInt(1, remaining);
        util::SummaryStats chunk;
        for (std::int64_t i = 0; i < size; ++i) {
            chunk.add(samples[offset + static_cast<std::size_t>(i)]);
        }
        merged.merge(chunk);
        offset += static_cast<std::size_t>(size);
    }
    EXPECT_EQ(merged.count(), single.count());
    EXPECT_EQ(merged.min(), single.min());
    EXPECT_EQ(merged.max(), single.max());
    EXPECT_NEAR(merged.sum(), single.sum(),
                ulps(single.sum(), 16.0) + 1e-12);
    EXPECT_NEAR(merged.mean(), single.mean(),
                ulps(single.mean(), 16.0) + 1e-12);
    // Variance composes through the pairwise update; re-association
    // costs slightly more slack on adversarial streams.
    const double scale = std::max(1.0, single.variance());
    EXPECT_NEAR(merged.variance(), single.variance(), 1e-9 * scale);
}

TEST_P(StatsMergeProps, MergingEmptyIsIdentity)
{
    util::Rng rng(GetParam() + 31);
    util::SummaryStats stats;
    for (int i = 0; i < 50; ++i) {
        stats.add(rng.uniform(-1.0, 1.0));
    }
    const util::SummaryStats empty;
    util::SummaryStats left = stats;
    left.merge(empty);
    EXPECT_EQ(left.count(), stats.count());
    EXPECT_EQ(left.mean(), stats.mean());
    EXPECT_EQ(left.variance(), stats.variance());
    util::SummaryStats right = empty;
    right.merge(stats);
    EXPECT_EQ(right.count(), stats.count());
    EXPECT_EQ(right.mean(), stats.mean());
    EXPECT_EQ(right.variance(), stats.variance());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsMergeProps,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Noise statistics: the field is roughly uniform over [0, 1].

TEST(NoiseProps, FbmIsRoughlyCentred)
{
    util::FbmNoise fbm(3, 4);
    util::SummaryStats stats;
    for (double x = 0.0; x < 40.0; x += 0.173) {
        for (double y = 0.0; y < 4.0; y += 0.379) {
            stats.add(fbm.at(x, y));
        }
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.05);
    EXPECT_GT(stats.stddev(), 0.05);
    EXPECT_GE(stats.min(), 0.0);
    EXPECT_LE(stats.max(), 1.0);
}

} // namespace
} // namespace kodan
