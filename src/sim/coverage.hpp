/**
 * @file
 * Coverage analyses: unique scenes observed per day (paper Fig. 3) and
 * the satellite count required for full ground-track processing coverage
 * (paper Fig. 11, following the prior OEC work's pipeline distribution).
 */

#ifndef KODAN_SIM_COVERAGE_HPP
#define KODAN_SIM_COVERAGE_HPP

#include <cstddef>
#include <vector>

#include "orbit/elements.hpp"
#include "sense/camera.hpp"
#include "sense/wrs.hpp"
#include "util/units.hpp"

namespace kodan::sim {

/** Result of a unique-scene coverage run. */
struct CoverageResult
{
    /** Frames captured by the whole constellation (with duplicates). */
    std::size_t total_frames = 0;
    /** Distinct WRS scenes observed at least once. */
    std::size_t unique_scenes = 0;
    /** Scenes in the grid. */
    std::size_t grid_scenes = 0;

    /** Fraction of the grid observed. */
    double coverageFraction() const
    {
        return grid_scenes == 0
                   ? 0.0
                   : static_cast<double>(unique_scenes) / grid_scenes;
    }
};

/**
 * Count distinct WRS scenes observed by a constellation over a duration.
 *
 * @param satellites Constellation epoch elements.
 * @param camera Imaging payload (sets the frame cadence).
 * @param grid Scene grid.
 * @param duration Observation window (s), typically one day.
 */
CoverageResult uniqueSceneCoverage(
    const std::vector<orbit::OrbitalElements> &satellites,
    const sense::CameraModel &camera, const sense::WrsGrid &grid,
    double duration = util::kSecondsPerDay);

/**
 * Satellites required for full ground-track *processing* coverage when
 * per-frame processing takes @p frame_time but frames arrive every
 * @p frame_deadline: work is distributed across a pipeline of satellites
 * as in prior OEC work, so the count is ceil(frame_time / deadline).
 *
 * @param frame_time Processing time per frame on the target (s).
 * @param frame_deadline Frame capture period (s).
 * @return Pipeline length (>= 1).
 */
int satellitesForFullCoverage(double frame_time, double frame_deadline);

} // namespace kodan::sim

#endif // KODAN_SIM_COVERAGE_HPP
