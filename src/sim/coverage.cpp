#include "sim/coverage.hpp"

#include <cassert>
#include <cmath>

#include "orbit/propagator.hpp"
#include "sense/capture.hpp"

namespace kodan::sim {

CoverageResult
uniqueSceneCoverage(const std::vector<orbit::OrbitalElements> &satellites,
                    const sense::CameraModel &camera,
                    const sense::WrsGrid &grid, double duration)
{
    CoverageResult result;
    result.grid_scenes = grid.sceneCount();
    std::vector<bool> seen(grid.sceneCount(), false);

    const sense::FrameCapture capture(camera, grid);
    for (std::size_t s = 0; s < satellites.size(); ++s) {
        const orbit::J2Propagator sat(satellites[s]);
        const auto frames = capture.capture(sat, s, 0.0, duration);
        result.total_frames += frames.size();
        for (const auto &frame : frames) {
            seen[grid.flatIndex(frame.scene)] = true;
        }
    }
    for (bool flag : seen) {
        if (flag) {
            ++result.unique_scenes;
        }
    }
    return result;
}

int
satellitesForFullCoverage(double frame_time, double frame_deadline)
{
    assert(frame_deadline > 0.0);
    if (frame_time <= 0.0) {
        return 1;
    }
    return std::max(1, static_cast<int>(
                           std::ceil(frame_time / frame_deadline)));
}

} // namespace kodan::sim
