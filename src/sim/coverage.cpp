#include "sim/coverage.hpp"

#include <cassert>
#include <cmath>

#include "orbit/propagator.hpp"
#include "sense/capture.hpp"
#include "util/thread_pool.hpp"

namespace kodan::sim {

CoverageResult
uniqueSceneCoverage(const std::vector<orbit::OrbitalElements> &satellites,
                    const sense::CameraModel &camera,
                    const sense::WrsGrid &grid, double duration)
{
    CoverageResult result;
    result.grid_scenes = grid.sceneCount();
    std::vector<bool> seen(grid.sceneCount(), false);

    // Propagation and capture are independent per satellite; each one
    // produces a private scene set, merged in satellite order (set union
    // and frame-count sum are order-independent anyway).
    const sense::FrameCapture capture(camera, grid);
    struct SatCoverage
    {
        std::size_t frames = 0;
        std::vector<std::size_t> scene_indices;
    };
    std::vector<SatCoverage> per_sat(satellites.size());
    util::parallelFor(satellites.size(), [&](std::size_t s) {
        const orbit::J2Propagator sat(satellites[s]);
        const auto frames = capture.capture(sat, s, 0.0, duration);
        per_sat[s].frames = frames.size();
        per_sat[s].scene_indices.reserve(frames.size());
        for (const auto &frame : frames) {
            per_sat[s].scene_indices.push_back(
                grid.flatIndex(frame.scene));
        }
    });
    for (const auto &sat : per_sat) {
        result.total_frames += sat.frames;
        for (std::size_t index : sat.scene_indices) {
            seen[index] = true;
        }
    }
    for (bool flag : seen) {
        if (flag) {
            ++result.unique_scenes;
        }
    }
    return result;
}

int
satellitesForFullCoverage(double frame_time, double frame_deadline)
{
    assert(frame_deadline > 0.0);
    if (frame_time <= 0.0) {
        return 1;
    }
    return std::max(1, static_cast<int>(
                           std::ceil(frame_time / frame_deadline)));
}

} // namespace kodan::sim
