/**
 * @file
 * Constellation-scale mission engine: sharded, chunked, memory-flat.
 *
 * MissionSim materializes every frame and drains a whole-mission
 * downlink budget at once — exact, but its footprint grows with
 * satellites x duration, which caps it at a handful of satellites over
 * short horizons. ConstellationEngine simulates hundreds to thousands
 * of satellites over a simulated year by restructuring the same
 * physical models around streaming:
 *
 *  - **Time chunks.** The horizon is processed in fixed chunks
 *    (default one day). Each chunk runs an adaptive-stride parallel
 *    contact sweep (ContactFinder::findAllParallel), advances the
 *    resumable incremental ground scheduler
 *    (GroundSegmentScheduler::allocateSpan), then simulates capture /
 *    filtering / downlink for that span. Nothing is retained per frame
 *    or per window across chunks, so memory stays flat in the horizon.
 *  - **Shards.** Satellites are partitioned into shard work units
 *    scheduled on the deterministic ThreadPool. Each satellite owns an
 *    RNG stream derived from (seed, satellite index) and a journal
 *    lane (region, slot = index + 1) whose ordinal resumes across
 *    chunks, so results — MissionResult, journal bytes, TimeSeries
 *    bins — are bit-identical for any KODAN_THREADS and any shard
 *    size (proved by `ctest -L constellation`).
 *  - **Fluid downlink queues.** On-board backlog is modeled as two
 *    value-separated pools (filter products, raw frames) with a
 *    bounded storage capacity, drained through the contact runs the
 *    scheduler closes each chunk. This fluid approximation replaces
 *    MissionSim's per-item queue walk: aggregate bits and value flow
 *    match, per-item latency is not tracked.
 *  - **Streaming telemetry.** Per-bin aggregates go straight into the
 *    PR-4 TimeSeries (registered with capacity for the full horizon)
 *    through a serial fold per chunk; per-satellite journal events are
 *    emitted inside the work items under the resumable lane cursor.
 */

#ifndef KODAN_SIM_CONSTELLATION_HPP
#define KODAN_SIM_CONSTELLATION_HPP

#include <cstddef>
#include <cstdint>

#include "sim/mission.hpp"
#include "util/units.hpp"

namespace kodan::sim {

/** Scenario + engine tuning for a constellation-scale run. */
struct ConstellationConfig
{
    /**
     * The mission scenario (constellation, ground segment, camera,
     * radio, duration, steps, seed, telemetry bin/prefix). Use
     * MissionConfig::makeConstellation for multi-plane layouts. The
     * mission's shard_size is ignored here; the engine uses the
     * shard_size below.
     */
    MissionConfig mission;
    /** Satellites per shard work unit (>= 1). Any value gives
     *  bit-identical results; larger shards amortize dispatch. */
    std::size_t shard_size = 16;
    /**
     * Streaming chunk length (s). Must be a positive multiple of both
     * the scheduler step and the telemetry bin width so chunk edges
     * stay on the allocation grid and every bin is closed by exactly
     * one chunk. The frame grid restarts at each chunk edge and the
     * storage cap is enforced per chunk, so chunk_s is part of the
     * scenario definition: results are bit-invariant to threads and
     * shards, not to chunk_s.
     */
    double chunk_s = util::kSecondsPerDay;
    /**
     * On-board storage per satellite (bits). Backlog beyond this is
     * dropped at the end of each chunk's capture phase — raw frames
     * first, then products — modeling a bounded solid-state recorder
     * (Landsat-8 carries ~3.1 Tbit). Infinity disables the cap.
     */
    double storage_bits = 3.1e12;
    /**
     * Synthetic degradation injection for health-plane validation: from
     * sim time `after_s` on, contact runs for satellite index
     * `satellite` transfer zero bits (the pass is still granted and
     * its seconds still accrue — the queue is silently dropped on the
     * ground, as in a misconfigured station). The backlog then grows
     * until the storage cap sheds it, so the `storage.drop` and
     * `downlink.absence` alerts fire for exactly this satellite.
     * Disabled at the default -1; results are bit-identical to an
     * engine without this knob when disabled.
     */
    struct Degradation
    {
        std::int64_t satellite = -1;
        double after_s = 0.0;
    };
    Degradation degrade;
};

/**
 * The constellation-scale engine. Construction mirrors MissionSim: a
 * null world draws i.i.d. frame values at the fixed prevalence.
 */
class ConstellationEngine
{
  public:
    /**
     * @param world Procedural world used to label frame values; when
     *        null, frame values are Bernoulli draws at
     *        @p fixed_prevalence.
     * @param fixed_prevalence Used only when @p world is null.
     */
    explicit ConstellationEngine(const data::GeoModel *world = nullptr,
                                 double fixed_prevalence = 1.0 / 3.0);

    /** Run the scenario under the given filter behaviour. */
    MissionResult run(const ConstellationConfig &config,
                      const FilterBehavior &filter) const;

  private:
    const data::GeoModel *world_;
    double fixed_prevalence_;
};

} // namespace kodan::sim

#endif // KODAN_SIM_CONSTELLATION_HPP
