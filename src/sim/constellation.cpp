#include "sim/constellation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ground/contact.hpp"
#include "sense/wrs.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace kodan::sim {

namespace {

/** Value-separated fluid pool of queued downlink bits. */
struct BitPool
{
    double bits = 0.0;
    double high_bits = 0.0;

    /** Remove @p amount bits; returns the high bits that go with them
     *  (pro-rata — the pool is well mixed). */
    double take(double amount)
    {
        if (bits <= 0.0 || amount <= 0.0) {
            return 0.0;
        }
        const double frac = std::min(1.0, amount / bits);
        const double high = high_bits * frac;
        bits -= amount;
        high_bits -= high;
        if (bits <= 0.0) {
            bits = 0.0;
            high_bits = 0.0;
        }
        return high;
    }
};

/** One sim-time bin of one satellite's chunk accounting. */
struct BinAccum
{
    std::int64_t frames = 0;
    std::int64_t processed = 0;
    double queued_bits = 0.0;
    double drained_bits = 0.0;
    double bits_down = 0.0;
    double high_bits_down = 0.0;
    double dropped_bits = 0.0;
};

/** Persistent per-satellite state carried across chunks. */
struct SatState
{
    util::Rng rng{0};
    BitPool products;
    BitPool raws;
    double dropped_bits = 0.0;
    std::uint32_t journal_ord = 0;
    SatelliteResult result;
};

} // namespace

ConstellationEngine::ConstellationEngine(const data::GeoModel *world,
                                         double fixed_prevalence)
    : world_(world), fixed_prevalence_(fixed_prevalence)
{
    assert(fixed_prevalence >= 0.0 && fixed_prevalence <= 1.0);
}

MissionResult
ConstellationEngine::run(const ConstellationConfig &config,
                         const FilterBehavior &filter) const
{
    const MissionConfig &mission = config.mission;
    assert(!mission.satellites.empty());
    assert(!mission.stations.empty());
    assert(config.chunk_s > 0.0);
    // Chunk edges must land on the scheduler's step grid and close whole
    // telemetry bins, or chunked results would diverge from one-shot
    // stepping (see GroundSegmentScheduler::State).
    assert(std::fmod(config.chunk_s, mission.scheduler_step) == 0.0);
    assert(std::fmod(config.chunk_s, mission.telemetry_bin_s) == 0.0);
    KODAN_TRACE_SCOPE("constellation.engine.run");
    telemetry::JournalRegion journal_region("constellation.mission");

    const std::size_t sat_count = mission.satellites.size();
    const std::size_t station_count = mission.stations.size();
    const std::size_t shard =
        config.shard_size > 0 ? config.shard_size : 1;
    const std::size_t shard_count = (sat_count + shard - 1) / shard;

    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("constellation.mission.config")
            .i64("satellites", static_cast<std::int64_t>(sat_count))
            .i64("stations", static_cast<std::int64_t>(station_count))
            .f64("duration_s", mission.duration)
            // shard_size and thread count are scheduling detail and
            // deliberately absent: journal bytes are part of the
            // determinism contract across both.
            .f64("chunk_s", config.chunk_s)
            .i64("seed", static_cast<std::int64_t>(mission.seed));
    }

    std::vector<orbit::J2Propagator> sats;
    sats.reserve(sat_count);
    for (const auto &elems : mission.satellites) {
        sats.emplace_back(elems);
    }
    const sense::WrsGrid grid;
    const sense::FrameCapture capture(mission.camera, grid);
    const double frame_bits = mission.camera.frameBits();

    std::vector<SatState> state(sat_count);
    std::vector<double> deadlines(sat_count, 0.0);
    for (std::size_t s = 0; s < sat_count; ++s) {
        state[s].rng = util::Rng(
            util::splitMix64(mission.seed ^ (0x5A7E111E5ULL + s)));
        deadlines[s] = capture.frameDeadline(sats[s]);
        state[s].result.frame_deadline = deadlines[s];
    }

    const ground::ContactFinder finder(mission.contact_scan_step);
    const ground::GroundSegmentScheduler scheduler(mission.scheduler_step);
    auto sched_state =
        scheduler.beginAllocation(sat_count, station_count, 0.0);

    const bool ts_on = telemetry::enabled();
    const bool journal_on = telemetry::journalEnabled();
    const bool health_on = telemetry::health::healthEnabled();
    const bool bins_on = ts_on || journal_on || health_on;
    const double bin_s =
        mission.telemetry_bin_s > 0.0 ? mission.telemetry_bin_s : 1800.0;
    const auto binOf = [bin_s](double t) {
        return static_cast<std::int64_t>(std::floor(t / bin_s));
    };

    // Register the streaming series with capacity for the whole horizon
    // up front; the per-(thread, series) default of 4096 bins would
    // silently evict the oldest bins of a year-long run.
    const std::string &prefix = mission.telemetry_prefix;
    const std::size_t horizon_bins =
        static_cast<std::size_t>(
            std::ceil(mission.duration / bin_s)) +
        8;
    telemetry::SeriesId id_observed = 0, id_processed = 0, id_bits = 0,
                        id_high_bits = 0, id_dvd = 0, id_depth = 0,
                        id_util = 0, id_dropped = 0;
    if (ts_on) {
        const auto series = [&](const char *suffix) {
            return telemetry::timeSeries(prefix + suffix, bin_s,
                                         horizon_bins);
        };
        id_observed = series(".frames.observed");
        id_processed = series(".frames.processed");
        id_bits = series(".downlink.bits");
        id_high_bits = series(".downlink.high_bits");
        id_dvd = series(".dvd");
        id_depth = series(".queue.depth_bits");
        id_util = series(".contact.utilization");
        id_dropped = series(".storage.dropped_bits");
    }

    const double util_capacity =
        bin_s * static_cast<double>(station_count);
    double depth_bits = 0.0; // running backlog across chunks
    // Per-satellite running backlog for the health plane's per-entity
    // queue signal (the global depth_bits above backs the TimeSeries).
    std::vector<double> sat_depth(health_on ? sat_count : 0, 0.0);
    std::vector<std::uint32_t> ord_before(
        health_on && journal_on ? sat_count : 0, 0);
    ground::GroundSegmentScheduler::Allocation final_allocation;
    using Interval = ground::GroundSegmentScheduler::Interval;
    std::vector<std::vector<Interval>> closed(sat_count);
    std::vector<std::map<std::int64_t, BinAccum>> chunk_bins(
        bins_on ? sat_count : 0);

    const std::size_t chunk_count = static_cast<std::size_t>(
        std::ceil(mission.duration / config.chunk_s));
    for (std::size_t c = 0; c < chunk_count; ++c) {
        KODAN_TRACE_SCOPE("constellation.engine.chunk");
        const double t0c = static_cast<double>(c) * config.chunk_s;
        const double t1c =
            std::min(mission.duration, t0c + config.chunk_s);
        const bool last_chunk = c + 1 == chunk_count;

        // Contact sweep + scheduler advance for this span (serial
        // orchestration; the sweep itself fans out over the pool).
        const auto windows =
            finder.findAllParallel(sats, mission.stations, t0c, t1c);
        scheduler.allocateSpan(windows, t1c, sched_state);

        // Harvest the contact runs the scheduler closed during this
        // span (the final chunk also closes every still-open run).
        if (last_chunk) {
            final_allocation =
                scheduler.finishAllocation(std::move(sched_state));
        }
        for (std::size_t s = 0; s < sat_count; ++s) {
            auto &intervals =
                last_chunk
                    ? final_allocation.intervals_per_satellite[s]
                    : sched_state.allocation.intervals_per_satellite[s];
            closed[s] = std::move(intervals);
            intervals.clear();
            std::sort(closed[s].begin(), closed[s].end(),
                      [](const Interval &a, const Interval &b) {
                          return a.start != b.start
                                     ? a.start < b.start
                                     : a.station < b.station;
                      });
        }

        if (health_on && journal_on) {
            for (std::size_t s = 0; s < sat_count; ++s) {
                ord_before[s] = state[s].journal_ord;
            }
        }

        // Sharded satellite pass: capture, filter, enforce storage,
        // drain the closed contact runs. Each satellite touches only
        // its own state, so shards and threads are scheduling detail.
        util::parallelFor(shard_count, [&](std::size_t shard_idx) {
            const std::size_t begin = shard_idx * shard;
            const std::size_t end =
                std::min(sat_count, begin + shard);
            for (std::size_t s = begin; s < end; ++s) {
                SatState &st = state[s];
                telemetry::JournalScope lane(journal_region.id(), s,
                                             st.journal_ord);
                auto *bins =
                    bins_on ? &chunk_bins[s] : nullptr;
                const double deadline = deadlines[s];
                const double processed_fraction =
                    filter.frame_time <= deadline
                        ? 1.0
                        : deadline / filter.frame_time;
                std::int64_t chunk_frames = 0;
                double chunk_drained = 0.0;

                for (double t = t0c; t < t1c; t += deadline) {
                    double value;
                    if (world_ != nullptr) {
                        value = frameValueFraction(
                            world_, fixed_prevalence_,
                            sats[s].subsatellitePoint(t), t, st.rng);
                    } else {
                        value = st.rng.bernoulli(fixed_prevalence_)
                                    ? 1.0
                                    : 0.0;
                    }
                    ++st.result.frames_observed;
                    ++chunk_frames;
                    st.result.bits_observed += frame_bits;
                    st.result.high_bits_observed += frame_bits * value;
                    const bool processed =
                        processed_fraction >= 1.0 ||
                        st.rng.bernoulli(processed_fraction);
                    if (bins != nullptr) {
                        BinAccum &bin = (*bins)[binOf(t)];
                        ++bin.frames;
                        if (processed) {
                            ++bin.processed;
                        }
                    }
                    if (!processed) {
                        if (filter.send_unprocessed) {
                            st.raws.bits += frame_bits;
                            st.raws.high_bits += frame_bits * value;
                            if (bins != nullptr) {
                                (*bins)[binOf(t)].queued_bits +=
                                    frame_bits;
                            }
                        }
                        continue;
                    }
                    ++st.result.frames_processed;
                    const double decided_t =
                        t + std::min(filter.frame_time, deadline);
                    const bool high = value >= 0.5;
                    const double keep_prob =
                        high ? filter.keep_high : filter.keep_low;
                    if (!st.rng.bernoulli(keep_prob)) {
                        continue; // discarded on orbit
                    }
                    const double bits =
                        frame_bits * filter.product_fraction;
                    const double high_bits =
                        filter.product_precision >= 0.0
                            ? bits * filter.product_precision
                            : bits * value;
                    st.products.bits += bits;
                    st.products.high_bits += high_bits;
                    if (bins != nullptr) {
                        (*bins)[binOf(decided_t)].queued_bits += bits;
                    }
                }

                // Bounded solid-state recorder: shed backlog beyond
                // the storage cap, raw frames first (lowest value
                // density), then products.
                const double backlog =
                    st.products.bits + st.raws.bits;
                if (backlog > config.storage_bits) {
                    double overflow = backlog - config.storage_bits;
                    const double from_raws =
                        std::min(st.raws.bits, overflow);
                    st.raws.take(from_raws);
                    overflow -= from_raws;
                    const double from_products =
                        std::min(st.products.bits, overflow);
                    st.products.take(from_products);
                    const double dropped = from_raws + from_products;
                    st.dropped_bits += dropped;
                    if (bins != nullptr) {
                        const std::int64_t drop_bin = std::max(
                            binOf(t0c), binOf(t1c) - 1);
                        (*bins)[drop_bin].dropped_bits += dropped;
                    }
                }

                // Drain the contact runs that closed this chunk. Pass
                // overhead is charged once per run, as in
                // DownlinkModel::bitsForContact.
                const bool degraded =
                    config.degrade.satellite >= 0 &&
                    static_cast<std::int64_t>(s) ==
                        config.degrade.satellite;
                for (const auto &run : closed[s]) {
                    st.result.contact_seconds += run.seconds();
                    // Injected degradation: the pass is granted but
                    // transfers nothing (see ConstellationConfig).
                    const double capacity =
                        degraded && run.end >= config.degrade.after_s
                            ? 0.0
                            : mission.radio.bitsForContact(
                                  run.seconds(), 1);
                    if (capacity <= 0.0) {
                        continue;
                    }
                    const double total =
                        st.products.bits + st.raws.bits;
                    double send_p = 0.0;
                    double send_r = 0.0;
                    if (total <= capacity) {
                        send_p = st.products.bits;
                        send_r = st.raws.bits;
                    } else if (filter.prioritize_products) {
                        send_p = std::min(st.products.bits, capacity);
                        send_r =
                            std::min(st.raws.bits, capacity - send_p);
                    } else {
                        // Capture-order (FIFO) drain, fluid limit: the
                        // pools are drained in proportion to their
                        // backlog shares.
                        send_p = capacity * st.products.bits / total;
                        send_r = capacity - send_p;
                    }
                    const double high_p = st.products.take(send_p);
                    const double high_r = st.raws.take(send_r);
                    const double sent = send_p + send_r;
                    const double high_sent = high_p + high_r;
                    st.result.bits_downlinked += sent;
                    st.result.high_bits_downlinked += high_sent;
                    st.result.frames_downlinked +=
                        frame_bits > 0.0 ? sent / frame_bits : 0.0;
                    chunk_drained += sent;
                    if (bins != nullptr && sent > 0.0) {
                        BinAccum &bin =
                            (*bins)[binOf(std::min(run.end, t1c))];
                        bin.drained_bits += sent;
                        bin.bits_down += sent;
                        bin.high_bits_down += high_sent;
                    }
                }

                if (journal_on) {
                    telemetry::JournalEventBuilder(
                        "constellation.satellite.chunk")
                        .i64("sat", static_cast<std::int64_t>(s))
                        .i64("chunk", static_cast<std::int64_t>(c))
                        .i64("frames", chunk_frames)
                        .f64("drained_bits", chunk_drained)
                        .f64("queue_bits",
                             st.products.bits + st.raws.bits)
                        .f64("dropped_bits", st.dropped_bits);
                    st.journal_ord = telemetry::journalScopeOrd();
                }
            }
        });

        // Serial fold of this chunk's bins into the global time series,
        // in satellite index order — the recorded multiset is invariant
        // to threads and shards.
        if (ts_on) {
            std::map<std::int64_t, BinAccum> merged;
            for (auto &bins : chunk_bins) {
                for (const auto &[bin, accum] : bins) {
                    BinAccum &into = merged[bin];
                    into.frames += accum.frames;
                    into.processed += accum.processed;
                    into.queued_bits += accum.queued_bits;
                    into.drained_bits += accum.drained_bits;
                    into.bits_down += accum.bits_down;
                    into.high_bits_down += accum.high_bits_down;
                    into.dropped_bits += accum.dropped_bits;
                }
            }
            for (const auto &[bin, accum] : merged) {
                const double t = static_cast<double>(bin) * bin_s;
                telemetry::timeSeriesRecord(
                    id_observed, t,
                    static_cast<double>(accum.frames));
                telemetry::timeSeriesRecord(
                    id_processed, t,
                    static_cast<double>(accum.processed));
                telemetry::timeSeriesRecord(id_bits, t, accum.bits_down);
                telemetry::timeSeriesRecord(id_high_bits, t,
                                            accum.high_bits_down);
                if (accum.bits_down > 0.0) {
                    telemetry::timeSeriesRecord(
                        id_dvd, t,
                        accum.high_bits_down / accum.bits_down);
                }
                depth_bits += accum.queued_bits - accum.drained_bits -
                              accum.dropped_bits;
                telemetry::timeSeriesRecord(id_depth, t, depth_bits);
                if (accum.dropped_bits > 0.0) {
                    telemetry::timeSeriesRecord(id_dropped, t,
                                                accum.dropped_bits);
                }
            }
            // Contact utilization: granted station-seconds per bin over
            // the segment's capacity. Runs closed this chunk may reach
            // back into earlier bins; the series sums contributions.
            std::map<std::int64_t, double> granted;
            for (const auto &runs : closed) {
                for (const auto &run : runs) {
                    for (std::int64_t bin = binOf(run.start);
                         static_cast<double>(bin) * bin_s < run.end;
                         ++bin) {
                        const double lo =
                            std::max(run.start,
                                     static_cast<double>(bin) * bin_s);
                        const double hi = std::min(
                            run.end,
                            static_cast<double>(bin + 1) * bin_s);
                        if (hi > lo) {
                            granted[bin] += hi - lo;
                        }
                    }
                }
            }
            for (const auto &[bin, seconds] : granted) {
                telemetry::timeSeriesRecord(
                    id_util, static_cast<double>(bin) * bin_s,
                    util_capacity > 0.0 ? seconds / util_capacity
                                        : 0.0);
            }
        }

        // Health-plane fold: per-satellite and per-station observations
        // fed in index order on this serial thread, so detector
        // verdicts, alert ids, and alert bytes are invariant to
        // threads and shards just like the TimeSeries bins. The fold
        // meters its own cost: bench_health asserts the
        // telemetry.self.health.fold_s total stays within budget.
        if (health_on) {
            KODAN_TIME_SCOPE("telemetry.self.health.fold_s");
            telemetry::health::HealthPlane &plane =
                telemetry::health::plane();
            using telemetry::health::EntityKind;
            static const std::string sig_queue = "queue.depth_bits";
            static const std::string sig_down = "downlink.bits";
            static const std::string sig_dvd = "dvd";
            static const std::string sig_frames = "frames.observed";
            static const std::string sig_dropped =
                "storage.dropped_bits";
            static const std::string sig_granted = "contact.granted_s";
            const std::int64_t chunk_last_bin = binOf(t1c) - 1;
            const double chunk_t =
                static_cast<double>(chunk_last_bin) * bin_s;
            std::int64_t observations = 0;
            for (std::size_t s = 0; s < sat_count; ++s) {
                const auto sat = static_cast<std::int64_t>(s);
                std::int64_t chunk_frames = 0;
                double chunk_dropped = 0.0;
                for (const auto &[bin, accum] : chunk_bins[s]) {
                    const double t = static_cast<double>(bin) * bin_s;
                    chunk_frames += accum.frames;
                    chunk_dropped += accum.dropped_bits;
                    sat_depth[s] += accum.queued_bits -
                                    accum.drained_bits -
                                    accum.dropped_bits;
                    plane.observe(EntityKind::Satellite, sat,
                                  sig_queue, bin, t, sat_depth[s]);
                    ++observations;
                    if (accum.bits_down > 0.0) {
                        plane.observe(EntityKind::Satellite, sat,
                                      sig_down, bin, t,
                                      accum.bits_down);
                        plane.observe(EntityKind::Satellite, sat,
                                      sig_dvd, bin, t,
                                      accum.high_bits_down /
                                          accum.bits_down);
                        observations += 2;
                    }
                }
                // Chunk-grained signals: one observation per chunk so
                // the storage threshold holds one alert across a
                // sustained shed instead of refiring per bin.
                plane.observe(EntityKind::Satellite, sat,
                              sig_frames, chunk_last_bin,
                              chunk_t,
                              static_cast<double>(chunk_frames));
                plane.observe(EntityKind::Satellite, sat,
                              sig_dropped, chunk_last_bin,
                              chunk_t, chunk_dropped);
                observations += 2;
                if (journal_on) {
                    plane.observeLane(EntityKind::Satellite, sat,
                                      journal_region.id(), s + 1,
                                      ord_before[s],
                                      state[s].journal_ord);
                }
            }
            std::map<std::pair<std::size_t, std::int64_t>, double>
                station_granted;
            for (const auto &runs : closed) {
                for (const auto &run : runs) {
                    for (std::int64_t bin = binOf(run.start);
                         static_cast<double>(bin) * bin_s < run.end;
                         ++bin) {
                        const double lo =
                            std::max(run.start,
                                     static_cast<double>(bin) * bin_s);
                        const double hi = std::min(
                            run.end,
                            static_cast<double>(bin + 1) * bin_s);
                        if (hi > lo) {
                            station_granted[{run.station, bin}] +=
                                hi - lo;
                        }
                    }
                }
            }
            for (const auto &[key, seconds] : station_granted) {
                plane.observe(EntityKind::Station,
                              static_cast<std::int64_t>(key.first),
                              sig_granted, key.second,
                              static_cast<double>(key.second) * bin_s,
                              seconds);
                ++observations;
            }
            plane.advance(chunk_last_bin, chunk_t);
            KODAN_COUNT_ADD("telemetry.health.observations",
                            observations);
        }
        if (bins_on) {
            for (auto &bins : chunk_bins) {
                bins.clear();
            }
        }
        for (auto &runs : closed) {
            runs.clear();
        }
    }

    MissionResult result;
    result.per_satellite.resize(sat_count);
    for (std::size_t s = 0; s < sat_count; ++s) {
        result.per_satellite[s] = state[s].result;
    }
    result.idle_station_seconds = final_allocation.idle_station_seconds;
    result.busy_station_seconds = final_allocation.busy_station_seconds;

    if (ts_on) {
        const SatelliteResult totals = result.totals();
        KODAN_COUNT_ADD("constellation.frames.observed",
                        totals.frames_observed);
        KODAN_COUNT_ADD("constellation.frames.processed",
                        totals.frames_processed);
        KODAN_GAUGE_ADD("constellation.downlink.bits",
                        totals.bits_downlinked);
        KODAN_GAUGE_ADD("constellation.contact.seconds_granted",
                        totals.contact_seconds);
    }
    if (journal_on) {
        // Per-satellite closing summaries on each satellite's own lane,
        // then the mission totals on the region lane.
        for (std::size_t s = 0; s < sat_count; ++s) {
            telemetry::JournalScope lane(journal_region.id(), s,
                                         state[s].journal_ord);
            const SatelliteResult &sat = result.per_satellite[s];
            telemetry::JournalEventBuilder(
                "constellation.satellite.summary")
                .i64("frames_observed", sat.frames_observed)
                .i64("frames_processed", sat.frames_processed)
                .f64("frames_downlinked", sat.frames_downlinked)
                .f64("high_bits_downlinked", sat.high_bits_downlinked)
                .f64("contact_seconds", sat.contact_seconds)
                .f64("dropped_bits", state[s].dropped_bits);
        }
        const SatelliteResult totals = result.totals();
        telemetry::JournalEventBuilder("constellation.mission.totals")
            .i64("frames_observed", totals.frames_observed)
            .i64("frames_processed", totals.frames_processed)
            .f64("frames_downlinked", totals.frames_downlinked)
            .f64("bits_downlinked", totals.bits_downlinked)
            .f64("high_bits_downlinked", totals.high_bits_downlinked)
            .f64("busy_station_seconds", result.busy_station_seconds)
            .f64("idle_station_seconds", result.idle_station_seconds);
    }
    return result;
}

} // namespace kodan::sim
