#include "sim/mission.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "sense/wrs.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace kodan::sim {

namespace {

/**
 * Walks a satellite's granted contact intervals, mapping cumulative
 * downlinked bits to the sim time at which the radio finishes them.
 * Pass overhead is spent at the start of each interval, mirroring
 * DownlinkModel::bitsForContact (which deducts it once per pass), so
 * the walk and the budget accounting describe the same radio.
 */
struct ContactWalk
{
    const std::vector<ground::GroundSegmentScheduler::Interval> &intervals;
    double rate_bps;
    double overhead_s;
    std::size_t idx = 0;
    double used_s = 0.0; // usable seconds consumed in intervals[idx]

    double usable(std::size_t i) const
    {
        return std::max(0.0, intervals[i].seconds() - overhead_s);
    }

    void skipExhausted()
    {
        while (idx < intervals.size() && used_s >= usable(idx)) {
            ++idx;
            used_s = 0.0;
        }
    }

    /** Sim time at the radio's current position (next transmittable
     *  instant); clamps to the last interval's end when exhausted. */
    double position()
    {
        skipExhausted();
        if (idx >= intervals.size()) {
            return intervals.empty() ? 0.0 : intervals.back().end;
        }
        return intervals[idx].start + overhead_s + used_s;
    }

    /** Consume @p bits of capacity; sim time when the last bit leaves
     *  the radio. */
    double finish(double bits)
    {
        skipExhausted();
        while (idx < intervals.size()) {
            const double remaining_s = usable(idx) - used_s;
            const double need_s =
                rate_bps > 0.0
                    ? bits / rate_bps
                    : std::numeric_limits<double>::infinity();
            if (need_s <= remaining_s) {
                used_s += need_s;
                return intervals[idx].start + overhead_s + used_s;
            }
            bits -= remaining_s * rate_bps;
            ++idx;
            used_s = 0.0;
        }
        return position();
    }
};

/** One sim-time bin of one satellite's telemetry accounting. */
struct BinAccum
{
    std::int64_t frames = 0;
    std::int64_t processed = 0;
    double queued_bits = 0.0;  // enqueued during this bin
    double drained_bits = 0.0; // finished downlinking during this bin
    double bits_down = 0.0;
    double high_bits_down = 0.0;
};

/** Per-satellite telemetry accumulation, filled inside the work item
 *  and folded into the global time series serially afterwards. */
struct SatTelemetry
{
    std::map<std::int64_t, BinAccum> bins;
    /** (downlink completion time, end-to-end latency) per sent item. */
    std::vector<std::pair<double, double>> latencies;
};

} // namespace

MissionConfig
MissionConfig::landsatConstellation(int satellite_count)
{
    return makeConstellation(satellite_count, 1, 0);
}

MissionConfig
MissionConfig::makeConstellation(int satellite_count, int planes,
                                 int phasing)
{
    assert(satellite_count >= 1);
    assert(planes >= 1 && satellite_count % planes == 0);
    MissionConfig config;
    config.satellites = orbit::sunSynchronousConstellation(
        satellite_count, planes, phasing, 705.0e3);
    config.stations = ground::landsatGroundSegment();
    config.camera = sense::CameraModel::landsat8Multispectral();
    return config;
}

FilterBehavior
FilterBehavior::bentPipe()
{
    FilterBehavior filter;
    // Modeled as "no processing at all": every frame stays raw and is
    // queued for downlink in capture order (indiscriminate).
    filter.frame_time = std::numeric_limits<double>::infinity();
    filter.send_unprocessed = true;
    return filter;
}

FilterBehavior
FilterBehavior::idealFilter()
{
    FilterBehavior filter;
    filter.frame_time = 0.0;
    filter.keep_high = 1.0;
    filter.keep_low = 0.0;
    filter.send_unprocessed = false;
    return filter;
}

MissionSim::MissionSim(const data::GeoModel *world, double fixed_prevalence)
    : world_(world), fixed_prevalence_(fixed_prevalence)
{
    assert(fixed_prevalence >= 0.0 && fixed_prevalence <= 1.0);
}

double
frameValueFraction(const data::GeoModel *world, double fixed_prevalence,
                   const orbit::Geodetic &center, double time,
                   util::Rng &rng)
{
    if (world == nullptr) {
        return rng.bernoulli(fixed_prevalence) ? 1.0 : 0.0;
    }
    // Sample a 3x3 lattice across the frame footprint.
    const double spread = 50.0e3 / util::kEarthRadius; // ~ frame third
    int clear = 0;
    for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
            const double lat = util::clamp(center.latitude + dr * spread,
                                           -util::kPi / 2.0 + 1e-6,
                                           util::kPi / 2.0 - 1e-6);
            const double lon = center.longitude + dc * spread;
            if (!world->cloudyAt(lat, lon, time)) {
                ++clear;
            }
        }
    }
    return clear / 9.0;
}

double
MissionSim::frameValueFraction(const orbit::Geodetic &center, double time,
                               util::Rng &rng) const
{
    return sim::frameValueFraction(world_, fixed_prevalence_, center, time,
                                   rng);
}

SatelliteResult
MissionResult::totals() const
{
    SatelliteResult sum;
    for (const auto &sat : per_satellite) {
        sum.frames_observed += sat.frames_observed;
        sum.frames_processed += sat.frames_processed;
        sum.frames_downlinked += sat.frames_downlinked;
        sum.bits_observed += sat.bits_observed;
        sum.high_bits_observed += sat.high_bits_observed;
        sum.bits_downlinked += sat.bits_downlinked;
        sum.high_bits_downlinked += sat.high_bits_downlinked;
        sum.contact_seconds += sat.contact_seconds;
        sum.frame_deadline = sat.frame_deadline;
    }
    return sum;
}

MissionResult
MissionSim::run(const MissionConfig &config,
                const FilterBehavior &filter) const
{
    assert(!config.satellites.empty());
    assert(!config.stations.empty());
    KODAN_TRACE_SCOPE("sim.mission.run");
    // Flight recorder: the whole mission is one journal region. The
    // serial prelude (contact search, ground allocation) records on the
    // region's own lane; satellite s records into slot s + 1.
    telemetry::JournalRegion journal_region("sim.mission");
    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("sim.mission.config")
            .i64("satellites",
                 static_cast<std::int64_t>(config.satellites.size()))
            .i64("stations",
                 static_cast<std::int64_t>(config.stations.size()))
            .f64("duration_s", config.duration)
            .i64("seed", static_cast<std::int64_t>(config.seed));
    }

    std::vector<orbit::J2Propagator> sats;
    sats.reserve(config.satellites.size());
    for (const auto &elems : config.satellites) {
        sats.emplace_back(elems);
    }

    // Ground segment: find all windows, then allocate under contention.
    const ground::ContactFinder finder(config.contact_scan_step);
    const auto windows =
        finder.findAll(sats, config.stations, 0.0, config.duration);
    const ground::GroundSegmentScheduler scheduler(config.scheduler_step);
    const auto allocation = scheduler.allocate(
        windows, sats.size(), config.stations.size(), 0.0, config.duration);

    MissionResult result;
    result.idle_station_seconds = allocation.idle_station_seconds;
    result.busy_station_seconds = allocation.busy_station_seconds;
    KODAN_COUNT_ADD("ground.contact.windows.found", windows.size());

    const double frame_bits = config.camera.frameBits();
    const sense::WrsGrid grid;
    const sense::FrameCapture capture(config.camera, grid);

    // Recording gates, resolved once. The timing walk (queue drain
    // times, lineage stamps, per-bin downlink accounting) only runs when
    // some recorder will consume it; the default path is unchanged.
    const bool ts_on = telemetry::enabled();
    const bool journal_on = telemetry::journalEnabled();
    const bool lineage_on = telemetry::lineageEnabled();
    const bool bins_on = ts_on || journal_on;
    const bool want_timing = bins_on || lineage_on;
    const double bin_s =
        config.telemetry_bin_s > 0.0 ? config.telemetry_bin_s : 1800.0;
    const auto binOf = [bin_s](double t) {
        return static_cast<std::int64_t>(std::floor(t / bin_s));
    };
    std::vector<SatTelemetry> sat_telemetry(want_timing ? sats.size() : 0);

    // Satellites are simulated in parallel, grouped into shard work
    // units. Each satellite draws from its own RNG stream derived from
    // (mission seed, satellite index) and records into its own journal
    // lane, so its trajectory of random decisions is a pure function of
    // the config — independent of thread count, shard size, and the
    // other satellites.
    result.per_satellite.resize(sats.size());
    const auto simulateSatellite = [&](std::size_t s) {
        telemetry::JournalScope journal_scope(journal_region.id(), s);
        util::Rng rng(util::splitMix64(config.seed ^
                                       (0x5A7E111E5ULL + s)));
        SatelliteResult sat_result;
        sat_result.contact_seconds = allocation.seconds_per_satellite[s];
        const double deadline = capture.frameDeadline(sats[s]);
        sat_result.frame_deadline = deadline;

        const double processed_fraction =
            filter.frame_time <= deadline
                ? 1.0
                : deadline / filter.frame_time;

        const auto frames = capture.capture(sats[s], s, 0.0,
                                            config.duration);
        SatTelemetry *tm = want_timing ? &sat_telemetry[s] : nullptr;
        // Downlink queue: products first (highest value density first),
        // then raw frames in capture order.
        struct QueueItem
        {
            double bits;
            double high_bits;
            double capture_t;
            double enqueue_t;
            std::uint64_t ord; // capture ordinal (lineage id)
        };
        std::vector<QueueItem> products;
        std::vector<QueueItem> raws;
        std::vector<QueueItem> fifo; // capture order, products + raws

        for (const auto &frame : frames) {
            const double value =
                frameValueFraction(frame.center, frame.time, rng);
            const auto ord =
                static_cast<std::uint64_t>(sat_result.frames_observed);
            const std::uint64_t frame_id =
                telemetry::lineageFrameId(s, ord);
            ++sat_result.frames_observed;
            sat_result.bits_observed += frame_bits;
            sat_result.high_bits_observed += frame_bits * value;
            if (lineage_on) {
                telemetry::recordLineageSpan(
                    frame_id, telemetry::LineageStage::Captured,
                    frame.time);
            }

            const bool processed =
                processed_fraction >= 1.0 ||
                rng.bernoulli(processed_fraction);
            if (tm != nullptr && bins_on) {
                BinAccum &bin = tm->bins[binOf(frame.time)];
                ++bin.frames;
                if (processed) {
                    ++bin.processed;
                }
            }
            if (!processed) {
                if (filter.send_unprocessed) {
                    // Raw pass-through: no decision stage, enqueued at
                    // capture.
                    raws.push_back({frame_bits, frame_bits * value,
                                    frame.time, frame.time, ord});
                    fifo.push_back(raws.back());
                    if (tm != nullptr && bins_on) {
                        tm->bins[binOf(frame.time)].queued_bits +=
                            frame_bits;
                    }
                    if (lineage_on) {
                        telemetry::recordLineageSpan(
                            frame_id, telemetry::LineageStage::Enqueued,
                            frame.time);
                    }
                }
                continue;
            }
            ++sat_result.frames_processed;
            // On-board compute charged to the frame: the filter runs for
            // frame_time, bounded by the capture deadline.
            const double decided_t =
                frame.time + std::min(filter.frame_time, deadline);
            if (lineage_on) {
                telemetry::recordLineageSpan(
                    frame_id, telemetry::LineageStage::Decided,
                    decided_t);
            }
            const bool high = value >= 0.5;
            const double keep_prob =
                high ? filter.keep_high : filter.keep_low;
            if (!rng.bernoulli(keep_prob)) {
                continue; // discarded on orbit
            }
            const double bits = frame_bits * filter.product_fraction;
            const double high_bits =
                filter.product_precision >= 0.0
                    ? bits * filter.product_precision
                    : frame_bits * filter.product_fraction * value;
            products.push_back(
                {bits, high_bits, frame.time, decided_t, ord});
            fifo.push_back(products.back());
            if (tm != nullptr && bins_on) {
                tm->bins[binOf(decided_t)].queued_bits += bits;
            }
            if (lineage_on) {
                telemetry::recordLineageSpan(
                    frame_id, telemetry::LineageStage::Enqueued,
                    decided_t);
            }
        }

        std::sort(products.begin(), products.end(),
                  [](const QueueItem &a, const QueueItem &b) {
                      const double da =
                          a.bits > 0.0 ? a.high_bits / a.bits : 0.0;
                      const double db =
                          b.bits > 0.0 ? b.high_bits / b.bits : 0.0;
                      return da > db;
                  });

        double budget = config.radio.bitsForContact(
            allocation.seconds_per_satellite[s],
            allocation.passes_per_satellite[s]);
        std::int64_t items_sent = 0;    // got (some) downlink budget
        std::int64_t items_dropped = 0; // budget exhausted before them
        // Timeline walk for the recorders: where the budget model says
        // *how much* reaches the ground, the walk says *when* — items
        // drain through the granted contact runs in drain order, and a
        // monotone clock keeps completion times consistent with the
        // value-priority queue discipline.
        ContactWalk walk{allocation.intervals_per_satellite[s],
                         config.radio.datarate_bps,
                         config.radio.pass_overhead_s};
        double drain_clock = 0.0;
        auto drain = [&](const std::vector<QueueItem> &queue) {
            for (const auto &item : queue) {
                if (budget <= 0.0) {
                    ++items_dropped;
                    continue;
                }
                const double sent = std::min(budget, item.bits);
                const double frac =
                    item.bits > 0.0 ? sent / item.bits : 0.0;
                sat_result.bits_downlinked += sent;
                sat_result.high_bits_downlinked += item.high_bits * frac;
                sat_result.frames_downlinked +=
                    frame_bits > 0.0 ? sent / frame_bits : 0.0;
                budget -= sent;
                ++items_sent;
                if (!want_timing) {
                    continue;
                }
                const double service_t = walk.position();
                const double contact_t =
                    std::max(item.enqueue_t, service_t);
                const double done_t = walk.finish(sent);
                drain_clock =
                    std::max({drain_clock, item.enqueue_t, done_t});
                const double down_t = drain_clock;
                if (tm != nullptr && bins_on) {
                    BinAccum &bin = tm->bins[binOf(down_t)];
                    bin.drained_bits += sent;
                    bin.bits_down += sent;
                    bin.high_bits_down += item.high_bits * frac;
                }
                if (tm != nullptr && ts_on) {
                    tm->latencies.emplace_back(down_t,
                                               down_t - item.capture_t);
                }
                if (lineage_on) {
                    const std::uint64_t frame_id =
                        telemetry::lineageFrameId(s, item.ord);
                    telemetry::recordLineageSpan(
                        frame_id, telemetry::LineageStage::Contact,
                        contact_t);
                    telemetry::recordLineageSpan(
                        frame_id, telemetry::LineageStage::Downlinked,
                        down_t);
                    // Ground receipt: propagation delay is below the
                    // model's resolution.
                    telemetry::recordLineageSpan(
                        frame_id, telemetry::LineageStage::Received,
                        down_t);
                }
            }
        };
        if (filter.prioritize_products) {
            drain(products);
            drain(raws);
        } else {
            drain(fifo);
        }

        // Bulk accounting per satellite, after the tick loop, so the
        // instrumented path adds no per-frame work.
        if (telemetry::enabled()) {
            KODAN_TRACE_SPAN("sim.satellite.tick");
            KODAN_COUNT_ADD("sim.frames.observed",
                            sat_result.frames_observed);
            KODAN_COUNT_ADD("sim.frames.processed",
                            sat_result.frames_processed);
            double queued_bits = 0.0;
            for (const auto &item : fifo) {
                queued_bits += item.bits;
            }
            KODAN_GAUGE_ADD("ground.downlink.bits_queued", queued_bits);
            KODAN_GAUGE_ADD("ground.downlink.bits_drained",
                            sat_result.bits_downlinked);
            KODAN_GAUGE_ADD("ground.contact.seconds_granted",
                            sat_result.contact_seconds);
        }
        if (telemetry::journalEnabled()) {
            telemetry::JournalEventBuilder("sim.satellite.queue")
                .i64("products_queued",
                     static_cast<std::int64_t>(products.size()))
                .i64("raws_queued",
                     static_cast<std::int64_t>(raws.size()))
                .i64("items_sent", items_sent)
                .i64("items_dropped", items_dropped)
                .f64("bits_downlinked", sat_result.bits_downlinked);
            telemetry::JournalEventBuilder("sim.satellite.summary")
                .i64("frames_observed", sat_result.frames_observed)
                .i64("frames_processed", sat_result.frames_processed)
                .f64("frames_downlinked", sat_result.frames_downlinked)
                .f64("high_bits_downlinked",
                     sat_result.high_bits_downlinked)
                .f64("contact_seconds", sat_result.contact_seconds);
            // Sim-time-binned per-satellite accounting: one event per
            // active bin, emitted inside the work item so the (region,
            // slot, ord) key orders them deterministically. kodan-top
            // tails these for its live sparklines.
            if (tm != nullptr) {
                const std::string type =
                    config.telemetry_prefix + ".satellite.bin";
                for (const auto &[bin, accum] : tm->bins) {
                    telemetry::JournalEventBuilder(type.c_str())
                        .i64("sat", static_cast<std::int64_t>(s))
                        .i64("bin", bin)
                        .f64("t_s", static_cast<double>(bin) * bin_s)
                        .i64("frames", accum.frames)
                        .i64("processed", accum.processed)
                        .f64("queued_bits", accum.queued_bits)
                        .f64("bits", accum.bits_down)
                        .f64("high_bits", accum.high_bits_down)
                        .f64("dvd", accum.bits_down > 0.0
                                        ? accum.high_bits_down /
                                              accum.bits_down
                                        : 0.0);
                }
            }
        }

        result.per_satellite[s] = sat_result;
    };
    const std::size_t shard =
        config.shard_size > 0 ? config.shard_size : 1;
    const std::size_t shard_count = (sats.size() + shard - 1) / shard;
    util::parallelFor(shard_count, [&](std::size_t shard_idx) {
        const std::size_t begin = shard_idx * shard;
        const std::size_t end = std::min(sats.size(), begin + shard);
        for (std::size_t s = begin; s < end; ++s) {
            simulateSatellite(s);
        }
    });

    // Fold the per-satellite bins into the global time series serially,
    // in satellite index order, so the recorded multiset — and therefore
    // the exported bytes — are invariant to KODAN_THREADS.
    if (ts_on) {
        const std::string &prefix = config.telemetry_prefix;
        const auto series = [&](const char *suffix) {
            return telemetry::timeSeries(prefix + suffix, bin_s);
        };
        const telemetry::SeriesId id_observed =
            series(".frames.observed");
        const telemetry::SeriesId id_processed =
            series(".frames.processed");
        const telemetry::SeriesId id_bits = series(".downlink.bits");
        const telemetry::SeriesId id_high_bits =
            series(".downlink.high_bits");
        const telemetry::SeriesId id_dvd = series(".dvd");
        const telemetry::SeriesId id_depth = series(".queue.depth_bits");
        const telemetry::SeriesId id_util =
            series(".contact.utilization");
        const telemetry::SeriesId id_latency = series(".latency.e2e_s");

        std::map<std::int64_t, BinAccum> merged;
        for (const auto &tm : sat_telemetry) {
            for (const auto &[bin, accum] : tm.bins) {
                BinAccum &into = merged[bin];
                into.frames += accum.frames;
                into.processed += accum.processed;
                into.queued_bits += accum.queued_bits;
                into.drained_bits += accum.drained_bits;
                into.bits_down += accum.bits_down;
                into.high_bits_down += accum.high_bits_down;
            }
        }
        double depth_bits = 0.0;
        for (const auto &[bin, accum] : merged) {
            const double t = static_cast<double>(bin) * bin_s;
            telemetry::timeSeriesRecord(
                id_observed, t, static_cast<double>(accum.frames));
            telemetry::timeSeriesRecord(
                id_processed, t, static_cast<double>(accum.processed));
            telemetry::timeSeriesRecord(id_bits, t, accum.bits_down);
            telemetry::timeSeriesRecord(id_high_bits, t,
                                        accum.high_bits_down);
            if (accum.bits_down > 0.0) {
                telemetry::timeSeriesRecord(
                    id_dvd, t, accum.high_bits_down / accum.bits_down);
            }
            depth_bits += accum.queued_bits - accum.drained_bits;
            telemetry::timeSeriesRecord(id_depth, t, depth_bits);
        }
        // Contact utilization: granted station-seconds per bin (all
        // satellites) over the segment's capacity in that bin.
        std::map<std::int64_t, double> granted;
        for (const auto &intervals : allocation.intervals_per_satellite) {
            for (const auto &interval : intervals) {
                for (std::int64_t bin = binOf(interval.start);
                     static_cast<double>(bin) * bin_s < interval.end;
                     ++bin) {
                    const double lo = std::max(
                        interval.start, static_cast<double>(bin) * bin_s);
                    const double hi = std::min(
                        interval.end,
                        static_cast<double>(bin + 1) * bin_s);
                    if (hi > lo) {
                        granted[bin] += hi - lo;
                    }
                }
            }
        }
        const double capacity =
            bin_s * static_cast<double>(config.stations.size());
        for (const auto &[bin, seconds] : granted) {
            telemetry::timeSeriesRecord(
                id_util, static_cast<double>(bin) * bin_s,
                capacity > 0.0 ? seconds / capacity : 0.0);
        }
        for (const auto &tm : sat_telemetry) {
            for (const auto &[down_t, latency_s] : tm.latencies) {
                telemetry::timeSeriesRecord(id_latency, down_t,
                                            latency_s);
            }
        }
    }
    if (telemetry::journalEnabled()) {
        const SatelliteResult totals = result.totals();
        telemetry::JournalEventBuilder("sim.mission.totals")
            .i64("frames_observed", totals.frames_observed)
            .i64("frames_processed", totals.frames_processed)
            .f64("frames_downlinked", totals.frames_downlinked)
            .f64("bits_downlinked", totals.bits_downlinked)
            .f64("high_bits_downlinked", totals.high_bits_downlinked);
    }
    return result;
}

} // namespace kodan::sim
