#include "sim/mission.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sense/wrs.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace kodan::sim {

MissionConfig
MissionConfig::landsatConstellation(int satellite_count)
{
    assert(satellite_count >= 1);
    MissionConfig config;
    for (int k = 0; k < satellite_count; ++k) {
        const double phase =
            util::kTwoPi * k / static_cast<double>(satellite_count);
        config.satellites.push_back(
            orbit::OrbitalElements::landsat8(0.0, phase));
    }
    config.stations = ground::landsatGroundSegment();
    config.camera = sense::CameraModel::landsat8Multispectral();
    return config;
}

FilterBehavior
FilterBehavior::bentPipe()
{
    FilterBehavior filter;
    // Modeled as "no processing at all": every frame stays raw and is
    // queued for downlink in capture order (indiscriminate).
    filter.frame_time = std::numeric_limits<double>::infinity();
    filter.send_unprocessed = true;
    return filter;
}

FilterBehavior
FilterBehavior::idealFilter()
{
    FilterBehavior filter;
    filter.frame_time = 0.0;
    filter.keep_high = 1.0;
    filter.keep_low = 0.0;
    filter.send_unprocessed = false;
    return filter;
}

MissionSim::MissionSim(const data::GeoModel *world, double fixed_prevalence)
    : world_(world), fixed_prevalence_(fixed_prevalence)
{
    assert(fixed_prevalence >= 0.0 && fixed_prevalence <= 1.0);
}

double
MissionSim::frameValueFraction(const orbit::Geodetic &center, double time,
                               util::Rng &rng) const
{
    if (world_ == nullptr) {
        return rng.bernoulli(fixed_prevalence_) ? 1.0 : 0.0;
    }
    // Sample a 3x3 lattice across the frame footprint.
    const double spread = 50.0e3 / util::kEarthRadius; // ~ frame third
    int clear = 0;
    for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
            const double lat = util::clamp(center.latitude + dr * spread,
                                           -util::kPi / 2.0 + 1e-6,
                                           util::kPi / 2.0 - 1e-6);
            const double lon = center.longitude + dc * spread;
            if (!world_->cloudyAt(lat, lon, time)) {
                ++clear;
            }
        }
    }
    return clear / 9.0;
}

SatelliteResult
MissionResult::totals() const
{
    SatelliteResult sum;
    for (const auto &sat : per_satellite) {
        sum.frames_observed += sat.frames_observed;
        sum.frames_processed += sat.frames_processed;
        sum.frames_downlinked += sat.frames_downlinked;
        sum.bits_observed += sat.bits_observed;
        sum.high_bits_observed += sat.high_bits_observed;
        sum.bits_downlinked += sat.bits_downlinked;
        sum.high_bits_downlinked += sat.high_bits_downlinked;
        sum.contact_seconds += sat.contact_seconds;
        sum.frame_deadline = sat.frame_deadline;
    }
    return sum;
}

MissionResult
MissionSim::run(const MissionConfig &config,
                const FilterBehavior &filter) const
{
    assert(!config.satellites.empty());
    assert(!config.stations.empty());
    KODAN_PROFILE_SCOPE("sim.mission.run");
    // Flight recorder: the whole mission is one journal region. The
    // serial prelude (contact search, ground allocation) records on the
    // region's own lane; satellite s records into slot s + 1.
    telemetry::JournalRegion journal_region("sim.mission");
    if (telemetry::journalEnabled()) {
        telemetry::JournalEventBuilder("sim.mission.config")
            .i64("satellites",
                 static_cast<std::int64_t>(config.satellites.size()))
            .i64("stations",
                 static_cast<std::int64_t>(config.stations.size()))
            .f64("duration_s", config.duration)
            .i64("seed", static_cast<std::int64_t>(config.seed));
    }

    std::vector<orbit::J2Propagator> sats;
    sats.reserve(config.satellites.size());
    for (const auto &elems : config.satellites) {
        sats.emplace_back(elems);
    }

    // Ground segment: find all windows, then allocate under contention.
    const ground::ContactFinder finder(config.contact_scan_step);
    const auto windows =
        finder.findAll(sats, config.stations, 0.0, config.duration);
    const ground::GroundSegmentScheduler scheduler(config.scheduler_step);
    const auto allocation = scheduler.allocate(
        windows, sats.size(), config.stations.size(), 0.0, config.duration);

    MissionResult result;
    result.idle_station_seconds = allocation.idle_station_seconds;
    result.busy_station_seconds = allocation.busy_station_seconds;
    KODAN_COUNT_ADD("ground.contact.windows.found", windows.size());

    const double frame_bits = config.camera.frameBits();
    const sense::WrsGrid grid;
    const sense::FrameCapture capture(config.camera, grid);

    // Satellites are simulated in parallel. Each satellite draws from its
    // own RNG stream derived from (mission seed, satellite index), so its
    // trajectory of random decisions is a pure function of the config —
    // independent of thread count and of the other satellites.
    result.per_satellite.resize(sats.size());
    util::parallelFor(sats.size(), [&](std::size_t s) {
        telemetry::JournalScope journal_scope(journal_region.id(), s);
        util::Rng rng(util::splitMix64(config.seed ^
                                       (0x5A7E111E5ULL + s)));
        SatelliteResult sat_result;
        sat_result.contact_seconds = allocation.seconds_per_satellite[s];
        const double deadline = capture.frameDeadline(sats[s]);
        sat_result.frame_deadline = deadline;

        const double processed_fraction =
            filter.frame_time <= deadline
                ? 1.0
                : deadline / filter.frame_time;

        const auto frames = capture.capture(sats[s], s, 0.0,
                                            config.duration);
        // Downlink queue: products first (highest value density first),
        // then raw frames in capture order.
        struct QueueItem
        {
            double bits;
            double high_bits;
        };
        std::vector<QueueItem> products;
        std::vector<QueueItem> raws;
        std::vector<QueueItem> fifo; // capture order, products + raws

        for (const auto &frame : frames) {
            const double value =
                frameValueFraction(frame.center, frame.time, rng);
            ++sat_result.frames_observed;
            sat_result.bits_observed += frame_bits;
            sat_result.high_bits_observed += frame_bits * value;

            const bool processed =
                processed_fraction >= 1.0 ||
                rng.bernoulli(processed_fraction);
            if (!processed) {
                if (filter.send_unprocessed) {
                    raws.push_back({frame_bits, frame_bits * value});
                    fifo.push_back(raws.back());
                }
                continue;
            }
            ++sat_result.frames_processed;
            const bool high = value >= 0.5;
            const double keep_prob =
                high ? filter.keep_high : filter.keep_low;
            if (!rng.bernoulli(keep_prob)) {
                continue; // discarded on orbit
            }
            const double bits = frame_bits * filter.product_fraction;
            const double high_bits =
                filter.product_precision >= 0.0
                    ? bits * filter.product_precision
                    : frame_bits * filter.product_fraction * value;
            products.push_back({bits, high_bits});
            fifo.push_back(products.back());
        }

        std::sort(products.begin(), products.end(),
                  [](const QueueItem &a, const QueueItem &b) {
                      const double da =
                          a.bits > 0.0 ? a.high_bits / a.bits : 0.0;
                      const double db =
                          b.bits > 0.0 ? b.high_bits / b.bits : 0.0;
                      return da > db;
                  });

        double budget = config.radio.bitsForContact(
            allocation.seconds_per_satellite[s],
            allocation.passes_per_satellite[s]);
        std::int64_t items_sent = 0;    // got (some) downlink budget
        std::int64_t items_dropped = 0; // budget exhausted before them
        auto drain = [&](const std::vector<QueueItem> &queue) {
            for (const auto &item : queue) {
                if (budget <= 0.0) {
                    ++items_dropped;
                    continue;
                }
                const double sent = std::min(budget, item.bits);
                const double frac =
                    item.bits > 0.0 ? sent / item.bits : 0.0;
                sat_result.bits_downlinked += sent;
                sat_result.high_bits_downlinked += item.high_bits * frac;
                sat_result.frames_downlinked +=
                    frame_bits > 0.0 ? sent / frame_bits : 0.0;
                budget -= sent;
                ++items_sent;
            }
        };
        if (filter.prioritize_products) {
            drain(products);
            drain(raws);
        } else {
            drain(fifo);
        }

        // Bulk accounting per satellite, after the tick loop, so the
        // instrumented path adds no per-frame work.
        if (telemetry::enabled()) {
            KODAN_TRACE_SPAN("sim.satellite.tick");
            KODAN_COUNT_ADD("sim.frames.observed",
                            sat_result.frames_observed);
            KODAN_COUNT_ADD("sim.frames.processed",
                            sat_result.frames_processed);
            double queued_bits = 0.0;
            for (const auto &item : fifo) {
                queued_bits += item.bits;
            }
            KODAN_GAUGE_ADD("ground.downlink.bits_queued", queued_bits);
            KODAN_GAUGE_ADD("ground.downlink.bits_drained",
                            sat_result.bits_downlinked);
            KODAN_GAUGE_ADD("ground.contact.seconds_granted",
                            sat_result.contact_seconds);
        }
        if (telemetry::journalEnabled()) {
            telemetry::JournalEventBuilder("sim.satellite.queue")
                .i64("products_queued",
                     static_cast<std::int64_t>(products.size()))
                .i64("raws_queued",
                     static_cast<std::int64_t>(raws.size()))
                .i64("items_sent", items_sent)
                .i64("items_dropped", items_dropped)
                .f64("bits_downlinked", sat_result.bits_downlinked);
            telemetry::JournalEventBuilder("sim.satellite.summary")
                .i64("frames_observed", sat_result.frames_observed)
                .i64("frames_processed", sat_result.frames_processed)
                .f64("frames_downlinked", sat_result.frames_downlinked)
                .f64("high_bits_downlinked",
                     sat_result.high_bits_downlinked)
                .f64("contact_seconds", sat_result.contact_seconds);
        }

        result.per_satellite[s] = sat_result;
    });
    if (telemetry::journalEnabled()) {
        const SatelliteResult totals = result.totals();
        telemetry::JournalEventBuilder("sim.mission.totals")
            .i64("frames_observed", totals.frames_observed)
            .i64("frames_processed", totals.frames_processed)
            .f64("frames_downlinked", totals.frames_downlinked)
            .f64("bits_downlinked", totals.bits_downlinked)
            .f64("high_bits_downlinked", totals.high_bits_downlinked);
    }
    return result;
}

} // namespace kodan::sim
