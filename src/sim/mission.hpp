/**
 * @file
 * End-to-end mission simulation (the cote-equivalent driver).
 *
 * Ties together orbit propagation, frame capture, the contended ground
 * segment, the downlink radio, and an abstract on-board filter to produce
 * per-satellite accounting of frames observed / processed / downlinked
 * and of data value density.
 */

#ifndef KODAN_SIM_MISSION_HPP
#define KODAN_SIM_MISSION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "data/geomodel.hpp"
#include "ground/downlink.hpp"
#include "ground/station.hpp"
#include "orbit/propagator.hpp"
#include "sense/camera.hpp"
#include "sense/capture.hpp"
#include "util/units.hpp"

namespace kodan::sim {

/** Scenario configuration. */
struct MissionConfig
{
    /** Epoch elements of each satellite in the constellation. */
    std::vector<orbit::OrbitalElements> satellites;
    /** Ground segment. */
    std::vector<ground::GroundStation> stations;
    /** Imaging payload (identical across the constellation). */
    sense::CameraModel camera;
    /** Downlink radio (identical across the constellation). */
    ground::DownlinkModel radio;
    /** Simulated duration (s). */
    double duration = util::kSecondsPerDay;
    /** Ground-segment allocation granularity (s). */
    double scheduler_step = 10.0;
    /** Contact-scan step (s). */
    double contact_scan_step = 30.0;
    /** Seed for frame-value sampling; each satellite draws from its own
     *  stream derived from (seed, satellite index). */
    std::uint64_t seed = 42;
    /**
     * Sim-time bin width (s) of the telemetry time series and the
     * per-satellite journal bin events the run emits when recording is
     * enabled. The 1800 s default gives 48 bins over a standard one-day
     * mission — coarse enough to keep committed baselines small, fine
     * enough to see the contact-pass structure.
     */
    double telemetry_bin_s = 1800.0;
    /**
     * Series/event name prefix ("<prefix>.dvd", "<prefix>.satellite.bin"
     * ...). Drivers that simulate several scenarios in one process give
     * each a distinct prefix so the global time-series registry keeps
     * them apart.
     */
    std::string telemetry_prefix = "sim";
    /**
     * Satellites per parallel work unit (shard). Results are bit-identical
     * for any value — shards only coarsen scheduling, each satellite
     * keeps its own RNG stream and journal lane. 0 = one satellite per
     * work item.
     */
    std::size_t shard_size = 0;

    /**
     * Build an N-satellite, single-plane Landsat-8-like constellation
     * with evenly spaced mean anomalies and the standard ground segment.
     */
    static MissionConfig landsatConstellation(int satellite_count);

    /**
     * Build a multi-plane sun-synchronous constellation at the Landsat
     * altitude: a Walker delta pattern of @p satellite_count satellites
     * over @p planes equally-spaced planes with the Walker phasing
     * parameter @p phasing, imaging the WRS-2 grid against the standard
     * ground segment. makeConstellation(n, 1, 0) is bit-identical to
     * landsatConstellation(n).
     *
     * @param satellite_count Total satellites (divisible by @p planes).
     * @param planes Orbital planes (staggered RAAN).
     * @param phasing Walker phasing parameter f in [0, planes).
     */
    static MissionConfig makeConstellation(int satellite_count,
                                           int planes = 1,
                                           int phasing = 0);
};

/**
 * Abstract behaviour of the on-board frame filter.
 *
 * Captures everything the downlink accounting needs to know about a
 * processing scheme: how long a frame takes, what it keeps, and how well.
 */
struct FilterBehavior
{
    /** Mean processing time per frame (s); 0 = free (bent pipe/ideal). */
    double frame_time = 0.0;
    /** P(frame kept | frame is high-value) — frame-level recall. */
    double keep_high = 1.0;
    /** P(frame kept | frame is low-value) — frame-level fall-out. */
    double keep_low = 1.0;
    /** Fraction of a kept frame's bits in the downlinked product. */
    double product_fraction = 1.0;
    /**
     * Of the product bits of a kept frame, the fraction that is truly
     * high-value (pixel-level precision); only meaningful when
     * product_fraction < 1. When 1.0, the frame's own value fraction is
     * used.
     */
    double product_precision = -1.0;
    /** Queue raw (unprocessed/unfiltered) frames after the products. */
    bool send_unprocessed = true;
    /**
     * Drain filter products before raw frames (value-aware queueing, as
     * Kodan does). When false, the downlink queue stays in capture order
     * — the behaviour of a directly-deployed legacy application that
     * filters frames but does not reorder the radio queue.
     */
    bool prioritize_products = true;

    /** The bent pipe: downlink raw frames indiscriminately. */
    static FilterBehavior bentPipe();

    /** Ideal OEC filter: free, perfect frame classification. */
    static FilterBehavior idealFilter();
};

/** Per-satellite accounting of one simulated interval. */
struct SatelliteResult
{
    std::int64_t frames_observed = 0;
    std::int64_t frames_processed = 0;
    /** Frames (raw or as products) represented in the downlink. */
    double frames_downlinked = 0.0;
    double bits_observed = 0.0;
    double high_bits_observed = 0.0;
    double bits_downlinked = 0.0;
    double high_bits_downlinked = 0.0;
    /** Granted contact time (s). */
    double contact_seconds = 0.0;
    /** Frame deadline of this satellite (s). */
    double frame_deadline = 0.0;

    /** Data value density of this satellite's downlink. */
    double dvd() const
    {
        return bits_downlinked <= 0.0
                   ? 0.0
                   : high_bits_downlinked / bits_downlinked;
    }

    /** Fraction of observed high-value bits that reached the ground. */
    double highValueYield() const
    {
        return high_bits_observed <= 0.0
                   ? 0.0
                   : high_bits_downlinked / high_bits_observed;
    }
};

/** Whole-mission result. */
struct MissionResult
{
    std::vector<SatelliteResult> per_satellite;
    double idle_station_seconds = 0.0;
    double busy_station_seconds = 0.0;

    /** Sum a field across satellites. */
    SatelliteResult totals() const;
};

/**
 * The mission simulator.
 */
class MissionSim
{
  public:
    /**
     * @param world Procedural world used to label frame values; when
     *        null, frame value fractions are drawn i.i.d. so that the
     *        expected high-value prevalence is @p fixed_prevalence.
     * @param fixed_prevalence Used only when @p world is null.
     */
    explicit MissionSim(const data::GeoModel *world = nullptr,
                        double fixed_prevalence = 1.0 / 3.0);

    /**
     * Run the scenario under the given filter behaviour.
     */
    MissionResult run(const MissionConfig &config,
                      const FilterBehavior &filter) const;

  private:
    const data::GeoModel *world_;
    double fixed_prevalence_;

    /** High-value fraction of a frame centered at the given point. */
    double frameValueFraction(const orbit::Geodetic &center, double time,
                              util::Rng &rng) const;
};

/**
 * High-value fraction of a frame centered at @p center at @p time —
 * the shared value model of MissionSim and ConstellationEngine. When
 * @p world is null, draws a Bernoulli with @p fixed_prevalence from
 * @p rng instead (one draw per call).
 */
double frameValueFraction(const data::GeoModel *world,
                          double fixed_prevalence,
                          const orbit::Geodetic &center, double time,
                          util::Rng &rng);

} // namespace kodan::sim

#endif // KODAN_SIM_MISSION_HPP
