#include "data/generator.hpp"

#include <cassert>
#include <cmath>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace kodan::data {

DatasetGenerator::DatasetGenerator(const GeoModel &geo,
                                   const DatasetParams &params)
    : geo_(geo), params_(params), rng_(params.seed)
{
    assert(params.grid >= 1);
    assert(params.frame_size_m > 0.0);
}

FrameSample
DatasetGenerator::makeFrame(double lat_rad, double lon_rad, double time)
{
    FrameSample frame;
    frame.center_lat = lat_rad;
    frame.center_lon = lon_rad;
    frame.time = time;
    frame.size_m = params_.frame_size_m;
    frame.grid = params_.grid;

    const int grid = params_.grid;
    const auto cells = static_cast<std::size_t>(grid) * grid;
    frame.features.resize(cells * kFeatureDim);
    frame.cloudy.resize(cells);
    frame.terrain.resize(cells);

    // Cell angular extent. Longitude step shrinks with latitude so cells
    // stay approximately square on the ground; clamp the cosine away from
    // zero so polar frames remain well-defined.
    const double cell_m = params_.frame_size_m / grid;
    const double d_lat = cell_m / util::kEarthRadius;
    const double cos_lat = std::max(0.05, std::cos(lat_rad));
    const double d_lon = d_lat / cos_lat;
    const double half = (grid - 1) / 2.0;

    for (int r = 0; r < grid; ++r) {
        for (int c = 0; c < grid; ++c) {
            const double lat =
                util::clamp(lat_rad + (r - half) * d_lat,
                            -util::kPi / 2.0 + 1e-6,
                            util::kPi / 2.0 - 1e-6);
            const double lon = lon_rad + (c - half) * d_lon;
            const std::size_t cell =
                static_cast<std::size_t>(r) * grid + c;
            const Features f = geo_.featuresAt(lat, lon, time, rng_);
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                frame.features[cell * kFeatureDim + ch] =
                    static_cast<float>(f[ch]);
            }
            frame.cloudy[cell] = geo_.cloudyAt(lat, lon, time) ? 1 : 0;
            frame.terrain[cell] =
                static_cast<std::uint8_t>(geo_.terrainAt(lat, lon));
        }
    }
    return frame;
}

std::vector<FrameSample>
DatasetGenerator::generateGlobal(int count, double t0)
{
    std::vector<FrameSample> frames;
    frames.reserve(count);
    for (int i = 0; i < count; ++i) {
        const double lat = std::asin(2.0 * rng_.uniform() - 1.0);
        const double lon = rng_.uniform(-util::kPi, util::kPi);
        frames.push_back(
            makeFrame(lat, lon, t0 + i * params_.frame_interval_s));
    }
    return frames;
}

std::vector<FrameSample>
DatasetGenerator::generateAlongTrack(const orbit::J2Propagator &sat,
                                     double frame_period, int count,
                                     double t0)
{
    assert(frame_period > 0.0);
    std::vector<FrameSample> frames;
    frames.reserve(count);
    for (int i = 0; i < count; ++i) {
        const double t = t0 + i * frame_period;
        const orbit::Geodetic point = sat.subsatellitePoint(t);
        frames.push_back(makeFrame(point.latitude, point.longitude, t));
    }
    return frames;
}

} // namespace kodan::data
