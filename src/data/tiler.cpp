#include "data/tiler.hpp"

#include <cassert>
#include <cmath>

namespace kodan::data {

int
TileData::blockOfCell(int local_r, int local_c) const
{
    assert(local_r >= 0 && local_r < cell_rows);
    assert(local_c >= 0 && local_c < cell_cols);
    const int br = local_r * kBlocksPerSide / cell_rows;
    const int bc = local_c * kBlocksPerSide / cell_cols;
    return br * kBlocksPerSide + bc;
}

void
TileData::blockInput(int block, double *out) const
{
    assert(block >= 0 && block < kBlocksPerTile);
    // Visual channels of the block: 0-6 plus the edge channel 9.
    const float *features =
        &block_features[static_cast<std::size_t>(block) * kFeatureDim];
    for (int ch = 0; ch < 7; ++ch) {
        out[ch] = features[ch];
    }
    out[7] = features[9];
    // Tile-level context: means of every channel (including the
    // ancillary map priors).
    for (int ch = 0; ch < kFeatureDim; ++ch) {
        out[kVisualDim + ch] = feature_mean[ch];
    }
}

Tiler::Tiler(int tiles_per_side)
    : tiles_per_side_(tiles_per_side)
{
    assert(tiles_per_side >= 1);
}

const std::array<int, 4> &
Tiler::paperTileCounts()
{
    static const std::array<int, 4> counts = {121, 36, 16, 9};
    return counts;
}

std::vector<TileData>
Tiler::tile(const FrameSample &frame) const
{
    std::vector<TileData> tiles;
    tileInto(frame, tiles);
    return tiles;
}

namespace {

/** Bind @p tile to its frame region: coordinates and cell extent. */
void
initTile(const FrameSample &frame, int t_count, int tr, int tc,
         TileData &tile)
{
    const int grid = frame.grid;
    tile.frame = &frame;
    tile.tiles_per_side = t_count;
    tile.tile_row = tr;
    tile.tile_col = tc;
    tile.cell_row0 = tr * grid / t_count;
    tile.cell_col0 = tc * grid / t_count;
    tile.cell_rows = (tr + 1) * grid / t_count - tile.cell_row0;
    tile.cell_cols = (tc + 1) * grid / t_count - tile.cell_col0;
    assert(tile.cell_rows >= 1 && tile.cell_cols >= 1);
}

/** Tile-wide statistics: feature mean/stddev, truth fractions, and
 *  the label vector (everything except the block arrays). */
void
tileStats(TileData &tile)
{
    const FrameSample &frame = *tile.frame;
    std::array<double, kFeatureDim> sum{};
    std::array<double, kFeatureDim> sum_sq{};
    int clear_cells = 0;
    std::array<int, kTerrainCount> terrain_count{};
    double brightness_sum = 0.0;
    double texture_sum = 0.0;

    for (int r = 0; r < tile.cell_rows; ++r) {
        for (int c = 0; c < tile.cell_cols; ++c) {
            const int fr = tile.cell_row0 + r;
            const int fc = tile.cell_col0 + c;
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                const double v = frame.featureAt(fr, fc, ch);
                sum[ch] += v;
                sum_sq[ch] += v * v;
            }
            if (!frame.cloudyAt(fr, fc)) {
                ++clear_cells;
            }
            ++terrain_count[static_cast<int>(frame.terrainAt(fr, fc))];
            brightness_sum += (frame.featureAt(fr, fc, 0) +
                               frame.featureAt(fr, fc, 1) +
                               frame.featureAt(fr, fc, 2)) /
                              3.0;
            texture_sum += frame.featureAt(fr, fc, 4);
        }
    }
    const double n = tile.cellCount();
    for (int ch = 0; ch < kFeatureDim; ++ch) {
        tile.feature_mean[ch] = sum[ch] / n;
        const double var = sum_sq[ch] / n -
                           tile.feature_mean[ch] * tile.feature_mean[ch];
        tile.feature_std[ch] = std::sqrt(std::max(0.0, var));
    }
    tile.high_value_fraction = clear_cells / n;

    // Truth-derived label vector (terrain mix, cloudiness, photo
    // statistics), mirroring the catalogue's classification vectors.
    for (int k = 0; k < kTerrainCount; ++k) {
        tile.label_vector[k] = terrain_count[k] / n;
    }
    tile.label_vector[kTerrainCount] = 1.0 - tile.high_value_fraction;
    tile.label_vector[kTerrainCount + 1] = brightness_sum / n;
    tile.label_vector[kTerrainCount + 2] = texture_sum / n;
}

/**
 * The runtime slice of tileStats(): feature mean/stddev only, with the
 * identical per-cell accumulation order (so the values are
 * bit-identical), skipping the truth-derived training bookkeeping
 * (terrain mix, cloud count, brightness/texture sums). Those fields
 * are zeroed, never left stale, because tiles recycle through arena
 * slots.
 */
void
tileRuntimeStats(TileData &tile)
{
    const FrameSample &frame = *tile.frame;
    std::array<double, kFeatureDim> sum{};
    std::array<double, kFeatureDim> sum_sq{};

    for (int r = 0; r < tile.cell_rows; ++r) {
        for (int c = 0; c < tile.cell_cols; ++c) {
            const int fr = tile.cell_row0 + r;
            const int fc = tile.cell_col0 + c;
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                const double v = frame.featureAt(fr, fc, ch);
                sum[ch] += v;
                sum_sq[ch] += v * v;
            }
        }
    }
    const double n = tile.cellCount();
    for (int ch = 0; ch < kFeatureDim; ++ch) {
        tile.feature_mean[ch] = sum[ch] / n;
        const double var = sum_sq[ch] / n -
                           tile.feature_mean[ch] * tile.feature_mean[ch];
        tile.feature_std[ch] = std::sqrt(std::max(0.0, var));
    }
    tile.high_value_fraction = 0.0;
    tile.label_vector.fill(0.0);
}

} // namespace

void
Tiler::decimate(TileData &tile)
{
    const FrameSample &frame = *tile.frame;
    // Decimate: box-average cells into the fixed block grid. assign()
    // reuses the arrays' capacity, so recycled tiles stay heap-free.
    tile.block_features.assign(
        static_cast<std::size_t>(kBlocksPerTile) * kFeatureDim, 0.0F);
    tile.block_cloud_fraction.assign(kBlocksPerTile, 0.0F);
    std::array<int, kBlocksPerTile> block_cells{};
    for (int r = 0; r < tile.cell_rows; ++r) {
        for (int c = 0; c < tile.cell_cols; ++c) {
            const int block = tile.blockOfCell(r, c);
            const int fr = tile.cell_row0 + r;
            const int fc = tile.cell_col0 + c;
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                tile.block_features[static_cast<std::size_t>(block) *
                                        kFeatureDim +
                                    ch] +=
                    static_cast<float>(frame.featureAt(fr, fc, ch));
            }
            if (frame.cloudyAt(fr, fc)) {
                tile.block_cloud_fraction[block] += 1.0F;
            }
            ++block_cells[block];
        }
    }
    for (int b = 0; b < kBlocksPerTile; ++b) {
        // Blocks can be empty when a tile has fewer cells per side
        // than the block grid (upsampling); copy the containing
        // cell's values instead.
        if (block_cells[b] == 0) {
            const int br = b / kBlocksPerSide;
            const int bc = b % kBlocksPerSide;
            const int r = br * tile.cell_rows / kBlocksPerSide;
            const int c = bc * tile.cell_cols / kBlocksPerSide;
            const int fr = tile.cell_row0 + r;
            const int fc = tile.cell_col0 + c;
            for (int ch = 0; ch < kFeatureDim; ++ch) {
                tile.block_features[static_cast<std::size_t>(b) *
                                        kFeatureDim +
                                    ch] =
                    static_cast<float>(frame.featureAt(fr, fc, ch));
            }
            tile.block_cloud_fraction[b] =
                frame.cloudyAt(fr, fc) ? 1.0F : 0.0F;
            continue;
        }
        const float inv = 1.0F / static_cast<float>(block_cells[b]);
        for (int ch = 0; ch < kFeatureDim; ++ch) {
            tile.block_features[static_cast<std::size_t>(b) *
                                    kFeatureDim +
                                ch] *= inv;
        }
        tile.block_cloud_fraction[b] *= inv;
    }
}

void
Tiler::tileInto(const FrameSample &frame,
                std::vector<TileData> &tiles) const
{
    const int t_count = tiles_per_side_;
    assert(frame.grid >= 1);

    // resize() keeps each surviving element's heap buffers, so a warmed
    // vector is refilled without allocation; every field below is
    // overwritten, so recycled tiles carry no stale state.
    tiles.resize(static_cast<std::size_t>(t_count) * t_count);

    for (int tr = 0; tr < t_count; ++tr) {
        for (int tc = 0; tc < t_count; ++tc) {
            TileData &tile =
                tiles[static_cast<std::size_t>(tr) * t_count + tc];
            initTile(frame, t_count, tr, tc, tile);
            tileStats(tile);
            decimate(tile);
        }
    }
}

void
Tiler::statsInto(const FrameSample &frame,
                 std::vector<TileData> &tiles) const
{
    const int t_count = tiles_per_side_;
    assert(frame.grid >= 1);

    tiles.resize(static_cast<std::size_t>(t_count) * t_count);

    for (int tr = 0; tr < t_count; ++tr) {
        for (int tc = 0; tc < t_count; ++tc) {
            TileData &tile =
                tiles[static_cast<std::size_t>(tr) * t_count + tc];
            initTile(frame, t_count, tr, tc, tile);
            tileRuntimeStats(tile);
            // Recycled tiles may carry a previous frame's block grid;
            // clear() (capacity kept) marks them not-yet-decimated.
            tile.block_features.clear();
            tile.block_cloud_fraction.clear();
        }
    }
}

} // namespace kodan::data
