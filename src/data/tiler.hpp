/**
 * @file
 * Frame tiling and decimation.
 *
 * A frame is split into T x T tiles; each tile is resized to the neural
 * network input (a fixed kBlocksPerSide x kBlocksPerSide block grid) by
 * box-averaging its ground cells. Fewer, larger tiles mean each model
 * block aggregates more ground cells (aggressive decimation); smaller
 * tiles preserve detail but give the model a narrower context window.
 * This is exactly the precision/execution-time trade of paper Section 3
 * (Figure 6).
 */

#ifndef KODAN_DATA_TILER_HPP
#define KODAN_DATA_TILER_HPP

#include <array>
#include <vector>

#include "data/sample.hpp"

namespace kodan::data {

/** Model-input resolution: blocks per tile side. */
inline constexpr int kBlocksPerSide = 8;

/** Blocks per tile. */
inline constexpr int kBlocksPerTile = kBlocksPerSide * kBlocksPerSide;

/**
 * Number of visual (image-derived) channels a filtering model sees per
 * block: the spectral bands, texture, ndvi, thermal, and the cloud-edge
 * indicator — channels 0-6 and 9. The ancillary map priors (elevation,
 * moisture; channels 7-8) are *not* per-block model inputs: the paper's
 * applications are vision networks, and map context reaches them only
 * through the coarse tile-level summary (or through specialization).
 */
inline constexpr int kVisualDim = 8;

/**
 * Input dimension of a per-block classifier: visual block channels plus
 * the tile-mean context channels (all kFeatureDim of them).
 */
inline constexpr int kBlockInputDim = kVisualDim + kFeatureDim;

/** One tile of a frame, decimated to the model-input block grid. */
struct TileData
{
    /** Owning frame (non-owning pointer; frame must outlive the tile). */
    const FrameSample *frame = nullptr;
    /** Tiles per frame side (T). */
    int tiles_per_side = 0;
    /** Tile coordinates within the frame. */
    int tile_row = 0;
    /** Tile coordinates within the frame. */
    int tile_col = 0;
    /** First ground-cell row/col covered by this tile. */
    int cell_row0 = 0, cell_col0 = 0;
    /** Ground cells covered per side (rows, cols). */
    int cell_rows = 0, cell_cols = 0;

    /** Box-averaged block features: kBlocksPerTile * kFeatureDim. */
    std::vector<float> block_features;
    /** Per-channel mean over the tile's cells. */
    std::array<double, kFeatureDim> feature_mean{};
    /** Per-channel standard deviation over the tile's cells. */
    std::array<double, kFeatureDim> feature_std{};
    /** Truth-derived label vector for context clustering. */
    std::array<double, kLabelDim> label_vector{};
    /** Truth fraction of high-value (non-cloudy) cells. */
    double high_value_fraction = 0.0;
    /** Truth fraction of cloudy cells per block: kBlocksPerTile. */
    std::vector<float> block_cloud_fraction;

    /** Block index of the block containing tile-local cell (r, c). */
    int blockOfCell(int local_r, int local_c) const;

    /** Ground cells covered by this tile. */
    int cellCount() const { return cell_rows * cell_cols; }

    /** Truth cloudiness of tile-local cell (r, c). */
    bool cloudyLocal(int local_r, int local_c) const
    {
        return frame->cloudyAt(cell_row0 + local_r, cell_col0 + local_c);
    }

    /**
     * Assemble the classifier input for one block: block features, tile
     * mean, tile stddev.
     *
     * @param block Block index in [0, kBlocksPerTile).
     * @param out Output array of kBlockInputDim doubles.
     */
    void blockInput(int block, double *out) const;
};

/**
 * Splits frames into decimated tiles.
 */
class Tiler
{
  public:
    /** @param tiles_per_side Tiles per frame side (T >= 1). */
    explicit Tiler(int tiles_per_side);

    /** Tiles per frame side. */
    int tilesPerSide() const { return tiles_per_side_; }

    /** Tiles per frame (T^2). */
    int tilesPerFrame() const { return tiles_per_side_ * tiles_per_side_; }

    /** Split @p frame into T^2 decimated tiles. */
    std::vector<TileData> tile(const FrameSample &frame) const;

    /**
     * Split @p frame into T^2 decimated tiles, reusing @p tiles.
     *
     * Identical output to tile(); the vector (and each element's heap
     * buffers) is recycled in place, so a warmed vector is re-tiled
     * without heap allocation — the arena-resident frame path of the
     * pipeline data plane depends on this.
     */
    void tileInto(const FrameSample &frame,
                  std::vector<TileData> &tiles) const;

    /**
     * Split @p frame into T^2 tiles carrying only what the deployed
     * runtime reads before inference: geometry and the per-channel
     * feature mean/stddev (bit-identical to tileInto()'s). The block
     * arrays are left empty (`block_features.empty()` marks a tile as
     * not yet decimated) and the truth-derived training fields
     * (label_vector, high_value_fraction, block_cloud_fraction) are
     * zeroed — context classification reads only the feature
     * statistics, and the elide/record stages read the frame's truth
     * masks directly, never these tile fields. decimate() then
     * materializes the block grid of exactly the tiles that reach the
     * model — the data plane's lazy tiling: elided tiles never pay
     * the decimation pass, and the truth bookkeeping of the training
     * path is skipped entirely.
     */
    void statsInto(const FrameSample &frame,
                   std::vector<TileData> &tiles) const;

    /**
     * Fill @p tile's block arrays (box-averaged block features and
     * per-block cloud fractions) from its frame; bit-identical to the
     * arrays tileInto() produces. Idempotent on a decimated tile;
     * reuses the arrays' capacity, so a recycled tile decimates
     * without heap allocation.
     */
    static void decimate(TileData &tile);

    /**
     * The four tile counts the paper sweeps (121, 36, 16, 9 tiles per
     * frame, i.e. T in {11, 6, 4, 3}).
     */
    static const std::array<int, 4> &paperTileCounts();

  private:
    int tiles_per_side_;
};

} // namespace kodan::data

#endif // KODAN_DATA_TILER_HPP
