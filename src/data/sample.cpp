#include "data/sample.hpp"

namespace kodan::data {

double
FrameSample::highValueFraction() const
{
    if (cloudy.empty()) {
        return 0.0;
    }
    std::size_t clear = 0;
    for (auto flag : cloudy) {
        if (flag == 0) {
            ++clear;
        }
    }
    return static_cast<double>(clear) / static_cast<double>(cloudy.size());
}

} // namespace kodan::data
