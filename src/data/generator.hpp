/**
 * @file
 * Representative-dataset generation from the procedural world.
 */

#ifndef KODAN_DATA_GENERATOR_HPP
#define KODAN_DATA_GENERATOR_HPP

#include <cstdint>
#include <vector>

#include "data/geomodel.hpp"
#include "data/sample.hpp"
#include "orbit/propagator.hpp"

namespace kodan::data {

/** Parameters of dataset generation. */
struct DatasetParams
{
    /** Seed for sampling locations and sensor noise. */
    std::uint64_t seed = 7;
    /** Ground side length of a frame (m). */
    double frame_size_m = 150.0e3;
    /** Ground cells per frame side. */
    int grid = 88;
    /** Seconds between consecutive generated frames. */
    double frame_interval_s = 22.0;
};

/**
 * Generates FrameSamples from a GeoModel, either at sphere-uniform random
 * locations (a representative reference dataset) or along a satellite
 * ground track (deployment-realistic sampling).
 */
class DatasetGenerator
{
  public:
    /**
     * @param geo World model (copied; models are cheap value types).
     * @param params Generation parameters.
     */
    DatasetGenerator(const GeoModel &geo, const DatasetParams &params = {});

    /** The world model in use. */
    const GeoModel &geo() const { return geo_; }

    /** Generation parameters. */
    const DatasetParams &params() const { return params_; }

    /**
     * One frame centered at the given point and time.
     *
     * @param lat_rad Center latitude (rad).
     * @param lon_rad Center longitude (rad).
     * @param time Capture time (s).
     */
    FrameSample makeFrame(double lat_rad, double lon_rad, double time);

    /**
     * @p count frames at sphere-uniform random centers, spaced
     * frame_interval_s apart in time starting at @p t0.
     */
    std::vector<FrameSample> generateGlobal(int count, double t0 = 0.0);

    /**
     * @p count frames along a satellite's ground track at the satellite's
     * frame cadence, starting at @p t0.
     *
     * @param sat Satellite propagator.
     * @param frame_period Seconds between captures (the frame deadline).
     */
    std::vector<FrameSample> generateAlongTrack(
        const orbit::J2Propagator &sat, double frame_period, int count,
        double t0 = 0.0);

  private:
    GeoModel geo_;
    DatasetParams params_;
    util::Rng rng_;
};

} // namespace kodan::data

#endif // KODAN_DATA_GENERATOR_HPP
