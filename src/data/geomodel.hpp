/**
 * @file
 * Procedural geospatial world model.
 *
 * Substitute for the Sentinel-2 Cloud Mask Catalogue used by the paper:
 * a deterministic, infinitely-sampleable Earth with terrain classes, a
 * time-varying cloud field, and per-location pseudo-spectral features.
 * The statistical structure matters, not the radiometry: terrain patches
 * are spatially coherent (so tiles have recognizable *contexts*), clouds
 * are bright in every band (so they confuse naive thresholds over bright
 * terrain like ice and desert), and every channel carries sensor noise.
 */

#ifndef KODAN_DATA_GEOMODEL_HPP
#define KODAN_DATA_GEOMODEL_HPP

#include <array>
#include <cstdint>

#include "util/noise.hpp"
#include "util/rng.hpp"

namespace kodan::data {

/** Terrain classes of the synthetic Earth. */
enum class Terrain : std::uint8_t
{
    Ocean = 0,
    Forest,
    Desert,
    Ice,
    Urban,
    Mountain,
};

/** Number of terrain classes. */
inline constexpr int kTerrainCount = 6;

/** Human-readable terrain name. */
const char *terrainName(Terrain terrain);

/** Number of feature channels observed per ground cell. */
inline constexpr int kFeatureDim = 10;

/** Feature vector of one ground cell. */
using Features = std::array<double, kFeatureDim>;

/** Tunable parameters of the procedural world. */
struct GeoModelParams
{
    /** Seed for all fields. */
    std::uint64_t seed = 20230325;
    /**
     * Target fraction of ground cells obscured by cloud. The Sentinel-2
     * catalogue the paper uses is 52% cloudy; the motivation figures use
     * the MODIS global average of 67%.
     */
    double cloud_fraction = 0.52;
    /** Terrain patch frequency (features around the equator). */
    double terrain_frequency = 180.0;
    /** Cloud mass frequency (features around the equator). */
    double cloud_frequency = 650.0;
    /** Per-channel Gaussian sensor noise sigma. */
    double sensor_noise = 0.10;
    /**
     * Multiplicative radiometric calibration applied to the visual
     * channels (0-6). Legacy training corpora come from different
     * sensors; a gain/offset shift models that domain gap.
     */
    double band_gain = 1.0;
    /** Additive radiometric offset for the visual channels (0-6). */
    double band_offset = 0.0;

    /**
     * The domain the paper's *reference applications* were built for: a
     * different region of the procedural world observed by a different
     * sensor calibration and cloud climate. Models trained here and
     * deployed on the default world behave like the legacy datacenter
     * networks the paper starts from.
     */
    static GeoModelParams legacyDomain();
};

/**
 * The procedural Earth.
 *
 * All queries are pure functions of (seed, lat, lon, time); the model is
 * thread-compatible after construction.
 */
class GeoModel
{
  public:
    explicit GeoModel(const GeoModelParams &params = {});

    /** Parameters this model was built with. */
    const GeoModelParams &params() const { return params_; }

    /** Terrain class at a geodetic point. */
    Terrain terrainAt(double lat_rad, double lon_rad) const;

    /**
     * Cloud opacity in [0, 1] at a point and time.
     *
     * Thresholded and renormalized so that the global mean *cloudy cell*
     * fraction matches @c params().cloud_fraction.
     *
     * @param time Seconds since epoch; the field evolves over hours.
     */
    double cloudOpacityAt(double lat_rad, double lon_rad, double time) const;

    /** True when the point is cloud-obscured (opacity > 0.5). */
    bool cloudyAt(double lat_rad, double lon_rad, double time) const;

    /**
     * Observed features of a ground cell: terrain signature blended with
     * cloud, plus sensor noise drawn from @p rng.
     *
     * @param lat_rad Latitude (rad).
     * @param lon_rad Longitude (rad).
     * @param time Observation time (s).
     * @param rng Noise source (one deviate per channel).
     */
    Features featuresAt(double lat_rad, double lon_rad, double time,
                        util::Rng &rng) const;

    /** Noise-free feature signature of a terrain class (for tests). */
    static Features terrainSignature(Terrain terrain);

    /**
     * Noise-free feature signature of full cloud cover over a given
     * terrain (cloud appearance is terrain-conditioned; see the data
     * model notes in DESIGN.md).
     */
    static Features cloudSignature(Terrain terrain = Terrain::Ocean);

  private:
    GeoModelParams params_;
    util::SphericalFbm elevation_;
    util::SphericalFbm moisture_;
    util::SphericalFbm urban_;
    util::SphericalFbm cloud_;
    double sea_level_;       // elevation threshold for ocean
    double mountain_level_;  // elevation threshold for mountains
    double cloud_threshold_; // raw-noise threshold for "cloudy"

    /** Raw (un-thresholded) cloud field value. */
    double rawCloud(double lat_rad, double lon_rad, double time) const;
};

} // namespace kodan::data

#endif // KODAN_DATA_GEOMODEL_HPP
