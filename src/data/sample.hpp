/**
 * @file
 * In-memory representation of captured image frames.
 *
 * A FrameSample is the unit the satellite captures: a square geographic
 * region discretized into a grid of ground cells, each with observed
 * feature channels (the "pixels" the analysis applications see) and truth
 * annotations (cloudiness, terrain) used for training and scoring.
 */

#ifndef KODAN_DATA_SAMPLE_HPP
#define KODAN_DATA_SAMPLE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "data/geomodel.hpp"

namespace kodan::data {

/**
 * Dimension of the per-tile label vector used for context clustering:
 * terrain-class fractions, cloud fraction, mean brightness, mean texture.
 *
 * This mirrors the classification vectors the Sentinel-2 catalogue
 * attaches to each sample.
 */
inline constexpr int kLabelDim = kTerrainCount + 3;

/**
 * One captured frame: a grid x grid lattice of ground cells.
 *
 * Storage is row-major; features are interleaved per cell.
 */
struct FrameSample
{
    /** Frame center latitude (rad). */
    double center_lat = 0.0;
    /** Frame center longitude (rad). */
    double center_lon = 0.0;
    /** Capture time (s since epoch). */
    double time = 0.0;
    /** Ground side length of the square frame (m). */
    double size_m = 150.0e3;
    /** Ground cells per side. */
    int grid = 0;

    /** Observed features: grid * grid * kFeatureDim floats. */
    std::vector<float> features;
    /** Truth cloud mask: 1 = cloudy (low-value), grid * grid. */
    std::vector<std::uint8_t> cloudy;
    /** Truth terrain class per cell, grid * grid. */
    std::vector<std::uint8_t> terrain;

    /** Feature channel @p ch of cell (r, c). */
    double featureAt(int r, int c, int ch) const
    {
        return features[(static_cast<std::size_t>(r) * grid + c) *
                            kFeatureDim +
                        ch];
    }

    /** Truth cloudiness of cell (r, c). */
    bool cloudyAt(int r, int c) const
    {
        return cloudy[static_cast<std::size_t>(r) * grid + c] != 0;
    }

    /** Truth terrain of cell (r, c). */
    Terrain terrainAt(int r, int c) const
    {
        return static_cast<Terrain>(
            terrain[static_cast<std::size_t>(r) * grid + c]);
    }

    /** Fraction of cells that are high-value (not cloudy). */
    double highValueFraction() const;

    /** Number of cells. */
    std::size_t cellCount() const
    {
        return static_cast<std::size_t>(grid) * grid;
    }
};

} // namespace kodan::data

#endif // KODAN_DATA_SAMPLE_HPP
