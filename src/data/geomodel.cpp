#include "data/geomodel.hpp"

#include <cassert>
#include <cmath>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace kodan::data {

using util::clamp;

const char *
terrainName(Terrain terrain)
{
    switch (terrain) {
      case Terrain::Ocean:
        return "ocean";
      case Terrain::Forest:
        return "forest";
      case Terrain::Desert:
        return "desert";
      case Terrain::Ice:
        return "ice";
      case Terrain::Urban:
        return "urban";
      case Terrain::Mountain:
        return "mountain";
    }
    return "?";
}

namespace {

/** Channel layout: b0..b3 reflectance, texture, ndvi, thermal, elev,
 *  moisture, cloud-edge. */
constexpr double kTerrainSig[kTerrainCount][7] = {
    // b0     b1     b2     b3     tex    ndvi   thermal
    {0.04, 0.05, 0.06, 0.03, 0.05, -0.20, 0.55},  // Ocean
    {0.08, 0.12, 0.10, 0.45, 0.55, 0.65, 0.50},   // Forest
    {0.45, 0.42, 0.40, 0.50, 0.25, 0.05, 0.75},   // Desert
    {0.70, 0.72, 0.75, 0.60, 0.12, -0.05, 0.15},  // Ice
    {0.30, 0.28, 0.27, 0.30, 0.80, 0.05, 0.65},   // Urban
    {0.32, 0.30, 0.28, 0.35, 0.70, 0.15, 0.35},   // Mountain
};

/**
 * Cloud appearance depends on the underlying terrain (viewing geometry,
 * haze mixing, and snow/cloud confusion): over dark ocean clouds are an
 * unmistakable bright anomaly, while over ice they are nearly the same
 * brightness and differ only subtly in texture and thermal response.
 * This terrain-conditioned ambiguity is what makes *context-specialized*
 * models meaningfully better than one global filter.
 */
constexpr double kCloudSigByTerrain[kTerrainCount][7] = {
    // b0     b1     b2     b3     tex    ndvi   thermal
    {0.78, 0.80, 0.82, 0.70, 0.18, 0.00, 0.20},  // over Ocean (easy)
    {0.72, 0.74, 0.75, 0.66, 0.20, 0.05, 0.22},  // over Forest
    {0.50, 0.48, 0.46, 0.53, 0.22, 0.04, 0.50},  // over Desert (harder)
    {0.66, 0.68, 0.70, 0.59, 0.14, -0.03, 0.18}, // over Ice (hardest)
    {0.66, 0.68, 0.70, 0.60, 0.25, 0.02, 0.28},  // over Urban
    {0.58, 0.59, 0.60, 0.55, 0.26, 0.06, 0.32},  // over Mountain
};

/** Fraction of the surface that is ocean. */
constexpr double kOceanFraction = 0.62;
/** Fraction of the surface that is mountainous (highest elevations). */
constexpr double kMountainFraction = 0.045;
/** Urban-field threshold; keeps cities rare. */
constexpr double kUrbanThreshold = 0.86;
/** Latitude (rad) beyond which land/ocean freezes over. */
const double kIceLatitude = util::degToRad(62.0);
/** Width of the cloud opacity ramp around the threshold. */
constexpr double kCloudRamp = 0.24;
/** Time scale (s) over which the cloud field decorrelates. */
constexpr double kCloudTimeScale = 6.0 * 3600.0;

/**
 * Percentile of a noise field estimated from a deterministic sample of
 * sphere-uniform points.
 */
double
fieldPercentile(const util::SphericalFbm &field, double pct,
                std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<double> samples;
    samples.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        const double lat = std::asin(2.0 * rng.uniform() - 1.0);
        const double lon = rng.uniform(-util::kPi, util::kPi);
        samples.push_back(field.at(lat, lon, 0.0));
    }
    return util::percentile(std::move(samples), pct);
}

} // namespace

GeoModelParams
GeoModelParams::legacyDomain()
{
    GeoModelParams params;
    params.seed = util::splitMix64(params.seed ^ 0xbeef);
    params.cloud_fraction = 0.58;
    params.band_gain = 1.10;
    params.band_offset = 0.04;
    return params;
}

GeoModel::GeoModel(const GeoModelParams &params)
    : params_(params),
      elevation_(util::splitMix64(params.seed ^ 0x01), 5,
                 params.terrain_frequency),
      moisture_(util::splitMix64(params.seed ^ 0x02), 4,
                params.terrain_frequency * 1.3),
      urban_(util::splitMix64(params.seed ^ 0x03), 3,
             params.terrain_frequency * 4.0),
      cloud_(util::splitMix64(params.seed ^ 0x04), 4,
             params.cloud_frequency)
{
    assert(params.cloud_fraction > 0.0 && params.cloud_fraction < 1.0);
    sea_level_ =
        fieldPercentile(elevation_, 100.0 * kOceanFraction, params.seed);
    mountain_level_ = fieldPercentile(
        elevation_, 100.0 * (1.0 - kMountainFraction), params.seed);
    cloud_threshold_ = fieldPercentile(
        cloud_, 100.0 * (1.0 - params.cloud_fraction), params.seed ^ 0x10);
}

Terrain
GeoModel::terrainAt(double lat_rad, double lon_rad) const
{
    const double elev = elevation_.at(lat_rad, lon_rad, 0.0);
    // Polar caps freeze regardless of elevation.
    if (std::fabs(lat_rad) > kIceLatitude) {
        return Terrain::Ice;
    }
    if (elev < sea_level_) {
        return Terrain::Ocean;
    }
    // Land: mountains at the highest elevations (calibrated percentile).
    if (elev > mountain_level_) {
        return Terrain::Mountain;
    }
    if (urban_.at(lat_rad, lon_rad, 0.0) > kUrbanThreshold) {
        return Terrain::Urban;
    }
    const double moist = moisture_.at(lat_rad, lon_rad, 0.0);
    return moist > 0.5 ? Terrain::Forest : Terrain::Desert;
}

double
GeoModel::rawCloud(double lat_rad, double lon_rad, double time) const
{
    return cloud_.at(lat_rad, lon_rad, time / kCloudTimeScale);
}

double
GeoModel::cloudOpacityAt(double lat_rad, double lon_rad, double time) const
{
    const double raw = rawCloud(lat_rad, lon_rad, time);
    return clamp((raw - cloud_threshold_) / kCloudRamp + 0.5, 0.0, 1.0);
}

bool
GeoModel::cloudyAt(double lat_rad, double lon_rad, double time) const
{
    return cloudOpacityAt(lat_rad, lon_rad, time) > 0.5;
}

Features
GeoModel::featuresAt(double lat_rad, double lon_rad, double time,
                     util::Rng &rng) const
{
    const Terrain terrain = terrainAt(lat_rad, lon_rad);
    const double opacity = cloudOpacityAt(lat_rad, lon_rad, time);
    const auto &sig = kTerrainSig[static_cast<int>(terrain)];
    const auto &cloud_sig = kCloudSigByTerrain[static_cast<int>(terrain)];

    Features f{};
    for (int c = 0; c < 7; ++c) {
        f[c] = params_.band_gain *
                   (sig[c] * (1.0 - opacity) + cloud_sig[c] * opacity) +
               params_.band_offset;
    }
    // Channels 7/8: ancillary map priors (elevation, moisture) known
    // regardless of cloud cover — pure context signals, never cloud cues.
    f[7] = elevation_.at(lat_rad, lon_rad, 0.0);
    f[8] = moisture_.at(lat_rad, lon_rad, 0.0);
    // Channel 9: cloud-boundary indicator (gradient magnitude of opacity),
    // estimated by finite differences ~1 km apart.
    const double eps = 1.0e3 / util::kEarthRadius;
    const double d_lat = cloudOpacityAt(lat_rad + eps, lon_rad, time) -
                         cloudOpacityAt(lat_rad - eps, lon_rad, time);
    const double d_lon = cloudOpacityAt(lat_rad, lon_rad + eps, time) -
                         cloudOpacityAt(lat_rad, lon_rad - eps, time);
    f[9] = clamp(std::sqrt(d_lat * d_lat + d_lon * d_lon), 0.0, 1.0);

    for (auto &channel : f) {
        channel += rng.normal(0.0, params_.sensor_noise);
    }
    return f;
}

Features
GeoModel::terrainSignature(Terrain terrain)
{
    Features f{};
    const auto &sig = kTerrainSig[static_cast<int>(terrain)];
    for (int c = 0; c < 7; ++c) {
        f[c] = sig[c];
    }
    return f;
}

Features
GeoModel::cloudSignature(Terrain terrain)
{
    Features f{};
    const auto &sig = kCloudSigByTerrain[static_cast<int>(terrain)];
    for (int c = 0; c < 7; ++c) {
        f[c] = sig[c];
    }
    return f;
}

} // namespace kodan::data
