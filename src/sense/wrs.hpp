/**
 * @file
 * Analytic Landsat World Reference System (WRS-2-like) scene grid.
 *
 * The real WRS-2 is distributed as shapefiles; this substrate replaces the
 * import with an analytic grid of the same dimensions (233 paths x 248
 * rows = 57,784 scenes) derived from the orbit geometry: the row indexes
 * position along the orbit (argument of latitude), and the path indexes
 * the longitude of the revolution's ascending node.
 */

#ifndef KODAN_SENSE_WRS_HPP
#define KODAN_SENSE_WRS_HPP

#include <cstddef>

#include "orbit/propagator.hpp"

namespace kodan::sense {

/** Identifier of one WRS scene. */
struct SceneId
{
    /** Path number, [0, paths). */
    int path = 0;
    /** Row number, [0, rows). */
    int row = 0;

    bool operator==(const SceneId &o) const = default;
};

/**
 * The path/row scene grid.
 *
 * Thread-compatible and stateless; scene lookup is pure geometry.
 */
class WrsGrid
{
  public:
    /**
     * @param paths Number of paths (longitudes of ascending node bins).
     * @param rows Number of rows (along-orbit bins).
     */
    WrsGrid(int paths = 233, int rows = 248);

    /** Number of paths. */
    int paths() const { return paths_; }

    /** Number of rows. */
    int rows() const { return rows_; }

    /** Total number of distinct scenes (paths x rows). */
    std::size_t sceneCount() const
    {
        return static_cast<std::size_t>(paths_) * rows_;
    }

    /**
     * Scene under the satellite at time t.
     *
     * @param sat Propagator of the observing satellite.
     * @param t Time (s since epoch).
     */
    SceneId sceneAt(const orbit::J2Propagator &sat, double t) const;

    /** Flat index of a scene in [0, sceneCount()). */
    std::size_t flatIndex(const SceneId &scene) const;

  private:
    int paths_;
    int rows_;
};

} // namespace kodan::sense

#endif // KODAN_SENSE_WRS_HPP
