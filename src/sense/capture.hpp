/**
 * @file
 * Frame capture scheduling: turns an orbit + camera into a stream of
 * frame events with scene identifiers and ground locations.
 */

#ifndef KODAN_SENSE_CAPTURE_HPP
#define KODAN_SENSE_CAPTURE_HPP

#include <cstddef>
#include <vector>

#include "orbit/propagator.hpp"
#include "sense/camera.hpp"
#include "sense/wrs.hpp"

namespace kodan::sense {

/** One captured image frame. */
struct FrameEvent
{
    /** Capture time (s since epoch). */
    double time = 0.0;
    /** Subsatellite point at capture. */
    orbit::Geodetic center;
    /** WRS scene containing the frame. */
    SceneId scene;
    /** Index of the capturing satellite. */
    std::size_t satellite = 0;
};

/**
 * Generates the frame stream of a satellite.
 */
class FrameCapture
{
  public:
    /**
     * @param camera Imaging payload.
     * @param grid Scene grid used to label frames.
     */
    FrameCapture(const CameraModel &camera, const WrsGrid &grid);

    /** The camera in use. */
    const CameraModel &camera() const { return camera_; }

    /**
     * Frame capture period — the frame deadline — for this satellite (s).
     */
    double frameDeadline(const orbit::J2Propagator &sat) const;

    /**
     * All frames captured by @p sat in [t0, t1), labeled with scenes.
     *
     * @param sat Propagator.
     * @param sat_index Satellite index stored into the events.
     * @param t0 Start time (s).
     * @param t1 End time (s).
     * @param daylit_only Capture only frames whose subsatellite point is
     *        sunlit (optical imagers produce no useful data at night).
     */
    std::vector<FrameEvent> capture(const orbit::J2Propagator &sat,
                                    std::size_t sat_index, double t0,
                                    double t1,
                                    bool daylit_only = false) const;

    /**
     * Number of frames captured per day by @p sat (convenience).
     */
    double framesPerDay(const orbit::J2Propagator &sat) const;

  private:
    CameraModel camera_;
    WrsGrid grid_;
};

} // namespace kodan::sense

#endif // KODAN_SENSE_CAPTURE_HPP
