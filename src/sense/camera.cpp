#include "sense/camera.hpp"

#include <cassert>

namespace kodan::sense {

double
CameraModel::alongTrackLength() const
{
    return gsd_m * frame_height_px;
}

double
CameraModel::swathWidth() const
{
    return gsd_m * frame_width_px;
}

double
CameraModel::frameBits() const
{
    return framePixels() * bands * bits_per_sample;
}

double
CameraModel::framePixels() const
{
    return static_cast<double>(frame_width_px) * frame_height_px;
}

double
CameraModel::framePeriod(double ground_speed) const
{
    assert(ground_speed > 0.0);
    return alongTrackLength() / ground_speed;
}

CameraModel
CameraModel::landsat8Multispectral()
{
    CameraModel camera;
    camera.gsd_m = 15.0;
    camera.frame_width_px = 10000;
    camera.frame_height_px = 10000;
    camera.bands = 4;
    camera.bits_per_sample = 11;
    return camera;
}

CameraModel
CameraModel::landsat8Hyperspectral()
{
    CameraModel camera = landsat8Multispectral();
    camera.bands = 64;
    camera.bits_per_sample = 12;
    return camera;
}

} // namespace kodan::sense
