#include "sense/wrs.hpp"

#include <cassert>
#include <cmath>

#include "util/units.hpp"

namespace kodan::sense {

using util::kEarthOmega;
using util::kTwoPi;

WrsGrid::WrsGrid(int paths, int rows)
    : paths_(paths), rows_(rows)
{
    assert(paths > 0 && rows > 0);
}

SceneId
WrsGrid::sceneAt(const orbit::J2Propagator &sat, double t) const
{
    const auto &elems = sat.elements();

    // Argument of latitude: angle from the ascending node along the orbit.
    // For the near-circular orbits modeled here the true anomaly equals the
    // mean anomaly to within the eccentricity, which is < 1e-3.
    const double mean_anom =
        util::wrapTwoPi(elems.mean_anomaly + sat.meanMotion() * t);
    const double argp =
        util::wrapTwoPi(elems.arg_perigee + sat.argPerigeeRate() * t);
    const double arg_lat = util::wrapTwoPi(argp + mean_anom);

    // Time of this revolution's ascending-node crossing.
    const double u_rate = sat.meanMotion() + sat.argPerigeeRate();
    const double t_node = t - arg_lat / u_rate;

    // Earth-fixed longitude of that crossing defines the path.
    const double raan_node =
        util::wrapTwoPi(elems.raan + sat.raanRate() * t_node);
    const double lon_node = util::wrapTwoPi(raan_node - kEarthOmega * t_node);

    // Paths are binned westward (like WRS) so successive revolutions of a
    // prograde-precessing ground track land on increasing path numbers.
    const double path_frac = util::wrapTwoPi(kTwoPi - lon_node) / kTwoPi;
    const double row_frac = arg_lat / kTwoPi;

    SceneId scene;
    scene.path = static_cast<int>(path_frac * paths_) % paths_;
    scene.row = static_cast<int>(row_frac * rows_) % rows_;
    return scene;
}

std::size_t
WrsGrid::flatIndex(const SceneId &scene) const
{
    assert(scene.path >= 0 && scene.path < paths_);
    assert(scene.row >= 0 && scene.row < rows_);
    return static_cast<std::size_t>(scene.path) * rows_ + scene.row;
}

} // namespace kodan::sense
