#include "sense/capture.hpp"

#include <cassert>

#include "orbit/sun.hpp"
#include "util/units.hpp"

namespace kodan::sense {

FrameCapture::FrameCapture(const CameraModel &camera, const WrsGrid &grid)
    : camera_(camera), grid_(grid)
{
}

double
FrameCapture::frameDeadline(const orbit::J2Propagator &sat) const
{
    return camera_.framePeriod(sat.groundTrackSpeed());
}

std::vector<FrameEvent>
FrameCapture::capture(const orbit::J2Propagator &sat, std::size_t sat_index,
                      double t0, double t1, bool daylit_only) const
{
    assert(t1 >= t0);
    const double period = frameDeadline(sat);
    std::vector<FrameEvent> frames;
    frames.reserve(static_cast<std::size_t>((t1 - t0) / period) + 1);
    for (double t = t0; t < t1; t += period) {
        FrameEvent event;
        event.time = t;
        event.center = sat.subsatellitePoint(t);
        if (daylit_only && !orbit::isDaylit(event.center, t)) {
            continue;
        }
        event.scene = grid_.sceneAt(sat, t);
        event.satellite = sat_index;
        frames.push_back(event);
    }
    return frames;
}

double
FrameCapture::framesPerDay(const orbit::J2Propagator &sat) const
{
    return util::kSecondsPerDay / frameDeadline(sat);
}

} // namespace kodan::sense
