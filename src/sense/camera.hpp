/**
 * @file
 * Imaging payload model: ground sample distance, frame geometry, data
 * volume, and capture cadence (the frame deadline).
 */

#ifndef KODAN_SENSE_CAMERA_HPP
#define KODAN_SENSE_CAMERA_HPP

namespace kodan::sense {

/**
 * A pushbroom frame camera.
 *
 * The satellite continuously images its ground track; a "frame" is the
 * image accumulated while the subsatellite point advances one along-track
 * frame length. The time to do so is the frame deadline: all processing of
 * a frame must finish before the next frame arrives.
 */
struct CameraModel
{
    /** Ground sample distance (m per pixel). */
    double gsd_m = 15.0;
    /** Frame width in pixels (cross-track). */
    int frame_width_px = 10000;
    /** Frame height in pixels (along-track). */
    int frame_height_px = 10000;
    /** Number of spectral bands. */
    int bands = 4;
    /** Bits per pixel per band. */
    int bits_per_sample = 11;

    /** Along-track length of one frame on the ground (m). */
    double alongTrackLength() const;

    /** Cross-track swath width (m). */
    double swathWidth() const;

    /** Raw data volume of one frame (bits). */
    double frameBits() const;

    /** Pixels per frame. */
    double framePixels() const;

    /**
     * Frame capture period (s) — the frame deadline — for a satellite
     * whose subsatellite point moves at @p ground_speed (m/s).
     */
    double framePeriod(double ground_speed) const;

    /**
     * Landsat-8-like multispectral camera: 10K x 10K px at 15 m GSD,
     * 4 bands x 11 bits (~4.4 Gbit/frame, ~22 s frame deadline at the
     * Landsat-8 ground speed).
     */
    static CameraModel landsat8Multispectral();

    /**
     * Hyperspectral variant: same geometry, 64 bands x 12 bits
     * (~77 Gbit/frame). Used for the downlink-gap characterization
     * (paper Fig. 2, "hyperspectral, 10K image frames").
     */
    static CameraModel landsat8Hyperspectral();
};

} // namespace kodan::sense

#endif // KODAN_SENSE_CAMERA_HPP
