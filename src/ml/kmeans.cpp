#include "ml/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "ml/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace kodan::ml {

const char *
distanceName(Distance metric)
{
    switch (metric) {
      case Distance::Euclidean:
        return "euclidean";
      case Distance::Hamming:
        return "hamming";
      case Distance::Cosine:
        return "cosine";
    }
    return "?";
}

double
KMeans::distance(const double *a, const double *b, std::size_t dim,
                 Distance metric)
{
    switch (metric) {
      case Distance::Euclidean: {
        double sum = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            const double d = a[i] - b[i];
            sum += d * d;
        }
        return std::sqrt(sum);
      }
      case Distance::Hamming: {
        // Binarize at 0.5 and count disagreements.
        double count = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            if ((a[i] > 0.5) != (b[i] > 0.5)) {
                count += 1.0;
            }
        }
        return count;
      }
      case Distance::Cosine: {
        double dot = 0.0;
        double na = 0.0;
        double nb = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            dot += a[i] * b[i];
            na += a[i] * a[i];
            nb += b[i] * b[i];
        }
        const double denom = std::sqrt(na * nb);
        if (denom < 1.0e-12) {
            return 1.0;
        }
        return 1.0 - dot / denom;
      }
    }
    return 0.0;
}

namespace {

/** Squared Euclidean distance, same difference-based reduction order as
 * KMeans::distance minus the final sqrt. */
double
squaredEuclidean(const double *a, const double *b, std::size_t dim)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

/** The oracle's argmin rule: full metric distance, first-of-ties. */
int
nearestByDistance(const double *x, const Matrix &centroids, int k,
                  Distance metric)
{
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
        const double d =
            KMeans::distance(x, centroids.row(c), centroids.cols(), metric);
        if (d < best_dist) {
            best_dist = d;
            best = c;
        }
    }
    return best;
}

/**
 * Shared Lloyd update step (means, empty-cluster reseed): identical in
 * both backends, including its rng consumption.
 */
void
updateCentroids(const Matrix &x, KMeansResult &result, int k,
                std::vector<std::size_t> &counts, Matrix &sums,
                util::Rng &rng)
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    sums.fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
        const int c = result.assignment[i];
        double *sum_row = sums.row(c);
        const double *x_row = x.row(i);
        for (std::size_t d = 0; d < dim; ++d) {
            sum_row[d] += x_row[d];
        }
        ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
        if (counts[c] == 0) {
            // Re-seed an empty cluster on a random sample.
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
            std::copy_n(x.row(pick), dim, result.centroids.row(c));
            continue;
        }
        const double inv = 1.0 / static_cast<double>(counts[c]);
        double *centroid = result.centroids.row(c);
        const double *sum_row = sums.row(c);
        for (std::size_t d = 0; d < dim; ++d) {
            centroid[d] = sum_row[d] * inv;
        }
    }
}

} // namespace

int
KMeansResult::nearest(const double *x) const
{
    if (metric == Distance::Euclidean) {
        // Squared-distance argmin: same winner as the sqrt'd compare
        // (monotone), one sqrt per centroid saved.
        int best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (int c = 0; c < k; ++c) {
            const double d =
                squaredEuclidean(x, centroids.row(c), centroids.cols());
            if (d < best_dist) {
                best_dist = d;
                best = c;
            }
        }
        return best;
    }
    return nearestByDistance(x, centroids, k, metric);
}

KMeans::KMeans(int k, Distance metric, int max_iters, int restarts)
    : k_(k), metric_(metric), max_iters_(max_iters), restarts_(restarts)
{
    assert(k >= 1);
    assert(max_iters >= 1);
    assert(restarts >= 1);
}

KMeansResult
KMeans::fitOnce(const Matrix &x, util::Rng &rng) const
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    assert(n >= static_cast<std::size_t>(k_));

    KMeansResult result;
    result.k = k_;
    result.metric = metric_;
    result.centroids = Matrix(k_, dim);
    result.assignment.assign(n, 0);

    // k-means++ seeding. Deliberately shared by both backends: its
    // weights square the sqrt'd metric distance (d * d), which is NOT
    // bit-equal to a direct squared-difference sum, so rewriting it
    // would perturb every downstream draw of the shared rng.
    std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
    std::size_t first = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
    std::copy_n(x.row(first), dim, result.centroids.row(0));
    for (int c = 1; c < k_; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
            const double d = distance(x.row(i),
                                      result.centroids.row(c - 1), dim,
                                      metric_);
            min_dist[i] = std::min(min_dist[i], d * d);
        }
        double total = 0.0;
        for (double d : min_dist) {
            total += d;
        }
        std::size_t chosen = 0;
        if (total <= 0.0) {
            chosen = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
        } else {
            double draw = rng.uniform() * total;
            for (std::size_t i = 0; i < n; ++i) {
                draw -= min_dist[i];
                if (draw < 0.0) {
                    chosen = i;
                    break;
                }
            }
        }
        std::copy_n(x.row(chosen), dim, result.centroids.row(c));
    }

    if (kernels::backend() == kernels::Backend::Naive) {
        lloydNaive(x, rng, result);
    } else {
        lloydBlocked(x, rng, result);
    }
    return result;
}

void
KMeans::lloydNaive(const Matrix &x, util::Rng &rng,
                   KMeansResult &result) const
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    std::vector<std::size_t> counts(k_, 0);
    Matrix sums(k_, dim);
    for (int iter = 0; iter < max_iters_; ++iter) {
        bool changed = false;
        result.inertia = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const int nearest =
                nearestByDistance(x.row(i), result.centroids, k_, metric_);
            result.inertia += distance(
                x.row(i), result.centroids.row(nearest), dim, metric_);
            if (nearest != result.assignment[i]) {
                result.assignment[i] = nearest;
                changed = true;
            }
        }
        if (!changed && iter > 0) {
            break;
        }
        updateCentroids(x, result, k_, counts, sums, rng);
    }
}

void
KMeans::lloydBlocked(const Matrix &x, util::Rng &rng,
                     KMeansResult &result) const
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    const auto k = static_cast<std::size_t>(k_);
    auto &arena = kernels::scratch();
    kernels::Scratch::Frame frame(arena);

    // Loop-invariant point-side precomputation.
    double *point_norms = nullptr;
    std::vector<std::uint8_t> point_bits;
    if (metric_ == Distance::Hamming) {
        point_bits.resize(n * dim);
        const double *raw = x.data().data();
        for (std::size_t i = 0; i < n * dim; ++i) {
            point_bits[i] = raw[i] > 0.5 ? 1 : 0;
        }
    } else {
        point_norms = arena.alloc(n);
        kernels::rowSquaredNorms(n, dim, x.data().data(), point_norms);
    }

    double *centroids_t = arena.alloc(dim * k);
    double *centroid_norms = arena.alloc(k);
    double *dots = arena.alloc(n * k);
    std::vector<std::uint8_t> centroid_bits(
        metric_ == Distance::Hamming ? k * dim : 0);

    std::vector<std::size_t> counts(k_, 0);
    Matrix sums(k_, dim);
    for (int iter = 0; iter < max_iters_; ++iter) {
        bool changed = false;
        result.inertia = 0.0;
        switch (metric_) {
          case Distance::Euclidean: {
            // ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the argmin of the
            // expansion matches the oracle's sqrt'd compare on all
            // non-pathological data (verified bit-identical on the
            // workload by the mlkernels suite). The inertia recomputes
            // the oracle's difference-based distance on the one chosen
            // centroid, so its bits are exactly the oracle's.
            kernels::transpose(k, dim, result.centroids.data().data(),
                               centroids_t);
            kernels::rowSquaredNorms(k, dim,
                                     result.centroids.data().data(),
                                     centroid_norms);
            kernels::gemm(n, dim, k, x.data().data(), centroids_t, dots,
                          nullptr);
            for (std::size_t i = 0; i < n; ++i) {
                const double *dot_row = dots + i * k;
                int best = 0;
                double best_dist = point_norms[i] - 2.0 * dot_row[0] +
                                   centroid_norms[0];
                for (std::size_t c = 1; c < k; ++c) {
                    const double d = point_norms[i] - 2.0 * dot_row[c] +
                                     centroid_norms[c];
                    if (d < best_dist) {
                        best_dist = d;
                        best = static_cast<int>(c);
                    }
                }
                result.inertia +=
                    distance(x.row(i), result.centroids.row(best), dim,
                             Distance::Euclidean);
                if (best != result.assignment[i]) {
                    result.assignment[i] = best;
                    changed = true;
                }
            }
            break;
          }
          case Distance::Hamming: {
            const double *raw = result.centroids.data().data();
            for (std::size_t i = 0; i < k * dim; ++i) {
                centroid_bits[i] = raw[i] > 0.5 ? 1 : 0;
            }
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint8_t *xb = point_bits.data() + i * dim;
                int best = 0;
                std::size_t best_count = dim + 1;
                for (std::size_t c = 0; c < k; ++c) {
                    const std::uint8_t *cb =
                        centroid_bits.data() + c * dim;
                    std::size_t count = 0;
                    for (std::size_t d = 0; d < dim; ++d) {
                        count += xb[d] != cb[d];
                    }
                    if (count < best_count) {
                        best_count = count;
                        best = static_cast<int>(c);
                    }
                }
                result.inertia += static_cast<double>(best_count);
                if (best != result.assignment[i]) {
                    result.assignment[i] = best;
                    changed = true;
                }
            }
            break;
          }
          case Distance::Cosine: {
            kernels::transpose(k, dim, result.centroids.data().data(),
                               centroids_t);
            kernels::rowSquaredNorms(k, dim,
                                     result.centroids.data().data(),
                                     centroid_norms);
            kernels::gemm(n, dim, k, x.data().data(), centroids_t, dots,
                          nullptr);
            for (std::size_t i = 0; i < n; ++i) {
                const double *dot_row = dots + i * k;
                int best = 0;
                double best_dist =
                    std::numeric_limits<double>::infinity();
                for (std::size_t c = 0; c < k; ++c) {
                    // Same dot/norm accumulation order as
                    // KMeans::distance (three independent ascending
                    // sums), so each d is bit-equal to the oracle's.
                    const double denom =
                        std::sqrt(point_norms[i] * centroid_norms[c]);
                    const double d = denom < 1.0e-12
                                         ? 1.0
                                         : 1.0 - dot_row[c] / denom;
                    if (d < best_dist) {
                        best_dist = d;
                        best = static_cast<int>(c);
                    }
                }
                result.inertia += best_dist;
                if (best != result.assignment[i]) {
                    result.assignment[i] = best;
                    changed = true;
                }
            }
            break;
          }
        }
        if (!changed && iter > 0) {
            break;
        }
        updateCentroids(x, result, k_, counts, sums, rng);
    }
}

KMeansResult
KMeans::fit(const Matrix &x, util::Rng &rng) const
{
    KODAN_TRACE_SCOPE("ml.kmeans.fit");
    KODAN_COUNT_ADD("ml.kmeans.fit.points", x.rows());
    KMeansResult best;
    double best_inertia = std::numeric_limits<double>::infinity();
    for (int r = 0; r < restarts_; ++r) {
        KMeansResult candidate = fitOnce(x, rng);
        if (candidate.inertia < best_inertia) {
            best_inertia = candidate.inertia;
            best = std::move(candidate);
        }
    }
    return best;
}

double
silhouetteScore(const Matrix &x, const KMeansResult &result,
                std::size_t sample_cap)
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    if (n < 2 || result.k < 2) {
        return 0.0;
    }
    const std::size_t stride = std::max<std::size_t>(1, n / sample_cap);

    // Gather the subsample indices.
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < n; i += stride) {
        idx.push_back(i);
    }

    double total = 0.0;
    std::size_t counted = 0;
    std::vector<double> cluster_dist(result.k);
    std::vector<std::size_t> cluster_count(result.k);
    for (std::size_t i : idx) {
        std::fill(cluster_dist.begin(), cluster_dist.end(), 0.0);
        std::fill(cluster_count.begin(), cluster_count.end(), 0);
        for (std::size_t j : idx) {
            if (i == j) {
                continue;
            }
            const double d =
                KMeans::distance(x.row(i), x.row(j), dim, result.metric);
            cluster_dist[result.assignment[j]] += d;
            ++cluster_count[result.assignment[j]];
        }
        const int own = result.assignment[i];
        if (cluster_count[own] == 0) {
            continue;
        }
        const double a = cluster_dist[own] /
                         static_cast<double>(cluster_count[own]);
        double b = std::numeric_limits<double>::infinity();
        for (int c = 0; c < result.k; ++c) {
            if (c == own || cluster_count[c] == 0) {
                continue;
            }
            b = std::min(b, cluster_dist[c] /
                                static_cast<double>(cluster_count[c]));
        }
        if (!std::isfinite(b)) {
            continue;
        }
        const double denom = std::max(a, b);
        if (denom > 0.0) {
            total += (b - a) / denom;
            ++counted;
        }
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

} // namespace kodan::ml
