#include "ml/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace kodan::ml::kernels {

namespace {

/**
 * Blocking parameters. The j (output column) block keeps one C row
 * panel plus the four active B row panels resident in L1; the k block
 * bounds the B panel working set to L2. All shapes in this codebase are
 * small enough that a single block usually covers them — the blocking
 * only matters for the synthetic large-GEMM bench shapes.
 */
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockJ = 512;

std::atomic<int> g_backend{-1};

Backend
envBackend()
{
    const char *env = std::getenv("KODAN_ML_KERNELS");
    if (env != nullptr && std::string_view(env) == "naive") {
        return Backend::Naive;
    }
    return Backend::Blocked;
}

} // namespace

Backend
backend()
{
    const int v = g_backend.load(std::memory_order_relaxed);
    if (v >= 0) {
        return static_cast<Backend>(v);
    }
    static const Backend from_env = envBackend();
    return from_env;
}

void
setBackend(Backend b)
{
    g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

double *
Scratch::alloc(std::size_t count)
{
    // Find (or create) a chunk with room. Skipped tail space is
    // restored by the enclosing Frame, never leaked.
    while (chunk_ < chunks_.size() &&
           chunks_[chunk_].capacity - used_ < count) {
        ++chunk_;
        used_ = 0;
    }
    if (chunk_ == chunks_.size()) {
        Chunk chunk;
        chunk.capacity = std::max(count, kMinChunk);
        chunk.data = std::make_unique<double[]>(chunk.capacity);
        chunks_.push_back(std::move(chunk));
        used_ = 0;
    }
    double *out = chunks_[chunk_].data.get() + used_;
    used_ += count;
    return out;
}

double *
Scratch::allocZeroed(std::size_t count)
{
    double *out = alloc(count);
    std::memset(out, 0, count * sizeof(double));
    return out;
}

void *
Scratch::allocBytes(std::size_t bytes, std::size_t align)
{
    // The chunk store is double[], so byte regions are carved out of
    // chunks at aligned absolute addresses and consumed in whole
    // doubles; alloc() and allocBytes() interleave freely within one
    // Frame. align must be a power of two (any chunk base is at least
    // 8-byte aligned, larger alignments pad within the chunk).
    const std::uintptr_t mask = static_cast<std::uintptr_t>(align) - 1;
    while (chunk_ < chunks_.size()) {
        Chunk &ch = chunks_[chunk_];
        const auto base = reinterpret_cast<std::uintptr_t>(ch.data.get());
        const std::uintptr_t cursor = base + used_ * sizeof(double);
        const std::uintptr_t aligned = (cursor + mask) & ~mask;
        const std::uintptr_t end = aligned + bytes;
        if (end <= base + ch.capacity * sizeof(double)) {
            used_ = (end - base + sizeof(double) - 1) / sizeof(double);
            return reinterpret_cast<void *>(aligned);
        }
        ++chunk_;
        used_ = 0;
    }
    // No existing chunk fits: size the new one for worst-case padding
    // (alignment slack plus the round-up to whole doubles).
    const std::size_t need =
        (bytes + align + sizeof(double) - 1) / sizeof(double) + 1;
    Chunk chunk;
    chunk.capacity = std::max(need, kMinChunk);
    chunk.data = std::make_unique<double[]>(chunk.capacity);
    chunks_.push_back(std::move(chunk));
    used_ = 0;
    Chunk &ch = chunks_[chunk_];
    const auto base = reinterpret_cast<std::uintptr_t>(ch.data.get());
    const std::uintptr_t aligned = (base + mask) & ~mask;
    used_ = (aligned + bytes - base + sizeof(double) - 1) / sizeof(double);
    return reinterpret_cast<void *>(aligned);
}

Scratch &
scratch()
{
    thread_local Scratch arena;
    return arena;
}

Requant
requantScale(double scale)
{
    Requant rq;
    if (!(scale > 0.0) || !std::isfinite(scale)) {
        return rq; // multiplier 0: requantize collapses to 0
    }
    int exp = 0;
    const double mant = std::frexp(scale, &exp); // mant in [0.5, 1)
    std::int64_t m = std::llround(mant * static_cast<double>(
                                             std::int64_t{1} << 31));
    if (m == (std::int64_t{1} << 31)) {
        m >>= 1; // rounding pushed the mantissa to 1.0: renormalize
        ++exp;
    }
    rq.multiplier = static_cast<std::int32_t>(m);
    rq.shift = 31 - exp;
    return rq;
}

namespace detail {

/**
 * One 4-wide reduction step of the 2-row panel micro-kernel.
 *
 * Seed: this is the first step of the whole reduction (p == 0), so the
 * accumulators start from the bias instead of reading back C — which
 * lets gemm skip the separate C-initialization pass entirely.
 * Fuse: this is the last step (p + 4 == k), so the epilogue is applied
 * to the finished value before the only store it will ever get.
 */
template <bool Seed, bool Fuse>
inline void
panelStep2(const double *a0_row, const double *a1_row, const double *b,
           std::size_t n, std::size_t p, std::size_t j0, std::size_t j1,
           const double *bias, double *c0, double *c1)
{
    const double a00 = a0_row[p], a01 = a0_row[p + 1],
                 a02 = a0_row[p + 2], a03 = a0_row[p + 3];
    const double a10 = a1_row[p], a11 = a1_row[p + 1],
                 a12 = a1_row[p + 2], a13 = a1_row[p + 3];
    const double *b0 = b + p * n;
    const double *b1 = b0 + n;
    const double *b2 = b1 + n;
    const double *b3 = b2 + n;
    for (std::size_t j = j0; j < j1; ++j) {
        const double bv0 = b0[j];
        const double bv1 = b1[j];
        const double bv2 = b2[j];
        const double bv3 = b3[j];
        double v0 = Seed ? (bias != nullptr ? bias[j] : 0.0) : c0[j];
        v0 += a00 * bv0;
        v0 += a01 * bv1;
        v0 += a02 * bv2;
        v0 += a03 * bv3;
        double v1 = Seed ? (bias != nullptr ? bias[j] : 0.0) : c1[j];
        v1 += a10 * bv0;
        v1 += a11 * bv1;
        v1 += a12 * bv2;
        v1 += a13 * bv3;
        if (Fuse) {
            v0 = std::max(0.0, v0);
            v1 = std::max(0.0, v1);
        }
        c0[j] = v0;
        c1[j] = v1;
    }
}

/** Single-row variant of panelStep2 for the m % 2 remainder. */
template <bool Seed, bool Fuse>
inline void
panelStep1(const double *a_row, const double *b, std::size_t n,
           std::size_t p, std::size_t j0, std::size_t j1,
           const double *bias, double *c_row)
{
    const double a0 = a_row[p];
    const double a1 = a_row[p + 1];
    const double a2 = a_row[p + 2];
    const double a3 = a_row[p + 3];
    const double *b0 = b + p * n;
    const double *b1 = b0 + n;
    const double *b2 = b1 + n;
    const double *b3 = b2 + n;
    for (std::size_t j = j0; j < j1; ++j) {
        double v = Seed ? (bias != nullptr ? bias[j] : 0.0) : c_row[j];
        v += a0 * b0[j];
        v += a1 * b1[j];
        v += a2 * b2[j];
        v += a3 * b3[j];
        if (Fuse) {
            v = std::max(0.0, v);
        }
        c_row[j] = v;
    }
}

} // namespace detail

void
gemm(std::size_t m, std::size_t k, std::size_t n, const double *a,
     const double *b, double *c, const double *bias, Epilogue epilogue)
{
    // Stage-attribution row shared with the naive matmul path
    // (matrix.cpp), so a backend regression shows up as one span in
    // `kodan-report profile diff`.
    KODAN_TRACE_SCOPE("ml.kernels.gemm");
    if (m == 0 || n == 0) {
        return; // no output elements; also keeps memset/memcpy off
                // the null data pointer of an empty Matrix
    }
    if (k == 0) {
        // Degenerate reduction: C is just the (epilogued) bias seed.
        for (std::size_t i = 0; i < m; ++i) {
            double *c_row = c + i * n;
            if (bias != nullptr) {
                std::memcpy(c_row, bias, n * sizeof(double));
            } else {
                std::memset(c_row, 0, n * sizeof(double));
            }
            if (epilogue == Epilogue::Relu) {
                for (std::size_t j = 0; j < n; ++j) {
                    c_row[j] = std::max(0.0, c_row[j]);
                }
            }
        }
        return;
    }
    // The fused epilogue rides on the last 4-wide panel step, so it
    // needs the scalar p-remainder to be empty; otherwise gemm falls
    // back to a separate pass over C after the blocked loops (the
    // caller-visible contract is the same either way).
    const bool fuse = epilogue == Epilogue::Relu && k % 4 == 0;
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
        const std::size_t j1 = std::min(n, j0 + kBlockJ);
        for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
            const std::size_t p1 = std::min(k, p0 + kBlockK);
            // 2x4 register micro-kernel: two A rows x four reduction
            // indices per pass over the C panel (8 broadcast A values,
            // four B panels, two C accumulator panels — fits the 16
            // vector registers of baseline x86-64 without spills). Each
            // C element's additions stay in ascending-p order — a
            // single sequential chain, never a split accumulator; the
            // two rows are INDEPENDENT chains, so the unroll buys
            // instruction-level parallelism and 2x reuse of every
            // loaded B value without reassociating anything.
            std::size_t i = 0;
            for (; i + 2 <= m; i += 2) {
                const double *a0_row = a + i * k;
                const double *a1_row = a0_row + k;
                double *c0 = c + i * n;
                double *c1 = c0 + n;
                // Seed and fused-last steps are peeled out of the loop
                // so the hot middle loop stays one straight-line body.
                std::size_t p = p0;
                if (p0 == 0 && 4 <= p1) {
                    if (fuse && k == 4) {
                        detail::panelStep2<true, true>(
                            a0_row, a1_row, b, n, p, j0, j1, bias, c0, c1);
                    } else {
                        detail::panelStep2<true, false>(
                            a0_row, a1_row, b, n, p, j0, j1, bias, c0, c1);
                    }
                    p += 4;
                }
                const std::size_t mid_end =
                    (fuse && p1 == k) ? p1 - 4 : p1;
                for (; p + 4 <= mid_end; p += 4) {
                    detail::panelStep2<false, false>(
                        a0_row, a1_row, b, n, p, j0, j1, bias, c0, c1);
                }
                if (fuse && p1 == k && p + 4 <= p1) {
                    detail::panelStep2<false, true>(
                        a0_row, a1_row, b, n, p, j0, j1, bias, c0, c1);
                    p += 4;
                }
                for (; p < p1; ++p) {
                    const double *b_row = b + p * n;
                    const double ap0 = a0_row[p];
                    const double ap1 = a1_row[p];
                    if (p == 0) {
                        // k < 4: the scalar loop runs first and must
                        // seed from the bias like the panel steps do.
                        for (std::size_t j = j0; j < j1; ++j) {
                            const double bj =
                                bias != nullptr ? bias[j] : 0.0;
                            c0[j] = bj + ap0 * b_row[j];
                            c1[j] = bj + ap1 * b_row[j];
                        }
                    } else {
                        for (std::size_t j = j0; j < j1; ++j) {
                            c0[j] += ap0 * b_row[j];
                            c1[j] += ap1 * b_row[j];
                        }
                    }
                }
            }
            // Row remainder (m % 2): single-row, same ascending-p chain.
            for (; i < m; ++i) {
                const double *a_row = a + i * k;
                double *c_row = c + i * n;
                std::size_t p = p0;
                if (p0 == 0 && 4 <= p1) {
                    if (fuse && k == 4) {
                        detail::panelStep1<true, true>(a_row, b, n, p, j0,
                                                       j1, bias, c_row);
                    } else {
                        detail::panelStep1<true, false>(
                            a_row, b, n, p, j0, j1, bias, c_row);
                    }
                    p += 4;
                }
                const std::size_t mid_end =
                    (fuse && p1 == k) ? p1 - 4 : p1;
                for (; p + 4 <= mid_end; p += 4) {
                    detail::panelStep1<false, false>(a_row, b, n, p, j0,
                                                     j1, bias, c_row);
                }
                if (fuse && p1 == k && p + 4 <= p1) {
                    detail::panelStep1<false, true>(a_row, b, n, p, j0,
                                                    j1, bias, c_row);
                    p += 4;
                }
                for (; p < p1; ++p) {
                    const double ap = a_row[p];
                    const double *b_row = b + p * n;
                    if (p == 0) {
                        for (std::size_t j = j0; j < j1; ++j) {
                            c_row[j] = (bias != nullptr ? bias[j] : 0.0) +
                                       ap * b_row[j];
                        }
                    } else {
                        for (std::size_t j = j0; j < j1; ++j) {
                            c_row[j] += ap * b_row[j];
                        }
                    }
                }
            }
        }
    }
    if (epilogue == Epilogue::Relu && !fuse) {
        for (std::size_t i = 0; i < m; ++i) {
            double *c_row = c + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                c_row[j] = std::max(0.0, c_row[j]);
            }
        }
    }
}

void
gemv(std::size_t rows, std::size_t cols, const double *w, const double *x,
     const double *bias, double *y)
{
    for (std::size_t o = 0; o < rows; ++o) {
        const double *w_row = w + o * cols;
        double z = bias != nullptr ? bias[o] : 0.0;
        std::size_t i = 0;
        // Single sequential accumulator — the unroll trims loop
        // overhead without reassociating the chain.
        for (; i + 4 <= cols; i += 4) {
            z += w_row[i] * x[i];
            z += w_row[i + 1] * x[i + 1];
            z += w_row[i + 2] * x[i + 2];
            z += w_row[i + 3] * x[i + 3];
        }
        for (; i < cols; ++i) {
            z += w_row[i] * x[i];
        }
        y[o] = z;
    }
}

void
transpose(std::size_t rows, std::size_t cols, const double *a, double *out)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const double *a_row = a + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
            out[c * rows + r] = a_row[c];
        }
    }
}

void
rowSquaredNorms(std::size_t rows, std::size_t dim, const double *x,
                double *out)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const double *row = x + r * dim;
        double sum = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            sum += row[d] * row[d];
        }
        out[r] = sum;
    }
}

void
standardizeRows(std::size_t rows, std::size_t dim, const double *x,
                const double *mean, const double *stddev, double *out)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const double *src = x + r * dim;
        double *dst = out + r * dim;
        for (std::size_t d = 0; d < dim; ++d) {
            dst[d] = (src[d] - mean[d]) / stddev[d];
        }
    }
}

} // namespace kodan::ml::kernels
