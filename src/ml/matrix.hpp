/**
 * @file
 * Dense row-major matrix used by the ML substrate.
 *
 * Deliberately minimal: the training workloads in kodan are small MLPs
 * and k-means over low-dimensional label vectors, so clarity beats BLAS.
 */

#ifndef KODAN_ML_MATRIX_HPP
#define KODAN_ML_MATRIX_HPP

#include <cassert>
#include <cstddef>
#include <vector>

namespace kodan::ml {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0 x 0 matrix. */
    Matrix() = default;

    /**
     * Zero-initialized rows x cols matrix.
     * @param rows Row count.
     * @param cols Column count.
     */
    Matrix(std::size_t rows, std::size_t cols);

    /** Row count. */
    std::size_t rows() const { return rows_; }

    /** Column count. */
    std::size_t cols() const { return cols_; }

    /** Mutable element access. */
    double &at(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Const element access. */
    double at(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /** Pointer to the start of row r. */
    double *row(std::size_t r)
    {
        assert(r < rows_);
        return data_.data() + r * cols_;
    }

    /** Const pointer to the start of row r. */
    const double *row(std::size_t r) const
    {
        assert(r < rows_);
        return data_.data() + r * cols_;
    }

    /** Raw storage. */
    std::vector<double> &data() { return data_; }

    /** Raw storage (const). */
    const std::vector<double> &data() const { return data_; }

    /** Set all elements to @p value. */
    void fill(double value);

    /** this += other (element-wise; shapes must match). */
    void add(const Matrix &other);

    /** this *= scalar. */
    void scale(double s);

    /** Matrix product a * b. */
    static Matrix multiply(const Matrix &a, const Matrix &b);

    /** Transposed copy. */
    Matrix transposed() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace kodan::ml

#endif // KODAN_ML_MATRIX_HPP
