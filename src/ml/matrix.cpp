#include "ml/matrix.hpp"

#include <algorithm>

#include "ml/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace kodan::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

void
Matrix::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::add(const Matrix &other)
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
}

void
Matrix::scale(double s)
{
    for (auto &v : data_) {
        v *= s;
    }
}

Matrix
Matrix::multiply(const Matrix &a, const Matrix &b)
{
    assert(a.cols_ == b.rows_ && "multiply: inner dimensions must match");
    Matrix c(a.rows_, b.cols_);
    if (kernels::backend() == kernels::Backend::Blocked) {
        // The blocked kernel accumulates every element over ascending
        // inner index, the same chain as the naive loop below (whose
        // zero-skip is bit-neutral: an accumulator seeded with +0.0
        // never becomes -0.0, so adding aik * b == +/-0.0 is identity).
        kernels::gemm(a.rows_, a.cols_, b.cols_, a.data_.data(),
                      b.data_.data(), c.data_.data(), nullptr);
        return c;
    }
    // Same attribution row as kernels::gemm: both backends of the one
    // logical kernel, so profile diffs rank the backend swap directly.
    KODAN_TRACE_SCOPE("ml.kernels.gemm");
    for (std::size_t i = 0; i < a.rows_; ++i) {
        for (std::size_t k = 0; k < a.cols_; ++k) {
            const double aik = a.at(i, k);
            if (aik == 0.0) {
                continue;
            }
            const double *b_row = b.row(k);
            double *c_row = c.row(i);
            for (std::size_t j = 0; j < b.cols_; ++j) {
                c_row[j] += aik * b_row[j];
            }
        }
    }
    return c;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t.at(c, r) = at(r, c);
        }
    }
    return t;
}

} // namespace kodan::ml
