/**
 * @file
 * K-means clustering over label vectors, with the distance-metric sweep
 * described in the paper's automatic context generation (Section 3.2):
 * Euclidean, Hamming (binarized), and Cosine.
 */

#ifndef KODAN_ML_KMEANS_HPP
#define KODAN_ML_KMEANS_HPP

#include <vector>

#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace kodan::ml {

/** Distance metrics for clustering. */
enum class Distance
{
    Euclidean,
    Hamming,
    Cosine,
};

/** Human-readable metric name. */
const char *distanceName(Distance metric);

/** Outcome of one k-means fit. */
struct KMeansResult
{
    /** Cluster count. */
    int k = 0;
    /** Metric used. */
    Distance metric = Distance::Euclidean;
    /** Centroids, one per row. */
    Matrix centroids;
    /** Cluster assignment per input row. */
    std::vector<int> assignment;
    /** Sum of distances of samples to their centroid. */
    double inertia = 0.0;

    /**
     * Index of the nearest centroid to @p x (under the fit's metric).
     *
     * For Euclidean fits the comparison is on squared distances — sqrt
     * is monotone, so the argmin (first-of-ties) is the same and the
     * per-centroid sqrt is skipped.
     *
     * @param x Vector of centroids.cols() values.
     */
    int nearest(const double *x) const;
};

/**
 * Lloyd's algorithm with k-means++ seeding and restarts.
 *
 * For non-Euclidean metrics the assignment step uses the requested
 * metric while the update step remains the arithmetic mean (a standard
 * k-means-with-custom-metric approximation; exact medoid updates are
 * unnecessary for the well-separated label vectors in this workload).
 */
class KMeans
{
  public:
    /**
     * @param k Number of clusters (>= 1).
     * @param metric Assignment distance.
     * @param max_iters Lloyd iteration cap per restart.
     * @param restarts Independent restarts; the best inertia wins.
     */
    explicit KMeans(int k, Distance metric = Distance::Euclidean,
                    int max_iters = 64, int restarts = 4);

    /**
     * Fit to the rows of @p x.
     * @param x Samples, one per row; must have at least k rows.
     * @param rng Seeding randomness.
     */
    KMeansResult fit(const Matrix &x, util::Rng &rng) const;

    /** Distance between two vectors under @p metric. */
    static double distance(const double *a, const double *b,
                           std::size_t dim, Distance metric);

  private:
    int k_;
    Distance metric_;
    int max_iters_;
    int restarts_;

    KMeansResult fitOnce(const Matrix &x, util::Rng &rng) const;

    /** Original per-point Lloyd iterations (the Naive oracle). */
    void lloydNaive(const Matrix &x, util::Rng &rng,
                    KMeansResult &result) const;

    /**
     * Batched Lloyd iterations (Blocked backend): Euclidean and Cosine
     * assignment via one point-by-centroid GEMM per iteration (with the
     * norm expansion ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 for
     * Euclidean), Hamming on pre-binarized bytes. Assignments, inertia,
     * and rng consumption are bit-identical to lloydNaive.
     */
    void lloydBlocked(const Matrix &x, util::Rng &rng,
                      KMeansResult &result) const;
};

/**
 * Mean silhouette score of a clustering, a cluster-count validity
 * criterion for the k sweep. Computed on a subsample for large inputs.
 *
 * @param x Samples clustered by @p result.
 * @param result Fit to evaluate.
 * @param sample_cap Maximum samples to include (subsampled evenly).
 * @return Mean silhouette in [-1, 1]; higher is better separated.
 */
double silhouetteScore(const Matrix &x, const KMeansResult &result,
                       std::size_t sample_cap = 512);

} // namespace kodan::ml

#endif // KODAN_ML_KMEANS_HPP
