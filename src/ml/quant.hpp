/**
 * @file
 * Int8 quantized inference sibling of Mlp, plus the process-wide
 * precision knob.
 *
 * Scheme (see DESIGN.md "Quantized inference path"):
 *  - Weights: per-output-channel symmetric int8 — w_scale[o] =
 *    absmax(W[o,:]) / 127, wq = round(W / w_scale) clamped to
 *    [-127, 127]. Computed offline from the trained fp64 net.
 *  - Activations: per-tensor symmetric int8 with scales calibrated
 *    offline from a fp64 forward pass over the model's own training
 *    batch (absmax / 127 per layer input).
 *  - Hidden layers: int32 accumulation seeded by the quantized bias,
 *    then fixed-point requantization to the next layer's input scale
 *    (Q31 multiplier + right shift, round-half-away-from-zero) with
 *    ReLU fused as the [0, 127] saturation of the store.
 *  - Output layer: int32 accumulators dequantized to double
 *    (acc * in_scale * w_scale[o] + fp64 bias), then the sigmoid /
 *    softmax head evaluated in double exactly as the fp64 path does.
 *
 * Every arithmetic step between the input quantization and the final
 * dequantization is integer, so results are bit-identical at any
 * KODAN_THREADS, any batch split, and any kernel blocking — the
 * determinism contract holds by construction rather than by a fixed
 * summation order.
 */

#ifndef KODAN_ML_QUANT_HPP
#define KODAN_ML_QUANT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/mlp.hpp"

namespace kodan::ml {

/** Numeric mode of the deployed inference path. */
enum class Precision
{
    /** Full double-precision inference (the default). */
    Fp64,
    /** Int8 quantized inference where a calibrated sibling exists. */
    Int8,
};

/**
 * Active inference precision. Defaults to Fp64; the KODAN_QUANT
 * environment variable ("int8", "1", or "on" — anything else means
 * fp64) overrides the default, and setPrecision() overrides both.
 * Consulted at dispatch time by SpecializedZoo::predictRows and
 * friends, so flipping it redirects the runtime, the pipeline infer
 * stage, and the selection sweep together.
 */
Precision precision();

/** Override the active precision (process-wide). */
void setPrecision(Precision p);

/** RAII precision override (tests, per-entry A/B measurement). */
class PrecisionGuard
{
  public:
    explicit PrecisionGuard(Precision p);
    ~PrecisionGuard();
    PrecisionGuard(const PrecisionGuard &) = delete;
    PrecisionGuard &operator=(const PrecisionGuard &) = delete;

  private:
    Precision saved_;
};

/**
 * Immutable int8 inference sibling of a trained Mlp. Construction
 * quantizes the fp64 weights; inference is allocation-free at steady
 * state (all workspaces come from the per-thread Scratch arena via
 * allocBytes). Thread-safe for concurrent forward calls.
 */
class QuantizedMlp
{
  public:
    /**
     * Quantize @p net using precomputed per-layer activation scales
     * (one per linear layer: the scale of that layer's input tensor).
     * This is the deserialization path — scales round-trip through
     * saveZoo/loadZoo while the int8 weights are rebuilt from the
     * fp64 net, keeping the on-disk format small and exact.
     */
    QuantizedMlp(const Mlp &net, const std::vector<double> &act_scales);

    /**
     * Per-layer input absmax scales of @p net over a calibration
     * batch (row-major @p rows x input_dim). Runs the fp64 forward in
     * strips; deterministic for a fixed batch.
     */
    static std::vector<double> calibrate(const Mlp &net, const double *x,
                                         std::size_t rows);

    /** calibrate() + construct, the offline quantization entry point. */
    static QuantizedMlp fromCalibration(const Mlp &net, const double *x,
                                        std::size_t rows);

    /** Architecture (shared with the fp64 sibling). */
    const MlpConfig &config() const { return config_; }

    /** The calibrated activation scales (serialization payload). */
    const std::vector<double> &actScales() const { return act_scales_; }

    /**
     * Forward one sample through the integer path (gemvI8 per layer).
     * Bit-identical to forwardBatch(x, 1, out) by integer
     * associativity.
     */
    void forward(const double *x, double *out) const;

    /**
     * Forward @p count samples: one gemmI8Requant per hidden layer,
     * gemmI8 + double dequantization for the head. Bit-identical for
     * any batch composition.
     */
    void forwardBatch(const double *x, std::size_t count,
                      double *out) const;

    /** Matrix convenience overload; @p out is resized. */
    void forwardBatch(const Matrix &x, Matrix &out) const;

    /** Probability of the positive class (binary head convenience). */
    double predictProb(const double *x) const;

  private:
    struct LayerQ
    {
        std::size_t fan_in = 0;
        std::size_t fan_out = 0;
        /** Row-major fan_out x fan_in (the gemmI8/gemvI8 operand). */
        std::vector<std::int8_t> wq;
        /** Per-output-channel weight scales. */
        std::vector<double> w_scale;
        /** Hidden layers: bias / (in_scale * w_scale[o]), clamped. */
        std::vector<std::int32_t> bias_q;
        /** Hidden layers: in_scale * w_scale[o] / out_scale encoded. */
        std::vector<kernels::Requant> rq;
        /** Output layer: in_scale * w_scale[o] dequantization factor. */
        std::vector<double> deq;
        /** Output layer: fp64 bias applied after dequantization. */
        std::vector<double> bias_f;
        /**
         * wq (+ the int32 bias seeds) in the blocked kernels' packed
         * pair layout, built once at construction — the int8 analogue
         * of Mlp's eagerly-refreshed transposes. Re-packing per GEMM
         * call dominated small layers.
         */
        kernels::PackedI8 packed;
    };

    MlpConfig config_;
    std::vector<LayerQ> layers_;
    std::vector<double> act_scales_;
    std::size_t max_width_ = 0;

    /** Quantize one input strip into the scratch arena. */
    const std::int8_t *quantizeInput(const double *x, std::size_t rows,
                                     std::int8_t *out) const;
};

} // namespace kodan::ml

#endif // KODAN_ML_QUANT_HPP
