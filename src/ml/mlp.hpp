/**
 * @file
 * Multilayer perceptron with Adam training.
 *
 * This is the stand-in for the paper's semantic-segmentation networks:
 * per-block binary cloud classifiers (sigmoid head) and the multi-class
 * context engine (softmax head). Seven capacity tiers play the role of
 * the seven application architectures of Table 1.
 *
 * Inference and training dispatch on kernels::backend(): the Blocked
 * path runs one GEMM per layer over the whole batch with scratch-arena
 * workspaces (no per-call heap traffic), the Naive path keeps the
 * original per-sample scalar loops as the bit-exact oracle. Both
 * produce identical bits (see tests/ml/test_kernels.cpp).
 */

#ifndef KODAN_ML_MLP_HPP
#define KODAN_ML_MLP_HPP

#include <iosfwd>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace kodan::ml {

/** Output head of an Mlp. */
enum class OutputKind
{
    /** Independent sigmoid units, binary cross-entropy loss. */
    Sigmoid,
    /** Softmax over classes, cross-entropy loss. */
    Softmax,
};

/** Architecture description of an Mlp. */
struct MlpConfig
{
    /** Input dimension. */
    int input_dim = 0;
    /** Hidden layer widths (ReLU activations). */
    std::vector<int> hidden;
    /** Output dimension (1 for binary, class count for softmax). */
    int output_dim = 1;
    /** Output head. */
    OutputKind output = OutputKind::Sigmoid;
};

/** Training hyperparameters. */
struct TrainOptions
{
    /** Number of passes over the training set. */
    int epochs = 4;
    /** Minibatch size. */
    int batch_size = 64;
    /** Adam learning rate. */
    double learning_rate = 3.0e-3;
    /** L2 weight decay. */
    double weight_decay = 1.0e-5;
};

/**
 * Fully-connected network: input -> (Linear+ReLU)* -> Linear -> head.
 */
class Mlp
{
  public:
    /**
     * Construct with He-initialized weights.
     * @param config Architecture.
     * @param rng Initialization randomness.
     */
    Mlp(const MlpConfig &config, util::Rng &rng);

    /** Architecture. */
    const MlpConfig &config() const { return config_; }

    /** Total number of trainable parameters. */
    std::size_t parameterCount() const;

    /**
     * Forward pass of one sample.
     * @param x Input of config().input_dim values.
     * @param out Output of config().output_dim probabilities.
     */
    void forward(const double *x, double *out) const;

    /**
     * Forward pass of @p count samples at once: one GEMM per layer on
     * the Blocked backend. Bit-identical to @p count calls of forward()
     * for any batch composition.
     *
     * @param x Row-major samples, count x config().input_dim.
     * @param count Number of samples.
     * @param out Row-major output, count x config().output_dim.
     */
    void forwardBatch(const double *x, std::size_t count,
                      double *out) const;

    /**
     * Matrix convenience overload of the batched forward pass; @p out
     * is resized to x.rows() x config().output_dim.
     */
    void forwardBatch(const Matrix &x, Matrix &out) const;

    /** Probability of the positive class (binary head convenience). */
    double predictProb(const double *x) const;

    /** Argmax class (softmax head convenience). */
    int predictClass(const double *x) const;

    /**
     * Train with Adam on (X, targets).
     *
     * For a Sigmoid head, @p targets holds one value per sample per output
     * unit in [0, 1] (soft labels are allowed). For a Softmax head it
     * holds one class index per sample (cast to double).
     *
     * @param x Samples, one per row.
     * @param targets Targets as described above.
     * @param options Hyperparameters.
     * @param rng Shuffling randomness.
     * @return Mean training loss of the final epoch.
     */
    double train(const Matrix &x, const std::vector<double> &targets,
                 const TrainOptions &options, util::Rng &rng);

    /** Serialize (architecture + weights) to a stream. */
    void save(std::ostream &os) const;

    /** Deserialize a network previously written by save(). */
    static Mlp load(std::istream &is);

    /** Number of linear layers (hidden layers + output layer). */
    std::size_t layerCount() const { return layers_.size(); }

    /**
     * Weights of layer @p l, row-major fan_out x fan_in — the view the
     * quantizer reads to build per-output-channel int8 siblings.
     */
    const Matrix &layerWeights(std::size_t l) const
    {
        return layers_[l].weights;
    }

    /** Bias of layer @p l (fan_out values). */
    const std::vector<double> &layerBias(std::size_t l) const
    {
        return layers_[l].bias;
    }

  private:
    struct Layer
    {
        Matrix weights; // out x in
        // Transposed weights (in x out), the GEMM operand of the
        // batched forward pass; refreshed eagerly whenever weights
        // change so const inference paths stay thread-safe.
        Matrix weights_t;
        std::vector<double> bias;
        // Adam state.
        Matrix m_w, v_w;
        std::vector<double> m_b, v_b;
    };

    MlpConfig config_;
    std::vector<Layer> layers_;
    long long adam_step_ = 0;
    std::size_t max_width_ = 0; // widest layer incl. input and output

    /** Rebuild weights_t of every layer from weights. */
    void refreshTransposes();

    /** Original per-sample scalar forward (the Naive oracle). */
    void forwardNaive(const double *x, double *out) const;

    /** Scratch-arena forward of one sample (Blocked backend). */
    void forwardBlocked(const double *x, double *out) const;

    /** Original per-sample training loop (the Naive oracle). */
    double trainNaive(const Matrix &x, const std::vector<double> &targets,
                      const TrainOptions &options, util::Rng &rng);

    /** GEMM-batched training (Blocked backend); identical bits. */
    double trainBlocked(const Matrix &x,
                        const std::vector<double> &targets,
                        const TrainOptions &options, util::Rng &rng);

    /**
     * Forward pass keeping activations for backprop.
     * @param x Input sample.
     * @param acts Output: per-layer post-activation vectors (acts[0] = x).
     */
    void forwardTraining(const double *x,
                         std::vector<std::vector<double>> &acts) const;
};

} // namespace kodan::ml

#endif // KODAN_ML_MLP_HPP
