#include "ml/quant.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace kodan::ml {

namespace {

std::atomic<int> g_precision{-1};

Precision
envPrecision()
{
    const char *env = std::getenv("KODAN_QUANT");
    if (env != nullptr) {
        const std::string_view v(env);
        if (v == "int8" || v == "1" || v == "on") {
            return Precision::Int8;
        }
    }
    return Precision::Fp64;
}

/** Bias headroom bound: keeps |acc| = |bias| + 127*127*k exact in
 *  int32 for every k this codebase can produce (see kernels.hpp). */
constexpr std::int32_t kBiasClamp = std::int32_t{1} << 30;

/**
 * Input/weight quantization rounding: round half away from zero
 * (matching requantize()'s tie rule), computed as truncate(s +/- 0.5)
 * with a saturating clamp — branch-free so the per-sample input
 * quantization loop vectorizes (llround compiled to a libm call per
 * element and dominated the whole quantized forward). The +/-0.5 form
 * can differ from llround by one ulp of double rounding at
 * representation boundaries; either way it is a fixed deterministic
 * rule, which is all the bit-identity contract needs.
 */
inline std::int8_t
quantizeValue(double v, double inv_scale)
{
    double s = v * inv_scale;
    s = s > 127.0 ? 127.0 : s;
    s = s < -127.0 ? -127.0 : s;
    return static_cast<std::int8_t>(
        static_cast<std::int32_t>(s + std::copysign(0.5, s)));
}

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

void
softmaxRow(double *v, std::size_t n)
{
    const double peak = *std::max_element(v, v + n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - peak);
        total += v[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        v[i] /= total;
    }
}

/** absmax over a row-major block, 0.0 for an empty one. */
double
absMax(const double *x, std::size_t count)
{
    double peak = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        peak = std::max(peak, std::fabs(x[i]));
    }
    return peak;
}

/** absmax / 127 with the all-zero tensor mapped to scale 1.0. */
double
scaleFromAbsMax(double peak)
{
    return peak > 0.0 ? peak / 127.0 : 1.0;
}

} // namespace

Precision
precision()
{
    const int v = g_precision.load(std::memory_order_relaxed);
    if (v >= 0) {
        return static_cast<Precision>(v);
    }
    static const Precision from_env = envPrecision();
    return from_env;
}

void
setPrecision(Precision p)
{
    g_precision.store(static_cast<int>(p), std::memory_order_relaxed);
}

PrecisionGuard::PrecisionGuard(Precision p)
    : saved_(precision())
{
    setPrecision(p);
}

PrecisionGuard::~PrecisionGuard()
{
    setPrecision(saved_);
}

QuantizedMlp::QuantizedMlp(const Mlp &net,
                           const std::vector<double> &act_scales)
    : config_(net.config()), act_scales_(act_scales)
{
    assert(act_scales_.size() == net.layerCount());
    const std::size_t layer_count = net.layerCount();
    layers_.resize(layer_count);
    max_width_ = static_cast<std::size_t>(config_.input_dim);
    for (std::size_t l = 0; l < layer_count; ++l) {
        const Matrix &w = net.layerWeights(l);
        const std::vector<double> &bias = net.layerBias(l);
        LayerQ &lq = layers_[l];
        lq.fan_out = w.rows();
        lq.fan_in = w.cols();
        max_width_ = std::max(max_width_, lq.fan_out);

        // Per-output-channel symmetric weight quantization.
        lq.w_scale.resize(lq.fan_out);
        lq.wq.resize(lq.fan_out * lq.fan_in);
        for (std::size_t o = 0; o < lq.fan_out; ++o) {
            const double *w_row = w.row(o);
            const double scale = scaleFromAbsMax(absMax(w_row, lq.fan_in));
            lq.w_scale[o] = scale;
            const double inv = 1.0 / scale;
            for (std::size_t i = 0; i < lq.fan_in; ++i) {
                lq.wq[o * lq.fan_in + i] = quantizeValue(w_row[i], inv);
            }
        }

        const double in_scale = act_scales_[l];
        const bool last = l + 1 == layer_count;
        if (last) {
            // Head: dequantize the raw accumulators to double and add
            // the exact fp64 bias — no bias quantization error on the
            // layer that feeds sigmoid/softmax.
            lq.deq.resize(lq.fan_out);
            lq.bias_f = bias;
            for (std::size_t o = 0; o < lq.fan_out; ++o) {
                lq.deq[o] = in_scale * lq.w_scale[o];
            }
        } else {
            const double out_scale = act_scales_[l + 1];
            lq.bias_q.resize(lq.fan_out);
            lq.rq.resize(lq.fan_out);
            for (std::size_t o = 0; o < lq.fan_out; ++o) {
                const double acc_scale = in_scale * lq.w_scale[o];
                const double b = bias[o] / acc_scale;
                lq.bias_q[o] = static_cast<std::int32_t>(std::llround(
                    std::clamp(b, -static_cast<double>(kBiasClamp),
                               static_cast<double>(kBiasClamp))));
                lq.rq[o] = kernels::requantScale(acc_scale / out_scale);
            }
        }
        // The head runs gemmI8 with a null bias (its fp64 bias lands
        // after dequantization), so its pack carries zero seeds.
        lq.packed = kernels::PackedI8(lq.fan_out, lq.fan_in,
                                      lq.wq.data(),
                                      last ? nullptr : lq.bias_q.data());
    }
}

std::vector<double>
QuantizedMlp::calibrate(const Mlp &net, const double *x, std::size_t rows)
{
    assert(rows >= 1);
    const std::size_t layer_count = net.layerCount();
    const auto in_dim = static_cast<std::size_t>(net.config().input_dim);
    std::vector<double> peaks(layer_count, 0.0);
    peaks[0] = absMax(x, rows * in_dim);

    // Strip-mined fp64 forward capturing the absmax of every hidden
    // activation (= the input tensor of the next layer). The head's
    // output needs no scale, so the last layer is never evaluated.
    constexpr std::size_t kStripRows = 512;
    kernels::Scratch::Frame outer(kernels::scratch());
    for (std::size_t r0 = 0; r0 < rows; r0 += kStripRows) {
        const std::size_t strip = std::min(kStripRows, rows - r0);
        kernels::Scratch::Frame frame(kernels::scratch());
        const double *current = x + r0 * in_dim;
        for (std::size_t l = 0; l + 1 < layer_count; ++l) {
            const Matrix &w = net.layerWeights(l);
            const std::size_t fan_out = w.rows();
            const std::size_t fan_in = w.cols();
            double *w_t = kernels::scratch().alloc(fan_out * fan_in);
            kernels::transpose(fan_out, fan_in, w.data().data(), w_t);
            double *next = kernels::scratch().alloc(strip * fan_out);
            kernels::gemm(strip, fan_in, fan_out, current, w_t, next,
                          net.layerBias(l).data(),
                          kernels::Epilogue::Relu);
            peaks[l + 1] =
                std::max(peaks[l + 1], absMax(next, strip * fan_out));
            current = next;
        }
    }

    std::vector<double> scales(layer_count);
    for (std::size_t l = 0; l < layer_count; ++l) {
        scales[l] = scaleFromAbsMax(peaks[l]);
    }
    return scales;
}

QuantizedMlp
QuantizedMlp::fromCalibration(const Mlp &net, const double *x,
                              std::size_t rows)
{
    return QuantizedMlp(net, calibrate(net, x, rows));
}

const std::int8_t *
QuantizedMlp::quantizeInput(const double *x, std::size_t rows,
                            std::int8_t *out) const
{
    const auto in_dim = static_cast<std::size_t>(config_.input_dim);
    const double inv = 1.0 / act_scales_[0];
    const std::size_t count = rows * in_dim;
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = quantizeValue(x[i], inv);
    }
    return out;
}

void
QuantizedMlp::forwardBatch(const double *x, std::size_t count,
                           double *out) const
{
    const auto in_dim = static_cast<std::size_t>(config_.input_dim);
    const auto out_dim = static_cast<std::size_t>(config_.output_dim);
    if (count == 0) {
        return;
    }
    KODAN_TRACE_SCOPE("ml.mlp.forward_batch_i8");
    KODAN_COUNT_ADD("ml.mlp.forward_batch_i8.rows", count);
    // Same strip-mining as the fp64 path; rows are independent and the
    // arithmetic is integer, so the strip size cannot change bits.
    constexpr std::size_t kStripRows = 512;
    for (std::size_t r0 = 0; r0 < count; r0 += kStripRows) {
        const std::size_t rows = std::min(kStripRows, count - r0);
        kernels::Scratch::Frame frame(kernels::scratch());
        const std::int8_t *current = quantizeInput(
            x + r0 * in_dim, rows,
            kernels::scratch().allocArray<std::int8_t>(rows * in_dim));
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const LayerQ &lq = layers_[l];
            const bool last = l + 1 == layers_.size();
            const bool blocked =
                kernels::backend() == kernels::Backend::Blocked;
            if (!last) {
                auto *next = kernels::scratch().allocArray<std::int8_t>(
                    rows * lq.fan_out);
                if (blocked) {
                    kernels::gemmI8Requant(rows, lq.packed, current,
                                           lq.rq.data(), /*relu=*/true,
                                           next);
                } else {
                    kernels::gemmI8Requant(rows, lq.fan_in, lq.fan_out,
                                           current, lq.wq.data(),
                                           lq.bias_q.data(), lq.rq.data(),
                                           /*relu=*/true, next);
                }
                current = next;
                continue;
            }
            auto *acc = kernels::scratch().allocArray<std::int32_t>(
                rows * lq.fan_out);
            if (blocked) {
                kernels::gemmI8(rows, lq.packed, current, acc);
            } else {
                kernels::gemmI8(rows, lq.fan_in, lq.fan_out, current,
                                lq.wq.data(), nullptr, acc);
            }
            double *head = out + r0 * out_dim;
            for (std::size_t r = 0; r < rows; ++r) {
                double *o_row = head + r * out_dim;
                const std::int32_t *a_row = acc + r * lq.fan_out;
                for (std::size_t o = 0; o < lq.fan_out; ++o) {
                    o_row[o] = static_cast<double>(a_row[o]) * lq.deq[o] +
                               lq.bias_f[o];
                }
                if (config_.output == OutputKind::Sigmoid) {
                    for (std::size_t o = 0; o < lq.fan_out; ++o) {
                        o_row[o] = sigmoid(o_row[o]);
                    }
                } else {
                    softmaxRow(o_row, lq.fan_out);
                }
            }
        }
    }
}

void
QuantizedMlp::forwardBatch(const Matrix &x, Matrix &out) const
{
    assert(static_cast<int>(x.cols()) == config_.input_dim);
    if (out.rows() != x.rows() ||
        out.cols() != static_cast<std::size_t>(config_.output_dim)) {
        out = Matrix(x.rows(),
                     static_cast<std::size_t>(config_.output_dim));
    }
    forwardBatch(x.data().data(), x.rows(), out.data().data());
}

void
QuantizedMlp::forward(const double *x, double *out) const
{
    const auto in_dim = static_cast<std::size_t>(config_.input_dim);
    kernels::Scratch::Frame frame(kernels::scratch());
    auto *q0 = kernels::scratch().allocArray<std::int8_t>(max_width_);
    auto *q1 = kernels::scratch().allocArray<std::int8_t>(max_width_);
    auto *acc = kernels::scratch().allocArray<std::int32_t>(max_width_);
    std::int8_t *current = q0;
    std::int8_t *spare = q1;
    quantizeInput(x, 1, current);
    (void)in_dim;
    const bool blocked = kernels::backend() == kernels::Backend::Blocked;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const LayerQ &lq = layers_[l];
        const bool last = l + 1 == layers_.size();
        if (!last) {
            // gemvI8 + a requantizing copy — the same integer sums as
            // gemmI8Requant by associativity, so bits match the batch
            // path exactly.
            if (blocked) {
                kernels::gemvI8(lq.packed, current, acc);
            } else {
                kernels::gemvI8(lq.fan_out, lq.fan_in, lq.wq.data(),
                                current, lq.bias_q.data(), acc);
            }
            for (std::size_t o = 0; o < lq.fan_out; ++o) {
                spare[o] = kernels::saturateI8(
                    kernels::requantize(acc[o], lq.rq[o]), 0);
            }
            std::swap(current, spare);
            continue;
        }
        if (blocked) {
            kernels::gemvI8(lq.packed, current, acc);
        } else {
            kernels::gemvI8(lq.fan_out, lq.fan_in, lq.wq.data(), current,
                            nullptr, acc);
        }
        for (std::size_t o = 0; o < lq.fan_out; ++o) {
            out[o] =
                static_cast<double>(acc[o]) * lq.deq[o] + lq.bias_f[o];
        }
        if (config_.output == OutputKind::Sigmoid) {
            for (std::size_t o = 0; o < lq.fan_out; ++o) {
                out[o] = sigmoid(out[o]);
            }
        } else {
            softmaxRow(out, lq.fan_out);
        }
    }
}

double
QuantizedMlp::predictProb(const double *x) const
{
    kernels::Scratch::Frame frame(kernels::scratch());
    double *out = kernels::scratch().alloc(
        static_cast<std::size_t>(config_.output_dim));
    forward(x, out);
    return out[0];
}

} // namespace kodan::ml
