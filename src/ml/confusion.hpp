/**
 * @file
 * Binary confusion-matrix accumulator.
 *
 * Convention throughout kodan: the positive class is HIGH-VALUE data
 * (non-cloudy pixels). Precision TP/(TP+FP) is then exactly the paper's
 * data-value metric — the fraction of pixels a filter keeps that are
 * truly high-value.
 */

#ifndef KODAN_ML_CONFUSION_HPP
#define KODAN_ML_CONFUSION_HPP

#include <cstdint>

namespace kodan::ml {

/** Counts of a binary confusion matrix. */
class ConfusionStats
{
  public:
    /** Record one (prediction, truth) pair; true = positive class. */
    void add(bool predicted_positive, bool truly_positive);

    /** Record @p count identical pairs at once. */
    void addWeighted(bool predicted_positive, bool truly_positive,
                     std::int64_t count);

    /** Merge another accumulator. */
    void merge(const ConfusionStats &other);

    /** True positives. */
    std::int64_t tp() const { return tp_; }

    /** False positives. */
    std::int64_t fp() const { return fp_; }

    /** True negatives. */
    std::int64_t tn() const { return tn_; }

    /** False negatives. */
    std::int64_t fn() const { return fn_; }

    /** Total pairs recorded. */
    std::int64_t total() const { return tp_ + fp_ + tn_ + fn_; }

    /** Fraction of correct labels; 0 when empty. */
    double accuracy() const;

    /** TP / (TP + FP); 1 when nothing was predicted positive. */
    double precision() const;

    /** TP / (TP + FN); 1 when nothing is truly positive. */
    double recall() const;

    /** Harmonic mean of precision and recall. */
    double f1() const;

    /** Fraction of samples predicted positive (the "keep rate"). */
    double positiveRate() const;

    /** Fraction of samples truly positive (prevalence). */
    double prevalence() const;

  private:
    std::int64_t tp_ = 0;
    std::int64_t fp_ = 0;
    std::int64_t tn_ = 0;
    std::int64_t fn_ = 0;
};

} // namespace kodan::ml

#endif // KODAN_ML_CONFUSION_HPP
