#include "ml/transforms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "ml/kernels.hpp"

namespace kodan::ml {

void
Standardizer::fit(const Matrix &x)
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    assert(n > 0);
    mean_.assign(dim, 0.0);
    std_.assign(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double *row = x.row(i);
        for (std::size_t d = 0; d < dim; ++d) {
            mean_[d] += row[d];
        }
    }
    for (auto &m : mean_) {
        m /= static_cast<double>(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double *row = x.row(i);
        for (std::size_t d = 0; d < dim; ++d) {
            const double diff = row[d] - mean_[d];
            std_[d] += diff * diff;
        }
    }
    for (auto &s : std_) {
        s = std::max(1.0e-9, std::sqrt(s / static_cast<double>(n)));
    }
}

Matrix
Standardizer::transform(const Matrix &x) const
{
    assert(x.cols() == mean_.size());
    Matrix out(x.rows(), x.cols());
    if (kernels::backend() == kernels::Backend::Blocked) {
        kernels::standardizeRows(x.rows(), x.cols(), x.data().data(),
                                 mean_.data(), std_.data(),
                                 out.data().data());
        return out;
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const double *src = x.row(i);
        double *dst = out.row(i);
        for (std::size_t d = 0; d < x.cols(); ++d) {
            dst[d] = (src[d] - mean_[d]) / std_[d];
        }
    }
    return out;
}

void
Standardizer::transformRow(double *row) const
{
    for (std::size_t d = 0; d < mean_.size(); ++d) {
        row[d] = (row[d] - mean_[d]) / std_[d];
    }
}

void
Standardizer::save(std::ostream &os) const
{
    os << "standardizer " << mean_.size() << '\n';
    os.precision(17);
    for (std::size_t d = 0; d < mean_.size(); ++d) {
        os << mean_[d] << ' ' << std_[d] << '\n';
    }
}

Standardizer
Standardizer::load(std::istream &is)
{
    std::string tag;
    std::size_t dim = 0;
    is >> tag >> dim;
    Standardizer scaler;
    scaler.mean_.resize(dim);
    scaler.std_.resize(dim);
    for (std::size_t d = 0; d < dim; ++d) {
        is >> scaler.mean_[d] >> scaler.std_[d];
    }
    return scaler;
}

void
jacobiEigen(const Matrix &symmetric, std::vector<double> &eigenvalues,
            Matrix &eigenvectors)
{
    const std::size_t n = symmetric.rows();
    assert(symmetric.cols() == n);

    Matrix a = symmetric;
    Matrix v(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        v.at(i, i) = 1.0;
    }

    for (int sweep = 0; sweep < 64; ++sweep) {
        // Sum of off-diagonal magnitudes; stop when negligible.
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                off += std::fabs(a.at(p, q));
            }
        }
        if (off < 1.0e-12) {
            break;
        }
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::fabs(apq) < 1.0e-15) {
                    continue;
                }
                const double app = a.at(p, p);
                const double aqq = a.at(q, q);
                const double theta = 0.5 * (aqq - app) / apq;
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t i = 0; i < n; ++i) {
                    const double aip = a.at(i, p);
                    const double aiq = a.at(i, q);
                    a.at(i, p) = c * aip - s * aiq;
                    a.at(i, q) = s * aip + c * aiq;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    const double api = a.at(p, i);
                    const double aqi = a.at(q, i);
                    a.at(p, i) = c * api - s * aqi;
                    a.at(q, i) = s * api + c * aqi;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    const double vip = v.at(i, p);
                    const double viq = v.at(i, q);
                    v.at(i, p) = c * vip - s * viq;
                    v.at(i, q) = s * vip + c * viq;
                }
            }
        }
    }

    // Sort descending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t l, std::size_t r) {
                  return a.at(l, l) > a.at(r, r);
              });
    eigenvalues.resize(n);
    eigenvectors = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        eigenvalues[i] = a.at(order[i], order[i]);
        for (std::size_t d = 0; d < n; ++d) {
            eigenvectors.at(i, d) = v.at(d, order[i]);
        }
    }
}

void
Pca::fit(const Matrix &x, std::size_t components)
{
    const std::size_t n = x.rows();
    const std::size_t dim = x.cols();
    assert(n >= 2);
    assert(components >= 1 && components <= dim);

    mean_.assign(dim, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double *row = x.row(i);
        for (std::size_t d = 0; d < dim; ++d) {
            mean_[d] += row[d];
        }
    }
    for (auto &m : mean_) {
        m /= static_cast<double>(n);
    }

    Matrix cov(dim, dim);
    for (std::size_t i = 0; i < n; ++i) {
        const double *row = x.row(i);
        for (std::size_t p = 0; p < dim; ++p) {
            const double dp = row[p] - mean_[p];
            for (std::size_t q = p; q < dim; ++q) {
                cov.at(p, q) += dp * (row[q] - mean_[q]);
            }
        }
    }
    for (std::size_t p = 0; p < dim; ++p) {
        for (std::size_t q = p; q < dim; ++q) {
            const double value = cov.at(p, q) / static_cast<double>(n - 1);
            cov.at(p, q) = value;
            cov.at(q, p) = value;
        }
    }

    std::vector<double> eigenvalues;
    Matrix eigenvectors;
    jacobiEigen(cov, eigenvalues, eigenvectors);

    total_variance_ = 0.0;
    for (double ev : eigenvalues) {
        total_variance_ += std::max(0.0, ev);
    }
    axes_ = Matrix(components, dim);
    eigenvalues_.assign(eigenvalues.begin(),
                        eigenvalues.begin() + components);
    for (std::size_t c = 0; c < components; ++c) {
        for (std::size_t d = 0; d < dim; ++d) {
            axes_.at(c, d) = eigenvectors.at(c, d);
        }
    }
}

Matrix
Pca::transform(const Matrix &x) const
{
    assert(x.cols() == mean_.size());
    Matrix out(x.rows(), axes_.rows());
    if (kernels::backend() == kernels::Backend::Blocked) {
        // out = (x - mean) * axes^T as one GEMM over centered rows.
        // Each output element reduces over ascending d with products
        // axes[c][d] * (x[d] - mean[d]) — the exact chain of the scalar
        // loop below, so the bits match.
        auto &arena = kernels::scratch();
        kernels::Scratch::Frame frame(arena);
        const std::size_t dim = x.cols();
        const std::size_t comps = axes_.rows();
        double *centered = arena.alloc(x.rows() * dim);
        for (std::size_t i = 0; i < x.rows(); ++i) {
            const double *src = x.row(i);
            double *dst = centered + i * dim;
            for (std::size_t d = 0; d < dim; ++d) {
                dst[d] = src[d] - mean_[d];
            }
        }
        double *axes_t = arena.alloc(dim * comps);
        kernels::transpose(comps, dim, axes_.data().data(), axes_t);
        kernels::gemm(x.rows(), dim, comps, centered, axes_t,
                      out.data().data(), nullptr);
        return out;
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const double *src = x.row(i);
        double *dst = out.row(i);
        for (std::size_t c = 0; c < axes_.rows(); ++c) {
            double sum = 0.0;
            const double *axis = axes_.row(c);
            for (std::size_t d = 0; d < x.cols(); ++d) {
                sum += axis[d] * (src[d] - mean_[d]);
            }
            dst[c] = sum;
        }
    }
    return out;
}

double
Pca::explainedVariance() const
{
    if (total_variance_ <= 0.0) {
        return 0.0;
    }
    double kept = 0.0;
    for (double ev : eigenvalues_) {
        kept += std::max(0.0, ev);
    }
    return kept / total_variance_;
}

} // namespace kodan::ml
