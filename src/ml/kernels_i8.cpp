/**
 * @file
 * Int8 x int8 -> int32 GEMM/GEMV kernels with a fused requantizing
 * bias+ReLU epilogue — the integer substrate under QuantizedMlp.
 *
 * This TU gets the same compile-option treatment as kernels.cpp
 * (-O3 -funroll-loops, plus -march=native under -DKODAN_NATIVE=ON).
 *
 * Layout strategy (x86-64): the classic pair-interleaved int16
 * multiply-add microkernel. Weights are packed (once, via PackedI8,
 * or per call from raw operands) into rows indexed by PAIRS of
 * reduction indices, with each output channel contributing an
 * adjacent (W[j][2h], W[j][2h+1]) int16 pair; each A row is packed
 * into broadcastable int32 pair lanes. One pmaddwd then advances four
 * (SSE2) or eight (AVX2) output channels by two reduction steps —
 * accumulators stay vertical in vector registers for the whole
 * reduction, so there are NO horizontal reductions and no padding
 * waste beyond rounding k up to even (autovectorized dot-product
 * forms lost half their throughput to exactly those two costs). A is
 * walked two rows at a time so every packed weight row feeds two
 * accumulator sets per load. Non-x86 targets fall back to a portable
 * form of the same layout that the autovectorizer handles adequately.
 *
 * Nothing here depends on evaluation order, padding, tiling, or ISA
 * for the bits: pmaddwd on int8-range values is exact (no saturation
 * below |32767|), integer addition is exactly associative, and pads
 * contribute zero products — so SSE2, AVX2, portable, and naive paths
 * are bit-identical BY CONSTRUCTION at any KODAN_THREADS, any batch
 * split, and any blocking; the property tests pin it anyway. The
 * int32 accumulators must not overflow (see kernels.hpp; asserted
 * here).
 */

#include "ml/kernels.hpp"

#include <cassert>
#include <cstring>

#include "telemetry/telemetry.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define KODAN_I8_SIMD 1
#include <emmintrin.h>
#ifdef __AVX2__
#include <immintrin.h>
#endif
#endif

#if defined(__GNUC__) || defined(__clang__)
#define KODAN_RESTRICT __restrict__
#else
#define KODAN_RESTRICT
#endif

namespace kodan::ml::kernels {

namespace {

/** Largest reduction length whose accumulator cannot overflow int32
 *  given the 2^30 bias headroom (see kernels.hpp). */
constexpr std::size_t kMaxK =
    ((std::size_t{1} << 31) - (std::size_t{1} << 30)) / (127 * 127);

/** Output channels advance in vector tiles of this width; the packed
 *  weight rows and the accumulator rows are zero-padded to it. */
constexpr std::size_t kTileN = 16;

/** Pack one A row into broadcastable int16-pair lanes. */
inline void
packARow(const std::int8_t *a_row, std::size_t k, std::size_t k_half,
         std::int32_t *a_pairs)
{
    for (std::size_t h = 0; h + 1 < k_half; ++h) {
        const std::uint16_t lo = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(a_row[2 * h]));
        const std::uint16_t hi = static_cast<std::uint16_t>(
            static_cast<std::int16_t>(a_row[2 * h + 1]));
        a_pairs[h] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(lo) |
            (static_cast<std::uint32_t>(hi) << 16));
    }
    // Last pair: the second lane is zero when k is odd.
    const std::size_t h = k_half - 1;
    const std::uint16_t lo = static_cast<std::uint16_t>(
        static_cast<std::int16_t>(a_row[2 * h]));
    const std::uint16_t hi =
        2 * h + 1 < k ? static_cast<std::uint16_t>(
                            static_cast<std::int16_t>(a_row[2 * h + 1]))
                      : 0;
    a_pairs[h] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(lo) |
        (static_cast<std::uint32_t>(hi) << 16));
}

#ifdef KODAN_I8_SIMD

#ifdef __AVX2__

/** One packed A row x packed weights -> acc[0, n_pad). */
void
simdRow1(const PackedI8 &pw, const std::int32_t *a_pairs,
         std::int32_t *acc)
{
    const std::size_t stride = 2 * pw.n_pad;
    for (std::size_t jt = 0; jt < pw.n_pad; jt += kTileN) {
        __m256i acc0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pw.bias_pad.data() + jt));
        __m256i acc1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                pw.bias_pad.data() + jt + 8));
        const std::int16_t *w = pw.wpack.data() + 2 * jt;
        for (std::size_t h = 0; h < pw.k_half; ++h) {
            const __m256i ap = _mm256_set1_epi32(a_pairs[h]);
            const std::int16_t *w_row = w + h * stride;
            acc0 = _mm256_add_epi32(
                acc0,
                _mm256_madd_epi16(
                    ap, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(w_row))));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(
                          ap, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i *>(
                                      w_row + 16))));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + jt), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + jt + 8),
                            acc1);
    }
}

/** Two packed A rows x packed weights -> acc rows 0 and n_pad; each
 *  weight load feeds both rows' accumulator chains. */
void
simdRow2(const PackedI8 &pw, const std::int32_t *a_pairs,
         std::int32_t *acc)
{
    const std::size_t stride = 2 * pw.n_pad;
    const std::int32_t *a1 = a_pairs + pw.k_half;
    for (std::size_t jt = 0; jt < pw.n_pad; jt += kTileN) {
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pw.bias_pad.data() + jt));
        const __m256i b1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                pw.bias_pad.data() + jt + 8));
        __m256i r0c0 = b0;
        __m256i r0c1 = b1;
        __m256i r1c0 = b0;
        __m256i r1c1 = b1;
        const std::int16_t *w = pw.wpack.data() + 2 * jt;
        for (std::size_t h = 0; h < pw.k_half; ++h) {
            const std::int16_t *w_row = w + h * stride;
            const __m256i w0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w_row));
            const __m256i w1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w_row + 16));
            const __m256i ap0 = _mm256_set1_epi32(a_pairs[h]);
            const __m256i ap1 = _mm256_set1_epi32(a1[h]);
            r0c0 = _mm256_add_epi32(r0c0, _mm256_madd_epi16(ap0, w0));
            r0c1 = _mm256_add_epi32(r0c1, _mm256_madd_epi16(ap0, w1));
            r1c0 = _mm256_add_epi32(r1c0, _mm256_madd_epi16(ap1, w0));
            r1c1 = _mm256_add_epi32(r1c1, _mm256_madd_epi16(ap1, w1));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + jt), r0c0);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + jt + 8),
                            r0c1);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + pw.n_pad + jt), r1c0);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(acc + pw.n_pad + jt + 8), r1c1);
    }
}

#else // SSE2

void
simdRow1(const PackedI8 &pw, const std::int32_t *a_pairs,
         std::int32_t *acc)
{
    const std::size_t stride = 2 * pw.n_pad;
    for (std::size_t jt = 0; jt < pw.n_pad; jt += kTileN) {
        __m128i acc0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(pw.bias_pad.data() + jt));
        __m128i acc1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
            pw.bias_pad.data() + jt + 4));
        __m128i acc2 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
            pw.bias_pad.data() + jt + 8));
        __m128i acc3 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
            pw.bias_pad.data() + jt + 12));
        const std::int16_t *w = pw.wpack.data() + 2 * jt;
        for (std::size_t h = 0; h < pw.k_half; ++h) {
            const __m128i ap = _mm_set1_epi32(a_pairs[h]);
            const std::int16_t *w_row = w + h * stride;
            acc0 = _mm_add_epi32(
                acc0,
                _mm_madd_epi16(
                    ap, _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(w_row))));
            acc1 = _mm_add_epi32(
                acc1, _mm_madd_epi16(
                          ap, _mm_loadu_si128(
                                  reinterpret_cast<const __m128i *>(
                                      w_row + 8))));
            acc2 = _mm_add_epi32(
                acc2, _mm_madd_epi16(
                          ap, _mm_loadu_si128(
                                  reinterpret_cast<const __m128i *>(
                                      w_row + 16))));
            acc3 = _mm_add_epi32(
                acc3, _mm_madd_epi16(
                          ap, _mm_loadu_si128(
                                  reinterpret_cast<const __m128i *>(
                                      w_row + 24))));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + jt), acc0);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + jt + 4), acc1);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + jt + 8), acc2);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + jt + 12),
                         acc3);
    }
}

/** SSE2 advances 8 channels per row pair (8 accumulators + 2 weight
 *  vectors + 2 broadcasts stays within the 16 xmm registers). */
void
simdRow2(const PackedI8 &pw, const std::int32_t *a_pairs,
         std::int32_t *acc)
{
    const std::size_t stride = 2 * pw.n_pad;
    const std::int32_t *a1 = a_pairs + pw.k_half;
    for (std::size_t jt = 0; jt < pw.n_pad; jt += 8) {
        const __m128i b0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(pw.bias_pad.data() + jt));
        const __m128i b1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                pw.bias_pad.data() + jt + 4));
        __m128i r0c0 = b0;
        __m128i r0c1 = b1;
        __m128i r1c0 = b0;
        __m128i r1c1 = b1;
        const std::int16_t *w = pw.wpack.data() + 2 * jt;
        for (std::size_t h = 0; h < pw.k_half; ++h) {
            const std::int16_t *w_row = w + h * stride;
            const __m128i w0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w_row));
            const __m128i w1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w_row + 8));
            const __m128i ap0 = _mm_set1_epi32(a_pairs[h]);
            const __m128i ap1 = _mm_set1_epi32(a1[h]);
            r0c0 = _mm_add_epi32(r0c0, _mm_madd_epi16(ap0, w0));
            r0c1 = _mm_add_epi32(r0c1, _mm_madd_epi16(ap0, w1));
            r1c0 = _mm_add_epi32(r1c0, _mm_madd_epi16(ap1, w0));
            r1c1 = _mm_add_epi32(r1c1, _mm_madd_epi16(ap1, w1));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + jt), r0c0);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + jt + 4),
                         r0c1);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(acc + pw.n_pad + jt), r1c0);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(acc + pw.n_pad + jt + 4), r1c1);
    }
}

#endif // __AVX2__

#else // !KODAN_I8_SIMD

/** Portable fallback: the same packed pair layout evaluated with
 *  scalar pair multiply-adds the autovectorizer can widen. */
void
simdRow1(const PackedI8 &pw, const std::int32_t *a_pairs,
         std::int32_t *acc)
{
    const std::size_t stride = 2 * pw.n_pad;
    std::memcpy(acc, pw.bias_pad.data(), pw.n_pad * sizeof(std::int32_t));
    for (std::size_t h = 0; h < pw.k_half; ++h) {
        const std::int32_t pair = a_pairs[h];
        const auto a0 = static_cast<std::int32_t>(
            static_cast<std::int16_t>(pair & 0xffff));
        const auto a1 = static_cast<std::int32_t>(
            static_cast<std::int16_t>(static_cast<std::uint32_t>(pair) >>
                                      16));
        const std::int16_t *w_row = pw.wpack.data() + h * stride;
        for (std::size_t j = 0; j < pw.n_pad; ++j) {
            acc[j] += a0 * w_row[2 * j] + a1 * w_row[2 * j + 1];
        }
    }
}

void
simdRow2(const PackedI8 &pw, const std::int32_t *a_pairs,
         std::int32_t *acc)
{
    simdRow1(pw, a_pairs, acc);
    simdRow1(pw, a_pairs + pw.k_half, acc + pw.n_pad);
}

#endif // KODAN_I8_SIMD

/**
 * Blocked driver over a packed weight operand: per pair of A rows run
 * the microkernel and hand each finished accumulator row to @p epi
 * (storing int32 or requantizing to int8 — inlined either way).
 */
template <typename Epi>
void
runPacked(std::size_t m, const PackedI8 &pw, const std::int8_t *a,
          Epi &&epi)
{
    Scratch::Frame frame(scratch());
    auto *a_pairs = scratch().allocArray<std::int32_t>(2 * pw.k_half, 64);
    auto *acc = scratch().allocArray<std::int32_t>(2 * pw.n_pad, 64);
    std::size_t i = 0;
    for (; i + 1 < m; i += 2) {
        packARow(a + i * pw.k, pw.k, pw.k_half, a_pairs);
        packARow(a + (i + 1) * pw.k, pw.k, pw.k_half,
                 a_pairs + pw.k_half);
        simdRow2(pw, a_pairs, acc);
        epi(i, acc);
        epi(i + 1, acc + pw.n_pad);
    }
    if (i < m) {
        packARow(a + i * pw.k, pw.k, pw.k_half, a_pairs);
        simdRow1(pw, a_pairs, acc);
        epi(i, acc);
    }
}

/** The scalar reference loops (Backend::Naive oracle). Unsigned
 *  accumulation keeps even out-of-contract shapes UB-free. */
void
gemmI8Naive(std::size_t m, std::size_t k, std::size_t n,
            const std::int8_t *a, const std::int8_t *w,
            const std::int32_t *bias, std::int32_t *c)
{
    for (std::size_t i = 0; i < m; ++i) {
        const std::int8_t *a_row = a + i * k;
        std::int32_t *c_row = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const std::int8_t *w_row = w + j * k;
            std::uint32_t z =
                static_cast<std::uint32_t>(bias != nullptr ? bias[j] : 0);
            for (std::size_t p = 0; p < k; ++p) {
                z += static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(a_row[p]) *
                    static_cast<std::int32_t>(w_row[p]));
            }
            c_row[j] = static_cast<std::int32_t>(z);
        }
    }
}

/**
 * Requantizing store epilogue. The per-channel constants are expanded
 * once per GEMM call into int64 lanes (multiplier, rounding half,
 * shift) so the row loop carries no unpacking, and the [lo, 127]
 * clamp is applied straight to the 64-bit value — identical result to
 * requantize() + saturateI8(), as the int32 saturation bounds are
 * strictly outside [-127, 127]. Channels whose scale is degenerate
 * (shift outside [1, 62] — never produced by real calibrations) drop
 * the whole call to the generic per-element path.
 *
 * The row loop stays branch-free: the sign of each product is a coin
 * flip on real activations, and a mispredicting branch there dominates
 * the whole epilogue. Locals are hoisted out of `this` because the
 * int8 stores are signed char and would otherwise force the compiler
 * to reload every member each iteration. Under AVX2 the loop runs four
 * channels per step on vpmuldq/vpsrlvq with a 64-bit compare-blend
 * clamp — every step exact, so the bits match the scalar form.
 */
class RequantStore
{
  public:
    /** Allocates lane constants from the CALLER's scratch frame. */
    RequantStore(std::size_t n, const Requant *rq, bool relu,
                 std::int8_t *c)
        : n_(n), rq_(rq), c_(c), lo_(relu ? 0 : -127)
    {
        fast_ = true;
        for (std::size_t j = 0; j < n; ++j) {
            if (rq[j].shift < 1 || rq[j].shift > 62) {
                fast_ = false; // degenerate scale: generic requantize()
                return;
            }
        }
        mult_ = scratch().allocArray<std::int64_t>(n, 64);
        half_ = scratch().allocArray<std::int64_t>(n, 64);
        shift_ = scratch().allocArray<std::int64_t>(n, 64);
        for (std::size_t j = 0; j < n; ++j) {
            mult_[j] = rq[j].multiplier;
            half_[j] = std::int64_t{1} << (rq[j].shift - 1);
            shift_[j] = rq[j].shift;
        }
    }

    void operator()(std::size_t row,
                    const std::int32_t *KODAN_RESTRICT acc) const
    {
        const std::size_t n = n_;
        std::int8_t *KODAN_RESTRICT c_row = c_ + row * n;
        if (!fast_) {
            const Requant *KODAN_RESTRICT rq = rq_;
            const auto lo = static_cast<std::int32_t>(lo_);
            for (std::size_t j = 0; j < n; ++j) {
                c_row[j] = saturateI8(requantize(acc[j], rq[j]), lo);
            }
            return;
        }
        const std::int64_t *KODAN_RESTRICT mult = mult_;
        const std::int64_t *KODAN_RESTRICT half = half_;
        const std::int64_t *KODAN_RESTRICT shift = shift_;
        const std::int64_t lo = lo_;
        std::size_t j = 0;
#if defined(KODAN_I8_SIMD) && defined(__AVX2__)
        const __m256i vhi = _mm256_set1_epi64x(127);
        const __m256i vzero = _mm256_setzero_si256();
        const bool relu = lo == 0;
        for (; j + 4 <= n; j += 4) {
            // Sign-extend 4 accumulators into 64-bit lanes; vpmuldq
            // reads (and sign-extends) the low 32 bits of each lane,
            // so the products are the exact 64-bit acc * multiplier.
            const __m256i acc64 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(acc + j)));
            const __m256i prod = _mm256_mul_epi32(
                acc64, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i *>(mult + j)));
            const __m256i sign = _mm256_cmpgt_epi64(vzero, prod);
            const __m256i mag = _mm256_sub_epi64(
                _mm256_xor_si256(prod, sign), sign);
            // mag + half is non-negative, so the logical variable
            // shift IS the arithmetic one.
            const __m256i shifted = _mm256_srlv_epi64(
                _mm256_add_epi64(
                    mag, _mm256_loadu_si256(
                             reinterpret_cast<const __m256i *>(half + j))),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(shift + j)));
            // Clamp the magnitude to 127 (AVX2 has no 64-bit min), then
            // apply the sign in clamped space: both saturation bounds
            // are symmetric in magnitude — ReLU (lo = 0) zeroes the
            // negative lanes outright, the plain store restores their
            // sign — so the magnitude-domain clamp is exact.
            const __m256i cmag = _mm256_blendv_epi8(
                shifted, vhi, _mm256_cmpgt_epi64(shifted, vhi));
            const __m256i v =
                relu ? _mm256_andnot_si256(sign, cmag)
                     : _mm256_sub_epi64(_mm256_xor_si256(cmag, sign),
                                        sign);
            const __m128i v32 = _mm_castps_si128(_mm_shuffle_ps(
                _mm_castsi128_ps(_mm256_castsi256_si128(v)),
                _mm_castsi128_ps(_mm256_extracti128_si256(v, 1)),
                _MM_SHUFFLE(2, 0, 2, 0)));
            const __m128i v8 =
                _mm_packs_epi16(_mm_packs_epi32(v32, v32), v32);
            std::memcpy(c_row + j, &v8, 4);
        }
#endif
        for (; j < n; ++j) {
            const std::int64_t prod =
                static_cast<std::int64_t>(acc[j]) * mult[j];
            // Round-half-away-from-zero in one arithmetic shift:
            // positives bias by half, negatives by half-1 (the sign
            // bit), which reproduces the magnitude formula for every
            // value including exact .5 ties.
            std::int64_t v =
                (prod + half[j] -
                 static_cast<std::int64_t>(
                     static_cast<std::uint64_t>(prod) >> 63)) >>
                shift[j];
            v = v < lo ? lo : v;
            v = v > 127 ? 127 : v;
            c_row[j] = static_cast<std::int8_t>(v);
        }
    }

  private:
    std::size_t n_;
    const Requant *rq_;
    std::int8_t *c_;
    std::int64_t lo_;
    std::int64_t *mult_ = nullptr;
    std::int64_t *half_ = nullptr;
    std::int64_t *shift_ = nullptr;
    bool fast_;
};

} // namespace

PackedI8::PackedI8(std::size_t n_arg, std::size_t k_arg,
                   const std::int8_t *w, const std::int32_t *bias)
    : k(k_arg), n(n_arg), k_half((k_arg + 1) / 2),
      n_pad((n_arg + kTileN - 1) / kTileN * kTileN)
{
    assert(k >= 1 && k <= kMaxK);
    wpack.assign(k_half * 2 * n_pad, 0);
    for (std::size_t j = 0; j < n; ++j) {
        const std::int8_t *w_row = w + j * k;
        for (std::size_t h = 0; h < k_half; ++h) {
            std::int16_t *dst = wpack.data() + h * 2 * n_pad + 2 * j;
            dst[0] = w_row[2 * h];
            dst[1] = 2 * h + 1 < k ? w_row[2 * h + 1] : 0;
        }
    }
    bias_pad.assign(n_pad, 0);
    if (bias != nullptr) {
        std::memcpy(bias_pad.data(), bias, n * sizeof(std::int32_t));
    }
}

void
gemmI8(std::size_t m, const PackedI8 &w, const std::int8_t *a,
       std::int32_t *c)
{
    // Shared stage-attribution row with gemmI8Requant, mirroring how
    // the double path funnels both backends into "ml.kernels.gemm" —
    // one span in `kodan-report profile diff` covers the whole
    // quantized matmul substrate.
    KODAN_TRACE_SCOPE("ml.kernels.gemm_i8");
    if (m == 0 || w.n == 0) {
        return;
    }
    const std::size_t n = w.n;
    runPacked(m, w, a, [c, n](std::size_t row, const std::int32_t *acc) {
        std::memcpy(c + row * n, acc, n * sizeof(std::int32_t));
    });
}

void
gemmI8(std::size_t m, std::size_t k, std::size_t n, const std::int8_t *a,
       const std::int8_t *w, const std::int32_t *bias, std::int32_t *c)
{
    assert(k >= 1 && k <= kMaxK);
    if (m == 0 || n == 0) {
        return;
    }
    if (backend() == Backend::Naive) {
        KODAN_TRACE_SCOPE("ml.kernels.gemm_i8");
        gemmI8Naive(m, k, n, a, w, bias, c);
        return;
    }
    gemmI8(m, PackedI8(n, k, w, bias), a, c);
}

void
gemmI8Requant(std::size_t m, const PackedI8 &w, const std::int8_t *a,
              const Requant *rq, bool relu, std::int8_t *c)
{
    KODAN_TRACE_SCOPE("ml.kernels.gemm_i8");
    if (m == 0 || w.n == 0) {
        return;
    }
    // The per-channel fixed-point rescale and the ReLU clamp are one
    // fused pass over the finished accumulators — the quantized-domain
    // activation IS the clamp. The frame reclaims the store's lane
    // constants.
    Scratch::Frame frame(scratch());
    const RequantStore store(w.n, rq, relu, c);
    runPacked(m, w, a, store);
}

void
gemmI8Requant(std::size_t m, std::size_t k, std::size_t n,
              const std::int8_t *a, const std::int8_t *w,
              const std::int32_t *bias, const Requant *rq, bool relu,
              std::int8_t *c)
{
    assert(k >= 1 && k <= kMaxK);
    if (m == 0 || n == 0) {
        return;
    }
    if (backend() == Backend::Naive) {
        KODAN_TRACE_SCOPE("ml.kernels.gemm_i8");
        Scratch::Frame frame(scratch());
        auto *acc = scratch().allocArray<std::int32_t>(n);
        const RequantStore store(n, rq, relu, c);
        for (std::size_t i = 0; i < m; ++i) {
            gemmI8Naive(1, k, n, a + i * k, w, bias, acc);
            store(i, acc);
        }
        return;
    }
    gemmI8Requant(m, PackedI8(n, k, w, bias), a, rq, relu, c);
}

void
gemvI8(const PackedI8 &w, const std::int8_t *x, std::int32_t *y)
{
    if (w.n == 0) {
        return;
    }
    const std::size_t rows = w.n;
    // Single sample == one-row gemm: same packed layout, same bits.
    runPacked(1, w, x, [y, rows](std::size_t, const std::int32_t *acc) {
        std::memcpy(y, acc, rows * sizeof(std::int32_t));
    });
}

void
gemvI8(std::size_t rows, std::size_t cols, const std::int8_t *w,
       const std::int8_t *x, const std::int32_t *bias, std::int32_t *y)
{
    assert(cols >= 1 && cols <= kMaxK);
    if (rows == 0) {
        return;
    }
    if (backend() == Backend::Naive) {
        gemmI8Naive(1, cols, rows, x, w, bias, y);
        return;
    }
    gemvI8(PackedI8(rows, cols, w, bias), x, y);
}

} // namespace kodan::ml::kernels
