/**
 * @file
 * Deterministic compute-kernel layer for the ML substrate.
 *
 * Every kernel here keeps a FIXED summation order: each output element
 * accumulates its products in ascending reduction index with a single
 * sequential accumulator chain, exactly the order of the scalar
 * reference loops it replaces. The speedup comes from cache blocking,
 * 4x unrolling over the reduction index (which turns one streaming pass
 * into four fused ones, vectorizable across the output index), and the
 * elimination of per-call heap allocation — never from reassociation.
 * Results are therefore bit-identical to the naive loops, at any
 * KODAN_THREADS, and invariant to how callers compose batches.
 *
 * The naive code paths stay in-tree (Backend::Naive) as the oracle the
 * equivalence tests and bench_ml_kernels compare against.
 */

#ifndef KODAN_ML_KERNELS_HPP
#define KODAN_ML_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace kodan::ml::kernels {

/** Which implementation the ML substrate dispatches to. */
enum class Backend
{
    /** The original scalar reference loops (the oracle). */
    Naive,
    /** Cache-blocked, unrolled, allocation-free kernels (default). */
    Blocked,
};

/**
 * Active backend. Defaults to Blocked; the KODAN_ML_KERNELS environment
 * variable ("naive" or "blocked") overrides the default, and
 * setBackend() overrides both.
 */
Backend backend();

/** Override the active backend (process-wide). */
void setBackend(Backend b);

/**
 * Per-thread bump arena for kernel workspaces.
 *
 * Chunks are never reallocated once handed out, so pointers stay valid
 * until the frame that produced them unwinds. Typical use:
 *
 *   Scratch::Frame frame(scratch());
 *   double *buf = scratch().alloc(n);
 *   ... // buf dies with `frame`
 *
 * Frames nest; allocation is O(1) after warmup (no heap traffic once
 * the high-water chunks exist).
 */
class Scratch
{
  public:
    /** RAII marker: restores the arena position on destruction. */
    class Frame
    {
      public:
        explicit Frame(Scratch &arena)
            : arena_(arena), chunk_(arena.chunk_), used_(arena.used_)
        {
        }
        ~Frame()
        {
            arena_.chunk_ = chunk_;
            arena_.used_ = used_;
        }
        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

      private:
        Scratch &arena_;
        std::size_t chunk_;
        std::size_t used_;
    };

    /** Uninitialized workspace of @p count doubles. */
    double *alloc(std::size_t count);

    /** Zero-initialized workspace of @p count doubles. */
    double *allocZeroed(std::size_t count);

    /**
     * Uninitialized raw workspace of @p bytes bytes whose address is a
     * multiple of @p align (a power of two). Shares the double-chunk
     * arena with alloc(): the byte region is carved out of the active
     * chunk and consumed in whole doubles, so frames, reuse, and the
     * O(1)-after-warmup guarantee all behave identically. This is the
     * allocator the int8 inference path uses for its int8 activation
     * and int32 accumulator workspaces.
     */
    void *allocBytes(std::size_t bytes, std::size_t align);

    /** Typed convenience over allocBytes: @p count elements of T. */
    template <typename T>
    T *allocArray(std::size_t count, std::size_t align = alignof(T))
    {
        return static_cast<T *>(allocBytes(count * sizeof(T), align));
    }

    /** Number of chunks ever allocated (diagnostics). */
    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<double[]> data;
        std::size_t capacity = 0;
    };

    /** Minimum chunk size in doubles (128 KiB). */
    static constexpr std::size_t kMinChunk = std::size_t{1} << 14;

    std::vector<Chunk> chunks_;
    std::size_t chunk_ = 0; // active chunk index
    std::size_t used_ = 0;  // doubles consumed in the active chunk
};

/** The calling thread's scratch arena. */
Scratch &scratch();

/**
 * Element-wise transform fused into gemm's final store. Fusing saves a
 * full read+write pass over C — significant when C is a large batch
 * activation matrix — and cannot change bits: the transform is applied
 * to exactly the finished accumulator value a separate pass would have
 * loaded back.
 */
enum class Epilogue
{
    None,
    /** c = max(0.0, c) — the hidden-layer activation. */
    Relu,
};

/**
 * C = A * B (+ bias), dense row-major.
 *
 * A is m x k, B is k x n, C is m x n. When @p bias is non-null it holds
 * n values and seeds every row of C; otherwise C starts at zero. Each C
 * element is bias[j] + sum over ascending p of A[i,p] * B[p,j],
 * accumulated in exactly that order — bit-identical to the scalar
 * matvec `z = bias; for p: z += a[p] * b[p]` — with @p epilogue applied
 * to the finished value.
 */
void gemm(std::size_t m, std::size_t k, std::size_t n, const double *a,
          const double *b, double *c, const double *bias = nullptr,
          Epilogue epilogue = Epilogue::None);

/**
 * y = W * x (+ bias) for one sample: W is rows x cols row-major, x has
 * cols values, y gets rows values. Same fixed ascending-index order as
 * gemm.
 */
void gemv(std::size_t rows, std::size_t cols, const double *w,
          const double *x, const double *bias, double *y);

/** out = a^T for row-major a (rows x cols); out is cols x rows. */
void transpose(std::size_t rows, std::size_t cols, const double *a,
               double *out);

/**
 * out[i] = squared L2 norm of row i of x (rows x dim), accumulated in
 * ascending dimension order.
 */
void rowSquaredNorms(std::size_t rows, std::size_t dim, const double *x,
                     double *out);

/**
 * out[i,d] = (x[i,d] - mean[d]) / stddev[d] — the Standardizer's exact
 * per-element expression, batched.
 */
void standardizeRows(std::size_t rows, std::size_t dim, const double *x,
                     const double *mean, const double *stddev, double *out);

// ---------------------------------------------------------------------------
// Int8 quantized kernels — the QuantizedMlp substrate (kernels_i8.cpp).
//
// Products are int8 x int8 (each fits int16); accumulation is 32-bit.
// Integer addition is exactly associative, so ANY blocking, unrolling,
// split of the reduction, or zero-padding of it yields the same bits
// by construction — unlike the double kernels above, no fixed
// summation order is needed to keep the determinism contract. The
// blocked path exploits exactly that freedom: it packs the weight
// operand into int16 rows zero-padded to a vector multiple so the
// reduction compiles to widening multiply-accumulate idioms (pmaddwd
// and friends), which plain int8 loads would not.
//
// Precondition (asserted): 127*127*k + 2^30 must stay below 2^31,
// i.e. k <= ~66000 — the int32 accumulators must never overflow.
// Every shape in this codebase has k <= 64; the clamped bias seeds
// QuantizedMlp produces respect the 2^30 headroom.

/**
 * Fixed-point requantization parameters for one output channel.
 * Encodes a positive real scale f as multiplier * 2^-shift with
 * multiplier a Q31 mantissa: f = multiplier / 2^shift.
 */
struct Requant
{
    /** Q31 mantissa in [2^30, 2^31) (0 encodes "scale collapses to 0"). */
    std::int32_t multiplier = 0;
    /** Total right shift; 31 - exp2(scale). Negative means left shift. */
    std::int32_t shift = 0;
};

/** Encode a positive, finite real scale into Requant via frexp. */
Requant requantScale(double scale);

/**
 * Apply @p rq to an int32 accumulator: round-half-away-from-zero
 * fixed-point multiply, i.e. round(acc * multiplier * 2^-shift) with
 * ties breaking away from zero, saturated to int32. Inline so the
 * epilogue loops in kernels_i8.cpp flatten it.
 */
inline std::int32_t
requantize(std::int32_t acc, Requant rq)
{
    const std::int64_t prod =
        static_cast<std::int64_t>(acc) * rq.multiplier;
    const std::int32_t t = rq.shift;
    if (t > 62) {
        return 0; // |prod| < 2^62 always rounds to zero at this shift
    }
    std::int64_t v;
    if (t <= 0) {
        // Pathological scale >= 2^31: plain left shift, then saturate.
        const std::uint64_t mag =
            static_cast<std::uint64_t>(prod < 0 ? -prod : prod);
        if (-t >= 63 || (mag >> (62 + t)) != 0) {
            return prod < 0 ? std::numeric_limits<std::int32_t>::min()
                            : std::numeric_limits<std::int32_t>::max();
        }
        v = prod << -t;
    } else {
        // Branch-free round-half-away-from-zero: shift the magnitude,
        // restore the sign arithmetically. The sign of prod is data-
        // dependent (a coin flip on real activations), so a branch
        // here would mispredict half the time and dominate the whole
        // epilogue.
        const std::int64_t half = std::int64_t{1} << (t - 1);
        const std::int64_t sign = prod >> 63; // 0 or -1
        const std::int64_t mag = (prod ^ sign) - sign;
        v = (((mag + half) >> t) ^ sign) - sign;
    }
    if (v > std::numeric_limits<std::int32_t>::max()) {
        return std::numeric_limits<std::int32_t>::max();
    }
    if (v < std::numeric_limits<std::int32_t>::min()) {
        return std::numeric_limits<std::int32_t>::min();
    }
    return static_cast<std::int32_t>(v);
}

/**
 * Saturate an int32 to the symmetric int8 range [lo, 127]; @p lo is
 * -127 normally and 0 under the fused ReLU epilogue (the clamp IS the
 * activation in the quantized domain). -128 is never produced, keeping
 * the representable range symmetric about zero.
 */
inline std::int8_t
saturateI8(std::int32_t v, std::int32_t lo)
{
    const std::int32_t clamped = v < lo ? lo : (v > 127 ? 127 : v);
    return static_cast<std::int8_t>(clamped);
}

/**
 * Weight operand of the blocked int8 kernels, packed once and reused
 * across calls — the int8 analogue of Mlp's eagerly-refreshed
 * transposes. Rows are indexed by PAIRS of reduction indices with
 * each output channel contributing an adjacent int16 (W[j][2h],
 * W[j][2h+1]) pair, zero-padded to even k and a vector multiple of
 * channels, which is exactly the shape one pmaddwd consumes. Padding
 * cannot change bits (zero products) and packing per construction
 * instead of per call removes the dominant overhead on small layers.
 */
struct PackedI8
{
    PackedI8() = default;

    /**
     * Pack @p w (row-major n x k, output-channel major) and @p bias
     * (n int32 seeds, may be null).
     */
    PackedI8(std::size_t n, std::size_t k, const std::int8_t *w,
             const std::int32_t *bias);

    std::size_t k = 0;
    std::size_t n = 0;
    /** ceil(k / 2): reduction pairs per packed row. */
    std::size_t k_half = 0;
    /** n rounded up to the kernel's channel-tile width. */
    std::size_t n_pad = 0;
    /** k_half rows of 2 * n_pad int16 interleaved channel pairs. */
    std::vector<std::int16_t> wpack;
    /** n_pad int32 accumulator seeds (zeros beyond n / null bias). */
    std::vector<std::int32_t> bias_pad;
};

/**
 * C(int32) = A(int8) * W^T(int8) + bias.
 *
 * A is m x k row-major; @p w is the weight matrix in its natural
 * row-major n x k layout (output channel major — the SAME operand
 * gemvI8 takes, no transpose needed), so C[i,j] = bias[j] + dot of
 * A row i with W row j. C is m x n; @p bias (n int32 values) may be
 * null. Used for the final MLP layer, whose accumulators are
 * dequantized to double by the caller.
 */
void gemmI8(std::size_t m, std::size_t k, std::size_t n,
            const std::int8_t *a, const std::int8_t *w,
            const std::int32_t *bias, std::int32_t *c);

/**
 * Pre-packed variant of gemmI8: always the blocked path (no backend
 * dispatch — callers wanting the naive oracle hold the raw operands),
 * bit-identical to it and to the naive loops.
 */
void gemmI8(std::size_t m, const PackedI8 &w, const std::int8_t *a,
            std::int32_t *c);

/**
 * Fused hidden-layer step:
 * C(int8) = saturate(requantize(A*W^T + bias, rq[j]), relu ? 0 : -127).
 * The bias seeds the int32 accumulators (no separate bias pass) and the
 * ReLU rides the requantizing store as a clamp. Operand layout matches
 * gemmI8; @p rq holds n per-output-channel entries.
 */
void gemmI8Requant(std::size_t m, std::size_t k, std::size_t n,
                   const std::int8_t *a, const std::int8_t *w,
                   const std::int32_t *bias, const Requant *rq, bool relu,
                   std::int8_t *c);

/** Pre-packed variant of gemmI8Requant (always the blocked path). */
void gemmI8Requant(std::size_t m, const PackedI8 &w,
                   const std::int8_t *a, const Requant *rq, bool relu,
                   std::int8_t *c);

/**
 * y(int32) = W(int8) * x(int8) + bias for one sample: W is rows x cols
 * row-major, x has cols values, y gets rows values. Bit-identical to a
 * one-row gemmI8 by integer associativity.
 */
void gemvI8(std::size_t rows, std::size_t cols, const std::int8_t *w,
            const std::int8_t *x, const std::int32_t *bias,
            std::int32_t *y);

/** Pre-packed variant of gemvI8 (always the blocked path). */
void gemvI8(const PackedI8 &w, const std::int8_t *x, std::int32_t *y);

} // namespace kodan::ml::kernels

#endif // KODAN_ML_KERNELS_HPP
