/**
 * @file
 * Deterministic compute-kernel layer for the ML substrate.
 *
 * Every kernel here keeps a FIXED summation order: each output element
 * accumulates its products in ascending reduction index with a single
 * sequential accumulator chain, exactly the order of the scalar
 * reference loops it replaces. The speedup comes from cache blocking,
 * 4x unrolling over the reduction index (which turns one streaming pass
 * into four fused ones, vectorizable across the output index), and the
 * elimination of per-call heap allocation — never from reassociation.
 * Results are therefore bit-identical to the naive loops, at any
 * KODAN_THREADS, and invariant to how callers compose batches.
 *
 * The naive code paths stay in-tree (Backend::Naive) as the oracle the
 * equivalence tests and bench_ml_kernels compare against.
 */

#ifndef KODAN_ML_KERNELS_HPP
#define KODAN_ML_KERNELS_HPP

#include <cstddef>
#include <memory>
#include <vector>

namespace kodan::ml::kernels {

/** Which implementation the ML substrate dispatches to. */
enum class Backend
{
    /** The original scalar reference loops (the oracle). */
    Naive,
    /** Cache-blocked, unrolled, allocation-free kernels (default). */
    Blocked,
};

/**
 * Active backend. Defaults to Blocked; the KODAN_ML_KERNELS environment
 * variable ("naive" or "blocked") overrides the default, and
 * setBackend() overrides both.
 */
Backend backend();

/** Override the active backend (process-wide). */
void setBackend(Backend b);

/**
 * Per-thread bump arena for kernel workspaces.
 *
 * Chunks are never reallocated once handed out, so pointers stay valid
 * until the frame that produced them unwinds. Typical use:
 *
 *   Scratch::Frame frame(scratch());
 *   double *buf = scratch().alloc(n);
 *   ... // buf dies with `frame`
 *
 * Frames nest; allocation is O(1) after warmup (no heap traffic once
 * the high-water chunks exist).
 */
class Scratch
{
  public:
    /** RAII marker: restores the arena position on destruction. */
    class Frame
    {
      public:
        explicit Frame(Scratch &arena)
            : arena_(arena), chunk_(arena.chunk_), used_(arena.used_)
        {
        }
        ~Frame()
        {
            arena_.chunk_ = chunk_;
            arena_.used_ = used_;
        }
        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

      private:
        Scratch &arena_;
        std::size_t chunk_;
        std::size_t used_;
    };

    /** Uninitialized workspace of @p count doubles. */
    double *alloc(std::size_t count);

    /** Zero-initialized workspace of @p count doubles. */
    double *allocZeroed(std::size_t count);

    /** Number of chunks ever allocated (diagnostics). */
    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::unique_ptr<double[]> data;
        std::size_t capacity = 0;
    };

    /** Minimum chunk size in doubles (128 KiB). */
    static constexpr std::size_t kMinChunk = std::size_t{1} << 14;

    std::vector<Chunk> chunks_;
    std::size_t chunk_ = 0; // active chunk index
    std::size_t used_ = 0;  // doubles consumed in the active chunk
};

/** The calling thread's scratch arena. */
Scratch &scratch();

/**
 * Element-wise transform fused into gemm's final store. Fusing saves a
 * full read+write pass over C — significant when C is a large batch
 * activation matrix — and cannot change bits: the transform is applied
 * to exactly the finished accumulator value a separate pass would have
 * loaded back.
 */
enum class Epilogue
{
    None,
    /** c = max(0.0, c) — the hidden-layer activation. */
    Relu,
};

/**
 * C = A * B (+ bias), dense row-major.
 *
 * A is m x k, B is k x n, C is m x n. When @p bias is non-null it holds
 * n values and seeds every row of C; otherwise C starts at zero. Each C
 * element is bias[j] + sum over ascending p of A[i,p] * B[p,j],
 * accumulated in exactly that order — bit-identical to the scalar
 * matvec `z = bias; for p: z += a[p] * b[p]` — with @p epilogue applied
 * to the finished value.
 */
void gemm(std::size_t m, std::size_t k, std::size_t n, const double *a,
          const double *b, double *c, const double *bias = nullptr,
          Epilogue epilogue = Epilogue::None);

/**
 * y = W * x (+ bias) for one sample: W is rows x cols row-major, x has
 * cols values, y gets rows values. Same fixed ascending-index order as
 * gemm.
 */
void gemv(std::size_t rows, std::size_t cols, const double *w,
          const double *x, const double *bias, double *y);

/** out = a^T for row-major a (rows x cols); out is cols x rows. */
void transpose(std::size_t rows, std::size_t cols, const double *a,
               double *out);

/**
 * out[i] = squared L2 norm of row i of x (rows x dim), accumulated in
 * ascending dimension order.
 */
void rowSquaredNorms(std::size_t rows, std::size_t dim, const double *x,
                     double *out);

/**
 * out[i,d] = (x[i,d] - mean[d]) / stddev[d] — the Standardizer's exact
 * per-element expression, batched.
 */
void standardizeRows(std::size_t rows, std::size_t dim, const double *x,
                     const double *mean, const double *stddev, double *out);

} // namespace kodan::ml::kernels

#endif // KODAN_ML_KERNELS_HPP
