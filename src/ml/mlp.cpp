#include "ml/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace kodan::ml {

namespace {

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

void
softmaxInPlace(std::vector<double> &z)
{
    const double peak = *std::max_element(z.begin(), z.end());
    double total = 0.0;
    for (auto &v : z) {
        v = std::exp(v - peak);
        total += v;
    }
    for (auto &v : z) {
        v /= total;
    }
}

/**
 * Raw-buffer activation helpers of the Blocked path. Element-for-element
 * the same expressions (and, for softmax, the same reduction order) as
 * the std::vector versions above, so both backends emit identical bits.
 */
void
reluRows(double *v, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        v[i] = std::max(0.0, v[i]);
    }
}

void
sigmoidRows(double *v, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        v[i] = sigmoid(v[i]);
    }
}

void
softmaxRow(double *v, std::size_t n)
{
    const double peak = *std::max_element(v, v + n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - peak);
        total += v[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        v[i] /= total;
    }
}

} // namespace

Mlp::Mlp(const MlpConfig &config, util::Rng &rng)
    : config_(config)
{
    assert(config.input_dim >= 1);
    assert(config.output_dim >= 1);

    std::vector<int> dims;
    dims.push_back(config.input_dim);
    for (int h : config.hidden) {
        assert(h >= 1);
        dims.push_back(h);
    }
    dims.push_back(config.output_dim);

    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        Layer layer;
        const int fan_in = dims[l];
        const int fan_out = dims[l + 1];
        layer.weights = Matrix(fan_out, fan_in);
        const double scale = std::sqrt(2.0 / fan_in);
        for (auto &w : layer.weights.data()) {
            w = rng.normal(0.0, scale);
        }
        layer.bias.assign(fan_out, 0.0);
        layer.m_w = Matrix(fan_out, fan_in);
        layer.v_w = Matrix(fan_out, fan_in);
        layer.m_b.assign(fan_out, 0.0);
        layer.v_b.assign(fan_out, 0.0);
        layers_.push_back(std::move(layer));
    }
    for (int d : dims) {
        max_width_ = std::max(max_width_, static_cast<std::size_t>(d));
    }
    refreshTransposes();
}

void
Mlp::refreshTransposes()
{
    for (auto &layer : layers_) {
        const std::size_t rows = layer.weights.rows();
        const std::size_t cols = layer.weights.cols();
        if (layer.weights_t.rows() != cols ||
            layer.weights_t.cols() != rows) {
            layer.weights_t = Matrix(cols, rows);
        }
        kernels::transpose(rows, cols, layer.weights.data().data(),
                           layer.weights_t.data().data());
    }
}

std::size_t
Mlp::parameterCount() const
{
    std::size_t count = 0;
    for (const auto &layer : layers_) {
        count += layer.weights.rows() * layer.weights.cols();
        count += layer.bias.size();
    }
    return count;
}

void
Mlp::forward(const double *x, double *out) const
{
    if (kernels::backend() == kernels::Backend::Naive) {
        forwardNaive(x, out);
    } else {
        forwardBlocked(x, out);
    }
}

void
Mlp::forwardNaive(const double *x, double *out) const
{
    std::vector<double> current(x, x + config_.input_dim);
    std::vector<double> next;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t fan_out = layer.weights.rows();
        const std::size_t fan_in = layer.weights.cols();
        next.assign(fan_out, 0.0);
        for (std::size_t o = 0; o < fan_out; ++o) {
            const double *w = layer.weights.row(o);
            double z = layer.bias[o];
            for (std::size_t i = 0; i < fan_in; ++i) {
                z += w[i] * current[i];
            }
            next[o] = z;
        }
        const bool last = l + 1 == layers_.size();
        if (!last) {
            for (auto &v : next) {
                v = std::max(0.0, v);
            }
        } else if (config_.output == OutputKind::Sigmoid) {
            for (auto &v : next) {
                v = sigmoid(v);
            }
        } else {
            softmaxInPlace(next);
        }
        current.swap(next);
    }
    std::copy(current.begin(), current.end(), out);
}

void
Mlp::forwardBlocked(const double *x, double *out) const
{
    kernels::Scratch::Frame frame(kernels::scratch());
    double *current = kernels::scratch().alloc(max_width_);
    double *next = kernels::scratch().alloc(max_width_);
    std::memcpy(current, x,
                static_cast<std::size_t>(config_.input_dim) *
                    sizeof(double));
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t fan_out = layer.weights.rows();
        const std::size_t fan_in = layer.weights.cols();
        kernels::gemv(fan_out, fan_in, layer.weights.data().data(),
                      current, layer.bias.data(), next);
        const bool last = l + 1 == layers_.size();
        if (!last) {
            reluRows(next, fan_out);
        } else if (config_.output == OutputKind::Sigmoid) {
            sigmoidRows(next, fan_out);
        } else {
            softmaxRow(next, fan_out);
        }
        std::swap(current, next);
    }
    std::memcpy(out, current,
                static_cast<std::size_t>(config_.output_dim) *
                    sizeof(double));
}

void
Mlp::forwardBatch(const double *x, std::size_t count, double *out) const
{
    const auto in_dim = static_cast<std::size_t>(config_.input_dim);
    const auto out_dim = static_cast<std::size_t>(config_.output_dim);
    if (count == 0) {
        return;
    }
    KODAN_TRACE_SCOPE("ml.mlp.forward_batch");
    KODAN_COUNT_ADD("ml.mlp.forward_batch.rows", count);
    if (kernels::backend() == kernels::Backend::Naive) {
        for (std::size_t r = 0; r < count; ++r) {
            forwardNaive(x + r * in_dim, out + r * out_dim);
        }
        return;
    }
    // Strip-mine the batch through the whole layer chain so the
    // intermediate activations stay cache-resident (strip x widest
    // layer) instead of streaming a full-batch activation matrix
    // through memory once per layer. Rows are independent, so the
    // per-row bits are unchanged by the strip size.
    constexpr std::size_t kStripRows = 512;
    for (std::size_t r0 = 0; r0 < count; r0 += kStripRows) {
        const std::size_t rows = std::min(kStripRows, count - r0);
        kernels::Scratch::Frame frame(kernels::scratch());
        const double *current = x + r0 * in_dim;
        for (std::size_t l = 0; l < layers_.size(); ++l) {
            const Layer &layer = layers_[l];
            const std::size_t fan_out = layer.weights.rows();
            const std::size_t fan_in = layer.weights.cols();
            const bool last = l + 1 == layers_.size();
            double *next = last
                               ? out + r0 * out_dim
                               : kernels::scratch().alloc(rows * fan_out);
            // Hidden-layer relu rides on the gemm's final store (same
            // finished value a separate pass would reload — bits
            // unchanged, one full pass over the activations saved).
            kernels::gemm(rows, fan_in, fan_out, current,
                          layer.weights_t.data().data(), next,
                          layer.bias.data(),
                          last ? kernels::Epilogue::None
                               : kernels::Epilogue::Relu);
            if (last) {
                if (config_.output == OutputKind::Sigmoid) {
                    sigmoidRows(next, rows * fan_out);
                } else {
                    for (std::size_t r = 0; r < rows; ++r) {
                        softmaxRow(next + r * fan_out, fan_out);
                    }
                }
            }
            current = next;
        }
    }
}

void
Mlp::forwardBatch(const Matrix &x, Matrix &out) const
{
    assert(static_cast<int>(x.cols()) == config_.input_dim);
    if (out.rows() != x.rows() ||
        out.cols() != static_cast<std::size_t>(config_.output_dim)) {
        out = Matrix(x.rows(),
                     static_cast<std::size_t>(config_.output_dim));
    }
    forwardBatch(x.data().data(), x.rows(), out.data().data());
}

double
Mlp::predictProb(const double *x) const
{
    assert(config_.output == OutputKind::Sigmoid && config_.output_dim == 1);
    double p = 0.0;
    forward(x, &p);
    return p;
}

int
Mlp::predictClass(const double *x) const
{
    if (kernels::backend() == kernels::Backend::Naive) {
        std::vector<double> probs(config_.output_dim);
        forward(x, probs.data());
        return static_cast<int>(
            std::max_element(probs.begin(), probs.end()) - probs.begin());
    }
    kernels::Scratch::Frame frame(kernels::scratch());
    double *probs = kernels::scratch().alloc(
        static_cast<std::size_t>(config_.output_dim));
    forward(x, probs);
    return static_cast<int>(
        std::max_element(probs, probs + config_.output_dim) - probs);
}

void
Mlp::forwardTraining(const double *x,
                     std::vector<std::vector<double>> &acts) const
{
    acts.resize(layers_.size() + 1);
    acts[0].assign(x, x + config_.input_dim);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t fan_out = layer.weights.rows();
        const std::size_t fan_in = layer.weights.cols();
        acts[l + 1].assign(fan_out, 0.0);
        for (std::size_t o = 0; o < fan_out; ++o) {
            const double *w = layer.weights.row(o);
            double z = layer.bias[o];
            for (std::size_t i = 0; i < fan_in; ++i) {
                z += w[i] * acts[l][i];
            }
            acts[l + 1][o] = z;
        }
        const bool last = l + 1 == layers_.size();
        if (!last) {
            for (auto &v : acts[l + 1]) {
                v = std::max(0.0, v);
            }
        } else if (config_.output == OutputKind::Sigmoid) {
            for (auto &v : acts[l + 1]) {
                v = sigmoid(v);
            }
        } else {
            softmaxInPlace(acts[l + 1]);
        }
    }
}

double
Mlp::train(const Matrix &x, const std::vector<double> &targets,
           const TrainOptions &options, util::Rng &rng)
{
    const std::size_t n = x.rows();
    assert(static_cast<int>(x.cols()) == config_.input_dim);
    const bool softmax = config_.output == OutputKind::Softmax;
    if (softmax) {
        assert(targets.size() == n);
    } else {
        assert(targets.size() ==
               n * static_cast<std::size_t>(config_.output_dim));
    }
    assert(options.batch_size >= 1);
    (void)n;

    if (kernels::backend() == kernels::Backend::Naive) {
        return trainNaive(x, targets, options, rng);
    }
    return trainBlocked(x, targets, options, rng);
}

double
Mlp::trainNaive(const Matrix &x, const std::vector<double> &targets,
                const TrainOptions &options, util::Rng &rng)
{
    const std::size_t n = x.rows();
    const bool softmax = config_.output == OutputKind::Softmax;

    // Per-layer gradient accumulators, reused across minibatches.
    std::vector<Matrix> grad_w;
    std::vector<std::vector<double>> grad_b;
    for (const auto &layer : layers_) {
        grad_w.emplace_back(layer.weights.rows(), layer.weights.cols());
        grad_b.emplace_back(layer.bias.size(), 0.0);
    }

    std::vector<std::vector<double>> acts;
    std::vector<double> delta;
    std::vector<double> delta_prev;
    double last_epoch_loss = 0.0;

    const double beta1 = 0.9;
    const double beta2 = 0.999;
    const double eps = 1.0e-8;

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        const auto order = rng.permutation(n);
        double epoch_loss = 0.0;
        std::size_t batch_start = 0;
        while (batch_start < n) {
            const std::size_t batch_end =
                std::min(n, batch_start + options.batch_size);
            const auto batch_n =
                static_cast<double>(batch_end - batch_start);
            for (auto &g : grad_w) {
                g.fill(0.0);
            }
            for (auto &g : grad_b) {
                std::fill(g.begin(), g.end(), 0.0);
            }

            for (std::size_t s = batch_start; s < batch_end; ++s) {
                const std::size_t idx = order[s];
                forwardTraining(x.row(idx), acts);
                const auto &out = acts.back();

                // Output delta: prob - target for both heads.
                delta.assign(out.size(), 0.0);
                if (softmax) {
                    const int cls = static_cast<int>(targets[idx]);
                    assert(cls >= 0 && cls < config_.output_dim);
                    for (std::size_t o = 0; o < out.size(); ++o) {
                        delta[o] = out[o] -
                                   (static_cast<int>(o) == cls ? 1.0 : 0.0);
                    }
                    epoch_loss += -std::log(std::max(1.0e-12, out[cls]));
                } else {
                    for (std::size_t o = 0; o < out.size(); ++o) {
                        const double target =
                            targets[idx * out.size() + o];
                        delta[o] = out[o] - target;
                        epoch_loss +=
                            -(target * std::log(std::max(1.0e-12, out[o])) +
                              (1.0 - target) *
                                  std::log(
                                      std::max(1.0e-12, 1.0 - out[o])));
                    }
                }

                // Backpropagate.
                for (std::size_t l = layers_.size(); l-- > 0;) {
                    const Layer &layer = layers_[l];
                    const auto &input = acts[l];
                    const std::size_t fan_out = layer.weights.rows();
                    const std::size_t fan_in = layer.weights.cols();
                    for (std::size_t o = 0; o < fan_out; ++o) {
                        const double d = delta[o];
                        if (d == 0.0) {
                            continue;
                        }
                        double *g_row = grad_w[l].row(o);
                        for (std::size_t i = 0; i < fan_in; ++i) {
                            g_row[i] += d * input[i];
                        }
                        grad_b[l][o] += d;
                    }
                    if (l == 0) {
                        break;
                    }
                    delta_prev.assign(fan_in, 0.0);
                    for (std::size_t o = 0; o < fan_out; ++o) {
                        const double d = delta[o];
                        if (d == 0.0) {
                            continue;
                        }
                        const double *w = layer.weights.row(o);
                        for (std::size_t i = 0; i < fan_in; ++i) {
                            delta_prev[i] += d * w[i];
                        }
                    }
                    // ReLU derivative of the previous layer's output.
                    for (std::size_t i = 0; i < fan_in; ++i) {
                        if (acts[l][i] <= 0.0) {
                            delta_prev[i] = 0.0;
                        }
                    }
                    delta.swap(delta_prev);
                }
            }

            // Adam update.
            ++adam_step_;
            const double bc1 =
                1.0 - std::pow(beta1, static_cast<double>(adam_step_));
            const double bc2 =
                1.0 - std::pow(beta2, static_cast<double>(adam_step_));
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                auto &gw = grad_w[l].data();
                auto &w = layer.weights.data();
                auto &mw = layer.m_w.data();
                auto &vw = layer.v_w.data();
                for (std::size_t i = 0; i < w.size(); ++i) {
                    const double g = gw[i] / batch_n +
                                     options.weight_decay * w[i];
                    mw[i] = beta1 * mw[i] + (1.0 - beta1) * g;
                    vw[i] = beta2 * vw[i] + (1.0 - beta2) * g * g;
                    w[i] -= options.learning_rate * (mw[i] / bc1) /
                            (std::sqrt(vw[i] / bc2) + eps);
                }
                for (std::size_t o = 0; o < layer.bias.size(); ++o) {
                    const double g = grad_b[l][o] / batch_n;
                    layer.m_b[o] = beta1 * layer.m_b[o] + (1.0 - beta1) * g;
                    layer.v_b[o] =
                        beta2 * layer.v_b[o] + (1.0 - beta2) * g * g;
                    layer.bias[o] -= options.learning_rate *
                                     (layer.m_b[o] / bc1) /
                                     (std::sqrt(layer.v_b[o] / bc2) + eps);
                }
            }
            batch_start = batch_end;
        }
        last_epoch_loss = epoch_loss / static_cast<double>(n);
    }
    refreshTransposes();
    return last_epoch_loss;
}

double
Mlp::trainBlocked(const Matrix &x, const std::vector<double> &targets,
                  const TrainOptions &options, util::Rng &rng)
{
    // Bit-identical restatement of trainNaive: the per-sample forwards
    // of a minibatch become one GEMM per layer; weight gradients become
    // delta^T * acts (ascending sample index == the oracle's ascending
    // accumulation); the backpropagated delta becomes delta * W
    // (ascending output index, ditto). The loss and the Adam update are
    // byte-for-byte the oracle's code.
    const std::size_t n = x.rows();
    const bool softmax = config_.output == OutputKind::Softmax;
    const auto in_dim = static_cast<std::size_t>(config_.input_dim);
    const auto out_dim = static_cast<std::size_t>(config_.output_dim);
    const std::size_t depth = layers_.size();

    std::vector<Matrix> grad_w;
    std::vector<std::vector<double>> grad_b;
    for (const auto &layer : layers_) {
        grad_w.emplace_back(layer.weights.rows(), layer.weights.cols());
        grad_b.emplace_back(layer.bias.size(), 0.0);
    }

    // Layer widths: width[0] = input, width[l + 1] = layer l fan-out.
    std::vector<std::size_t> width(depth + 1);
    width[0] = in_dim;
    for (std::size_t l = 0; l < depth; ++l) {
        width[l + 1] = layers_[l].weights.rows();
    }
    std::vector<double *> acts(depth + 1);

    double last_epoch_loss = 0.0;
    const double beta1 = 0.9;
    const double beta2 = 0.999;
    const double eps = 1.0e-8;

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        const auto order = rng.permutation(n);
        double epoch_loss = 0.0;
        std::size_t batch_start = 0;
        while (batch_start < n) {
            const std::size_t batch_end =
                std::min(n, batch_start + options.batch_size);
            const std::size_t bsz = batch_end - batch_start;
            const auto batch_n = static_cast<double>(bsz);
            kernels::Scratch::Frame frame(kernels::scratch());
            auto &arena = kernels::scratch();

            // Gather the shuffled minibatch rows contiguously.
            double *xb = arena.alloc(bsz * in_dim);
            for (std::size_t s = 0; s < bsz; ++s) {
                std::memcpy(xb + s * in_dim,
                            x.row(order[batch_start + s]),
                            in_dim * sizeof(double));
            }
            acts[0] = xb;

            // Forward: one GEMM per layer, activations kept for
            // backprop.
            for (std::size_t l = 0; l < depth; ++l) {
                const Layer &layer = layers_[l];
                double *z = arena.alloc(bsz * width[l + 1]);
                kernels::gemm(bsz, width[l], width[l + 1], acts[l],
                              layer.weights_t.data().data(), z,
                              layer.bias.data());
                const bool last = l + 1 == depth;
                if (!last) {
                    reluRows(z, bsz * width[l + 1]);
                } else if (config_.output == OutputKind::Sigmoid) {
                    sigmoidRows(z, bsz * width[l + 1]);
                } else {
                    for (std::size_t s = 0; s < bsz; ++s) {
                        softmaxRow(z + s * width[l + 1], width[l + 1]);
                    }
                }
                acts[l + 1] = z;
            }

            // Output delta and loss, in minibatch sample order (the
            // oracle's epoch_loss accumulation order).
            double *delta = arena.alloc(bsz * out_dim);
            for (std::size_t s = 0; s < bsz; ++s) {
                const std::size_t idx = order[batch_start + s];
                const double *out_row = acts[depth] + s * out_dim;
                double *d_row = delta + s * out_dim;
                if (softmax) {
                    const int cls = static_cast<int>(targets[idx]);
                    assert(cls >= 0 && cls < config_.output_dim);
                    for (std::size_t o = 0; o < out_dim; ++o) {
                        d_row[o] = out_row[o] -
                                   (static_cast<int>(o) == cls ? 1.0 : 0.0);
                    }
                    epoch_loss +=
                        -std::log(std::max(1.0e-12, out_row[cls]));
                } else {
                    for (std::size_t o = 0; o < out_dim; ++o) {
                        const double target = targets[idx * out_dim + o];
                        d_row[o] = out_row[o] - target;
                        epoch_loss +=
                            -(target *
                                  std::log(std::max(1.0e-12, out_row[o])) +
                              (1.0 - target) *
                                  std::log(std::max(1.0e-12,
                                                    1.0 - out_row[o])));
                    }
                }
            }

            // Backward.
            for (std::size_t l = depth; l-- > 0;) {
                const Layer &layer = layers_[l];
                const std::size_t fan_out = width[l + 1];
                const std::size_t fan_in = width[l];
                // grad_w = delta^T * acts[l]: each weight accumulates
                // over ascending sample index, the oracle's order.
                double *delta_t = arena.alloc(fan_out * bsz);
                kernels::transpose(bsz, fan_out, delta, delta_t);
                kernels::gemm(fan_out, bsz, fan_in, delta_t, acts[l],
                              grad_w[l].data().data(), nullptr);
                auto &gb = grad_b[l];
                std::fill(gb.begin(), gb.end(), 0.0);
                for (std::size_t s = 0; s < bsz; ++s) {
                    const double *d_row = delta + s * fan_out;
                    for (std::size_t o = 0; o < fan_out; ++o) {
                        gb[o] += d_row[o];
                    }
                }
                if (l == 0) {
                    break;
                }
                // delta_prev = delta * W, then the ReLU mask of the
                // previous layer's post-activations.
                double *delta_prev = arena.alloc(bsz * fan_in);
                kernels::gemm(bsz, fan_out, fan_in, delta,
                              layer.weights.data().data(), delta_prev,
                              nullptr);
                const double *a_prev = acts[l];
                for (std::size_t i = 0; i < bsz * fan_in; ++i) {
                    if (a_prev[i] <= 0.0) {
                        delta_prev[i] = 0.0;
                    }
                }
                delta = delta_prev;
            }

            // Adam update.
            ++adam_step_;
            const double bc1 =
                1.0 - std::pow(beta1, static_cast<double>(adam_step_));
            const double bc2 =
                1.0 - std::pow(beta2, static_cast<double>(adam_step_));
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                auto &gw = grad_w[l].data();
                auto &w = layer.weights.data();
                auto &mw = layer.m_w.data();
                auto &vw = layer.v_w.data();
                for (std::size_t i = 0; i < w.size(); ++i) {
                    const double g = gw[i] / batch_n +
                                     options.weight_decay * w[i];
                    mw[i] = beta1 * mw[i] + (1.0 - beta1) * g;
                    vw[i] = beta2 * vw[i] + (1.0 - beta2) * g * g;
                    w[i] -= options.learning_rate * (mw[i] / bc1) /
                            (std::sqrt(vw[i] / bc2) + eps);
                }
                for (std::size_t o = 0; o < layer.bias.size(); ++o) {
                    const double g = grad_b[l][o] / batch_n;
                    layer.m_b[o] = beta1 * layer.m_b[o] + (1.0 - beta1) * g;
                    layer.v_b[o] =
                        beta2 * layer.v_b[o] + (1.0 - beta2) * g * g;
                    layer.bias[o] -= options.learning_rate *
                                     (layer.m_b[o] / bc1) /
                                     (std::sqrt(layer.v_b[o] / bc2) + eps);
                }
            }
            // The next minibatch's forward GEMM reads weights_t.
            refreshTransposes();
            batch_start = batch_end;
        }
        last_epoch_loss = epoch_loss / static_cast<double>(n);
    }
    return last_epoch_loss;
}

void
Mlp::save(std::ostream &os) const
{
    os << "mlp 1\n";
    os << config_.input_dim << ' ' << config_.output_dim << ' '
       << (config_.output == OutputKind::Softmax ? 1 : 0) << ' '
       << config_.hidden.size();
    for (int h : config_.hidden) {
        os << ' ' << h;
    }
    os << '\n';
    os.precision(17);
    for (const auto &layer : layers_) {
        for (double w : layer.weights.data()) {
            os << w << ' ';
        }
        for (double b : layer.bias) {
            os << b << ' ';
        }
        os << '\n';
    }
}

Mlp
Mlp::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "mlp" || version != 1) {
        util::fatal("Mlp::load: bad header");
    }
    MlpConfig config;
    int softmax = 0;
    std::size_t hidden_count = 0;
    is >> config.input_dim >> config.output_dim >> softmax >> hidden_count;
    config.output = softmax ? OutputKind::Softmax : OutputKind::Sigmoid;
    config.hidden.resize(hidden_count);
    for (auto &h : config.hidden) {
        is >> h;
    }
    util::Rng rng(0);
    Mlp mlp(config, rng);
    for (auto &layer : mlp.layers_) {
        for (auto &w : layer.weights.data()) {
            is >> w;
        }
        for (auto &b : layer.bias) {
            is >> b;
        }
    }
    if (!is) {
        util::fatal("Mlp::load: truncated stream");
    }
    mlp.refreshTransposes();
    return mlp;
}

} // namespace kodan::ml
