#include "ml/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/log.hpp"

namespace kodan::ml {

namespace {

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

void
softmaxInPlace(std::vector<double> &z)
{
    const double peak = *std::max_element(z.begin(), z.end());
    double total = 0.0;
    for (auto &v : z) {
        v = std::exp(v - peak);
        total += v;
    }
    for (auto &v : z) {
        v /= total;
    }
}

} // namespace

Mlp::Mlp(const MlpConfig &config, util::Rng &rng)
    : config_(config)
{
    assert(config.input_dim >= 1);
    assert(config.output_dim >= 1);

    std::vector<int> dims;
    dims.push_back(config.input_dim);
    for (int h : config.hidden) {
        assert(h >= 1);
        dims.push_back(h);
    }
    dims.push_back(config.output_dim);

    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        Layer layer;
        const int fan_in = dims[l];
        const int fan_out = dims[l + 1];
        layer.weights = Matrix(fan_out, fan_in);
        const double scale = std::sqrt(2.0 / fan_in);
        for (auto &w : layer.weights.data()) {
            w = rng.normal(0.0, scale);
        }
        layer.bias.assign(fan_out, 0.0);
        layer.m_w = Matrix(fan_out, fan_in);
        layer.v_w = Matrix(fan_out, fan_in);
        layer.m_b.assign(fan_out, 0.0);
        layer.v_b.assign(fan_out, 0.0);
        layers_.push_back(std::move(layer));
    }
}

std::size_t
Mlp::parameterCount() const
{
    std::size_t count = 0;
    for (const auto &layer : layers_) {
        count += layer.weights.rows() * layer.weights.cols();
        count += layer.bias.size();
    }
    return count;
}

void
Mlp::forward(const double *x, double *out) const
{
    std::vector<double> current(x, x + config_.input_dim);
    std::vector<double> next;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t fan_out = layer.weights.rows();
        const std::size_t fan_in = layer.weights.cols();
        next.assign(fan_out, 0.0);
        for (std::size_t o = 0; o < fan_out; ++o) {
            const double *w = layer.weights.row(o);
            double z = layer.bias[o];
            for (std::size_t i = 0; i < fan_in; ++i) {
                z += w[i] * current[i];
            }
            next[o] = z;
        }
        const bool last = l + 1 == layers_.size();
        if (!last) {
            for (auto &v : next) {
                v = std::max(0.0, v);
            }
        } else if (config_.output == OutputKind::Sigmoid) {
            for (auto &v : next) {
                v = sigmoid(v);
            }
        } else {
            softmaxInPlace(next);
        }
        current.swap(next);
    }
    std::copy(current.begin(), current.end(), out);
}

double
Mlp::predictProb(const double *x) const
{
    assert(config_.output == OutputKind::Sigmoid && config_.output_dim == 1);
    double p = 0.0;
    forward(x, &p);
    return p;
}

int
Mlp::predictClass(const double *x) const
{
    std::vector<double> probs(config_.output_dim);
    forward(x, probs.data());
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

void
Mlp::forwardTraining(const double *x,
                     std::vector<std::vector<double>> &acts) const
{
    acts.resize(layers_.size() + 1);
    acts[0].assign(x, x + config_.input_dim);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t fan_out = layer.weights.rows();
        const std::size_t fan_in = layer.weights.cols();
        acts[l + 1].assign(fan_out, 0.0);
        for (std::size_t o = 0; o < fan_out; ++o) {
            const double *w = layer.weights.row(o);
            double z = layer.bias[o];
            for (std::size_t i = 0; i < fan_in; ++i) {
                z += w[i] * acts[l][i];
            }
            acts[l + 1][o] = z;
        }
        const bool last = l + 1 == layers_.size();
        if (!last) {
            for (auto &v : acts[l + 1]) {
                v = std::max(0.0, v);
            }
        } else if (config_.output == OutputKind::Sigmoid) {
            for (auto &v : acts[l + 1]) {
                v = sigmoid(v);
            }
        } else {
            softmaxInPlace(acts[l + 1]);
        }
    }
}

double
Mlp::train(const Matrix &x, const std::vector<double> &targets,
           const TrainOptions &options, util::Rng &rng)
{
    const std::size_t n = x.rows();
    assert(static_cast<int>(x.cols()) == config_.input_dim);
    const bool softmax = config_.output == OutputKind::Softmax;
    if (softmax) {
        assert(targets.size() == n);
    } else {
        assert(targets.size() ==
               n * static_cast<std::size_t>(config_.output_dim));
    }
    assert(options.batch_size >= 1);

    // Per-layer gradient accumulators, reused across minibatches.
    std::vector<Matrix> grad_w;
    std::vector<std::vector<double>> grad_b;
    for (const auto &layer : layers_) {
        grad_w.emplace_back(layer.weights.rows(), layer.weights.cols());
        grad_b.emplace_back(layer.bias.size(), 0.0);
    }

    std::vector<std::vector<double>> acts;
    std::vector<double> delta;
    std::vector<double> delta_prev;
    double last_epoch_loss = 0.0;

    const double beta1 = 0.9;
    const double beta2 = 0.999;
    const double eps = 1.0e-8;

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        const auto order = rng.permutation(n);
        double epoch_loss = 0.0;
        std::size_t batch_start = 0;
        while (batch_start < n) {
            const std::size_t batch_end =
                std::min(n, batch_start + options.batch_size);
            const auto batch_n =
                static_cast<double>(batch_end - batch_start);
            for (auto &g : grad_w) {
                g.fill(0.0);
            }
            for (auto &g : grad_b) {
                std::fill(g.begin(), g.end(), 0.0);
            }

            for (std::size_t s = batch_start; s < batch_end; ++s) {
                const std::size_t idx = order[s];
                forwardTraining(x.row(idx), acts);
                const auto &out = acts.back();

                // Output delta: prob - target for both heads.
                delta.assign(out.size(), 0.0);
                if (softmax) {
                    const int cls = static_cast<int>(targets[idx]);
                    assert(cls >= 0 && cls < config_.output_dim);
                    for (std::size_t o = 0; o < out.size(); ++o) {
                        delta[o] = out[o] -
                                   (static_cast<int>(o) == cls ? 1.0 : 0.0);
                    }
                    epoch_loss += -std::log(std::max(1.0e-12, out[cls]));
                } else {
                    for (std::size_t o = 0; o < out.size(); ++o) {
                        const double target =
                            targets[idx * out.size() + o];
                        delta[o] = out[o] - target;
                        epoch_loss +=
                            -(target * std::log(std::max(1.0e-12, out[o])) +
                              (1.0 - target) *
                                  std::log(
                                      std::max(1.0e-12, 1.0 - out[o])));
                    }
                }

                // Backpropagate.
                for (std::size_t l = layers_.size(); l-- > 0;) {
                    const Layer &layer = layers_[l];
                    const auto &input = acts[l];
                    const std::size_t fan_out = layer.weights.rows();
                    const std::size_t fan_in = layer.weights.cols();
                    for (std::size_t o = 0; o < fan_out; ++o) {
                        const double d = delta[o];
                        if (d == 0.0) {
                            continue;
                        }
                        double *g_row = grad_w[l].row(o);
                        for (std::size_t i = 0; i < fan_in; ++i) {
                            g_row[i] += d * input[i];
                        }
                        grad_b[l][o] += d;
                    }
                    if (l == 0) {
                        break;
                    }
                    delta_prev.assign(fan_in, 0.0);
                    for (std::size_t o = 0; o < fan_out; ++o) {
                        const double d = delta[o];
                        if (d == 0.0) {
                            continue;
                        }
                        const double *w = layer.weights.row(o);
                        for (std::size_t i = 0; i < fan_in; ++i) {
                            delta_prev[i] += d * w[i];
                        }
                    }
                    // ReLU derivative of the previous layer's output.
                    for (std::size_t i = 0; i < fan_in; ++i) {
                        if (acts[l][i] <= 0.0) {
                            delta_prev[i] = 0.0;
                        }
                    }
                    delta.swap(delta_prev);
                }
            }

            // Adam update.
            ++adam_step_;
            const double bc1 =
                1.0 - std::pow(beta1, static_cast<double>(adam_step_));
            const double bc2 =
                1.0 - std::pow(beta2, static_cast<double>(adam_step_));
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                auto &gw = grad_w[l].data();
                auto &w = layer.weights.data();
                auto &mw = layer.m_w.data();
                auto &vw = layer.v_w.data();
                for (std::size_t i = 0; i < w.size(); ++i) {
                    const double g = gw[i] / batch_n +
                                     options.weight_decay * w[i];
                    mw[i] = beta1 * mw[i] + (1.0 - beta1) * g;
                    vw[i] = beta2 * vw[i] + (1.0 - beta2) * g * g;
                    w[i] -= options.learning_rate * (mw[i] / bc1) /
                            (std::sqrt(vw[i] / bc2) + eps);
                }
                for (std::size_t o = 0; o < layer.bias.size(); ++o) {
                    const double g = grad_b[l][o] / batch_n;
                    layer.m_b[o] = beta1 * layer.m_b[o] + (1.0 - beta1) * g;
                    layer.v_b[o] =
                        beta2 * layer.v_b[o] + (1.0 - beta2) * g * g;
                    layer.bias[o] -= options.learning_rate *
                                     (layer.m_b[o] / bc1) /
                                     (std::sqrt(layer.v_b[o] / bc2) + eps);
                }
            }
            batch_start = batch_end;
        }
        last_epoch_loss = epoch_loss / static_cast<double>(n);
    }
    return last_epoch_loss;
}

void
Mlp::save(std::ostream &os) const
{
    os << "mlp 1\n";
    os << config_.input_dim << ' ' << config_.output_dim << ' '
       << (config_.output == OutputKind::Softmax ? 1 : 0) << ' '
       << config_.hidden.size();
    for (int h : config_.hidden) {
        os << ' ' << h;
    }
    os << '\n';
    os.precision(17);
    for (const auto &layer : layers_) {
        for (double w : layer.weights.data()) {
            os << w << ' ';
        }
        for (double b : layer.bias) {
            os << b << ' ';
        }
        os << '\n';
    }
}

Mlp
Mlp::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "mlp" || version != 1) {
        util::fatal("Mlp::load: bad header");
    }
    MlpConfig config;
    int softmax = 0;
    std::size_t hidden_count = 0;
    is >> config.input_dim >> config.output_dim >> softmax >> hidden_count;
    config.output = softmax ? OutputKind::Softmax : OutputKind::Sigmoid;
    config.hidden.resize(hidden_count);
    for (auto &h : config.hidden) {
        is >> h;
    }
    util::Rng rng(0);
    Mlp mlp(config, rng);
    for (auto &layer : mlp.layers_) {
        for (auto &w : layer.weights.data()) {
            is >> w;
        }
        for (auto &b : layer.bias) {
            is >> b;
        }
    }
    if (!is) {
        util::fatal("Mlp::load: truncated stream");
    }
    return mlp;
}

} // namespace kodan::ml
