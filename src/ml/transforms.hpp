/**
 * @file
 * Feature transforms for the clustering sweep: standardization and PCA
 * (the paper's "label vector transformations, including translations,
 * rotations, and projections based on per-dimension covariance
 * properties").
 */

#ifndef KODAN_ML_TRANSFORMS_HPP
#define KODAN_ML_TRANSFORMS_HPP

#include <iosfwd>
#include <vector>

#include "ml/matrix.hpp"

namespace kodan::ml {

/**
 * Per-dimension translation/scale to zero mean and unit variance.
 */
class Standardizer
{
  public:
    /** Learn per-dimension mean and standard deviation from @p x. */
    void fit(const Matrix &x);

    /** Transform a matrix (row per sample). */
    Matrix transform(const Matrix &x) const;

    /** Transform one vector in place. */
    void transformRow(double *row) const;

    /** Learned means. */
    const std::vector<double> &mean() const { return mean_; }

    /** Learned standard deviations (floored at 1e-9). */
    const std::vector<double> &stddev() const { return std_; }

    /** Serialize the learned statistics. */
    void save(std::ostream &os) const;

    /** Deserialize statistics written by save(). */
    static Standardizer load(std::istream &is);

  private:
    std::vector<double> mean_;
    std::vector<double> std_;
};

/**
 * Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
 *
 * @param symmetric Square symmetric input.
 * @param eigenvalues Output, descending order.
 * @param eigenvectors Output, one eigenvector per row, matching order.
 */
void jacobiEigen(const Matrix &symmetric, std::vector<double> &eigenvalues,
                 Matrix &eigenvectors);

/**
 * Principal component analysis (rotation + projection).
 */
class Pca
{
  public:
    /**
     * Learn the top @p components principal axes of @p x.
     * @param x Samples, one per row.
     * @param components Output dimensionality (<= x.cols()).
     */
    void fit(const Matrix &x, std::size_t components);

    /** Project a matrix onto the learned axes. */
    Matrix transform(const Matrix &x) const;

    /** Eigenvalues of the kept components, descending. */
    const std::vector<double> &eigenvalues() const { return eigenvalues_; }

    /** Number of kept components. */
    std::size_t components() const { return axes_.rows(); }

    /** Fraction of total variance captured by the kept components. */
    double explainedVariance() const;

  private:
    std::vector<double> mean_;
    Matrix axes_; // components x dim
    std::vector<double> eigenvalues_;
    double total_variance_ = 0.0;
};

} // namespace kodan::ml

#endif // KODAN_ML_TRANSFORMS_HPP
