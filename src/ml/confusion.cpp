#include "ml/confusion.hpp"

#include <cassert>

namespace kodan::ml {

void
ConfusionStats::add(bool predicted_positive, bool truly_positive)
{
    addWeighted(predicted_positive, truly_positive, 1);
}

void
ConfusionStats::addWeighted(bool predicted_positive, bool truly_positive,
                            std::int64_t count)
{
    assert(count >= 0 && "negative confusion counts corrupt the merge");
    if (predicted_positive) {
        (truly_positive ? tp_ : fp_) += count;
    } else {
        (truly_positive ? fn_ : tn_) += count;
    }
}

void
ConfusionStats::merge(const ConfusionStats &other)
{
    tp_ += other.tp_;
    fp_ += other.fp_;
    tn_ += other.tn_;
    fn_ += other.fn_;
}

double
ConfusionStats::accuracy() const
{
    const auto n = total();
    return n == 0 ? 0.0 : static_cast<double>(tp_ + tn_) / n;
}

double
ConfusionStats::precision() const
{
    const auto denom = tp_ + fp_;
    return denom == 0 ? 1.0 : static_cast<double>(tp_) / denom;
}

double
ConfusionStats::recall() const
{
    const auto denom = tp_ + fn_;
    return denom == 0 ? 1.0 : static_cast<double>(tp_) / denom;
}

double
ConfusionStats::f1() const
{
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
ConfusionStats::positiveRate() const
{
    const auto n = total();
    return n == 0 ? 0.0 : static_cast<double>(tp_ + fp_) / n;
}

double
ConfusionStats::prevalence() const
{
    const auto n = total();
    return n == 0 ? 0.0 : static_cast<double>(tp_ + fn_) / n;
}

} // namespace kodan::ml
