/**
 * @file
 * Hardware deployment targets and the execution-time cost model.
 *
 * Substitute for the paper's physical testbed (GTX 1070 Ti, Core
 * i7-7800X, Jetson AGX Orin 15 W): per-tile inference times are anchored
 * verbatim to Table 1 for the seven application architectures, and other
 * model capacities are costed by interpolation on parameter count. The
 * scheduling decisions Kodan makes depend only on these times relative to
 * the frame deadline, which this model reproduces exactly.
 */

#ifndef KODAN_HW_TARGET_HPP
#define KODAN_HW_TARGET_HPP

#include <array>
#include <cstddef>
#include <vector>

namespace kodan::hw {

/** Hardware deployment targets evaluated in the paper. */
enum class Target
{
    /** NVIDIA GeForce GTX 1070 Ti desktop GPU (~180 W). */
    Gtx1070Ti = 0,
    /** Intel Core i7-7800X CPU (12 threads, ~140 W). */
    I7_7800,
    /** NVIDIA Jetson AGX Orin in its 15 W mode (cubesat-class). */
    Orin15W,
};

/** Number of modeled targets. */
inline constexpr int kTargetCount = 3;

/** All targets, in Table 1 column order. */
const std::array<Target, kTargetCount> &allTargets();

/** Human-readable target name. */
const char *targetName(Target target);

/** Number of application architecture tiers (Table 1 rows). */
inline constexpr int kAppCount = 7;

/**
 * Execution-time model.
 *
 * All times are seconds. "Tier" is the application index 1..7 of Table 1
 * (mobilenetv2dilated ... resnet101dilated, in increasing cost).
 */
class CostModel
{
  public:
    /**
     * Per-tile inference time of application tier @p tier on @p target
     * (Table 1, converted to seconds).
     *
     * @param tier Application tier in [1, 7].
     */
    static double tileTime(int tier, Target target);

    /** Paper architecture name of tier @p tier. */
    static const char *tierName(int tier);

    /**
     * Parameter count of the kodan surrogate network for tier @p tier.
     * Used to cost arbitrary specialized models by interpolation.
     */
    static std::size_t tierParamCount(int tier);

    /**
     * Hidden-layer widths of the surrogate network for tier @p tier
     * (input/output dimensions are fixed by the core library).
     */
    static const std::vector<int> &tierHidden(int tier);

    /** Input dimension the surrogate parameter counts assume (must
     *  match data::kBlockInputDim; checked by the test suite). */
    static constexpr int kSurrogateInputDim = 18;

    /**
     * Per-tile time of a model with @p param_count parameters on
     * @p target: piecewise-linear in parameter count through the Table 1
     * anchors, proportional below tier 1.
     */
    static double modelTime(std::size_t param_count, Target target);

    /**
     * Per-tile time of the context engine (a small classifier executed on
     * every tile before the selection logic acts).
     */
    static double contextEngineTime(Target target);

    /**
     * Throughput gain of int8 quantized inference over the default
     * numeric path on @p target. GPUs gain least (the fp32 path is
     * already tensor-core bound), CPUs and the Orin's DLA-class cores
     * most — mirroring the int8 GEMM speedups the kernel bench asserts.
     */
    static double quantSpeedup(Target target);

    /** modelTime() under int8 quantized inference. */
    static double modelTimeQuant(std::size_t param_count, Target target);

    /** tileTime() under int8 quantized inference. */
    static double tileTimeQuant(int tier, Target target);
};

} // namespace kodan::hw

#endif // KODAN_HW_TARGET_HPP
