#include "hw/target.hpp"

#include <cassert>
#include <vector>

namespace kodan::hw {

namespace {

/** Table 1 of the paper: per-tile processing time in milliseconds. */
constexpr double kTable1Ms[kAppCount][kTargetCount] = {
    // 1070 Ti   i7-7800   Orin 15W
    {178.2, 440.6, 618.8},   // App 1: mobilenetv2dilated-c1-deepsup
    {237.6, 940.6, 935.6},   // App 2: resnet18dilated-ppm-deepsup
    {321.8, 1292.0, 1515.0}, // App 3: hrnetv2-c1
    {361.4, 1787.0, 1594.0}, // App 4: resnet50dilated-ppm-deepsup
    {410.9, 2124.0, 1797.0}, // App 5: resnet50-upernet
    {445.5, 2307.0, 1970.0}, // App 6: resnet101-upernet
    {475.2, 2545.0, 2040.0}, // App 7: resnet101dilated-ppm-deepsup
};

constexpr const char *kTierNames[kAppCount] = {
    "mobilenetv2dilated-c1-deepsup",
    "resnet18dilated-ppm-deepsup",
    "hrnetv2-c1",
    "resnet50dilated-ppm-deepsup",
    "resnet50-upernet",
    "resnet101-upernet",
    "resnet101dilated-ppm-deepsup",
};

/**
 * Hidden-layer widths of the kodan surrogate networks, one per tier.
 * Input dimension is the per-block classifier input (3 * kFeatureDim =
 * 30); output is a single sigmoid unit.
 */
const std::vector<int> kTierHidden[kAppCount] = {
    {4}, {6}, {10, 6}, {16, 8}, {24, 12}, {40, 20}, {64, 32, 16},
};

std::size_t
mlpParams(int input_dim, const std::vector<int> &hidden, int output_dim)
{
    std::size_t params = 0;
    int prev = input_dim;
    for (int h : hidden) {
        params += static_cast<std::size_t>(prev) * h + h;
        prev = h;
    }
    params += static_cast<std::size_t>(prev) * output_dim + output_dim;
    return params;
}

} // namespace

const std::array<Target, kTargetCount> &
allTargets()
{
    static const std::array<Target, kTargetCount> targets = {
        Target::Gtx1070Ti, Target::I7_7800, Target::Orin15W};
    return targets;
}

const char *
targetName(Target target)
{
    switch (target) {
      case Target::Gtx1070Ti:
        return "1070Ti";
      case Target::I7_7800:
        return "i7-7800";
      case Target::Orin15W:
        return "Orin15W";
    }
    return "?";
}

double
CostModel::tileTime(int tier, Target target)
{
    assert(tier >= 1 && tier <= kAppCount);
    return kTable1Ms[tier - 1][static_cast<int>(target)] * 1.0e-3;
}

const char *
CostModel::tierName(int tier)
{
    assert(tier >= 1 && tier <= kAppCount);
    return kTierNames[tier - 1];
}

std::size_t
CostModel::tierParamCount(int tier)
{
    assert(tier >= 1 && tier <= kAppCount);
    return mlpParams(kSurrogateInputDim, kTierHidden[tier - 1], 1);
}

const std::vector<int> &
CostModel::tierHidden(int tier)
{
    assert(tier >= 1 && tier <= kAppCount);
    return kTierHidden[tier - 1];
}

double
CostModel::modelTime(std::size_t param_count, Target target)
{
    // Piecewise-linear in parameter count through the Table 1 anchors.
    const std::size_t p1 = tierParamCount(1);
    if (param_count <= p1) {
        // Proportional below the smallest anchor, floored at the context
        // engine cost (no useful network is cheaper than the engine).
        const double scaled = tileTime(1, target) *
                              static_cast<double>(param_count) /
                              static_cast<double>(p1);
        const double floor = contextEngineTime(target);
        return scaled < floor ? floor : scaled;
    }
    for (int tier = 2; tier <= kAppCount; ++tier) {
        const std::size_t lo = tierParamCount(tier - 1);
        const std::size_t hi = tierParamCount(tier);
        if (param_count <= hi) {
            const double frac = static_cast<double>(param_count - lo) /
                                static_cast<double>(hi - lo);
            return tileTime(tier - 1, target) +
                   frac * (tileTime(tier, target) -
                           tileTime(tier - 1, target));
        }
    }
    // Extrapolate proportionally above the largest anchor.
    return tileTime(kAppCount, target) * static_cast<double>(param_count) /
           static_cast<double>(tierParamCount(kAppCount));
}

double
CostModel::contextEngineTime(Target target)
{
    switch (target) {
      case Target::Gtx1070Ti:
        return 5.0e-3;
      case Target::I7_7800:
        return 12.0e-3;
      case Target::Orin15W:
        return 18.0e-3;
    }
    return 0.0;
}

double
CostModel::quantSpeedup(Target target)
{
    switch (target) {
      case Target::Gtx1070Ti:
        return 2.5;
      case Target::I7_7800:
        return 3.0;
      case Target::Orin15W:
        return 3.2;
    }
    return 1.0;
}

double
CostModel::modelTimeQuant(std::size_t param_count, Target target)
{
    // Quantization cuts the inference kernels, not the fixed per-tile
    // dispatch; the context-engine floor therefore still applies.
    const double t = modelTime(param_count, target) / quantSpeedup(target);
    const double floor = contextEngineTime(target);
    return t < floor ? floor : t;
}

double
CostModel::tileTimeQuant(int tier, Target target)
{
    const double t = tileTime(tier, target) / quantSpeedup(target);
    const double floor = contextEngineTime(target);
    return t < floor ? floor : t;
}

} // namespace kodan::hw
