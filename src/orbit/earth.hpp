/**
 * @file
 * Earth rotation and coordinate-frame conversions.
 *
 * Frames:
 *  - ECI:  Earth-centered inertial; orbits are propagated here.
 *  - ECEF: Earth-centered Earth-fixed; rotates with the planet.
 *  - Geodetic: latitude / longitude / altitude over the WGS-84 ellipsoid.
 *
 * The simulation epoch t = 0 is defined to have Greenwich aligned with the
 * ECI +X axis (GMST = 0), which is sufficient for constellation studies.
 */

#ifndef KODAN_ORBIT_EARTH_HPP
#define KODAN_ORBIT_EARTH_HPP

#include "orbit/vec3.hpp"

namespace kodan::orbit {

/** Geodetic coordinates over the WGS-84 ellipsoid. */
struct Geodetic
{
    /** Geodetic latitude (rad), [-pi/2, pi/2]. */
    double latitude = 0.0;
    /** Longitude (rad), [-pi, pi). */
    double longitude = 0.0;
    /** Height above the ellipsoid (m). */
    double altitude = 0.0;
};

/** WGS-84 flattening. */
inline constexpr double kWgs84Flattening = 1.0 / 298.257223563;

/**
 * Greenwich mean sidereal time at simulation time t.
 *
 * @param t Seconds since the simulation epoch.
 * @return Rotation angle of the Earth (rad) in [0, 2*pi).
 */
double gmst(double t);

/**
 * Rotate an ECI vector into ECEF at time t.
 * @param eci Position in the inertial frame (m).
 * @param t Seconds since epoch.
 */
Vec3 eciToEcef(const Vec3 &eci, double t);

/**
 * Rotate an ECEF vector into ECI at time t.
 * @param ecef Position in the rotating frame (m).
 * @param t Seconds since epoch.
 */
Vec3 ecefToEci(const Vec3 &ecef, double t);

/**
 * Convert ECEF to geodetic coordinates (iterative; mm-level accurate).
 * @param ecef Position (m).
 */
Geodetic ecefToGeodetic(const Vec3 &ecef);

/**
 * Convert geodetic coordinates to ECEF (m).
 * @param geo Latitude/longitude/altitude.
 */
Vec3 geodeticToEcef(const Geodetic &geo);

/**
 * Great-circle central angle between two geodetic points (spherical
 * approximation; used for coverage bookkeeping, not precision geodesy).
 *
 * @return Angle in radians; multiply by Earth radius for arc length.
 */
double greatCircleAngle(const Geodetic &a, const Geodetic &b);

/**
 * Elevation angle of a target as seen from a ground site.
 *
 * @param site_ecef Ground site position (m, ECEF).
 * @param target_ecef Target position (m, ECEF).
 * @return Elevation above the local horizon (rad); negative when the
 *         target is below the horizon.
 */
double elevationAngle(const Vec3 &site_ecef, const Vec3 &target_ecef);

} // namespace kodan::orbit

#endif // KODAN_ORBIT_EARTH_HPP
