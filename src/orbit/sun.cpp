#include "orbit/sun.hpp"

#include <cmath>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace kodan::orbit {

namespace {

/** Tropical year in seconds. */
constexpr double kYear = 365.2422 * 86400.0;

} // namespace

Vec3
sunDirectionEci(double t)
{
    const double mean_longitude = util::kTwoPi * t / kYear;
    const double cos_l = std::cos(mean_longitude);
    const double sin_l = std::sin(mean_longitude);
    return {cos_l, sin_l * std::cos(kObliquity),
            sin_l * std::sin(kObliquity)};
}

double
solarElevation(const Geodetic &point, double t)
{
    const Vec3 site_ecef = geodeticToEcef(point);
    const Vec3 up = site_ecef.normalized();
    const Vec3 sun_ecef = eciToEcef(sunDirectionEci(t), t);
    return std::asin(util::clamp(up.dot(sun_ecef), -1.0, 1.0));
}

bool
isDaylit(const Geodetic &point, double t, double min_elevation)
{
    return solarElevation(point, t) > min_elevation;
}

bool
inEclipse(const Vec3 &sat_eci, double t)
{
    const Vec3 sun = sunDirectionEci(t);
    const double along = sat_eci.dot(sun);
    if (along >= 0.0) {
        return false; // on the day side
    }
    // Distance from the shadow axis.
    const Vec3 radial = sat_eci - sun * along;
    return radial.norm() < util::kEarthRadius;
}

double
localSolarTime(const Geodetic &point, double t)
{
    // Mean sun right ascension advances 2*pi per year; Greenwich hour
    // angle of the mean sun = gmst - sun_ra. Local solar time = 12h +
    // (hour angle + longitude) scaled to hours.
    const double sun_ra = util::kTwoPi * t / kYear;
    const double hour_angle =
        util::wrapPi(gmst(t) - sun_ra + point.longitude);
    double hours = 12.0 + hour_angle * 24.0 / util::kTwoPi;
    if (hours >= 24.0) {
        hours -= 24.0;
    }
    if (hours < 0.0) {
        hours += 24.0;
    }
    return hours;
}

} // namespace kodan::orbit
