/**
 * @file
 * Classical orbital elements and presets for the satellites kodan models.
 */

#ifndef KODAN_ORBIT_ELEMENTS_HPP
#define KODAN_ORBIT_ELEMENTS_HPP

#include <vector>

namespace kodan::orbit {

/**
 * Classical (Keplerian) orbital elements at a reference epoch t = 0.
 *
 * Angles are radians; the semi-major axis is meters. The epoch is the
 * simulation origin, so a constellation is expressed by giving each
 * satellite its own RAAN and mean anomaly at t = 0.
 */
struct OrbitalElements
{
    /** Semi-major axis (m). */
    double semi_major_axis = 0.0;
    /** Eccentricity (dimensionless, [0, 1)). */
    double eccentricity = 0.0;
    /** Inclination (rad). */
    double inclination = 0.0;
    /** Right ascension of the ascending node at epoch (rad). */
    double raan = 0.0;
    /** Argument of perigee at epoch (rad). */
    double arg_perigee = 0.0;
    /** Mean anomaly at epoch (rad). */
    double mean_anomaly = 0.0;

    /** Unperturbed mean motion n = sqrt(mu / a^3), rad/s. */
    double meanMotion() const;

    /** Unperturbed orbital period 2*pi/n, seconds. */
    double period() const;

    /**
     * Circular LEO factory.
     *
     * @param altitude_m Altitude above the mean equatorial radius (m).
     * @param inclination_rad Inclination (rad).
     * @param raan_rad RAAN at epoch (rad).
     * @param mean_anomaly_rad Mean anomaly at epoch (rad); use to phase
     *        satellites within one orbital plane.
     */
    static OrbitalElements circularLeo(double altitude_m,
                                       double inclination_rad,
                                       double raan_rad = 0.0,
                                       double mean_anomaly_rad = 0.0);

    /**
     * Landsat-8-like sun-synchronous orbit: 705 km circular at the
     * sun-synchronous inclination (~98.2 deg).
     *
     * @param raan_rad RAAN at epoch (rad).
     * @param mean_anomaly_rad Mean anomaly at epoch (rad).
     */
    static OrbitalElements landsat8(double raan_rad = 0.0,
                                    double mean_anomaly_rad = 0.0);
};

/**
 * Inclination giving a sun-synchronous nodal precession rate for a
 * circular orbit at the given altitude (J2-driven, ~0.9856 deg/day).
 *
 * @param altitude_m Circular orbit altitude (m).
 * @return Inclination in radians (> pi/2, i.e. retrograde).
 */
double sunSynchronousInclination(double altitude_m);

/**
 * Walker-delta constellation: @p total satellites spread over
 * @p planes equally-spaced orbital planes, with in-plane satellites
 * evenly phased and an inter-plane phasing offset of
 * @p phasing * 360/total degrees (the Walker "f" parameter).
 *
 * @param total Total satellites; must be divisible by @p planes.
 * @param planes Number of orbital planes (>= 1).
 * @param phasing Walker phasing parameter f in [0, planes).
 * @param altitude_m Circular orbit altitude (m).
 * @param inclination_rad Inclination (rad).
 * @return One element set per satellite.
 */
std::vector<OrbitalElements> walkerConstellation(int total, int planes,
                                                 int phasing,
                                                 double altitude_m,
                                                 double inclination_rad);

/**
 * Walker-delta constellation at the sun-synchronous inclination for
 * @p altitude_m: the canonical layout for staggered-plane imaging
 * constellations (every plane keeps the same local solar time).
 *
 * @param total Total satellites; must be divisible by @p planes.
 * @param planes Number of orbital planes (>= 1).
 * @param phasing Walker phasing parameter f in [0, planes).
 * @param altitude_m Circular orbit altitude (m).
 */
std::vector<OrbitalElements> sunSynchronousConstellation(int total,
                                                         int planes,
                                                         int phasing,
                                                         double altitude_m);

/**
 * Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly.
 *
 * Newton iteration; converges in a handful of steps for e < 0.9.
 *
 * @param mean_anomaly Mean anomaly M (rad, any wrap).
 * @param eccentricity Eccentricity e in [0, 1).
 * @return Eccentric anomaly E in [0, 2*pi).
 */
double solveKepler(double mean_anomaly, double eccentricity);

} // namespace kodan::orbit

#endif // KODAN_ORBIT_ELEMENTS_HPP
