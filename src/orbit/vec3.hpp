/**
 * @file
 * Small 3-vector used by the orbital mechanics substrate.
 */

#ifndef KODAN_ORBIT_VEC3_HPP
#define KODAN_ORBIT_VEC3_HPP

#include <cmath>

namespace kodan::orbit {

/**
 * Plain 3-vector of doubles with the usual algebraic operations.
 *
 * Used for positions/velocities in ECI and ECEF frames (meters, m/s).
 */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    /** Dot product. */
    constexpr double dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Cross product. */
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    /** Squared Euclidean norm. */
    constexpr double normSq() const { return dot(*this); }

    /** Euclidean norm. */
    double norm() const { return std::sqrt(normSq()); }

    /** Unit vector in this direction; undefined for the zero vector. */
    Vec3 normalized() const { return *this / norm(); }
};

/** Scalar * vector. */
constexpr Vec3
operator*(double s, const Vec3 &v)
{
    return v * s;
}

} // namespace kodan::orbit

#endif // KODAN_ORBIT_VEC3_HPP
