#include "orbit/propagator.hpp"

#include <cassert>
#include <cmath>

#include "util/units.hpp"

namespace kodan::orbit {

using util::kEarthJ2;
using util::kEarthRadius;
using util::kTwoPi;

J2Propagator::J2Propagator(const OrbitalElements &elements)
    : elements_(elements)
{
    const double a = elements_.semi_major_axis;
    const double e = elements_.eccentricity;
    const double i = elements_.inclination;
    assert(a > kEarthRadius);
    assert(e >= 0.0 && e < 1.0);

    const double n0 = elements_.meanMotion();
    const double p = a * (1.0 - e * e); // semi-latus rectum
    const double re_p = kEarthRadius / p;
    const double j2_term = 1.5 * kEarthJ2 * re_p * re_p;
    const double cos_i = std::cos(i);
    const double sin_i = std::sin(i);

    // Standard secular J2 rates (Vallado, ch. 9).
    raan_rate_ = -j2_term * n0 * cos_i;
    argp_rate_ = j2_term * n0 * (2.0 - 2.5 * sin_i * sin_i);
    const double eta = std::sqrt(1.0 - e * e);
    mean_motion_ =
        n0 * (1.0 + j2_term * eta * (1.0 - 1.5 * sin_i * sin_i));
}

double
J2Propagator::nodalPeriod() const
{
    // Time between successive ascending nodes: the argument of latitude
    // advances at (M + argp) rate for near-circular orbits.
    return kTwoPi / (mean_motion_ + argp_rate_);
}

StateEci
J2Propagator::stateAt(double t) const
{
    const double a = elements_.semi_major_axis;
    const double e = elements_.eccentricity;
    const double i = elements_.inclination;

    const double mean_anom =
        util::wrapTwoPi(elements_.mean_anomaly + mean_motion_ * t);
    const double raan = util::wrapTwoPi(elements_.raan + raan_rate_ * t);
    const double argp =
        util::wrapTwoPi(elements_.arg_perigee + argp_rate_ * t);

    const double e_anom = solveKepler(mean_anom, e);
    const double cos_e = std::cos(e_anom);
    const double sin_e = std::sin(e_anom);
    const double eta = std::sqrt(1.0 - e * e);

    // Perifocal coordinates.
    const double x_pf = a * (cos_e - e);
    const double y_pf = a * eta * sin_e;
    const double e_anom_rate = mean_motion_ / (1.0 - e * cos_e);
    const double vx_pf = -a * sin_e * e_anom_rate;
    const double vy_pf = a * eta * cos_e * e_anom_rate;

    // Rotate perifocal -> ECI: Rz(raan) * Rx(i) * Rz(argp).
    const double cr = std::cos(raan);
    const double sr = std::sin(raan);
    const double ci = std::cos(i);
    const double si = std::sin(i);
    const double ca = std::cos(argp);
    const double sa = std::sin(argp);

    const double r11 = cr * ca - sr * sa * ci;
    const double r12 = -cr * sa - sr * ca * ci;
    const double r21 = sr * ca + cr * sa * ci;
    const double r22 = -sr * sa + cr * ca * ci;
    const double r31 = sa * si;
    const double r32 = ca * si;

    StateEci state;
    state.position = {r11 * x_pf + r12 * y_pf, r21 * x_pf + r22 * y_pf,
                      r31 * x_pf + r32 * y_pf};
    state.velocity = {r11 * vx_pf + r12 * vy_pf, r21 * vx_pf + r22 * vy_pf,
                      r31 * vx_pf + r32 * vy_pf};
    return state;
}

Vec3
J2Propagator::positionEcef(double t) const
{
    return eciToEcef(stateAt(t).position, t);
}

Geodetic
J2Propagator::subsatellitePoint(double t) const
{
    return ecefToGeodetic(positionEcef(t));
}

double
J2Propagator::groundTrackSpeed() const
{
    // Arc traced on the spherical Earth per nodal period, ignoring the
    // small along-track contribution of Earth rotation (it is mostly
    // cross-track for near-polar orbits).
    return kTwoPi * kEarthRadius / nodalPeriod();
}

} // namespace kodan::orbit
