/**
 * @file
 * Sun direction and illumination model.
 *
 * Earth-observation imagers only produce useful data over daylit ground;
 * sun-synchronous orbits exist precisely to keep the descending node at
 * a constant local solar time. This model provides the sun direction in
 * ECI, solar elevation at a ground point, and satellite eclipse state at
 * the fidelity of a circular ecliptic sun (adequate for constellation
 * studies).
 */

#ifndef KODAN_ORBIT_SUN_HPP
#define KODAN_ORBIT_SUN_HPP

#include "orbit/earth.hpp"
#include "orbit/vec3.hpp"

namespace kodan::orbit {

/** Obliquity of the ecliptic (rad). */
inline constexpr double kObliquity = 0.40909;

/**
 * Unit vector from Earth toward the Sun in ECI at simulation time t.
 *
 * The Sun moves along a circular ecliptic with a period of one tropical
 * year; at t = 0 it lies at the vernal equinox direction (+X).
 *
 * @param t Seconds since epoch.
 */
Vec3 sunDirectionEci(double t);

/**
 * Solar elevation angle at a geodetic ground point (rad); positive when
 * the Sun is above the local horizon.
 *
 * @param point Ground location.
 * @param t Seconds since epoch.
 */
double solarElevation(const Geodetic &point, double t);

/**
 * True when the ground point is daylit (solar elevation above
 * @p min_elevation, default ~ -0.8 deg accounting for refraction).
 */
bool isDaylit(const Geodetic &point, double t,
              double min_elevation = -0.014);

/**
 * True when a satellite at ECI position @p sat_eci is inside Earth's
 * cylindrical shadow at time t (umbra approximation).
 */
bool inEclipse(const Vec3 &sat_eci, double t);

/**
 * Mean local solar time (hours, [0, 24)) at a ground point: the
 * hour-angle of the mean sun offset to local longitude. Used to verify
 * sun-synchronous geometry (Landsat 8 crosses the equator descending at
 * ~10:11 local time).
 */
double localSolarTime(const Geodetic &point, double t);

} // namespace kodan::orbit

#endif // KODAN_ORBIT_SUN_HPP
