/**
 * @file
 * Keplerian + J2 secular orbit propagator.
 *
 * Two-body motion with the secular effects of Earth's oblateness (nodal
 * regression, apsidal rotation, mean-anomaly drift). This is the fidelity
 * level the cote simulator uses for constellation studies: it captures
 * sun-synchronous geometry, ground-track progression, and contact timing
 * without numerical integration.
 */

#ifndef KODAN_ORBIT_PROPAGATOR_HPP
#define KODAN_ORBIT_PROPAGATOR_HPP

#include "orbit/earth.hpp"
#include "orbit/elements.hpp"
#include "orbit/vec3.hpp"

namespace kodan::orbit {

/** Inertial position/velocity sample. */
struct StateEci
{
    /** Position (m, ECI). */
    Vec3 position;
    /** Velocity (m/s, ECI). */
    Vec3 velocity;
};

/**
 * Propagates one satellite from its epoch elements.
 *
 * Thread-compatible: propagation is const and stateless beyond the
 * precomputed secular rates.
 */
class J2Propagator
{
  public:
    /** @param elements Epoch (t = 0) classical elements. */
    explicit J2Propagator(const OrbitalElements &elements);

    /** Epoch elements this propagator was built from. */
    const OrbitalElements &elements() const { return elements_; }

    /** Secular RAAN rate (rad/s); negative for prograde orbits. */
    double raanRate() const { return raan_rate_; }

    /** Secular argument-of-perigee rate (rad/s). */
    double argPerigeeRate() const { return argp_rate_; }

    /** Perturbed mean motion (rad/s). */
    double meanMotion() const { return mean_motion_; }

    /** Nodal period (time between ascending-node crossings), seconds. */
    double nodalPeriod() const;

    /** Inertial state at simulation time t (seconds since epoch). */
    StateEci stateAt(double t) const;

    /** ECEF position at time t (convenience). */
    Vec3 positionEcef(double t) const;

    /** Subsatellite geodetic point at time t (altitude = orbit height). */
    Geodetic subsatellitePoint(double t) const;

    /**
     * Ground-track speed of the subsatellite point (m/s), computed for the
     * orbit's nodal period over the spherical Earth. Determines the frame
     * capture cadence for a pushbroom imager.
     */
    double groundTrackSpeed() const;

  private:
    OrbitalElements elements_;
    double mean_motion_; // rad/s, J2-corrected
    double raan_rate_;   // rad/s
    double argp_rate_;   // rad/s
};

} // namespace kodan::orbit

#endif // KODAN_ORBIT_PROPAGATOR_HPP
