#include "orbit/earth.hpp"

#include <cmath>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace kodan::orbit {

using util::kEarthOmega;
using util::kEarthRadius;

double
gmst(double t)
{
    return util::wrapTwoPi(kEarthOmega * t);
}

Vec3
eciToEcef(const Vec3 &eci, double t)
{
    const double theta = gmst(t);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    // Rotate by -theta about +Z: ECEF = Rz(-theta) * ECI.
    return {c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
}

Vec3
ecefToEci(const Vec3 &ecef, double t)
{
    const double theta = gmst(t);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {c * ecef.x - s * ecef.y, s * ecef.x + c * ecef.y, ecef.z};
}

Geodetic
ecefToGeodetic(const Vec3 &ecef)
{
    const double a = kEarthRadius;
    const double f = kWgs84Flattening;
    const double e2 = f * (2.0 - f);

    const double lon = std::atan2(ecef.y, ecef.x);
    const double p = std::sqrt(ecef.x * ecef.x + ecef.y * ecef.y);

    // Iterate latitude; converges quickly for LEO altitudes.
    double lat = std::atan2(ecef.z, p * (1.0 - e2));
    double alt = 0.0;
    for (int iter = 0; iter < 8; ++iter) {
        const double sin_lat = std::sin(lat);
        const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
        alt = p / std::cos(lat) - n;
        lat = std::atan2(ecef.z, p * (1.0 - e2 * n / (n + alt)));
    }
    return {lat, util::wrapPi(lon), alt};
}

Vec3
geodeticToEcef(const Geodetic &geo)
{
    const double a = kEarthRadius;
    const double f = kWgs84Flattening;
    const double e2 = f * (2.0 - f);
    const double sin_lat = std::sin(geo.latitude);
    const double cos_lat = std::cos(geo.latitude);
    const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
    return {(n + geo.altitude) * cos_lat * std::cos(geo.longitude),
            (n + geo.altitude) * cos_lat * std::sin(geo.longitude),
            (n * (1.0 - e2) + geo.altitude) * sin_lat};
}

double
greatCircleAngle(const Geodetic &a, const Geodetic &b)
{
    const double s =
        std::sin(a.latitude) * std::sin(b.latitude) +
        std::cos(a.latitude) * std::cos(b.latitude) *
            std::cos(a.longitude - b.longitude);
    return std::acos(util::clamp(s, -1.0, 1.0));
}

double
elevationAngle(const Vec3 &site_ecef, const Vec3 &target_ecef)
{
    const Vec3 to_target = target_ecef - site_ecef;
    // Local "up" approximated by the geocentric direction; error is below
    // 0.2 deg at LEO geometry, well inside the elevation-mask margin.
    const Vec3 up = site_ecef.normalized();
    const double sin_elev = up.dot(to_target) / to_target.norm();
    return std::asin(util::clamp(sin_elev, -1.0, 1.0));
}

} // namespace kodan::orbit
