#include "orbit/elements.hpp"

#include <cassert>
#include <cmath>

#include "util/units.hpp"

namespace kodan::orbit {

using util::kEarthJ2;
using util::kEarthMu;
using util::kEarthRadius;
using util::kTwoPi;

double
OrbitalElements::meanMotion() const
{
    assert(semi_major_axis > 0.0);
    return std::sqrt(kEarthMu /
                     (semi_major_axis * semi_major_axis * semi_major_axis));
}

double
OrbitalElements::period() const
{
    return kTwoPi / meanMotion();
}

OrbitalElements
OrbitalElements::circularLeo(double altitude_m, double inclination_rad,
                             double raan_rad, double mean_anomaly_rad)
{
    OrbitalElements elems;
    elems.semi_major_axis = kEarthRadius + altitude_m;
    elems.eccentricity = 0.0;
    elems.inclination = inclination_rad;
    elems.raan = raan_rad;
    elems.arg_perigee = 0.0;
    elems.mean_anomaly = mean_anomaly_rad;
    return elems;
}

OrbitalElements
OrbitalElements::landsat8(double raan_rad, double mean_anomaly_rad)
{
    const double altitude = 705.0e3;
    return circularLeo(altitude, sunSynchronousInclination(altitude),
                       raan_rad, mean_anomaly_rad);
}

double
sunSynchronousInclination(double altitude_m)
{
    // Required nodal precession: one revolution per tropical year.
    const double year_s = 365.2422 * util::kSecondsPerDay;
    const double target_rate = kTwoPi / year_s; // rad/s, eastward

    const double a = kEarthRadius + altitude_m;
    const double n = std::sqrt(kEarthMu / (a * a * a));
    const double p = a; // circular orbit: semi-latus rectum == a
    // raan_rate = -1.5 * n * J2 * (Re/p)^2 * cos(i)  =>  solve for i.
    const double coeff =
        -1.5 * n * kEarthJ2 * (kEarthRadius / p) * (kEarthRadius / p);
    const double cos_i = target_rate / coeff;
    assert(cos_i >= -1.0 && cos_i <= 1.0);
    return std::acos(cos_i);
}

std::vector<OrbitalElements>
walkerConstellation(int total, int planes, int phasing,
                    double altitude_m, double inclination_rad)
{
    assert(planes >= 1);
    assert(total >= planes && total % planes == 0);
    assert(phasing >= 0 && phasing < planes);

    const int per_plane = total / planes;
    std::vector<OrbitalElements> constellation;
    constellation.reserve(total);
    for (int p = 0; p < planes; ++p) {
        const double raan = kTwoPi * p / planes;
        for (int s = 0; s < per_plane; ++s) {
            const double mean_anomaly = util::wrapTwoPi(
                kTwoPi * s / per_plane +
                kTwoPi * phasing * p / total);
            constellation.push_back(OrbitalElements::circularLeo(
                altitude_m, inclination_rad, raan, mean_anomaly));
        }
    }
    return constellation;
}

std::vector<OrbitalElements>
sunSynchronousConstellation(int total, int planes, int phasing,
                            double altitude_m)
{
    return walkerConstellation(total, planes, phasing, altitude_m,
                               sunSynchronousInclination(altitude_m));
}

double
solveKepler(double mean_anomaly, double eccentricity)
{
    assert(eccentricity >= 0.0 && eccentricity < 1.0);
    const double m = util::wrapTwoPi(mean_anomaly);
    // Starting guess: E = M works well for small e.
    double e_anom = eccentricity < 0.8 ? m : util::kPi;
    for (int iter = 0; iter < 32; ++iter) {
        const double f = e_anom - eccentricity * std::sin(e_anom) - m;
        const double fp = 1.0 - eccentricity * std::cos(e_anom);
        const double step = f / fp;
        e_anom -= step;
        if (std::fabs(step) < 1.0e-13) {
            break;
        }
    }
    return util::wrapTwoPi(e_anom);
}

} // namespace kodan::orbit
