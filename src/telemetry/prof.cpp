#include "telemetry/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include <signal.h>
#include <time.h>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sys/syscall.h>
#include <unistd.h>
#define KODAN_PROF_HAVE_SAMPLER 1
#else
#define KODAN_PROF_HAVE_SAMPLER 0
#endif

#if defined(__SANITIZE_THREAD__)
#define KODAN_PROF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KODAN_PROF_TSAN 1
#endif
#endif
#ifndef KODAN_PROF_TSAN
#define KODAN_PROF_TSAN 0
#endif

#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

#include "telemetry/export.hpp"
#include "telemetry/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace kodan::telemetry::prof {

namespace {

/**
 * Per-thread sample storage: a flat word array of [depth, pc...]
 * records. Single writer (the owning thread, from signal context),
 * readers snapshot up to the release-stored `used` watermark, so a
 * record is visible only after all its words are. Drop-newest on
 * overflow with a counter.
 */
struct SampleRing
{
    std::vector<std::uintptr_t> words;
    std::atomic<std::size_t> used{0};
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> dropped{0};
};

struct ThreadRec
{
    long tid = 0;
#if KODAN_PROF_HAVE_SAMPLER
    timer_t timer{};
#endif
    bool timer_ok = false;
    bool timer_armed = false;
    std::unique_ptr<SampleRing> ring;
};

std::mutex g_threads_mutex;
/** Owns every registered thread's state; rings are never freed so
 *  exited threads' samples stay collectable (same model as the trace
 *  rings). Leaked on purpose so the atexit exporter can still collect
 *  after static destruction begins. Guarded by g_threads_mutex. */
std::vector<std::unique_ptr<ThreadRec>> &
threadRecs()
{
    static auto *recs = new std::vector<std::unique_ptr<ThreadRec>>();
    return *recs;
}

std::atomic<bool> g_sampling{false};
std::atomic<bool> g_handler_installed{false};
std::atomic<int> g_period_us{1003};
std::atomic<int> g_max_depth{64};
std::atomic<std::size_t> g_ring_words{std::size_t{1} << 17};
std::atomic<std::uint64_t> g_unregistered_hits{0};

std::atomic<bool> g_prof_enabled{false};
std::atomic<int> g_hz_override{0};
std::mutex g_path_mutex;
std::string g_profile_path; // guarded by g_path_mutex

thread_local SampleRing *t_ring = nullptr;
thread_local ThreadRec *t_rec = nullptr;

#if KODAN_PROF_HAVE_SAMPLER

/** SIGPROF handler: signal-safe by construction — a backtrace() into a
 *  stack buffer (primed at startSampler), relaxed/release atomics on a
 *  pre-allocated ring, errno save/restore. Nothing else. */
void
samplerHandler(int /*signo*/, siginfo_t * /*info*/, void * /*ctx*/)
{
    const int saved_errno = errno;
    SampleRing *ring = t_ring;
    if (ring == nullptr) {
        // A queued signal can outlive its thread's unregistration.
        g_unregistered_hits.fetch_add(1, std::memory_order_relaxed);
        errno = saved_errno;
        return;
    }
    if (g_sampling.load(std::memory_order_relaxed)) {
        // +2: the two leading frames are this handler and the kernel's
        // signal trampoline; skip them so stacks start at the
        // interrupted frame.
        constexpr int kSkip = 2;
        void *frames[256];
        const int limit = std::min(
            g_max_depth.load(std::memory_order_relaxed) + kSkip, 256);
        int depth = ::backtrace(frames, limit);
        int skip = depth > kSkip ? kSkip : 0;
        const std::size_t need =
            static_cast<std::size_t>(depth - skip) + 1;
        const std::size_t used =
            ring->used.load(std::memory_order_relaxed);
        if (depth <= skip || used + need > ring->words.size()) {
            ring->dropped.fetch_add(1, std::memory_order_relaxed);
        } else {
            ring->words[used] =
                static_cast<std::uintptr_t>(depth - skip);
            for (int i = skip; i < depth; ++i) {
                ring->words[used + 1 +
                            static_cast<std::size_t>(i - skip)] =
                    reinterpret_cast<std::uintptr_t>(frames[i]);
            }
            ring->used.store(used + need, std::memory_order_release);
            ring->samples.fetch_add(1, std::memory_order_relaxed);
        }
    }
    errno = saved_errno;
}

void
setTimer(ThreadRec *rec, int period_us)
{
    if (!rec->timer_ok) {
        return;
    }
    itimerspec spec{};
    const long ns = static_cast<long>(period_us) * 1000L;
    spec.it_interval.tv_sec = ns / 1000000000L;
    spec.it_interval.tv_nsec = ns % 1000000000L;
    spec.it_value = spec.it_interval;
    timer_settime(rec->timer, 0, &spec, nullptr);
    rec->timer_armed = period_us != 0;
}

void
disarmTimer(ThreadRec *rec)
{
    if (!rec->timer_ok || !rec->timer_armed) {
        return;
    }
    itimerspec spec{};
    timer_settime(rec->timer, 0, &spec, nullptr);
    rec->timer_armed = false;
}

#endif // KODAN_PROF_HAVE_SAMPLER

/** Deletes the thread's timer at thread exit; the ring stays behind in
 *  threadRecs() so its samples remain collectable. */
struct ThreadExitGuard
{
    ~ThreadExitGuard()
    {
#if KODAN_PROF_HAVE_SAMPLER
        std::lock_guard<std::mutex> lock(g_threads_mutex);
        if (t_rec != nullptr && t_rec->timer_ok) {
            timer_delete(t_rec->timer);
            t_rec->timer_ok = false;
            t_rec->timer_armed = false;
        }
#endif
        // Clear the handler's view last: a still-queued SIGPROF after
        // timer_delete lands as an unregistered hit, not a ring push.
        t_ring = nullptr;
        t_rec = nullptr;
    }
};

void
workerStartHook()
{
    if (profilingEnabled()) {
        registerThisThread();
    }
}

/** foo.json -> foo<suffix>; anything else gets <suffix> appended. */
std::string
siblingPathFor(const std::string &path, const char *sibling)
{
    const std::string suffix = ".json";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        return path.substr(0, path.size() - suffix.size()) + sibling;
    }
    return path + sibling;
}

#if KODAN_PROF_HAVE_SAMPLER

/** Return-address -> display name. backtrace() records the address
 *  after the call, so look up pc-1 to land inside the call site. ';'
 *  is the folded-stack separator, so it is scrubbed from names. */
std::string
symbolizePc(std::uintptr_t pc)
{
    std::string name;
    Dl_info info{};
    const void *lookup = reinterpret_cast<const void *>(pc - 1);
    if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
        int status = -1;
        char *demangled = abi::__cxa_demangle(info.dli_sname, nullptr,
                                              nullptr, &status);
        if (status == 0 && demangled != nullptr) {
            name = demangled;
        } else {
            name = info.dli_sname;
        }
        std::free(demangled);
    } else if (info.dli_fname != nullptr) {
        const char *base = std::strrchr(info.dli_fname, '/');
        std::ostringstream os;
        os << (base != nullptr ? base + 1 : info.dli_fname) << "+0x"
           << std::hex
           << (pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase));
        name = os.str();
    } else {
        std::ostringstream os;
        os << "0x" << std::hex << pc;
        name = os.str();
    }
    std::replace(name.begin(), name.end(), ';', ':');
    return name;
}

#endif // KODAN_PROF_HAVE_SAMPLER

} // namespace

bool
samplerSupported()
{
#if KODAN_PROF_HAVE_SAMPLER && !KODAN_PROF_TSAN
    return true;
#else
    return false;
#endif
}

bool
samplingActive()
{
    return g_sampling.load(std::memory_order_relaxed);
}

void
registerThisThread()
{
#if KODAN_PROF_HAVE_SAMPLER
    if (!samplerSupported() || t_ring != nullptr) {
        return;
    }
    auto rec = std::make_unique<ThreadRec>();
    rec->tid = static_cast<long>(syscall(SYS_gettid));
    rec->ring = std::make_unique<SampleRing>();
    rec->ring->words.assign(
        g_ring_words.load(std::memory_order_relaxed), 0);

    sigevent sev{};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = static_cast<pid_t>(rec->tid);
    rec->timer_ok =
        timer_create(CLOCK_MONOTONIC, &sev, &rec->timer) == 0;

    ThreadRec *raw = nullptr;
    {
        std::lock_guard<std::mutex> lock(g_threads_mutex);
        threadRecs().push_back(std::move(rec));
        raw = threadRecs().back().get();
        t_rec = raw;
        t_ring = raw->ring.get();
        if (g_sampling.load(std::memory_order_relaxed)) {
            setTimer(raw, g_period_us.load(std::memory_order_relaxed));
        }
    }
    thread_local ThreadExitGuard guard;
    (void)guard;
#endif
}

bool
startSampler(const SamplerOptions &options)
{
    if (!samplerSupported()) {
        return false;
    }
#if KODAN_PROF_HAVE_SAMPLER
    if (g_sampling.load(std::memory_order_relaxed)) {
        return true;
    }
    const int hz = options.hz > 0 ? options.hz : 997;
    g_period_us.store(std::max(1, 1000000 / hz),
                      std::memory_order_relaxed);
    g_max_depth.store(std::clamp(options.max_depth, 4, 250),
                      std::memory_order_relaxed);
    g_ring_words.store(std::max<std::size_t>(options.ring_words, 1024),
                       std::memory_order_relaxed);

    // Prime libgcc's unwinder (first backtrace() may allocate) outside
    // signal context, once, before any handler can run.
    {
        void *prime[4];
        ::backtrace(prime, 4);
    }
    if (!g_handler_installed.exchange(true)) {
        struct sigaction sa{};
        sa.sa_sigaction = &samplerHandler;
        sa.sa_flags = SA_SIGINFO | SA_RESTART;
        sigemptyset(&sa.sa_mask);
        if (sigaction(SIGPROF, &sa, nullptr) != 0) {
            g_handler_installed.store(false);
            return false;
        }
    }
    registerThisThread();
    g_sampling.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(g_threads_mutex);
        for (auto &rec : threadRecs()) {
            if (rec->timer_ok && !rec->timer_armed) {
                setTimer(rec.get(),
                         g_period_us.load(std::memory_order_relaxed));
            }
        }
    }
    return true;
#else
    return false;
#endif
}

void
stopSampler()
{
#if KODAN_PROF_HAVE_SAMPLER
    if (!g_sampling.exchange(false, std::memory_order_relaxed)) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_threads_mutex);
    for (auto &rec : threadRecs()) {
        disarmTimer(rec.get());
    }
#endif
}

ProfileSnapshot
snapshotProfile()
{
    ProfileSnapshot snapshot;
    snapshot.period_us = g_period_us.load(std::memory_order_relaxed);
    snapshot.unregistered_hits =
        g_unregistered_hits.load(std::memory_order_relaxed);
#if KODAN_PROF_HAVE_SAMPLER
    // Aggregate identical pc stacks first so each unique pc is
    // symbolized once.
    std::map<std::vector<std::uintptr_t>, std::uint64_t> pc_stacks;
    {
        std::lock_guard<std::mutex> lock(g_threads_mutex);
        snapshot.threads = threadRecs().size();
        for (const auto &rec : threadRecs()) {
            const SampleRing &ring = *rec->ring;
            snapshot.samples +=
                ring.samples.load(std::memory_order_relaxed);
            snapshot.dropped +=
                ring.dropped.load(std::memory_order_relaxed);
            const std::size_t used =
                ring.used.load(std::memory_order_acquire);
            std::size_t idx = 0;
            while (idx < used) {
                const std::size_t depth =
                    static_cast<std::size_t>(ring.words[idx]);
                if (depth == 0 || idx + 1 + depth > used) {
                    break;
                }
                std::vector<std::uintptr_t> stack(
                    ring.words.begin() +
                        static_cast<std::ptrdiff_t>(idx + 1),
                    ring.words.begin() +
                        static_cast<std::ptrdiff_t>(idx + 1 + depth));
                ++pc_stacks[std::move(stack)];
                idx += 1 + depth;
            }
        }
    }

    std::map<std::uintptr_t, std::string> symbols;
    std::map<std::string, FrameStat> frames;
    for (const auto &[pcs, count] : pc_stacks) {
        ProfileStack stack;
        stack.count = count;
        // The ring stores leaf-first (backtrace order); folded stacks
        // and the frame table want root-first.
        stack.frames.reserve(pcs.size());
        for (auto it = pcs.rbegin(); it != pcs.rend(); ++it) {
            auto cached = symbols.find(*it);
            if (cached == symbols.end()) {
                cached =
                    symbols.emplace(*it, symbolizePc(*it)).first;
            }
            stack.frames.push_back(cached->second);
        }
        std::set<std::string> seen;
        for (const std::string &frame : stack.frames) {
            if (seen.insert(frame).second) {
                frames[frame].total += count;
            }
        }
        frames[stack.frames.back()].self += count;
        snapshot.stacks.push_back(std::move(stack));
    }
    std::sort(snapshot.stacks.begin(), snapshot.stacks.end(),
              [](const ProfileStack &a, const ProfileStack &b) {
                  return a.frames < b.frames;
              });
    snapshot.frames.reserve(frames.size());
    for (auto &[name, stat] : frames) {
        stat.name = name;
        snapshot.frames.push_back(std::move(stat));
    }
    std::sort(snapshot.frames.begin(), snapshot.frames.end(),
              [](const FrameStat &a, const FrameStat &b) {
                  if (a.self != b.self) {
                      return a.self > b.self;
                  }
                  return a.name < b.name;
              });
#endif
    return snapshot;
}

void
resetProfile()
{
    std::lock_guard<std::mutex> lock(g_threads_mutex);
    for (auto &rec : threadRecs()) {
        SampleRing &ring = *rec->ring;
        ring.used.store(0, std::memory_order_relaxed);
        ring.samples.store(0, std::memory_order_relaxed);
        ring.dropped.store(0, std::memory_order_relaxed);
    }
    g_unregistered_hits.store(0, std::memory_order_relaxed);
}

void
writeFolded(const ProfileSnapshot &snapshot, std::ostream &os)
{
    for (const ProfileStack &stack : snapshot.stacks) {
        for (std::size_t i = 0; i < stack.frames.size(); ++i) {
            if (i != 0) {
                os << ';';
            }
            os << stack.frames[i];
        }
        os << ' ' << stack.count << '\n';
    }
}

void
writeProfileJson(const ProfileSnapshot &snapshot, std::ostream &os,
                 std::size_t top_frames)
{
    const SpanTableSnapshot spans = spanTableSnapshot();
    os << "{\"kodan_profile\": 1, \"period_us\": "
       << snapshot.period_us << ", \"samples\": " << snapshot.samples
       << ", \"dropped\": " << snapshot.dropped
       << ", \"unregistered_hits\": " << snapshot.unregistered_hits
       << ", \"threads\": " << snapshot.threads << ",\n \"frames\": [";
    const std::size_t count =
        std::min(top_frames, snapshot.frames.size());
    for (std::size_t i = 0; i < count; ++i) {
        const FrameStat &frame = snapshot.frames[i];
        if (i != 0) {
            os << ',';
        }
        os << "\n  {\"name\": \"" << jsonEscape(frame.name)
           << "\", \"self\": " << frame.self
           << ", \"total\": " << frame.total << "}";
    }
    os << "\n ],\n \"spans\": {\"source\": \""
       << jsonEscape(spans.source) << "\", \"rows\": [";
    for (std::size_t i = 0; i < spans.rows.size(); ++i) {
        const SpanCounterRow &row = spans.rows[i];
        if (i != 0) {
            os << ',';
        }
        os << "\n  {\"name\": \"" << jsonEscape(row.name)
           << "\", \"calls\": " << row.calls
           << ", \"cycles\": " << row.cycles
           << ", \"instructions\": " << row.instructions
           << ", \"llc_misses\": " << row.llc_misses
           << ", \"branch_misses\": " << row.branch_misses
           << ", \"task_clock_ns\": " << row.task_clock_ns << "}";
    }
    os << "\n ]}}\n";
}

bool
profilingEnabled()
{
    return g_prof_enabled.load(std::memory_order_relaxed);
}

void
setProfilingEnabled(bool on)
{
    if (on == profilingEnabled()) {
        return;
    }
    if (on) {
        g_prof_enabled.store(true, std::memory_order_relaxed);
        util::setWorkerStartHook(&workerStartHook);
        setCountersEnabled(true);
        if (samplerSupported()) {
            SamplerOptions options;
            const int hz =
                g_hz_override.load(std::memory_order_relaxed);
            if (hz > 0) {
                options.hz = hz;
            }
            startSampler(options);
        }
    } else {
        stopSampler();
        setCountersEnabled(false);
        g_prof_enabled.store(false, std::memory_order_relaxed);
    }
}

std::string
profileOutputPath()
{
    std::lock_guard<std::mutex> lock(g_path_mutex);
    return g_profile_path;
}

void
setProfileOutputPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_path_mutex);
    g_profile_path = path;
}

bool
configureFromEnv()
{
    if (const char *hz = std::getenv("KODAN_PROF_HZ")) {
        const int value = std::atoi(hz);
        if (value > 0) {
            g_hz_override.store(value, std::memory_order_relaxed);
        }
    }
    const char *env = std::getenv("KODAN_PROF");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "false") == 0 || std::strcmp(env, "off") == 0) {
        return profilingEnabled();
    }
    if (std::strcmp(env, "1") != 0 && std::strcmp(env, "true") != 0 &&
        std::strcmp(env, "on") != 0) {
        // Path-like value doubles as the output path (KODAN_ALERTS
        // convention).
        setProfileOutputPath(env);
    }
    setProfilingEnabled(true);
    return true;
}

void
writeProfileOutputs()
{
    const ProfileSnapshot snapshot = snapshotProfile();
    const std::string path = profileOutputPath();
    if (path.empty()) {
        std::cerr << "[kodan-prof] " << snapshot.samples
                  << " sample(s) across " << snapshot.threads
                  << " thread(s), " << snapshot.dropped
                  << " dropped; counters: " << counterSourceName()
                  << " (set --profile-out <path> for the JSON + "
                     "folded stacks)\n";
        const std::size_t top =
            std::min<std::size_t>(5, snapshot.frames.size());
        for (std::size_t i = 0; i < top; ++i) {
            std::cerr << "[kodan-prof]   self=" << snapshot.frames[i].self
                      << " total=" << snapshot.frames[i].total << "  "
                      << snapshot.frames[i].name << "\n";
        }
        return;
    }
    std::ofstream profile_file(path);
    if (!profile_file) {
        std::cerr << "[kodan-prof] cannot write " << path << "\n";
    } else {
        writeProfileJson(snapshot, profile_file);
        std::cerr << "[kodan-prof] wrote profile (" << snapshot.samples
                  << " samples, counters: " << counterSourceName()
                  << ") to " << path << "\n";
    }
    const std::string folded_path = siblingPathFor(path, ".folded");
    std::ofstream folded_file(folded_path);
    if (!folded_file) {
        std::cerr << "[kodan-prof] cannot write " << folded_path
                  << "\n";
    } else {
        writeFolded(snapshot, folded_file);
        std::cerr << "[kodan-prof] wrote " << snapshot.stacks.size()
                  << " folded stack(s) to " << folded_path << "\n";
    }
}

} // namespace kodan::telemetry::prof
