/**
 * @file
 * Snapshot exporters: metrics as JSON or as the repo's fixed-width
 * `util::table` text format, and traces as Chrome `trace_event` JSON.
 */

#ifndef KODAN_TELEMETRY_EXPORT_HPP
#define KODAN_TELEMETRY_EXPORT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace kodan::telemetry {

/**
 * Quantile estimate from fixed-bucket histogram counts: finds the
 * bucket containing rank q * count and interpolates linearly within its
 * edge span. Bucket 0 spans [min(0, edges[0]), edges[0]]; the overflow
 * bucket clamps to the last edge (the histogram records no upper
 * bound). Returns 0 for an empty histogram. Derived purely from the
 * deterministic bucket counts, so the estimate is thread-count
 * invariant like every other integer reading.
 *
 * @param edges Bucket upper bounds (as registered).
 * @param buckets Per-bucket counts (edges.size() + 1 entries).
 * @param q Quantile in [0, 1] (0.5 = p50).
 */
double histogramQuantile(const std::vector<double> &edges,
                         const std::vector<std::int64_t> &buckets,
                         double q);

/** Write a metrics snapshot as a JSON document. Histogram entries carry
 *  p50/p95/p99 estimates (see histogramQuantile). */
void writeMetricsJson(const RegistrySnapshot &snapshot, std::ostream &os);

/** Write a metrics snapshot as an aligned text table. */
void writeMetricsTable(const RegistrySnapshot &snapshot, std::ostream &os);

/**
 * Write a metrics snapshot in the Prometheus text exposition format
 * (metric names prefixed `kodan_`, dots mangled to underscores).
 * Counters/gauges map directly; histograms emit cumulative `_bucket`
 * series plus `_sum`/`_count`; timers emit a summary-style
 * `_seconds_count`/`_seconds_sum` pair and a `_seconds_max` gauge.
 */
void writePrometheusText(const RegistrySnapshot &snapshot,
                         std::ostream &os);

/**
 * Write events as a Chrome trace_event JSON document ("X" complete
 * events; instant events as "i"). @p dropped is reported in the trace
 * metadata.
 */
void writeChromeTrace(const std::vector<TraceEvent> &events,
                      std::uint64_t dropped, std::ostream &os);

/** JSON string escaping (exposed for the exporter tests). */
std::string jsonEscape(const std::string &text);

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_EXPORT_HPP
