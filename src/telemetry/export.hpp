/**
 * @file
 * Snapshot exporters: metrics as JSON or as the repo's fixed-width
 * `util::table` text format, and traces as Chrome `trace_event` JSON.
 */

#ifndef KODAN_TELEMETRY_EXPORT_HPP
#define KODAN_TELEMETRY_EXPORT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace kodan::telemetry {

/** Write a metrics snapshot as a JSON document. */
void writeMetricsJson(const RegistrySnapshot &snapshot, std::ostream &os);

/** Write a metrics snapshot as an aligned text table. */
void writeMetricsTable(const RegistrySnapshot &snapshot, std::ostream &os);

/**
 * Write events as a Chrome trace_event JSON document ("X" complete
 * events; instant events as "i"). @p dropped is reported in the trace
 * metadata.
 */
void writeChromeTrace(const std::vector<TraceEvent> &events,
                      std::uint64_t dropped, std::ostream &os);

/** JSON string escaping (exposed for the exporter tests). */
std::string jsonEscape(const std::string &text);

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_EXPORT_HPP
