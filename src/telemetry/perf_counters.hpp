/**
 * @file
 * kodan::telemetry::prof — per-span hardware counter attribution.
 *
 * Every `KODAN_TRACE_SCOPE` site can charge the CPU cost of its scope
 * (cycles, instructions, LLC misses, branch misses, task-clock) to a
 * named span row. Counters come from a per-thread `perf_event_open`
 * group when the kernel allows self-profiling; when it does not
 * (containers, CI, locked-down perf_event_paranoid), the reader falls
 * back to software counters (CLOCK_THREAD_CPUTIME_ID) and the exported
 * table is marked `source: "rusage"` so downstream diffs know the
 * hardware columns are absent rather than zero.
 *
 * Determinism contract: span counter state lives entirely outside the
 * metrics registry, the journal, and the time series — enabling it
 * never changes a byte of those outputs (bench_prof --verify). Span
 * *call counts* are exact sharded integer sums and are deterministic at
 * any KODAN_THREADS; the counter columns read real hardware and are
 * not.
 *
 * Overhead: one relaxed atomic load per site while disabled (the macro
 * passes a null site); one group `read(2)` (or two `clock_gettime`
 * calls in fallback) per scope entry/exit while enabled.
 */

#ifndef KODAN_TELEMETRY_PERF_COUNTERS_HPP
#define KODAN_TELEMETRY_PERF_COUNTERS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace kodan::telemetry::prof {

/** Where counter values come from (process-wide, resolved on the first
 *  thread to read). */
enum class CounterSource
{
    /** Not yet resolved: no thread has read counters. */
    Unresolved,
    /** perf_event_open hardware group (all five columns live). */
    PerfEvent,
    /** Software fallback: thread CPU clock only; hardware columns 0. */
    Rusage,
};

/** One point-in-time reading of the calling thread's counters. */
struct CounterReading
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
    /** perf task-clock, or CLOCK_THREAD_CPUTIME_ID in fallback (ns). */
    std::uint64_t task_clock_ns = 0;
};

namespace detail {

/** 0 = off, 1 = on. Relaxed fast path mirror of metrics::g_enabled. */
extern std::atomic<int> g_counters_enabled;

} // namespace detail

/** Is per-span counter attribution on? One relaxed load. */
inline bool
countersEnabled()
{
    return detail::g_counters_enabled.load(std::memory_order_relaxed) !=
           0;
}

/** Turn per-span counter attribution on or off. */
void setCountersEnabled(bool on);

/** Resolved counter source ("perf_event" vs "rusage"); resolving reads
 *  the calling thread's counters once if no thread has yet. */
CounterSource counterSource();

/** "perf_event" / "rusage" / "unresolved". */
const char *counterSourceName();

/**
 * Test hook: force every subsequent perf_event_open attempt to fail
 * with @p err (e.g. ENOSYS, EACCES) so the rusage fallback path is
 * testable on hosts where perf_event works. 0 clears the hook. Only
 * affects threads that have not opened their counters yet, so tests
 * should exercise it from a fresh thread.
 */
void setPerfForceErrnoForTest(int err);

/** errno of the first failed perf_event_open (0 = none failed). */
int perfOpenErrno();

/**
 * Read the calling thread's counters now. Opens the per-thread
 * perf_event group lazily on first use (outside any signal context);
 * falls back to software counters on open failure. Never blocks on a
 * lock after the first call per thread.
 *
 * @return false only if even the fallback clock read failed.
 */
bool readThreadCounters(CounterReading &out);

/**
 * One named span's accumulated counter totals. Writes go to
 * cache-line-padded per-thread shards (same sharding as the metrics
 * registry) so concurrent scopes never contend; totals are exact
 * integer sums merged in shard-index order.
 */
class SpanSite
{
  public:
    /** Charge end - start (saturating at 0 per column) plus one call. */
    void accumulate(const CounterReading &start,
                    const CounterReading &end);

    std::int64_t calls() const;
    CounterReading totals() const;
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::int64_t> calls{0};
        std::atomic<std::uint64_t> cycles{0};
        std::atomic<std::uint64_t> instructions{0};
        std::atomic<std::uint64_t> llc_misses{0};
        std::atomic<std::uint64_t> branch_misses{0};
        std::atomic<std::uint64_t> task_clock_ns{0};
    };

    Shard shards_[kMetricShards];
};

/** Registry lookup, mutex-guarded and idempotent by name; the returned
 *  reference lives for the process (macros cache it per site). */
SpanSite &spanSite(const std::string &name);

/** One exported span row. */
struct SpanCounterRow
{
    std::string name;
    std::int64_t calls = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
    std::uint64_t task_clock_ns = 0;
};

/** The merged span table. */
struct SpanTableSnapshot
{
    /** "perf_event" / "rusage" / "unresolved". */
    std::string source;
    /** Rows sorted by name. */
    std::vector<SpanCounterRow> rows;
};

/** Merged view of every span site, sorted by name. */
SpanTableSnapshot spanTableSnapshot();

/** Zero every span site (registrations persist). */
void resetSpanTable();

/**
 * RAII counter scope feeding a SpanSite. A null site reads nothing —
 * the disabled fast path costs the one relaxed load the macro already
 * paid.
 */
class ScopedSpanCounters
{
  public:
    explicit ScopedSpanCounters(SpanSite *site)
        : site_(site)
    {
        if (site_ != nullptr) {
            ok_ = readThreadCounters(start_);
        }
    }

    ScopedSpanCounters(const ScopedSpanCounters &) = delete;
    ScopedSpanCounters &operator=(const ScopedSpanCounters &) = delete;

    ~ScopedSpanCounters()
    {
        if (site_ != nullptr && ok_) {
            CounterReading end;
            if (readThreadCounters(end)) {
                site_->accumulate(start_, end);
            }
        }
    }

  private:
    SpanSite *site_;
    CounterReading start_{};
    bool ok_ = false;
};

} // namespace kodan::telemetry::prof

#endif // KODAN_TELEMETRY_PERF_COUNTERS_HPP
