#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace kodan::telemetry {

namespace detail {

std::atomic<int> g_enabled{-1};

int
threadShard()
{
    static std::atomic<int> next_thread{0};
    thread_local const int shard =
        next_thread.fetch_add(1, std::memory_order_relaxed) %
        kMetricShards;
    return shard;
}

// Defined in telemetry.cpp (routes util::log Warn+ into the event
// stream); declared here so enable-time wiring stays in one place.
void installLogBridge();

namespace {

bool
envTruthy(const char *value)
{
    return value != nullptr &&
           (std::strcmp(value, "1") == 0 ||
            std::strcmp(value, "true") == 0 ||
            std::strcmp(value, "on") == 0);
}

} // namespace

bool
resolveEnabled()
{
    // Resolve once; a concurrent resolve settles on the same value
    // because the environment does not change under us.
    const bool on = envTruthy(std::getenv("KODAN_TELEMETRY"));
    int expected = -1;
    g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                      std::memory_order_relaxed);
    if (on) {
        installLogBridge();
    }
    return g_enabled.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
    if (on) {
        detail::installLogBridge();
    }
}

std::int64_t
Counter::value() const
{
    std::int64_t total = 0;
    for (const auto &shard : shards_) {
        total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
}

void
Counter::reset()
{
    for (auto &shard : shards_) {
        shard.value.store(0, std::memory_order_relaxed);
    }
}

void
Gauge::set(double value)
{
    // Replace everything recorded so far: clear the accumulation shards
    // and store the new base. A serial-configuration write, not racing
    // concurrent add()s (see the class comment).
    for (auto &shard : shards_) {
        shard.reset();
    }
    base_.store(value, std::memory_order_relaxed);
}

double
Gauge::value() const
{
    detail::Fixed128 total;
    for (const auto &shard : shards_) {
        detail::addFixed(total, shard.read());
    }
    return base_.load(std::memory_order_relaxed) +
           detail::fromFixed(total);
}

void
Gauge::reset()
{
    set(0.0);
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), shards_(kMetricShards)
{
    assert(std::is_sorted(edges_.begin(), edges_.end()));
    for (auto &shard : shards_) {
        shard.buckets =
            std::make_unique<std::atomic<std::int64_t>[]>(edges_.size() +
                                                          1);
    }
}

void
Histogram::record(double value)
{
    // Bucket = first edge strictly greater than the value; values at an
    // edge land in the bucket whose lower bound is that edge.
    const std::size_t bucket = static_cast<std::size_t>(
        std::upper_bound(edges_.begin(), edges_.end(), value) -
        edges_.begin());
    Shard &shard = shards_[static_cast<std::size_t>(
        detail::threadShard())];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.value.fetch_add(1, std::memory_order_relaxed);
    shard.sum.add(value);
}

std::vector<std::int64_t>
Histogram::bucketCounts() const
{
    std::vector<std::int64_t> totals(edges_.size() + 1, 0);
    for (const auto &shard : shards_) {
        for (std::size_t b = 0; b < totals.size(); ++b) {
            totals[b] += shard.buckets[b].load(std::memory_order_relaxed);
        }
    }
    return totals;
}

std::int64_t
Histogram::count() const
{
    std::int64_t total = 0;
    for (const auto &shard : shards_) {
        total += shard.count.value.load(std::memory_order_relaxed);
    }
    return total;
}

double
Histogram::sum() const
{
    detail::Fixed128 total;
    for (const auto &shard : shards_) {
        detail::addFixed(total, shard.sum.read());
    }
    return detail::fromFixed(total);
}

void
Histogram::reset()
{
    for (auto &shard : shards_) {
        for (std::size_t b = 0; b <= edges_.size(); ++b) {
            shard.buckets[b].store(0, std::memory_order_relaxed);
        }
        shard.count.value.store(0, std::memory_order_relaxed);
        shard.sum.reset();
    }
}

void
Timer::record(double seconds)
{
    Shard &shard = shards_[detail::threadShard()];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    double total = shard.total.load(std::memory_order_relaxed);
    while (!shard.total.compare_exchange_weak(
        total, total + seconds, std::memory_order_relaxed)) {
    }
    double max = shard.max.load(std::memory_order_relaxed);
    while (seconds > max &&
           !shard.max.compare_exchange_weak(max, seconds,
                                            std::memory_order_relaxed)) {
    }
}

std::int64_t
Timer::count() const
{
    std::int64_t total = 0;
    for (const auto &shard : shards_) {
        total += shard.count.load(std::memory_order_relaxed);
    }
    return total;
}

double
Timer::totalSeconds() const
{
    double total = 0.0;
    for (const auto &shard : shards_) {
        total += shard.total.load(std::memory_order_relaxed);
    }
    return total;
}

double
Timer::maxSeconds() const
{
    double max = 0.0;
    for (const auto &shard : shards_) {
        max = std::max(max, shard.max.load(std::memory_order_relaxed));
    }
    return max;
}

void
Timer::reset()
{
    for (auto &shard : shards_) {
        shard.count.store(0, std::memory_order_relaxed);
        shard.total.store(0.0, std::memory_order_relaxed);
        shard.max.store(0.0, std::memory_order_relaxed);
    }
}

const MetricSample *
RegistrySnapshot::find(const std::string &name) const
{
    for (const auto &sample : metrics) {
        if (sample.name == name) {
            return &sample;
        }
    }
    return nullptr;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>(std::move(edges));
    }
    return *slot;
}

Timer &
MetricsRegistry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Timer>();
    }
    return *slot;
}

RegistrySnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot snap;
    for (const auto &[name, counter] : counters_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricSample::Kind::Counter;
        sample.count = counter->value();
        snap.metrics.push_back(std::move(sample));
    }
    for (const auto &[name, gauge] : gauges_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricSample::Kind::Gauge;
        sample.sum = gauge->value();
        snap.metrics.push_back(std::move(sample));
    }
    for (const auto &[name, histogram] : histograms_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricSample::Kind::Histogram;
        sample.count = histogram->count();
        sample.sum = histogram->sum();
        sample.edges = histogram->edges();
        sample.buckets = histogram->bucketCounts();
        snap.metrics.push_back(std::move(sample));
    }
    for (const auto &[name, timer] : timers_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = MetricSample::Kind::Timer;
        sample.count = timer->count();
        sample.sum = timer->totalSeconds();
        sample.max = timer->maxSeconds();
        snap.metrics.push_back(std::move(sample));
    }
    std::sort(snap.metrics.begin(), snap.metrics.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_) {
        counter->reset();
    }
    for (auto &[name, gauge] : gauges_) {
        gauge->reset();
    }
    for (auto &[name, histogram] : histograms_) {
        histogram->reset();
    }
    for (auto &[name, timer] : timers_) {
        timer->reset();
    }
}

MetricsRegistry &
registry()
{
    // Leaked on purpose: metric references handed to call-site statics
    // must stay valid through every destructor and atexit handler.
    static MetricsRegistry *instance = new MetricsRegistry();
    return *instance;
}

} // namespace kodan::telemetry
