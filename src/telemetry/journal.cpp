#include "telemetry/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "telemetry/export.hpp"

namespace kodan::telemetry {

namespace detail {

std::atomic<int> g_journal_enabled{-1};

JournalCursor &
journalCursor()
{
    thread_local JournalCursor cursor;
    return cursor;
}

namespace {

bool
envTruthy(const char *value)
{
    return value != nullptr &&
           (std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
            std::strcmp(value, "on") == 0);
}

} // namespace

bool
resolveJournalEnabled()
{
    const bool on = envTruthy(std::getenv("KODAN_JOURNAL"));
    int expected = -1;
    g_journal_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                              std::memory_order_relaxed);
    return g_journal_enabled.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

namespace {

/** %.17g double formatting, matching the metrics JSON exporter. */
std::string
journalNumber(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/**
 * One event as a JSON object body (no seq, no trailing newline):
 * {"region": R, "slot": S, "ord": O, "type": "...", "fields": {...}}.
 * Shared by the sorted JSONL export and the live stream tap so both
 * produce identical field formatting.
 */
void
writeJournalEventBody(const JournalEvent &event, std::ostream &os)
{
    os << "{\"region\": " << event.region << ", \"slot\": " << event.slot
       << ", \"ord\": " << event.ord << ", \"type\": \""
       << jsonEscape(event.type) << "\", \"fields\": {";
    for (std::size_t i = 0; i < event.fields.size(); ++i) {
        const JournalField &field = event.fields[i];
        os << (i > 0 ? ", " : "") << "\"" << jsonEscape(field.name)
           << "\": ";
        switch (field.kind) {
          case JournalField::Kind::Int:
            os << field.i;
            break;
          case JournalField::Kind::Float:
            os << journalNumber(field.f);
            break;
          case JournalField::Kind::Text:
            os << "\"" << jsonEscape(field.s) << "\"";
            break;
        }
    }
    os << "}}";
}

/**
 * One thread's append buffer. Only the owning thread pushes; the mutex
 * makes collect()/clear() from other threads race-free (same shape as
 * TraceRing). Ring capacity is read from the shared atomic at push time
 * so mode changes apply to existing buffers.
 */
class JournalBuffer
{
  public:
    void push(JournalEvent event, std::size_t capacity)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (capacity > 0) {
            while (events_.size() >= capacity) {
                events_.pop_front();
                ++dropped_;
            }
        }
        events_.push_back(std::move(event));
    }

    void collectInto(std::vector<JournalEvent> &out) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.insert(out.end(), events_.begin(), events_.end());
    }

    std::uint64_t dropped() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return dropped_;
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.clear();
        dropped_ = 0;
    }

  private:
    mutable std::mutex mutex_;
    std::deque<JournalEvent> events_;
    std::uint64_t dropped_ = 0;
};

/**
 * Owns every thread's buffer (never freed, so exiting pool workers
 * leave their events collectable) and the region counter.
 */
class JournalStore
{
  public:
    static JournalStore &instance()
    {
        // Leaked on purpose: thread_local buffer pointers and atexit
        // writers must outlive static destruction order.
        static JournalStore *store = new JournalStore();
        return *store;
    }

    JournalBuffer &threadBuffer()
    {
        thread_local JournalBuffer *buffer = [this] {
            auto owned = std::make_unique<JournalBuffer>();
            JournalBuffer *raw = owned.get();
            std::lock_guard<std::mutex> lock(mutex_);
            buffers_.push_back(std::move(owned));
            return raw;
        }();
        return *buffer;
    }

    std::uint64_t nextRegion()
    {
        return next_region_.fetch_add(1, std::memory_order_relaxed);
    }

    std::vector<JournalEvent> collect() const
    {
        std::vector<JournalEvent> events;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            buffer->collectInto(events);
        }
        std::sort(events.begin(), events.end(), journalEventBefore);
        return events;
    }

    std::uint64_t dropped() const
    {
        std::uint64_t total = 0;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            total += buffer->dropped();
        }
        return total;
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            buffer->clear();
        }
        next_region_.store(1, std::memory_order_relaxed);
    }

    void setRingCapacity(std::size_t capacity)
    {
        ring_capacity_.store(capacity, std::memory_order_relaxed);
        ring_resolved_.store(true, std::memory_order_relaxed);
    }

    void setStreamPath(const std::string &path)
    {
        std::lock_guard<std::mutex> lock(stream_mutex_);
        stream_.reset();
        if (!path.empty()) {
            stream_ = std::make_unique<std::ofstream>(
                path, std::ios::out | std::ios::app);
        }
        stream_on_.store(stream_ != nullptr && !!*stream_,
                         std::memory_order_relaxed);
        stream_resolved_.store(true, std::memory_order_relaxed);
    }

    bool streamOn()
    {
        if (!stream_resolved_.load(std::memory_order_relaxed)) {
            const char *env = std::getenv("KODAN_JOURNAL_STREAM");
            setStreamPath(env != nullptr ? env : "");
        }
        return stream_on_.load(std::memory_order_relaxed);
    }

    void streamEvent(const JournalEvent &event)
    {
        std::lock_guard<std::mutex> lock(stream_mutex_);
        if (stream_ == nullptr || !*stream_) {
            return;
        }
        writeJournalEventBody(event, *stream_);
        *stream_ << "\n";
        stream_->flush();
    }

    std::size_t ringCapacity()
    {
        if (!ring_resolved_.load(std::memory_order_relaxed)) {
            std::size_t from_env = 0;
            if (const char *env = std::getenv("KODAN_JOURNAL_RING")) {
                from_env = static_cast<std::size_t>(
                    std::strtoull(env, nullptr, 10));
            }
            setRingCapacity(from_env);
        }
        return ring_capacity_.load(std::memory_order_relaxed);
    }

  private:
    JournalStore() = default;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<JournalBuffer>> buffers_;
    std::atomic<std::uint64_t> next_region_{1};
    std::atomic<std::size_t> ring_capacity_{0};
    std::atomic<bool> ring_resolved_{false};
    std::mutex stream_mutex_;
    std::unique_ptr<std::ofstream> stream_;
    std::atomic<bool> stream_on_{false};
    std::atomic<bool> stream_resolved_{false};
};

int
compareFields(const std::vector<JournalField> &a,
              const std::vector<JournalField> &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i].name != b[i].name) {
            return a[i].name < b[i].name ? -1 : 1;
        }
        if (a[i].kind != b[i].kind) {
            return a[i].kind < b[i].kind ? -1 : 1;
        }
        if (a[i].i != b[i].i) {
            return a[i].i < b[i].i ? -1 : 1;
        }
        if (a[i].f != b[i].f) {
            return a[i].f < b[i].f ? -1 : 1;
        }
        if (a[i].s != b[i].s) {
            return a[i].s < b[i].s ? -1 : 1;
        }
    }
    if (a.size() != b.size()) {
        return a.size() < b.size() ? -1 : 1;
    }
    return 0;
}

} // namespace

bool
journalEventBefore(const JournalEvent &a, const JournalEvent &b)
{
    if (a.region != b.region) {
        return a.region < b.region;
    }
    if (a.slot != b.slot) {
        return a.slot < b.slot;
    }
    if (a.ord != b.ord) {
        return a.ord < b.ord;
    }
    // Ambient events (no scope) can collide on the key; fall back to a
    // total order over content so the export is still reproducible when
    // the colliding events themselves are deterministic.
    if (a.type != b.type) {
        return a.type < b.type;
    }
    return compareFields(a.fields, b.fields) < 0;
}

void
setJournalEnabled(bool on)
{
    detail::g_journal_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
setJournalRingCapacity(std::size_t events_per_thread)
{
    JournalStore::instance().setRingCapacity(events_per_thread);
}

std::size_t
journalRingCapacity()
{
    return JournalStore::instance().ringCapacity();
}

void
setJournalStreamPath(const std::string &path)
{
    JournalStore::instance().setStreamPath(path);
}

JournalRegion::JournalRegion(const char *name)
{
    if (!journalEnabled()) {
        return;
    }
    JournalStore &store = JournalStore::instance();
    id_ = store.nextRegion();
    active_ = true;
    detail::JournalCursor &cursor = detail::journalCursor();
    saved_ = cursor;
    cursor = {id_, 0, 0};
    JournalEventBuilder(
        (std::string(name) + ".begin").c_str());
}

JournalRegion::~JournalRegion()
{
    if (active_) {
        detail::journalCursor() = saved_;
    }
}

JournalScope::JournalScope(std::uint64_t region, std::uint64_t index)
{
    if (region == 0 || !journalEnabled()) {
        return;
    }
    active_ = true;
    detail::JournalCursor &cursor = detail::journalCursor();
    saved_ = cursor;
    cursor = {region, index + 1, 0};
}

JournalScope::JournalScope(std::uint64_t region, std::uint64_t index,
                           std::uint32_t resume_ord)
{
    if (region == 0 || !journalEnabled()) {
        return;
    }
    active_ = true;
    detail::JournalCursor &cursor = detail::journalCursor();
    saved_ = cursor;
    cursor = {region, index + 1, resume_ord};
}

JournalScope::~JournalScope()
{
    if (active_) {
        detail::journalCursor() = saved_;
    }
}

std::uint32_t
journalScopeOrd()
{
    if (!journalEnabled()) {
        return 0;
    }
    return detail::journalCursor().ord;
}

JournalEventBuilder::JournalEventBuilder(const char *type)
{
    if (!journalEnabled()) {
        return;
    }
    active_ = true;
    detail::JournalCursor &cursor = detail::journalCursor();
    event_.region = cursor.region;
    event_.slot = cursor.slot;
    event_.ord = cursor.ord++;
    event_.type = type;
}

JournalEventBuilder::~JournalEventBuilder()
{
    if (!active_) {
        return;
    }
    JournalStore &store = JournalStore::instance();
    if (store.streamOn()) {
        store.streamEvent(event_);
    }
    store.threadBuffer().push(std::move(event_), store.ringCapacity());
}

JournalEventBuilder &
JournalEventBuilder::i64(const char *name, std::int64_t value)
{
    if (active_) {
        JournalField field;
        field.name = name;
        field.kind = JournalField::Kind::Int;
        field.i = value;
        event_.fields.push_back(std::move(field));
    }
    return *this;
}

JournalEventBuilder &
JournalEventBuilder::f64(const char *name, double value)
{
    if (active_) {
        JournalField field;
        field.name = name;
        field.kind = JournalField::Kind::Float;
        field.f = value;
        event_.fields.push_back(std::move(field));
    }
    return *this;
}

JournalEventBuilder &
JournalEventBuilder::text(const char *name, std::string value)
{
    if (active_) {
        JournalField field;
        field.name = name;
        field.kind = JournalField::Kind::Text;
        field.s = std::move(value);
        event_.fields.push_back(std::move(field));
    }
    return *this;
}

std::vector<JournalEvent>
collectJournal()
{
    return JournalStore::instance().collect();
}

std::uint64_t
journalDroppedEvents()
{
    return JournalStore::instance().dropped();
}

void
clearJournal()
{
    JournalStore::instance().clear();
}

void
writeJournalJsonl(const std::vector<JournalEvent> &events,
                  std::uint64_t dropped, std::ostream &os)
{
    os << "{\"kodan_journal\": 1, \"events\": " << events.size()
       << ", \"dropped\": " << dropped << "}\n";
    for (std::size_t seq = 0; seq < events.size(); ++seq) {
        os << "{\"seq\": " << seq << ", ";
        // Splice the shared body after the seq key: drop its '{'.
        std::ostringstream body;
        writeJournalEventBody(events[seq], body);
        os << body.str().substr(1) << "\n";
    }
}

} // namespace kodan::telemetry
