#include "telemetry/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace kodan::telemetry::report {

namespace {

namespace json = kodan::util::json;

/** %.17g round-trip formatting, matching the exporters. */
std::string
num(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string
percentDelta(double base, double cur)
{
    if (base == 0.0) {
        return cur == 0.0 ? "+0%" : "new-from-zero";
    }
    const double pct = 100.0 * (cur - base) / std::fabs(base);
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", pct);
    return buffer;
}

bool
readFile(const std::string &path, std::string &out, std::string *error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        if (error != nullptr) {
            *error = "cannot open " + path;
        }
        return false;
    }
    std::ostringstream text;
    text << file.rdbuf();
    out = text.str();
    return true;
}

void
fail(std::string *error, const std::string &message)
{
    if (error != nullptr) {
        *error = message;
    }
}

/** Re-serialize a parsed journal "fields" object deterministically. */
std::string
canonicalFields(const json::Value &fields)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : fields.members()) {
        if (!first) {
            out += ", ";
        }
        first = false;
        out += key + "=";
        switch (value.kind()) {
          case json::Value::Kind::Number:
            out += num(value.asNumber());
            break;
          case json::Value::Kind::String:
            out += "\"" + value.asString() + "\"";
            break;
          case json::Value::Kind::Bool:
            out += value.asBool() ? "true" : "false";
            break;
          default:
            out += "?";
        }
    }
    out += "}";
    return out;
}

} // namespace

/* ------------------------------------------------------------------ */
/* Snapshot loading                                                    */
/* ------------------------------------------------------------------ */

const MetricReading *
Snapshot::find(const std::string &name) const
{
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), name,
        [](const MetricReading &m, const std::string &n) {
            return m.name < n;
        });
    if (it != metrics.end() && it->name == name) {
        return &*it;
    }
    return nullptr;
}

bool
parseSnapshot(const std::string &text, Snapshot &out, std::string *error)
{
    json::Value doc;
    if (!json::parse(text, doc, error)) {
        return false;
    }
    const json::Value *metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->isArray()) {
        fail(error, "snapshot has no \"metrics\" array");
        return false;
    }
    out.metrics.clear();
    for (const json::Value &entry : metrics->array()) {
        if (!entry.isObject()) {
            fail(error, "snapshot metric entry is not an object");
            return false;
        }
        MetricReading m;
        m.name = entry.stringOr("name", "");
        m.type = entry.stringOr("type", "");
        if (m.name.empty() || m.type.empty()) {
            fail(error, "snapshot metric entry lacks name/type");
            return false;
        }
        if (m.type == "counter") {
            m.count =
                static_cast<std::int64_t>(entry.numberOr("value", 0.0));
        } else if (m.type == "gauge") {
            m.sum = entry.numberOr("value", 0.0);
        } else if (m.type == "timer") {
            m.count =
                static_cast<std::int64_t>(entry.numberOr("count", 0.0));
            m.sum = entry.numberOr("total_s", 0.0);
            m.max = entry.numberOr("max_s", 0.0);
        } else {
            // histogram (and any future kind): generic count/sum/max.
            m.count =
                static_cast<std::int64_t>(entry.numberOr("count", 0.0));
            m.sum = entry.numberOr("sum", 0.0);
            m.max = entry.numberOr("max", 0.0);
        }
        out.metrics.push_back(std::move(m));
    }
    std::sort(out.metrics.begin(), out.metrics.end(),
              [](const MetricReading &a, const MetricReading &b) {
                  return a.name < b.name;
              });
    return true;
}

bool
loadSnapshot(const std::string &path, Snapshot &out, std::string *error)
{
    std::string text;
    if (!readFile(path, text, error)) {
        return false;
    }
    if (!parseSnapshot(text, out, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    return true;
}

/* ------------------------------------------------------------------ */
/* Journal loading                                                     */
/* ------------------------------------------------------------------ */

bool
parseJournal(const std::string &text, JournalDoc &out, std::string *error)
{
    std::vector<json::Value> lines;
    if (!json::parseLines(text, lines, error)) {
        return false;
    }
    if (lines.empty()) {
        fail(error, "journal is empty (missing header line)");
        return false;
    }
    const json::Value &header = lines.front();
    if (header.find("kodan_journal") == nullptr) {
        fail(error, "first journal line is not a kodan_journal header");
        return false;
    }
    out.declared_events =
        static_cast<std::uint64_t>(header.numberOr("events", 0.0));
    out.dropped = static_cast<std::uint64_t>(header.numberOr("dropped", 0.0));
    out.events.clear();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const json::Value &entry = lines[i];
        JournalLine line;
        line.seq = static_cast<std::uint64_t>(entry.numberOr("seq", 0.0));
        line.region =
            static_cast<std::uint64_t>(entry.numberOr("region", 0.0));
        line.slot = static_cast<std::uint64_t>(entry.numberOr("slot", 0.0));
        line.ord = static_cast<std::uint64_t>(entry.numberOr("ord", 0.0));
        line.type = entry.stringOr("type", "");
        if (line.type.empty()) {
            fail(error,
                 "journal line " + std::to_string(i + 1) + " lacks a type");
            return false;
        }
        // The canonical form excludes seq (purely positional) so an
        // inserted event shows up as one divergence, not a tail of
        // renumbered lines.
        std::string canonical =
            "region " + num(entry.numberOr("region", 0.0)) + " slot " +
            num(entry.numberOr("slot", 0.0)) + " ord " +
            num(entry.numberOr("ord", 0.0)) + " " + line.type + " ";
        const json::Value *fields = entry.find("fields");
        canonical += fields != nullptr ? canonicalFields(*fields) : "{}";
        line.canonical = std::move(canonical);
        out.events.push_back(std::move(line));
    }
    return true;
}

bool
loadJournal(const std::string &path, JournalDoc &out, std::string *error)
{
    std::string text;
    if (!readFile(path, text, error)) {
        return false;
    }
    if (!parseJournal(text, out, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    return true;
}

/* ------------------------------------------------------------------ */
/* Time-series loading                                                 */
/* ------------------------------------------------------------------ */

const SeriesReading *
TimeSeriesDoc::find(const std::string &name) const
{
    for (const SeriesReading &entry : series) {
        if (entry.name == name) {
            return &entry;
        }
    }
    return nullptr;
}

bool
parseTimeSeries(const std::string &text, TimeSeriesDoc &out,
                std::string *error)
{
    json::Value doc;
    if (!json::parse(text, doc, error)) {
        return false;
    }
    if (doc.find("kodan_timeseries") == nullptr) {
        fail(error, "document has no \"kodan_timeseries\" marker");
        return false;
    }
    const json::Value *series = doc.find("series");
    if (series == nullptr || !series->isArray()) {
        fail(error, "document has no \"series\" array");
        return false;
    }
    out.series.clear();
    for (const json::Value &entry : series->array()) {
        SeriesReading reading;
        reading.name = entry.stringOr("name", "");
        if (reading.name.empty()) {
            fail(error, "series entry lacks a name");
            return false;
        }
        reading.bin_s = entry.numberOr("bin_s", 0.0);
        reading.dropped_bins = static_cast<std::uint64_t>(
            entry.numberOr("dropped_bins", 0.0));
        const json::Value *bins = entry.find("bins");
        if (bins != nullptr && bins->isArray()) {
            for (const json::Value &bin : bins->array()) {
                SeriesBinReading b;
                b.index =
                    static_cast<std::int64_t>(bin.numberOr("bin", 0.0));
                b.count =
                    static_cast<std::int64_t>(bin.numberOr("count", 0.0));
                b.sum = bin.numberOr("sum", 0.0);
                b.min = bin.numberOr("min", 0.0);
                b.max = bin.numberOr("max", 0.0);
                reading.bins.push_back(b);
            }
        }
        out.series.push_back(std::move(reading));
    }
    std::sort(out.series.begin(), out.series.end(),
              [](const SeriesReading &a, const SeriesReading &b) {
                  return a.name < b.name;
              });
    return true;
}

bool
loadTimeSeries(const std::string &path, TimeSeriesDoc &out,
               std::string *error)
{
    std::string text;
    if (!readFile(path, text, error)) {
        return false;
    }
    if (!parseTimeSeries(text, out, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    return true;
}

bool
loadLineage(const std::string &path, std::vector<LineageSpan> &out,
            std::string *error)
{
    std::string text;
    if (!readFile(path, text, error)) {
        return false;
    }
    std::vector<json::Value> lines;
    if (!json::parseLines(text, lines, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    if (lines.empty() || lines.front().find("kodan_lineage") == nullptr) {
        fail(error, path + ": first line is not a kodan_lineage header");
        return false;
    }
    out.clear();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const json::Value &entry = lines[i];
        LineageSpan span;
        span.frame_id =
            static_cast<std::uint64_t>(entry.numberOr("frame", 0.0));
        span.t_s = entry.numberOr("t_s", 0.0);
        const std::string stage = entry.stringOr("stage", "");
        if (!lineageStageFromName(stage, span.stage)) {
            fail(error, path + ": line " + std::to_string(i + 1) +
                            " has unknown stage \"" + stage + "\"");
            return false;
        }
        out.push_back(span);
    }
    return true;
}

/* ------------------------------------------------------------------ */
/* Alerts loading                                                      */
/* ------------------------------------------------------------------ */

bool
parseAlerts(const std::string &text, AlertsDoc &out, std::string *error)
{
    std::vector<json::Value> lines;
    if (!json::parseLines(text, lines, error)) {
        return false;
    }
    if (lines.empty()) {
        fail(error, "alerts file is empty (missing header line)");
        return false;
    }
    const json::Value &header = lines.front();
    if (header.find("kodan_alerts") == nullptr) {
        fail(error, "first alerts line is not a kodan_alerts header");
        return false;
    }
    out.declared_alerts =
        static_cast<std::uint64_t>(header.numberOr("alerts", 0.0));
    out.firing = static_cast<std::uint64_t>(header.numberOr("firing", 0.0));
    out.alerts.clear();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const json::Value &entry = lines[i];
        AlertReading alert;
        alert.id = static_cast<std::uint64_t>(entry.numberOr("id", 0.0));
        alert.rule = entry.stringOr("rule", "");
        alert.signal = entry.stringOr("signal", "");
        alert.kind = entry.stringOr("kind", "");
        alert.entity =
            static_cast<std::int64_t>(entry.numberOr("entity", 0.0));
        alert.state = entry.stringOr("state", "");
        if (alert.rule.empty() || alert.state.empty()) {
            fail(error, "alerts line " + std::to_string(i + 1) +
                            " lacks a rule/state");
            return false;
        }
        alert.first_bin =
            static_cast<std::int64_t>(entry.numberOr("first_bin", 0.0));
        alert.last_bin =
            static_cast<std::int64_t>(entry.numberOr("last_bin", 0.0));
        alert.first_t_s = entry.numberOr("first_t_s", 0.0);
        alert.last_t_s = entry.numberOr("last_t_s", 0.0);
        alert.peak = entry.numberOr("peak", 0.0);
        alert.last = entry.numberOr("last", 0.0);
        const json::Value *journal = entry.find("journal");
        if (journal != nullptr &&
            journal->kind() == json::Value::Kind::Object) {
            alert.has_journal = true;
            alert.journal_region = static_cast<std::uint64_t>(
                journal->numberOr("region", 0.0));
            alert.journal_slot = static_cast<std::uint64_t>(
                journal->numberOr("slot", 0.0));
            alert.journal_ord_lo = static_cast<std::uint64_t>(
                journal->numberOr("ord_lo", 0.0));
            alert.journal_ord_hi = static_cast<std::uint64_t>(
                journal->numberOr("ord_hi", 0.0));
        }
        const json::Value *evidence = entry.find("evidence");
        if (evidence != nullptr &&
            evidence->kind() == json::Value::Kind::Array) {
            for (const json::Value &ev : evidence->array()) {
                alert.evidence.emplace_back(
                    static_cast<std::int64_t>(ev.numberOr("bin", 0.0)),
                    ev.numberOr("value", 0.0));
            }
        }
        // The canonical form excludes the id (purely positional) so one
        // inserted alert shows as one divergence, not a renumbered tail.
        std::string canonical = alert.rule + " " + alert.kind + "/" +
                                std::to_string(alert.entity) + " " +
                                alert.state + " bins " +
                                std::to_string(alert.first_bin) + ".." +
                                std::to_string(alert.last_bin) + " peak " +
                                num(alert.peak) + " last " +
                                num(alert.last) + " evidence [";
        for (std::size_t e = 0; e < alert.evidence.size(); ++e) {
            if (e != 0) {
                canonical += ",";
            }
            canonical += std::to_string(alert.evidence[e].first) + ":" +
                         num(alert.evidence[e].second);
        }
        canonical += "]";
        if (alert.has_journal) {
            canonical += " journal " +
                         std::to_string(alert.journal_region) + ":" +
                         std::to_string(alert.journal_slot) + ":" +
                         std::to_string(alert.journal_ord_lo) + ".." +
                         std::to_string(alert.journal_ord_hi);
        }
        alert.canonical = std::move(canonical);
        out.alerts.push_back(std::move(alert));
    }
    return true;
}

bool
loadAlerts(const std::string &path, AlertsDoc &out, std::string *error)
{
    std::string text;
    if (!readFile(path, text, error)) {
        return false;
    }
    if (!parseAlerts(text, out, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    return true;
}

/* ------------------------------------------------------------------ */
/* Diffing                                                             */
/* ------------------------------------------------------------------ */

bool
Tolerances::ignored(const std::string &name) const
{
    for (const std::string &prefix : ignore_prefixes) {
        if (name.compare(0, prefix.size(), prefix) == 0) {
            return true;
        }
    }
    return false;
}

double
Tolerances::relFor(const MetricReading &metric) const
{
    for (const auto &[name, tol] : overrides) {
        if (name == metric.name) {
            return tol;
        }
    }
    return metric.type == "timer" ? timer_rel : value_rel;
}

bool
DiffResult::hasRegression() const
{
    return regressionCount() > 0;
}

std::size_t
DiffResult::regressionCount() const
{
    std::size_t n = 0;
    for (const Finding &finding : findings) {
        if (finding.severity == Severity::Regression) {
            ++n;
        }
    }
    return n;
}

namespace {

void
add(DiffResult &diff, Severity severity, std::string subject,
    std::string message)
{
    diff.findings.push_back(
        {severity, std::move(subject), std::move(message)});
}

/** |cur - base| within rel * max(|base|, scale-floor)? */
bool
withinRel(double base, double cur, double rel, double floor_scale)
{
    const double allowed = rel * std::max(std::fabs(base), floor_scale);
    return std::fabs(cur - base) <= allowed;
}

void
diffOne(DiffResult &diff, const MetricReading &base,
        const MetricReading &cur, const Tolerances &tol)
{
    if (base.type != cur.type) {
        add(diff, Severity::Regression, base.name,
            "type changed: " + base.type + " -> " + cur.type);
        return;
    }
    const double rel = tol.relFor(base);
    if (base.type == "timer") {
        if (base.sum < tol.timer_floor_s && cur.sum < tol.timer_floor_s) {
            return; // both below the noise floor
        }
        const double allowed =
            std::max(base.sum * (1.0 + rel), tol.timer_floor_s);
        if (cur.sum > allowed) {
            add(diff, Severity::Regression, base.name,
                "timer slowed: " + num(base.sum) + " s -> " + num(cur.sum) +
                    " s (" + percentDelta(base.sum, cur.sum) +
                    ", tolerance " + percentDelta(1.0, 1.0 + rel) + ")");
        } else if (cur.sum * (1.0 + rel) < base.sum) {
            add(diff, Severity::Info, base.name,
                "timer improved: " + num(base.sum) + " s -> " +
                    num(cur.sum) + " s (" +
                    percentDelta(base.sum, cur.sum) + ")");
        }
        return;
    }
    if (base.type == "counter" || base.type == "histogram") {
        if (!withinRel(static_cast<double>(base.count),
                       static_cast<double>(cur.count), rel, 1.0)) {
            add(diff, Severity::Regression, base.name,
                base.type + " count changed: " +
                    std::to_string(base.count) + " -> " +
                    std::to_string(cur.count) + " (" +
                    percentDelta(static_cast<double>(base.count),
                                 static_cast<double>(cur.count)) +
                    ")");
            return;
        }
    }
    if (base.type == "gauge" || base.type == "histogram") {
        if (!withinRel(base.sum, cur.sum, rel, 1e-12)) {
            add(diff, Severity::Regression, base.name,
                base.type + " value changed: " + num(base.sum) + " -> " +
                    num(cur.sum) + " (" + percentDelta(base.sum, cur.sum) +
                    ")");
        }
    }
}

} // namespace

DiffResult
diffSnapshots(const Snapshot &base, const Snapshot &cur,
              const Tolerances &tol)
{
    DiffResult diff;
    for (const MetricReading &m : base.metrics) {
        if (tol.ignored(m.name)) {
            continue;
        }
        const MetricReading *other = cur.find(m.name);
        if (other == nullptr) {
            add(diff, Severity::Regression, m.name,
                "present in baseline, missing from current run");
            continue;
        }
        diffOne(diff, m, *other, tol);
    }
    for (const MetricReading &m : cur.metrics) {
        if (!tol.ignored(m.name) && base.find(m.name) == nullptr) {
            add(diff, Severity::Info, m.name,
                "new metric (absent from baseline)");
        }
    }
    return diff;
}

DiffResult
diffJournals(const JournalDoc &base, const JournalDoc &cur,
             std::size_t max_reported)
{
    DiffResult diff;
    if (base.events.size() != cur.events.size()) {
        add(diff, Severity::Regression, "journal",
            "event count changed: " + std::to_string(base.events.size()) +
                " -> " + std::to_string(cur.events.size()));
    }
    if (base.dropped != cur.dropped) {
        add(diff, Severity::Info, "journal",
            "dropped-event count changed: " +
                std::to_string(base.dropped) + " -> " +
                std::to_string(cur.dropped));
    }
    const std::size_t n = std::min(base.events.size(), cur.events.size());
    std::size_t reported = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (base.events[i].canonical == cur.events[i].canonical) {
            continue;
        }
        if (reported < max_reported) {
            add(diff, Severity::Regression,
                "event #" + std::to_string(i) + " (" + base.events[i].type +
                    ")",
                "baseline [" + base.events[i].canonical +
                    "] != current [" + cur.events[i].canonical + "]");
        }
        ++reported;
    }
    if (reported > max_reported) {
        add(diff, Severity::Regression, "journal",
            std::to_string(reported - max_reported) +
                " further event divergence(s) not listed");
    }
    return diff;
}

DiffResult
diffAlerts(const AlertsDoc &base, const AlertsDoc &cur,
           std::size_t max_reported)
{
    DiffResult diff;
    if (base.alerts.size() != cur.alerts.size()) {
        add(diff, Severity::Regression, "alerts",
            "alert count changed: " + std::to_string(base.alerts.size()) +
                " -> " + std::to_string(cur.alerts.size()));
    }
    if (base.firing != cur.firing) {
        add(diff, Severity::Regression, "alerts",
            "firing count changed: " + std::to_string(base.firing) +
                " -> " + std::to_string(cur.firing));
    }
    const std::size_t n = std::min(base.alerts.size(), cur.alerts.size());
    std::size_t reported = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (base.alerts[i].canonical == cur.alerts[i].canonical) {
            continue;
        }
        if (reported < max_reported) {
            add(diff, Severity::Regression,
                "alert #" + std::to_string(i) + " (" +
                    base.alerts[i].rule + ")",
                "baseline [" + base.alerts[i].canonical +
                    "] != current [" + cur.alerts[i].canonical + "]");
        }
        ++reported;
    }
    if (reported > max_reported) {
        add(diff, Severity::Regression, "alerts",
            std::to_string(reported - max_reported) +
                " further alert divergence(s) not listed");
    }
    return diff;
}

namespace {

/** Bin lookup by index (bins are exported sorted, but stay robust). */
const SeriesBinReading *
findBin(const SeriesReading &series, std::int64_t index)
{
    for (const SeriesBinReading &bin : series.bins) {
        if (bin.index == index) {
            return &bin;
        }
    }
    return nullptr;
}

} // namespace

DiffResult
diffTimeSeries(const TimeSeriesDoc &base, const TimeSeriesDoc &cur,
               double bin_rel_tol, std::size_t max_reported)
{
    DiffResult diff;
    for (const SeriesReading &series : base.series) {
        const SeriesReading *other = cur.find(series.name);
        if (other == nullptr) {
            add(diff, Severity::Regression, series.name,
                "series present in baseline, missing from current run");
            continue;
        }
        if (series.bin_s != other->bin_s) {
            add(diff, Severity::Regression, series.name,
                "bin width changed: " + num(series.bin_s) + " s -> " +
                    num(other->bin_s) + " s");
            continue;
        }
        if (series.bins.size() != other->bins.size()) {
            add(diff, Severity::Regression, series.name,
                "bin count changed: " +
                    std::to_string(series.bins.size()) + " -> " +
                    std::to_string(other->bins.size()));
        }
        std::size_t reported = 0;
        const auto offend = [&](std::int64_t bin_index,
                                const std::string &message) {
            if (reported < max_reported) {
                add(diff, Severity::Regression,
                    series.name + "[bin " + std::to_string(bin_index) +
                        "]",
                    message);
            }
            ++reported;
        };
        for (const SeriesBinReading &bin : series.bins) {
            const SeriesBinReading *cur_bin = findBin(*other, bin.index);
            if (cur_bin == nullptr) {
                offend(bin.index, "bin missing from current run");
                continue;
            }
            if (bin.count != cur_bin->count) {
                offend(bin.index,
                       "count changed: " + std::to_string(bin.count) +
                           " -> " + std::to_string(cur_bin->count));
                continue;
            }
            const auto off_value = [&](const char *what, double b,
                                       double c) {
                if (!withinRel(b, c, bin_rel_tol, 1e-12)) {
                    offend(bin.index, std::string(what) + " changed: " +
                                          num(b) + " -> " + num(c) +
                                          " (" + percentDelta(b, c) +
                                          ")");
                    return true;
                }
                return false;
            };
            if (off_value("sum", bin.sum, cur_bin->sum) ||
                off_value("min", bin.min, cur_bin->min) ||
                off_value("max", bin.max, cur_bin->max)) {
                continue;
            }
        }
        if (reported > max_reported) {
            add(diff, Severity::Regression, series.name,
                std::to_string(reported - max_reported) +
                    " further bin divergence(s) not listed");
        }
    }
    for (const SeriesReading &series : cur.series) {
        if (base.find(series.name) == nullptr) {
            add(diff, Severity::Info, series.name,
                "new series (absent from baseline)");
        }
    }
    return diff;
}

DiffResult
mergeDiffs(DiffResult a, const DiffResult &b)
{
    a.findings.insert(a.findings.end(), b.findings.begin(),
                      b.findings.end());
    return a;
}

void
writeMarkdown(const DiffResult &diff, const std::string &base_label,
              const std::string &cur_label, std::ostream &os)
{
    os << "# kodan-report: `" << base_label << "` vs `" << cur_label
       << "`\n\n";
    const std::size_t regressions = diff.regressionCount();
    if (regressions > 0) {
        os << "**Verdict: REGRESSION** — " << regressions
           << " regression finding(s), "
           << diff.findings.size() - regressions << " informational.\n\n";
    } else if (!diff.findings.empty()) {
        os << "**Verdict: OK** — no regressions; "
           << diff.findings.size() << " informational finding(s).\n\n";
    } else {
        os << "**Verdict: OK** — no differences beyond tolerance.\n\n";
    }
    if (diff.findings.empty()) {
        return;
    }
    os << "| severity | subject | detail |\n";
    os << "| --- | --- | --- |\n";
    for (const Finding &finding : diff.findings) {
        os << "| "
           << (finding.severity == Severity::Regression ? "REGRESSION"
                                                        : "info")
           << " | `" << finding.subject << "` | " << finding.message
           << " |\n";
    }
}

/* ------------------------------------------------------------------ */
/* Profiles                                                            */
/* ------------------------------------------------------------------ */

double
ProfileDoc::frameSeconds(std::uint64_t sample_count) const
{
    return static_cast<double>(sample_count) *
           static_cast<double>(period_us) * 1e-6;
}

const ProfileFrame *
ProfileDoc::findFrame(const std::string &name) const
{
    for (const ProfileFrame &frame : frames) {
        if (frame.name == name) {
            return &frame;
        }
    }
    return nullptr;
}

const ProfileSpanRow *
ProfileDoc::findSpan(const std::string &name) const
{
    const auto it = std::lower_bound(
        spans.begin(), spans.end(), name,
        [](const ProfileSpanRow &row, const std::string &n) {
            return row.name < n;
        });
    if (it != spans.end() && it->name == name) {
        return &*it;
    }
    return nullptr;
}

namespace {

std::uint64_t
u64Or(const json::Value &object, const char *key)
{
    return static_cast<std::uint64_t>(object.numberOr(key, 0.0));
}

} // namespace

bool
parseProfile(const std::string &text, ProfileDoc &out, std::string *error)
{
    json::Value doc;
    if (!json::parse(text, doc, error)) {
        return false;
    }
    if (doc.find("kodan_profile") == nullptr) {
        fail(error, "not a kodan profile (no \"kodan_profile\" key)");
        return false;
    }
    out.period_us = u64Or(doc, "period_us");
    out.samples = u64Or(doc, "samples");
    out.dropped = u64Or(doc, "dropped");
    out.unregistered_hits = u64Or(doc, "unregistered_hits");
    out.threads = u64Or(doc, "threads");
    out.frames.clear();
    const json::Value *frames = doc.find("frames");
    if (frames == nullptr || !frames->isArray()) {
        fail(error, "profile has no \"frames\" array");
        return false;
    }
    for (const json::Value &entry : frames->array()) {
        if (!entry.isObject()) {
            fail(error, "profile frame entry is not an object");
            return false;
        }
        ProfileFrame frame;
        frame.name = entry.stringOr("name", "");
        frame.self = u64Or(entry, "self");
        frame.total = u64Or(entry, "total");
        if (frame.name.empty()) {
            fail(error, "profile frame entry lacks a name");
            return false;
        }
        out.frames.push_back(std::move(frame));
    }
    out.spans.clear();
    out.span_source.clear();
    const json::Value *spans = doc.find("spans");
    if (spans == nullptr || !spans->isObject()) {
        fail(error, "profile has no \"spans\" object");
        return false;
    }
    out.span_source = spans->stringOr("source", "unresolved");
    const json::Value *rows = spans->find("rows");
    if (rows == nullptr || !rows->isArray()) {
        fail(error, "profile \"spans\" has no \"rows\" array");
        return false;
    }
    for (const json::Value &entry : rows->array()) {
        if (!entry.isObject()) {
            fail(error, "profile span row is not an object");
            return false;
        }
        ProfileSpanRow row;
        row.name = entry.stringOr("name", "");
        row.calls = u64Or(entry, "calls");
        row.cycles = u64Or(entry, "cycles");
        row.instructions = u64Or(entry, "instructions");
        row.llc_misses = u64Or(entry, "llc_misses");
        row.branch_misses = u64Or(entry, "branch_misses");
        row.task_clock_ns = u64Or(entry, "task_clock_ns");
        if (row.name.empty()) {
            fail(error, "profile span row lacks a name");
            return false;
        }
        out.spans.push_back(std::move(row));
    }
    std::sort(out.spans.begin(), out.spans.end(),
              [](const ProfileSpanRow &a, const ProfileSpanRow &b) {
                  return a.name < b.name;
              });
    return true;
}

bool
loadProfile(const std::string &path, ProfileDoc &out, std::string *error)
{
    std::string text;
    if (!readFile(path, text, error)) {
        return false;
    }
    if (!parseProfile(text, out, error)) {
        if (error != nullptr) {
            *error = path + ": " + *error;
        }
        return false;
    }
    return true;
}

namespace {

/** Human-scale number for the profile tables (num() is for exact
 *  round-trips; these columns are approximate by nature). */
std::string
shortNum(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
    return buffer;
}

/** Sort rows by descending delta, ties by name for determinism. */
void
rankDeltas(std::vector<ProfileDeltaRow> &rows,
           double (*key)(const ProfileDeltaRow &))
{
    std::sort(rows.begin(), rows.end(),
              [key](const ProfileDeltaRow &a, const ProfileDeltaRow &b) {
                  const double ka = key(a);
                  const double kb = key(b);
                  if (ka != kb) {
                      return ka > kb;
                  }
                  return a.name < b.name;
              });
}

} // namespace

ProfileDiffResult
diffProfiles(const ProfileDoc &base, const ProfileDoc &cur,
             const ProfileTolerances &tol)
{
    ProfileDiffResult out;

    // Sampled frames: union of both top-frame tables, cost =
    // self-samples converted to seconds via each run's own period.
    for (const ProfileFrame &frame : base.frames) {
        ProfileDeltaRow row;
        row.name = frame.name;
        row.base_s = base.frameSeconds(frame.self);
        const ProfileFrame *other = cur.findFrame(frame.name);
        if (other != nullptr) {
            row.cur_s = cur.frameSeconds(other->self);
        }
        row.delta_s = row.cur_s - row.base_s;
        out.frames.push_back(std::move(row));
    }
    for (const ProfileFrame &frame : cur.frames) {
        if (base.findFrame(frame.name) != nullptr) {
            continue;
        }
        ProfileDeltaRow row;
        row.name = frame.name;
        row.cur_s = cur.frameSeconds(frame.self);
        row.delta_s = row.cur_s;
        out.frames.push_back(std::move(row));
    }
    rankDeltas(out.frames,
               [](const ProfileDeltaRow &r) { return r.delta_s; });

    // Span rows: costs stay in task-clock seconds (portable across
    // counter sources); the ranking key upgrades to cycle deltas when
    // both runs actually read perf_event.
    out.spans_use_cycles = base.span_source == "perf_event" &&
                           cur.span_source == "perf_event";
    for (const ProfileSpanRow &span : base.spans) {
        ProfileDeltaRow row;
        row.name = span.name;
        row.base_s = static_cast<double>(span.task_clock_ns) * 1e-9;
        row.base_calls = span.calls;
        const ProfileSpanRow *other = cur.findSpan(span.name);
        if (other != nullptr) {
            row.cur_s = static_cast<double>(other->task_clock_ns) * 1e-9;
            row.cur_calls = other->calls;
            row.delta_cycles =
                static_cast<std::int64_t>(other->cycles) -
                static_cast<std::int64_t>(span.cycles);
        } else {
            row.delta_cycles = -static_cast<std::int64_t>(span.cycles);
            add(out.findings, Severity::Regression, span.name,
                "span row missing from current run (instrumentation "
                "lost?)");
        }
        row.delta_s = row.cur_s - row.base_s;
        if (other != nullptr) {
            if (!withinRel(static_cast<double>(span.calls),
                           static_cast<double>(other->calls),
                           tol.calls_rel, 1.0)) {
                add(out.findings, Severity::Regression, span.name,
                    "span calls changed: " + std::to_string(span.calls) +
                        " -> " + std::to_string(other->calls) + " (" +
                        percentDelta(static_cast<double>(span.calls),
                                     static_cast<double>(other->calls)) +
                        ")");
            }
            const bool above_floor = row.base_s >= tol.cost_floor_s ||
                                     row.cur_s >= tol.cost_floor_s;
            const double allowed =
                std::max(row.base_s * (1.0 + tol.cost_rel),
                         tol.cost_floor_s);
            if (above_floor && row.cur_s > allowed) {
                add(out.findings, Severity::Regression, span.name,
                    "span cost grew: " + num(row.base_s) + " s -> " +
                        num(row.cur_s) + " s (" +
                        percentDelta(row.base_s, row.cur_s) +
                        ", tolerance " +
                        percentDelta(1.0, 1.0 + tol.cost_rel) + ")");
            } else if (above_floor &&
                       row.cur_s * (1.0 + tol.cost_rel) < row.base_s) {
                add(out.findings, Severity::Info, span.name,
                    "span cost improved: " + num(row.base_s) + " s -> " +
                        num(row.cur_s) + " s (" +
                        percentDelta(row.base_s, row.cur_s) + ")");
            }
        }
        out.spans.push_back(std::move(row));
    }
    for (const ProfileSpanRow &span : cur.spans) {
        if (base.findSpan(span.name) != nullptr) {
            continue;
        }
        ProfileDeltaRow row;
        row.name = span.name;
        row.cur_s = static_cast<double>(span.task_clock_ns) * 1e-9;
        row.cur_calls = span.calls;
        row.delta_s = row.cur_s;
        row.delta_cycles = static_cast<std::int64_t>(span.cycles);
        add(out.findings, Severity::Info, span.name,
            "new span row (not in baseline)");
        out.spans.push_back(std::move(row));
    }
    if (out.spans_use_cycles) {
        rankDeltas(out.spans, [](const ProfileDeltaRow &r) {
            return static_cast<double>(r.delta_cycles);
        });
    } else {
        rankDeltas(out.spans,
                   [](const ProfileDeltaRow &r) { return r.delta_s; });
    }
    if (base.span_source != cur.span_source) {
        add(out.findings, Severity::Info, "spans.source",
            "counter source changed: " + base.span_source + " -> " +
                cur.span_source +
                " (cycle columns are not comparable)");
    }
    return out;
}

void
writeProfileMarkdown(const ProfileDoc &doc, const std::string &label,
                     std::size_t top, std::ostream &os)
{
    os << "# kodan-report: profile `" << label << "`\n\n"
       << "- samples: " << doc.samples << " (period " << doc.period_us
       << " us, " << doc.threads << " thread(s), " << doc.dropped
       << " dropped, " << doc.unregistered_hits
       << " on unregistered threads)\n"
       << "- counter source: " << doc.span_source << "\n";
    if (!doc.frames.empty()) {
        os << "\n## Top frames by self time\n\n"
           << "| frame | self | total | self % | self s |\n"
           << "| --- | --- | --- | --- | --- |\n";
        const double total =
            doc.samples > 0 ? static_cast<double>(doc.samples) : 1.0;
        std::size_t shown = 0;
        for (const ProfileFrame &frame : doc.frames) {
            if (shown++ >= top) {
                break;
            }
            os << "| `" << frame.name << "` | " << frame.self << " | "
               << frame.total << " | "
               << shortNum(100.0 * static_cast<double>(frame.self) /
                           total)
               << "% | " << shortNum(doc.frameSeconds(frame.self))
               << " |\n";
        }
    }
    if (!doc.spans.empty()) {
        std::vector<ProfileSpanRow> rows = doc.spans;
        std::sort(rows.begin(), rows.end(),
                  [](const ProfileSpanRow &a, const ProfileSpanRow &b) {
                      if (a.task_clock_ns != b.task_clock_ns) {
                          return a.task_clock_ns > b.task_clock_ns;
                      }
                      return a.name < b.name;
                  });
        os << "\n## Span counters (" << doc.span_source << ")\n\n"
           << "| span | calls | task-clock s | cycles | instructions "
              "| IPC | LLC miss | branch miss |\n"
           << "| --- | --- | --- | --- | --- | --- | --- | --- |\n";
        std::size_t shown = 0;
        for (const ProfileSpanRow &row : rows) {
            if (shown++ >= top) {
                break;
            }
            os << "| `" << row.name << "` | " << row.calls << " | "
               << shortNum(static_cast<double>(row.task_clock_ns) * 1e-9)
               << " | " << row.cycles << " | " << row.instructions
               << " | ";
            if (row.cycles > 0) {
                os << shortNum(static_cast<double>(row.instructions) /
                               static_cast<double>(row.cycles));
            } else {
                os << "-";
            }
            os << " | " << row.llc_misses << " | " << row.branch_misses
               << " |\n";
        }
    }
}

void
writeProfileDiffMarkdown(const ProfileDiffResult &diff,
                         const std::string &base_label,
                         const std::string &cur_label, std::size_t top,
                         std::ostream &os)
{
    os << "# kodan-report: profile `" << base_label << "` vs `"
       << cur_label << "`\n\n";
    const std::size_t regressions = diff.findings.regressionCount();
    if (regressions > 0) {
        os << "**Verdict: REGRESSION** — " << regressions
           << " regression finding(s).\n";
    } else {
        os << "**Verdict: OK** — no findings beyond tolerance.\n";
    }
    if (!diff.frames.empty()) {
        os << "\n## Frames by self-time regression\n\n"
           << "| frame | base s | cur s | delta s |\n"
           << "| --- | --- | --- | --- |\n";
        std::size_t shown = 0;
        for (const ProfileDeltaRow &row : diff.frames) {
            if (shown++ >= top) {
                break;
            }
            os << "| `" << row.name << "` | " << shortNum(row.base_s)
               << " | " << shortNum(row.cur_s) << " | "
               << shortNum(row.delta_s) << " |\n";
        }
    }
    if (!diff.spans.empty()) {
        os << "\n## Spans by "
           << (diff.spans_use_cycles ? "cycle" : "task-clock")
           << " regression\n\n"
           << "| span | base s | cur s | delta s | base calls "
              "| cur calls | delta cycles |\n"
           << "| --- | --- | --- | --- | --- | --- | --- |\n";
        std::size_t shown = 0;
        for (const ProfileDeltaRow &row : diff.spans) {
            if (shown++ >= top) {
                break;
            }
            os << "| `" << row.name << "` | " << shortNum(row.base_s)
               << " | " << shortNum(row.cur_s) << " | "
               << shortNum(row.delta_s) << " | " << row.base_calls
               << " | " << row.cur_calls << " | " << row.delta_cycles
               << " |\n";
        }
    }
    if (!diff.findings.findings.empty()) {
        os << "\n| severity | subject | detail |\n"
           << "| --- | --- | --- |\n";
        for (const Finding &finding : diff.findings.findings) {
            os << "| "
               << (finding.severity == Severity::Regression
                       ? "REGRESSION"
                       : "info")
               << " | `" << finding.subject << "` | " << finding.message
               << " |\n";
        }
    }
}

/* ------------------------------------------------------------------ */
/* Trajectories                                                        */
/* ------------------------------------------------------------------ */

bool
parseTrajectory(const std::string &text, Trajectory &out,
                std::string *error)
{
    json::Value doc;
    if (!json::parse(text, doc, error)) {
        return false;
    }
    out.name = doc.stringOr("name", "");
    if (out.name.empty()) {
        fail(error, "trajectory has no \"name\"");
        return false;
    }
    out.entries.clear();
    const json::Value *entries = doc.find("entries");
    if (entries == nullptr) {
        return true; // empty trajectory
    }
    if (!entries->isArray()) {
        fail(error, "trajectory \"entries\" is not an array");
        return false;
    }
    for (const json::Value &raw : entries->array()) {
        TrajectoryEntry entry;
        entry.label = raw.stringOr("label", "");
        const json::Value *metrics = raw.find("metrics");
        if (metrics != nullptr && metrics->isArray()) {
            for (const json::Value &m : metrics->array()) {
                MetricReading reading;
                reading.name = m.stringOr("name", "");
                reading.type = m.stringOr("type", "");
                reading.count =
                    static_cast<std::int64_t>(m.numberOr("count", 0.0));
                reading.sum = m.numberOr("sum", 0.0);
                reading.max = m.numberOr("max", 0.0);
                entry.snapshot.metrics.push_back(std::move(reading));
            }
            std::sort(entry.snapshot.metrics.begin(),
                      entry.snapshot.metrics.end(),
                      [](const MetricReading &a, const MetricReading &b) {
                          return a.name < b.name;
                      });
        }
        out.entries.push_back(std::move(entry));
    }
    return true;
}

void
writeTrajectory(const Trajectory &trajectory, std::ostream &os)
{
    os << "{\n  \"name\": \"" << trajectory.name
       << "\",\n  \"entries\": [\n";
    for (std::size_t e = 0; e < trajectory.entries.size(); ++e) {
        const TrajectoryEntry &entry = trajectory.entries[e];
        os << "    {\"label\": \"" << entry.label
           << "\", \"metrics\": [\n";
        const auto &metrics = entry.snapshot.metrics;
        for (std::size_t i = 0; i < metrics.size(); ++i) {
            const MetricReading &m = metrics[i];
            os << "      {\"name\": \"" << m.name << "\", \"type\": \""
               << m.type << "\", \"count\": " << m.count
               << ", \"sum\": " << num(m.sum)
               << ", \"max\": " << num(m.max) << "}"
               << (i + 1 < metrics.size() ? "," : "") << "\n";
        }
        os << "    ]}" << (e + 1 < trajectory.entries.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

void
writeTrajectoryCsv(const Trajectory &trajectory, std::ostream &os)
{
    os << "label,metric,type,count,sum,max\n";
    for (const TrajectoryEntry &entry : trajectory.entries) {
        for (const MetricReading &m : entry.snapshot.metrics) {
            os << entry.label << "," << m.name << "," << m.type << ","
               << m.count << "," << num(m.sum) << "," << num(m.max)
               << "\n";
        }
    }
}

bool
appendTrajectory(const std::string &path, const std::string &name,
                 const TrajectoryEntry &entry, std::string *error)
{
    Trajectory trajectory;
    std::string text;
    std::ifstream existing(path, std::ios::binary);
    if (existing) {
        std::ostringstream buffer;
        buffer << existing.rdbuf();
        text = buffer.str();
    }
    existing.close();
    if (!text.empty()) {
        if (!parseTrajectory(text, trajectory, error)) {
            if (error != nullptr) {
                *error = path + ": " + *error;
            }
            return false;
        }
    } else {
        trajectory.name = name;
    }
    bool replaced = false;
    for (TrajectoryEntry &existing_entry : trajectory.entries) {
        if (existing_entry.label == entry.label) {
            existing_entry = entry;
            replaced = true;
            break;
        }
    }
    if (!replaced) {
        trajectory.entries.push_back(entry);
    }
    std::ofstream out_file(path, std::ios::binary | std::ios::trunc);
    if (!out_file) {
        fail(error, "cannot write " + path);
        return false;
    }
    writeTrajectory(trajectory, out_file);
    return true;
}

} // namespace kodan::telemetry::report
