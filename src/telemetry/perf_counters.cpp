#include "telemetry/perf_counters.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <time.h>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define KODAN_PROF_HAVE_PERF_EVENT 1
#else
#define KODAN_PROF_HAVE_PERF_EVENT 0
#endif

namespace kodan::telemetry::prof {

namespace detail {

std::atomic<int> g_counters_enabled{0};

} // namespace detail

namespace {

/** -1 unresolved, else static_cast<int>(CounterSource). */
std::atomic<int> g_source{static_cast<int>(CounterSource::Unresolved)};
std::atomic<int> g_force_errno{0};
std::atomic<int> g_open_errno{0};

/** Number of group members: task-clock leader + four hardware events.
 *  Creation order fixes the read() layout below. */
constexpr int kGroupSize = 5;

std::uint64_t
threadClockNs()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

#if KODAN_PROF_HAVE_PERF_EVENT

int
perfEventOpen(perf_event_attr *attr, int group_fd)
{
    const int forced = g_force_errno.load(std::memory_order_relaxed);
    if (forced != 0) {
        errno = forced;
        return -1;
    }
    return static_cast<int>(syscall(SYS_perf_event_open, attr,
                                    /*pid=*/0, /*cpu=*/-1, group_fd,
                                    /*flags=*/0UL));
}

#endif // KODAN_PROF_HAVE_PERF_EVENT

/**
 * Per-thread counter file descriptors. Opened lazily on the first
 * readThreadCounters() call in each thread (never from a signal
 * handler); closed when the thread exits. A failed open — or a process
 * already resolved to the rusage source — leaves hw=false and the
 * thread reads the software clock instead.
 */
struct ThreadCounters
{
    bool tried = false;
    bool hw = false;
    int fds[kGroupSize] = {-1, -1, -1, -1, -1};

    ~ThreadCounters() { close(); }

    void close()
    {
#if KODAN_PROF_HAVE_PERF_EVENT
        for (int i = kGroupSize - 1; i >= 0; --i) {
            if (fds[i] >= 0) {
                ::close(fds[i]);
                fds[i] = -1;
            }
        }
#endif
        hw = false;
    }

    void open()
    {
        tried = true;
#if KODAN_PROF_HAVE_PERF_EVENT
        // Once one thread resolved to the software source, keep the
        // whole table homogeneous: mixing ns-only rows with
        // hardware rows would make the columns incomparable.
        if (g_source.load(std::memory_order_relaxed) ==
            static_cast<int>(CounterSource::Rusage)) {
            return;
        }
        if (const char *env = std::getenv("KODAN_PROF_FORCE_RUSAGE")) {
            if (std::strcmp(env, "0") != 0) {
                resolve(CounterSource::Rusage);
                return;
            }
        }
        struct Spec
        {
            std::uint32_t type;
            std::uint64_t config;
        };
        // Leader first: task-clock is a software event the kernel can
        // always schedule, so the hardware members ride in its group.
        static const Spec kSpecs[kGroupSize] = {
            {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
        };
        for (int i = 0; i < kGroupSize; ++i) {
            perf_event_attr attr{};
            attr.size = sizeof(attr);
            attr.type = kSpecs[i].type;
            attr.config = kSpecs[i].config;
            attr.read_format = PERF_FORMAT_GROUP;
            attr.exclude_kernel = 1;
            attr.exclude_hv = 1;
            fds[i] = perfEventOpen(&attr, i == 0 ? -1 : fds[0]);
            if (fds[i] < 0) {
                // All-or-nothing: a partial group (e.g. no LLC event
                // in a VM) would silently zero some columns, which is
                // exactly what the rusage marker exists to prevent.
                int expected = 0;
                g_open_errno.compare_exchange_strong(
                    expected, errno, std::memory_order_relaxed);
                close();
                resolve(CounterSource::Rusage);
                return;
            }
        }
        hw = true;
        resolve(CounterSource::PerfEvent);
#else
        resolve(CounterSource::Rusage);
#endif
    }

    static void resolve(CounterSource source)
    {
        int expected = static_cast<int>(CounterSource::Unresolved);
        g_source.compare_exchange_strong(expected,
                                         static_cast<int>(source),
                                         std::memory_order_relaxed);
    }

    bool read(CounterReading &out)
    {
        if (!tried) {
            open();
        }
#if KODAN_PROF_HAVE_PERF_EVENT
        if (hw) {
            struct
            {
                std::uint64_t nr;
                std::uint64_t values[kGroupSize];
            } buf{};
            const ssize_t got = ::read(fds[0], &buf, sizeof(buf));
            if (got == static_cast<ssize_t>(sizeof(buf)) &&
                buf.nr == kGroupSize) {
                out.task_clock_ns = buf.values[0];
                out.cycles = buf.values[1];
                out.instructions = buf.values[2];
                out.llc_misses = buf.values[3];
                out.branch_misses = buf.values[4];
                return true;
            }
            // A failing read (fd revoked, etc.) demotes this thread to
            // the software clock rather than returning zeros.
            close();
        }
#endif
        out = CounterReading{};
        out.task_clock_ns = threadClockNs();
        return true;
    }
};

thread_local ThreadCounters t_counters;

std::mutex g_sites_mutex;
std::map<std::string, std::unique_ptr<SpanSite>> &
sites()
{
    // Leaked on purpose: site references handed to call-site statics
    // must stay valid through every destructor and atexit handler
    // (same idiom as the metrics registry).
    static auto *map =
        new std::map<std::string, std::unique_ptr<SpanSite>>();
    return *map;
}

std::uint64_t
delta(std::uint64_t start, std::uint64_t end)
{
    return end > start ? end - start : 0;
}

} // namespace

void
setCountersEnabled(bool on)
{
    detail::g_counters_enabled.store(on ? 1 : 0,
                                     std::memory_order_relaxed);
}

CounterSource
counterSource()
{
    const int state = g_source.load(std::memory_order_relaxed);
    if (state != static_cast<int>(CounterSource::Unresolved)) {
        return static_cast<CounterSource>(state);
    }
    // Resolve by opening on the calling thread (flush-time callers).
    CounterReading probe;
    readThreadCounters(probe);
    return static_cast<CounterSource>(
        g_source.load(std::memory_order_relaxed));
}

const char *
counterSourceName()
{
    switch (counterSource()) {
    case CounterSource::PerfEvent:
        return "perf_event";
    case CounterSource::Rusage:
        return "rusage";
    case CounterSource::Unresolved:
        break;
    }
    return "unresolved";
}

void
setPerfForceErrnoForTest(int err)
{
    g_force_errno.store(err, std::memory_order_relaxed);
    if (err != 0) {
        // Let the next open re-resolve so a fresh thread exercises the
        // forced failure instead of inheriting the previous verdict.
        g_source.store(static_cast<int>(CounterSource::Unresolved),
                       std::memory_order_relaxed);
        g_open_errno.store(0, std::memory_order_relaxed);
    }
}

int
perfOpenErrno()
{
    return g_open_errno.load(std::memory_order_relaxed);
}

bool
readThreadCounters(CounterReading &out)
{
    return t_counters.read(out);
}

void
SpanSite::accumulate(const CounterReading &start,
                     const CounterReading &end)
{
    Shard &shard = shards_[telemetry::detail::threadShard()];
    shard.calls.fetch_add(1, std::memory_order_relaxed);
    shard.cycles.fetch_add(delta(start.cycles, end.cycles),
                           std::memory_order_relaxed);
    shard.instructions.fetch_add(
        delta(start.instructions, end.instructions),
        std::memory_order_relaxed);
    shard.llc_misses.fetch_add(delta(start.llc_misses, end.llc_misses),
                               std::memory_order_relaxed);
    shard.branch_misses.fetch_add(
        delta(start.branch_misses, end.branch_misses),
        std::memory_order_relaxed);
    shard.task_clock_ns.fetch_add(
        delta(start.task_clock_ns, end.task_clock_ns),
        std::memory_order_relaxed);
}

std::int64_t
SpanSite::calls() const
{
    std::int64_t total = 0;
    for (const Shard &shard : shards_) {
        total += shard.calls.load(std::memory_order_relaxed);
    }
    return total;
}

CounterReading
SpanSite::totals() const
{
    CounterReading total;
    for (const Shard &shard : shards_) {
        total.cycles += shard.cycles.load(std::memory_order_relaxed);
        total.instructions +=
            shard.instructions.load(std::memory_order_relaxed);
        total.llc_misses +=
            shard.llc_misses.load(std::memory_order_relaxed);
        total.branch_misses +=
            shard.branch_misses.load(std::memory_order_relaxed);
        total.task_clock_ns +=
            shard.task_clock_ns.load(std::memory_order_relaxed);
    }
    return total;
}

void
SpanSite::reset()
{
    for (Shard &shard : shards_) {
        shard.calls.store(0, std::memory_order_relaxed);
        shard.cycles.store(0, std::memory_order_relaxed);
        shard.instructions.store(0, std::memory_order_relaxed);
        shard.llc_misses.store(0, std::memory_order_relaxed);
        shard.branch_misses.store(0, std::memory_order_relaxed);
        shard.task_clock_ns.store(0, std::memory_order_relaxed);
    }
}

SpanSite &
spanSite(const std::string &name)
{
    std::lock_guard<std::mutex> lock(g_sites_mutex);
    auto &map = sites();
    auto it = map.find(name);
    if (it == map.end()) {
        it = map.emplace(name, std::make_unique<SpanSite>()).first;
    }
    return *it->second;
}

SpanTableSnapshot
spanTableSnapshot()
{
    SpanTableSnapshot snapshot;
    snapshot.source = counterSourceName();
    std::lock_guard<std::mutex> lock(g_sites_mutex);
    for (const auto &[name, site] : sites()) {
        SpanCounterRow row;
        row.name = name;
        row.calls = site->calls();
        const CounterReading totals = site->totals();
        row.cycles = totals.cycles;
        row.instructions = totals.instructions;
        row.llc_misses = totals.llc_misses;
        row.branch_misses = totals.branch_misses;
        row.task_clock_ns = totals.task_clock_ns;
        snapshot.rows.push_back(std::move(row));
    }
    return snapshot;
}

void
resetSpanTable()
{
    std::lock_guard<std::mutex> lock(g_sites_mutex);
    for (auto &[name, site] : sites()) {
        site->reset();
    }
}

} // namespace kodan::telemetry::prof
