#include "telemetry/health.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <ostream>
#include <tuple>
#include <utility>

#include "telemetry/exact_sum.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace kodan::telemetry::health {

namespace {

/** Same float formatting as the journal/JSON writers: the alert bytes
 *  are part of the determinism contract. */
std::string
number(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/** (kind, entity) — rollup key. */
using EntityKey = std::pair<int, std::int64_t>;

/** (kind, entity, signal) — stream key. Ordered maps keep every sweep
 *  (absence, snapshot) in a deterministic order. */
using StreamKey = std::tuple<int, std::int64_t, std::string>;

/** (rule index, kind, entity) — alert state key. */
using RuleKey = std::tuple<std::size_t, int, std::int64_t>;

struct RuleState
{
    explicit RuleState(const DetectorSuiteConfig &detectors)
        : ewma(detectors.ewma), robust(detectors.robust),
          flatline(detectors.flatline)
    {
    }

    std::int64_t breach_streak = 0;
    std::int64_t clear_streak = 0;
    /** Index into Impl::alerts while firing, -1 otherwise. */
    std::int64_t open_alert = -1;
    bool have_prev = false;
    double prev_value = 0.0;
    std::int64_t prev_bin = 0;
    /** Recent breaching observations, pending until the alert fires. */
    std::vector<AlertEvidence> pending;
    EwmaLevelShift ewma;
    RobustZScore robust;
    Flatline flatline;
};

struct Rollup
{
    std::int64_t observations = 0;
    std::int64_t anomalous = 0;
    std::int64_t alerts_fired = 0;
    std::int64_t last_bin = 0;
    detail::Fixed128 score;
    JournalWindow lane;
};

} // namespace

const char *
entityKindName(EntityKind kind)
{
    switch (kind) {
      case EntityKind::Satellite:
        return "satellite";
      case EntityKind::Station:
        return "station";
      case EntityKind::Stage:
        return "stage";
    }
    return "?";
}

struct HealthPlane::Impl
{
    mutable std::mutex mutex;
    HealthConfig config;
    std::vector<AlertRule> rules;
    /** Signals named by at least one Absence rule (deduped): only these
     *  streams need last-bin bookkeeping, which keeps the per-signal
     *  map update off the observe() hot path for everything else. */
    std::vector<std::string> absence_signals;
    std::map<EntityKey, Rollup> rollups;
    std::map<RuleKey, RuleState> states;
    /** Last bin each absence-watched stream reported in. */
    std::map<StreamKey, std::int64_t> stream_last_bin;
    std::vector<Alert> alerts;
    std::uint64_t next_alert_id = 1;
    std::int64_t observations = 0;
    std::int64_t alerts_fired = 0;

    void rebuildAbsenceSignals()
    {
        absence_signals.clear();
        for (const AlertRule &rule : rules) {
            if (rule.kind != AlertRule::Kind::Absence) {
                continue;
            }
            bool seen = false;
            for (const std::string &signal : absence_signals) {
                if (signal == rule.signal) {
                    seen = true;
                    break;
                }
            }
            if (!seen) {
                absence_signals.push_back(rule.signal);
            }
        }
    }

    bool absenceWatched(const std::string &signal) const
    {
        for (const std::string &watched : absence_signals) {
            if (watched == signal) {
                return true;
            }
        }
        return false;
    }

    /** One-entry memos for the observe() hot path: the engine folds
     *  feed runs of consecutive observations for the same entity, and
     *  node-based map values stay put, so a pointer memo skips the
     *  tree walk. Cleared whenever the backing maps are. */
    EntityKey memo_rollup_key{-1, -1};
    Rollup *memo_rollup = nullptr;
    RuleKey memo_state_key{0, -1, -1};
    RuleState *memo_state = nullptr;

    void dropMemos()
    {
        memo_rollup = nullptr;
        memo_state = nullptr;
    }

    Rollup &rollupFor(EntityKind kind, std::int64_t entity)
    {
        const EntityKey key{static_cast<int>(kind), entity};
        if (memo_rollup != nullptr && memo_rollup_key == key) {
            return *memo_rollup;
        }
        Rollup &rollup = rollups[key];
        memo_rollup_key = key;
        memo_rollup = &rollup;
        return rollup;
    }

    RuleState &stateFor(std::size_t rule_idx, EntityKind kind,
                        std::int64_t entity)
    {
        const RuleKey key{rule_idx, static_cast<int>(kind), entity};
        if (memo_state != nullptr && memo_state_key == key) {
            return *memo_state;
        }
        auto it = states.find(key);
        if (it == states.end()) {
            it = states.emplace(key, RuleState(config.detectors)).first;
        }
        memo_state_key = key;
        memo_state = &it->second;
        return it->second;
    }

    /** Drive one rule's firing→resolved machine with one evaluation. */
    void transition(const AlertRule &rule, RuleState &state,
                    Rollup &rollup, EntityKind kind, std::int64_t entity,
                    bool breach, std::int64_t bin, double t_s,
                    double value)
    {
        if (!breach) {
            state.breach_streak = 0;
            state.pending.clear();
            ++state.clear_streak;
            if (state.open_alert >= 0 &&
                state.clear_streak >= rule.clear_after) {
                Alert &alert =
                    alerts[static_cast<std::size_t>(state.open_alert)];
                alert.firing = false;
                state.open_alert = -1;
                KODAN_COUNT("health.alerts.resolved");
                if (journalEnabled()) {
                    JournalEventBuilder("health.alert.resolve")
                        .text("rule", rule.name)
                        .text("entity_kind", entityKindName(kind))
                        .i64("entity", entity)
                        .i64("bin", bin)
                        .f64("value", value);
                }
            }
            return;
        }
        state.clear_streak = 0;
        ++state.breach_streak;
        if (state.pending.size() >= config.max_evidence &&
            !state.pending.empty()) {
            state.pending.erase(state.pending.begin());
        }
        state.pending.push_back({bin, t_s, value});
        if (state.open_alert < 0) {
            if (state.breach_streak < rule.fire_after) {
                return;
            }
            Alert alert;
            alert.id = next_alert_id++;
            alert.rule = rule.name;
            alert.signal = rule.signal;
            alert.entity_kind = kind;
            alert.entity = entity;
            alert.firing = true;
            alert.first_bin = state.pending.front().bin;
            alert.last_bin = bin;
            alert.first_t_s = state.pending.front().t_s;
            alert.last_t_s = t_s;
            alert.peak_value = value;
            alert.last_value = value;
            alert.journal = rollup.lane;
            alert.evidence = state.pending;
            for (const AlertEvidence &ev : alert.evidence) {
                if (std::fabs(ev.value) >
                    std::fabs(alert.peak_value)) {
                    alert.peak_value = ev.value;
                }
            }
            state.open_alert = static_cast<std::int64_t>(alerts.size());
            alerts.push_back(std::move(alert));
            ++rollup.alerts_fired;
            ++alerts_fired;
            KODAN_COUNT("health.alerts.fired");
            if (journalEnabled()) {
                JournalEventBuilder("health.alert.fire")
                    .text("rule", rule.name)
                    .text("entity_kind", entityKindName(kind))
                    .i64("entity", entity)
                    .i64("bin", bin)
                    .f64("value", value);
            }
            return;
        }
        Alert &alert =
            alerts[static_cast<std::size_t>(state.open_alert)];
        alert.last_bin = bin;
        alert.last_t_s = t_s;
        alert.last_value = value;
        if (std::fabs(value) > std::fabs(alert.peak_value)) {
            alert.peak_value = value;
        }
        if (alert.evidence.size() < config.max_evidence) {
            alert.evidence.push_back({bin, t_s, value});
        }
        // The entity's lane keeps advancing while the alert burns;
        // widen the evidence window to cover it.
        if (rollup.lane.valid && alert.journal.valid &&
            rollup.lane.region == alert.journal.region &&
            rollup.lane.slot == alert.journal.slot) {
            alert.journal.ord_hi =
                std::max(alert.journal.ord_hi, rollup.lane.ord_hi);
        }
    }

    /** Evaluate the Absence rules against every known stream. */
    void sweepAbsence(std::int64_t bin, double t_s)
    {
        for (std::size_t r = 0; r < rules.size(); ++r) {
            const AlertRule &rule = rules[r];
            if (rule.kind != AlertRule::Kind::Absence) {
                continue;
            }
            for (const auto &[key, last] : stream_last_bin) {
                if (std::get<2>(key) != rule.signal) {
                    continue;
                }
                const auto kind =
                    static_cast<EntityKind>(std::get<0>(key));
                const std::int64_t entity = std::get<1>(key);
                const std::int64_t gap = bin - last;
                transition(rule, stateFor(r, kind, entity),
                           rollupFor(kind, entity), kind,
                           entity, gap > rule.gap_bins, bin, t_s,
                           static_cast<double>(gap));
            }
        }
    }
};

HealthPlane::HealthPlane() : impl_(new Impl)
{
    configure({});
}

HealthPlane::~HealthPlane()
{
    delete impl_;
}

void
HealthPlane::configure(const HealthConfig &config)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->config = config;
        impl_->rules.clear();
        impl_->absence_signals.clear();
        impl_->dropMemos();
        impl_->rollups.clear();
        impl_->states.clear();
        impl_->stream_last_bin.clear();
        impl_->alerts.clear();
        impl_->next_alert_id = 1;
        impl_->observations = 0;
        impl_->alerts_fired = 0;
    }
    if (config.default_rules) {
        installDefaultRules(*this);
    }
}

void
HealthPlane::reset()
{
    HealthConfig config;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        config = impl_->config;
    }
    configure(config);
}

void
HealthPlane::addRule(const AlertRule &rule)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->rules.push_back(rule);
    impl_->rebuildAbsenceSignals();
}

void
HealthPlane::clearRules()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->rules.clear();
    impl_->absence_signals.clear();
    impl_->dropMemos();
    impl_->states.clear();
}

std::vector<AlertRule>
HealthPlane::rules() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->rules;
}

void
HealthPlane::observe(EntityKind kind, std::int64_t entity,
                     const std::string &signal, std::int64_t bin,
                     double t_s, double value)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    Impl &impl = *impl_;
    const double v = detectorQuantize(value);
    if (impl.absenceWatched(signal)) {
        impl.stream_last_bin[{static_cast<int>(kind), entity, signal}] =
            bin;
    }
    Rollup &rollup = impl.rollupFor(kind, entity);
    ++rollup.observations;
    rollup.last_bin = bin;
    ++impl.observations;

    double worst_score = 0.0;
    bool any_breach = false;
    for (std::size_t r = 0; r < impl.rules.size(); ++r) {
        const AlertRule &rule = impl.rules[r];
        if (rule.signal != signal) {
            continue;
        }
        if (rule.kind == AlertRule::Kind::Absence) {
            // A fresh observation is the absence rule's all-clear.
            RuleState &state = impl.stateFor(r, kind, entity);
            impl.transition(rule, state, rollup, kind, entity, false,
                            bin, t_s, v);
            continue;
        }
        RuleState &state = impl.stateFor(r, kind, entity);
        bool breach = false;
        double score = 0.0;
        switch (rule.kind) {
          case AlertRule::Kind::Threshold:
            breach = rule.op == AlertRule::Op::Gt ? v > rule.threshold
                                                  : v < rule.threshold;
            score = breach ? (rule.threshold != 0.0
                                  ? std::fabs(v / rule.threshold)
                                  : 1.0)
                           : 0.0;
            break;
          case AlertRule::Kind::Rate: {
            if (state.have_prev && bin > state.prev_bin) {
                const double rate =
                    std::fabs(v - state.prev_value) /
                    static_cast<double>(bin - state.prev_bin);
                breach = rate > rule.threshold;
                score = breach ? (rule.threshold != 0.0
                                      ? rate / rule.threshold
                                      : 1.0)
                               : 0.0;
            }
            state.have_prev = true;
            state.prev_value = v;
            state.prev_bin = bin;
            break;
          }
          case AlertRule::Kind::Anomaly: {
            Verdict verdict;
            switch (rule.detector) {
              case AlertRule::Detector::Ewma:
                verdict = state.ewma.step(v);
                break;
              case AlertRule::Detector::Robust:
                verdict = state.robust.step(v);
                break;
              case AlertRule::Detector::Flatline:
                verdict = state.flatline.step(v);
                break;
            }
            breach = verdict.anomalous;
            score = verdict.score;
            break;
          }
          case AlertRule::Kind::Absence:
            break;
        }
        impl.transition(rule, state, rollup, kind, entity, breach, bin,
                        t_s, v);
        if (breach) {
            any_breach = true;
            worst_score = std::max(worst_score, score);
        }
    }
    if (any_breach) {
        ++rollup.anomalous;
        detail::addFixed(rollup.score, detail::toFixed(worst_score));
    }
}

void
HealthPlane::observeLane(EntityKind kind, std::int64_t entity,
                         std::uint64_t region, std::uint64_t slot,
                         std::uint32_t ord_lo, std::uint32_t ord_hi)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    JournalWindow &lane = impl_->rollupFor(kind, entity).lane;
    if (lane.valid && lane.region == region && lane.slot == slot) {
        lane.ord_lo = std::min(lane.ord_lo, ord_lo);
        lane.ord_hi = std::max(lane.ord_hi, ord_hi);
    } else {
        lane = {region, slot, ord_lo, ord_hi, true};
    }
}

void
HealthPlane::advance(std::int64_t bin, double t_s)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->sweepAbsence(bin, t_s);
}

void
HealthPlane::finish(std::int64_t bin, double t_s)
{
    advance(bin, t_s);
}

HealthSnapshot
HealthPlane::snapshot() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const Impl &impl = *impl_;
    HealthSnapshot out;
    out.entities = static_cast<std::int64_t>(impl.rollups.size());
    out.observations = impl.observations;
    out.alerts_fired = impl.alerts_fired;
    out.alerts = impl.alerts;
    for (const Alert &alert : out.alerts) {
        if (alert.firing) {
            ++out.alerts_firing;
        }
    }

    std::vector<RollupEntry> entries;
    entries.reserve(impl.rollups.size());
    for (const auto &[key, rollup] : impl.rollups) {
        RollupEntry entry;
        entry.kind = static_cast<EntityKind>(key.first);
        entry.entity = key.second;
        entry.members = 1;
        entry.observations = rollup.observations;
        entry.anomalous = rollup.anomalous;
        entry.alerts_fired = rollup.alerts_fired;
        entry.score_sum = detail::fromFixed(rollup.score);
        entry.last_bin = rollup.last_bin;
        entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const RollupEntry &a, const RollupEntry &b) {
                  if (a.alerts_fired != b.alerts_fired) {
                      return a.alerts_fired > b.alerts_fired;
                  }
                  if (a.anomalous != b.anomalous) {
                      return a.anomalous > b.anomalous;
                  }
                  if (a.score_sum != b.score_sum) {
                      return a.score_sum > b.score_sum;
                  }
                  if (a.kind != b.kind) {
                      return static_cast<int>(a.kind) <
                             static_cast<int>(b.kind);
                  }
                  return a.entity < b.entity;
              });
    const std::size_t keep =
        std::min(entries.size(), impl.config.top_k);
    out.top.assign(entries.begin(),
                   entries.begin() + static_cast<long>(keep));
    out.other.kind = EntityKind::Satellite;
    out.other.entity = -1;
    detail::Fixed128 other_score;
    for (std::size_t i = keep; i < entries.size(); ++i) {
        const RollupEntry &entry = entries[i];
        ++out.other.members;
        out.other.observations += entry.observations;
        out.other.anomalous += entry.anomalous;
        out.other.alerts_fired += entry.alerts_fired;
        detail::addFixed(other_score, detail::toFixed(entry.score_sum));
        out.other.last_bin =
            std::max(out.other.last_bin, entry.last_bin);
    }
    out.other.score_sum = detail::fromFixed(other_score);
    return out;
}

HealthPlane &
plane()
{
    // Leaked on purpose, like registry(): the telemetry exit hook
    // snapshots the plane from an atexit handler, which can run after
    // a function-local static's destructor would have torn it down.
    static HealthPlane *instance = new HealthPlane();
    return *instance;
}

namespace {

std::atomic<int> g_health_enabled{-1};

bool
envFalsy(const char *value)
{
    return value == nullptr || *value == '\0' ||
           std::strcmp(value, "0") == 0 ||
           std::strcmp(value, "false") == 0 ||
           std::strcmp(value, "off") == 0;
}

} // namespace

bool
healthEnabled()
{
    int state = g_health_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        // KODAN_ALERTS is both the toggle and (for path-like values)
        // the output destination; anything non-falsy enables.
        const bool on = !envFalsy(std::getenv("KODAN_ALERTS"));
        int expected = -1;
        g_health_enabled.compare_exchange_strong(
            expected, on ? 1 : 0, std::memory_order_relaxed);
        state = g_health_enabled.load(std::memory_order_relaxed);
    }
    return state != 0;
}

void
setHealthEnabled(bool on)
{
    g_health_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
installDefaultRules(HealthPlane &plane)
{
    // Storage shed: any dropped bit is a hard fault worth an alert.
    AlertRule storage;
    storage.name = "storage.drop";
    storage.signal = "storage.dropped_bits";
    storage.kind = AlertRule::Kind::Threshold;
    storage.op = AlertRule::Op::Gt;
    storage.threshold = 0.0;
    storage.fire_after = 1;
    storage.clear_after = 2;
    plane.addRule(storage);

    // Downlink silence: healthy satellites drain every few bins; a
    // day-plus gap means a dead radio or a station dropping the queue.
    AlertRule absence;
    absence.name = "downlink.absence";
    absence.signal = "downlink.bits";
    absence.kind = AlertRule::Kind::Absence;
    absence.gap_bins = 48;
    absence.fire_after = 1;
    absence.clear_after = 1;
    plane.addRule(absence);

    // Value-density collapse: robust z against the satellite's own
    // recent DVD history (median/MAD tolerates the stochastic scatter).
    AlertRule dvd;
    dvd.name = "dvd.anomaly";
    dvd.signal = "dvd";
    dvd.kind = AlertRule::Kind::Anomaly;
    dvd.detector = AlertRule::Detector::Robust;
    dvd.fire_after = 2;
    dvd.clear_after = 2;
    plane.addRule(dvd);

    // Stuck recorder: a backlog that repeats the same bit pattern for
    // a whole window is pinned (e.g. saturated at the storage cap).
    AlertRule stuck;
    stuck.name = "queue.stuck";
    stuck.signal = "queue.depth_bits";
    stuck.kind = AlertRule::Kind::Anomaly;
    stuck.detector = AlertRule::Detector::Flatline;
    stuck.fire_after = 1;
    stuck.clear_after = 1;
    plane.addRule(stuck);

    // Data-plane backpressure: a stage ring that stays nearly full for
    // a whole run is the capacity bottleneck.
    AlertRule ring;
    ring.name = "pipeline.ring.saturation";
    ring.signal = "ring.saturation";
    ring.kind = AlertRule::Kind::Threshold;
    ring.op = AlertRule::Op::Gt;
    ring.threshold = 0.95;
    ring.fire_after = 1;
    ring.clear_after = 1;
    plane.addRule(ring);
}

namespace {

void
writeAlertBody(const Alert &alert, std::ostream &out)
{
    out << "{\"id\":" << alert.id << ",\"rule\":\""
        << jsonEscape(alert.rule) << "\",\"signal\":\""
        << jsonEscape(alert.signal) << "\",\"kind\":\""
        << entityKindName(alert.entity_kind)
        << "\",\"entity\":" << alert.entity << ",\"state\":\""
        << (alert.firing ? "firing" : "resolved")
        << "\",\"first_bin\":" << alert.first_bin
        << ",\"last_bin\":" << alert.last_bin
        << ",\"first_t_s\":" << number(alert.first_t_s)
        << ",\"last_t_s\":" << number(alert.last_t_s)
        << ",\"peak\":" << number(alert.peak_value)
        << ",\"last\":" << number(alert.last_value) << ",\"journal\":";
    if (alert.journal.valid) {
        out << "{\"region\":" << alert.journal.region
            << ",\"slot\":" << alert.journal.slot
            << ",\"ord_lo\":" << alert.journal.ord_lo
            << ",\"ord_hi\":" << alert.journal.ord_hi << "}";
    } else {
        out << "null";
    }
    out << ",\"evidence\":[";
    for (std::size_t i = 0; i < alert.evidence.size(); ++i) {
        const AlertEvidence &ev = alert.evidence[i];
        if (i != 0) {
            out << ",";
        }
        out << "{\"bin\":" << ev.bin << ",\"t_s\":" << number(ev.t_s)
            << ",\"value\":" << number(ev.value) << "}";
    }
    out << "]}";
}

} // namespace

void
writeAlertsJsonl(const std::vector<Alert> &alerts, std::ostream &out)
{
    std::size_t firing = 0;
    for (const Alert &alert : alerts) {
        if (alert.firing) {
            ++firing;
        }
    }
    out << "{\"kodan_alerts\":1,\"alerts\":" << alerts.size()
        << ",\"firing\":" << firing << "}\n";
    for (const Alert &alert : alerts) {
        writeAlertBody(alert, out);
        out << "\n";
    }
}

void
writeHealthTable(const HealthSnapshot &snapshot, std::ostream &out)
{
    out << "entities=" << snapshot.entities
        << " observations=" << snapshot.observations
        << " alerts_fired=" << snapshot.alerts_fired
        << " firing=" << snapshot.alerts_firing << "\n";
    out << "  entity             obs    anomalous  alerts  score\n";
    const auto row = [&out](const std::string &label,
                            const RollupEntry &entry) {
        out << "  " << label;
        for (std::size_t pad = label.size(); pad < 17; ++pad) {
            out << ' ';
        }
        out << "  " << entry.observations << "  " << entry.anomalous
            << "  " << entry.alerts_fired << "  " << entry.score_sum
            << "\n";
    };
    for (const RollupEntry &entry : snapshot.top) {
        row(std::string(entityKindName(entry.kind)) + "/" +
                std::to_string(entry.entity),
            entry);
    }
    if (snapshot.other.members > 0) {
        row("other(" + std::to_string(snapshot.other.members) + ")",
            snapshot.other);
    }
    for (const Alert &alert : snapshot.alerts) {
        out << "  [" << (alert.firing ? "firing" : "resolved") << "] "
            << alert.rule << " " << entityKindName(alert.entity_kind)
            << "/" << alert.entity << " bins " << alert.first_bin
            << ".." << alert.last_bin << " peak " << alert.peak_value
            << " last " << alert.last_value << "\n";
    }
}

} // namespace kodan::telemetry::health
