/**
 * @file
 * Fleet health plane: streaming rollups + declarative alerting over the
 * deterministic telemetry streams.
 *
 * PRs 2-4 record everything (metrics, journal, TimeSeries, lineage) but
 * interpret nothing while the mission runs; a constellation can spend a
 * simulated year degraded and nobody notices until a post-hoc
 * kodan-report diff. The health plane is the online interpreter:
 *
 *  - **Observations, not wall clock.** Engines feed per-(entity,
 *    signal) observations keyed by sim-time bin — the same
 *    already-deterministic per-bin aggregates that back the TimeSeries
 *    — from their *serial* index-order folds. ConstellationEngine
 *    feeds per-satellite and per-station bins; PipelineRuntime feeds
 *    per-stage stall/ring-saturation signals. Nothing here reads a
 *    clock, so verdicts are pure functions of the observation
 *    sequence and inherit the engines' bit-identity across
 *    KODAN_THREADS and shard sizes.
 *  - **Online detectors** (detector.hpp): EWMA level-shift, MAD robust
 *    z-score, fixed-point flatline — instantiated per (rule, entity)
 *    stream by the rules engine.
 *  - **Declarative alert rules**: threshold / rate / absence / anomaly
 *    conditions over signal selectors, a firing→resolved state machine
 *    with consecutive-observation hysteresis, and per-alert evidence:
 *    the breaching observations plus the entity's journal lane window
 *    (region, slot, ord range) so tools can slice the flight recorder
 *    to the exact events behind an alert.
 *  - **Cardinality-controlled rollups**: per-entity counters fold into
 *    a top-K offender table plus a single "other" bucket (K
 *    configurable), so a 10k-satellite fleet summarizes in O(K) no
 *    matter how many entities report.
 *  - **Export**: `--alerts-out PATH` / `KODAN_ALERTS` (wired through
 *    telemetry::configureFromArgs) writes the alert JSONL at exit;
 *    alert bytes are part of the determinism contract (see
 *    `ctest -L health`). Alert transitions also emit
 *    `health.alert.fire` / `health.alert.resolve` journal events for
 *    the kodan-top live alerts pane.
 *
 * Threading: observe()/advance()/finish() mutate under one mutex, but
 * the determinism contract additionally requires callers to feed each
 * stream in a deterministic serial order (the engines' index-order
 * folds do). snapshot() is safe at quiescence.
 */

#ifndef KODAN_TELEMETRY_HEALTH_HPP
#define KODAN_TELEMETRY_HEALTH_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/detector.hpp"

namespace kodan::telemetry::health {

/** What kind of fleet asset an observation stream belongs to. */
enum class EntityKind
{
    Satellite,
    Station,
    Stage,
};

/** Stable lowercase name ("satellite", "station", "stage"). */
const char *entityKindName(EntityKind kind);

/** One declarative alert rule over a signal selector. */
struct AlertRule
{
    enum class Kind
    {
        /** Breach when value `op` threshold. */
        Threshold,
        /** Breach when |Δvalue| / Δbin > threshold. */
        Rate,
        /** Breach when a previously seen stream goes silent for more
         *  than `gap_bins` bins (evaluated at advance()/finish()). */
        Absence,
        /** Breach when the selected detector flags the observation. */
        Anomaly,
    };

    enum class Op
    {
        Gt,
        Lt,
    };

    enum class Detector
    {
        Ewma,
        Robust,
        Flatline,
    };

    /** Alert name, e.g. "storage.drop". */
    std::string name;
    /** Exact signal selector, e.g. "storage.dropped_bits". */
    std::string signal;
    Kind kind = Kind::Threshold;
    Op op = Op::Gt;
    /** Threshold / rate limit (unused for Absence/Anomaly). */
    double threshold = 0.0;
    /** Absence only: silent bins tolerated before breaching. */
    std::int64_t gap_bins = 48;
    /** Anomaly only: which detector instance the rule runs. */
    Detector detector = Detector::Ewma;
    /** Consecutive breaching observations before the alert fires. */
    std::int64_t fire_after = 1;
    /** Consecutive clear observations before a firing alert resolves. */
    std::int64_t clear_after = 2;
};

/** One breaching observation kept as alert evidence. */
struct AlertEvidence
{
    std::int64_t bin = 0;
    double t_s = 0.0;
    double value = 0.0;
};

/** Journal lane window tying an alert to flight-recorder events. */
struct JournalWindow
{
    std::uint64_t region = 0;
    std::uint64_t slot = 0;
    std::uint32_t ord_lo = 0;
    std::uint32_t ord_hi = 0;
    bool valid = false;
};

/** One alert instance (firing or resolved). */
struct Alert
{
    std::uint64_t id = 0;
    std::string rule;
    std::string signal;
    EntityKind entity_kind = EntityKind::Satellite;
    std::int64_t entity = 0;
    bool firing = true;
    std::int64_t first_bin = 0;
    std::int64_t last_bin = 0;
    double first_t_s = 0.0;
    double last_t_s = 0.0;
    /** Largest breaching magnitude observed while firing. */
    double peak_value = 0.0;
    /** Most recent breaching value. */
    double last_value = 0.0;
    JournalWindow journal;
    /** Up to HealthConfig::max_evidence breaching observations. */
    std::vector<AlertEvidence> evidence;
};

/** Per-entity rollup counters. */
struct RollupEntry
{
    EntityKind kind = EntityKind::Satellite;
    std::int64_t entity = 0;
    /** Number of entities folded in (1 for a named entry, >= 0 for the
     *  "other" bucket). */
    std::int64_t members = 0;
    std::int64_t observations = 0;
    /** Observations on which at least one rule breached. */
    std::int64_t anomalous = 0;
    std::int64_t alerts_fired = 0;
    /** Exact (fixed-point accumulated) sum of breach scores. */
    double score_sum = 0.0;
    std::int64_t last_bin = 0;
};

/** Point-in-time view of the plane. */
struct HealthSnapshot
{
    /** Top-K offenders, worst first (alerts, then anomalous count,
     *  then score). */
    std::vector<RollupEntry> top;
    /** Every entity not in `top`, folded into one bucket. */
    RollupEntry other;
    std::int64_t entities = 0;
    std::int64_t observations = 0;
    std::int64_t alerts_fired = 0;
    std::int64_t alerts_firing = 0;
    /** All alerts, ordered by id (fire order). */
    std::vector<Alert> alerts;
};

/** Detector tuning shared by all Anomaly rules. */
struct DetectorSuiteConfig
{
    EwmaConfig ewma;
    RobustZConfig robust;
    FlatlineConfig flatline;
};

/** Plane-wide tuning. */
struct HealthConfig
{
    /** Rollup cardinality: named offender entries kept per snapshot. */
    std::size_t top_k = 8;
    /** Breaching observations retained per alert. */
    std::size_t max_evidence = 8;
    DetectorSuiteConfig detectors;
    /** Install the stock fleet rules (installDefaultRules). */
    bool default_rules = true;
};

/**
 * The streaming health plane. One global instance (plane()) is fed by
 * the engines; independent instances can be built for tests.
 */
class HealthPlane
{
  public:
    HealthPlane();
    ~HealthPlane();
    HealthPlane(const HealthPlane &) = delete;
    HealthPlane &operator=(const HealthPlane &) = delete;

    /** Drop all state and rules, apply @p config, and (by default)
     *  reinstall the stock rules. */
    void configure(const HealthConfig &config);

    /** Reset state and rules under the current config. */
    void reset();

    void addRule(const AlertRule &rule);
    void clearRules();
    std::vector<AlertRule> rules() const;

    /**
     * Feed one observation. Callers must feed streams in a
     * deterministic serial order (engine index-order folds); bin/t_s
     * are sim time, never wall clock.
     */
    void observe(EntityKind kind, std::int64_t entity,
                 const std::string &signal, std::int64_t bin, double t_s,
                 double value);

    /** Update @p entity's journal lane window; subsequent alerts for
     *  the entity carry it as evidence. */
    void observeLane(EntityKind kind, std::int64_t entity,
                     std::uint64_t region, std::uint64_t slot,
                     std::uint32_t ord_lo, std::uint32_t ord_hi);

    /** Advance the plane's bin horizon: evaluates Absence rules
     *  against every stream seen so far. Call once per closed span
     *  (e.g. per engine chunk). */
    void advance(std::int64_t bin, double t_s);

    /** Final advance at end of run; firing alerts stay firing. */
    void finish(std::int64_t bin, double t_s);

    HealthSnapshot snapshot() const;

  private:
    struct Impl;
    Impl *impl_;
};

/** The process-wide plane fed by the engines. */
HealthPlane &plane();

/** Health-plane master switch; defaults from the KODAN_ALERTS env var
 *  ("1"/"true"/"on", or any non-empty path-like value used as the
 *  alerts output path). Engines skip the health fold entirely when
 *  disabled, so default runs carry zero health overhead. */
bool healthEnabled();
void setHealthEnabled(bool on);

/** Stock fleet rules: storage-drop threshold, downlink absence, DVD
 *  robust-z anomaly, queue flatline, pipeline ring saturation. */
void installDefaultRules(HealthPlane &plane);

/** Alert JSONL: one header object, then one object per alert, field
 *  order fixed — the bytes are part of the determinism contract. */
void writeAlertsJsonl(const std::vector<Alert> &alerts,
                      std::ostream &out);

/** Human-oriented rollup + alert table (kodan-report health). */
void writeHealthTable(const HealthSnapshot &snapshot, std::ostream &out);

} // namespace kodan::telemetry::health

#endif // KODAN_TELEMETRY_HEALTH_HPP
