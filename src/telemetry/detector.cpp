#include "telemetry/detector.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/exact_sum.hpp"

namespace kodan::telemetry::health {

double
detectorQuantize(double value)
{
    return detail::fromFixed(detail::toFixed(value));
}

EwmaLevelShift::EwmaLevelShift(const EwmaConfig &config) : config_(config)
{
}

Verdict
EwmaLevelShift::step(double value)
{
    const double v = detectorQuantize(value);
    Verdict verdict;
    if (seen_ == 0) {
        mean_ = v;
        dev_ = 0.0;
        seen_ = 1;
        return verdict;
    }
    const double residual = v - mean_;
    const double envelope = std::max(
        dev_, config_.min_dev + config_.rel_dev * std::fabs(mean_));
    if (seen_ >= config_.warmup && envelope > 0.0) {
        verdict.score = std::fabs(residual) / (config_.k * envelope);
        verdict.anomalous = verdict.score > 1.0;
    }
    // The envelope adapts even through breaches: a genuine level shift
    // is flagged while the mean walks over, then becomes the new
    // normal — exactly the firing→resolved arc the alert engine keys
    // on. State stays quantized so the sequence of states is a pure
    // function of the quantized input stream.
    mean_ = detectorQuantize(mean_ + config_.alpha * residual);
    dev_ = detectorQuantize(
        dev_ + config_.alpha * (std::fabs(residual) - dev_));
    ++seen_;
    return verdict;
}

void
EwmaLevelShift::reset()
{
    mean_ = 0.0;
    dev_ = 0.0;
    seen_ = 0;
}

RobustZScore::RobustZScore(const RobustZConfig &config) : config_(config)
{
    if (config_.window == 0) {
        config_.window = 1;
    }
    window_.assign(config_.window, 0.0);
}

namespace {

/** Median of the first @p n entries of @p values (sorts in place). */
double
medianOf(std::vector<double> &values, std::size_t n)
{
    std::sort(values.begin(), values.begin() + static_cast<long>(n));
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // namespace

Verdict
RobustZScore::step(double value)
{
    const double v = detectorQuantize(value);
    Verdict verdict;
    if (filled_ >= std::max<std::size_t>(config_.min_points, 2)) {
        scratch_.assign(window_.begin(),
                        window_.begin() + static_cast<long>(filled_));
        const double med = medianOf(scratch_, filled_);
        for (std::size_t i = 0; i < filled_; ++i) {
            scratch_[i] = std::fabs(scratch_[i] - med);
        }
        // 1.4826 rescales MAD to the stddev of a normal distribution.
        const double mad = medianOf(scratch_, filled_);
        const double scale = std::max(
            1.4826 * mad,
            config_.min_scale + config_.rel_scale * std::fabs(med));
        if (scale > 0.0) {
            verdict.score = std::fabs(v - med) / (config_.k * scale);
            verdict.anomalous = verdict.score > 1.0;
        }
    }
    window_[next_] = v;
    next_ = (next_ + 1) % config_.window;
    filled_ = std::min(filled_ + 1, config_.window);
    return verdict;
}

void
RobustZScore::reset()
{
    std::fill(window_.begin(), window_.end(), 0.0);
    next_ = 0;
    filled_ = 0;
}

Flatline::Flatline(const FlatlineConfig &config) : config_(config)
{
    if (config_.window < 2) {
        config_.window = 2;
    }
}

Verdict
Flatline::step(double value)
{
    const detail::Fixed128 fixed = detail::toFixed(value);
    const double v = detail::fromFixed(fixed);
    if (run_ > 0 && fixed == detail::toFixed(last_)) {
        ++run_;
    } else {
        run_ = 1;
        last_ = v;
    }
    Verdict verdict;
    if (config_.ignore_zero && fixed == detail::Fixed128{}) {
        return verdict;
    }
    verdict.score = static_cast<double>(run_) /
                    static_cast<double>(config_.window);
    verdict.anomalous = run_ >= config_.window;
    return verdict;
}

void
Flatline::reset()
{
    last_ = 0.0;
    run_ = 0;
}

} // namespace kodan::telemetry::health
