/**
 * @file
 * Order-invariant floating-point accumulation for the telemetry layer.
 *
 * Parallel reductions of doubles are not associative: the final ulp of
 * a shard-merged sum depends on which thread fed which shard. The
 * metrics registry and the time-series facility instead accumulate in a
 * signed 128-bit fixed-point representation (scale 2^-64): every
 * contribution is quantized once, deterministically, and from then on
 * the arithmetic is integer addition — associative and commutative — so
 * the merged total is an exact function of the multiset of recorded
 * values, invariant to thread count and interleaving.
 *
 * Representable range is |v| < 2^63 (~9.2e18) with 2^-64 (~5.4e-20)
 * resolution; out-of-range magnitudes saturate and NaN contributes
 * zero, both deterministically. Doubles whose exponent is >= -11 (i.e.
 * anything down to ~5e-4 and every integer-valued quantity the repo
 * records: bits, seconds, counts) convert without rounding, so for the
 * practical domain the totals are *exact* sums, not just deterministic
 * ones.
 */

#ifndef KODAN_TELEMETRY_EXACT_SUM_HPP
#define KODAN_TELEMETRY_EXACT_SUM_HPP

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>

namespace kodan::telemetry::detail {

/** A signed 128-bit fixed-point value: hi * 2^64 + lo, scaled 2^-64. */
struct Fixed128
{
    std::int64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fixed128 &other) const
    {
        return hi == other.hi && lo == other.lo;
    }
};

/** Quantize @p value to fixed point (truncation toward zero; saturates
 *  at |v| >= 2^63; NaN maps to zero). */
inline Fixed128
toFixed(double value)
{
    Fixed128 out;
    if (std::isnan(value) || value == 0.0) {
        return out;
    }
    const bool negative = value < 0.0;
    const double magnitude = std::fabs(value);
    int exp = 0;
    const double mant = std::frexp(magnitude, &exp); // mant in [0.5, 1)
    unsigned __int128 fixed;
    if (!std::isfinite(magnitude) || exp > 63) {
        // Saturate: the largest positive / smallest negative value.
        fixed = (~(unsigned __int128)0) >> 1;
    } else {
        const auto m53 =
            static_cast<std::uint64_t>(std::ldexp(mant, 53));
        const int shift = exp + 64 - 53;
        if (shift >= 0) {
            fixed = (unsigned __int128)m53 << shift;
        } else if (shift > -64) {
            fixed = (unsigned __int128)(m53 >> -shift);
        } else {
            fixed = 0;
        }
    }
    const __int128 signed_fixed =
        negative ? -(__int128)fixed : (__int128)fixed;
    out.lo = static_cast<std::uint64_t>((unsigned __int128)signed_fixed);
    out.hi = static_cast<std::int64_t>(signed_fixed >> 64);
    return out;
}

/** The double nearest the fixed-point value (one rounding, at read). */
inline double
fromFixed(const Fixed128 &value)
{
    const __int128 wide =
        ((__int128)value.hi << 64) | (unsigned __int128)value.lo;
    return std::ldexp(static_cast<double>(wide), -64);
}

/** acc += delta in 128-bit integer arithmetic. */
inline void
addFixed(Fixed128 &acc, const Fixed128 &delta)
{
    const std::uint64_t lo = acc.lo + delta.lo;
    acc.hi += delta.hi + (lo < delta.lo ? 1 : 0);
    acc.lo = lo;
}

/**
 * One cache line holding one lock-free fixed-point accumulator.
 *
 * add() is a two-limb atomic protocol: the low limb's fetch_add returns
 * the prior value, from which the carry into the high limb is derived
 * and folded into the high limb's fetch_add. Concurrent adds therefore
 * never lose a carry; a read concurrent with an add may transiently
 * miss an in-flight carry, so exactness claims apply to reads at
 * quiescence (where every snapshot in this repo happens — after the
 * parallel region), like every other shard-merged reading.
 */
struct alignas(64) ExactShard
{
    std::atomic<std::uint64_t> lo{0};
    std::atomic<std::int64_t> hi{0};

    void add(double value)
    {
        const Fixed128 fixed = toFixed(value);
        const std::uint64_t prev =
            lo.fetch_add(fixed.lo, std::memory_order_relaxed);
        const std::int64_t carry =
            (prev + fixed.lo) < fixed.lo ? 1 : 0;
        hi.fetch_add(fixed.hi + carry, std::memory_order_relaxed);
    }

    Fixed128 read() const
    {
        Fixed128 out;
        out.lo = lo.load(std::memory_order_relaxed);
        out.hi = hi.load(std::memory_order_relaxed);
        return out;
    }

    void reset()
    {
        lo.store(0, std::memory_order_relaxed);
        hi.store(0, std::memory_order_relaxed);
    }
};

} // namespace kodan::telemetry::detail

#endif // KODAN_TELEMETRY_EXACT_SUM_HPP
