/**
 * @file
 * Per-frame lineage spans: a deterministic record of every frame's path
 * through the mission pipeline, in simulated time.
 *
 * Each captured frame carries a deterministic lineage id derived from
 * (satellite index, capture ordinal). The pipeline stamps the frame at
 * fixed stages:
 *
 *   captured    frame leaves the sensor
 *   decided     specialization/tiling/elision verdict (end of on-board
 *               compute; inference is folded into this stage — the
 *               mission filter model charges one frame_time for both)
 *   enqueued    entered the downlink queue
 *   contact     first granted contact at/after enqueue (transmission
 *               could begin)
 *   downlinked  last bit left the radio
 *   received    ground receipt (propagation delay is negligible at the
 *               model's resolution, so this equals `downlinked` today;
 *               the stage exists so a future ground-processing model
 *               has a slot)
 *
 * A frame that is discarded on orbit stops at `decided`; a frame that
 * never got downlink budget stops at `enqueued`/`contact`. From the
 * stamps kodan-report derives end-to-end latency (received − captured),
 * data age at downlink (downlinked − captured) and a per-stage
 * attribution: compute (decided − captured), contact-wait (time from
 * enqueue until a granted contact was available) and queue-wait (the
 * rest of the wait — behind other traffic once contact existed).
 *
 * Determinism: spans carry sim-time stamps only (no wall clock, no
 * Rng); recording follows the journal's per-thread-buffer pattern and
 * collection sorts by (frame_id, stage), so the exported bytes are
 * invariant to KODAN_THREADS.
 *
 * Overhead: off by default; every site guards on lineageEnabled() — one
 * relaxed atomic load, compiled to constant false under
 * KODAN_TELEMETRY_DISABLED. Enable via the KODAN_LINEAGE env toggle or
 * `--lineage-out <path>` (see telemetry::configureFromArgs).
 */

#ifndef KODAN_TELEMETRY_LINEAGE_HPP
#define KODAN_TELEMETRY_LINEAGE_HPP

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kodan::telemetry {

/** Pipeline stages, in pipeline order. */
enum class LineageStage : int
{
    Captured = 0,
    Decided,
    Enqueued,
    Contact,
    Downlinked,
    Received,
};

constexpr int kLineageStageCount = 6;

/** Stage name ("captured", "decided", ...). */
const char *lineageStageName(LineageStage stage);

/** Parse a stage name; returns false on an unknown name. */
bool lineageStageFromName(const std::string &name, LineageStage &out);

/** Deterministic lineage id: satellite index in the high 24 bits,
 *  capture ordinal in the low 40. */
inline std::uint64_t
lineageFrameId(std::uint64_t satellite, std::uint64_t ordinal)
{
    return (satellite << 40) | (ordinal & ((1ULL << 40) - 1));
}

/** Satellite index of a lineage id. */
inline std::uint64_t
lineageSatellite(std::uint64_t frame_id)
{
    return frame_id >> 40;
}

/** Capture ordinal of a lineage id. */
inline std::uint64_t
lineageOrdinal(std::uint64_t frame_id)
{
    return frame_id & ((1ULL << 40) - 1);
}

/** One recorded stage stamp. */
struct LineageSpan
{
    std::uint64_t frame_id = 0;
    LineageStage stage = LineageStage::Captured;
    /** Sim-time stamp (s). */
    double t_s = 0.0;
};

namespace detail {

/** Lineage recording state (resolved from KODAN_LINEAGE once). */
extern std::atomic<int> g_lineage_enabled;

bool resolveLineageEnabled();

} // namespace detail

/** Is lineage recording enabled? (KODAN_LINEAGE env / setLineageEnabled
 *  / --lineage-out; independent of the metrics and journal toggles.) */
inline bool
lineageEnabled()
{
#ifdef KODAN_TELEMETRY_DISABLED
    return false;
#else
    const int state =
        detail::g_lineage_enabled.load(std::memory_order_relaxed);
    if (state >= 0) {
        return state != 0;
    }
    return detail::resolveLineageEnabled();
#endif
}

/** Turn lineage recording on or off in-process (tests, CLI flags). */
void setLineageEnabled(bool on);

/** Record one stage stamp into the calling thread's buffer. */
void recordLineageSpan(std::uint64_t frame_id, LineageStage stage,
                       double t_s);

/** All recorded spans, merged and sorted by (frame_id, stage, t). */
std::vector<LineageSpan> collectLineage();

/** Drop all recorded spans. */
void clearLineage();

/**
 * Write spans as JSONL: a header line
 *   {"kodan_lineage": 1, "spans": N}
 * then one object per span with keys frame, sat, ord, stage, t_s.
 */
void writeLineageJsonl(const std::vector<LineageSpan> &spans,
                       std::ostream &os);

/* ------------------------------------------------------------------ */
/* Assembly: spans -> per-frame chains -> latency attribution          */
/* ------------------------------------------------------------------ */

/** One frame's assembled stage chain. */
struct FrameLineage
{
    std::uint64_t frame_id = 0;
    double t[kLineageStageCount] = {};
    bool has[kLineageStageCount] = {};

    bool stamped(LineageStage stage) const
    {
        return has[static_cast<int>(stage)];
    }

    double at(LineageStage stage) const
    {
        return t[static_cast<int>(stage)];
    }

    /** Chain reaches ground receipt. */
    bool complete() const { return stamped(LineageStage::Received); }

    /** received − captured (0 unless complete). */
    double endToEndS() const;
    /** downlinked − captured (0 unless downlinked). */
    double dataAgeAtDownlinkS() const;
    /** decided − captured (0 unless decided). */
    double computeS() const;
    /** max(0, contact − enqueued): waiting for a granted contact. */
    double contactWaitS() const;
    /** downlinked − max(enqueued, contact): waiting behind traffic. */
    double queueWaitS() const;
};

/** Group sorted-or-not spans into per-frame chains (later stamps of a
 *  duplicated (frame, stage) win; output sorted by frame_id). */
std::vector<FrameLineage>
assembleLineage(const std::vector<LineageSpan> &spans);

/** Aggregate latency/attribution statistics over assembled chains. */
struct LineageStats
{
    std::int64_t frames = 0;     ///< chains seen
    std::int64_t downlinked = 0; ///< chains reaching `downlinked`
    double mean_end_to_end_s = 0.0;
    double max_end_to_end_s = 0.0;
    double mean_data_age_s = 0.0;
    double mean_compute_s = 0.0;
    double mean_contact_wait_s = 0.0;
    double mean_queue_wait_s = 0.0;

    /** The attribution bucket with the largest mean ("compute",
     *  "contact-wait" or "queue-wait"; "none" when nothing downlinked). */
    std::string dominantStage() const;
};

LineageStats summarizeLineage(const std::vector<FrameLineage> &frames);

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_LINEAGE_HPP
