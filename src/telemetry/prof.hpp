/**
 * @file
 * kodan::telemetry::prof — in-process wall-clock sampling profiler.
 *
 * Each registered thread gets a POSIX interval timer
 * (`timer_create(CLOCK_MONOTONIC, SIGEV_THREAD_ID)`) that delivers
 * SIGPROF to that thread on a fixed period. The handler captures a
 * `backtrace()` into a pre-allocated per-thread ring of raw program
 * counters — no allocation, no locks, errno saved/restored — and
 * symbolization happens offline at flush (`dladdr` + demangle).
 * Exports are collapsed/folded stacks (flamegraph.pl / speedscope
 * ready) plus a top-N self/total JSON table, bundled with the span
 * counter table from perf_counters.hpp into one profile document.
 *
 * Signal-safety rules for the handler (enforced by review, asserted by
 * bench_prof): only `backtrace()` into a stack buffer (primed once at
 * start so libgcc's unwinder state is allocated outside signal
 * context), relaxed atomic ring bookkeeping, and errno save/restore.
 * No malloc, no locks, no iostream, no util::log.
 *
 * Determinism contract: the profiler writes nothing into the metrics
 * registry, the journal, the time series, or the lineage/health planes,
 * and never logs through util::log while armed (the telemetry log tap
 * counts warnings) — so journal/metrics/report bytes are bit-identical
 * with profiling on or off at any KODAN_THREADS (bench_prof --verify).
 *
 * Worker threads register through util::setWorkerStartHook, installed
 * when profiling is enabled (before any pool exists when enabled via
 * the harness flags); the sampler only observes threads that
 * registered.
 */

#ifndef KODAN_TELEMETRY_PROF_HPP
#define KODAN_TELEMETRY_PROF_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace kodan::telemetry::prof {

/** Sampler tuning. The default rate is a prime (997 Hz) so sampling
 *  never phase-locks with millisecond-periodic work. */
struct SamplerOptions
{
    int hz = 997;
    /** Frames kept per sample (deeper stacks are truncated). */
    int max_depth = 64;
    /** Per-thread ring capacity in words (1 MiB at the default). */
    std::size_t ring_words = std::size_t{1} << 17;
};

/** Can the sampler run at all? False under ThreadSanitizer (signal
 *  backtraces trip its interceptors) and on non-Linux hosts. Counter
 *  attribution (perf_counters.hpp) is independent and still works. */
bool samplerSupported();

/** Is the sampler currently armed? */
bool samplingActive();

/**
 * Install the SIGPROF handler, register the calling thread, and arm a
 * per-thread interval timer for every registered thread. Idempotent.
 *
 * @return true if sampling is running afterwards.
 */
bool startSampler(const SamplerOptions &options = {});

/** Disarm every per-thread timer (rings keep their samples). */
void stopSampler();

/**
 * Register the calling thread with the sampler: allocate its sample
 * ring and create (and, if sampling is active, arm) its interval
 * timer. Idempotent per thread; the timer is deleted automatically at
 * thread exit, the ring persists so its samples remain collectable.
 */
void registerThisThread();

/** One aggregated call stack, root first. */
struct ProfileStack
{
    std::vector<std::string> frames;
    std::uint64_t count = 0;
};

/** Per-frame flat totals. */
struct FrameStat
{
    std::string name;
    /** Samples with this frame on top. */
    std::uint64_t self = 0;
    /** Samples with this frame anywhere on the stack. */
    std::uint64_t total = 0;
};

/** Collected + symbolized view of every ring. */
struct ProfileSnapshot
{
    std::uint64_t samples = 0;
    std::uint64_t dropped = 0;
    /** Signals that landed on threads that never registered (or had
     *  already unregistered); diagnostic only. */
    std::uint64_t unregistered_hits = 0;
    int period_us = 0;
    std::size_t threads = 0;
    /** Sorted by joined frame names (deterministic output order). */
    std::vector<ProfileStack> stacks;
    /** Sorted by self desc, then name. */
    std::vector<FrameStat> frames;
};

/** Collect and symbolize all rings now (the sampler may keep running;
 *  samples pushed during collection land in the next snapshot). */
ProfileSnapshot snapshotProfile();

/** Drop all recorded samples (rings and timers persist). */
void resetProfile();

/** Folded stacks, one per line: `frame;frame;leaf count`. */
void writeFolded(const ProfileSnapshot &snapshot, std::ostream &os);

/**
 * The profile document:
 *   {"kodan_profile": 1, "period_us": ..., "samples": ...,
 *    "dropped": ..., "unregistered_hits": ..., "threads": ...,
 *    "frames": [{"name", "self", "total"}, ...],   // top N by self
 *    "spans": {"source": "perf_event"|"rusage",
 *              "rows": [{"name", "calls", "cycles", "instructions",
 *                        "llc_misses", "branch_misses",
 *                        "task_clock_ns"}, ...]}}
 */
void writeProfileJson(const ProfileSnapshot &snapshot, std::ostream &os,
                      std::size_t top_frames = 100);

/* ------------------------------------------------------------------ */
/* Harness integration (telemetry::configureFromArgs)                  */
/* ------------------------------------------------------------------ */

/** Is the profiling plane (sampler + span counters) on? */
bool profilingEnabled();

/**
 * Turn the profiling plane on/off: installs the worker-start hook,
 * enables span counter attribution, and starts/stops the sampler
 * (where supported; see samplerSupported()).
 */
void setProfilingEnabled(bool on);

/** Profile output path ("" = stderr summary at flush). */
std::string profileOutputPath();

/** Set/replace the profile JSON output path. */
void setProfileOutputPath(const std::string &path);

/**
 * Resolve the KODAN_PROF env toggle: "1"/"true"/"on" enables profiling
 * with a stderr summary, any other non-off value is used as the
 * output path (mirrors KODAN_ALERTS). KODAN_PROF_HZ overrides the
 * sampling rate. @return true if profiling is enabled afterwards.
 */
bool configureFromEnv();

/** Write the profile JSON to profileOutputPath() plus the folded
 *  stacks beside it (foo.json -> foo.folded), or a stderr summary when
 *  no path is set. Called from telemetry::writeOutputs(). */
void writeProfileOutputs();

} // namespace kodan::telemetry::prof

#endif // KODAN_TELEMETRY_PROF_HPP
