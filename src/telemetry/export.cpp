#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/table.hpp"

namespace kodan::telemetry {

namespace {

const char *
kindName(MetricSample::Kind kind)
{
    switch (kind) {
      case MetricSample::Kind::Counter:
        return "counter";
      case MetricSample::Kind::Gauge:
        return "gauge";
      case MetricSample::Kind::Histogram:
        return "histogram";
      case MetricSample::Kind::Timer:
        return "timer";
    }
    return "?";
}

/** Shortest round-trip double formatting (JSON-safe, no locale). */
std::string
jsonNumber(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace

double
histogramQuantile(const std::vector<double> &edges,
                  const std::vector<std::int64_t> &buckets, double q)
{
    std::int64_t count = 0;
    for (const std::int64_t bucket : buckets) {
        count += bucket;
    }
    if (count <= 0 || edges.empty()) {
        return 0.0;
    }
    if (q < 0.0) {
        q = 0.0;
    }
    if (q > 1.0) {
        q = 1.0;
    }
    const double rank = q * static_cast<double>(count);
    double cumulative = 0.0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const double in_bucket = static_cast<double>(buckets[b]);
        if (in_bucket <= 0.0) {
            continue;
        }
        if (cumulative + in_bucket >= rank) {
            if (b >= edges.size()) {
                // Overflow bucket: no upper bound recorded; clamp.
                return edges.back();
            }
            const double hi = edges[b];
            const double lo =
                b == 0 ? std::min(0.0, edges[0]) : edges[b - 1];
            const double fraction =
                std::max(0.0, rank - cumulative) / in_bucket;
            return lo + fraction * (hi - lo);
        }
        cumulative += in_bucket;
    }
    return edges.back();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeMetricsJson(const RegistrySnapshot &snapshot, std::ostream &os)
{
    os << "{\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
        const MetricSample &m = snapshot.metrics[i];
        os << "    {\"name\": \"" << jsonEscape(m.name) << "\", \"type\": \""
           << kindName(m.kind) << "\"";
        switch (m.kind) {
          case MetricSample::Kind::Counter:
            os << ", \"value\": " << m.count;
            break;
          case MetricSample::Kind::Gauge:
            os << ", \"value\": " << jsonNumber(m.sum);
            break;
          case MetricSample::Kind::Histogram: {
            os << ", \"count\": " << m.count
               << ", \"sum\": " << jsonNumber(m.sum) << ", \"edges\": [";
            for (std::size_t e = 0; e < m.edges.size(); ++e) {
                os << (e > 0 ? ", " : "") << jsonNumber(m.edges[e]);
            }
            os << "], \"buckets\": [";
            for (std::size_t b = 0; b < m.buckets.size(); ++b) {
                os << (b > 0 ? ", " : "") << m.buckets[b];
            }
            os << "], \"p50\": "
               << jsonNumber(histogramQuantile(m.edges, m.buckets, 0.50))
               << ", \"p95\": "
               << jsonNumber(histogramQuantile(m.edges, m.buckets, 0.95))
               << ", \"p99\": "
               << jsonNumber(histogramQuantile(m.edges, m.buckets, 0.99));
            break;
          }
          case MetricSample::Kind::Timer:
            os << ", \"count\": " << m.count
               << ", \"total_s\": " << jsonNumber(m.sum)
               << ", \"max_s\": " << jsonNumber(m.max);
            break;
        }
        os << "}" << (i + 1 < snapshot.metrics.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
writeMetricsTable(const RegistrySnapshot &snapshot, std::ostream &os)
{
    util::TablePrinter table({"metric", "type", "count", "value"});
    for (const MetricSample &m : snapshot.metrics) {
        std::string value;
        switch (m.kind) {
          case MetricSample::Kind::Counter:
            value = util::TablePrinter::fmt(
                static_cast<long long>(m.count));
            break;
          case MetricSample::Kind::Gauge:
            value = util::TablePrinter::fmt(m.sum, 6);
            break;
          case MetricSample::Kind::Histogram: {
            std::ostringstream buckets;
            const auto counts = m.buckets;
            for (std::size_t b = 0; b < counts.size(); ++b) {
                buckets << (b > 0 ? "/" : "") << counts[b];
            }
            buckets << " (p50 "
                    << util::TablePrinter::fmt(
                           histogramQuantile(m.edges, m.buckets, 0.50), 4)
                    << ", p95 "
                    << util::TablePrinter::fmt(
                           histogramQuantile(m.edges, m.buckets, 0.95), 4)
                    << ", p99 "
                    << util::TablePrinter::fmt(
                           histogramQuantile(m.edges, m.buckets, 0.99), 4)
                    << ")";
            value = buckets.str();
            break;
          }
          case MetricSample::Kind::Timer:
            value = util::TablePrinter::fmt(m.sum, 6) + " s (max " +
                    util::TablePrinter::fmt(m.max, 6) + " s)";
            break;
        }
        table.addRow({m.name, kindName(m.kind),
                      util::TablePrinter::fmt(
                          static_cast<long long>(m.count)),
                      value});
    }
    table.print(os);
}

namespace {

/** `runtime.frames.processed` -> `kodan_runtime_frames_processed`. */
std::string
prometheusName(const std::string &name)
{
    std::string out = "kodan_";
    for (const char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9');
        out += keep ? c : '_';
    }
    return out;
}

} // namespace

void
writePrometheusText(const RegistrySnapshot &snapshot, std::ostream &os)
{
    for (const MetricSample &m : snapshot.metrics) {
        const std::string name = prometheusName(m.name);
        switch (m.kind) {
          case MetricSample::Kind::Counter:
            os << "# TYPE " << name << " counter\n"
               << name << " " << m.count << "\n";
            break;
          case MetricSample::Kind::Gauge:
            os << "# TYPE " << name << " gauge\n"
               << name << " " << jsonNumber(m.sum) << "\n";
            break;
          case MetricSample::Kind::Histogram: {
            os << "# TYPE " << name << " histogram\n";
            std::int64_t cumulative = 0;
            for (std::size_t b = 0; b < m.buckets.size(); ++b) {
                cumulative += m.buckets[b];
                os << name << "_bucket{le=\"";
                if (b < m.edges.size()) {
                    os << jsonNumber(m.edges[b]);
                } else {
                    os << "+Inf";
                }
                os << "\"} " << cumulative << "\n";
            }
            os << name << "_sum " << jsonNumber(m.sum) << "\n"
               << name << "_count " << m.count << "\n";
            break;
          }
          case MetricSample::Kind::Timer:
            os << "# TYPE " << name << "_seconds summary\n"
               << name << "_seconds_count " << m.count << "\n"
               << name << "_seconds_sum " << jsonNumber(m.sum) << "\n"
               << "# TYPE " << name << "_seconds_max gauge\n"
               << name << "_seconds_max " << jsonNumber(m.max) << "\n";
            break;
        }
    }
}

void
writeChromeTrace(const std::vector<TraceEvent> &events,
                 std::uint64_t dropped, std::ostream &os)
{
    os << "{\"otherData\": {\"tool\": \"kodan::telemetry\", "
          "\"dropped_events\": "
       << dropped << "},\n\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        os << "  {\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"kodan\", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": " << jsonNumber(e.start_us);
        if (e.dur_us < 0.0) {
            os << ", \"ph\": \"i\", \"s\": \"g\"";
        } else {
            os << ", \"ph\": \"X\", \"dur\": " << jsonNumber(e.dur_us);
        }
        os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    os << "]}\n";
}

} // namespace kodan::telemetry
