/**
 * @file
 * Online anomaly detectors for the fleet health plane.
 *
 * Each detector is a tiny serial state machine fed one observation at a
 * time and answering "is this value anomalous, and by how much?". They
 * are built for the repo's determinism contract, not for statistical
 * novelty:
 *
 *  - **Quantized inputs.** Every value is passed through the telemetry
 *    fixed-point quantizer (exact_sum.hpp: toFixed/fromFixed, scale
 *    2^-64) before it touches detector state. The detectors therefore
 *    see the identical bit pattern regardless of which floating-point
 *    expression produced the value, and equality comparisons (the
 *    flatline detector) are exact fixed-point equality rather than an
 *    epsilon heuristic.
 *  - **Serial state, deterministic verdicts.** Detector state is plain
 *    (no atomics); the health plane feeds each (entity, signal) stream
 *    from the engines' *serial* index-order folds. A verdict is then a
 *    pure function of the observation sequence, which the TimeSeries /
 *    journal layers already prove bit-identical across KODAN_THREADS
 *    and shard sizes — so alert streams inherit the same invariance.
 *  - **No wall clock.** Detectors only ever see sim-time bins; nothing
 *    here reads a clock.
 *
 * Three detectors cover the degradation taxonomy the Kodan fleet model
 * produces (see DESIGN.md "Fleet health plane"):
 *
 *  - EwmaLevelShift — persistent level changes (elision-rate collapse,
 *    queue growth) via exponentially weighted mean + absolute-deviation
 *    envelopes.
 *  - RobustZScore — point outliers against a sliding median/MAD window
 *    (robust to the outliers it is trying to flag).
 *  - Flatline — stuck-at sensors: a run of bit-identical quantized
 *    values longer than the window.
 */

#ifndef KODAN_TELEMETRY_DETECTOR_HPP
#define KODAN_TELEMETRY_DETECTOR_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kodan::telemetry::health {

/** One detector's answer for one observation. */
struct Verdict
{
    /** True when the observation breaches the detector's envelope. */
    bool anomalous = false;
    /** Envelope-relative severity (>= 0; ~1.0 at the threshold for the
     *  statistical detectors, run/window for the flatline). */
    double score = 0.0;
};

/** Quantize @p value exactly as detector ingestion does (fixed point,
 *  scale 2^-64, truncation toward zero; NaN -> 0). Exposed so tests
 *  and callers can reproduce the detectors' view of a stream. */
double detectorQuantize(double value);

/** Tuning for EwmaLevelShift. */
struct EwmaConfig
{
    /** Smoothing factor in (0, 1]; larger adapts faster. */
    double alpha = 0.25;
    /** Breach when |residual| > k * deviation envelope. */
    double k = 6.0;
    /** Observations consumed before verdicts may fire. */
    std::int64_t warmup = 8;
    /** Deviation floor, absolute plus mean-relative, so a stream that
     *  has been perfectly steady does not alarm on the first ulp. */
    double min_dev = 1e-9;
    double rel_dev = 1e-3;
};

/**
 * EWMA level-shift detector: tracks an exponentially weighted mean and
 * mean absolute deviation; flags observations whose residual exceeds
 * k deviations. Catches persistent level changes a point-outlier
 * detector smooths over.
 */
class EwmaLevelShift
{
  public:
    explicit EwmaLevelShift(const EwmaConfig &config = {});

    /** Feed one observation; returns the verdict for it. */
    Verdict step(double value);

    void reset();

  private:
    EwmaConfig config_;
    double mean_ = 0.0;
    double dev_ = 0.0;
    std::int64_t seen_ = 0;
};

/** Tuning for RobustZScore. */
struct RobustZConfig
{
    /** Sliding window length (observations). */
    std::size_t window = 32;
    /** Breach when |value - median| > k * (1.4826 * MAD). */
    double k = 6.0;
    /** Observations required in the window before verdicts may fire. */
    std::size_t min_points = 8;
    /** Scale floor, absolute plus median-relative. */
    double min_scale = 1e-9;
    double rel_scale = 1e-3;
};

/**
 * Robust z-score detector: median + MAD over a sliding window. The
 * median/MAD pair has a 50% breakdown point, so the envelope is not
 * dragged by the very outliers it is flagging (an EWMA absorbs them).
 */
class RobustZScore
{
  public:
    explicit RobustZScore(const RobustZConfig &config = {});

    /** Feed one observation; returns the verdict for it. The verdict
     *  is computed against the window *before* the value is added. */
    Verdict step(double value);

    void reset();

  private:
    RobustZConfig config_;
    std::vector<double> window_; // ring buffer, size config_.window
    std::size_t next_ = 0;
    std::size_t filled_ = 0;
    mutable std::vector<double> scratch_;
};

/** Tuning for Flatline. */
struct FlatlineConfig
{
    /** Run length (observations) that constitutes a flatline. */
    std::int64_t window = 12;
    /** Ignore runs of exactly 0.0 (an idle signal is not a stuck
     *  sensor). */
    bool ignore_zero = true;
};

/**
 * Stuck-at detector: a run of bit-identical quantized values at least
 * `window` long. Equality is exact in fixed point — two values compare
 * equal iff toFixed() maps them to the same 128-bit pattern.
 */
class Flatline
{
  public:
    explicit Flatline(const FlatlineConfig &config = {});

    /** Feed one observation; returns the verdict for it. */
    Verdict step(double value);

    void reset();

  private:
    FlatlineConfig config_;
    double last_ = 0.0;
    std::int64_t run_ = 0;
};

} // namespace kodan::telemetry::health

#endif // KODAN_TELEMETRY_DETECTOR_HPP
