/**
 * @file
 * kodan::telemetry — umbrella header: instrumentation macros, the CLI
 * `--telemetry-out` hook, and exit-time output writing.
 *
 * Metric names follow `subsystem.noun.verb` (e.g.
 * `runtime.tiles.discarded`, `ground.contact.windows.found`); see
 * DESIGN.md "Observability".
 *
 * Overhead contract:
 *  - compiled out entirely when KODAN_TELEMETRY_DISABLED is defined
 *    (CMake: -DKODAN_TELEMETRY=OFF);
 *  - when compiled in but not enabled (the default), each site costs
 *    one relaxed atomic load and a predictable branch — no clock reads,
 *    no allocation, no locks;
 *  - instrumentation never reads or advances any `util::Rng` stream and
 *    never feeds back into computation, so simulation and pipeline
 *    results are bit-identical with telemetry on or off (enforced by
 *    tests/telemetry/test_equivalence.cpp).
 */

#ifndef KODAN_TELEMETRY_TELEMETRY_HPP
#define KODAN_TELEMETRY_TELEMETRY_HPP

#include <string>

#include "telemetry/export.hpp"
#include "telemetry/health.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/lineage.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf_counters.hpp"
#include "telemetry/prof.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace kodan::telemetry {

/**
 * Strip the harness flags from the argument vector:
 *  - `--telemetry-out <path>` (or `=<path>`): enables metric/trace
 *    recording, remembers the path, and registers an atexit hook that
 *    writes the metrics snapshot JSON to <path> and the Chrome trace
 *    beside it (foo.json -> foo.trace.json);
 *  - `--journal-out <path>` (or `=<path>`): enables the flight
 *    recorder and writes the journal JSONL to <path> at exit;
 *  - `--lineage-out <path>` (or `=<path>`): enables per-frame lineage
 *    spans and writes their JSONL to <path> at exit;
 *  - `--alerts-out <path>` (or `=<path>`): enables the fleet health
 *    plane and writes the alert JSONL to <path> at exit;
 *  - `--profile-out <path>` (or `=<path>`): enables the CPU profiling
 *    plane (sampling profiler + per-span hardware counters; see
 *    prof.hpp) and writes the profile JSON to <path> and the folded
 *    stacks beside it (foo.json -> foo.folded) at exit.
 * With `--telemetry-out foo.json`, the exit hook also writes the
 * sim-time series beside it (foo.timeseries.json + foo.timeseries.csv)
 * and the Prometheus text exposition of the final metrics (foo.prom).
 * Honors the KODAN_TELEMETRY / KODAN_JOURNAL / KODAN_LINEAGE /
 * KODAN_ALERTS / KODAN_PROF env toggles either way (enabled without a
 * path, the exit hook prints a summary to stderr instead; path-like
 * KODAN_ALERTS / KODAN_PROF values are used as output paths).
 *
 * @return true if any recording is enabled after parsing.
 */
bool configureFromArgs(int &argc, char **argv);

/** Output path set by configureFromArgs/setOutputPath ("" = none). */
std::string outputPath();

/** Set/replace the snapshot output path and arm the exit hook. */
void setOutputPath(const std::string &path);

/** Journal output path set by configureFromArgs/setJournalOutputPath. */
std::string journalOutputPath();

/** Set/replace the journal JSONL path and arm the exit hook. */
void setJournalOutputPath(const std::string &path);

/** Lineage output path set by configureFromArgs/setLineageOutputPath. */
std::string lineageOutputPath();

/** Set/replace the lineage JSONL path and arm the exit hook. */
void setLineageOutputPath(const std::string &path);

/** Alert output path set by configureFromArgs/setAlertsOutputPath
 *  (falls back to a path-like KODAN_ALERTS value; "" = none). */
std::string alertsOutputPath();

/** Set/replace the alert JSONL path and arm the exit hook. */
void setAlertsOutputPath(const std::string &path);

/**
 * Write outputs now: metrics JSON + Chrome trace to outputPath() and
 * the journal JSONL to journalOutputPath() (or summaries to stderr when
 * enabled with no path). Safe to call repeatedly; also runs at process
 * exit once armed.
 */
void writeOutputs();

/** Zero all metrics, drop all trace events, clear the journal, the
 *  time series, the lineage spans, and the health plane. */
void resetAll();

} // namespace kodan::telemetry

/* ------------------------------------------------------------------ */
/* Instrumentation macros                                              */
/* ------------------------------------------------------------------ */

#define KODAN_TM_CAT2(a, b) a##b
#define KODAN_TM_CAT(a, b) KODAN_TM_CAT2(a, b)

#ifdef KODAN_TELEMETRY_DISABLED

#define KODAN_COUNT_ADD(name_, n_) ((void)0)
#define KODAN_COUNT(name_) ((void)0)
#define KODAN_GAUGE_SET(name_, v_) ((void)0)
#define KODAN_GAUGE_ADD(name_, v_) ((void)0)
#define KODAN_HISTOGRAM(name_, v_, ...) ((void)0)
#define KODAN_TIMER_RECORD(name_, seconds_) ((void)0)
#define KODAN_TS_RECORD(name_, t_, v_, bin_s_) ((void)0)
#define KODAN_TIME_SCOPE(name_) ((void)0)
#define KODAN_TRACE_SPAN(name_) ((void)0)
#define KODAN_PROF_COUNTERS_SCOPE(name_) ((void)0)
#define KODAN_TRACE_SCOPE(name_) ((void)0)
#define KODAN_PROFILE_SCOPE(name_) ((void)0)

#else

/** Add @p n_ to counter @p name_ (registry lookup cached per site). */
#define KODAN_COUNT_ADD(name_, n_)                                         \
    do {                                                                   \
        if (::kodan::telemetry::enabled()) {                               \
            static ::kodan::telemetry::Counter &kodan_tm_handle =          \
                ::kodan::telemetry::registry().counter(name_);             \
            kodan_tm_handle.add(                                           \
                static_cast<std::int64_t>(n_));                           \
        }                                                                  \
    } while (0)

/** Increment counter @p name_ by one. */
#define KODAN_COUNT(name_) KODAN_COUNT_ADD(name_, 1)

/** Set gauge @p name_ to @p v_. */
#define KODAN_GAUGE_SET(name_, v_)                                         \
    do {                                                                   \
        if (::kodan::telemetry::enabled()) {                               \
            static ::kodan::telemetry::Gauge &kodan_tm_handle =            \
                ::kodan::telemetry::registry().gauge(name_);               \
            kodan_tm_handle.set(static_cast<double>(v_));                  \
        }                                                                  \
    } while (0)

/** Accumulate @p v_ into gauge @p name_. */
#define KODAN_GAUGE_ADD(name_, v_)                                         \
    do {                                                                   \
        if (::kodan::telemetry::enabled()) {                               \
            static ::kodan::telemetry::Gauge &kodan_tm_handle =            \
                ::kodan::telemetry::registry().gauge(name_);               \
            kodan_tm_handle.add(static_cast<double>(v_));                  \
        }                                                                  \
    } while (0)

/**
 * Record @p v_ in histogram @p name_; trailing arguments are the bucket
 * edges (used on first registration): KODAN_HISTOGRAM("x.y.z", v, 1.0,
 * 2.0, 4.7).
 */
#define KODAN_HISTOGRAM(name_, v_, ...)                                    \
    do {                                                                   \
        if (::kodan::telemetry::enabled()) {                               \
            static ::kodan::telemetry::Histogram &kodan_tm_handle =        \
                ::kodan::telemetry::registry().histogram(name_,            \
                                                         {__VA_ARGS__});   \
            kodan_tm_handle.record(static_cast<double>(v_));               \
        }                                                                  \
    } while (0)

/** Record @p seconds_ in timer @p name_. */
#define KODAN_TIMER_RECORD(name_, seconds_)                                \
    do {                                                                   \
        if (::kodan::telemetry::enabled()) {                               \
            static ::kodan::telemetry::Timer &kodan_tm_handle =            \
                ::kodan::telemetry::registry().timer(name_);               \
            kodan_tm_handle.record(static_cast<double>(seconds_));         \
        }                                                                  \
    } while (0)

/** Record @p v_ at sim time @p t_ into the time series @p name_ with
 *  bin width @p bin_s_ (used on first registration). */
#define KODAN_TS_RECORD(name_, t_, v_, bin_s_)                             \
    do {                                                                   \
        if (::kodan::telemetry::enabled()) {                               \
            static const ::kodan::telemetry::SeriesId kodan_tm_handle =    \
                ::kodan::telemetry::timeSeries(name_, bin_s_);             \
            ::kodan::telemetry::timeSeriesRecord(                          \
                kodan_tm_handle, static_cast<double>(t_),                  \
                static_cast<double>(v_));                                  \
        }                                                                  \
    } while (0)

/** Time this scope's wall clock into timer @p name_. */
#define KODAN_TIME_SCOPE(name_)                                            \
    ::kodan::telemetry::ScopedTimer KODAN_TM_CAT(kodan_tm_timer_,          \
                                                 __LINE__)(               \
        ::kodan::telemetry::enabled()                                      \
            ? &[]() -> ::kodan::telemetry::Timer & {                       \
                  static ::kodan::telemetry::Timer &kodan_tm_handle =      \
                      ::kodan::telemetry::registry().timer(name_);         \
                  return kodan_tm_handle;                                  \
              }()                                                          \
            : nullptr)

/** Record this scope as a trace span named @p name_. */
#define KODAN_TRACE_SPAN(name_)                                            \
    ::kodan::telemetry::ScopedSpan KODAN_TM_CAT(kodan_tm_span_,            \
                                                __LINE__)(name_)

/**
 * Charge this scope's hardware counter deltas (cycles, instructions,
 * LLC/branch misses, task-clock — or the rusage fallback) to the span
 * counter row @p name_. Gated on prof::countersEnabled(), one relaxed
 * load while profiling is off; the site handle is cached like the
 * metric macros above.
 */
#define KODAN_PROF_COUNTERS_SCOPE(name_)                                   \
    ::kodan::telemetry::prof::ScopedSpanCounters KODAN_TM_CAT(            \
        kodan_tm_prof_, __LINE__)(                                         \
        ::kodan::telemetry::prof::countersEnabled()                        \
            ? &[]() -> ::kodan::telemetry::prof::SpanSite & {              \
                  static ::kodan::telemetry::prof::SpanSite               \
                      &kodan_tm_handle =                                   \
                          ::kodan::telemetry::prof::spanSite(name_);       \
                  return kodan_tm_handle;                                  \
              }()                                                          \
            : nullptr)

/**
 * The full stage-attribution scope: wall-clock timer + trace span +
 * per-span hardware counters under one name. This is the macro for
 * stage/phase boundaries (engines, pipeline stages, ML kernels).
 */
#define KODAN_TRACE_SCOPE(name_)                                           \
    KODAN_TIME_SCOPE(name_);                                               \
    KODAN_TRACE_SPAN(name_);                                               \
    KODAN_PROF_COUNTERS_SCOPE(name_)

/** Deprecated alias for KODAN_TRACE_SCOPE (one release): the name now
 *  belongs to the profiler namespace (KODAN_PROF, prof.hpp). */
#define KODAN_PROFILE_SCOPE(name_) KODAN_TRACE_SCOPE(name_)

#endif // KODAN_TELEMETRY_DISABLED

#endif // KODAN_TELEMETRY_TELEMETRY_HPP
