/**
 * @file
 * Mission-time time series: metric observations binned by *simulated*
 * time.
 *
 * Where the metrics registry answers "how much over the whole run", a
 * time series answers "how much at minute 37": each recorded
 * observation carries a sim-time stamp and lands in the bin
 * floor(t / bin_width). Per-bin state is {count, sum, min, max}; sums
 * accumulate through the order-invariant fixed-point representation of
 * exact_sum.hpp, so a merged bin is a pure function of the multiset of
 * observations that hit it — deterministic and bit-identical at any
 * KODAN_THREADS (proved by `ctest -L timeseries`, including under
 * KODAN_SANITIZE=thread).
 *
 * Storage follows the journal pattern: every recording thread owns a
 * buffer (per-series map of bins) guarded by a mutex that is
 * uncontended on the hot path; snapshots merge the buffers with integer
 * arithmetic. Each (thread, series) map is bounded to `max_bins` bins —
 * beyond that the *oldest* (lowest-index) bin is dropped and counted.
 * Like journal ring mode, byte-identity claims apply while no bin has
 * been dropped; the default capacity (4096 bins) holds ~2.8 days of
 * mission time at the 60 s default width.
 *
 * Overhead contract: recording sites guard on the metrics `enabled()`
 * toggle (one relaxed load when disabled) and the KODAN_TS_RECORD macro
 * compiles out entirely under KODAN_TELEMETRY_DISABLED. Recording never
 * reads a clock or an Rng — the timestamp is the caller's sim time.
 */

#ifndef KODAN_TELEMETRY_TIMESERIES_HPP
#define KODAN_TELEMETRY_TIMESERIES_HPP

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kodan::telemetry {

/** Default bin width (s of simulated time). */
constexpr double kTimeSeriesDefaultBinS = 60.0;

/** Default per-(thread, series) bin capacity. */
constexpr std::size_t kTimeSeriesDefaultMaxBins = 4096;

/** Stable handle of one registered series (0 is never returned). */
using SeriesId = std::size_t;

/** One merged sim-time bin. */
struct TimeSeriesBin
{
    /** Bin index: floor(t / bin_width). */
    std::int64_t index = 0;
    /** Observations that landed in the bin. */
    std::int64_t count = 0;
    /** Exact (order-invariant) sum of the observed values. */
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** One series' merged reading. */
struct SeriesSample
{
    std::string name;
    double bin_width_s = kTimeSeriesDefaultBinS;
    /** Bins dropped by the per-thread capacity bound. */
    std::uint64_t dropped_bins = 0;
    /** Bins sorted by index. */
    std::vector<TimeSeriesBin> bins;
};

/** Point-in-time merged view of every registered series. */
struct TimeSeriesSnapshot
{
    /** Series sorted by name. */
    std::vector<SeriesSample> series;

    /** The series named @p name, or nullptr. */
    const SeriesSample *find(const std::string &name) const;
};

/**
 * Register (or look up) the series @p name. Registration is
 * idempotent-by-name; @p bin_width_s and @p max_bins apply on first
 * registration only. The returned id stays valid for the process
 * lifetime.
 */
SeriesId timeSeries(const std::string &name,
                    double bin_width_s = kTimeSeriesDefaultBinS,
                    std::size_t max_bins = kTimeSeriesDefaultMaxBins);

/** Bin width of a registered series. */
double timeSeriesBinWidth(SeriesId id);

/** Record @p value at sim time @p sim_time_s into series @p id.
 *  Non-finite values and timestamps are ignored (deterministically). */
void timeSeriesRecord(SeriesId id, double sim_time_s, double value);

/** Merged view of every series (deterministic at quiescence). */
TimeSeriesSnapshot timeSeriesSnapshot();

/** Drop all recorded bins (registrations and ids persist). */
void clearTimeSeries();

/**
 * Write a snapshot as a JSON document:
 *   {"kodan_timeseries": 1, "series": [
 *     {"name": ..., "bin_s": ..., "dropped_bins": ..., "bins": [
 *       {"bin": i, "t_s": i * bin_s, "count": n, "sum": s,
 *        "min": lo, "max": hi}, ...]}, ...]}
 * Deterministic series produce byte-identical output for any
 * KODAN_THREADS.
 */
void writeTimeSeriesJson(const TimeSeriesSnapshot &snapshot,
                         std::ostream &os);

/** Write a snapshot as CSV: series,bin,t_s,count,sum,min,max. */
void writeTimeSeriesCsv(const TimeSeriesSnapshot &snapshot,
                        std::ostream &os);

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_TIMESERIES_HPP
