#include "telemetry/trace.hpp"

#include <algorithm>

namespace kodan::telemetry {

TraceRing::TraceRing(int tid, std::size_t capacity)
    : ring_(capacity), capacity_(capacity), tid_(tid)
{
}

void
TraceRing::push(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) {
        ++size_;
    } else {
        ++dropped_;
    }
}

std::vector<TraceEvent>
TraceRing::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t first = (head_ + capacity_ - size_) % capacity_;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(first + i) % capacity_]);
    }
    return out;
}

std::uint64_t
TraceRing::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

void
TraceRing::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now())
{
}

Tracer &
Tracer::instance()
{
    // Leaked on purpose: rings referenced from thread_locals and atexit
    // exporters must outlive every other destructor.
    static Tracer *tracer = new Tracer();
    return *tracer;
}

double
Tracer::nowMicros() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

TraceRing &
Tracer::threadRing()
{
    thread_local TraceRing *ring = [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        rings_.push_back(
            std::make_unique<TraceRing>(next_tid_++, kRingCapacity));
        return rings_.back().get();
    }();
    return *ring;
}

void
Tracer::recordSpan(std::string name, double start_us, double dur_us)
{
    TraceEvent event;
    event.name = std::move(name);
    event.start_us = start_us;
    event.dur_us = dur_us;
    TraceRing &ring = threadRing();
    event.tid = ring.tid();
    ring.push(std::move(event));
}

void
Tracer::recordInstant(std::string name)
{
    TraceEvent event;
    event.name = std::move(name);
    event.start_us = nowMicros();
    event.dur_us = -1.0;
    TraceRing &ring = threadRing();
    event.tid = ring.tid();
    ring.push(std::move(event));
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::vector<TraceEvent> all;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &ring : rings_) {
            auto events = ring->events();
            all.insert(all.end(),
                       std::make_move_iterator(events.begin()),
                       std::make_move_iterator(events.end()));
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.start_us < b.start_us;
                     });
    return all;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_) {
        total += ring->dropped();
    }
    return total;
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &ring : rings_) {
        ring->clear();
    }
}

} // namespace kodan::telemetry
