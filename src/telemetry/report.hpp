/**
 * @file
 * kodan-report engine: load metrics snapshots (writeMetricsJson output)
 * and flight-recorder journals (writeJournalJsonl output), diff two
 * runs with configurable tolerances, emit a markdown summary, and
 * maintain BENCH_<name>.json trajectory files.
 *
 * Lives in the kodan_telemetry library (not the CLI) so the gtest
 * targets exercise the exact code the `kodan-report` binary ships.
 */

#ifndef KODAN_TELEMETRY_REPORT_HPP
#define KODAN_TELEMETRY_REPORT_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/lineage.hpp"

namespace kodan::telemetry::report {

/** One metric parsed back from a snapshot JSON. */
struct MetricReading
{
    std::string name;
    std::string type;      ///< counter | gauge | histogram | timer
    std::int64_t count = 0; ///< counter value / histogram+timer count
    double sum = 0.0;       ///< gauge value / histogram sum / timer total_s
    double max = 0.0;       ///< timer max_s (0 otherwise)
};

/** A parsed metrics snapshot, metrics sorted by name. */
struct Snapshot
{
    std::vector<MetricReading> metrics;

    /** Pointer to the named metric or nullptr. */
    const MetricReading *find(const std::string &name) const;
};

/** Parse the writeMetricsJson document in @p text. */
bool parseSnapshot(const std::string &text, Snapshot &out,
                   std::string *error = nullptr);

/** Read + parse a snapshot file. */
bool loadSnapshot(const std::string &path, Snapshot &out,
                  std::string *error = nullptr);

/** One flight-recorder event parsed back from the JSONL export. */
struct JournalLine
{
    std::uint64_t seq = 0;
    std::uint64_t region = 0;
    std::uint64_t slot = 0;
    std::uint64_t ord = 0;
    std::string type;
    std::string canonical; ///< re-serialized key+fields (diff unit)
};

/** A parsed journal export. */
struct JournalDoc
{
    std::uint64_t declared_events = 0;
    std::uint64_t dropped = 0;
    std::vector<JournalLine> events;
};

/** Parse a writeJournalJsonl document in @p text. */
bool parseJournal(const std::string &text, JournalDoc &out,
                  std::string *error = nullptr);

/** Read + parse a journal file. */
bool loadJournal(const std::string &path, JournalDoc &out,
                 std::string *error = nullptr);

/** One merged bin parsed back from a time-series document. */
struct SeriesBinReading
{
    std::int64_t index = 0;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** One series parsed back from a time-series document. */
struct SeriesReading
{
    std::string name;
    double bin_s = 0.0;
    std::uint64_t dropped_bins = 0;
    std::vector<SeriesBinReading> bins;
};

/** A parsed writeTimeSeriesJson document, series sorted by name. */
struct TimeSeriesDoc
{
    std::vector<SeriesReading> series;

    /** Pointer to the named series or nullptr. */
    const SeriesReading *find(const std::string &name) const;
};

/** Parse the writeTimeSeriesJson document in @p text. */
bool parseTimeSeries(const std::string &text, TimeSeriesDoc &out,
                     std::string *error = nullptr);

/** Read + parse a time-series file. */
bool loadTimeSeries(const std::string &path, TimeSeriesDoc &out,
                    std::string *error = nullptr);

/** Read + parse a writeLineageJsonl file. */
bool loadLineage(const std::string &path, std::vector<LineageSpan> &out,
                 std::string *error = nullptr);

/** One alert parsed back from the health plane's JSONL export. */
struct AlertReading
{
    std::uint64_t id = 0;
    std::string rule;
    std::string signal;
    std::string kind; ///< satellite | station | stage
    std::int64_t entity = 0;
    std::string state; ///< firing | resolved
    std::int64_t first_bin = 0;
    std::int64_t last_bin = 0;
    double first_t_s = 0.0;
    double last_t_s = 0.0;
    double peak = 0.0;
    double last = 0.0;
    bool has_journal = false;
    std::uint64_t journal_region = 0;
    std::uint64_t journal_slot = 0;
    std::uint64_t journal_ord_lo = 0;
    std::uint64_t journal_ord_hi = 0;
    /** (bin, value) evidence pairs. */
    std::vector<std::pair<std::int64_t, double>> evidence;
    /** Id-free re-serialization — the diff unit, so one new alert shows
     *  as one divergence instead of a tail of renumbered ids. */
    std::string canonical;
};

/** A parsed writeAlertsJsonl document. */
struct AlertsDoc
{
    std::uint64_t declared_alerts = 0;
    std::uint64_t firing = 0;
    std::vector<AlertReading> alerts;
};

/** Parse a writeAlertsJsonl document in @p text. */
bool parseAlerts(const std::string &text, AlertsDoc &out,
                 std::string *error = nullptr);

/** Read + parse an alerts file. */
bool loadAlerts(const std::string &path, AlertsDoc &out,
                std::string *error = nullptr);

/** One sampled frame parsed back from a profile JSON. */
struct ProfileFrame
{
    std::string name;
    std::uint64_t self = 0;  ///< samples with this frame on top
    std::uint64_t total = 0; ///< samples with this frame anywhere
};

/** One span-counter row parsed back from a profile JSON. */
struct ProfileSpanRow
{
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
    std::uint64_t task_clock_ns = 0;
};

/** A parsed writeProfileJson document (prof.hpp). */
struct ProfileDoc
{
    std::uint64_t period_us = 0;
    std::uint64_t samples = 0;
    std::uint64_t dropped = 0;
    std::uint64_t unregistered_hits = 0;
    std::uint64_t threads = 0;
    std::string span_source; ///< "perf_event" | "rusage" | "unresolved"
    /** Top frames in emitted (self-descending) order. */
    std::vector<ProfileFrame> frames;
    /** Span-counter rows sorted by name. */
    std::vector<ProfileSpanRow> spans;

    /** Seconds of CPU one sampled frame accounts for. */
    double frameSeconds(std::uint64_t sample_count) const;
    /** Pointer to the named frame or nullptr. */
    const ProfileFrame *findFrame(const std::string &name) const;
    /** Pointer to the named span row or nullptr. */
    const ProfileSpanRow *findSpan(const std::string &name) const;
};

/** Parse the writeProfileJson document in @p text. */
bool parseProfile(const std::string &text, ProfileDoc &out,
                  std::string *error = nullptr);

/** Read + parse a profile file. */
bool loadProfile(const std::string &path, ProfileDoc &out,
                 std::string *error = nullptr);

/**
 * Diff tolerances. Relative tolerances compare
 * |cur - base| <= tol * max(|base|, floor-ish epsilon); a timer only
 * regresses when it got *slower* beyond tolerance AND both readings
 * clear timer_floor_s (sub-floor timers are scheduler noise).
 */
struct Tolerances
{
    double timer_rel = 0.5;    ///< timers: allowed relative slowdown
    double value_rel = 0.0;    ///< counters/gauges/histograms: rel delta
    double timer_floor_s = 1e-3; ///< ignore timers below this many seconds
    /** Exact-name overrides of the relative tolerance. */
    std::vector<std::pair<std::string, double>> overrides;
    /** Metric-name prefixes excluded from the diff entirely. */
    std::vector<std::string> ignore_prefixes;

    bool ignored(const std::string &name) const;
    double relFor(const MetricReading &metric) const;
};

/** Diff finding severity: Info never fails the run, Regression does. */
enum class Severity
{
    Info,
    Regression,
};

struct Finding
{
    Severity severity = Severity::Info;
    std::string subject; ///< metric name or journal event description
    std::string message; ///< human-readable delta
};

struct DiffResult
{
    std::vector<Finding> findings;

    bool hasRegression() const;
    std::size_t regressionCount() const;
};

/** Compare two metrics snapshots under @p tol. */
DiffResult diffSnapshots(const Snapshot &base, const Snapshot &cur,
                         const Tolerances &tol);

/**
 * Compare two journal event streams. Any divergence (count mismatch,
 * reordered/changed/missing event) is a Regression naming the first
 * differing events; at most @p max_reported divergences are listed.
 */
DiffResult diffJournals(const JournalDoc &base, const JournalDoc &cur,
                        std::size_t max_reported = 5);

/**
 * Compare two time-series documents bin by bin. A series or bin present
 * in the baseline but missing from the current run, a bin-width or
 * per-bin count mismatch, or a per-bin sum/min/max outside
 * |cur - base| <= bin_rel_tol * max(|base|, 1e-12) is a Regression
 * (the default tolerance of 0 demands bit-equal values — the series
 * are deterministic). At most @p max_reported offending bins are
 * listed per series.
 */
DiffResult diffTimeSeries(const TimeSeriesDoc &base,
                          const TimeSeriesDoc &cur,
                          double bin_rel_tol = 0.0,
                          std::size_t max_reported = 5);

/**
 * Compare two alert exports. The alert stream is deterministic, so any
 * divergence — count mismatch, or a changed/missing/new alert by
 * canonical form — is a Regression; at most @p max_reported divergences
 * are listed.
 */
DiffResult diffAlerts(const AlertsDoc &base, const AlertsDoc &cur,
                      std::size_t max_reported = 5);

/** Merge b's findings after a's. */
DiffResult mergeDiffs(DiffResult a, const DiffResult &b);

/* ------------------------------------------------------------------ */
/* Profile diff                                                        */
/* ------------------------------------------------------------------ */

/**
 * Profile-diff tolerances. Span call counts are deterministic
 * (calls_rel defaults to exact); span costs are wall/cycle noise-prone,
 * so cost_rel is wide by default and spans whose cost stays under
 * cost_floor_s on both sides never regress.
 */
struct ProfileTolerances
{
    double calls_rel = 0.0;    ///< span calls: allowed relative delta
    double cost_rel = 0.5;     ///< span cost: allowed relative slowdown
    double cost_floor_s = 1e-3; ///< ignore spans cheaper than this
};

/** One ranked row of a profile diff. */
struct ProfileDeltaRow
{
    std::string name;
    double base_s = 0.0;  ///< base cost in seconds
    double cur_s = 0.0;   ///< current cost in seconds
    double delta_s = 0.0; ///< cur_s - base_s (the ranking key)
    std::uint64_t base_calls = 0; ///< spans only
    std::uint64_t cur_calls = 0;  ///< spans only
    std::int64_t delta_cycles = 0; ///< spans only; 0 without perf_event
};

/**
 * A profile diff: sampled frames ranked by self-time regression and
 * span rows ranked by cost regression (cycles when both runs read
 * perf_event, task-clock otherwise), plus tolerance findings for the
 * regression gate (span calls drift, span cost slowdown, span rows
 * missing from the current run).
 */
struct ProfileDiffResult
{
    std::vector<ProfileDeltaRow> frames; ///< delta_s descending
    std::vector<ProfileDeltaRow> spans;  ///< delta_s descending
    bool spans_use_cycles = false; ///< span ranking used cycle counts
    DiffResult findings;
};

/** Compare two profiles under @p tol. */
ProfileDiffResult diffProfiles(const ProfileDoc &base,
                               const ProfileDoc &cur,
                               const ProfileTolerances &tol);

/** Markdown profile summary: header counts, top-K self-time frames,
 *  span-counter table (top K rows by task-clock). */
void writeProfileMarkdown(const ProfileDoc &doc,
                          const std::string &label, std::size_t top,
                          std::ostream &os);

/** Markdown profile-diff summary: top-K regressed frames and spans
 *  plus the findings table. */
void writeProfileDiffMarkdown(const ProfileDiffResult &diff,
                              const std::string &base_label,
                              const std::string &cur_label,
                              std::size_t top, std::ostream &os);

/**
 * Markdown summary: verdict headline then a findings table naming each
 * offending metric/event.
 */
void writeMarkdown(const DiffResult &diff, const std::string &base_label,
                   const std::string &cur_label, std::ostream &os);

/* ------------------------------------------------------------------ */
/* Trajectory files (BENCH_<name>.json)                                */
/* ------------------------------------------------------------------ */

/** One run recorded in a trajectory file. */
struct TrajectoryEntry
{
    std::string label;
    Snapshot snapshot;
};

struct Trajectory
{
    std::string name;
    std::vector<TrajectoryEntry> entries;
};

/** Parse a trajectory document. */
bool parseTrajectory(const std::string &text, Trajectory &out,
                     std::string *error = nullptr);

/** Serialize a trajectory document. */
void writeTrajectory(const Trajectory &trajectory, std::ostream &os);

/** Serialize a trajectory as CSV (label,metric,type,count,sum,max; one
 *  row per metric of each entry) for spreadsheet/plotting pipelines. */
void writeTrajectoryCsv(const Trajectory &trajectory, std::ostream &os);

/**
 * Append @p entry to the trajectory file at @p path, creating it (with
 * @p name) when absent. An existing entry with the same label is
 * replaced in place so re-runs do not grow the file.
 */
bool appendTrajectory(const std::string &path, const std::string &name,
                      const TrajectoryEntry &entry,
                      std::string *error = nullptr);

} // namespace kodan::telemetry::report

#endif // KODAN_TELEMETRY_REPORT_HPP
