/**
 * @file
 * Scoped-span tracer with per-thread ring buffers and a Chrome
 * `trace_event` JSON export (load the file at chrome://tracing or
 * https://ui.perfetto.dev).
 *
 * Each thread records into its own fixed-capacity ring (oldest events
 * overwritten), registered with the global Tracer on first use. Buffers
 * are owned by the Tracer and never freed, so worker threads that exit
 * (e.g. when `util::setGlobalThreads` rebuilds the pool) leave their
 * events collectable. Timestamps are steady-clock microseconds since
 * tracer start — wall-clock data, intentionally outside the repo's
 * determinism contract; spans never read the clock while telemetry is
 * disabled.
 */

#ifndef KODAN_TELEMETRY_TRACE_HPP
#define KODAN_TELEMETRY_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace kodan::telemetry {

/** One completed span or instant event. */
struct TraceEvent
{
    std::string name;
    /** Start, microseconds since tracer start. */
    double start_us = 0.0;
    /** Duration in microseconds; < 0 marks an instant event. */
    double dur_us = 0.0;
    /** Recording thread's trace id. */
    int tid = 0;
};

/**
 * Fixed-capacity overwrite-oldest event ring of one thread. Pushes are
 * effectively uncontended (only the owning thread writes); the mutex
 * exists so collect()/reset() from another thread are race-free.
 */
class TraceRing
{
  public:
    TraceRing(int tid, std::size_t capacity);

    void push(TraceEvent event);

    /** Events in recording order (oldest first). */
    std::vector<TraceEvent> events() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    void clear();

    int tid() const { return tid_; }

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    int tid_;
};

/**
 * The process-wide tracer: hands each thread its ring and merges them
 * for export.
 */
class Tracer
{
  public:
    /** Events each thread's ring holds before overwriting. */
    static constexpr std::size_t kRingCapacity = 8192;

    static Tracer &instance();

    /** Microseconds since tracer construction (steady clock). */
    double nowMicros() const;

    /** The calling thread's ring (created and registered on first use). */
    TraceRing &threadRing();

    /** Record a completed span on the calling thread. */
    void recordSpan(std::string name, double start_us, double dur_us);

    /** Record an instant event on the calling thread. */
    void recordInstant(std::string name);

    /** All threads' events merged and sorted by start time. */
    std::vector<TraceEvent> collect() const;

    /** Total events overwritten across all rings. */
    std::uint64_t droppedEvents() const;

    /** Drop all recorded events (rings stay registered). */
    void reset();

  private:
    Tracer();

    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<TraceRing>> rings_;
    int next_tid_ = 1;
};

/**
 * RAII span: records [construction, destruction) into the calling
 * thread's ring when telemetry is enabled. Use via KODAN_TRACE_SPAN.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (enabled()) {
            name_ = name;
            start_us_ = Tracer::instance().nowMicros();
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (name_ != nullptr) {
            Tracer &tracer = Tracer::instance();
            tracer.recordSpan(name_, start_us_,
                              tracer.nowMicros() - start_us_);
        }
    }

  private:
    const char *name_ = nullptr;
    double start_us_ = 0.0;
};

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_TRACE_HPP
