/**
 * @file
 * Mission flight recorder: an append-only, per-thread-buffered,
 * deterministically-ordered structured event journal with a JSONL
 * export.
 *
 * Where the metrics registry answers "how much / how long", the journal
 * answers "what did the system decide": per-frame technique selections
 * and their data-value contribution, elision verdicts, contact windows,
 * downlink queue drains, sweep winners. `kodan-report` diffs two
 * journals to detect behavioral drift between runs.
 *
 * Determinism contract (proved by `ctest -L journal`, including under
 * KODAN_SANITIZE=thread):
 *  - Events carry an explicit logical ordering key (region, slot, ord)
 *    and no wall-clock data, so the exported bytes are a pure function
 *    of the computation.
 *  - A *region* is one deterministic unit of work — a batch runtime
 *    call, a mission run, a selection sweep. Regions are numbered in
 *    begin order; the repo's drivers begin them serially, so the
 *    numbering is reproducible. clearJournal() resets the numbering.
 *  - A *slot* is a work-item lane inside a region: slot 0 is the
 *    region's own lane (config, contact windows, the selected winner),
 *    and parallel work item i records into slot i + 1 via JournalScope.
 *  - `ord` counts the calling thread's emissions within its current
 *    (region, slot). A work item runs entirely on one thread and is a
 *    pure function of its index (the thread-pool facade contract), so
 *    each slot's ord sequence is invariant to KODAN_THREADS.
 * Export merges the per-thread buffers and sorts by (region, slot,
 * ord), reusing the shard-merge discipline of MetricsRegistry: hot-path
 * writes are uncontended, ordering is imposed deterministically at
 * collection time.
 *
 * Overhead contract: recording is off by default; every emission site
 * guards on journalEnabled() — one relaxed atomic load (compiled to a
 * constant false under KODAN_TELEMETRY_DISABLED). Ring mode
 * (setJournalRingCapacity / KODAN_JOURNAL_RING) bounds memory by
 * dropping each thread's oldest events; retained events still sort
 * deterministically, but *which* events are retained then depends on
 * the thread layout, so byte-identity claims apply to the default
 * unbounded mode.
 */

#ifndef KODAN_TELEMETRY_JOURNAL_HPP
#define KODAN_TELEMETRY_JOURNAL_HPP

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kodan::telemetry {

/** One typed key/value payload entry of a journal event. */
struct JournalField
{
    enum class Kind
    {
        Int,
        Float,
        Text,
    };

    std::string name;
    Kind kind = Kind::Int;
    std::int64_t i = 0;
    double f = 0.0;
    std::string s;

    bool operator==(const JournalField &other) const
    {
        return name == other.name && kind == other.kind && i == other.i &&
               f == other.f && s == other.s;
    }
};

/** One recorded semantic event. */
struct JournalEvent
{
    /** Deterministic region id (0 = ambient, outside any region). */
    std::uint64_t region = 0;
    /** Work-item lane within the region (0 = the region's own lane). */
    std::uint64_t slot = 0;
    /** Emission ordinal within (region, slot). */
    std::uint32_t ord = 0;
    /** Event type, `subsystem.noun.verb` like metric names. */
    std::string type;
    /** Payload in emission order (order is part of the export bytes). */
    std::vector<JournalField> fields;
};

/** Strict weak order of the deterministic export: (region, slot, ord),
 *  with type/payload as a total-order tiebreak for ambient events. */
bool journalEventBefore(const JournalEvent &a, const JournalEvent &b);

namespace detail {

/** Journal recording state (resolved from KODAN_JOURNAL once). */
extern std::atomic<int> g_journal_enabled;

bool resolveJournalEnabled();

/** The calling thread's current (region, slot, ord) cursor. */
struct JournalCursor
{
    std::uint64_t region = 0;
    std::uint64_t slot = 0;
    std::uint32_t ord = 0;
};

JournalCursor &journalCursor();

} // namespace detail

/**
 * Is journal recording enabled? Resolved from the KODAN_JOURNAL
 * environment toggle ("1"/"true"/"on") on first call; also enabled by
 * `--journal-out` (see telemetry::configureFromArgs). Independent of
 * the metrics toggle — a run may record either, both, or neither.
 */
inline bool
journalEnabled()
{
#ifdef KODAN_TELEMETRY_DISABLED
    return false;
#else
    const int state =
        detail::g_journal_enabled.load(std::memory_order_relaxed);
    if (state >= 0) {
        return state != 0;
    }
    return detail::resolveJournalEnabled();
#endif
}

/** Turn journal recording on or off in-process (tests, CLI flags). */
void setJournalEnabled(bool on);

/**
 * Bound each thread's buffer to @p events_per_thread events, dropping
 * the oldest beyond that (ring mode). 0 restores the unbounded default.
 * Also settable via the KODAN_JOURNAL_RING environment variable.
 */
void setJournalRingCapacity(std::size_t events_per_thread);

/** Current per-thread ring capacity (0 = unbounded). */
std::size_t journalRingCapacity();

/**
 * Live stream tap: append every event, as it commits, to the JSONL
 * file at @p path (no header line; one event object per line, no seq).
 * This is a *live view* for tailing tools (kodan-top --follow): lines
 * appear in arrival order, which depends on thread interleaving — the
 * deterministic record remains the collected/sorted export. An empty
 * path disables the tap. Also settable via KODAN_JOURNAL_STREAM.
 */
void setJournalStreamPath(const std::string &path);

/**
 * RAII bracket of one deterministic unit of work. Allocates the next
 * region id, emits a `<name>.begin` event, and routes the constructing
 * thread's events to the region's slot 0 until destruction (which
 * restores the previous cursor). A disabled journal makes this a no-op
 * with id() == 0.
 */
class JournalRegion
{
  public:
    explicit JournalRegion(const char *name);
    JournalRegion(const JournalRegion &) = delete;
    JournalRegion &operator=(const JournalRegion &) = delete;
    ~JournalRegion();

    /** The region id events should target (0 when not recording). */
    std::uint64_t id() const { return id_; }

  private:
    std::uint64_t id_ = 0;
    bool active_ = false;
    detail::JournalCursor saved_;
};

/**
 * RAII lane selector for one parallel work item: routes the calling
 * thread's events to (@p region, @p index + 1) and restores the
 * previous cursor on destruction. Construct inside the parallelFor
 * body, before any emission. No-op when the journal is disabled or
 * @p region is 0.
 */
class JournalScope
{
  public:
    JournalScope(std::uint64_t region, std::uint64_t index);

    /**
     * Re-entrant variant for chunked drivers: resume the lane's ordinal
     * at @p resume_ord instead of 0, so a work item that records across
     * several scope entries (one per time chunk) still produces one
     * monotone ord sequence. Read the ordinal to carry forward with
     * journalScopeOrd() before the scope closes.
     */
    JournalScope(std::uint64_t region, std::uint64_t index,
                 std::uint32_t resume_ord);
    JournalScope(const JournalScope &) = delete;
    JournalScope &operator=(const JournalScope &) = delete;
    ~JournalScope();

  private:
    bool active_ = false;
    detail::JournalCursor saved_;
};

/**
 * The calling thread's next emission ordinal within its current
 * (region, slot) — the value to pass as resume_ord when re-entering the
 * same lane later. 0 when the journal is disabled.
 */
std::uint32_t journalScopeOrd();

/**
 * Builder for one event; commits to the calling thread's buffer on
 * destruction. Emission sites guard on journalEnabled() themselves (the
 * builder re-checks and no-ops when disabled):
 *
 *   if (telemetry::journalEnabled()) {
 *       telemetry::JournalEventBuilder ev("runtime.frame.decision");
 *       ev.i64("discarded", n).f64("dvd_contribution", dvd);
 *   }
 */
class JournalEventBuilder
{
  public:
    explicit JournalEventBuilder(const char *type);
    JournalEventBuilder(const JournalEventBuilder &) = delete;
    JournalEventBuilder &operator=(const JournalEventBuilder &) = delete;
    ~JournalEventBuilder();

    JournalEventBuilder &i64(const char *name, std::int64_t value);
    JournalEventBuilder &f64(const char *name, double value);
    JournalEventBuilder &text(const char *name, std::string value);

  private:
    bool active_ = false;
    JournalEvent event_;
};

/** All recorded events, merged across threads and sorted
 *  deterministically (see journalEventBefore). */
std::vector<JournalEvent> collectJournal();

/** Events dropped by ring mode across all thread buffers. */
std::uint64_t journalDroppedEvents();

/** Drop all recorded events and restart region numbering at 1, so two
 *  identical instrumented runs export identical bytes. */
void clearJournal();

/**
 * Write events as JSONL: a header line
 *   {"kodan_journal": 1, "events": N, "dropped": D}
 * then one object per event with keys seq, region, slot, ord, type and
 * a nested "fields" object preserving emission order. Deterministic
 * events produce byte-identical output for any KODAN_THREADS.
 */
void writeJournalJsonl(const std::vector<JournalEvent> &events,
                       std::uint64_t dropped, std::ostream &os);

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_JOURNAL_HPP
