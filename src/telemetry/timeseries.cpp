#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "telemetry/exact_sum.hpp"
#include "telemetry/export.hpp"

namespace kodan::telemetry {

namespace {

/** Per-thread, per-bin accumulation state. */
struct LocalBin
{
    std::int64_t count = 0;
    detail::Fixed128 sum;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
};

/** Registration-time metadata of one series. */
struct SeriesMeta
{
    std::string name;
    double bin_width_s = kTimeSeriesDefaultBinS;
    std::size_t max_bins = kTimeSeriesDefaultMaxBins;
};

/**
 * One thread's bins, indexed by series id. Only the owning thread
 * records; the mutex makes snapshot()/clear() from other threads
 * race-free (same shape as JournalBuffer).
 */
class SeriesBuffer
{
  public:
    void record(SeriesId id, std::int64_t bin, double value,
                std::size_t max_bins)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (per_series_.size() <= id) {
            per_series_.resize(id + 1);
            dropped_.resize(id + 1, 0);
        }
        auto &bins = per_series_[id];
        LocalBin &slot = bins[bin];
        ++slot.count;
        detail::addFixed(slot.sum, detail::toFixed(value));
        slot.min = std::min(slot.min, value);
        slot.max = std::max(slot.max, value);
        while (max_bins > 0 && bins.size() > max_bins) {
            bins.erase(bins.begin()); // lowest index = oldest sim time
            ++dropped_[id];
        }
    }

    void collectInto(
        SeriesId id,
        std::map<std::int64_t, LocalBin> &merged_bins,
        std::uint64_t &dropped) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (per_series_.size() <= id) {
            return;
        }
        for (const auto &[bin, local] : per_series_[id]) {
            LocalBin &merged = merged_bins[bin];
            merged.count += local.count;
            detail::addFixed(merged.sum, local.sum);
            merged.min = std::min(merged.min, local.min);
            merged.max = std::max(merged.max, local.max);
        }
        dropped += dropped_[id];
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        per_series_.clear();
        dropped_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::map<std::int64_t, LocalBin>> per_series_;
    std::vector<std::uint64_t> dropped_;
};

/** Owns series registrations and every thread's buffer (leaked, like
 *  MetricsRegistry / JournalStore). */
class TimeSeriesStore
{
  public:
    static TimeSeriesStore &instance()
    {
        static TimeSeriesStore *store = new TimeSeriesStore();
        return *store;
    }

    SeriesId registerSeries(const std::string &name, double bin_width_s,
                            std::size_t max_bins)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < meta_.size(); ++i) {
            if (meta_[i].name == name) {
                return i + 1;
            }
        }
        SeriesMeta meta;
        meta.name = name;
        meta.bin_width_s = bin_width_s > 0.0 ? bin_width_s
                                             : kTimeSeriesDefaultBinS;
        meta.max_bins = max_bins;
        meta_.push_back(std::move(meta));
        return meta_.size();
    }

    SeriesMeta metaOf(SeriesId id) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (id == 0 || id > meta_.size()) {
            return {};
        }
        return meta_[id - 1];
    }

    SeriesBuffer &threadBuffer()
    {
        thread_local SeriesBuffer *buffer = [this] {
            auto owned = std::make_unique<SeriesBuffer>();
            SeriesBuffer *raw = owned.get();
            std::lock_guard<std::mutex> lock(mutex_);
            buffers_.push_back(std::move(owned));
            return raw;
        }();
        return *buffer;
    }

    TimeSeriesSnapshot snapshot() const
    {
        std::vector<SeriesMeta> meta;
        std::vector<const SeriesBuffer *> buffers;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            meta = meta_;
            buffers.reserve(buffers_.size());
            for (const auto &buffer : buffers_) {
                buffers.push_back(buffer.get());
            }
        }
        TimeSeriesSnapshot snap;
        snap.series.reserve(meta.size());
        for (std::size_t i = 0; i < meta.size(); ++i) {
            SeriesSample sample;
            sample.name = meta[i].name;
            sample.bin_width_s = meta[i].bin_width_s;
            std::map<std::int64_t, LocalBin> merged;
            for (const SeriesBuffer *buffer : buffers) {
                buffer->collectInto(i + 1, merged, sample.dropped_bins);
            }
            sample.bins.reserve(merged.size());
            for (const auto &[bin, local] : merged) {
                TimeSeriesBin out;
                out.index = bin;
                out.count = local.count;
                out.sum = detail::fromFixed(local.sum);
                out.min = local.min;
                out.max = local.max;
                sample.bins.push_back(out);
            }
            snap.series.push_back(std::move(sample));
        }
        std::sort(snap.series.begin(), snap.series.end(),
                  [](const SeriesSample &a, const SeriesSample &b) {
                      return a.name < b.name;
                  });
        return snap;
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            buffer->clear();
        }
    }

  private:
    TimeSeriesStore() = default;

    mutable std::mutex mutex_;
    std::vector<SeriesMeta> meta_;
    std::vector<std::unique_ptr<SeriesBuffer>> buffers_;
};

/** %.17g double formatting, matching the other exporters. */
std::string
seriesNumber(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace

const SeriesSample *
TimeSeriesSnapshot::find(const std::string &name) const
{
    for (const auto &sample : series) {
        if (sample.name == name) {
            return &sample;
        }
    }
    return nullptr;
}

SeriesId
timeSeries(const std::string &name, double bin_width_s,
           std::size_t max_bins)
{
    return TimeSeriesStore::instance().registerSeries(name, bin_width_s,
                                                      max_bins);
}

double
timeSeriesBinWidth(SeriesId id)
{
    return TimeSeriesStore::instance().metaOf(id).bin_width_s;
}

void
timeSeriesRecord(SeriesId id, double sim_time_s, double value)
{
    if (id == 0 || !std::isfinite(sim_time_s) || !std::isfinite(value)) {
        return;
    }
    TimeSeriesStore &store = TimeSeriesStore::instance();
    const SeriesMeta meta = store.metaOf(id);
    if (meta.name.empty()) {
        return;
    }
    const std::int64_t bin = static_cast<std::int64_t>(
        std::floor(sim_time_s / meta.bin_width_s));
    store.threadBuffer().record(id, bin, value, meta.max_bins);
}

TimeSeriesSnapshot
timeSeriesSnapshot()
{
    return TimeSeriesStore::instance().snapshot();
}

void
clearTimeSeries()
{
    TimeSeriesStore::instance().clear();
}

void
writeTimeSeriesJson(const TimeSeriesSnapshot &snapshot, std::ostream &os)
{
    os << "{\"kodan_timeseries\": 1, \"series\": [";
    for (std::size_t s = 0; s < snapshot.series.size(); ++s) {
        const SeriesSample &series = snapshot.series[s];
        os << (s > 0 ? ",\n" : "\n") << "  {\"name\": \""
           << jsonEscape(series.name) << "\", \"bin_s\": "
           << seriesNumber(series.bin_width_s) << ", \"dropped_bins\": "
           << series.dropped_bins << ", \"bins\": [";
        for (std::size_t b = 0; b < series.bins.size(); ++b) {
            const TimeSeriesBin &bin = series.bins[b];
            os << (b > 0 ? ",\n    " : "\n    ") << "{\"bin\": "
               << bin.index << ", \"t_s\": "
               << seriesNumber(static_cast<double>(bin.index) *
                               series.bin_width_s)
               << ", \"count\": " << bin.count << ", \"sum\": "
               << seriesNumber(bin.sum) << ", \"min\": "
               << seriesNumber(bin.min) << ", \"max\": "
               << seriesNumber(bin.max) << "}";
        }
        os << (series.bins.empty() ? "]}" : "\n  ]}");
    }
    os << (snapshot.series.empty() ? "]}\n" : "\n]}\n");
}

void
writeTimeSeriesCsv(const TimeSeriesSnapshot &snapshot, std::ostream &os)
{
    os << "series,bin,t_s,count,sum,min,max\n";
    for (const SeriesSample &series : snapshot.series) {
        for (const TimeSeriesBin &bin : series.bins) {
            os << series.name << "," << bin.index << ","
               << seriesNumber(static_cast<double>(bin.index) *
                               series.bin_width_s)
               << "," << bin.count << "," << seriesNumber(bin.sum) << ","
               << seriesNumber(bin.min) << "," << seriesNumber(bin.max)
               << "\n";
        }
    }
}

} // namespace kodan::telemetry
