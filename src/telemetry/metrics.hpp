/**
 * @file
 * Process-wide metrics registry: counters, gauges, fixed-bucket
 * histograms, and timers.
 *
 * Hot-path writes go to lock-free per-thread shards (cache-line-padded
 * relaxed atomics indexed by a stable per-thread shard id), so
 * instrumented code running under `util::ThreadPool` never contends on
 * a registry lock. Snapshots merge the shards deterministically — in
 * shard-index order — so every integer-valued reading (counter values,
 * histogram bucket counts, timer call counts) is an exact sum that is
 * invariant to thread count and interleaving. Floating-point
 * accumulations (gauge adds, histogram sums) go through the
 * order-invariant fixed-point accumulator in exact_sum.hpp, so they are
 * *also* deterministic: the merged value depends only on the multiset
 * of recorded values, never on which thread fed which shard. Only timer
 * durations remain plain double sums — they read the wall clock and are
 * nondeterministic at the source.
 *
 * Telemetry is OFF by default. It costs one relaxed atomic load per
 * instrumentation site while disabled (see `enabled()`), and compiles
 * out entirely under KODAN_TELEMETRY_DISABLED (macros in
 * telemetry/telemetry.hpp expand to nothing).
 */

#ifndef KODAN_TELEMETRY_METRICS_HPP
#define KODAN_TELEMETRY_METRICS_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/exact_sum.hpp"

namespace kodan::telemetry {

/** Per-thread shard slots per metric (threads hash onto these). */
constexpr int kMetricShards = 16;

namespace detail {

/** Stable shard index of the calling thread, in [0, kMetricShards). */
int threadShard();

/** One cache line holding one integer accumulator. */
struct alignas(64) IntShard
{
    std::atomic<std::int64_t> value{0};
};

/** Enable-state cell: -1 unresolved, 0 disabled, 1 enabled. */
extern std::atomic<int> g_enabled;

/** Resolve the KODAN_TELEMETRY environment toggle (first call only). */
bool resolveEnabled();

} // namespace detail

/**
 * Is telemetry recording enabled? Resolved from the KODAN_TELEMETRY
 * environment variable ("1"/"true"/"on") on first call; overridable via
 * setEnabled(). One relaxed load on the fast path.
 */
inline bool
enabled()
{
    const int state = detail::g_enabled.load(std::memory_order_relaxed);
    if (state >= 0) {
        return state != 0;
    }
    return detail::resolveEnabled();
}

/** Turn recording on or off in-process (tests, CLI flags). */
void setEnabled(bool on);

/**
 * Monotonically increasing integer total (events, items, bytes).
 */
class Counter
{
  public:
    /** Add @p delta to the calling thread's shard. */
    void add(std::int64_t delta)
    {
        shards_[detail::threadShard()].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Deterministic total: shard sums in shard-index order. */
    std::int64_t value() const;

    /** Zero every shard. */
    void reset();

  private:
    detail::IntShard shards_[kMetricShards];
};

/**
 * A floating-point level: `set()` for sampled values (config, sizes),
 * `add()` for accumulated quantities (seconds, bits). Accumulation is
 * sharded through the order-invariant fixed-point accumulator
 * (exact_sum.hpp), so the merged value is deterministic at any
 * KODAN_THREADS. `set()` replaces everything accumulated so far; it is
 * for serial configuration-style writes, not hot paths.
 */
class Gauge
{
  public:
    void set(double value);

    void add(double delta)
    {
        shards_[detail::threadShard()].add(delta);
    }

    /** base (last set) + the exact fixed-point sum of every add. */
    double value() const;

    void reset();

  private:
    std::atomic<double> base_{0.0};
    detail::ExactShard shards_[kMetricShards];
};

/**
 * Fixed-bucket histogram. Bucket i counts values v with
 * edges[i-1] <= v < edges[i]; bucket edges.size() is the overflow
 * bucket. Edges are fixed at registration, so merges are element-wise
 * integer sums (deterministic).
 */
class Histogram
{
  public:
    /** @param edges Strictly increasing bucket upper bounds. */
    explicit Histogram(std::vector<double> edges);

    void record(double value);

    const std::vector<double> &edges() const { return edges_; }

    /** Per-bucket totals (edges.size() + 1 entries). */
    std::vector<std::int64_t> bucketCounts() const;

    /** Total recorded values. */
    std::int64_t count() const;

    /** Sum of recorded values (order-invariant fixed-point; see
     *  exact_sum.hpp — deterministic at any thread count). */
    double sum() const;

    void reset();

  private:
    struct Shard
    {
        std::unique_ptr<std::atomic<std::int64_t>[]> buckets;
        detail::IntShard count;
        detail::ExactShard sum;
    };

    std::vector<double> edges_;
    std::vector<Shard> shards_;
};

/**
 * Duration accumulator: call count, total seconds, max seconds.
 */
class Timer
{
  public:
    void record(double seconds);

    std::int64_t count() const;
    double totalSeconds() const;
    double maxSeconds() const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::int64_t> count{0};
        std::atomic<double> total{0.0};
        std::atomic<double> max{0.0};
    };

    Shard shards_[kMetricShards];
};

/**
 * RAII wall-clock scope feeding a Timer. A null timer records nothing
 * and reads no clock (the disabled fast path).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer *timer)
        : timer_(timer)
    {
        if (timer_ != nullptr) {
            start_ = std::chrono::steady_clock::now();
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (timer_ != nullptr) {
            timer_->record(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count());
        }
    }

  private:
    Timer *timer_;
    std::chrono::steady_clock::time_point start_;
};

/** One metric's merged reading. */
struct MetricSample
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
        Timer,
    };

    std::string name;
    Kind kind = Kind::Counter;
    /** Counter value / histogram count / timer call count. */
    std::int64_t count = 0;
    /** Gauge value / histogram sum / timer total seconds. */
    double sum = 0.0;
    /** Timer max seconds. */
    double max = 0.0;
    /** Histogram only. */
    std::vector<double> edges;
    std::vector<std::int64_t> buckets;
};

/** Point-in-time merged view of every registered metric. */
struct RegistrySnapshot
{
    /** Samples sorted by metric name. */
    std::vector<MetricSample> metrics;

    /** The sample named @p name, or nullptr. */
    const MetricSample *find(const std::string &name) const;
};

/**
 * Owns every metric. Registration is mutex-guarded and
 * idempotent-by-name; returned references stay valid for the process
 * lifetime (reset() zeroes values, never removes metrics). Call sites
 * cache the reference in a function-local static (the macros in
 * telemetry.hpp do this), so the lock is taken once per site.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @param edges Used on first registration of @p name only. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges);
    Timer &timer(const std::string &name);

    /** Merged view of all metrics, sorted by name. */
    RegistrySnapshot snapshot() const;

    /** Zero every metric (registrations persist). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/** The process-wide registry. */
MetricsRegistry &registry();

} // namespace kodan::telemetry

#endif // KODAN_TELEMETRY_METRICS_HPP
