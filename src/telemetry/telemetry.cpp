#include "telemetry/telemetry.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>

#include "util/log.hpp"

namespace kodan::telemetry {

namespace {

std::mutex g_output_mutex;
std::string g_output_path;         // guarded by g_output_mutex
std::string g_journal_output_path; // guarded by g_output_mutex
std::string g_lineage_output_path; // guarded by g_output_mutex
std::string g_alerts_output_path;  // guarded by g_output_mutex
std::atomic<bool> g_exit_hook_armed{false};

/** foo.json -> foo<suffix>; anything else gets <suffix> appended. */
std::string
siblingPathFor(const std::string &metrics_path, const char *sibling)
{
    const std::string suffix = ".json";
    if (metrics_path.size() > suffix.size() &&
        metrics_path.compare(metrics_path.size() - suffix.size(),
                             suffix.size(), suffix) == 0) {
        return metrics_path.substr(0,
                                   metrics_path.size() - suffix.size()) +
               sibling;
    }
    return metrics_path + sibling;
}

void
armExitHook()
{
    if (!g_exit_hook_armed.exchange(true)) {
        std::atexit(&writeOutputs);
    }
}

/** Warn+ log lines become counters and instant trace events. */
void
logTap(util::LogLevel level, const std::string &message)
{
    if (!enabled() ||
        static_cast<int>(level) < static_cast<int>(util::LogLevel::Warn)) {
        return;
    }
    if (level == util::LogLevel::Warn) {
        KODAN_COUNT("util.log.warnings.emitted");
    } else {
        KODAN_COUNT("util.log.errors.emitted");
    }
    Tracer::instance().recordInstant("log: " + message);
}

} // namespace

namespace detail {

void
installLogBridge()
{
    util::setLogTap(&logTap);
}

} // namespace detail

bool
configureFromArgs(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--telemetry-out") == 0 && i + 1 < argc) {
            setOutputPath(argv[++i]);
            setEnabled(true);
        } else if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
            setOutputPath(arg + 16);
            setEnabled(true);
        } else if (std::strcmp(arg, "--journal-out") == 0 && i + 1 < argc) {
            setJournalOutputPath(argv[++i]);
            setJournalEnabled(true);
        } else if (std::strncmp(arg, "--journal-out=", 14) == 0) {
            setJournalOutputPath(arg + 14);
            setJournalEnabled(true);
        } else if (std::strcmp(arg, "--lineage-out") == 0 && i + 1 < argc) {
            setLineageOutputPath(argv[++i]);
            setLineageEnabled(true);
        } else if (std::strncmp(arg, "--lineage-out=", 14) == 0) {
            setLineageOutputPath(arg + 14);
            setLineageEnabled(true);
        } else if (std::strcmp(arg, "--alerts-out") == 0 &&
                   i + 1 < argc) {
            setAlertsOutputPath(argv[++i]);
            health::setHealthEnabled(true);
        } else if (std::strncmp(arg, "--alerts-out=", 13) == 0) {
            setAlertsOutputPath(arg + 13);
            health::setHealthEnabled(true);
        } else if (std::strcmp(arg, "--profile-out") == 0 &&
                   i + 1 < argc) {
            prof::setProfileOutputPath(argv[++i]);
            prof::setProfilingEnabled(true);
        } else if (std::strncmp(arg, "--profile-out=", 14) == 0) {
            prof::setProfileOutputPath(arg + 14);
            prof::setProfilingEnabled(true);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    // KODAN_PROF can also enable the profiling plane (possibly with a
    // path-like value as the output path).
    prof::configureFromEnv();
    if (enabled() || journalEnabled() || lineageEnabled() ||
        health::healthEnabled() || prof::profilingEnabled()) {
        armExitHook();
        return true;
    }
    return false;
}

std::string
outputPath()
{
    std::lock_guard<std::mutex> lock(g_output_mutex);
    return g_output_path;
}

void
setOutputPath(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        g_output_path = path;
    }
    armExitHook();
}

std::string
journalOutputPath()
{
    std::lock_guard<std::mutex> lock(g_output_mutex);
    return g_journal_output_path;
}

void
setJournalOutputPath(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        g_journal_output_path = path;
    }
    armExitHook();
}

std::string
lineageOutputPath()
{
    std::lock_guard<std::mutex> lock(g_output_mutex);
    return g_lineage_output_path;
}

void
setLineageOutputPath(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        g_lineage_output_path = path;
    }
    armExitHook();
}

std::string
alertsOutputPath()
{
    {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        if (!g_alerts_output_path.empty()) {
            return g_alerts_output_path;
        }
    }
    // KODAN_ALERTS doubles as the output path when its value is not a
    // bare on/off toggle.
    if (const char *env = std::getenv("KODAN_ALERTS")) {
        if (*env != '\0' && std::strcmp(env, "0") != 0 &&
            std::strcmp(env, "1") != 0 &&
            std::strcmp(env, "true") != 0 &&
            std::strcmp(env, "false") != 0 &&
            std::strcmp(env, "on") != 0 &&
            std::strcmp(env, "off") != 0) {
            return env;
        }
    }
    return std::string();
}

void
setAlertsOutputPath(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        g_alerts_output_path = path;
    }
    armExitHook();
}

namespace {

void
writeMetricsOutputs(const std::string &path)
{
    const RegistrySnapshot snapshot = registry().snapshot();
    if (path.empty()) {
        std::cerr << "[kodan-telemetry] metrics snapshot:\n";
        writeMetricsTable(snapshot, std::cerr);
        return;
    }
    std::ofstream metrics_file(path);
    if (!metrics_file) {
        std::cerr << "[kodan-telemetry] cannot write " << path << "\n";
    } else {
        writeMetricsJson(snapshot, metrics_file);
        std::cerr << "[kodan-telemetry] wrote metrics snapshot to "
                  << path << "\n";
    }
    const std::string trace_path = siblingPathFor(path, ".trace.json");
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
        std::cerr << "[kodan-telemetry] cannot write " << trace_path
                  << "\n";
    } else {
        Tracer &tracer = Tracer::instance();
        writeChromeTrace(tracer.collect(), tracer.droppedEvents(),
                         trace_file);
        std::cerr << "[kodan-telemetry] wrote Chrome trace to "
                  << trace_path << " (load at chrome://tracing)\n";
    }
    const std::string prom_path = siblingPathFor(path, ".prom");
    std::ofstream prom_file(prom_path);
    if (!prom_file) {
        std::cerr << "[kodan-telemetry] cannot write " << prom_path
                  << "\n";
    } else {
        writePrometheusText(snapshot, prom_file);
        std::cerr << "[kodan-telemetry] wrote Prometheus exposition to "
                  << prom_path << "\n";
    }
    const TimeSeriesSnapshot series = timeSeriesSnapshot();
    const std::string ts_json_path =
        siblingPathFor(path, ".timeseries.json");
    std::ofstream ts_json(ts_json_path);
    if (!ts_json) {
        std::cerr << "[kodan-telemetry] cannot write " << ts_json_path
                  << "\n";
    } else {
        writeTimeSeriesJson(series, ts_json);
        std::cerr << "[kodan-telemetry] wrote " << series.series.size()
                  << " time series to " << ts_json_path << "\n";
    }
    const std::string ts_csv_path =
        siblingPathFor(path, ".timeseries.csv");
    std::ofstream ts_csv(ts_csv_path);
    if (!ts_csv) {
        std::cerr << "[kodan-telemetry] cannot write " << ts_csv_path
                  << "\n";
    } else {
        writeTimeSeriesCsv(series, ts_csv);
    }
}

void
writeLineageOutputs(const std::string &path)
{
    const std::vector<LineageSpan> spans = collectLineage();
    if (path.empty()) {
        std::cerr << "[kodan-lineage] " << spans.size()
                  << " span(s) recorded (set --lineage-out <path> for "
                     "the JSONL)\n";
        return;
    }
    std::ofstream lineage_file(path);
    if (!lineage_file) {
        std::cerr << "[kodan-lineage] cannot write " << path << "\n";
        return;
    }
    writeLineageJsonl(spans, lineage_file);
    std::cerr << "[kodan-lineage] wrote " << spans.size()
              << " span(s) to " << path << "\n";
}

void
writeAlertsOutputs(const std::string &path)
{
    const health::HealthSnapshot snapshot = health::plane().snapshot();
    if (path.empty()) {
        std::cerr << "[kodan-health] " << snapshot.alerts.size()
                  << " alert(s), " << snapshot.alerts_firing
                  << " firing (set --alerts-out <path> for the "
                     "JSONL)\n";
        return;
    }
    std::ofstream alerts_file(path);
    if (!alerts_file) {
        std::cerr << "[kodan-health] cannot write " << path << "\n";
        return;
    }
    health::writeAlertsJsonl(snapshot.alerts, alerts_file);
    std::cerr << "[kodan-health] wrote " << snapshot.alerts.size()
              << " alert(s) to " << path << "\n";
}

void
writeJournalOutputs(const std::string &path)
{
    const std::vector<JournalEvent> events = collectJournal();
    const std::uint64_t dropped = journalDroppedEvents();
    if (path.empty()) {
        std::cerr << "[kodan-journal] " << events.size()
                  << " event(s) recorded, " << dropped
                  << " dropped (set --journal-out <path> for the JSONL)\n";
        return;
    }
    std::ofstream journal_file(path);
    if (!journal_file) {
        std::cerr << "[kodan-journal] cannot write " << path << "\n";
        return;
    }
    writeJournalJsonl(events, dropped, journal_file);
    std::cerr << "[kodan-journal] wrote " << events.size()
              << " event(s) to " << path << "\n";
}

} // namespace

void
writeOutputs()
{
    // Account for any rate-limited log sites before the run's outputs
    // are finalized, so suppression never goes unreported.
    util::flushLogSuppressed();
    std::string metrics_path;
    std::string journal_path;
    std::string lineage_path;
    {
        std::lock_guard<std::mutex> lock(g_output_mutex);
        metrics_path = g_output_path;
        journal_path = g_journal_output_path;
        lineage_path = g_lineage_output_path;
    }
    if (enabled()) {
        writeMetricsOutputs(metrics_path);
    }
    if (journalEnabled()) {
        writeJournalOutputs(journal_path);
    }
    if (lineageEnabled()) {
        writeLineageOutputs(lineage_path);
    }
    if (health::healthEnabled()) {
        writeAlertsOutputs(alertsOutputPath());
    }
    if (prof::profilingEnabled()) {
        prof::writeProfileOutputs();
    }
}

void
resetAll()
{
    registry().reset();
    Tracer::instance().reset();
    clearJournal();
    clearTimeSeries();
    clearLineage();
    health::plane().reset();
    prof::resetProfile();
    prof::resetSpanTable();
}

} // namespace kodan::telemetry
